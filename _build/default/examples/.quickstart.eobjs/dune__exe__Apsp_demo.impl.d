examples/apsp_demo.ml: Dcdatalog Hashtbl List Printf Sys
