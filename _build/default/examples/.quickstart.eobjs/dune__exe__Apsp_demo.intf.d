examples/apsp_demo.mli:
