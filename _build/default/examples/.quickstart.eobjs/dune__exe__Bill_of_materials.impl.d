examples/bill_of_materials.ml: Dcdatalog List Printf Result
