examples/bill_of_materials.mli:
