examples/graph_analytics.ml: Dcdatalog List Printf Result
