examples/party_attend.ml: Dcdatalog List Printf
