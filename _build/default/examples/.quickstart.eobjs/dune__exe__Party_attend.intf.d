examples/party_attend.mli:
