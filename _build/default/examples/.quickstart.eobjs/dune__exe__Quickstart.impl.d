examples/quickstart.ml: Dcdatalog Format List String
