examples/quickstart.mli:
