(* All-pairs shortest paths (paper Query 3): non-linear recursion.

   The body joins path with path, so the planner replicates the
   recursive relation under two partition routes (by source and by
   destination) exactly as §4.3 of the paper describes — run with
   DCDATALOG_EXPLAIN=1 to see the plan.

   Run with: dune exec examples/apsp_demo.exe *)

module D = Dcdatalog

let () =
  let prepared =
    match D.prepare D.Queries.apsp.source with
    | Ok p -> p
    | Error e -> failwith e
  in
  if Sys.getenv_opt "DCDATALOG_EXPLAIN" <> None then print_endline (D.explain prepared);

  let graph = D.Gen.rmat ~seed:3 ~scale:7 ~edges:600 () in
  let edb = D.Queries.warc_edb graph in
  let result = D.run prepared ~edb () in
  let pairs = D.relation result "apsp" in
  Printf.printf "graph: %d edges over %d vertices\n" (D.Graph.edge_count graph)
    (D.Graph.max_vertex graph + 1);
  Printf.printf "reachable pairs with shortest distances: %d\n" (List.length pairs);

  (* sanity: distances satisfy the triangle inequality on a sample *)
  let dist = Hashtbl.create 1024 in
  List.iter (function [ a; b; d ] -> Hashtbl.replace dist (a, b) d | _ -> ()) pairs;
  let violations = ref 0 in
  List.iter
    (function
      | [ a; b; d_ab ] ->
        List.iter
          (function
            | [ b'; c; d_bc ] when b = b' -> (
              match Hashtbl.find_opt dist (a, c) with
              | Some d_ac when d_ac > d_ab + d_bc -> incr violations
              | Some _ -> ()
              | None -> if a <> c then incr violations)
            | _ -> ())
          pairs
      | _ -> ())
    pairs;
  Printf.printf "triangle-inequality violations: %d\n" !violations
