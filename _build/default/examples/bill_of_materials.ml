(* Bill of materials: the paper's Delivery query (Query 8).

   A product is assembled from sub-parts (assbl); basic parts have a
   known delivery time (basic).  The delivery time of an assembled part
   is the max over its sub-parts — max aggregate in recursion, which
   stratified engines cannot express without a blow-up.

   Run with: dune exec examples/bill_of_materials.exe *)

module D = Dcdatalog

let () =
  (* a small hand-made product tree, then a generated N-5000 tree *)
  let assbl = [ (0, 1); (0, 2); (1, 3); (1, 4); (2, 5); (5, 6) ] in
  let basic = [ (3, 7); (4, 2); (6, 10) ] in
  let edb =
    [
      ("assbl", D.tuples (List.map (fun (p, s) -> [ p; s ]) assbl));
      ("basic", D.tuples (List.map (fun (p, d) -> [ p; d ]) basic));
    ]
  in
  let result =
    match D.query D.Queries.delivery.source ~edb with
    | Ok r -> r
    | Error e -> failwith e
  in
  print_endline "delivery days per part (hand-made tree):";
  List.iter
    (fun row ->
      match row with
      | [ p; d ] -> Printf.printf "  part %d: %d days\n" p d
      | _ -> ())
    (D.relation result "results");
  (* part 0 = max(7, 2, 10) = 10; part 1 = 7; part 2 = 10 *)

  let tree, basics = D.Datasets.bom 5000 in
  let edb = D.Queries.delivery_edb tree basics in
  let result = Result.get_ok (D.query D.Queries.delivery.source ~edb) in
  let rows = D.relation result "results" in
  let root_days = List.assoc 0 (List.map (function [ p; d ] -> (p, d) | _ -> (-1, 0)) rows) in
  Printf.printf "\nN-5000 tree: %d parts, root delivery time %d days\n" (List.length rows)
    root_days
