(* Graph analytics: the paper's three graph queries — Connected
   Components, Single-Source Shortest Paths and PageRank — on a
   generated RMAT graph, evaluated with each coordination strategy.

   Run with: dune exec examples/graph_analytics.exe *)

module D = Dcdatalog

let run_query (spec : D.Queries.spec) ~params ~edb ~strategy =
  let prepared =
    match D.prepare ~params spec.source with
    | Ok p -> p
    | Error e -> failwith (spec.name ^ ": " ^ e)
  in
  let config =
    { D.default_config with strategy; max_iterations = spec.max_iterations; workers = 3 }
  in
  let result = D.run prepared ~edb ~config () in
  D.Vec.length (D.Parallel.relation_vec result spec.output)

let () =
  let graph = D.Gen.rmat ~seed:42 ~scale:11 ~edges:16_000 () in
  Printf.printf "RMAT graph: %d vertices, %d edges\n\n" (D.Graph.max_vertex graph + 1)
    (D.Graph.edge_count graph);

  let strategies = [ ("global", D.Coord.Global); ("ssp(2)", D.Coord.Ssp 2); ("dws", D.Coord.dws) ] in

  (* Connected components (undirected view of the graph) *)
  let cc_edb = D.Queries.arc_sym_edb graph in
  List.iter
    (fun (name, strategy) ->
      let n = run_query D.Queries.cc ~params:[] ~edb:cc_edb ~strategy in
      Printf.printf "cc        [%-7s] %d vertices labelled\n%!" name n)
    strategies;

  (* Single-source shortest paths from vertex 0 *)
  let sssp_edb = D.Queries.warc_edb graph in
  List.iter
    (fun (name, strategy) ->
      let n = run_query D.Queries.sssp ~params:[ ("start", 0) ] ~edb:sssp_edb ~strategy in
      Printf.printf "sssp      [%-7s] %d vertices reached\n%!" name n)
    strategies;

  (* PageRank, 20 bounded iterations, fixed-point arithmetic *)
  let pr_edb = D.Queries.matrix_edb graph in
  let vnum = D.Graph.max_vertex graph + 1 in
  List.iter
    (fun (name, strategy) ->
      let n = run_query D.Queries.pagerank ~params:[ ("vnum", vnum) ] ~edb:pr_edb ~strategy in
      Printf.printf "pagerank  [%-7s] %d ranks computed\n%!" name n)
    strategies;

  (* show the top-5 PageRank vertices *)
  let prepared = Result.get_ok (D.prepare ~params:[ ("vnum", vnum) ] D.Queries.pagerank.source) in
  let result =
    D.run prepared ~edb:pr_edb
      ~config:{ D.default_config with max_iterations = D.Queries.pagerank.max_iterations }
      ()
  in
  let ranks = D.relation result "results" in
  let sorted = List.sort (fun a b -> compare (List.nth b 1) (List.nth a 1)) ranks in
  print_endline "\nTop-5 PageRank vertices (value / 1e9):";
  List.iteri
    (fun i row ->
      if i < 5 then
        match row with
        | [ v; r ] -> Printf.printf "  vertex %-6d rank %.6f\n" v (float_of_int r /. 1e9)
        | _ -> ())
    sorted
