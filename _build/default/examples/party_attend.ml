(* Who will attend the party? (paper Query 4)

   Mutual recursion with a count aggregate: a person attends if they
   organize the party, or if at least 3 of their friends attend.

   Run with: dune exec examples/party_attend.exe *)

module D = Dcdatalog

let () =
  let graph, organizers = D.Gen.friendship ~seed:9 ~people:500 ~avg_friends:8 ~organizers:5 in
  let edb = D.Queries.attend_edb graph organizers in
  let result =
    match D.query D.Queries.attend.source ~edb with
    | Ok r -> r
    | Error e -> failwith e
  in
  let attendees = D.relation result "attend" in
  Printf.printf "people: 500, organizers: %d, friendships: %d\n" (List.length organizers)
    (D.Graph.edge_count graph);
  Printf.printf "attendees at the fixpoint: %d\n" (List.length attendees);
  (* the cascade: how many attendees have >= 3 attending friends *)
  let counts = D.relation result "cnt" in
  let cascade = List.filter (function [ _; n ] -> n >= 3 | _ -> false) counts in
  Printf.printf "of which %d were pulled in by the 3-friends rule\n" (List.length cascade)
