(* Quickstart: transitive closure over a tiny edge relation.

   Run with: dune exec examples/quickstart.exe *)

let program = {|
  % reachability: the transitive closure of arc
  tc(X, Y) <- arc(X, Y).
  tc(X, Y) <- tc(X, Z), arc(Z, Y).
|}

let () =
  let prepared =
    match Dcdatalog.prepare program with
    | Ok p -> p
    | Error e -> failwith e
  in
  print_endline "Physical plan:";
  print_endline (Dcdatalog.explain prepared);

  let edb = [ ("arc", Dcdatalog.tuples [ [ 1; 2 ]; [ 2; 3 ]; [ 3; 4 ]; [ 2; 5 ] ]) ] in
  let result = Dcdatalog.run prepared ~edb () in

  print_endline "tc:";
  List.iter
    (fun row -> print_endline ("  " ^ String.concat " -> " (List.map string_of_int row)))
    (Dcdatalog.relation result "tc");

  Format.printf "%a" Dcdatalog.Run_stats.pp result.stats
