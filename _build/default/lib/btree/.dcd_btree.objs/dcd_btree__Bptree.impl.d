lib/btree/bptree.ml: Array List Obj Printf
