lib/btree/bptree.mli:
