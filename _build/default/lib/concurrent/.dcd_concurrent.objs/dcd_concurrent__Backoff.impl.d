lib/concurrent/backoff.ml: Domain Unix
