lib/concurrent/backoff.mli:
