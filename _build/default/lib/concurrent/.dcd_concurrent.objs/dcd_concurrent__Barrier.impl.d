lib/concurrent/barrier.ml: Condition Mutex
