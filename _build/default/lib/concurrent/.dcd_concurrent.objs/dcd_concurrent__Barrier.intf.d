lib/concurrent/barrier.mli:
