lib/concurrent/chunk_queue.ml: Array Atomic Obj
