lib/concurrent/chunk_queue.mli:
