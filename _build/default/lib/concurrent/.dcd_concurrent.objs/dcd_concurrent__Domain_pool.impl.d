lib/concurrent/domain_pool.ml: Array Domain
