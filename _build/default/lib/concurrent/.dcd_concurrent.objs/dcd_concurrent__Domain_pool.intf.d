lib/concurrent/domain_pool.mli:
