lib/concurrent/locked_queue.ml: Mutex Queue
