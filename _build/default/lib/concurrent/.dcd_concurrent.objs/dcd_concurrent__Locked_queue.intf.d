lib/concurrent/locked_queue.mli:
