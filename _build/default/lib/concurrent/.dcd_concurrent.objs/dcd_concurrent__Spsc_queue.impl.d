lib/concurrent/spsc_queue.ml: Array Atomic Obj
