lib/concurrent/spsc_queue.mli:
