lib/concurrent/termination.ml: Array Atomic
