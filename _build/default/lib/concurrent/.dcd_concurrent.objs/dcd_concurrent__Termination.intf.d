lib/concurrent/termination.mli:
