type t = {
  spin_limit : int;
  max_sleep : float;
  mutable spins : int;
  mutable sleep : float;
}

let create ?(spin_limit = 64) ?(max_sleep = 1e-3) () =
  { spin_limit; max_sleep; spins = 0; sleep = 1e-6 }

let once t =
  if t.spins < t.spin_limit then begin
    t.spins <- t.spins + 1;
    Domain.cpu_relax ()
  end
  else begin
    Unix.sleepf t.sleep;
    t.sleep <- min t.max_sleep (t.sleep *. 2.)
  end

let reset t =
  t.spins <- 0;
  t.sleep <- 1e-6
