(** Escalating backoff for polling loops.

    Starts with cheap [Domain.cpu_relax] spins and escalates to short
    sleeps.  On oversubscribed machines (more domains than cores) pure
    spinning starves the very workers one is waiting for, so escalation
    to [sleepf] matters for correctness of the measurements, not just
    politeness. *)

type t

val create : ?spin_limit:int -> ?max_sleep:float -> unit -> t
(** [spin_limit] spins before the first sleep (default 64); [max_sleep]
    caps the sleep duration in seconds (default 1e-3). *)

val once : t -> unit
(** Performs one wait step and escalates the internal state. *)

val reset : t -> unit
(** Back to the cheap-spin phase; call after useful work was found. *)
