type 'a node = {
  arr : 'a array;
  committed : int Atomic.t; (* elements of [arr] published by the producer *)
  next : 'a node option Atomic.t;
}

type 'a t = {
  chunk : int;
  mutable head : 'a node; (* consumer cursor *)
  mutable head_idx : int; (* consumed elements within [head] *)
  mutable tail : 'a node; (* producer cursor *)
  pushed : int Atomic.t;
  popped : int Atomic.t;
}

let make_node chunk =
  { arr = Array.make chunk (Obj.magic 0); committed = Atomic.make 0; next = Atomic.make None }

let create ?(chunk = 256) () =
  if chunk < 1 then invalid_arg "Chunk_queue.create";
  let n = make_node chunk in
  { chunk; head = n; head_idx = 0; tail = n; pushed = Atomic.make 0; popped = Atomic.make 0 }

let push t x =
  let node = t.tail in
  let i = Atomic.get node.committed in
  if i < t.chunk then begin
    Array.unsafe_set node.arr i x;
    (* Release store: publishes arr.(i) to the consumer. *)
    Atomic.set node.committed (i + 1)
  end
  else begin
    let fresh = make_node t.chunk in
    fresh.arr.(0) <- x;
    Atomic.set fresh.committed 1;
    (* Publish the new node only after its first element is committed. *)
    Atomic.set node.next (Some fresh);
    t.tail <- fresh
  end;
  Atomic.incr t.pushed

let rec try_pop t =
  let node = t.head in
  let committed = Atomic.get node.committed in
  if t.head_idx < committed then begin
    let x = Array.unsafe_get node.arr t.head_idx in
    Array.unsafe_set node.arr t.head_idx (Obj.magic 0);
    t.head_idx <- t.head_idx + 1;
    Atomic.incr t.popped;
    Some x
  end
  else if committed = t.chunk then
    match Atomic.get node.next with
    | Some next ->
      t.head <- next;
      t.head_idx <- 0;
      try_pop t
    | None -> None
  else None

let drain t f =
  let n = ref 0 in
  let rec loop () =
    match try_pop t with
    | Some x ->
      f x;
      incr n;
      loop ()
    | None -> ()
  in
  loop ();
  !n

let size t = max 0 (Atomic.get t.pushed - Atomic.get t.popped)

let is_empty t = size t = 0
