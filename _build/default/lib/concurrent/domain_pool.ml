let run ~workers body =
  if workers < 1 then invalid_arg "Domain_pool.run";
  let results : 'a option array = Array.make workers None in
  let errors : exn option array = Array.make workers None in
  let wrap i () =
    match body i with
    | x -> results.(i) <- Some x
    | exception e -> errors.(i) <- Some e
  in
  let domains = Array.init (workers - 1) (fun k -> Domain.spawn (wrap (k + 1))) in
  wrap 0 ();
  Array.iter Domain.join domains;
  Array.iteri (fun _ e -> match e with Some exn -> raise exn | None -> ()) errors;
  Array.map
    (function
      | Some x -> x
      | None -> assert false)
    results

let recommended_workers () = max 1 (Domain.recommended_domain_count ())
