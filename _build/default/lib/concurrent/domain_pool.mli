(** Fork–join execution of worker bodies on OCaml 5 domains. *)

val run : workers:int -> (int -> 'a) -> 'a array
(** [run ~workers body] executes [body i] for each worker index
    [0 .. workers-1], worker 0 on the calling domain and the rest on
    fresh domains, and returns the results indexed by worker.  If any
    body raises, the first exception (by worker index) is re-raised
    after all domains have been joined. *)

val recommended_workers : unit -> int
(** [Domain.recommended_domain_count], at least 1. *)
