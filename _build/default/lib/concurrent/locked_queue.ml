type 'a t = {
  mutex : Mutex.t;
  queue : 'a Queue.t;
}

let create () = { mutex = Mutex.create (); queue = Queue.create () }

let with_lock t f =
  Mutex.lock t.mutex;
  match f () with
  | x ->
    Mutex.unlock t.mutex;
    x
  | exception e ->
    Mutex.unlock t.mutex;
    raise e

let push t x = with_lock t (fun () -> Queue.push x t.queue)

let try_pop t = with_lock t (fun () -> Queue.take_opt t.queue)

let drain t f =
  with_lock t (fun () ->
      let n = Queue.length t.queue in
      for _ = 1 to n do
        f (Queue.pop t.queue)
      done;
      n)

let size t = with_lock t (fun () -> Queue.length t.queue)

let is_empty t = size t = 0
