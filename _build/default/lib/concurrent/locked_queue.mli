(** Mutex-protected unbounded FIFO queue.

    The coarse-grained alternative the paper's §6.1 argues against; kept
    as the baseline for the SPSC-vs-lock ablation microbenchmark.  Safe
    for any number of producers and consumers. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> 'a -> unit

val try_pop : 'a t -> 'a option

val drain : 'a t -> ('a -> unit) -> int

val size : 'a t -> int

val is_empty : 'a t -> bool
