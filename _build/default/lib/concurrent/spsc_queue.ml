type 'a t = {
  slots : 'a array;
  mask : int;
  head : int Atomic.t; (* next slot to pop; advanced by the consumer *)
  tail : int Atomic.t; (* next slot to push; advanced by the producer *)
}

let next_pow2 n =
  let rec loop p = if p >= n then p else loop (p * 2) in
  loop 1

let create ~capacity =
  if capacity < 1 then invalid_arg "Spsc_queue.create";
  let cap = next_pow2 capacity in
  {
    slots = Array.make cap (Obj.magic 0);
    mask = cap - 1;
    head = Atomic.make 0;
    tail = Atomic.make 0;
  }

let capacity t = t.mask + 1

let try_push t x =
  let tail = Atomic.get t.tail in
  let head = Atomic.get t.head in
  if tail - head > t.mask then false
  else begin
    Array.unsafe_set t.slots (tail land t.mask) x;
    (* Release store: publishes the slot write above to the consumer. *)
    Atomic.set t.tail (tail + 1);
    true
  end

let try_pop t =
  let head = Atomic.get t.head in
  let tail = Atomic.get t.tail in
  if head >= tail then None
  else begin
    let i = head land t.mask in
    let x = Array.unsafe_get t.slots i in
    Array.unsafe_set t.slots i (Obj.magic 0);
    Atomic.set t.head (head + 1);
    Some x
  end

let drain t f =
  let head = Atomic.get t.head in
  let tail = Atomic.get t.tail in
  let n = tail - head in
  for k = 0 to n - 1 do
    let i = (head + k) land t.mask in
    f (Array.unsafe_get t.slots i);
    Array.unsafe_set t.slots i (Obj.magic 0)
  done;
  if n > 0 then Atomic.set t.head tail;
  n

let size t = max 0 (Atomic.get t.tail - Atomic.get t.head)

let is_empty t = size t = 0
