(** Bounded single-producer single-consumer ring queue (paper §6.1).

    The queue is a ring array whose head and tail are maintained with
    atomic operations only — no locks.  Exactly one domain may call the
    producer operations ([try_push]) and exactly one domain the consumer
    operations ([try_pop], [drain]); this is the ownership discipline the
    DWS message-buffer matrix [M_i^j] guarantees by construction, because
    buffer (i, j) is written only by worker [j] and read only by worker
    [i].

    Publication safety: the element store is a plain array; visibility of
    the element written at slot [t] is ensured because the producer's
    atomic store of the tail index happens-before the consumer's atomic
    load of it (OCaml memory model publication idiom). *)

type 'a t

val create : capacity:int -> 'a t
(** [create ~capacity] rounds [capacity] up to a power of two.
    @raise Invalid_argument if [capacity < 1]. *)

val capacity : 'a t -> int

val try_push : 'a t -> 'a -> bool
(** Producer only. [false] when the ring is full. *)

val try_pop : 'a t -> 'a option
(** Consumer only. [None] when the ring is empty. *)

val drain : 'a t -> ('a -> unit) -> int
(** Consumer only. Pops everything currently visible, calling the
    function on each element in FIFO order; returns the count. *)

val size : 'a t -> int
(** Snapshot of the current occupancy; exact only for the owning
    endpoints, approximate for observers. *)

val is_empty : 'a t -> bool
