type t = {
  nworkers : int;
  sent_total : int Atomic.t;
  consumed_by : int Atomic.t array;
  active : bool Atomic.t array;
  active_count : int Atomic.t;
}

let create ~workers =
  if workers < 1 then invalid_arg "Termination.create";
  {
    nworkers = workers;
    sent_total = Atomic.make 0;
    consumed_by = Array.init workers (fun _ -> Atomic.make 0);
    active = Array.init workers (fun _ -> Atomic.make true);
    active_count = Atomic.make workers;
  }

let workers t = t.nworkers

let sent t n = if n > 0 then ignore (Atomic.fetch_and_add t.sent_total n)

let consumed t ~worker n = if n > 0 then ignore (Atomic.fetch_and_add t.consumed_by.(worker) n)

let set_active t ~worker flag =
  let cell = t.active.(worker) in
  if Atomic.exchange cell flag <> flag then
    if flag then ignore (Atomic.fetch_and_add t.active_count 1)
    else ignore (Atomic.fetch_and_add t.active_count (-1))

let is_active t ~worker = Atomic.get t.active.(worker)

let total_sent t = Atomic.get t.sent_total

let total_consumed t =
  Array.fold_left (fun acc c -> acc + Atomic.get c) 0 t.consumed_by

let quiescent t =
  if Atomic.get t.active_count <> 0 then false
  else begin
    let sent_before = Atomic.get t.sent_total in
    let consumed = total_consumed t in
    let sent_after = Atomic.get t.sent_total in
    (* A stable snapshot: nothing was sent while we summed, every sent
       tuple was consumed, and nobody woke up meanwhile. *)
    sent_before = sent_after && consumed = sent_after && Atomic.get t.active_count = 0
  end
