lib/datalog/analysis.ml: Ast Hashtbl List Map Printf Set String
