lib/datalog/analysis.mli: Ast
