lib/datalog/ast.ml: Format List
