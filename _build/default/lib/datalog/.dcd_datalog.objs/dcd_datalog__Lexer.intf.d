lib/datalog/lexer.mli:
