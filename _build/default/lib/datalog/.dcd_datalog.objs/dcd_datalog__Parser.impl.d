lib/datalog/parser.ml: Array Ast Lexer List Option Printf
