lib/datalog/parser.mli: Ast
