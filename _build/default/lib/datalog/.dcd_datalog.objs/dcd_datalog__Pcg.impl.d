lib/datalog/pcg.ml: Analysis Ast Format List Printf Set String
