lib/datalog/pcg.mli: Analysis Ast Format
