type recursion_kind =
  | Nonrecursive
  | Linear
  | Nonlinear
  | Mutual

type stratum = {
  preds : string list;
  kind : recursion_kind;
  base_rules : Ast.rule list;
  recursive_rules : Ast.rule list;
}

type info = {
  program : Ast.program;
  strata : stratum list;
  edb : string list;
  idb : string list;
  arities : (string * int) list;
  aggregated : (string * (int * Ast.agg_kind)) list;
}

let recursion_kind_to_string = function
  | Nonrecursive -> "nonrecursive"
  | Linear -> "linear"
  | Nonlinear -> "nonlinear"
  | Mutual -> "mutual"

exception Static_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Static_error s)) fmt

module Smap = Map.Make (String)
module Sset = Set.Make (String)

(* --- arity collection --- *)

let collect_arities (p : Ast.program) =
  let add name arity where arities =
    match Smap.find_opt name arities with
    | None -> Smap.add name arity arities
    | Some a when a = arity -> arities
    | Some a -> fail "predicate %s used with arity %d and %d (%s)" name a arity where
  in
  List.fold_left
    (fun arities (r : Ast.rule) ->
      let arities = add r.head_pred (Ast.head_arity r) (Ast.rule_to_string r) arities in
      List.fold_left
        (fun arities lit ->
          match lit with
          | Ast.Pos a | Ast.Neg_lit a ->
            add a.pred (List.length a.args) (Ast.rule_to_string r) arities
          | Ast.Cmp _ -> arities)
        arities r.body)
    Smap.empty p.rules

(* --- safety --- *)

let check_safety (r : Ast.rule) =
  let bound = ref Sset.empty in
  let bind v = bound := Sset.add v !bound in
  List.iter
    (function
      | Ast.Pos a -> List.iter (fun t -> List.iter bind (Ast.vars_of_term t)) a.Ast.args
      | Ast.Neg_lit _ | Ast.Cmp _ -> ())
    r.body;
  (* assignment chains: X = expr with all of expr's vars bound binds X *)
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (function
        | Ast.Cmp (Ast.Eq, lhs, rhs) ->
          let try_bind target source =
            match target with
            | Ast.Term (Ast.Var x) when not (Sset.mem x !bound) ->
              if List.for_all (fun v -> Sset.mem v !bound) (Ast.vars_of_expr source) then begin
                bind x;
                changed := true
              end
            | _ -> ()
          in
          try_bind lhs rhs;
          try_bind rhs lhs
        | Ast.Cmp _ | Ast.Pos _ | Ast.Neg_lit _ -> ())
      r.body
  done;
  let require where v =
    if not (Sset.mem v !bound) then
      fail "unsafe rule: variable %s in %s is not bound by any positive body atom (%s)" v where
        (Ast.rule_to_string r)
  in
  List.iter (fun arg -> List.iter (require "head") (Ast.vars_of_head_arg arg)) r.head_args;
  List.iter
    (function
      | Ast.Neg_lit a ->
        List.iter (fun t -> List.iter (require "negated atom") (Ast.vars_of_term t)) a.Ast.args
      | Ast.Cmp (_, lhs, rhs) ->
        List.iter (require "comparison") (Ast.vars_of_expr lhs @ Ast.vars_of_expr rhs)
      | Ast.Pos _ -> ())
    r.body

(* --- dependency graph and Tarjan SCC --- *)

let dependency_graph (p : Ast.program) =
  List.fold_left
    (fun g (r : Ast.rule) ->
      let deps =
        List.filter_map
          (function Ast.Pos a | Ast.Neg_lit a -> Some a.Ast.pred | Ast.Cmp _ -> None)
          r.body
      in
      let old = match Smap.find_opt r.head_pred g with Some l -> l | None -> [] in
      Smap.add r.head_pred (deps @ old) g)
    Smap.empty p.rules

(* Tarjan's algorithm; emits SCCs dependencies-first, which is exactly
   the bottom-up evaluation order of strata. *)
let sccs graph all_preds =
  let index = Hashtbl.create 16 in
  let lowlink = Hashtbl.create 16 in
  let on_stack = Hashtbl.create 16 in
  let stack = ref [] in
  let counter = ref 0 in
  let out = ref [] in
  let rec strongconnect v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace lowlink v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v true;
    let succs = match Smap.find_opt v graph with Some l -> l | None -> [] in
    List.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strongconnect w;
          Hashtbl.replace lowlink v (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
        end
        else if Hashtbl.find_opt on_stack w = Some true then
          Hashtbl.replace lowlink v (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      succs;
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
          stack := rest;
          Hashtbl.replace on_stack w false;
          if String.equal w v then w :: acc else pop (w :: acc)
      in
      out := pop [] :: !out
    end
  in
  List.iter (fun v -> if not (Hashtbl.mem index v) then strongconnect v) all_preds;
  List.rev !out

(* --- aggregate well-formedness --- *)

let collect_aggregates (p : Ast.program) =
  List.fold_left
    (fun aggs (r : Ast.rule) ->
      let this =
        try Ast.agg_of_rule r
        with Invalid_argument _ ->
          fail "rule has multiple aggregates in its head (%s)" (Ast.rule_to_string r)
      in
      match (Smap.find_opt r.head_pred aggs, this) with
      | None, None -> aggs
      | None, Some a -> (
        (* reject if an earlier rule for this pred had no aggregate *)
        match
          List.find_opt
            (fun (r' : Ast.rule) ->
              String.equal r'.head_pred r.head_pred && Ast.agg_of_rule r' = None)
            p.rules
        with
        | Some r' ->
          fail "predicate %s mixes aggregate and plain heads (%s)" r.head_pred
            (Ast.rule_to_string r')
        | None -> Smap.add r.head_pred a aggs)
      | Some _, None ->
        fail "predicate %s mixes aggregate and plain heads (%s)" r.head_pred
          (Ast.rule_to_string r)
      | Some a, Some a' ->
        if a <> a' then
          fail "predicate %s has inconsistent aggregates across rules" r.head_pred;
        aggs)
    Smap.empty p.rules

(* --- putting it together --- *)

let stratum_rules (p : Ast.program) members =
  let member_set = Sset.of_list members in
  let mine = List.filter (fun (r : Ast.rule) -> Sset.mem r.head_pred member_set) p.rules in
  List.partition
    (fun (r : Ast.rule) ->
      not
        (List.exists
           (fun (a : Ast.atom) -> Sset.mem a.pred member_set)
           (Ast.body_atoms r)))
    mine

let classify members recursive_rules =
  let member_set = Sset.of_list members in
  if recursive_rules = [] then Nonrecursive
  else if List.length members > 1 then Mutual
  else
    let nonlinear =
      List.exists
        (fun (r : Ast.rule) ->
          let rec_atoms =
            List.filter (fun (a : Ast.atom) -> Sset.mem a.pred member_set) (Ast.body_atoms r)
          in
          List.length rec_atoms >= 2)
        recursive_rules
    in
    if nonlinear then Nonlinear else Linear

let check_negation_stratified (p : Ast.program) scc_of_pred =
  List.iter
    (fun (r : Ast.rule) ->
      List.iter
        (function
          | Ast.Neg_lit a ->
            if Smap.find_opt a.Ast.pred scc_of_pred = Smap.find_opt r.head_pred scc_of_pred
            then
              fail "negation of %s inside its own recursion is not supported (%s)" a.Ast.pred
                (Ast.rule_to_string r)
          | Ast.Pos _ | Ast.Cmp _ -> ())
        r.body)
    p.rules

let analyze (p : Ast.program) =
  try
    let arities = collect_arities p in
    List.iter check_safety p.rules;
    let aggs = collect_aggregates p in
    let heads = List.map (fun (r : Ast.rule) -> r.head_pred) p.rules in
    let head_set = Sset.of_list heads in
    let all_preds = Smap.bindings arities |> List.map fst in
    let edb = List.filter (fun pr -> not (Sset.mem pr head_set)) all_preds in
    let idb = List.filter (fun pr -> Sset.mem pr head_set) all_preds in
    let graph = dependency_graph p in
    let components = sccs graph all_preds in
    let scc_of_pred =
      List.fold_left
        (fun m (i, comp) -> List.fold_left (fun m pr -> Smap.add pr i m) m comp)
        Smap.empty
        (List.mapi (fun i c -> (i, c)) components)
    in
    check_negation_stratified p scc_of_pred;
    let strata =
      List.filter_map
        (fun members ->
          let members = List.sort String.compare members in
          let base_rules, recursive_rules = stratum_rules p members in
          if base_rules = [] && recursive_rules = [] then None (* pure EDB component *)
          else begin
            (* a single pred with a self-loop is recursive even if
               stratum_rules put everything in [recursive_rules] *)
            let kind = classify members recursive_rules in
            (if kind <> Nonrecursive then
               List.iter
                 (fun (r : Ast.rule) ->
                   List.iter
                     (function
                       | Ast.Neg_lit a when List.mem a.Ast.pred members ->
                         fail "negation inside recursion (%s)" (Ast.rule_to_string r)
                       | _ -> ())
                     r.body)
                 recursive_rules);
            Some { preds = members; kind; base_rules; recursive_rules }
          end)
        components
    in
    Ok
      {
        program = p;
        strata;
        edb;
        idb;
        arities = Smap.bindings arities;
        aggregated = Smap.bindings aggs;
      }
  with Static_error msg -> Error msg

let stratum_of_pred info pred = List.find_opt (fun s -> List.mem pred s.preds) info.strata

let is_recursive_atom stratum (a : Ast.atom) = List.mem a.pred stratum.preds
