(** Static analysis of Datalog programs (paper §3, Query Processor).

    Builds the predicate dependency graph, computes its strongly
    connected components (Tarjan) to obtain an evaluation order of
    strata, classifies each stratum's recursion (paper §4.3), and
    performs the safety / stratification / aggregate well-formedness
    checks that the planner relies on. *)

type recursion_kind =
  | Nonrecursive
  | Linear (** single recursive predicate, one recursive atom per rule body *)
  | Nonlinear (** some rule has ≥ 2 recursive atoms (e.g. APSP) *)
  | Mutual (** ≥ 2 predicates recurring through each other (e.g. Attend) *)

type stratum = {
  preds : string list; (** SCC members, deterministically ordered *)
  kind : recursion_kind;
  base_rules : Ast.rule list;
      (** rules for these heads with no body atom in this stratum *)
  recursive_rules : Ast.rule list;
}

type info = {
  program : Ast.program;
  strata : stratum list; (** bottom-up evaluation order *)
  edb : string list; (** predicates with no defining rules *)
  idb : string list;
  arities : (string * int) list;
  aggregated : (string * (int * Ast.agg_kind)) list;
      (** aggregate head predicates with the aggregate position/kind *)
}

val analyze : Ast.program -> (info, string) result
(** All static errors are reported as [Error msg]:
    arity inconsistencies, unsafe rules (head or comparison variables
    not bound by any positive body atom or assignment chain), negation
    inside a recursive stratum, inconsistent or multiple aggregates,
    and aggregates mixed with plain rules for the same predicate. *)

val recursion_kind_to_string : recursion_kind -> string

val stratum_of_pred : info -> string -> stratum option

val is_recursive_atom : stratum -> Ast.atom -> bool
(** Whether an atom refers to a predicate of this stratum. *)
