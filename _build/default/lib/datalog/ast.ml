type term =
  | Var of string
  | Int of int
  | Sym of string

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod

type expr =
  | Term of term
  | Binop of binop * expr * expr
  | Neg of expr

type cmp_op =
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge

type agg_kind =
  | Min
  | Max
  | Count
  | Sum

type head_arg =
  | Plain of term
  | Agg of agg_kind * term list

type atom = {
  pred : string;
  args : term list;
}

type literal =
  | Pos of atom
  | Neg_lit of atom
  | Cmp of cmp_op * expr * expr

type rule = {
  head_pred : string;
  head_args : head_arg list;
  body : literal list;
}

type program = {
  rules : rule list;
}

let vars_of_term = function
  | Var v -> [ v ]
  | Int _ | Sym _ -> []

let rec vars_of_expr = function
  | Term t -> vars_of_term t
  | Binop (_, a, b) -> vars_of_expr a @ vars_of_expr b
  | Neg e -> vars_of_expr e

let vars_of_atom a = List.concat_map vars_of_term a.args

let vars_of_literal = function
  | Pos a | Neg_lit a -> vars_of_atom a
  | Cmp (_, a, b) -> vars_of_expr a @ vars_of_expr b

let vars_of_head_arg = function
  | Plain t -> vars_of_term t
  | Agg (_, ts) -> List.concat_map vars_of_term ts

let body_atoms r =
  List.filter_map (function Pos a -> Some a | Neg_lit _ | Cmp _ -> None) r.body

let head_arity r = List.length r.head_args

let is_fact r =
  r.body = [] && List.for_all (fun arg -> vars_of_head_arg arg = []) r.head_args

let agg_of_rule r =
  let aggs =
    List.filteri (fun _ arg -> match arg with Agg _ -> true | Plain _ -> false)
      r.head_args
  in
  match aggs with
  | [] -> None
  | [ _ ] ->
    let rec find i = function
      | [] -> assert false
      | Agg (k, _) :: _ -> (i, k)
      | Plain _ :: rest -> find (i + 1) rest
    in
    Some (find 0 r.head_args)
  | _ -> invalid_arg "agg_of_rule: multiple aggregates in one head"

(* --- pretty printing --- *)

let pp_term fmt = function
  | Var v -> Format.pp_print_string fmt v
  | Int i -> Format.pp_print_int fmt i
  | Sym s -> Format.pp_print_string fmt s

let binop_str = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"

let rec pp_expr fmt = function
  | Term t -> pp_term fmt t
  | Binop (op, a, b) -> Format.fprintf fmt "(%a %s %a)" pp_expr a (binop_str op) pp_expr b
  | Neg e -> Format.fprintf fmt "(-%a)" pp_expr e

let cmp_str = function
  | Eq -> "="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let agg_str = function
  | Min -> "min"
  | Max -> "max"
  | Count -> "count"
  | Sum -> "sum"

let pp_terms fmt ts =
  Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt ", ") pp_term fmt ts

let pp_atom fmt a = Format.fprintf fmt "%s(%a)" a.pred pp_terms a.args

let pp_head_arg fmt = function
  | Plain t -> pp_term fmt t
  | Agg (k, [ t ]) -> Format.fprintf fmt "%s<%a>" (agg_str k) pp_term t
  | Agg (k, ts) -> Format.fprintf fmt "%s<(%a)>" (agg_str k) pp_terms ts

let pp_literal fmt = function
  | Pos a -> pp_atom fmt a
  | Neg_lit a -> Format.fprintf fmt "!%a" pp_atom a
  | Cmp (op, a, b) -> Format.fprintf fmt "%a %s %a" pp_expr a (cmp_str op) pp_expr b

let pp_rule fmt r =
  let pp_head_args fmt args =
    Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt ", ") pp_head_arg fmt args
  in
  if r.body = [] then Format.fprintf fmt "%s(%a)." r.head_pred pp_head_args r.head_args
  else
    Format.fprintf fmt "%s(%a) <- %a." r.head_pred pp_head_args r.head_args
      (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt ", ") pp_literal)
      r.body

let pp_program fmt p =
  Format.pp_print_list ~pp_sep:Format.pp_print_newline pp_rule fmt p.rules

let rule_to_string r = Format.asprintf "%a" pp_rule r
