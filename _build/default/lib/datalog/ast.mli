(** Abstract syntax of DCDatalog programs (paper §2.1).

    Conventions follow classical Datalog: identifiers starting with an
    uppercase letter (or [_]) are variables, lowercase identifiers are
    symbolic constants (interned to integers at compile time, or bound
    as runtime parameters like [start] in the SSSP query), and integer
    literals are themselves.  Aggregates ([min]/[max]/[count]/[sum])
    may appear only in rule heads and may be used freely in recursion —
    the engine evaluates them with monotone semantics (§4.3, §6.2). *)

type term =
  | Var of string
  | Int of int
  | Sym of string (** lowercase symbolic constant or runtime parameter *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod

type expr =
  | Term of term
  | Binop of binop * expr * expr
  | Neg of expr

type cmp_op =
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge

type agg_kind =
  | Min
  | Max
  | Count
  | Sum

type head_arg =
  | Plain of term
  | Agg of agg_kind * term list
      (** [Agg (Sum, [c1; ...; ck; v])]: value [v], contributor key
          [c1..ck] (replaceable partial values, see {!Dcd_storage.Agg_table}).
          [Count]: all terms form the contributor. [Min]/[Max]: single
          value term. *)

type atom = {
  pred : string;
  args : term list;
}

type literal =
  | Pos of atom
  | Neg_lit of atom (** stratified negation; rejected inside recursion *)
  | Cmp of cmp_op * expr * expr
      (** [Cmp (Eq, Term (Var x), e)] doubles as an assignment when [x]
          is unbound — the planner decides. *)

type rule = {
  head_pred : string;
  head_args : head_arg list;
  body : literal list;
}

type program = {
  rules : rule list;
}

val vars_of_term : term -> string list

val vars_of_expr : expr -> string list

val vars_of_literal : literal -> string list

val vars_of_head_arg : head_arg -> string list

val body_atoms : rule -> atom list
(** Positive atoms of the body, in order. *)

val head_arity : rule -> int

val is_fact : rule -> bool
(** A rule with an empty body and no variables. *)

val agg_of_rule : rule -> (int * agg_kind) option
(** Position and kind of the aggregate head argument, if any.
    @raise Invalid_argument if a head has more than one aggregate. *)

(** {1 Pretty printing} *)

val pp_term : Format.formatter -> term -> unit
val pp_expr : Format.formatter -> expr -> unit
val pp_literal : Format.formatter -> literal -> unit
val pp_rule : Format.formatter -> rule -> unit
val pp_program : Format.formatter -> program -> unit
val rule_to_string : rule -> string
