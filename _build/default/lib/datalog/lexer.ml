type token =
  | IDENT of string
  | UVAR of string
  | INT of int
  | STRING of string
  | LPAREN
  | RPAREN
  | COMMA
  | DOT
  | ARROW
  | LT
  | LE
  | GT
  | GE
  | EQ
  | NE
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT_OP
  | BANG
  | EOF

exception Lex_error of string

type spanned = {
  tok : token;
  line : int;
  col : int;
}

let token_to_string = function
  | IDENT s -> Printf.sprintf "identifier %s" s
  | UVAR s -> Printf.sprintf "variable %s" s
  | INT i -> Printf.sprintf "integer %d" i
  | STRING s -> Printf.sprintf "string %S" s
  | LPAREN -> "("
  | RPAREN -> ")"
  | COMMA -> ","
  | DOT -> "."
  | ARROW -> "<-"
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | EQ -> "="
  | NE -> "!="
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | PERCENT_OP -> "%%"
  | BANG -> "!"
  | EOF -> "end of input"

type cursor = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
}

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let peek2 c = if c.pos + 1 < String.length c.src then Some c.src.[c.pos + 1] else None

let advance c =
  (match peek c with
  | Some '\n' ->
    c.line <- c.line + 1;
    c.col <- 1
  | Some _ -> c.col <- c.col + 1
  | None -> ());
  c.pos <- c.pos + 1

let error c msg = raise (Lex_error (Printf.sprintf "line %d, col %d: %s" c.line c.col msg))

let is_digit ch = ch >= '0' && ch <= '9'

let is_ident_start ch = (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') || ch = '_'

let is_ident ch = is_ident_start ch || is_digit ch

let rec skip_trivia c =
  match peek c with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance c;
    skip_trivia c
  | Some '%' when peek2 c <> Some '%' ->
    while peek c <> None && peek c <> Some '\n' do
      advance c
    done;
    skip_trivia c
  | Some '/' when peek2 c = Some '/' ->
    while peek c <> None && peek c <> Some '\n' do
      advance c
    done;
    skip_trivia c
  | Some '/' when peek2 c = Some '*' ->
    advance c;
    advance c;
    let rec close () =
      match peek c with
      | None -> error c "unterminated comment"
      | Some '*' when peek2 c = Some '/' ->
        advance c;
        advance c
      | Some _ ->
        advance c;
        close ()
    in
    close ();
    skip_trivia c
  | _ -> ()

let lex_word c =
  let start = c.pos in
  while (match peek c with Some ch -> is_ident ch | None -> false) do
    advance c
  done;
  String.sub c.src start (c.pos - start)

let lex_int c =
  let start = c.pos in
  while (match peek c with Some ch -> is_digit ch | None -> false) do
    advance c
  done;
  int_of_string (String.sub c.src start (c.pos - start))

let lex_string c =
  advance c;
  (* opening quote *)
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek c with
    | None -> error c "unterminated string literal"
    | Some '"' -> advance c
    | Some '\\' -> (
      advance c;
      match peek c with
      | Some 'n' ->
        Buffer.add_char buf '\n';
        advance c;
        loop ()
      | Some ch ->
        Buffer.add_char buf ch;
        advance c;
        loop ()
      | None -> error c "unterminated escape")
    | Some ch ->
      Buffer.add_char buf ch;
      advance c;
      loop ()
  in
  loop ();
  Buffer.contents buf

let next_token c =
  skip_trivia c;
  let line = c.line and col = c.col in
  let mk tok = { tok; line; col } in
  match peek c with
  | None -> mk EOF
  | Some ch when is_digit ch -> mk (INT (lex_int c))
  | Some ch when is_ident_start ch ->
    let w = lex_word c in
    if (ch >= 'A' && ch <= 'Z') || ch = '_' then mk (UVAR w) else mk (IDENT w)
  | Some '"' -> mk (STRING (lex_string c))
  | Some '(' ->
    advance c;
    mk LPAREN
  | Some ')' ->
    advance c;
    mk RPAREN
  | Some ',' ->
    advance c;
    mk COMMA
  | Some '.' ->
    advance c;
    mk DOT
  | Some ':' when peek2 c = Some '-' ->
    advance c;
    advance c;
    mk ARROW
  | Some '<' when peek2 c = Some '-' ->
    advance c;
    advance c;
    mk ARROW
  | Some '<' when peek2 c = Some '=' ->
    advance c;
    advance c;
    mk LE
  | Some '<' ->
    advance c;
    mk LT
  | Some '>' when peek2 c = Some '=' ->
    advance c;
    advance c;
    mk GE
  | Some '>' ->
    advance c;
    mk GT
  | Some '=' ->
    advance c;
    mk EQ
  | Some '!' when peek2 c = Some '=' ->
    advance c;
    advance c;
    mk NE
  | Some '!' ->
    advance c;
    mk BANG
  | Some '+' ->
    advance c;
    mk PLUS
  | Some '-' ->
    advance c;
    mk MINUS
  | Some '*' ->
    advance c;
    mk STAR
  | Some '/' ->
    advance c;
    mk SLASH
  | Some '%' when peek2 c = Some '%' ->
    advance c;
    advance c;
    mk PERCENT_OP
  | Some ch -> error c (Printf.sprintf "unexpected character %C" ch)

let tokenize src =
  let c = { src; pos = 0; line = 1; col = 1 } in
  let rec loop acc =
    let t = next_token c in
    if t.tok = EOF then List.rev (t :: acc) else loop (t :: acc)
  in
  loop []
