(** Tokenizer for Datalog source.

    Comments run from [%] or [//] to end of line, or between [/*] and
    [*/].  Identifiers beginning with an uppercase letter or [_] are
    variables; lowercase identifiers are predicate names, symbolic
    constants, or aggregate keywords depending on context (the parser
    decides). *)

type token =
  | IDENT of string
  | UVAR of string
  | INT of int
  | STRING of string
  | LPAREN
  | RPAREN
  | COMMA
  | DOT
  | ARROW (** [:-] or [<-] *)
  | LT
  | LE
  | GT
  | GE
  | EQ
  | NE
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT_OP (** the [mod] operator spelled [%%] *)
  | BANG
  | EOF

exception Lex_error of string
(** Message includes 1-based line and column. *)

type spanned = {
  tok : token;
  line : int;
  col : int;
}

val tokenize : string -> spanned list
(** @raise Lex_error on malformed input. *)

val token_to_string : token -> string
