open Lexer

exception Parse_error of string

type state = {
  toks : spanned array;
  mutable pos : int;
  mutable fresh : int; (* wildcard counter *)
}

let cur st = st.toks.(st.pos)

let err st msg =
  let s = cur st in
  raise
    (Parse_error
       (Printf.sprintf "line %d, col %d: %s (found %s)" s.line s.col msg (token_to_string s.tok)))

let advance st = if st.pos < Array.length st.toks - 1 then st.pos <- st.pos + 1

let eat st tok =
  if (cur st).tok = tok then advance st
  else err st (Printf.sprintf "expected %s" (token_to_string tok))

let fresh_wildcard st =
  let v = Printf.sprintf "_$%d" st.fresh in
  st.fresh <- st.fresh + 1;
  v

let parse_term st =
  match (cur st).tok with
  | UVAR "_" ->
    advance st;
    Ast.Var (fresh_wildcard st)
  | UVAR v ->
    advance st;
    Ast.Var v
  | INT i ->
    advance st;
    Ast.Int i
  | IDENT s ->
    advance st;
    Ast.Sym s
  | STRING s ->
    advance st;
    Ast.Sym s
  | MINUS -> (
    advance st;
    match (cur st).tok with
    | INT i ->
      advance st;
      Ast.Int (-i)
    | _ -> err st "expected integer after unary minus")
  | _ -> err st "expected term"

(* --- arithmetic expressions --- *)

let rec parse_expr st = parse_additive st

and parse_additive st =
  let lhs = ref (parse_multiplicative st) in
  let rec loop () =
    match (cur st).tok with
    | PLUS ->
      advance st;
      lhs := Ast.Binop (Ast.Add, !lhs, parse_multiplicative st);
      loop ()
    | MINUS ->
      advance st;
      lhs := Ast.Binop (Ast.Sub, !lhs, parse_multiplicative st);
      loop ()
    | _ -> ()
  in
  loop ();
  !lhs

and parse_multiplicative st =
  let lhs = ref (parse_unary st) in
  let rec loop () =
    match (cur st).tok with
    | STAR ->
      advance st;
      lhs := Ast.Binop (Ast.Mul, !lhs, parse_unary st);
      loop ()
    | SLASH ->
      advance st;
      lhs := Ast.Binop (Ast.Div, !lhs, parse_unary st);
      loop ()
    | PERCENT_OP ->
      advance st;
      lhs := Ast.Binop (Ast.Mod, !lhs, parse_unary st);
      loop ()
    | _ -> ()
  in
  loop ();
  !lhs

and parse_unary st =
  match (cur st).tok with
  | MINUS ->
    advance st;
    Ast.Neg (parse_unary st)
  | LPAREN ->
    advance st;
    let e = parse_expr st in
    eat st RPAREN;
    e
  | _ -> Ast.Term (parse_term st)

(* --- atoms and literals --- *)

let parse_term_list st =
  let rec loop acc =
    let t = parse_term st in
    match (cur st).tok with
    | COMMA ->
      advance st;
      loop (t :: acc)
    | _ -> List.rev (t :: acc)
  in
  loop []

let parse_atom_args st =
  if (cur st).tok = LPAREN then begin
    advance st;
    let args = parse_term_list st in
    eat st RPAREN;
    args
  end
  else []

let parse_atom st name =
  { Ast.pred = name; args = parse_atom_args st }

let cmp_of_token = function
  | EQ -> Some Ast.Eq
  | NE -> Some Ast.Ne
  | LT -> Some Ast.Lt
  | LE -> Some Ast.Le
  | GT -> Some Ast.Gt
  | GE -> Some Ast.Ge
  | _ -> None

let parse_literal st =
  match (cur st).tok with
  | BANG -> (
    advance st;
    match (cur st).tok with
    | IDENT name ->
      advance st;
      Ast.Neg_lit (parse_atom st name)
    | _ -> err st "expected predicate after '!'")
  | IDENT name when st.toks.(st.pos + 1).tok = LPAREN ->
    advance st;
    Ast.Pos (parse_atom st name)
  | _ -> (
    let lhs = parse_expr st in
    match cmp_of_token (cur st).tok with
    | Some op ->
      advance st;
      let rhs = parse_expr st in
      Ast.Cmp (op, lhs, rhs)
    | None -> (
      (* a bare 0-arity atom like [flag] *)
      match lhs with
      | Ast.Term (Ast.Sym name) -> Ast.Pos { Ast.pred = name; args = [] }
      | _ -> err st "expected comparison operator"))

(* --- heads --- *)

let agg_kind_of_name = function
  | "min" -> Some Ast.Min
  | "max" -> Some Ast.Max
  | "count" -> Some Ast.Count
  | "sum" -> Some Ast.Sum
  | _ -> None

let parse_head_arg st =
  match (cur st).tok with
  | IDENT name
    when agg_kind_of_name name <> None && st.toks.(st.pos + 1).tok = LT -> (
    let kind = Option.get (agg_kind_of_name name) in
    advance st;
    eat st LT;
    let terms =
      if (cur st).tok = LPAREN then begin
        advance st;
        let ts = parse_term_list st in
        eat st RPAREN;
        ts
      end
      else [ parse_term st ]
    in
    eat st GT;
    match (kind, terms) with
    | (Ast.Min | Ast.Max), _ :: _ :: _ ->
      err st "min/max aggregate takes a single term"
    | _ -> Ast.Agg (kind, terms))
  | _ -> Ast.Plain (parse_term st)

let parse_head st =
  match (cur st).tok with
  | IDENT name ->
    advance st;
    let args =
      if (cur st).tok = LPAREN then begin
        advance st;
        let rec loop acc =
          let a = parse_head_arg st in
          match (cur st).tok with
          | COMMA ->
            advance st;
            loop (a :: acc)
          | _ -> List.rev (a :: acc)
        in
        let args = loop [] in
        eat st RPAREN;
        args
      end
      else []
    in
    (name, args)
  | _ -> err st "expected rule head predicate"

let parse_rule_inner st =
  let head_pred, head_args = parse_head st in
  let body =
    if (cur st).tok = ARROW then begin
      advance st;
      let rec loop acc =
        let l = parse_literal st in
        match (cur st).tok with
        | COMMA ->
          advance st;
          loop (l :: acc)
        | _ -> List.rev (l :: acc)
      in
      loop []
    end
    else []
  in
  eat st DOT;
  { Ast.head_pred; head_args; body }

let make_state src = { toks = Array.of_list (tokenize src); pos = 0; fresh = 0 }

let parse_program src =
  let st = make_state src in
  let rec loop acc =
    if (cur st).tok = EOF then List.rev acc else loop (parse_rule_inner st :: acc)
  in
  { Ast.rules = loop [] }

let parse_rule src =
  let st = make_state src in
  let r = parse_rule_inner st in
  if (cur st).tok <> EOF then err st "trailing input after rule";
  r
