(** Recursive-descent parser for Datalog programs.

    Grammar (informal):
    {v
    program  ::= rule*
    rule     ::= head ((":-" | "<-") body)? "."
    head     ::= ident ["(" head_arg ("," head_arg)* ")"]
    head_arg ::= agg | term
    agg      ::= ("min"|"max"|"count"|"sum") "<" agg_body ">"
    agg_body ::= term | "(" term ("," term)* ")"
    body     ::= literal ("," literal)*
    literal  ::= "!" atom | atom | expr cmp expr
    cmp      ::= "=" | "!=" | "<" | "<=" | ">" | ">="
    expr     ::= additive arithmetic over terms ("+ - * / %%")
    term     ::= VARIABLE | integer | ident | string | "-" integer
    v}

    An uppercase/underscore-initial identifier is a variable; [_] is a
    wildcard (each occurrence becomes a fresh variable).  Lowercase
    identifiers in term position are symbolic constants (e.g. the
    [start] parameter of SSSP). *)

exception Parse_error of string
(** Message includes 1-based line and column. *)

val parse_program : string -> Ast.program
(** @raise Parse_error or {!Lexer.Lex_error} on malformed input. *)

val parse_rule : string -> Ast.rule
(** Parses a single rule (trailing dot required). *)
