type t =
  | Or_pred of {
      pred : string;
      recursive : bool;
      alternatives : and_node list;
    }
  | Edb_leaf of string
  | Rec_ref of string

and and_node = {
  rule : Ast.rule;
  children : t list;
}

module Sset = Set.Make (String)

let of_program (info : Analysis.info) ~root =
  if not (List.mem_assoc root info.arities) then
    invalid_arg (Printf.sprintf "Pcg.of_program: unknown predicate %s" root);
  let rules_for pred =
    List.filter (fun (r : Ast.rule) -> String.equal r.head_pred pred) info.program.rules
  in
  let rec build pred ancestors =
    if Sset.mem pred ancestors then Rec_ref pred
    else if List.mem pred info.edb then Edb_leaf pred
    else begin
      let ancestors = Sset.add pred ancestors in
      let recursive =
        match Analysis.stratum_of_pred info pred with
        | Some s -> s.kind <> Analysis.Nonrecursive
        | None -> false
      in
      let alternatives =
        List.map
          (fun (r : Ast.rule) ->
            let children =
              List.map (fun (a : Ast.atom) -> build a.pred ancestors) (Ast.body_atoms r)
            in
            { rule = r; children })
          (rules_for pred)
      in
      Or_pred { pred; recursive; alternatives }
    end
  in
  build root Sset.empty

let roots (info : Analysis.info) =
  let referenced =
    List.concat_map
      (fun (r : Ast.rule) -> List.map (fun (a : Ast.atom) -> a.pred) (Ast.body_atoms r))
      info.program.rules
  in
  List.filter (fun pred -> not (List.mem pred referenced)) info.idb

let rec pp fmt = function
  | Edb_leaf pred -> Format.fprintf fmt "edb:%s" pred
  | Rec_ref pred -> Format.fprintf fmt "rec:%s" pred
  | Or_pred { pred; recursive; alternatives } ->
    Format.fprintf fmt "@[<v 2>OR %s%s" pred (if recursive then " (recursive)" else "");
    List.iter
      (fun alt ->
        Format.fprintf fmt "@,@[<v 2>AND %s" (Ast.rule_to_string alt.rule);
        List.iter (fun child -> Format.fprintf fmt "@,%a" pp child) alt.children;
        Format.fprintf fmt "@]")
      alternatives;
    Format.fprintf fmt "@]"

let rec size = function
  | Edb_leaf _ | Rec_ref _ -> 1
  | Or_pred { alternatives; _ } ->
    1 + List.fold_left (fun acc alt -> acc + 1 + List.fold_left (fun a c -> a + size c) 0 alt.children) 0 alternatives
