(** Predicate Connection Graph as an AND/OR tree (paper §3, §5.1).

    The OR level enumerates the alternative rules defining a predicate;
    the AND level enumerates the body atoms of one rule.  Recursive
    references back to an ancestor predicate are cut with {!Rec_ref}
    markers, which is how the planner recognizes the fixpoint loops. *)

type t =
  | Or_pred of {
      pred : string;
      recursive : bool; (** belongs to a recursive stratum *)
      alternatives : and_node list;
    }
  | Edb_leaf of string
  | Rec_ref of string (** back edge to an ancestor OR node *)

and and_node = {
  rule : Ast.rule;
  children : t list;
}

val of_program : Analysis.info -> root:string -> t
(** The AND/OR tree rooted at predicate [root].
    @raise Invalid_argument if [root] is unknown. *)

val roots : Analysis.info -> string list
(** Predicates no other rule depends on — the natural tree roots. *)

val pp : Format.formatter -> t -> unit

val size : t -> int
(** Number of nodes, for diagnostics. *)
