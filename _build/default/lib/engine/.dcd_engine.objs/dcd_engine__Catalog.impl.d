lib/engine/catalog.ml: Dcd_storage Dcd_util List Printf
