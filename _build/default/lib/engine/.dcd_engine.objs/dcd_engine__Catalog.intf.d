lib/engine/catalog.mli: Dcd_storage Dcd_util
