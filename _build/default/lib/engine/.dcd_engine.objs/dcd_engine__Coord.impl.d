lib/engine/coord.ml: Printf
