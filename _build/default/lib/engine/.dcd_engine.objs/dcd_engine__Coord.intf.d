lib/engine/coord.mli:
