lib/engine/eval.ml: Array Dcd_planner Dcd_storage Dcd_util Physical
