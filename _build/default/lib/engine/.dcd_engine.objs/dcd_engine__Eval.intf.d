lib/engine/eval.mli: Dcd_planner Dcd_storage Dcd_util Physical
