lib/engine/exist_cache.ml: Dcd_storage Hashtbl
