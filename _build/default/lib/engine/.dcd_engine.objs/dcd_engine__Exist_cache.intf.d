lib/engine/exist_cache.mli: Dcd_storage
