lib/engine/naive.ml: Analysis Array Ast Dcd_datalog Dcd_planner Dcd_storage Dcd_util Hashtbl List Option Printf
