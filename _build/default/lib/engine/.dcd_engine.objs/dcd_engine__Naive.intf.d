lib/engine/naive.mli: Ast Dcd_datalog
