lib/engine/parallel.ml: Array Atomic Catalog Coord Dcd_concurrent Dcd_datalog Dcd_planner Dcd_storage Dcd_util Eval Float Hashtbl List Option Physical Printf Qmodel Rec_store Run_stats String Unix
