lib/engine/parallel.mli: Catalog Coord Dcd_planner Dcd_storage Dcd_util Rec_store Run_stats
