lib/engine/qmodel.ml: Array Dcd_util Float
