lib/engine/qmodel.mli:
