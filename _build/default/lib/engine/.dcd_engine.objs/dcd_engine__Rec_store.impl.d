lib/engine/rec_store.ml: Array Ast Dcd_btree Dcd_datalog Dcd_storage Exist_cache Option
