lib/engine/rec_store.mli: Ast Dcd_datalog Dcd_storage
