lib/engine/run_stats.ml: Array Format List String
