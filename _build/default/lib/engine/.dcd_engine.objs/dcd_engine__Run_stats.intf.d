lib/engine/run_stats.mli: Format
