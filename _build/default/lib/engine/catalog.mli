(** Relation catalog: shared, read-mostly storage for base (EDB) tables
    and materialized results of completed strata.

    During parallel evaluation the catalog is strictly read-only (the
    workers only probe prebuilt indexes and iterate tuple sets);
    relations are added between strata by the single-threaded
    orchestrator, so no synchronization is needed. *)

type t

val create : unit -> t

val load : t -> name:string -> arity:int -> Dcd_storage.Tuple.t Dcd_util.Vec.t -> unit
(** Creates (or extends) a relation with the given tuples,
    deduplicating.  @raise Invalid_argument on arity mismatch with an
    existing relation. *)

val add_relation : t -> Dcd_storage.Relation.t -> unit
(** Registers a fully built relation (replacing any same-named one). *)

val ensure : t -> name:string -> arity:int -> Dcd_storage.Relation.t
(** The named relation, creating it empty if missing. *)

val find : t -> string -> Dcd_storage.Relation.t option

val get : t -> string -> Dcd_storage.Relation.t
(** @raise Invalid_argument if absent. *)

val names : t -> string list
