type dws_opts = {
  tau_cap : float;
  poll_interval : float;
  decay : float;
}

let default_dws = { tau_cap = 0.01; poll_interval = 0.0002; decay = 0.98 }

type t =
  | Global
  | Ssp of int
  | Dws of dws_opts

let dws = Dws default_dws

let to_string = function
  | Global -> "global"
  | Ssp s -> Printf.sprintf "ssp(%d)" s
  | Dws _ -> "dws"
