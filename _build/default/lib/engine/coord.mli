(** Coordination strategies for parallel semi-naive evaluation (paper §4).

    - [Global]: Algorithm 1 — a barrier after every global iteration.
      This is the DeALS-MC-style baseline; fast workers idle at the
      barrier until the slowest finishes.
    - [Ssp s]: the stale-synchronous extension — a worker may run up to
      [s] local iterations ahead of the slowest active worker before
      blocking.
    - [Dws]: the paper's contribution (Algorithm 2) — no global
      coordination at all; each worker decides locally, from the
      queueing model ({!Qmodel}), whether to wait up to [τ_i] for its
      pending delta to reach [ω_i] tuples or to proceed immediately. *)

type dws_opts = {
  tau_cap : float; (** hard cap on a single wait, seconds (deadlock-avoidance
                       timeout of Algorithm 2, line 7) *)
  poll_interval : float; (** sleep between re-checks while waiting, seconds *)
  decay : float; (** per-iteration exponential forgetting of statistics *)
}

val default_dws : dws_opts

type t =
  | Global
  | Ssp of int
  | Dws of dws_opts

val dws : t
(** [Dws default_dws]. *)

val to_string : t -> string
