open Dcd_planner
module Tuple = Dcd_storage.Tuple
module Hash_index = Dcd_storage.Hash_index
module Vec = Dcd_util.Vec

type context = {
  base_iter : string -> (Tuple.t -> unit) -> unit;
  base_index : string -> int array -> Hash_index.t;
  rec_matches : pred:string -> route:int array -> key:int array -> (Tuple.t -> unit) -> unit;
}

type emit = tuple:Tuple.t -> contributor:Tuple.t -> unit

exception Found

let src_value regs = function
  | Physical.Const c -> c
  | Physical.Reg r -> Array.unsafe_get regs r

let checks_pass regs (tup : Tuple.t) checks =
  let n = Array.length checks in
  let rec loop i =
    i = n
    ||
    let col, src = Array.unsafe_get checks i in
    tup.(col) = src_value regs src && loop (i + 1)
  in
  loop 0

let apply_binds regs (tup : Tuple.t) binds =
  Array.iter (fun (col, r) -> regs.(r) <- tup.(col)) binds

let key_of regs key_src = Array.map (src_value regs) key_src

let run (cr : Physical.compiled_rule) ctx ~scan ~emit =
  let regs = Array.make (max 1 cr.nregs) 0 in
  let nsteps = Array.length cr.steps in
  let rec step k =
    if k = nsteps then begin
      let tuple = Array.map (src_value regs) cr.head.args in
      let contributor =
        match cr.head.agg with
        | Some (_, _, contrib) when Array.length contrib > 0 -> Array.map (src_value regs) contrib
        | _ -> [||]
      in
      emit ~tuple ~contributor
    end
    else begin
      match Array.unsafe_get cr.steps k with
      | Physical.Filter { op; lhs; rhs } -> (
        match (Physical.eval_code lhs regs, Physical.eval_code rhs regs) with
        | x, y -> if Physical.eval_cmp op x y then step (k + 1)
        | exception Division_by_zero -> ())
      | Physical.Compute { reg; code } -> (
        match Physical.eval_code code regs with
        | v ->
          regs.(reg) <- v;
          step (k + 1)
        | exception Division_by_zero -> ())
      | Physical.Lookup { rel; key_cols; key_src; binds; checks; negated; _ } -> (
        (* binds first: a residual check may compare against a register
           bound by this very tuple (within-atom variable repeats) *)
        let on_match tup =
          apply_binds regs tup binds;
          if checks_pass regs tup checks then
            if negated then raise Found else step (k + 1)
        in
        let iterate () =
          match rel with
          | Physical.R_rec { pred; route } ->
            ctx.rec_matches ~pred ~route ~key:(key_of regs key_src) on_match
          | Physical.R_base pred ->
            if Array.length key_cols = 0 then ctx.base_iter pred on_match
            else begin
              let idx = ctx.base_index pred key_cols in
              Hash_index.iter_matches idx (key_of regs key_src) on_match
            end
        in
        if negated then begin
          match iterate () with
          | () -> step (k + 1) (* no match found: anti-join succeeds *)
          | exception Found -> ()
        end
        else iterate ())
    end
  in
  match scan with
  | `Unit ->
    (match cr.scan with
    | Physical.S_unit -> step 0
    | Physical.S_base _ | Physical.S_delta _ ->
      invalid_arg "Eval.run: `Unit scan input for a rule that scans a relation");
    1
  | `Tuples batch ->
    let binds, checks =
      match cr.scan with
      | Physical.S_base { binds; checks; _ } -> (binds, checks)
      | Physical.S_delta { binds; checks; _ } -> (binds, checks)
      | Physical.S_unit -> invalid_arg "Eval.run: tuple input for a unit-scan rule"
    in
    Vec.iter
      (fun tup ->
        apply_binds regs tup binds;
        if checks_pass regs tup checks then step 0)
      batch;
    Vec.length batch
