(** Execution of one compiled rule over a batch of scan tuples.

    This is the operator pipeline of the physical plan (paper §5.2):
    the scan binds registers from each input tuple, [Lookup] steps probe
    shared base indexes or the worker's partitioned recursive stores,
    [Filter]/[Compute] steps evaluate compiled arithmetic, and every
    complete binding is projected through the head and handed to [emit]
    (the entry point of the Distribute operator).

    Pure with respect to shared state: base relations are only read, and
    recursive lookups go through the caller-supplied callback so each
    worker only ever touches its own stores. *)

open Dcd_planner

type context = {
  base_iter : string -> (Dcd_storage.Tuple.t -> unit) -> unit;
      (** full scan of a shared base / lower-stratum relation *)
  base_index : string -> int array -> Dcd_storage.Hash_index.t;
      (** prebuilt shared hash index on the given key columns *)
  rec_matches : pred:string -> route:int array -> key:int array -> (Dcd_storage.Tuple.t -> unit) -> unit;
      (** matches in this worker's copy of a recursive relation *)
}

type emit = tuple:Dcd_storage.Tuple.t -> contributor:Dcd_storage.Tuple.t -> unit

val run :
  Physical.compiled_rule ->
  context ->
  scan:[ `Tuples of Dcd_storage.Tuple.t Dcd_util.Vec.t | `Unit ] ->
  emit:emit ->
  int
(** Runs the rule over the given scan input ([`Unit] for bodies without
    positive atoms) and returns the number of scan tuples processed.
    Arithmetic faults (division by zero) silently drop the binding, per
    standard Datalog semantics for partial built-ins. *)
