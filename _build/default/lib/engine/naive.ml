open Dcd_datalog
module Logical = Dcd_planner.Logical
module Tuple = Dcd_storage.Tuple

module Tup_tbl = Hashtbl.Make (struct
  type t = Tuple.t

  let equal = Tuple.equal
  let hash = Tuple.hash
end)

type agg_state = {
  akind : Ast.agg_kind;
  apos : int;
  best : int Tup_tbl.t; (* group -> aggregate value (min/max/count/sum) *)
  contribs : int Tup_tbl.t; (* group ++ contributor -> value (count: 1) *)
}

type pred_state =
  | Pset of unit Tup_tbl.t
  | Pagg of agg_state

type state = {
  preds : (string, pred_state) Hashtbl.t;
  symbols : Dcd_util.Symbol.table;
  params : (string * int) list;
  mutable changed : bool;
}

let visible st pred f =
  match Hashtbl.find_opt st.preds pred with
  | None -> ()
  | Some (Pset tbl) -> Tup_tbl.iter (fun tup () -> f tup) tbl
  | Some (Pagg a) ->
    Tup_tbl.iter
      (fun group v ->
        let arity = Array.length group + 1 in
        let tup = Array.make arity 0 in
        let gi = ref 0 in
        for c = 0 to arity - 1 do
          if c = a.apos then tup.(c) <- v
          else begin
            tup.(c) <- group.(!gi);
            incr gi
          end
        done;
        f tup)
      a.best

let group_of_tuple a tup =
  let arity = Array.length tup in
  let group = Array.make (arity - 1) 0 in
  let gi = ref 0 in
  for c = 0 to arity - 1 do
    if c <> a.apos then begin
      group.(!gi) <- tup.(c);
      incr gi
    end
  done;
  group

let add_plain st pred tup =
  let tbl =
    match Hashtbl.find_opt st.preds pred with
    | Some (Pset tbl) -> tbl
    | Some (Pagg _) -> invalid_arg "Naive: aggregate/plain mismatch"
    | None ->
      let tbl = Tup_tbl.create 64 in
      Hashtbl.add st.preds pred (Pset tbl);
      tbl
  in
  if not (Tup_tbl.mem tbl tup) then begin
    Tup_tbl.add tbl tup ();
    st.changed <- true
  end

let add_agg st pred ~kind ~pos ~tuple ~contributor =
  let a =
    match Hashtbl.find_opt st.preds pred with
    | Some (Pagg a) -> a
    | Some (Pset _) -> invalid_arg "Naive: aggregate/plain mismatch"
    | None ->
      let a = { akind = kind; apos = pos; best = Tup_tbl.create 64; contribs = Tup_tbl.create 64 } in
      Hashtbl.add st.preds pred (Pagg a);
      a
  in
  let group = group_of_tuple a tuple in
  let v = tuple.(a.apos) in
  let update value =
    match Tup_tbl.find_opt a.best group with
    | Some cur when cur = value -> ()
    | _ ->
      Tup_tbl.replace a.best group value;
      st.changed <- true
  in
  match kind with
  | Ast.Min -> (
    match Tup_tbl.find_opt a.best group with
    | Some cur when cur <= v -> ()
    | _ -> update v)
  | Ast.Max -> (
    match Tup_tbl.find_opt a.best group with
    | Some cur when cur >= v -> ()
    | _ -> update v)
  | Ast.Count ->
    let key = Array.append group contributor in
    if not (Tup_tbl.mem a.contribs key) then begin
      Tup_tbl.add a.contribs key 1;
      let cur = Option.value ~default:0 (Tup_tbl.find_opt a.best group) in
      update (cur + 1)
    end
  | Ast.Sum ->
    let key = Array.append group contributor in
    let old = Tup_tbl.find_opt a.contribs key in
    if old <> Some v then begin
      Tup_tbl.replace a.contribs key v;
      let cur = Option.value ~default:0 (Tup_tbl.find_opt a.best group) in
      update (cur + v - Option.value ~default:0 old)
    end

(* --- expression evaluation over an environment --- *)

let term_value st env = function
  | Ast.Int i -> i
  | Ast.Sym s -> (
    match List.assoc_opt s st.params with
    | Some v -> v
    | None -> Dcd_util.Symbol.intern st.symbols s)
  | Ast.Var v -> (
    match Hashtbl.find_opt env v with
    | Some x -> x
    | None -> invalid_arg (Printf.sprintf "Naive: unbound variable %s" v))

let rec expr_value st env = function
  | Ast.Term t -> term_value st env t
  | Ast.Binop (op, a, b) -> (
    let x = expr_value st env a and y = expr_value st env b in
    match op with
    | Ast.Add -> x + y
    | Ast.Sub -> x - y
    | Ast.Mul -> x * y
    | Ast.Div -> x / y
    | Ast.Mod -> x mod y)
  | Ast.Neg e -> -expr_value st env e

let cmp_holds op x y = Dcd_planner.Physical.eval_cmp op x y

(* Matches an atom's argument list against a tuple, extending [env];
   returns the bindings it added (for undo) or None on mismatch. *)
let match_atom st env (args : Ast.term list) (tup : Tuple.t) =
  let added = ref [] in
  let ok =
    List.for_all2
      (fun t v ->
        match t with
        | Ast.Var name -> (
          match Hashtbl.find_opt env name with
          | Some bound -> bound = v
          | None ->
            Hashtbl.add env name v;
            added := name :: !added;
            true)
        | Ast.Int _ | Ast.Sym _ -> term_value st env t = v)
      args (Array.to_list tup)
  in
  if ok then Some !added
  else begin
    List.iter (Hashtbl.remove env) !added;
    None
  end

exception Matched

let derive_rule st (pl : Logical.rule_pipeline) =
  let env : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let r = pl.rule in
  let emit () =
    let agg = Ast.agg_of_rule r in
    let tuple =
      Array.of_list
        (List.map
           (fun (arg : Ast.head_arg) ->
             match arg with
             | Ast.Plain t -> term_value st env t
             | Ast.Agg (Ast.Count, _) -> 0
             | Ast.Agg ((Ast.Min | Ast.Max), [ t ]) -> term_value st env t
             | Ast.Agg (Ast.Sum, ts) -> term_value st env (List.nth ts (List.length ts - 1))
             | Ast.Agg _ -> invalid_arg "Naive: malformed aggregate")
           r.head_args)
    in
    match agg with
    | None -> add_plain st r.head_pred tuple
    | Some (pos, kind) ->
      let contributor =
        List.concat_map
          (fun (arg : Ast.head_arg) ->
            match arg with
            | Ast.Agg (Ast.Count, ts) -> List.map (term_value st env) ts
            | Ast.Agg (Ast.Sum, ts) ->
              List.map (term_value st env) (List.filteri (fun i _ -> i < List.length ts - 1) ts)
            | Ast.Agg ((Ast.Min | Ast.Max), _) | Ast.Plain _ -> [])
          r.head_args
      in
      add_agg st r.head_pred ~kind ~pos ~tuple ~contributor:(Array.of_list contributor)
  in
  let with_atom args tup k =
    match match_atom st env args tup with
    | None -> ()
    | Some added ->
      k ();
      List.iter (Hashtbl.remove env) added
  in
  let rec step elems =
    match elems with
    | [] -> emit ()
    | Logical.L_join { atom; _ } :: rest ->
      visible st atom.Ast.pred (fun tup -> with_atom atom.Ast.args tup (fun () -> step rest))
    | Logical.L_neg atom :: rest -> (
      match
        visible st atom.Ast.pred (fun tup ->
            match match_atom st env atom.Ast.args tup with
            | Some added ->
              List.iter (Hashtbl.remove env) added;
              raise Matched
            | None -> ())
      with
      | () -> step rest
      | exception Matched -> ())
    | Logical.L_filter (op, lhs, rhs) :: rest -> (
      match (expr_value st env lhs, expr_value st env rhs) with
      | x, y -> if cmp_holds op x y then step rest
      | exception Division_by_zero -> ())
    | Logical.L_assign (x, e) :: rest -> (
      match expr_value st env e with
      | v ->
        Hashtbl.add env x v;
        step rest;
        Hashtbl.remove env x
      | exception Division_by_zero -> ())
  in
  match pl.scan with
  | Logical.Scan_unit -> step pl.pipeline
  | Logical.Scan_base a | Logical.Scan_delta { atom = a; _ } ->
    visible st a.Ast.pred (fun tup -> with_atom a.Ast.args tup (fun () -> step pl.pipeline))

let run ?(params = []) ?(max_iterations = 10_000) (program : Ast.program) ~edb =
  let info =
    match Analysis.analyze program with
    | Ok info -> info
    | Error e -> invalid_arg ("Naive.run: " ^ e)
  in
  let st =
    { preds = Hashtbl.create 16; symbols = Dcd_util.Symbol.create (); params; changed = false }
  in
  List.iter
    (fun (name, tuples) -> List.iter (fun tup -> add_plain st name tup) tuples)
    edb;
  List.iter
    (fun (stratum : Analysis.stratum) ->
      let pipelines =
        List.map
          (fun r ->
            match Logical.order stratum r ~delta_occurrence:None with
            | Ok pl -> pl
            | Error e -> invalid_arg ("Naive.run: " ^ e))
          (stratum.base_rules @ stratum.recursive_rules)
      in
      let rec fix iter =
        st.changed <- false;
        List.iter (derive_rule st) pipelines;
        if st.changed && iter < max_iterations then fix (iter + 1)
      in
      fix 0)
    info.strata;
  List.filter_map
    (fun pred ->
      if List.mem pred info.idb then begin
        let out = ref [] in
        visible st pred (fun tup -> out := tup :: !out);
        Some (pred, List.sort Tuple.compare !out)
      end
      else None)
    info.idb
