(** Naive reference interpreter — the testing oracle.

    Evaluates a program by direct AST interpretation: every iteration
    re-derives all rules against the current visible relations until
    nothing changes.  No plans, no indexes, no partitioning, no deltas —
    a completely independent code path from the parallel engine, which
    is exactly what makes it a useful differential-testing oracle.

    Aggregate semantics match the engine's monotone interpretation:
    min/max keep the best value per group, count counts distinct
    contributors, and sum keeps a replaceable partial value per
    (group, contributor) — see {!Dcd_storage.Agg_table}.

    Exponentially slower than the engine on purpose; use small inputs. *)

open Dcd_datalog

val run :
  ?params:(string * int) list ->
  ?max_iterations:int ->
  Ast.program ->
  edb:(string * int array list) list ->
  (string * int array list) list
(** All IDB relations at fixpoint, tuples sorted.  Symbolic constants
    are interned with the same scheme as the compiled engine, so results
    are comparable tuple-for-tuple when the same [params] are passed.
    @raise Invalid_argument if the program fails static analysis. *)
