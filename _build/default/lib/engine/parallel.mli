(** Parallel bottom-up evaluation of a compiled program (paper §4, §6).

    Strata are evaluated in dependency order.  Non-recursive strata run
    single-threaded over the shared catalog.  Each recursive stratum is
    evaluated by [workers] OCaml domains:

    - every recursive predicate is partitioned across workers under each
      of its plan routes ({!Rec_store});
    - workers exchange delta tuples through a matrix of unbounded SPSC
      queues [M_i^j] with atomic produce/consume counters for
      global-fixpoint detection (§6.1);
    - the iteration structure is controlled by the configured
      {!Coord.t} strategy — [Global] barriers, [Ssp s] bounded
      staleness, or [Dws] with the {!Qmodel} controller (Algorithm 2);
    - the Distribute side optionally pre-combines min/max candidates per
      group and deduplicates set tuples per outgoing batch (partial
      aggregation, §5.2.3).

    After a stratum reaches its global fixpoint, the union of its
    primary-route partitions is materialized into the catalog, where
    later strata (and the caller) read it. *)

(** The tuple-exchange fabric between workers.  [Spsc_exchange] is the
    paper's design (§6.1): a matrix of single-producer single-consumer
    queues maintained with atomics only.  [Locked_exchange] is the
    coarse-grained alternative the paper argues against — one
    mutex-protected multi-producer queue per destination — kept so the
    claim can be measured as an ablation. *)
type exchange =
  | Spsc_exchange
  | Locked_exchange

type config = {
  workers : int;
  strategy : Coord.t;
  store_opts : Rec_store.opts;
  partial_agg : bool;
  max_iterations : int;
      (** cap on local iterations per worker (0 = unbounded).  Needed
          for programs whose aggregate fixpoint converges only
          numerically (PageRank); also a safety net. *)
  exchange : exchange;
}

val default_config : config
(** 4 workers (or fewer if the machine recommends less), DWS, optimized
    stores, partial aggregation on, unbounded iterations. *)

type result = {
  catalog : Catalog.t;
  stats : Run_stats.t;
}

val run :
  Dcd_planner.Physical.t ->
  edb:(string * Dcd_storage.Tuple.t Dcd_util.Vec.t) list ->
  config:config ->
  result
(** Evaluates the program over the given EDB.  Relation names absent
    from [edb] but used as base tables evaluate as empty.
    @raise Invalid_argument on arity mismatches in [edb]. *)

val relation_vec : result -> string -> Dcd_storage.Tuple.t Dcd_util.Vec.t
(** Tuples of a materialized relation (empty if the relation is absent). *)
