lib/planner/logical.ml: Analysis Ast Dcd_datalog Format List Printf Set String
