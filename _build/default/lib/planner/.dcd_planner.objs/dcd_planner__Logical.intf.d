lib/planner/logical.mli: Analysis Ast Dcd_datalog Format
