lib/planner/physical.ml: Analysis Array Ast Buffer Dcd_datalog Dcd_util Hashtbl List Logical Option Printf String
