lib/planner/physical.mli: Analysis Ast Dcd_datalog Dcd_util
