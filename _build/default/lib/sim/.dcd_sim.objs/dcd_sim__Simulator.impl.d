lib/sim/simulator.ml: Array Dcd_engine Dcd_util Dcd_workload Float List
