lib/sim/simulator.mli: Dcd_engine Dcd_workload
