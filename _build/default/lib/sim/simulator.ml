module Vec = Dcd_util.Vec
module Heap = Dcd_util.Heap
module Coord = Dcd_engine.Coord
module Qmodel = Dcd_engine.Qmodel
module Graph = Dcd_workload.Graph

type params = {
  cost_per_tuple : float;
  edge_cost : float;
  iteration_overhead : float;
  barrier_cost : float;
  sync_exchange_cost : float;
  send_latency : float;
}

let default_params =
  {
    cost_per_tuple = 0.25;
    edge_cost = 1.0;
    iteration_overhead = 2.0;
    barrier_cost = 2.0;
    sync_exchange_cost = 0.25;
    send_latency = 0.5;
  }

type spec = {
  workers : int;
  nvertices : int;
  owner : int -> int;
  init : (int * int) list;
  relax : int -> int -> (int * int) list;
  degree : int -> int; (* join fan-out of relaxing this vertex *)
  better : int -> int -> bool; (* better old_value new_value *)
}

let hash_owner workers v =
  let h = v * 0x1E3779B97F4A7C15 in
  (h lsr 17) land max_int mod workers

let adjacency ?(symmetric = false) g =
  let n = max (Graph.n g) (Graph.max_vertex g + 1) in
  let adj = Array.make n [] in
  Vec.iter
    (fun (u, v, w) ->
      adj.(u) <- (v, w) :: adj.(u);
      if symmetric then adj.(v) <- (u, w) :: adj.(v))
    (Graph.edges g);
  adj

let cc ~graph ~workers =
  let adj = adjacency ~symmetric:true graph in
  let n = Array.length adj in
  let init = ref [] in
  for v = n - 1 downto 0 do
    if adj.(v) <> [] then init := (v, v) :: !init
  done;
  {
    workers;
    nvertices = n;
    owner = hash_owner workers;
    init = !init;
    relax = (fun v label -> List.map (fun (u, _) -> (u, label)) adj.(v));
    degree = (fun v -> List.length adj.(v));
    better = (fun old_v new_v -> new_v < old_v);
  }

let sssp ~graph ~source ~workers =
  let adj = adjacency graph in
  {
    workers;
    nvertices = Array.length adj;
    owner = hash_owner workers;
    init = [ (source, 0) ];
    relax = (fun v d -> List.map (fun (u, w) -> (u, d + w)) adj.(v));
    degree = (fun v -> List.length adj.(v));
    better = (fun old_v new_v -> new_v < old_v);
  }

let bfs ~graph ~source ~workers =
  let adj = adjacency graph in
  {
    workers;
    nvertices = Array.length adj;
    owner = hash_owner workers;
    init = [ (source, 0) ];
    relax = (fun v d -> List.map (fun (u, _) -> (u, d + 1)) adj.(v));
    degree = (fun v -> List.length adj.(v));
    better = (fun old_v new_v -> new_v < old_v);
  }

let custom_owner spec ~owner = { spec with owner }

type outcome = {
  makespan : float;
  busy : float array;
  idle : float array;
  iterations : int array;
  tuples_processed : int;
  correct_values : int;
  values : int option array;
}

(* shared absorb machinery *)

type common = {
  best : int option array;
  deltas : (int * int) Vec.t array;
  mutable processed : int;
}

let make_common spec =
  {
    best = Array.make spec.nvertices None;
    deltas = Array.init spec.workers (fun _ -> Vec.create ());
    processed = 0;
  }

(* Entries superseded within the same gather are dropped before
   processing: the paper's Gather emits one delta entry per key with its
   current aggregate value (Example 6.1). *)
let compact_delta st delta =
  Vec.filter_in_place (fun (v, value) -> st.best.(v) = Some value) delta

let batch_cost spec params delta =
  params.iteration_overhead
  +. Vec.fold
       (fun acc (v, _) ->
         acc +. params.cost_per_tuple +. (params.edge_cost *. float_of_int (spec.degree v)))
       0. delta

let absorb spec st w (v, value) =
  let fresh =
    match st.best.(v) with
    | None -> true
    | Some old_v -> spec.better old_v value
  in
  if fresh then begin
    st.best.(v) <- Some value;
    Vec.push st.deltas.(w) (v, value)
  end

let finish spec st ~makespan ~busy ~iterations =
  let correct = Array.fold_left (fun acc b -> if b = None then acc else acc + 1) 0 st.best in
  {
    makespan;
    busy;
    idle = Array.map (fun b -> Float.max 0. (makespan -. b)) busy;
    iterations;
    tuples_processed = st.processed;
    correct_values = correct;
    values = st.best;
  }
  [@@warning "-27"]

(* --- Global: barrier rounds (Algorithm 1) --- *)

let run_global spec ~params =
  let st = make_common spec in
  let busy = Array.make spec.workers 0. in
  let iterations = Array.make spec.workers 0 in
  let incoming = Array.init spec.workers (fun _ -> Vec.create ()) in
  List.iter (fun (v, value) -> Vec.push incoming.(spec.owner v) (v, value)) spec.init;
  let makespan = ref 0. in
  let continue_ = ref true in
  while !continue_ do
    (* gather: merge this round's messages into the stores *)
    for w = 0 to spec.workers - 1 do
      Vec.iter (fun item -> absorb spec st w item) incoming.(w);
      Vec.clear incoming.(w)
    done;
    let total_delta = Array.fold_left (fun acc d -> acc + Vec.length d) 0 st.deltas in
    if total_delta = 0 then continue_ := false
    else begin
      let round_max = ref 0. in
      let exchanged = ref 0 in
      for w = 0 to spec.workers - 1 do
        let delta = st.deltas.(w) in
        compact_delta st delta;
        if not (Vec.is_empty delta) then begin
          let cost = batch_cost spec params delta in
          busy.(w) <- busy.(w) +. cost;
          iterations.(w) <- iterations.(w) + 1;
          round_max := Float.max !round_max cost;
          st.processed <- st.processed + Vec.length delta;
          Vec.iter
            (fun (v, value) ->
              List.iter
                (fun (u, value') ->
                  incr exchanged;
                  Vec.push incoming.(spec.owner u) (u, value'))
                (spec.relax v value))
            delta;
          Vec.clear delta
        end
      done;
      (* everyone waits for the slowest, then pays the barrier plus the
         lock-serialized exchange of the round's tuples (the coordination
         overhead of barrier engines the paper's SS6.1 argues against;
         DWS exchanges through per-pair SPSC queues instead) *)
      makespan :=
        !makespan +. !round_max +. params.barrier_cost
        +. (params.sync_exchange_cost *. float_of_int !exchanged)
    end
  done;
  finish spec st ~makespan:!makespan ~busy ~iterations

(* --- event-driven simulation for SSP and DWS --- *)

type worker_sim = {
  inbox : (float * int * int) Heap.t; (* arrival, vertex, value *)
  mutable clock : float;
  mutable iter : int;
  qm : Qmodel.t;
  mutable wait_deadline : float; (* DWS: forced-proceed time; nan = none *)
}

let run_async spec ~strategy ~params =
  let st = make_common spec in
  let busy = Array.make spec.workers 0. in
  let ws =
    Array.init spec.workers (fun _ ->
        {
          inbox = Heap.create ~cmp:(fun (a, _, _) (b, _, _) -> Float.compare a b) ();
          clock = 0.;
          iter = 0;
          qm = Qmodel.create ~producers:1 ();
          wait_deadline = nan;
        })
  in
  List.iter (fun (v, value) -> Heap.push ws.(spec.owner v).inbox (0., v, value)) spec.init;
  let has_work w =
    (not (Vec.is_empty st.deltas.(w))) || not (Heap.is_empty ws.(w).inbox)
  in
  (* time at which worker w could next act; nan if it has nothing *)
  let act_time w =
    if not (Vec.is_empty st.deltas.(w)) then ws.(w).clock
    else
      match Heap.peek ws.(w).inbox with
      | Some (arrival, _, _) -> Float.max arrival ws.(w).clock
      | None -> nan
  in
  let continue_ = ref true in
  while !continue_ do
    (* pick the earliest actionable worker *)
    let wsel = ref (-1) and tsel = ref infinity in
    for w = 0 to spec.workers - 1 do
      let t = act_time w in
      if (not (Float.is_nan t)) && t < !tsel then begin
        tsel := t;
        wsel := w
      end
    done;
    if !wsel < 0 then continue_ := false
    else begin
      let w = !wsel in
      let sim = ws.(w) in
      sim.clock <- Float.max sim.clock !tsel;
      (* drain everything that has arrived *)
      let drained = ref 0 in
      let rec drain () =
        match Heap.peek sim.inbox with
        | Some (arrival, v, value) when arrival <= sim.clock ->
          ignore (Heap.pop sim.inbox);
          absorb spec st w (v, value);
          incr drained;
          drain ()
        | Some _ | None -> ()
      in
      drain ();
      if !drained > 0 then
        Qmodel.record_arrival sim.qm ~from:0 ~now:sim.clock ~count:!drained;
      let dsize = Vec.length st.deltas.(w) in
      if dsize = 0 then ()
      else begin
        (* strategy gate *)
        let proceed =
          match strategy with
          | Coord.Global -> true (* not used on this path *)
          | Coord.Ssp s ->
            let min_iter = ref sim.iter in
            for j = 0 to spec.workers - 1 do
              if j <> w && has_work j then min_iter := min !min_iter ws.(j).iter
            done;
            if sim.iter - !min_iter > s then begin
              (* blocked by a straggler: wait for it to move *)
              let gate_t = ref infinity in
              for j = 0 to spec.workers - 1 do
                if j <> w && has_work j && ws.(j).iter <= sim.iter - s - 1 then begin
                  let t = act_time j in
                  if not (Float.is_nan t) then gate_t := Float.min !gate_t t
                end
              done;
              if !gate_t = infinity then true
              else begin
                sim.clock <- Float.max sim.clock (!gate_t +. 1e-9);
                false
              end
            end
            else true
          | Coord.Dws opts ->
            if (not (Float.is_nan sim.wait_deadline)) && sim.clock >= sim.wait_deadline then begin
              sim.wait_deadline <- nan;
              true
            end
            else begin
              let decision =
                Qmodel.decide sim.qm ~buffer_sizes:[| Heap.length sim.inbox |]
              in
              if float_of_int dsize >= decision.omega then begin
                sim.wait_deadline <- nan;
                true
              end
              else begin
                (* wait for more input, up to τ (capped) *)
                if Float.is_nan sim.wait_deadline then
                  sim.wait_deadline <-
                    sim.clock +. Float.min decision.tau (opts.tau_cap *. 1000.);
                let next_arrival =
                  match Heap.peek sim.inbox with
                  | Some (arrival, _, _) -> Float.max arrival (sim.clock +. 1e-9)
                  | None -> sim.wait_deadline
                in
                sim.clock <- Float.min sim.wait_deadline next_arrival;
                sim.clock >= sim.wait_deadline
              end
            end
        in
        if proceed then begin
          let delta = st.deltas.(w) in
          compact_delta st delta;
          let cost = batch_cost spec params delta in
          let t_end = sim.clock +. cost in
          busy.(w) <- busy.(w) +. cost;
          st.processed <- st.processed + Vec.length delta;
          Vec.iter
            (fun (v, value) ->
              List.iter
                (fun (u, value') ->
                  Heap.push ws.(spec.owner u).inbox (t_end +. params.send_latency, u, value'))
                (spec.relax v value))
            delta;
          Vec.clear delta;
          sim.clock <- t_end;
          sim.iter <- sim.iter + 1;
          Qmodel.record_service sim.qm ~tuples:dsize ~elapsed:cost
        end
      end
    end
  done;
  let makespan = Array.fold_left (fun acc s -> Float.max acc s.clock) 0. ws in
  finish spec st ~makespan ~busy ~iterations:(Array.map (fun s -> s.iter) ws)

let run spec ~strategy ~params =
  match strategy with
  | Coord.Global -> run_global spec ~params
  | Coord.Ssp _ | Coord.Dws _ -> run_async spec ~strategy ~params

let speedup_curve make_spec ~strategy ~params ~workers =
  let base = (run (make_spec ~workers:1) ~strategy ~params).makespan in
  List.map
    (fun w ->
      let o = run (make_spec ~workers:w) ~strategy ~params in
      (w, base /. o.makespan))
    workers
