(** Discrete-event simulator of parallel semi-naive evaluation under the
    three coordination strategies, in {e virtual time}.

    Why this exists: the paper's scheduling results (Figures 1, 3, 8,
    9a) are properties of how Global / SSP / DWS interleave work across
    many physical cores.  This reproduction runs in a 1-vCPU container,
    where real domains cannot exhibit parallel speedup; the simulator
    substitutes an idealized [workers]-core machine (see DESIGN.md §3).
    It is not a shortcut model: it actually evaluates the monotone
    fixpoint (label propagation / distance relaxation) tuple-by-tuple,
    with the same ownership partitioning, message buffers, staleness
    gates and DWS queueing controller as the real engine — only time is
    virtual.  Figure 3 of the paper is itself exactly this kind of
    time-unit simulation.

    Virtual costs: processing a delta tuple costs [cost_per_tuple];
    starting an iteration costs [iteration_overhead]; a barrier costs
    every participant [barrier_cost] on top of the waiting; a message
    becomes visible [send_latency] after it is sent.  The defaults give
    round numbers comparable to the paper's worked example. *)

type params = {
  cost_per_tuple : float; (** per delta tuple merged/scanned *)
  edge_cost : float; (** per index-join match produced (the fan-out term —
                         this is what makes hub-owning workers stragglers) *)
  iteration_overhead : float;
  barrier_cost : float;
  sync_exchange_cost : float; (** per tuple exchanged at a Global barrier:
      the lock-serialized coordination cost of barrier engines (§6.1);
      SSP/DWS exchange through SPSC queues and do not pay it *)
  send_latency : float;
}

val default_params : params

type spec
(** A propagation workload: a monotone (vertex, value) fixpoint over a
    graph, pre-partitioned over the workers. *)

val cc : graph:Dcd_workload.Graph.t -> workers:int -> spec
(** Connected components by min-label propagation (the paper's Query 2
    on a symmetrized graph). *)

val sssp : graph:Dcd_workload.Graph.t -> source:int -> workers:int -> spec
(** Single-source shortest path by distance relaxation (Query 7). *)

val bfs : graph:Dcd_workload.Graph.t -> source:int -> workers:int -> spec
(** Unweighted reachability — a lighter workload for scalability sweeps. *)

val custom_owner : spec -> owner:(int -> int) -> spec
(** Overrides the vertex→worker assignment (default: hash partitioning).
    Used to stage deliberately skewed examples such as the paper's
    Figure 3. *)

type outcome = {
  makespan : float; (** virtual completion time of the slowest worker *)
  busy : float array; (** per-worker virtual compute time *)
  idle : float array; (** makespan − busy − overheads, per worker *)
  iterations : int array; (** local iterations per worker *)
  tuples_processed : int;
  correct_values : int; (** number of vertices with a final value (sanity) *)
  values : int option array; (** final value per vertex — compare against a
      reference to check the simulated evaluation, not just its timing *)
}

val run : spec -> strategy:Dcd_engine.Coord.t -> params:params -> outcome
(** Simulates the full evaluation under the strategy and returns virtual
    timing.  Deterministic: same spec, strategy and params → same
    outcome. *)

val speedup_curve :
  (workers:int -> spec) -> strategy:Dcd_engine.Coord.t -> params:params -> workers:int list ->
  (int * float) list
(** [(w, makespan(1) / makespan(w))] for each worker count — the shape
    of Figure 9(a). *)
