lib/storage/agg_table.ml: Array Dcd_btree Dcd_util Hashtbl Tuple Tuple_set
