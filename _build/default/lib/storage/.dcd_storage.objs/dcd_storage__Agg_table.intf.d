lib/storage/agg_table.mli: Dcd_util Tuple
