lib/storage/hash_index.ml: Dcd_util Hashtbl Tuple
