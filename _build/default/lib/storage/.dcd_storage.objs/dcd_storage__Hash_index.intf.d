lib/storage/hash_index.mli: Dcd_util Tuple
