lib/storage/partition.ml: Array Dcd_util
