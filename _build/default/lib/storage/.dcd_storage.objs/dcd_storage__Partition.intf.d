lib/storage/partition.mli: Dcd_util Tuple
