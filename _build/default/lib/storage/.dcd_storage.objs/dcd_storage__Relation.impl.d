lib/storage/relation.ml: Array Dcd_util Hash_index List Printf Tuple_set
