lib/storage/relation.mli: Dcd_util Hash_index Tuple
