lib/storage/tuple.ml: Array Dcd_btree Format
