lib/storage/tuple.mli: Format
