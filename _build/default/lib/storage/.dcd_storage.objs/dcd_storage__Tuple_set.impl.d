lib/storage/tuple_set.ml: Array Dcd_util Tuple
