lib/storage/tuple_set.mli: Dcd_util Tuple
