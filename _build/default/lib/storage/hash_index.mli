(** Hash multimap from a key-column projection to tuples.

    Built once per partition over each base relation on the join key of
    the rules that scan it (paper Algorithm 1, line 3); the inner side of
    every index join in the physical plan is either one of these or the
    B⁺-tree of a recursive relation. *)

type t

val create : key_cols:int array -> t
(** [key_cols] are the column positions forming the lookup key. *)

val key_cols : t -> int array

val add : t -> Tuple.t -> unit
(** Appends [tup] to the bucket of its projected key. Duplicate tuples
    are kept (the relation layer deduplicates). *)

val of_tuples : key_cols:int array -> Tuple.t Dcd_util.Vec.t -> t

val iter_matches : t -> Tuple.t -> (Tuple.t -> unit) -> unit
(** [iter_matches idx key f] applies [f] to every tuple whose projection
    equals [key] (a tuple of the same arity as [key_cols]). *)

val count_matches : t -> Tuple.t -> int

val length : t -> int
(** Total number of indexed tuples. *)

val distinct_keys : t -> int
