module Vec = Dcd_util.Vec

type t = { workers : int }

let create ~workers =
  if workers < 1 then invalid_arg "Partition.create";
  { workers }

let workers t = t.workers

let mix k =
  (* Fibonacci hashing: golden-ratio multiply, take high bits. *)
  let h = k * 0x1E3779B97F4A7C15 in
  (h lsr 17) land max_int

let of_key t k = mix k mod t.workers

let of_tuple t ~cols tup =
  let h = ref 0 in
  Array.iter (fun c -> h := mix (!h lxor tup.(c))) cols;
  !h mod t.workers

let split t batch ~cols =
  let parts = Array.init t.workers (fun _ -> Vec.create ()) in
  Vec.iter (fun tup -> Vec.push parts.(of_tuple t ~cols tup) tup) batch;
  parts
