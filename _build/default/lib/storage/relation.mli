(** A stored relation (one partition's worth, or a whole EDB table).

    Combines the deduplicating {!Tuple_set} with any number of hash
    indexes that are maintained incrementally on insert.  Base relations
    are loaded once and indexed on the join keys the planner requests;
    recursive relations additionally keep a B⁺-tree (owned by the engine
    layer, see {!Dcd_engine}). *)

type t

val create : name:string -> arity:int -> t

val name : t -> string

val arity : t -> int

val length : t -> int

val add : t -> Tuple.t -> bool
(** Inserts; [true] iff new.  Indexes are updated only for new tuples.
    @raise Invalid_argument on arity mismatch. *)

val mem : t -> Tuple.t -> bool

val iter : (Tuple.t -> unit) -> t -> unit

val to_vec : t -> Tuple.t Dcd_util.Vec.t

val ensure_index : t -> key_cols:int array -> Hash_index.t
(** Returns the hash index on [key_cols], building it from the current
    contents on first request.  Indexes are identified by their exact
    column list. *)

val find_index : t -> key_cols:int array -> Hash_index.t option

val indexes : t -> (int array * Hash_index.t) list
