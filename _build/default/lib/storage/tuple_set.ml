module Vec = Dcd_util.Vec

(* Slots hold either [empty_slot] or a tuple. The zero-length tuple is a
   legal value, so we use a private physical sentinel instead. *)
let empty_slot : Tuple.t = Array.make 0 0

type t = {
  mutable slots : Tuple.t array;
  mutable mask : int;
  mutable size : int;
}

let initial = 16

let create ?(capacity = initial) () =
  let rec pow2 p n = if p >= n then p else pow2 (p * 2) n in
  let cap = pow2 initial capacity in
  { slots = Array.make cap empty_slot; mask = cap - 1; size = 0 }

let length t = t.size

let probe slots mask tup =
  let h = Tuple.hash tup in
  let rec loop i =
    let slot = Array.unsafe_get slots (i land mask) in
    if slot == empty_slot || Tuple.equal slot tup then i land mask else loop (i + 1)
  in
  loop h

let grow t =
  let old = t.slots in
  let cap = (t.mask + 1) * 2 in
  t.slots <- Array.make cap empty_slot;
  t.mask <- cap - 1;
  Array.iter
    (fun tup ->
      if tup != empty_slot then begin
        let i = probe t.slots t.mask tup in
        t.slots.(i) <- tup
      end)
    old

let add t tup =
  if t.size * 4 >= (t.mask + 1) * 3 then grow t;
  let i = probe t.slots t.mask tup in
  if t.slots.(i) == empty_slot then begin
    t.slots.(i) <- tup;
    t.size <- t.size + 1;
    true
  end
  else false

let mem t tup =
  let i = probe t.slots t.mask tup in
  t.slots.(i) != empty_slot

let iter f t =
  Array.iter (fun tup -> if tup != empty_slot then f tup) t.slots

let fold f acc t =
  let acc = ref acc in
  iter (fun tup -> acc := f !acc tup) t;
  !acc

let to_vec t =
  let v = Vec.create ~capacity:t.size () in
  iter (fun tup -> Vec.push v tup) t;
  v

let clear t =
  Array.fill t.slots 0 (t.mask + 1) empty_slot;
  t.size <- 0

let load_factor t = float_of_int t.size /. float_of_int (t.mask + 1)
