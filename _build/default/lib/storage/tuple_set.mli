(** Deduplicating tuple store.

    An open-addressing hash set of tuples with linear probing.  This is
    the backing store of every relation: semi-naive evaluation is all
    about set difference ("is this tuple new?"), so [add] reports whether
    the tuple was absent.  Deletion is deliberately unsupported — Datalog
    relations only grow during bottom-up evaluation. *)

type t

val create : ?capacity:int -> unit -> t

val length : t -> int

val add : t -> Tuple.t -> bool
(** [add s tup] inserts [tup]; [true] iff it was not already present.
    The array is stored as given (not copied) — callers must not mutate a
    tuple after insertion. *)

val mem : t -> Tuple.t -> bool

val iter : (Tuple.t -> unit) -> t -> unit

val fold : ('acc -> Tuple.t -> 'acc) -> 'acc -> t -> 'acc

val to_vec : t -> Tuple.t Dcd_util.Vec.t

val clear : t -> unit

val load_factor : t -> float
(** Diagnostics: occupancy of the probe table. *)
