lib/util/clock.mli:
