lib/util/heap.mli:
