lib/util/online_stats.ml:
