lib/util/online_stats.mli:
