lib/util/report.ml: Array List Printf String Vec
