lib/util/report.mli:
