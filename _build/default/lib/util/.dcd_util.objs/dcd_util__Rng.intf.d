lib/util/rng.mli:
