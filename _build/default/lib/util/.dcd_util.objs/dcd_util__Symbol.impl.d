lib/util/symbol.ml: Hashtbl Printf Vec
