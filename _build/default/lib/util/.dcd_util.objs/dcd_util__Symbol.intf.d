lib/util/symbol.mli:
