lib/util/vec.ml: Array Obj Printf
