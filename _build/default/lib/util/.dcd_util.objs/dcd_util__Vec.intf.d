lib/util/vec.mli:
