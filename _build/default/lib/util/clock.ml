let now () = Unix.gettimeofday ()

let time f =
  let t0 = now () in
  let x = f () in
  (x, now () -. t0)

type stopwatch = { mutable start : float }

let stopwatch () = { start = now () }

let elapsed sw = now () -. sw.start

let restart sw = sw.start <- now ()
