(** Wall-clock timing for benchmarks and the DWS service-rate statistics. *)

val now : unit -> float
(** Monotonic-enough wall time in seconds (sub-microsecond resolution). *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and also returns its elapsed wall time in seconds. *)

type stopwatch

val stopwatch : unit -> stopwatch
(** A running stopwatch started at creation. *)

val elapsed : stopwatch -> float
(** Seconds since creation or the last [restart]. *)

val restart : stopwatch -> unit
