type 'a t = {
  cmp : 'a -> 'a -> int;
  data : 'a Vec.t;
}

let create ~cmp () = { cmp; data = Vec.create () }

let length t = Vec.length t.data

let is_empty t = Vec.is_empty t.data

let swap t i j =
  let x = Vec.get t.data i in
  Vec.set t.data i (Vec.get t.data j);
  Vec.set t.data j x

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.cmp (Vec.get t.data i) (Vec.get t.data parent) < 0 then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let n = Vec.length t.data in
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < n && t.cmp (Vec.get t.data l) (Vec.get t.data !smallest) < 0 then smallest := l;
  if r < n && t.cmp (Vec.get t.data r) (Vec.get t.data !smallest) < 0 then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t x =
  Vec.push t.data x;
  sift_up t (Vec.length t.data - 1)

let peek t = if is_empty t then None else Some (Vec.get t.data 0)

let pop t =
  let n = Vec.length t.data in
  if n = 0 then None
  else begin
    let top = Vec.get t.data 0 in
    let last = Vec.get t.data (n - 1) in
    Vec.truncate t.data (n - 1);
    if n > 1 then begin
      Vec.set t.data 0 last;
      sift_down t 0
    end;
    Some top
  end
