(** Binary min-heap with a caller-supplied comparison. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** Smallest element without removing it. *)

val pop : 'a t -> 'a option
(** Removes and returns the smallest element. *)
