type t = {
  mutable n : float;
  mutable mean : float;
  mutable m2 : float;
}

let create () = { n = 0.; mean = 0.; m2 = 0. }

let add t x =
  t.n <- t.n +. 1.;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. t.n);
  let delta2 = x -. t.mean in
  t.m2 <- t.m2 +. (delta *. delta2)

let count t = int_of_float t.n

let mean t = if t.n = 0. then 0. else t.mean

let variance t = if t.n < 2. then 0. else t.m2 /. t.n

let stddev t = sqrt (variance t)

let reset t =
  t.n <- 0.;
  t.mean <- 0.;
  t.m2 <- 0.

let decay t f =
  if f <= 0. || f > 1. then invalid_arg "Online_stats.decay";
  t.n <- t.n *. f;
  t.m2 <- t.m2 *. f

let merge a b =
  if a.n = 0. then { n = b.n; mean = b.mean; m2 = b.m2 }
  else if b.n = 0. then { n = a.n; mean = a.mean; m2 = a.m2 }
  else begin
    let n = a.n +. b.n in
    let delta = b.mean -. a.mean in
    let mean = a.mean +. (delta *. b.n /. n) in
    let m2 = a.m2 +. b.m2 +. (delta *. delta *. a.n *. b.n /. n) in
    { n; mean; m2 }
  end
