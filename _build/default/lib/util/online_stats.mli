(** Online (single-pass) statistics.

    Welford accumulators for mean and variance.  The DWS coordination
    strategy maintains one accumulator per message buffer for tuple
    inter-arrival times and one per worker for per-tuple service times
    (paper §4.2, Equation 1). *)

type t

val create : unit -> t

val add : t -> float -> unit
(** [add t x] folds observation [x] into the accumulator. *)

val count : t -> int

val mean : t -> float
(** Mean of observations so far; [0.] when empty. *)

val variance : t -> float
(** Population variance; [0.] with fewer than two observations. *)

val stddev : t -> float

val reset : t -> unit

val decay : t -> float -> unit
(** [decay t f] scales the effective observation count by [f] (0 < f <= 1),
    giving exponential forgetting so the statistics track the current phase
    of the fixpoint rather than its whole history. *)

val merge : t -> t -> t
(** [merge a b] is an accumulator equivalent to having seen both streams
    (Chan et al. parallel combination). *)
