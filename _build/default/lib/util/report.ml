type t = {
  title : string;
  header : string list;
  rows : string list Vec.t;
}

let create ~title ~header = { title; header; rows = Vec.create () }

let add_row t row =
  if List.length row > List.length t.header then
    invalid_arg "Report.add_row: more cells than header columns";
  Vec.push t.rows row

let pad s w = s ^ String.make (max 0 (w - String.length s)) ' '

let print t =
  let ncols = List.length t.header in
  let widths = Array.of_list (List.map String.length t.header) in
  Vec.iter
    (fun row ->
      List.iteri (fun i cell -> if i < ncols then widths.(i) <- max widths.(i) (String.length cell)) row)
    t.rows;
  let total = Array.fold_left ( + ) 0 widths + (2 * (ncols - 1)) in
  let rule = String.make (max total (String.length t.title)) '-' in
  let print_cells cells =
    let cells = Array.of_list cells in
    for i = 0 to ncols - 1 do
      let cell = if i < Array.length cells then cells.(i) else "" in
      if i = ncols - 1 then print_string cell else print_string (pad cell (widths.(i) + 2))
    done;
    print_newline ()
  in
  Printf.printf "\n%s\n%s\n" t.title rule;
  print_cells t.header;
  print_string rule;
  print_newline ();
  Vec.iter print_cells t.rows;
  print_string rule;
  print_newline ()

let cell_time secs =
  if secs < 0.01 then Printf.sprintf "%.4f" secs
  else if secs < 1.0 then Printf.sprintf "%.3f" secs
  else Printf.sprintf "%.2f" secs

let cell_float ?(decimals = 2) x = Printf.sprintf "%.*f" decimals x

let cell_speedup x = Printf.sprintf "%.2fx" x
