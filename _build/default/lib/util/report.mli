(** Plain-text tables for benchmark reports.

    The bench harness prints each reproduced paper table/figure as an
    aligned ASCII table; this module does the layout. *)

type t

val create : title:string -> header:string list -> t

val add_row : t -> string list -> unit
(** Rows may be shorter than the header; missing cells print empty.
    @raise Invalid_argument if a row is longer than the header. *)

val print : t -> unit
(** Renders the table to stdout with column alignment and a title rule. *)

val cell_time : float -> string
(** Formats a duration in seconds with 2–3 significant decimals, matching
    the paper's tables. *)

val cell_float : ?decimals:int -> float -> string

val cell_speedup : float -> string
(** e.g. ["3.42x"]. *)
