type t = {
  mutable s0 : int64;
  mutable s1 : int64;
  mutable s2 : int64;
  mutable s3 : int64;
}

let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

(* xoshiro256** next *)
let int64 t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let seed = Int64.to_int (int64 t) in
  create seed

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection-free modulo is fine here: bias is < 2^-40 for the bounds we
     use (all far below 2^24), immaterial for workload generation.  The
     [land max_int] clears OCaml's 63-bit sign bit after truncation. *)
  let x = Int64.to_int (int64 t) land max_int in
  x mod bound

let float t bound =
  let x = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  bound *. (x /. 9007199254740992.0) (* 2^53 *)

let bool t = Int64.logand (int64 t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
