(** Deterministic pseudo-random number generation.

    Splitmix64 seeding feeding a xoshiro256** generator.  Every dataset
    generator in the benchmark suite derives its stream from an explicit
    seed so that experiments are exactly reproducible across runs; the
    global [Random] state is never used. *)

type t

val create : int -> t
(** [create seed] is a fresh generator determined entirely by [seed]. *)

val split : t -> t
(** [split t] derives an independent generator; advances [t]. Useful for
    giving each parallel worker its own stream. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. @raise Invalid_argument if
    [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val shuffle : t -> 'a array -> unit
(** Fisher–Yates shuffle in place. *)
