type table = {
  by_name : (string, int) Hashtbl.t;
  names : string Vec.t;
}

let create () = { by_name = Hashtbl.create 64; names = Vec.create () }

let intern tbl s =
  match Hashtbl.find_opt tbl.by_name s with
  | Some id -> id
  | None ->
    let id = Vec.length tbl.names in
    Hashtbl.add tbl.by_name s id;
    Vec.push tbl.names s;
    id

let name tbl id =
  if id < 0 || id >= Vec.length tbl.names then
    invalid_arg (Printf.sprintf "Symbol.name: unknown id %d" id);
  Vec.get tbl.names id

let mem tbl s = Hashtbl.mem tbl.by_name s

let count tbl = Vec.length tbl.names
