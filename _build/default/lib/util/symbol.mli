(** String interning.

    Engine tuples carry only integers; constants that appear as strings in
    Datalog source are interned here.  Interning is global per [table] so
    that a symbol id is meaningful across relations of one program run. *)

type table

val create : unit -> table

val intern : table -> string -> int
(** [intern tbl s] returns the unique id for [s], assigning a fresh one on
    first sight.  Ids are dense, starting at 0. *)

val name : table -> int -> string
(** [name tbl id] is the string for [id].
    @raise Invalid_argument if [id] was never assigned. *)

val mem : table -> string -> bool

val count : table -> int
(** Number of distinct interned strings. *)
