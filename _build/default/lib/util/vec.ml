type 'a t = {
  mutable data : 'a array;
  mutable len : int;
}

let create ?(capacity = 0) () =
  { data = (if capacity <= 0 then [||] else Array.make capacity (Obj.magic 0)); len = 0 }

let length v = v.len

let is_empty v = v.len = 0

let check v i =
  if i < 0 || i >= v.len then
    invalid_arg (Printf.sprintf "Vec: index %d out of bounds (len %d)" i v.len)

let get v i = check v i; Array.unsafe_get v.data i

let set v i x = check v i; Array.unsafe_set v.data i x

let grow v needed =
  let cap = Array.length v.data in
  let cap' = max needed (max 8 (cap * 2)) in
  (* The dummy cells beyond [len] are never exposed: every read is bounds
     checked against [len]. *)
  let data' = Array.make cap' (Obj.magic 0) in
  Array.blit v.data 0 data' 0 v.len;
  v.data <- data'

let push v x =
  if v.len = Array.length v.data then grow v (v.len + 1);
  Array.unsafe_set v.data v.len x;
  v.len <- v.len + 1

let pop v =
  if v.len = 0 then None
  else begin
    v.len <- v.len - 1;
    let x = Array.unsafe_get v.data v.len in
    Array.unsafe_set v.data v.len (Obj.magic 0);
    Some x
  end

let clear v =
  (* Drop references so the GC can reclaim elements. *)
  Array.fill v.data 0 v.len (Obj.magic 0);
  v.len <- 0

let append dst src =
  if src.len > 0 then begin
    if dst.len + src.len > Array.length dst.data then grow dst (dst.len + src.len);
    Array.blit src.data 0 dst.data dst.len src.len;
    dst.len <- dst.len + src.len
  end

let iter f v =
  for i = 0 to v.len - 1 do
    f (Array.unsafe_get v.data i)
  done

let iteri f v =
  for i = 0 to v.len - 1 do
    f i (Array.unsafe_get v.data i)
  done

let fold f acc v =
  let acc = ref acc in
  for i = 0 to v.len - 1 do
    acc := f !acc (Array.unsafe_get v.data i)
  done;
  !acc

let exists p v =
  let rec loop i = i < v.len && (p (Array.unsafe_get v.data i) || loop (i + 1)) in
  loop 0

let map f v =
  let out = create ~capacity:v.len () in
  iter (fun x -> push out (f x)) v;
  out

let filter_in_place p v =
  let j = ref 0 in
  for i = 0 to v.len - 1 do
    let x = Array.unsafe_get v.data i in
    if p x then begin
      Array.unsafe_set v.data !j x;
      incr j
    end
  done;
  Array.fill v.data !j (v.len - !j) (Obj.magic 0);
  v.len <- !j

let to_array v = Array.sub v.data 0 v.len

let to_list v =
  let rec loop i acc = if i < 0 then acc else loop (i - 1) (Array.unsafe_get v.data i :: acc) in
  loop (v.len - 1) []

let of_array a = { data = Array.copy a; len = Array.length a }

let of_list l = of_array (Array.of_list l)

let sort cmp v =
  let a = to_array v in
  Array.sort cmp a;
  Array.blit a 0 v.data 0 v.len

let swap_remove v i =
  check v i;
  let x = Array.unsafe_get v.data i in
  let last = v.len - 1 in
  Array.unsafe_set v.data i (Array.unsafe_get v.data last);
  Array.unsafe_set v.data last (Obj.magic 0);
  v.len <- last;
  x

let copy v = { data = Array.copy v.data; len = v.len }

let truncate v n =
  if n < 0 || n > v.len then invalid_arg "Vec.truncate";
  Array.fill v.data n (v.len - n) (Obj.magic 0);
  v.len <- n
