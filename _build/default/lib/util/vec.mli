(** Growable arrays (OCaml 5.1 has no [Dynarray]).

    A [Vec.t] is a resizable array with amortized O(1) [push].  It is the
    workhorse container for delta relations, message batches and join
    outputs throughout the engine.  Not thread-safe; concurrent access is
    mediated by the structures in {!Dcd_concurrent}. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** [create ()] is an empty vector. [capacity] pre-allocates backing space. *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val get : 'a t -> int -> 'a
(** [get v i] is the [i]-th element. @raise Invalid_argument if out of bounds. *)

val set : 'a t -> int -> 'a -> unit
(** [set v i x] replaces the [i]-th element. @raise Invalid_argument if out of bounds. *)

val push : 'a t -> 'a -> unit
(** [push v x] appends [x], growing the backing array if needed. *)

val pop : 'a t -> 'a option
(** [pop v] removes and returns the last element, or [None] if empty. *)

val clear : 'a t -> unit
(** [clear v] resets the length to zero. Keeps the backing storage. *)

val append : 'a t -> 'a t -> unit
(** [append dst src] pushes every element of [src] onto [dst]. *)

val iter : ('a -> unit) -> 'a t -> unit

val iteri : (int -> 'a -> unit) -> 'a t -> unit

val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

val exists : ('a -> bool) -> 'a t -> bool

val map : ('a -> 'b) -> 'a t -> 'b t

val filter_in_place : ('a -> bool) -> 'a t -> unit
(** [filter_in_place p v] keeps only elements satisfying [p], preserving
    order, without allocating a new vector. *)

val to_array : 'a t -> 'a array

val to_list : 'a t -> 'a list

val of_array : 'a array -> 'a t

val of_list : 'a list -> 'a t

val sort : ('a -> 'a -> int) -> 'a t -> unit
(** [sort cmp v] sorts in place. *)

val swap_remove : 'a t -> int -> 'a
(** [swap_remove v i] removes index [i] in O(1) by moving the last element
    into its place; returns the removed element.  Order is not preserved. *)

val copy : 'a t -> 'a t

val truncate : 'a t -> int -> unit
(** [truncate v n] shortens [v] to [n] elements. @raise Invalid_argument
    if [n] exceeds the current length. *)
