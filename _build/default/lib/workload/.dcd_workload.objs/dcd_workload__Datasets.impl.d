lib/workload/datasets.ml: Gen Graph Lazy List String
