lib/workload/datasets.mli: Graph Lazy
