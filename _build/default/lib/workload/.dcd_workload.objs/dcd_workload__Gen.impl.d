lib/workload/gen.ml: Dcd_util Float Graph Hashtbl List Queue
