lib/workload/gen.mli: Graph
