lib/workload/graph.ml: Array Dcd_util
