lib/workload/graph.mli: Dcd_storage Dcd_util
