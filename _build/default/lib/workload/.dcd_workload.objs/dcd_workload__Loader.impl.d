lib/workload/loader.ml: Array Dcd_util Graph List Printf String
