lib/workload/loader.mli: Dcd_storage Dcd_util Graph
