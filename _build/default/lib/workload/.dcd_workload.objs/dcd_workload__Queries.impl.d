lib/workload/queries.ml: Dcd_storage Dcd_util Graph List String
