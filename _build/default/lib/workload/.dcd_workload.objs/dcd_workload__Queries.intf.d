lib/workload/queries.mli: Dcd_storage Dcd_util Graph
