type entry = {
  name : string;
  description : string;
  graph : Graph.t Lazy.t;
}

let factor = ref 1.0

let set_scale_factor f =
  if f <= 0. then invalid_arg "Datasets.set_scale_factor";
  factor := f

let scale_factor () = !factor

let scaled edges = max 64 (int_of_float (float_of_int edges *. !factor))

let sim name description ~seed ~scale ~edges =
  {
    name;
    description;
    graph = lazy (Gen.rmat ~seed ~scale ~edges:(scaled edges) ());
  }

(* Paper Table 1, at ~1/1000 edge scale; vertex counts keep the same
   ordering (scale = log2 vertices). *)
let livejournal_sim =
  sim "livejournal-sim" "LiveJournal stand-in: 8.2K vertices, ~69K edges" ~seed:101 ~scale:13
    ~edges:69_000

let orkut_sim =
  sim "orkut-sim" "Orkut stand-in: 4.1K vertices, ~117K edges (denser)" ~seed:102 ~scale:12
    ~edges:117_000

let arabic_sim =
  sim "arabic-sim" "Arabic-2005 stand-in: 32.8K vertices, ~640K edges" ~seed:103 ~scale:15
    ~edges:640_000

let twitter_sim =
  sim "twitter-sim" "Twitter-2010 stand-in: 65.5K vertices, ~1.47M edges" ~seed:104 ~scale:16
    ~edges:1_468_000

let real_world_sims = [ livejournal_sim; orkut_sim; arabic_sim; twitter_sim ]

let tree11 =
  {
    name = "tree-11";
    description = "TREE-11 stand-in: random tree of height 7, degree 2-4 (SG on the full \
                   TREE-11 produces all same-depth pairs — quadratic in the 4M-vertex \
                   original, far beyond a 1-core budget)";
    graph = lazy (Gen.random_tree ~seed:105 ~height:7 ~min_deg:2 ~max_deg:4 ());
  }

let g10k =
  {
    name = "g-10k";
    description = "G-10K stand-in: G(1200, 0.001) uniform random graph";
    graph = lazy (Gen.gnp ~seed:106 ~n:1200 ~p:0.001 ());
  }

let rmat n =
  let rec scale_of s = if 1 lsl s >= n then s else scale_of (s + 1) in
  let scale = scale_of 1 in
  Gen.rmat ~seed:(107 + n) ~scale ~edges:(10 * n) ()

let bom n = Gen.bom_tree ~seed:(108 + n) ~n ()

let all = real_world_sims @ [ tree11; g10k ]

let find name = List.find_opt (fun e -> String.equal e.name name) all
