(** Named benchmark datasets.

    The paper's real-world graphs (Table 1: LiveJournal, Orkut, Arabic,
    Twitter) are 0.5–11 GB downloads that a sealed container cannot
    fetch and a single-core budget cannot chew through.  Per the
    substitution policy in DESIGN.md we register deterministic RMAT
    stand-ins with the standard social-network skew
    (a, b, c = 0.57, 0.19, 0.19) at roughly 1/1000 of the original edge
    counts, preserving the relative size ordering of the four datasets.
    Degree skew drives partition imbalance, which is what the paper's
    coordination strategies respond to, so the stand-ins exercise the
    same phenomena.

    All graphs are lazy: nothing is generated until first use.  Use
    [scale_factor] (default 1.0) to shrink or grow every simulated
    dataset uniformly, e.g. for quick smoke runs. *)

type entry = {
  name : string;
  description : string;
  graph : Graph.t Lazy.t;
}

val livejournal_sim : entry
val orkut_sim : entry
val arabic_sim : entry
val twitter_sim : entry

val real_world_sims : entry list
(** The four stand-ins above, paper order. *)

val tree11 : entry
(** Stand-in for TREE-11 of §7.1.1 at height 7, degree 2–4: SG emits
    all same-depth pairs, quadratic in the original's ~4M vertices. *)

val g10k : entry
(** The paper's G-10K, scaled to 1,200 vertices with the same edge
    probability (SG on the original is a 32-core-minutes workload). *)

val rmat : int -> Graph.t
(** [rmat n]: the paper's RMAT-[n] family — about [n] vertices (rounded
    up to a power of two) and [10 n] directed edges. *)

val bom : int -> Graph.t * (int * int) list
(** [bom n]: the paper's N-[n] Delivery tree with ~[n] vertices. *)

val find : string -> entry option

val all : entry list

val set_scale_factor : float -> unit
(** Multiplies the edge counts of all *_sim datasets generated after
    this call.  For quick runs, e.g. [set_scale_factor 0.1]. *)

val scale_factor : unit -> float
