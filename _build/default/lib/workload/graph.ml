module Vec = Dcd_util.Vec

type t = {
  n : int;
  edges : (int * int * int) Vec.t;
  mutable max_vertex : int;
}

let create ~n =
  if n < 0 then invalid_arg "Graph.create";
  { n; edges = Vec.create (); max_vertex = -1 }

let n t = t.n

let edge_count t = Vec.length t.edges

let add_edge t ?(w = 1) u v =
  Vec.push t.edges (u, v, w);
  t.max_vertex <- max t.max_vertex (max u v)

let edges t = t.edges

let arc_tuples t = Vec.map (fun (u, v, _) -> [| u; v |]) t.edges

let warc_tuples t = Vec.map (fun (u, v, w) -> [| u; v; w |]) t.edges

let out_degrees t =
  let deg = Array.make (max t.n (t.max_vertex + 1)) 0 in
  Vec.iter (fun (u, _, _) -> deg.(u) <- deg.(u) + 1) t.edges;
  deg

let matrix_tuples t =
  let deg = out_degrees t in
  Vec.map (fun (u, v, _) -> [| u; v; deg.(u) |]) t.edges

let max_vertex t = t.max_vertex
