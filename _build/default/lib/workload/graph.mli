(** Directed graphs as edge lists, the common EDB shape of the paper's
    benchmark queries. *)

type t

val create : n:int -> t
(** An empty graph over vertex ids [0 .. n-1]. *)

val n : t -> int

val edge_count : t -> int

val add_edge : t -> ?w:int -> int -> int -> unit
(** [add_edge g u v] appends the directed edge (u, v); duplicate edges
    are kept (generators deduplicate when they care).  [w] attaches a
    weight (default 1). *)

val edges : t -> (int * int * int) Dcd_util.Vec.t
(** (u, v, w) triples in insertion order. *)

val arc_tuples : t -> Dcd_storage.Tuple.t Dcd_util.Vec.t
(** As binary [arc(u, v)] tuples. *)

val warc_tuples : t -> Dcd_storage.Tuple.t Dcd_util.Vec.t
(** As ternary [warc(u, v, w)] tuples. *)

val matrix_tuples : t -> Dcd_storage.Tuple.t Dcd_util.Vec.t
(** As PageRank [matrix(u, v, outdeg(u))] tuples. *)

val out_degrees : t -> int array

val max_vertex : t -> int
(** Largest vertex id actually used (-1 if no edges). *)
