module Vec = Dcd_util.Vec

let is_comment line =
  String.length line = 0 || line.[0] = '#' || line.[0] = '%'

let fields line =
  String.split_on_char ' ' (String.map (fun c -> if c = '\t' || c = ',' then ' ' else c) line)
  |> List.filter (fun s -> s <> "")

let parse_int ~lineno s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> failwith (Printf.sprintf "line %d: %S is not an integer" lineno s)

let fold_lines ic f =
  let lineno = ref 0 in
  (try
     while true do
       let line = input_line ic in
       incr lineno;
       let line = String.trim line in
       if not (is_comment line) then f !lineno line
     done
   with End_of_file -> ());
  ()

let edges_of_channel ?(default_weight = 1) ic =
  let g = Graph.create ~n:0 in
  fold_lines ic (fun lineno line ->
      match fields line with
      | [ a; b ] ->
        Graph.add_edge g ~w:default_weight (parse_int ~lineno a) (parse_int ~lineno b)
      | [ a; b; w ] ->
        Graph.add_edge g ~w:(parse_int ~lineno w) (parse_int ~lineno a) (parse_int ~lineno b)
      | _ -> failwith (Printf.sprintf "line %d: expected 2 or 3 fields" lineno));
  g

let with_file path f =
  let ic = open_in path in
  match f ic with
  | x ->
    close_in ic;
    x
  | exception e ->
    close_in_noerr ic;
    raise e

let edges_of_file ?default_weight path =
  with_file path (fun ic -> edges_of_channel ?default_weight ic)

let tuples_of_file path =
  with_file path (fun ic ->
      let out = Vec.create () in
      let arity = ref (-1) in
      fold_lines ic (fun lineno line ->
          let row = Array.of_list (List.map (parse_int ~lineno) (fields line)) in
          if !arity = -1 then arity := Array.length row
          else if Array.length row <> !arity then
            failwith
              (Printf.sprintf "line %d: arity %d differs from first row's %d" lineno
                 (Array.length row) !arity);
          Vec.push out row);
      out)
