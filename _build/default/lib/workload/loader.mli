(** Loading graphs and relations from text files.

    The container this reproduction runs in cannot download the paper's
    real datasets, but a user of the library can: this loader reads the
    standard edge-list formats (SNAP, WebGraph ASCII exports) so the
    real LiveJournal/Orkut/Arabic/Twitter graphs can be dropped in.

    Format: one edge per line, [src dst] or [src dst weight], separated
    by any run of spaces, tabs or commas.  Lines starting with [#] or
    [%] are comments.  Vertex ids must be non-negative integers. *)

val edges_of_channel : ?default_weight:int -> in_channel -> Graph.t
(** @raise Failure with the offending line number on malformed input. *)

val edges_of_file : ?default_weight:int -> string -> Graph.t
(** Opens, reads and closes the file. *)

val tuples_of_file : string -> Dcd_storage.Tuple.t Dcd_util.Vec.t
(** Reads a whitespace/comma-separated file of integer rows as tuples of
    a single relation (all rows must have the same arity).
    @raise Failure on malformed input. *)
