test/test_agg_table.ml: Alcotest Array Dcd_storage Dcd_util List QCheck QCheck_alcotest
