test/test_agg_table.mli:
