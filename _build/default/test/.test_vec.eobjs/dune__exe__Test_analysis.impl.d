test/test_analysis.ml: Alcotest Analysis Ast Dcd_datalog List Parser String
