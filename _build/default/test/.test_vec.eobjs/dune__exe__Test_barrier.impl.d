test/test_barrier.ml: Alcotest Array Atomic Dcd_concurrent Domain Unix
