test/test_barrier.mli:
