test/test_bptree.ml: Alcotest Array Dcd_btree Dcd_util Dump Fmt List Map Option Printf QCheck QCheck_alcotest
