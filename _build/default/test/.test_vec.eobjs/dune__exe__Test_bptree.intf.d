test/test_bptree.mli:
