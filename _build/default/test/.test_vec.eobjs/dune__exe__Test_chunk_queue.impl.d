test/test_chunk_queue.ml: Alcotest Dcd_concurrent Domain List
