test/test_chunk_queue.mli:
