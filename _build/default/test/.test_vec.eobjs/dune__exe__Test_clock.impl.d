test/test_clock.ml: Alcotest Dcd_util Unix
