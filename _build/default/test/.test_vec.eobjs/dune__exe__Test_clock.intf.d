test/test_clock.mli:
