test/test_dcdatalog.ml: Alcotest Dcdatalog Result String
