test/test_dcdatalog.mli:
