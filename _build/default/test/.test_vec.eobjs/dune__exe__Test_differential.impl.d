test/test_differential.ml: Alcotest Array Dcdatalog List Printf QCheck QCheck_alcotest String
