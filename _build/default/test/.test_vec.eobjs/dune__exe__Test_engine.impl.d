test/test_engine.ml: Alcotest Dcdatalog List Printf
