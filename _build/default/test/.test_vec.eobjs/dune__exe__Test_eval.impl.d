test/test_eval.ml: Alcotest Analysis Array Dcd_datalog Dcd_engine Dcd_planner Dcd_storage Dcd_util List Parser Result
