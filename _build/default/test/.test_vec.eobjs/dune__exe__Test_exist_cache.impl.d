test/test_exist_cache.ml: Alcotest Dcd_engine
