test/test_exist_cache.mli:
