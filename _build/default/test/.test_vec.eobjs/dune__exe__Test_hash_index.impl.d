test/test_hash_index.ml: Alcotest Array Dcd_storage Dcd_util List QCheck QCheck_alcotest
