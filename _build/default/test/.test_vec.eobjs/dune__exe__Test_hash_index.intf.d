test/test_hash_index.mli:
