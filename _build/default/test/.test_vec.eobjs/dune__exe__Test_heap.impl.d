test/test_heap.ml: Alcotest Dcd_util List Option QCheck QCheck_alcotest
