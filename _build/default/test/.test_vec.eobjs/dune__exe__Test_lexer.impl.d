test/test_lexer.ml: Alcotest Dcd_datalog Fmt List String
