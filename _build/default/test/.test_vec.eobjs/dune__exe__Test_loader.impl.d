test/test_loader.ml: Alcotest Array Dcd_util Dcd_workload Dcdatalog Filename Fun List String Sys
