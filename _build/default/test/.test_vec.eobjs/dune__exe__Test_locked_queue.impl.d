test/test_locked_queue.ml: Alcotest Dcd_concurrent Domain Hashtbl List
