test/test_locked_queue.mli:
