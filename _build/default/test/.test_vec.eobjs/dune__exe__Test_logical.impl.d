test/test_logical.ml: Alcotest Analysis Ast Dcd_datalog Dcd_planner List Option Parser Result String
