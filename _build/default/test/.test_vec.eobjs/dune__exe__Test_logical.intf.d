test/test_logical.mli:
