test/test_naive.ml: Alcotest Array Dcd_datalog Dcd_engine List Parser
