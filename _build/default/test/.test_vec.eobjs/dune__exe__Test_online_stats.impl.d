test/test_online_stats.ml: Alcotest Dcd_util List QCheck QCheck_alcotest
