test/test_online_stats.mli:
