test/test_parser.ml: Alcotest Ast Dcd_datalog Fmt List Option Parser String
