test/test_partition.ml: Alcotest Array Dcd_storage Dcd_util List
