test/test_pcg.ml: Alcotest Analysis Dcd_datalog Format Parser Pcg Result String
