test/test_pcg.mli:
