test/test_physical.ml: Alcotest Analysis Array Ast Dcd_datalog Dcd_planner Dcd_util List Option Parser String
