test/test_qmodel.ml: Alcotest Dcd_engine Float
