test/test_qmodel.mli:
