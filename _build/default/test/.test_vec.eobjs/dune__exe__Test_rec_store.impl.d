test/test_rec_store.ml: Alcotest Array Ast Dcd_datalog Dcd_engine List QCheck QCheck_alcotest
