test/test_rec_store.mli:
