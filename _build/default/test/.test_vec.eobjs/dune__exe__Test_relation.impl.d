test/test_relation.ml: Alcotest Array Dcd_storage Dcd_util List Option
