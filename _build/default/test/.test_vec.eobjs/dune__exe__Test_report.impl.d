test/test_report.ml: Alcotest Dcd_util
