test/test_rng.ml: Alcotest Array Dcd_util List QCheck QCheck_alcotest
