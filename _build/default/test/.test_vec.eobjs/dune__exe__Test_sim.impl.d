test/test_sim.ml: Alcotest Array Dcd_engine Dcd_sim Dcd_util Dcd_workload Fun Lazy List Printf Queue
