test/test_spsc.ml: Alcotest Dcd_concurrent Domain List
