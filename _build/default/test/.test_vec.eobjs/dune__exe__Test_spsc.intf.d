test/test_spsc.mli:
