test/test_stress.ml: Alcotest Buffer Dcdatalog List Printexc Printf QCheck QCheck_alcotest String
