test/test_symbol.ml: Alcotest Dcd_util List QCheck QCheck_alcotest
