test/test_symbol.mli:
