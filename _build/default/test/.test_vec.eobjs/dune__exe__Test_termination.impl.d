test/test_termination.ml: Alcotest Dcd_concurrent
