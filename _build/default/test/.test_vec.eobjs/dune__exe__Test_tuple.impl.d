test/test_tuple.ml: Alcotest Array Dcd_storage Hashtbl QCheck QCheck_alcotest
