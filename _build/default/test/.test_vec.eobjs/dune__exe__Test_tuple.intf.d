test/test_tuple.mli:
