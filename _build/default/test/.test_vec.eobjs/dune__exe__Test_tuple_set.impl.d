test/test_tuple_set.ml: Alcotest Array Dcd_storage Dcd_util List QCheck QCheck_alcotest Set
