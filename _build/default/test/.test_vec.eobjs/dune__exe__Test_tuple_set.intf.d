test/test_tuple_set.mli:
