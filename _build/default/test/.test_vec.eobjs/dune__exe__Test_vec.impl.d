test/test_vec.ml: Alcotest Dcd_util List QCheck QCheck_alcotest
