test/test_vec.mli:
