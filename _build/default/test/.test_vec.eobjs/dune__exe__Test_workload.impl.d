test/test_workload.ml: Alcotest Analysis Array Dcd_datalog Dcd_engine Dcd_planner Dcd_util Dcd_workload Fun Hashtbl Lazy List Parser Printf
