module A = Dcd_storage.Agg_table
module Vec = Dcd_util.Vec

let both_backends f () =
  f A.Indexed;
  f A.Scan

let test_min backend =
  let t = A.create ~backend ~kind:A.Min ~group_arity:1 () in
  Alcotest.(check (option int)) "first value" (Some 5) (A.merge t ~group:[| 1 |] 5);
  Alcotest.(check (option int)) "worse absorbed" None (A.merge t ~group:[| 1 |] 7);
  Alcotest.(check (option int)) "better updates" (Some 3) (A.merge t ~group:[| 1 |] 3);
  Alcotest.(check (option int)) "equal absorbed" None (A.merge t ~group:[| 1 |] 3);
  Alcotest.(check (option int)) "find" (Some 3) (A.find t [| 1 |]);
  Alcotest.(check (option int)) "missing group" None (A.find t [| 9 |]);
  Alcotest.(check int) "groups" 1 (A.length t)

let test_max backend =
  let t = A.create ~backend ~kind:A.Max ~group_arity:1 () in
  ignore (A.merge t ~group:[| 1 |] 5);
  Alcotest.(check (option int)) "better updates" (Some 9) (A.merge t ~group:[| 1 |] 9);
  Alcotest.(check (option int)) "worse absorbed" None (A.merge t ~group:[| 1 |] 2)

let test_count backend =
  let t = A.create ~backend ~kind:A.Count ~group_arity:1 () in
  Alcotest.(check (option int)) "first contributor" (Some 1)
    (A.merge t ~group:[| 1 |] ~contributor:[| 100 |] 0);
  Alcotest.(check (option int)) "repeat contributor absorbed" None
    (A.merge t ~group:[| 1 |] ~contributor:[| 100 |] 0);
  Alcotest.(check (option int)) "new contributor counts" (Some 2)
    (A.merge t ~group:[| 1 |] ~contributor:[| 101 |] 0);
  Alcotest.(check (option int)) "same contributor other group" (Some 1)
    (A.merge t ~group:[| 2 |] ~contributor:[| 100 |] 0)

let test_sum_replaceable backend =
  let t = A.create ~backend ~kind:A.Sum ~group_arity:1 () in
  Alcotest.(check (option int)) "first contribution" (Some 10)
    (A.merge t ~group:[| 1 |] ~contributor:[| 7 |] 10);
  Alcotest.(check (option int)) "second contributor adds" (Some 15)
    (A.merge t ~group:[| 1 |] ~contributor:[| 8 |] 5);
  (* the PageRank behavior: same contributor, new value -> adjust by diff *)
  Alcotest.(check (option int)) "replacement adjusts" (Some 12)
    (A.merge t ~group:[| 1 |] ~contributor:[| 7 |] 7);
  Alcotest.(check (option int)) "same value absorbed" None
    (A.merge t ~group:[| 1 |] ~contributor:[| 7 |] 7);
  Alcotest.(check (option int)) "find" (Some 12) (A.find t [| 1 |])

let test_contributor_validation () =
  let t = A.create ~kind:A.Min ~group_arity:1 () in
  Alcotest.check_raises "min rejects contributor"
    (Invalid_argument "Agg_table.merge: contributor not allowed for min/max") (fun () ->
      ignore (A.merge t ~group:[| 1 |] ~contributor:[| 2 |] 0));
  let c = A.create ~kind:A.Count ~group_arity:1 () in
  Alcotest.check_raises "count requires contributor"
    (Invalid_argument "Agg_table.merge: contributor required for count") (fun () ->
      ignore (A.merge c ~group:[| 1 |] 0))

let test_merge_batch_combines backend =
  let t = A.create ~backend ~kind:A.Min ~group_arity:1 () in
  ignore (A.merge t ~group:[| 1 |] 10);
  let batch = Vec.of_list [ ([| 1 |], None, 8); ([| 1 |], None, 4); ([| 2 |], None, 9) ] in
  let changed = A.merge_batch t batch in
  let sorted = List.sort compare (List.map (fun (g, v) -> (g.(0), v)) (Vec.to_list changed)) in
  (* group 1 appears once with the final value, group 2 is new *)
  Alcotest.(check (list (pair int int))) "one change per group" [ (1, 4); (2, 9) ] sorted

let test_iter_prefix backend =
  let t = A.create ~backend ~kind:A.Min ~group_arity:2 () in
  ignore (A.merge t ~group:[| 1; 5 |] 50);
  ignore (A.merge t ~group:[| 1; 6 |] 60);
  ignore (A.merge t ~group:[| 2; 5 |] 70);
  let got = ref [] in
  A.iter_prefix t ~prefix:[| 1 |] (fun g v -> got := (g.(1), v) :: !got);
  Alcotest.(check (list (pair int int))) "prefix groups" [ (5, 50); (6, 60) ]
    (List.sort compare !got)

let test_backends_agree =
  QCheck.Test.make ~name:"Indexed and Scan backends agree" ~count:100
    QCheck.(list (triple (int_range 0 5) (int_range 0 5) (int_range 0 50)))
    (fun ops ->
      let a = A.create ~backend:A.Indexed ~kind:A.Sum ~group_arity:1 () in
      let b = A.create ~backend:A.Scan ~kind:A.Sum ~group_arity:1 () in
      List.iter
        (fun (g, c, v) ->
          let ra = A.merge a ~group:[| g |] ~contributor:[| c |] v in
          let rb = A.merge b ~group:[| g |] ~contributor:[| c |] v in
          assert (ra = rb))
        ops;
      let dump t = List.sort compare (List.map (fun (g, v) -> (g.(0), v)) (Vec.to_list (A.to_vec t))) in
      dump a = dump b)

let () =
  Alcotest.run "agg_table"
    [
      ( "unit",
        [
          Alcotest.test_case "min both backends" `Quick (both_backends test_min);
          Alcotest.test_case "max both backends" `Quick (both_backends test_max);
          Alcotest.test_case "count both backends" `Quick (both_backends test_count);
          Alcotest.test_case "sum replaceable" `Quick (both_backends test_sum_replaceable);
          Alcotest.test_case "contributor validation" `Quick test_contributor_validation;
          Alcotest.test_case "merge_batch combines" `Quick (both_backends test_merge_batch_combines);
          Alcotest.test_case "iter_prefix" `Quick (both_backends test_iter_prefix);
        ] );
      ("property", [ QCheck_alcotest.to_alcotest test_backends_agree ]);
    ]
