open Dcd_datalog

let analyze src = Analysis.analyze (Parser.parse_program src)

let strata_of src =
  match analyze src with
  | Ok info ->
    List.map
      (fun (s : Analysis.stratum) ->
        (String.concat "+" s.preds, Analysis.recursion_kind_to_string s.kind))
      info.strata
  | Error e -> Alcotest.fail e

let expect_error src fragment =
  match analyze src with
  | Ok _ -> Alcotest.fail ("expected analysis error for: " ^ src)
  | Error msg ->
    let contains s sub =
      let n = String.length sub in
      let rec loop i = i + n <= String.length s && (String.sub s i n = sub || loop (i + 1)) in
      loop 0
    in
    Alcotest.(check bool) ("error mentions " ^ fragment) true (contains msg fragment)

let test_classification () =
  Alcotest.(check (list (pair string string))) "tc linear"
    [ ("tc", "linear") ]
    (strata_of "tc(X, Y) <- arc(X, Y).\ntc(X, Y) <- tc(X, Z), arc(Z, Y).");
  Alcotest.(check (list (pair string string))) "apsp nonlinear"
    [ ("path", "nonlinear"); ("apsp", "nonrecursive") ]
    (strata_of
       "path(A, B, min<D>) <- warc(A, B, D).\n\
        path(A, B, min<D>) <- path(A, C, D1), path(C, B, D2), D = D1 + D2.\n\
        apsp(A, B, min<D>) <- path(A, B, D).");
  Alcotest.(check (list (pair string string))) "attend mutual"
    [ ("attend+cnt", "mutual") ]
    (strata_of
       "attend(X) <- organizer(X).\n\
        cnt(Y, count<X>) <- attend(X), friend(Y, X).\n\
        attend(X) <- cnt(X, N), N >= 3.")

let test_strata_order () =
  match analyze "b(X) <- a(X).\nc(X) <- b(X).\nd(X) <- c(X), b(X)." with
  | Error e -> Alcotest.fail e
  | Ok info ->
    let order = List.concat_map (fun (s : Analysis.stratum) -> s.preds) info.strata in
    Alcotest.(check (list string)) "dependencies first" [ "b"; "c"; "d" ] order;
    Alcotest.(check (list string)) "edb" [ "a" ] info.edb;
    Alcotest.(check (list string)) "idb" [ "b"; "c"; "d" ] info.idb

let test_base_vs_recursive_rules () =
  match analyze "tc(X, Y) <- arc(X, Y).\ntc(X, Y) <- tc(X, Z), arc(Z, Y)." with
  | Error e -> Alcotest.fail e
  | Ok info ->
    let s = List.hd info.strata in
    Alcotest.(check int) "one base rule" 1 (List.length s.base_rules);
    Alcotest.(check int) "one recursive rule" 1 (List.length s.recursive_rules)

let test_aggregated_registry () =
  match
    analyze "cc2(Y, min<Y>) <- arc(Y, _).\ncc2(Y, min<Z>) <- cc2(X, Z), arc(X, Y)."
  with
  | Error e -> Alcotest.fail e
  | Ok info -> (
    match List.assoc_opt "cc2" info.aggregated with
    | Some (1, Ast.Min) -> ()
    | _ -> Alcotest.fail "cc2 should be registered as min@1")

let test_arity_mismatch () = expect_error "p(X) <- q(X).\np(X, Y) <- q(X), q(Y)." "arity"

let test_unsafe_head () = expect_error "p(X, Y) <- q(X)." "unsafe"

let test_unsafe_negation () = expect_error "p(X) <- q(X), !r(Y)." "unsafe"

let test_unsafe_comparison () = expect_error "p(X) <- q(X), Y > 3." "unsafe"

let test_assignment_chain_is_safe () =
  match analyze "p(X, Y, Z) <- q(X), Y = X + 1, Z = Y * 2." with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("assignment chains should be safe: " ^ e)

let test_negation_in_recursion_rejected () =
  expect_error "p(X) <- q(X).\np(X) <- p(Y), e(Y, X), !p(X)." "negation";
  expect_error "a(X) <- b(X).\nb(X) <- e(X, Y), !a(Y)." "negation"

let test_stratified_negation_accepted () =
  match analyze "reach(X) <- src(X).\nreach(Y) <- reach(X), e(X, Y).\nunreach(X) <- node(X), !reach(X)." with
  | Ok info ->
    Alcotest.(check int) "two strata" 2 (List.length info.strata)
  | Error e -> Alcotest.fail e

let test_mixed_agg_plain_rejected () =
  expect_error "p(X, min<Y>) <- q(X, Y).\np(X, Y) <- r(X, Y)." "mixes";
  expect_error "p(X, min<Y>) <- q(X, Y).\np(X, max<Y>) <- r(X, Y)." "inconsistent"

let test_multiple_aggs_rejected () = expect_error "p(min<X>, max<Y>) <- q(X, Y)." "multiple"

let test_stratum_of_pred () =
  match analyze "tc(X, Y) <- arc(X, Y).\ntc(X, Y) <- tc(X, Z), arc(Z, Y)." with
  | Error e -> Alcotest.fail e
  | Ok info ->
    (match Analysis.stratum_of_pred info "tc" with
    | Some s ->
      Alcotest.(check bool) "atom recognition" true
        (Analysis.is_recursive_atom s { Ast.pred = "tc"; args = [] })
    | None -> Alcotest.fail "tc stratum missing");
    Alcotest.(check bool) "unknown pred" true (Analysis.stratum_of_pred info "zzz" = None)

let () =
  Alcotest.run "analysis"
    [
      ( "unit",
        [
          Alcotest.test_case "classification" `Quick test_classification;
          Alcotest.test_case "strata order" `Quick test_strata_order;
          Alcotest.test_case "base vs recursive rules" `Quick test_base_vs_recursive_rules;
          Alcotest.test_case "aggregated registry" `Quick test_aggregated_registry;
          Alcotest.test_case "arity mismatch" `Quick test_arity_mismatch;
          Alcotest.test_case "unsafe head" `Quick test_unsafe_head;
          Alcotest.test_case "unsafe negation" `Quick test_unsafe_negation;
          Alcotest.test_case "unsafe comparison" `Quick test_unsafe_comparison;
          Alcotest.test_case "assignment chains safe" `Quick test_assignment_chain_is_safe;
          Alcotest.test_case "negation in recursion" `Quick test_negation_in_recursion_rejected;
          Alcotest.test_case "stratified negation ok" `Quick test_stratified_negation_accepted;
          Alcotest.test_case "mixed agg/plain" `Quick test_mixed_agg_plain_rejected;
          Alcotest.test_case "multiple aggs" `Quick test_multiple_aggs_rejected;
          Alcotest.test_case "stratum_of_pred" `Quick test_stratum_of_pred;
        ] );
    ]
