module Barrier = Dcd_concurrent.Barrier
module Pool = Dcd_concurrent.Domain_pool

let test_create_validates () =
  Alcotest.check_raises "zero parties" (Invalid_argument "Barrier.create") (fun () ->
      ignore (Barrier.create 0));
  Alcotest.(check int) "parties" 3 (Barrier.parties (Barrier.create 3))

let test_single_party_never_blocks () =
  let b = Barrier.create 1 in
  for _ = 1 to 10 do
    Barrier.await b
  done

(* Phase consistency: between barriers, every worker must observe the
   same round's writes from all other workers.  If the barrier leaked a
   worker early, it would read a stale counter. *)
let test_phase_consistency () =
  let n = 4 and rounds = 200 in
  let b = Barrier.create n in
  let counters = Array.init n (fun _ -> Atomic.make 0) in
  let violations = Atomic.make 0 in
  let body me =
    for round = 1 to rounds do
      Atomic.set counters.(me) round;
      Barrier.await b;
      for j = 0 to n - 1 do
        if Atomic.get counters.(j) < round then Atomic.incr violations
      done;
      Barrier.await b
    done
  in
  ignore (Pool.run ~workers:n body);
  Alcotest.(check int) "no stale reads across barrier" 0 (Atomic.get violations)

let test_reusable_generations () =
  let n = 3 and rounds = 500 in
  let b = Barrier.create n in
  let total = Atomic.make 0 in
  let body _ =
    for _ = 1 to rounds do
      Atomic.incr total;
      Barrier.await b
    done
  in
  ignore (Pool.run ~workers:n body);
  Alcotest.(check int) "every round completed" (n * rounds) (Atomic.get total)

let test_poison_wakes_waiters () =
  let b = Barrier.create 2 in
  let released = Atomic.make false in
  let waiter =
    Domain.spawn (fun () ->
        match Barrier.await b with
        | () -> `Completed
        | exception Barrier.Poisoned ->
          Atomic.set released true;
          `Poisoned)
  in
  Unix.sleepf 0.05;
  (* the second party dies instead of arriving *)
  Barrier.poison b;
  Alcotest.(check bool) "waiter released with Poisoned" true (Domain.join waiter = `Poisoned);
  Alcotest.(check bool) "flag set" true (Atomic.get released);
  Alcotest.(check bool) "is_poisoned" true (Barrier.is_poisoned b);
  Alcotest.check_raises "future awaits refuse" Barrier.Poisoned (fun () -> Barrier.await b)

let test_pool_propagates_exception () =
  Alcotest.check_raises "worker failure surfaces" (Failure "boom") (fun () ->
      ignore (Pool.run ~workers:2 (fun me -> if me = 1 then failwith "boom")))

let test_pool_results_indexed () =
  let results = Pool.run ~workers:4 (fun me -> me * 10) in
  Alcotest.(check (array int)) "indexed results" [| 0; 10; 20; 30 |] results

let () =
  Alcotest.run "barrier"
    [
      ( "unit",
        [
          Alcotest.test_case "create validates" `Quick test_create_validates;
          Alcotest.test_case "single party" `Quick test_single_party_never_blocks;
        ] );
      ( "concurrent",
        [
          Alcotest.test_case "phase consistency" `Quick test_phase_consistency;
          Alcotest.test_case "poison wakes waiters" `Quick test_poison_wakes_waiters;
          Alcotest.test_case "reusable generations" `Quick test_reusable_generations;
          Alcotest.test_case "pool exception propagation" `Quick test_pool_propagates_exception;
          Alcotest.test_case "pool results indexed" `Quick test_pool_results_indexed;
        ] );
    ]
