module Cq = Dcd_concurrent.Chunk_queue

let test_fifo_within_chunk () =
  let q = Cq.create ~chunk:8 () in
  for i = 1 to 5 do
    Cq.push q i
  done;
  for i = 1 to 5 do
    Alcotest.(check (option int)) "fifo" (Some i) (Cq.try_pop q)
  done;
  Alcotest.(check (option int)) "empty" None (Cq.try_pop q)

let test_cross_chunk () =
  let q = Cq.create ~chunk:4 () in
  let n = 23 in
  (* several chunk boundaries *)
  for i = 1 to n do
    Cq.push q i
  done;
  Alcotest.(check int) "size" n (Cq.size q);
  for i = 1 to n do
    Alcotest.(check (option int)) "fifo across chunks" (Some i) (Cq.try_pop q)
  done;
  Alcotest.(check bool) "empty after" true (Cq.is_empty q)

let test_interleaved_push_pop () =
  let q = Cq.create ~chunk:2 () in
  Cq.push q 1;
  Alcotest.(check (option int)) "pop" (Some 1) (Cq.try_pop q);
  Cq.push q 2;
  Cq.push q 3;
  Cq.push q 4;
  Alcotest.(check (option int)) "pop" (Some 2) (Cq.try_pop q);
  Cq.push q 5;
  Alcotest.(check (list int)) "drain rest"
    [ 3; 4; 5 ]
    (let out = ref [] in
     ignore (Cq.drain q (fun x -> out := x :: !out));
     List.rev !out)

let test_drain_counts () =
  let q = Cq.create ~chunk:4 () in
  for i = 1 to 9 do
    Cq.push q i
  done;
  Alcotest.(check int) "drain count" 9 (Cq.drain q (fun _ -> ()));
  Alcotest.(check int) "second drain empty" 0 (Cq.drain q (fun _ -> ()))

let test_unbounded_two_domains () =
  let q = Cq.create ~chunk:16 () in
  let n = 100_000 in
  let producer =
    Domain.spawn (fun () ->
        for i = 1 to n do
          Cq.push q i (* never blocks: unbounded *)
        done)
  in
  let received = ref 0 in
  let in_order = ref true in
  while !received < n do
    match Cq.try_pop q with
    | Some x ->
      incr received;
      if x <> !received then in_order := false
    | None -> Domain.cpu_relax ()
  done;
  Domain.join producer;
  Alcotest.(check bool) "all values in order" true !in_order

let test_batched_producer_consumer () =
  (* consumer uses drain while producer pushes: totals must match *)
  let q = Cq.create ~chunk:8 () in
  let n = 30_000 in
  let producer =
    Domain.spawn (fun () ->
        for i = 1 to n do
          Cq.push q i
        done)
  in
  let sum = ref 0 and got = ref 0 in
  while !got < n do
    let k = Cq.drain q (fun x -> sum := !sum + x) in
    got := !got + k;
    if k = 0 then Domain.cpu_relax ()
  done;
  Domain.join producer;
  Alcotest.(check int) "checksum" (n * (n + 1) / 2) !sum

let () =
  Alcotest.run "chunk_queue"
    [
      ( "unit",
        [
          Alcotest.test_case "fifo within chunk" `Quick test_fifo_within_chunk;
          Alcotest.test_case "cross chunk" `Quick test_cross_chunk;
          Alcotest.test_case "interleaved" `Quick test_interleaved_push_pop;
          Alcotest.test_case "drain counts" `Quick test_drain_counts;
        ] );
      ( "concurrent",
        [
          Alcotest.test_case "unbounded two-domain transfer" `Quick test_unbounded_two_domains;
          Alcotest.test_case "batched producer/consumer" `Quick test_batched_producer_consumer;
        ] );
    ]
