module Clock = Dcd_util.Clock

let test_monotone_enough () =
  let a = Clock.now () in
  let b = Clock.now () in
  Alcotest.(check bool) "non-decreasing" true (b >= a)

let test_time_measures () =
  let x, dt = Clock.time (fun () -> Unix.sleepf 0.02; 42) in
  Alcotest.(check int) "result passed through" 42 x;
  Alcotest.(check bool) "at least the sleep" true (dt >= 0.015)

let test_stopwatch () =
  let sw = Clock.stopwatch () in
  Unix.sleepf 0.01;
  let e1 = Clock.elapsed sw in
  Alcotest.(check bool) "elapsed grows" true (e1 >= 0.005);
  Clock.restart sw;
  Alcotest.(check bool) "restart resets" true (Clock.elapsed sw < e1)

let () =
  Alcotest.run "clock"
    [
      ( "unit",
        [
          Alcotest.test_case "monotone enough" `Quick test_monotone_enough;
          Alcotest.test_case "time measures" `Quick test_time_measures;
          Alcotest.test_case "stopwatch" `Quick test_stopwatch;
        ] );
    ]
