(* The public facade: prepare/run/query helpers and error reporting. *)

module D = Dcdatalog

let tc = "tc(X, Y) <- arc(X, Y).\ntc(X, Y) <- tc(X, Z), arc(Z, Y)."

let contains s sub =
  let n = String.length sub in
  let rec loop i = i + n <= String.length s && (String.sub s i n = sub || loop (i + 1)) in
  loop 0

let test_prepare_ok () =
  match D.prepare tc with
  | Ok p ->
    Alcotest.(check string) "source kept" tc p.source;
    Alcotest.(check (list string)) "idb" [ "tc" ] p.info.idb
  | Error e -> Alcotest.fail e

let test_prepare_errors_are_results () =
  let check_err src frag =
    match D.prepare src with
    | Ok _ -> Alcotest.fail ("expected error for " ^ src)
    | Error e -> Alcotest.(check bool) ("mentions " ^ frag) true (contains e frag)
  in
  check_err "p(X <- q(X)." "line";
  (* parse error *)
  check_err "p($)." "line";
  (* lex error *)
  check_err "p(X, Y) <- q(X)." "unsafe"

let test_query_one_shot () =
  let edb = [ ("arc", D.tuples [ [ 1; 2 ]; [ 2; 3 ] ]) ] in
  match D.query tc ~edb with
  | Ok result ->
    Alcotest.(check (list (list int))) "relation"
      [ [ 1; 2 ]; [ 1; 3 ]; [ 2; 3 ] ]
      (D.relation result "tc");
    Alcotest.(check int) "count" 3 (D.relation_count result "tc");
    Alcotest.(check (list (list int))) "absent relation empty" [] (D.relation result "zzz")
  | Error e -> Alcotest.fail e

let test_params_flow_through () =
  let src = "out(X) <- X = base + 1." in
  match D.query ~params:[ ("base", 41) ] src ~edb:[] with
  | Ok result -> Alcotest.(check (list (list int))) "param applied" [ [ 42 ] ] (D.relation result "out")
  | Error e -> Alcotest.fail e

let test_explain_and_pcg () =
  let p = Result.get_ok (D.prepare tc) in
  Alcotest.(check bool) "explain mentions stratum" true (contains (D.explain p) "stratum");
  Alcotest.(check bool) "explain mentions join method" true (contains (D.explain p) "index");
  let pcg = D.pcg_string p ~root:"tc" in
  Alcotest.(check bool) "pcg mentions recursion" true (contains pcg "recursive")

let test_tuples_helper () =
  let v = D.tuples [ [ 1; 2 ]; [ 3; 4 ] ] in
  Alcotest.(check int) "length" 2 (D.Vec.length v);
  Alcotest.(check (array int)) "contents" [| 3; 4 |] (D.Vec.get v 1)

let test_default_config_sane () =
  Alcotest.(check bool) "at least one worker" true (D.default_config.workers >= 1);
  Alcotest.(check bool) "dws by default" true
    (match D.default_config.strategy with D.Coord.Dws _ -> true | _ -> false);
  Alcotest.(check bool) "spsc by default" true
    (D.default_config.exchange = D.Parallel.Spsc_exchange)

let test_facts_in_program () =
  (* facts are rules with constant heads and empty bodies *)
  let src = "arc(1, 2).\narc(2, 3).\n" ^ tc in
  match D.query src ~edb:[] with
  | Ok result -> Alcotest.(check int) "facts feed recursion" 3 (D.relation_count result "tc")
  | Error e -> Alcotest.fail e

let () =
  Alcotest.run "dcdatalog"
    [
      ( "facade",
        [
          Alcotest.test_case "prepare ok" `Quick test_prepare_ok;
          Alcotest.test_case "prepare errors" `Quick test_prepare_errors_are_results;
          Alcotest.test_case "query one-shot" `Quick test_query_one_shot;
          Alcotest.test_case "params" `Quick test_params_flow_through;
          Alcotest.test_case "explain and pcg" `Quick test_explain_and_pcg;
          Alcotest.test_case "tuples helper" `Quick test_tuples_helper;
          Alcotest.test_case "default config" `Quick test_default_config_sane;
          Alcotest.test_case "facts in program" `Quick test_facts_in_program;
        ] );
    ]
