(* End-to-end tests of the parallel engine: every paper query on
   hand-checked inputs, across strategies, worker counts and
   optimization settings. *)

module D = Dcdatalog

let rows = Alcotest.(list (list int))

let run ?params ?(config = D.default_config) src edb =
  match D.query ?params ~config src ~edb:(List.map (fun (n, r) -> (n, D.tuples r)) edb) with
  | Ok result -> result
  | Error e -> Alcotest.fail e

let strategies = [ ("global", D.Coord.Global); ("ssp1", D.Coord.Ssp 1); ("dws", D.Coord.dws) ]

let each_config f () =
  List.iter
    (fun (sname, strategy) ->
      List.iter
        (fun workers ->
          f
            (Printf.sprintf "%s/w%d" sname workers)
            { D.default_config with strategy; workers })
        [ 1; 3 ])
    strategies

let arc_chain = [ ("arc", [ [ 1; 2 ]; [ 2; 3 ]; [ 3; 4 ]; [ 2; 5 ] ]) ]

let tc_expected =
  [ [ 1; 2 ]; [ 1; 3 ]; [ 1; 4 ]; [ 1; 5 ]; [ 2; 3 ]; [ 2; 4 ]; [ 2; 5 ]; [ 3; 4 ] ]

let test_tc_everywhere =
  each_config (fun label config ->
      let r = run ~config D.Queries.tc.source arc_chain in
      Alcotest.check rows ("tc " ^ label) tc_expected (D.relation r "tc"))

let test_cc_everywhere =
  each_config (fun label config ->
      let edb = [ ("arc", [ [ 1; 2 ]; [ 2; 1 ]; [ 2; 3 ]; [ 3; 2 ]; [ 5; 6 ]; [ 6; 5 ] ]) ] in
      let r = run ~config D.Queries.cc.source edb in
      Alcotest.check rows ("cc " ^ label)
        [ [ 1; 1 ]; [ 2; 1 ]; [ 3; 1 ]; [ 5; 5 ]; [ 6; 5 ] ]
        (D.relation r "cc"))

let test_sssp_everywhere =
  each_config (fun label config ->
      let edb = [ ("warc", [ [ 1; 2; 10 ]; [ 1; 3; 2 ]; [ 3; 2; 3 ]; [ 2; 4; 1 ]; [ 3; 4; 100 ] ]) ] in
      let r = run ~params:[ ("start", 1) ] ~config D.Queries.sssp.source edb in
      Alcotest.check rows ("sssp " ^ label)
        [ [ 1; 0 ]; [ 2; 5 ]; [ 3; 2 ]; [ 4; 6 ] ]
        (D.relation r "results"))

let test_apsp_everywhere =
  each_config (fun label config ->
      let edb = [ ("warc", [ [ 1; 2; 1 ]; [ 2; 3; 1 ]; [ 3; 1; 1 ] ]) ] in
      let r = run ~config D.Queries.apsp.source edb in
      Alcotest.check rows ("apsp " ^ label)
        [
          [ 1; 1; 3 ]; [ 1; 2; 1 ]; [ 1; 3; 2 ];
          [ 2; 1; 2 ]; [ 2; 2; 3 ]; [ 2; 3; 1 ];
          [ 3; 1; 1 ]; [ 3; 2; 2 ]; [ 3; 3; 3 ];
        ]
        (D.relation r "apsp"))

let test_delivery_everywhere =
  each_config (fun label config ->
      let edb =
        [
          ("assbl", [ [ 0; 1 ]; [ 0; 2 ]; [ 1; 3 ]; [ 1; 4 ]; [ 2; 5 ] ]);
          ("basic", [ [ 3; 7 ]; [ 4; 2 ]; [ 5; 10 ] ]);
        ]
      in
      let r = run ~config D.Queries.delivery.source edb in
      Alcotest.check rows ("delivery " ^ label)
        [ [ 0; 10 ]; [ 1; 7 ]; [ 2; 10 ]; [ 3; 7 ]; [ 4; 2 ]; [ 5; 10 ] ]
        (D.relation r "results"))

let test_attend_everywhere =
  each_config (fun label config ->
      let edb =
        [
          ("organizer", [ [ 1 ]; [ 2 ]; [ 3 ] ]);
          ("friend", [ [ 10; 1 ]; [ 10; 2 ]; [ 10; 3 ]; [ 11; 1 ]; [ 11; 2 ]; [ 11; 10 ] ]);
        ]
      in
      let r = run ~config D.Queries.attend.source edb in
      (* 10 attends via 3 organizers, then 11 attends via 1, 2, 10 *)
      Alcotest.check rows ("attend " ^ label)
        [ [ 1 ]; [ 2 ]; [ 3 ]; [ 10 ]; [ 11 ] ]
        (D.relation r "attend"))

let test_sg_everywhere =
  each_config (fun label config ->
      let edb = [ ("arc", [ [ 1; 2 ]; [ 1; 3 ]; [ 2; 4 ]; [ 3; 5 ] ]) ] in
      let r = run ~config D.Queries.sg.source edb in
      Alcotest.check rows ("sg " ^ label)
        [ [ 2; 3 ]; [ 3; 2 ]; [ 4; 5 ]; [ 5; 4 ] ]
        (D.relation r "sg"))

let test_pagerank_converges () =
  let edb = [ ("matrix", [ [ 1; 2; 1 ]; [ 2; 1; 1 ] ]) ] in
  (* the 0.85^k geometric tail needs ~120 rounds to reach the fixed-point
     integer fixpoint; lockstep Global keeps the symmetric cycle exact *)
  let config =
    { D.default_config with max_iterations = 500; workers = 2; strategy = D.Coord.Global }
  in
  let r = run ~params:[ ("vnum", 2) ] ~config D.Queries.pagerank.source edb in
  match D.relation r "results" with
  | [ [ 1; r1 ]; [ 2; r2 ] ] ->
    (* symmetric 2-cycle: both ranks equal, summing to ~1.0 (fp 1e9) *)
    Alcotest.(check bool) "ranks equal" true (abs (r1 - r2) < 1000);
    Alcotest.(check bool) "ranks sum to ~1" true (abs (r1 + r2 - 1_000_000_000) < 10_000_000)
  | other ->
    Alcotest.fail (Printf.sprintf "unexpected pagerank shape (%d rows)" (List.length other))

let test_unoptimized_store_same_results () =
  let config =
    { D.default_config with workers = 2; store_opts = D.Rec_store.unoptimized_opts }
  in
  let r = run ~config D.Queries.tc.source arc_chain in
  Alcotest.check rows "tc unoptimized" tc_expected (D.relation r "tc")

let test_no_partial_agg_same_results () =
  let config = { D.default_config with workers = 2; partial_agg = false } in
  let edb = [ ("warc", [ [ 1; 2; 10 ]; [ 1; 3; 2 ]; [ 3; 2; 3 ]; [ 2; 4; 1 ] ]) ] in
  let r = run ~params:[ ("start", 1) ] ~config D.Queries.sssp.source edb in
  Alcotest.check rows "sssp without partial agg"
    [ [ 1; 0 ]; [ 2; 5 ]; [ 3; 2 ]; [ 4; 6 ] ]
    (D.relation r "results")

let test_locked_exchange_same_results () =
  let config =
    { D.default_config with workers = 3; exchange = D.Parallel.Locked_exchange }
  in
  let r = run ~config D.Queries.tc.source arc_chain in
  Alcotest.check rows "tc over locked exchange" tc_expected (D.relation r "tc");
  let edb = [ ("warc", [ [ 1; 2; 10 ]; [ 1; 3; 2 ]; [ 3; 2; 3 ]; [ 2; 4; 1 ] ]) ] in
  let r = run ~params:[ ("start", 1) ] ~config D.Queries.sssp.source edb in
  Alcotest.check rows "sssp over locked exchange"
    [ [ 1; 0 ]; [ 2; 5 ]; [ 3; 2 ]; [ 4; 6 ] ]
    (D.relation r "results")

let test_empty_edb () =
  let r = run D.Queries.tc.source [ ("arc", []) ] in
  Alcotest.check rows "empty input, empty output" [] (D.relation r "tc")

let test_missing_edb_relation () =
  (* arc never supplied at all: should behave as empty, not crash *)
  let r = run D.Queries.tc.source [] in
  Alcotest.check rows "missing EDB acts empty" [] (D.relation r "tc")

let test_stats_populated () =
  let r = run ~config:{ D.default_config with workers = 2 } D.Queries.tc.source arc_chain in
  Alcotest.(check bool) "iterations counted" true (D.Run_stats.total_iterations r.stats > 0);
  Alcotest.(check bool) "messages counted" true (D.Run_stats.total_sent r.stats > 0);
  Alcotest.(check int) "one stratum" 1 (List.length r.stats.strata)

let test_self_loop () =
  let r = run D.Queries.tc.source [ ("arc", [ [ 1; 1 ]; [ 1; 2 ] ]) ] in
  Alcotest.check rows "self loop terminates" [ [ 1; 1 ]; [ 1; 2 ] ] (D.relation r "tc")

let test_stratified_negation_end_to_end () =
  let src =
    "reach(X) <- src(X).\nreach(Y) <- reach(X), e(X, Y).\nunreach(X) <- node(X), !reach(X)."
  in
  let edb = [ ("src", [ [ 1 ] ]); ("e", [ [ 1; 2 ]; [ 3; 4 ] ]); ("node", [ [ 1 ]; [ 2 ]; [ 3 ]; [ 4 ] ]) ] in
  let r = run src edb in
  Alcotest.check rows "negation" [ [ 3 ]; [ 4 ] ] (D.relation r "unreach")

let test_zero_arity_predicates () =
  let src = "nonempty <- e(X, Y).\nflag(1) <- nonempty." in
  let r = run src [ ("e", [ [ 1; 2 ] ]) ] in
  Alcotest.check rows "0-arity chains through strata" [ [ 1 ] ] (D.relation r "flag");
  let r = run src [ ("e", []) ] in
  Alcotest.check rows "0-arity false on empty input" [] (D.relation r "flag")

let test_multi_column_group_aggregate () =
  (* min over a 2-column group key, inside recursion (APSP is the
     canonical case, but here with an extra join to force residual
     checks on the group columns) *)
  let src =
    "d(A, B, min<C>) <- e(A, B, C).\n\
     d(A, B, min<C>) <- d(A, B, C1), disc(A, K), C = C1 - K, C > 0."
  in
  let edb = [ ("e", [ [ 1; 2; 10 ]; [ 1; 3; 7 ] ]); ("disc", [ [ 1; 3 ] ]) ] in
  let r = run ~config:{ D.default_config with workers = 2 } src edb in
  (* repeatedly subtract 3 while positive: 10 -> 1, 7 -> 1 *)
  Alcotest.check rows "recursive multi-column min" [ [ 1; 2; 1 ]; [ 1; 3; 1 ] ]
    (D.relation r "d")

let test_three_way_mutual_recursion () =
  let src =
    "a(X) <- seed(X).\n\
     b(Y) <- a(X), e(X, Y).\n\
     c(Y) <- b(X), e(X, Y).\n\
     a(Y) <- c(X), e(X, Y)."
  in
  let edb = [ ("seed", [ [ 0 ] ]); ("e", List.init 8 (fun i -> [ i; i + 1 ])) ] in
  let r = run ~config:{ D.default_config with workers = 3 } src edb in
  (* a holds positions 0 mod 3, b positions 1 mod 3, c positions 2 mod 3 *)
  Alcotest.check rows "a" [ [ 0 ]; [ 3 ]; [ 6 ] ] (D.relation r "a");
  Alcotest.check rows "b" [ [ 1 ]; [ 4 ]; [ 7 ] ] (D.relation r "b");
  Alcotest.check rows "c" [ [ 2 ]; [ 5 ]; [ 8 ] ] (D.relation r "c")

let test_max_iterations_cap () =
  let src = "n(X) <- seed(X).\nn(Y) <- n(X), step(X, Y)." in
  let edb = [ ("seed", [ [ 0 ] ]); ("step", List.init 50 (fun i -> [ i; i + 1 ])) ] in
  let config = { D.default_config with workers = 1; max_iterations = 5 } in
  let r = run ~config src edb in
  Alcotest.(check bool) "iteration cap limits depth" true (D.relation_count r "n" < 51)

let () =
  Alcotest.run "engine"
    [
      ( "queries",
        [
          Alcotest.test_case "tc all configs" `Quick test_tc_everywhere;
          Alcotest.test_case "cc all configs" `Quick test_cc_everywhere;
          Alcotest.test_case "sssp all configs" `Quick test_sssp_everywhere;
          Alcotest.test_case "apsp all configs" `Quick test_apsp_everywhere;
          Alcotest.test_case "delivery all configs" `Quick test_delivery_everywhere;
          Alcotest.test_case "attend all configs" `Quick test_attend_everywhere;
          Alcotest.test_case "sg all configs" `Quick test_sg_everywhere;
          Alcotest.test_case "pagerank converges" `Quick test_pagerank_converges;
        ] );
      ( "configurations",
        [
          Alcotest.test_case "unoptimized store" `Quick test_unoptimized_store_same_results;
          Alcotest.test_case "no partial agg" `Quick test_no_partial_agg_same_results;
          Alcotest.test_case "locked exchange" `Quick test_locked_exchange_same_results;
          Alcotest.test_case "empty edb" `Quick test_empty_edb;
          Alcotest.test_case "missing edb relation" `Quick test_missing_edb_relation;
          Alcotest.test_case "stats populated" `Quick test_stats_populated;
          Alcotest.test_case "self loop" `Quick test_self_loop;
          Alcotest.test_case "stratified negation" `Quick test_stratified_negation_end_to_end;
          Alcotest.test_case "max iterations cap" `Quick test_max_iterations_cap;
          Alcotest.test_case "zero-arity predicates" `Quick test_zero_arity_predicates;
          Alcotest.test_case "multi-column group aggregate" `Quick test_multi_column_group_aggregate;
          Alcotest.test_case "three-way mutual recursion" `Quick test_three_way_mutual_recursion;
        ] );
    ]
