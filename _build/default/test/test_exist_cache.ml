module C = Dcd_engine.Exist_cache

let test_find_put () =
  let c = C.create () in
  Alcotest.(check (option int)) "miss" None (C.find c [| 1 |]);
  C.put c [| 1 |] 5;
  Alcotest.(check (option int)) "hit" (Some 5) (C.find c [| 1 |]);
  C.put c [| 1 |] 3;
  Alcotest.(check (option int)) "replaced" (Some 3) (C.find c [| 1 |]);
  Alcotest.(check int) "length" 1 (C.length c)

let test_stats () =
  let c = C.create () in
  ignore (C.find c [| 1 |]);
  C.put c [| 1 |] 0;
  ignore (C.find c [| 1 |]);
  ignore (C.find c [| 2 |]);
  Alcotest.(check int) "hits" 1 (C.hits c);
  Alcotest.(check int) "misses" 2 (C.misses c)

let test_composite_keys () =
  let c = C.create () in
  C.put c [| 1; 2 |] 10;
  Alcotest.(check (option int)) "exact key" (Some 10) (C.find c [| 1; 2 |]);
  Alcotest.(check (option int)) "different key" None (C.find c [| 2; 1 |])

let () =
  Alcotest.run "exist_cache"
    [
      ( "unit",
        [
          Alcotest.test_case "find/put" `Quick test_find_put;
          Alcotest.test_case "stats" `Quick test_stats;
          Alcotest.test_case "composite keys" `Quick test_composite_keys;
        ] );
    ]
