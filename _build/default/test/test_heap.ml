module Heap = Dcd_util.Heap

let test_basic_order () =
  let h = Heap.create ~cmp:compare () in
  List.iter (Heap.push h) [ 5; 1; 4; 1; 3 ];
  Alcotest.(check int) "length" 5 (Heap.length h);
  Alcotest.(check (option int)) "peek" (Some 1) (Heap.peek h);
  let popped = List.init 5 (fun _ -> Option.get (Heap.pop h)) in
  Alcotest.(check (list int)) "sorted order" [ 1; 1; 3; 4; 5 ] popped;
  Alcotest.(check (option int)) "pop empty" None (Heap.pop h)

let test_custom_comparator () =
  let h = Heap.create ~cmp:(fun a b -> compare b a) () in
  List.iter (Heap.push h) [ 2; 9; 4 ];
  Alcotest.(check (option int)) "max-heap top" (Some 9) (Heap.pop h)

let test_interleaved () =
  let h = Heap.create ~cmp:compare () in
  Heap.push h 3;
  Heap.push h 1;
  Alcotest.(check (option int)) "pop min" (Some 1) (Heap.pop h);
  Heap.push h 0;
  Alcotest.(check (option int)) "new min" (Some 0) (Heap.pop h);
  Alcotest.(check (option int)) "remaining" (Some 3) (Heap.pop h);
  Alcotest.(check bool) "empty" true (Heap.is_empty h)

let prop_heapsort =
  QCheck.Test.make ~name:"heap drains in sorted order" ~count:300 QCheck.(list int)
    (fun xs ->
      let h = Heap.create ~cmp:compare () in
      List.iter (Heap.push h) xs;
      let rec drain acc = match Heap.pop h with Some x -> drain (x :: acc) | None -> List.rev acc in
      drain [] = List.sort compare xs)

let () =
  Alcotest.run "heap"
    [
      ( "unit",
        [
          Alcotest.test_case "basic order" `Quick test_basic_order;
          Alcotest.test_case "custom comparator" `Quick test_custom_comparator;
          Alcotest.test_case "interleaved" `Quick test_interleaved;
        ] );
      ("property", [ QCheck_alcotest.to_alcotest prop_heapsort ]);
    ]
