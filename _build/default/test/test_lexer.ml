open Dcd_datalog.Lexer

let toks src = List.map (fun s -> s.tok) (tokenize src)

let token = Alcotest.testable (fun fmt t -> Fmt.string fmt (token_to_string t)) ( = )

let test_basic () =
  Alcotest.(check (list token)) "rule tokens"
    [ IDENT "tc"; LPAREN; UVAR "X"; COMMA; UVAR "Y"; RPAREN; ARROW; IDENT "arc"; LPAREN;
      UVAR "X"; COMMA; UVAR "Y"; RPAREN; DOT; EOF ]
    (toks "tc(X, Y) <- arc(X, Y).")

let test_arrow_variants () =
  Alcotest.(check (list token)) "colon-dash" [ IDENT "a"; ARROW; IDENT "b"; DOT; EOF ]
    (toks "a :- b.");
  Alcotest.(check (list token)) "angle arrow" [ IDENT "a"; ARROW; IDENT "b"; DOT; EOF ]
    (toks "a <- b.")

let test_comparisons () =
  Alcotest.(check (list token)) "all comparison ops"
    [ LT; LE; GT; GE; EQ; NE; EOF ]
    (toks "< <= > >= = !=")

let test_arith () =
  Alcotest.(check (list token)) "arith ops"
    [ PLUS; MINUS; STAR; SLASH; PERCENT_OP; EOF ]
    (toks "+ - * / %%")

let test_numbers_and_idents () =
  Alcotest.(check (list token)) "mix"
    [ INT 42; IDENT "abc_1"; UVAR "Xyz"; UVAR "_w"; EOF ]
    (toks "42 abc_1 Xyz _w")

let test_comments () =
  Alcotest.(check (list token)) "percent comment" [ INT 1; INT 2; EOF ]
    (toks "1 % comment to eol\n2");
  Alcotest.(check (list token)) "slash comment" [ INT 1; INT 2; EOF ] (toks "1 // c\n2");
  Alcotest.(check (list token)) "block comment" [ INT 1; INT 2; EOF ] (toks "1 /* x\ny */ 2")

let test_string_literal () =
  Alcotest.(check (list token)) "string" [ STRING "hi there"; EOF ] (toks "\"hi there\"");
  Alcotest.(check (list token)) "escape" [ STRING "a\nb"; EOF ] (toks "\"a\\nb\"")

let test_positions () =
  let spans = tokenize "a\n  bb" in
  let second = List.nth spans 1 in
  Alcotest.(check int) "line" 2 second.line;
  Alcotest.(check int) "col" 3 second.col

let test_errors () =
  (try
     ignore (tokenize "a $ b");
     Alcotest.fail "expected lex error"
   with Lex_error msg ->
     Alcotest.(check bool) "mentions position" true
       (String.length msg > 0 && String.sub msg 0 4 = "line"));
  (try
     ignore (tokenize "\"unterminated");
     Alcotest.fail "expected lex error"
   with Lex_error _ -> ());
  try
    ignore (tokenize "/* unterminated");
    Alcotest.fail "expected lex error"
  with Lex_error _ -> ()

let () =
  Alcotest.run "lexer"
    [
      ( "unit",
        [
          Alcotest.test_case "basic rule" `Quick test_basic;
          Alcotest.test_case "arrow variants" `Quick test_arrow_variants;
          Alcotest.test_case "comparisons" `Quick test_comparisons;
          Alcotest.test_case "arithmetic" `Quick test_arith;
          Alcotest.test_case "numbers and idents" `Quick test_numbers_and_idents;
          Alcotest.test_case "comments" `Quick test_comments;
          Alcotest.test_case "strings" `Quick test_string_literal;
          Alcotest.test_case "positions" `Quick test_positions;
          Alcotest.test_case "errors" `Quick test_errors;
        ] );
    ]
