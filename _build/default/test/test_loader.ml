module Loader = Dcd_workload.Loader
module Graph = Dcd_workload.Graph
module Vec = Dcd_util.Vec

let with_tmp content f =
  let path = Filename.temp_file "dcd_loader" ".txt" in
  let oc = open_out path in
  output_string oc content;
  close_out oc;
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let test_edges_basic () =
  with_tmp "# comment\n1 2\n2 3\n% another comment\n3 1\n" (fun path ->
      let g = Loader.edges_of_file path in
      Alcotest.(check int) "three edges" 3 (Graph.edge_count g);
      Alcotest.(check int) "max vertex" 3 (Graph.max_vertex g))

let test_edges_weighted_and_separators () =
  with_tmp "1,2,10\n2\t3\t20\n" (fun path ->
      let g = Loader.edges_of_file path in
      let ws = List.map (fun (_, _, w) -> w) (Vec.to_list (Graph.edges g)) in
      Alcotest.(check (list int)) "weights read" [ 10; 20 ] ws)

let test_edges_default_weight () =
  with_tmp "5 6\n" (fun path ->
      let g = Loader.edges_of_file ~default_weight:7 path in
      match Vec.to_list (Graph.edges g) with
      | [ (5, 6, 7) ] -> ()
      | _ -> Alcotest.fail "default weight not applied")

let test_edges_errors () =
  with_tmp "1 2\nbogus line here extra\n" (fun path ->
      try
        ignore (Loader.edges_of_file path);
        Alcotest.fail "expected failure"
      with Failure msg ->
        Alcotest.(check bool) "line number reported" true
          (String.length msg > 6 && String.sub msg 0 6 = "line 2"));
  with_tmp "1 x\n" (fun path ->
      try
        ignore (Loader.edges_of_file path);
        Alcotest.fail "expected failure"
      with Failure _ -> ())

let test_tuples () =
  with_tmp "1 2 3\n4 5 6\n" (fun path ->
      let v = Loader.tuples_of_file path in
      Alcotest.(check int) "rows" 2 (Vec.length v);
      Alcotest.(check (array int)) "row content" [| 4; 5; 6 |] (Vec.get v 1))

let test_tuples_arity_mismatch () =
  with_tmp "1 2\n3 4 5\n" (fun path ->
      try
        ignore (Loader.tuples_of_file path);
        Alcotest.fail "expected arity failure"
      with Failure _ -> ())

let test_program_files_load_and_run () =
  (* the shipped .dl files must parse, analyze, plan and run end-to-end *)
  let dir = "../../../programs" in
  let dir = if Sys.file_exists dir then dir else "programs" in
  if Sys.file_exists dir then begin
    let files = Sys.readdir dir in
    Alcotest.(check bool) "program files present" true (Array.length files >= 8);
    Array.iter
      (fun f ->
        if Filename.check_suffix f ".dl" then begin
          let ic = open_in (Filename.concat dir f) in
          let src = really_input_string ic (in_channel_length ic) in
          close_in ic;
          match Dcdatalog.prepare ~params:[ ("start", 0); ("vnum", 10) ] src with
          | Ok _ -> ()
          | Error e -> Alcotest.fail (f ^ ": " ^ e)
        end)
      files
  end

let () =
  Alcotest.run "loader"
    [
      ( "unit",
        [
          Alcotest.test_case "edges basic" `Quick test_edges_basic;
          Alcotest.test_case "weights and separators" `Quick test_edges_weighted_and_separators;
          Alcotest.test_case "default weight" `Quick test_edges_default_weight;
          Alcotest.test_case "errors" `Quick test_edges_errors;
          Alcotest.test_case "tuples" `Quick test_tuples;
          Alcotest.test_case "tuple arity mismatch" `Quick test_tuples_arity_mismatch;
          Alcotest.test_case "shipped programs compile" `Quick test_program_files_load_and_run;
        ] );
    ]
