module Lq = Dcd_concurrent.Locked_queue

let test_fifo () =
  let q = Lq.create () in
  List.iter (Lq.push q) [ 1; 2; 3 ];
  Alcotest.(check int) "size" 3 (Lq.size q);
  Alcotest.(check (option int)) "fifo" (Some 1) (Lq.try_pop q);
  Alcotest.(check (option int)) "fifo" (Some 2) (Lq.try_pop q);
  let out = ref [] in
  Alcotest.(check int) "drain" 1 (Lq.drain q (fun x -> out := x :: !out));
  Alcotest.(check (list int)) "drained" [ 3 ] !out;
  Alcotest.(check bool) "empty" true (Lq.is_empty q)

let test_multi_producer () =
  let q = Lq.create () in
  let n = 5_000 in
  let producers =
    List.init 3 (fun p -> Domain.spawn (fun () -> for i = 1 to n do Lq.push q ((p * n) + i) done))
  in
  List.iter Domain.join producers;
  let seen = Hashtbl.create (3 * n) in
  let count = Lq.drain q (fun x -> Hashtbl.replace seen x ()) in
  Alcotest.(check int) "all transferred" (3 * n) count;
  Alcotest.(check int) "all distinct" (3 * n) (Hashtbl.length seen)

let () =
  Alcotest.run "locked_queue"
    [
      ("unit", [ Alcotest.test_case "fifo" `Quick test_fifo ]);
      ("concurrent", [ Alcotest.test_case "multi producer" `Quick test_multi_producer ]);
    ]
