open Dcd_datalog
module Logical = Dcd_planner.Logical

let stratum_of src pred =
  let info = Result.get_ok (Analysis.analyze (Parser.parse_program src)) in
  Option.get (Analysis.stratum_of_pred info pred)

let rule_of src n =
  let p = Parser.parse_program src in
  List.nth p.rules n

let sg_src =
  "sg(X, Y) <- arc(P, X), arc(P, Y), X != Y.\nsg(X, Y) <- arc(A, X), sg(A, B), arc(B, Y)."

let test_delta_scan_is_leftmost () =
  (* the paper's SS5.1 reorder: recursive table becomes the outer scan even
     though it is written in the middle of the body *)
  let stratum = stratum_of sg_src "sg" in
  let rule = rule_of sg_src 1 in
  match Logical.order stratum rule ~delta_occurrence:(Some 0) with
  | Error e -> Alcotest.fail e
  | Ok pl -> (
    match pl.scan with
    | Logical.Scan_delta { atom; occurrence = 0 } ->
      Alcotest.(check string) "scan is the recursive atom" "sg" atom.pred;
      Alcotest.(check int) "both arcs remain joins" 2
        (List.length
           (List.filter (function Logical.L_join _ -> true | _ -> false) pl.pipeline))
    | _ -> Alcotest.fail "expected delta scan")

let test_filter_pushdown () =
  (* X != Y placed immediately after both X and Y are bound *)
  let stratum = stratum_of sg_src "sg" in
  let rule = rule_of sg_src 0 in
  match Logical.order stratum rule ~delta_occurrence:None with
  | Error e -> Alcotest.fail e
  | Ok pl -> (
    match pl.pipeline with
    | [ Logical.L_join _; Logical.L_filter _ ] -> ()
    | _ -> Alcotest.fail ("unexpected pipeline: " ^ Logical.to_string pl))

let test_assignment_vs_filter () =
  let src = "p(X, C) <- q(X, A), C = A + 1, A > 2." in
  let stratum = stratum_of src "p" in
  let rule = rule_of src 0 in
  match Logical.order stratum rule ~delta_occurrence:None with
  | Error e -> Alcotest.fail e
  | Ok pl ->
    let kinds =
      List.map
        (function
          | Logical.L_assign _ -> "assign"
          | Logical.L_filter _ -> "filter"
          | Logical.L_join _ -> "join"
          | Logical.L_neg _ -> "neg")
        pl.pipeline
    in
    Alcotest.(check (list string)) "assign before filter" [ "assign"; "filter" ] kinds

let test_eq_as_filter_when_bound () =
  (* both sides bound by the scan: Eq must stay a filter *)
  let src = "p(X) <- q(X, A, B), A = B." in
  let stratum = stratum_of src "p" in
  (match Logical.order stratum (rule_of src 0) ~delta_occurrence:None with
  | Error e -> Alcotest.fail e
  | Ok pl ->
    let filters =
      List.filter (function Logical.L_filter (Ast.Eq, _, _) -> true | _ -> false) pl.pipeline
    in
    Alcotest.(check int) "bound Eq stays a filter" 1 (List.length filters));
  (* one side unbound: Eq is promoted to an assignment feeding the next join *)
  let src = "p(X) <- q(X, A), r(X, B), A = B." in
  let stratum = stratum_of src "p" in
  match Logical.order stratum (rule_of src 0) ~delta_occurrence:None with
  | Error e -> Alcotest.fail e
  | Ok pl ->
    let assigns =
      List.filter (function Logical.L_assign _ -> true | _ -> false) pl.pipeline
    in
    Alcotest.(check int) "half-bound Eq becomes assignment" 1 (List.length assigns)

let test_unit_scan () =
  let src = "sp(To, min<C>) <- To = start, C = 0." in
  let stratum = stratum_of src "sp" in
  match Logical.order stratum (rule_of src 0) ~delta_occurrence:None with
  | Error e -> Alcotest.fail e
  | Ok pl ->
    Alcotest.(check bool) "unit scan" true (pl.scan = Logical.Scan_unit);
    Alcotest.(check int) "two assignments" 2
      (List.length (List.filter (function Logical.L_assign _ -> true | _ -> false) pl.pipeline))

let test_occurrence_selection () =
  let src =
    "path(A, B, min<D>) <- warc(A, B, D).\n\
     path(A, B, min<D>) <- path(A, C, D1), path(C, B, D2), D = D1 + D2."
  in
  let stratum = stratum_of src "path" in
  let rule = rule_of src 1 in
  Alcotest.(check int) "two occurrences" 2 (Logical.recursive_occurrences stratum rule);
  let occ k =
    match Logical.order stratum rule ~delta_occurrence:(Some k) with
    | Ok { scan = Logical.Scan_delta { occurrence; _ }; _ } -> occurrence
    | _ -> -1
  in
  Alcotest.(check int) "occurrence 0" 0 (occ 0);
  Alcotest.(check int) "occurrence 1" 1 (occ 1)

let test_greedy_prefers_bound_atoms () =
  (* after scanning q, r(X, W) has a bound column while s(U, V) has none:
     r must be joined first *)
  let src = "p(X) <- q(X), s(U, V), r(X, W), W = U." in
  let stratum = stratum_of src "p" in
  match Logical.order stratum (rule_of src 0) ~delta_occurrence:None with
  | Error e -> Alcotest.fail e
  | Ok pl -> (
    match pl.pipeline with
    | Logical.L_join { atom; _ } :: _ ->
      Alcotest.(check string) "most-bound atom first" "r" atom.pred
    | _ -> Alcotest.fail "expected a join first")

let test_to_string_mentions_scan () =
  let stratum = stratum_of sg_src "sg" in
  match Logical.order stratum (rule_of sg_src 1) ~delta_occurrence:(Some 0) with
  | Error e -> Alcotest.fail e
  | Ok pl ->
    let s = Logical.to_string pl in
    Alcotest.(check bool) "mentions delta scan" true
      (String.length s >= 9 && String.sub s 0 9 = "SCAN d.sg")

let () =
  Alcotest.run "logical"
    [
      ( "unit",
        [
          Alcotest.test_case "delta scan leftmost" `Quick test_delta_scan_is_leftmost;
          Alcotest.test_case "filter pushdown" `Quick test_filter_pushdown;
          Alcotest.test_case "assignment vs filter" `Quick test_assignment_vs_filter;
          Alcotest.test_case "bound Eq is filter" `Quick test_eq_as_filter_when_bound;
          Alcotest.test_case "unit scan" `Quick test_unit_scan;
          Alcotest.test_case "occurrence selection" `Quick test_occurrence_selection;
          Alcotest.test_case "greedy bound-first" `Quick test_greedy_prefers_bound_atoms;
          Alcotest.test_case "to_string" `Quick test_to_string_mentions_scan;
        ] );
    ]
