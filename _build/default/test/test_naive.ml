open Dcd_datalog
module Naive = Dcd_engine.Naive

let run ?params ?max_iterations src edb =
  Naive.run ?params ?max_iterations (Parser.parse_program src)
    ~edb:(List.map (fun (n, rows) -> (n, List.map Array.of_list rows)) edb)

let get rel results = List.map Array.to_list (List.assoc rel results)

let rows = Alcotest.(list (list int))

let test_tc () =
  let r = run "tc(X, Y) <- arc(X, Y).\ntc(X, Y) <- tc(X, Z), arc(Z, Y)."
      [ ("arc", [ [ 1; 2 ]; [ 2; 3 ] ]) ]
  in
  Alcotest.check rows "closure" [ [ 1; 2 ]; [ 1; 3 ]; [ 2; 3 ] ] (get "tc" r)

let test_min_aggregate () =
  let r =
    run "best(X, min<C>) <- offer(X, C)."
      [ ("offer", [ [ 1; 10 ]; [ 1; 5 ]; [ 2; 7 ] ]) ]
  in
  Alcotest.check rows "min per group" [ [ 1; 5 ]; [ 2; 7 ] ] (get "best" r)

let test_sssp_hand_checked () =
  let r =
    run ~params:[ ("start", 1) ]
      "sp(To, min<C>) <- To = start, C = 0.\n\
       sp(T2, min<C>) <- sp(T1, C1), warc(T1, T2, C2), C = C1 + C2."
      [ ("warc", [ [ 1; 2; 10 ]; [ 1; 3; 2 ]; [ 3; 2; 3 ]; [ 2; 4; 1 ] ]) ]
  in
  Alcotest.check rows "distances" [ [ 1; 0 ]; [ 2; 5 ]; [ 3; 2 ]; [ 4; 6 ] ] (get "sp" r)

let test_count_mutual () =
  let r =
    run
      "attend(X) <- organizer(X).\n\
       cnt(Y, count<X>) <- attend(X), friend(Y, X).\n\
       attend(X) <- cnt(X, N), N >= 2."
      [
        ("organizer", [ [ 1 ]; [ 2 ] ]);
        ("friend", [ [ 10; 1 ]; [ 10; 2 ]; [ 11; 10 ]; [ 11; 1 ]; [ 12; 11 ] ]);
      ]
  in
  (* 10 attends (friends 1,2); then 11 attends (friends 10,1); 12 has only
     one attending friend *)
  Alcotest.check rows "cascade" [ [ 1 ]; [ 2 ]; [ 10 ]; [ 11 ] ] (get "attend" r)

let test_sum_replacement () =
  (* one contributor whose value is refined: the sum tracks the latest *)
  let r =
    run "total(G, sum<(C, V)>) <- obs(G, C, V)."
      [ ("obs", [ [ 1; 7; 10 ]; [ 1; 8; 5 ] ]) ]
  in
  Alcotest.check rows "sum of contributions" [ [ 1; 15 ] ] (get "total" r)

let test_stratified_negation () =
  let r =
    run
      "reach(X) <- src(X).\nreach(Y) <- reach(X), e(X, Y).\n\
       unreach(X) <- node(X), !reach(X)."
      [
        ("src", [ [ 1 ] ]);
        ("e", [ [ 1; 2 ] ]);
        ("node", [ [ 1 ]; [ 2 ]; [ 3 ] ]);
      ]
  in
  Alcotest.check rows "negation after fixpoint" [ [ 3 ] ] (get "unreach" r)

let test_nonlinear () =
  let r =
    run
      "path(A, B, min<D>) <- warc(A, B, D).\n\
       path(A, B, min<D>) <- path(A, C, D1), path(C, B, D2), D = D1 + D2."
      [ ("warc", [ [ 1; 2; 1 ]; [ 2; 3; 1 ]; [ 3; 4; 1 ] ]) ]
  in
  Alcotest.check rows "apsp"
    [ [ 1; 2; 1 ]; [ 1; 3; 2 ]; [ 1; 4; 3 ]; [ 2; 3; 1 ]; [ 2; 4; 2 ]; [ 3; 4; 1 ] ]
    (get "path" r)

let test_max_iterations_bounds () =
  (* without the bound this would loop for a long time; bound must stop it *)
  let r =
    run ~max_iterations:3 "n(X) <- seed(X).\nn(Y) <- n(X), Y = X + 1, Y < 1000."
      [ ("seed", [ [ 0 ] ]) ]
  in
  Alcotest.(check bool) "bounded" true (List.length (get "n" r) < 1000)

let test_invalid_program_raises () =
  Alcotest.(check bool) "analysis errors surface" true
    (try
       ignore (run "p(X, Y) <- q(X)." [ ("q", [ [ 1 ] ]) ]);
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "naive"
    [
      ( "unit",
        [
          Alcotest.test_case "tc" `Quick test_tc;
          Alcotest.test_case "min aggregate" `Quick test_min_aggregate;
          Alcotest.test_case "sssp hand checked" `Quick test_sssp_hand_checked;
          Alcotest.test_case "count mutual" `Quick test_count_mutual;
          Alcotest.test_case "sum replacement" `Quick test_sum_replacement;
          Alcotest.test_case "stratified negation" `Quick test_stratified_negation;
          Alcotest.test_case "nonlinear" `Quick test_nonlinear;
          Alcotest.test_case "max iterations" `Quick test_max_iterations_bounds;
          Alcotest.test_case "invalid program" `Quick test_invalid_program_raises;
        ] );
    ]
