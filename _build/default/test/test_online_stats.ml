module Stats = Dcd_util.Online_stats

let feps = Alcotest.float 1e-9

let direct_mean xs = List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let direct_variance xs =
  let m = direct_mean xs in
  List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. xs /. float_of_int (List.length xs)

let test_empty () =
  let s = Stats.create () in
  Alcotest.(check int) "count" 0 (Stats.count s);
  Alcotest.check feps "mean" 0. (Stats.mean s);
  Alcotest.check feps "variance" 0. (Stats.variance s)

let test_known_values () =
  let s = Stats.create () in
  let xs = [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ] in
  List.iter (Stats.add s) xs;
  Alcotest.check feps "mean" 5. (Stats.mean s);
  Alcotest.check feps "variance" 4. (Stats.variance s);
  Alcotest.check feps "stddev" 2. (Stats.stddev s)

let test_single_observation () =
  let s = Stats.create () in
  Stats.add s 3.5;
  Alcotest.check feps "mean" 3.5 (Stats.mean s);
  Alcotest.check feps "variance with n=1" 0. (Stats.variance s)

let test_reset () =
  let s = Stats.create () in
  Stats.add s 10.;
  Stats.reset s;
  Alcotest.(check int) "count after reset" 0 (Stats.count s)

let test_merge_equals_combined () =
  let a = Stats.create () and b = Stats.create () and all = Stats.create () in
  let xs = [ 1.; 2.; 3. ] and ys = [ 10.; 20.; 30.; 40. ] in
  List.iter (Stats.add a) xs;
  List.iter (Stats.add b) ys;
  List.iter (Stats.add all) (xs @ ys);
  let m = Stats.merge a b in
  Alcotest.check (Alcotest.float 1e-6) "merged mean" (Stats.mean all) (Stats.mean m);
  Alcotest.check (Alcotest.float 1e-6) "merged variance" (Stats.variance all) (Stats.variance m)

let test_merge_with_empty () =
  let a = Stats.create () and b = Stats.create () in
  Stats.add a 5.;
  let m = Stats.merge a b in
  Alcotest.check feps "merge with empty keeps mean" 5. (Stats.mean m)

let test_decay_keeps_mean () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 1.; 3.; 5. ];
  let mean_before = Stats.mean s in
  Stats.decay s 0.5;
  Alcotest.check feps "decay preserves mean" mean_before (Stats.mean s);
  Alcotest.check_raises "bad factor" (Invalid_argument "Online_stats.decay") (fun () ->
      Stats.decay s 0.)

let prop_matches_direct =
  QCheck.Test.make ~name:"welford matches direct formulas" ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_range 2 60) (float_range (-100.) 100.))
    (fun xs ->
      let s = Stats.create () in
      List.iter (Stats.add s) xs;
      abs_float (Stats.mean s -. direct_mean xs) < 1e-6
      && abs_float (Stats.variance s -. direct_variance xs) < 1e-4)

let () =
  Alcotest.run "online_stats"
    [
      ( "unit",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "known values" `Quick test_known_values;
          Alcotest.test_case "single observation" `Quick test_single_observation;
          Alcotest.test_case "reset" `Quick test_reset;
          Alcotest.test_case "merge equals combined" `Quick test_merge_equals_combined;
          Alcotest.test_case "merge with empty" `Quick test_merge_with_empty;
          Alcotest.test_case "decay keeps mean" `Quick test_decay_keeps_mean;
        ] );
      ("property", [ QCheck_alcotest.to_alcotest prop_matches_direct ]);
    ]
