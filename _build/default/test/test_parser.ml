open Dcd_datalog
module P = Parser

let rule = Alcotest.testable (fun fmt r -> Fmt.string fmt (Ast.rule_to_string r)) ( = )

let test_fact () =
  let r = P.parse_rule "arc(1, 2)." in
  Alcotest.(check bool) "is fact" true (Ast.is_fact r);
  Alcotest.(check int) "arity" 2 (Ast.head_arity r)

let test_simple_rule () =
  let r = P.parse_rule "tc(X, Y) <- tc(X, Z), arc(Z, Y)." in
  Alcotest.(check string) "head" "tc" r.head_pred;
  Alcotest.(check int) "two body atoms" 2 (List.length (Ast.body_atoms r))

let test_aggregates () =
  let r = P.parse_rule "cc2(Y, min<Z>) <- cc2(X, Z), arc(X, Y)." in
  Alcotest.(check (option (pair int unit))) "agg at position 1"
    (Some (1, ()))
    (Option.map (fun (p, _) -> (p, ())) (Ast.agg_of_rule r));
  let r = P.parse_rule "rank(X, sum<(Y, K)>) <- rank(Y, C), m(Y, X, D), K = C / D." in
  (match Ast.agg_of_rule r with
  | Some (1, Ast.Sum) -> ()
  | _ -> Alcotest.fail "expected sum at position 1");
  let r = P.parse_rule "cnt(Y, count<X>) <- attend(X), friend(Y, X)." in
  match Ast.agg_of_rule r with
  | Some (1, Ast.Count) -> ()
  | _ -> Alcotest.fail "expected count"

let test_agg_vs_comparison_ambiguity () =
  (* [min] as a predicate name and [<] as comparison must still work *)
  let r = P.parse_rule "p(X) <- q(X), X < 3." in
  Alcotest.(check int) "one atom" 1 (List.length (Ast.body_atoms r));
  (* aggregate keywords are only special in heads *)
  let r = P.parse_rule "p(X) <- min(X)." in
  Alcotest.(check (list string)) "min is a plain predicate in bodies" [ "min" ]
    (List.map (fun (a : Ast.atom) -> a.pred) (Ast.body_atoms r))

let test_arith_precedence () =
  let r = P.parse_rule "p(X) <- q(A, B, C), X = A + B * C." in
  let assign =
    List.find_map (function Ast.Cmp (Ast.Eq, _, e) -> Some e | _ -> None) r.body
  in
  match assign with
  | Some (Ast.Binop (Ast.Add, _, Ast.Binop (Ast.Mul, _, _))) -> ()
  | _ -> Alcotest.fail "multiplication must bind tighter than addition"

let test_parenthesized_expr () =
  let r = P.parse_rule "p(K) <- q(C, D), K = 85 * C / (100 * D)." in
  Alcotest.(check int) "parses" 1 (List.length (Ast.body_atoms r))

let test_negation () =
  let r = P.parse_rule "p(X) <- q(X), !r(X)." in
  let negs = List.filter (function Ast.Neg_lit _ -> true | _ -> false) r.body in
  Alcotest.(check int) "one negated literal" 1 (List.length negs)

let test_wildcards_fresh () =
  let r = P.parse_rule "p(X) <- q(X, _), r(_, X)." in
  let vars = List.concat_map Ast.vars_of_literal r.body in
  let wildcards = List.filter (fun v -> String.length v > 1 && v.[0] = '_') vars in
  Alcotest.(check int) "two wildcards" 2 (List.length wildcards);
  Alcotest.(check bool) "distinct" true (List.nth wildcards 0 <> List.nth wildcards 1)

let test_negative_int () =
  let r = P.parse_rule "p(X) <- q(X), X > -5." in
  Alcotest.(check int) "parses negative literal" 1 (List.length (Ast.body_atoms r))

let test_symbolic_constants () =
  let r = P.parse_rule "sp(To, min<C>) <- To = start, C = 0." in
  let has_sym =
    List.exists
      (function
        | Ast.Cmp (_, Ast.Term (Ast.Var _), Ast.Term (Ast.Sym "start")) -> true
        | _ -> false)
      r.body
  in
  Alcotest.(check bool) "start parsed as symbol" true has_sym

let test_program_multi_rule () =
  let p = P.parse_program "a(X) <- b(X).\n% comment\na(X) <- c(X).\nb(1)." in
  Alcotest.(check int) "three rules" 3 (List.length p.rules)

let test_roundtrip_through_printer () =
  let src = "cc2(Y, min<Z>) <- cc2(X, Z), arc(X, Y)." in
  let r = P.parse_rule src in
  let r2 = P.parse_rule (Ast.rule_to_string r) in
  Alcotest.check rule "pretty-print then reparse" r r2

let test_zero_arity () =
  let r = P.parse_rule "flag <- p(X), X > 2." in
  Alcotest.(check int) "zero-arity head" 0 (Ast.head_arity r)

let test_errors () =
  let expect_error src =
    try
      ignore (P.parse_program src);
      Alcotest.fail ("expected parse error for: " ^ src)
    with P.Parse_error _ -> ()
  in
  expect_error "p(X <- q(X).";
  expect_error "p(X) <- q(X)";
  (* missing dot *)
  expect_error "p(X) <- .";
  expect_error "p(min<X, Y>) <- q(X, Y)."
(* min with two terms *)

let () =
  Alcotest.run "parser"
    [
      ( "unit",
        [
          Alcotest.test_case "fact" `Quick test_fact;
          Alcotest.test_case "simple rule" `Quick test_simple_rule;
          Alcotest.test_case "aggregates" `Quick test_aggregates;
          Alcotest.test_case "agg vs comparison" `Quick test_agg_vs_comparison_ambiguity;
          Alcotest.test_case "arith precedence" `Quick test_arith_precedence;
          Alcotest.test_case "parenthesized expr" `Quick test_parenthesized_expr;
          Alcotest.test_case "negation" `Quick test_negation;
          Alcotest.test_case "wildcards fresh" `Quick test_wildcards_fresh;
          Alcotest.test_case "negative int" `Quick test_negative_int;
          Alcotest.test_case "symbolic constants" `Quick test_symbolic_constants;
          Alcotest.test_case "multi rule program" `Quick test_program_multi_rule;
          Alcotest.test_case "printer roundtrip" `Quick test_roundtrip_through_printer;
          Alcotest.test_case "zero arity" `Quick test_zero_arity;
          Alcotest.test_case "errors" `Quick test_errors;
        ] );
    ]
