module P = Dcd_storage.Partition
module Vec = Dcd_util.Vec

let test_range () =
  let h = P.create ~workers:7 in
  Alcotest.(check int) "workers" 7 (P.workers h);
  for k = 0 to 9999 do
    let w = P.of_key h k in
    if w < 0 || w >= 7 then Alcotest.fail "owner out of range"
  done

let test_stable () =
  let h = P.create ~workers:4 in
  Alcotest.(check int) "same key same owner" (P.of_key h 12345) (P.of_key h 12345)

let test_tuple_vs_key_consistency () =
  (* a single-column tuple route must agree with itself across relations *)
  let h = P.create ~workers:8 in
  for v = 0 to 999 do
    let a = P.of_tuple h ~cols:[| 0 |] [| v; 77 |] in
    let b = P.of_tuple h ~cols:[| 0 |] [| v; 123456 |] in
    if a <> b then Alcotest.fail "owner must depend only on key columns"
  done

let test_balance () =
  let h = P.create ~workers:8 in
  let counts = Array.make 8 0 in
  for k = 0 to 79_999 do
    let w = P.of_key h k in
    counts.(w) <- counts.(w) + 1
  done;
  Array.iter
    (fun c ->
      Alcotest.(check bool) "within 15% of even" true (abs (c - 10_000) < 1_500))
    counts

let test_split () =
  let h = P.create ~workers:3 in
  let batch = Vec.of_list (List.init 100 (fun i -> [| i; i * 2 |])) in
  let parts = P.split h batch ~cols:[| 0 |] in
  let total = Array.fold_left (fun acc p -> acc + Vec.length p) 0 parts in
  Alcotest.(check int) "no tuple lost" 100 total;
  Array.iteri
    (fun w part ->
      Vec.iter
        (fun t ->
          if P.of_tuple h ~cols:[| 0 |] t <> w then Alcotest.fail "tuple in wrong partition")
        part)
    parts

let test_single_worker () =
  let h = P.create ~workers:1 in
  Alcotest.(check int) "everything to worker 0" 0 (P.of_key h 42);
  Alcotest.(check int) "empty cols to worker 0" 0 (P.of_tuple h ~cols:[||] [| 1; 2 |]);
  Alcotest.check_raises "zero workers" (Invalid_argument "Partition.create") (fun () ->
      ignore (P.create ~workers:0))

let () =
  Alcotest.run "partition"
    [
      ( "unit",
        [
          Alcotest.test_case "range" `Quick test_range;
          Alcotest.test_case "stable" `Quick test_stable;
          Alcotest.test_case "tuple/key consistency" `Quick test_tuple_vs_key_consistency;
          Alcotest.test_case "balance" `Quick test_balance;
          Alcotest.test_case "split" `Quick test_split;
          Alcotest.test_case "single worker" `Quick test_single_worker;
        ] );
    ]
