open Dcd_datalog

let info_of src = Result.get_ok (Analysis.analyze (Parser.parse_program src))

let cc_src =
  "cc2(Y, min<Y>) <- arc(Y, _).\ncc2(Y, min<Z>) <- cc2(X, Z), arc(X, Y).\ncc(Y, min<Z>) <- cc2(Y, Z)."

let test_structure () =
  let info = info_of cc_src in
  match Pcg.of_program info ~root:"cc" with
  | Pcg.Or_pred { pred = "cc"; recursive = false; alternatives = [ alt ] } -> (
    match alt.children with
    | [ Pcg.Or_pred { pred = "cc2"; recursive = true; alternatives = [ base; rec_ ] } ] ->
      (match base.children with
      | [ Pcg.Edb_leaf "arc" ] -> ()
      | _ -> Alcotest.fail "base rule child should be the arc EDB leaf");
      (match rec_.children with
      | [ Pcg.Rec_ref "cc2"; Pcg.Edb_leaf "arc" ] -> ()
      | _ -> Alcotest.fail "recursive rule should cut the cycle with Rec_ref")
    | _ -> Alcotest.fail "cc should expand into cc2")
  | _ -> Alcotest.fail "unexpected root shape"

let test_roots () =
  let info = info_of cc_src in
  Alcotest.(check (list string)) "cc is the only root" [ "cc" ] (Pcg.roots info)

let test_unknown_root () =
  let info = info_of cc_src in
  Alcotest.check_raises "unknown root"
    (Invalid_argument "Pcg.of_program: unknown predicate nope") (fun () ->
      ignore (Pcg.of_program info ~root:"nope"))

let contains s sub =
  let n = String.length sub in
  let rec loop i = i + n <= String.length s && (String.sub s i n = sub || loop (i + 1)) in
  loop 0

let test_size_and_pp () =
  let info = info_of cc_src in
  let tree = Pcg.of_program info ~root:"cc" in
  Alcotest.(check bool) "size counts nodes" true (Pcg.size tree >= 6);
  let rendered = Format.asprintf "%a" Pcg.pp tree in
  Alcotest.(check bool) "render mentions recursion" true (contains rendered "recursive")

let () =
  Alcotest.run "pcg"
    [
      ( "unit",
        [
          Alcotest.test_case "structure" `Quick test_structure;
          Alcotest.test_case "roots" `Quick test_roots;
          Alcotest.test_case "unknown root" `Quick test_unknown_root;
          Alcotest.test_case "size and pp" `Quick test_size_and_pp;
        ] );
    ]
