open Dcd_datalog
module Ph = Dcd_planner.Physical

let compile ?(params = []) src =
  match Analysis.analyze (Parser.parse_program src) with
  | Error e -> Error e
  | Ok info -> Ph.compile ~params info

let compile_ok ?params src =
  match compile ?params src with
  | Ok plan -> plan
  | Error e -> Alcotest.fail e

let apsp_src =
  "path(A, B, min<D>) <- warc(A, B, D).\n\
   path(A, B, min<D>) <- path(A, C, D1), path(C, B, D2), D = D1 + D2.\n\
   apsp(A, B, min<D>) <- path(A, B, D)."

let test_apsp_routes () =
  (* the paper's SS4.3 replication: path is partitioned by column 0 AND
     column 1, each delta variant scans the copy colocated with its
     recursive lookup *)
  let plan = compile_ok apsp_src in
  let sp = List.hd plan.strata in
  let pp = List.find (fun (p : Ph.pred_plan) -> p.pred = "path") sp.pred_plans in
  Alcotest.(check (list (list int))) "two routes"
    [ [ 0 ]; [ 1 ] ]
    (List.map Array.to_list pp.routes);
  Alcotest.(check int) "two delta variants" 2 (List.length sp.delta_rules);
  List.iter
    (fun (cr : Ph.compiled_rule) ->
      match cr.scan with
      | Ph.S_delta { route = scan_route; _ } ->
        let lookup_route =
          Array.to_list cr.steps
          |> List.find_map (function
               | Ph.Lookup { rel = Ph.R_rec { route; _ }; _ } -> Some route
               | _ -> None)
        in
        (match (Array.to_list scan_route, Option.map Array.to_list lookup_route) with
        | [ 1 ], Some [ 0 ] | [ 0 ], Some [ 1 ] -> ()
        | _ -> Alcotest.fail "scan/lookup routes must be colocated complements")
      | _ -> Alcotest.fail "delta rule must scan a delta")
    sp.delta_rules

let test_join_method_selection () =
  let plan =
    compile_ok "p(X, Y) <- a(X, Z), b(Z, Y).\nq(X) <- a(X, Z), c(Z), d(Z)."
  in
  let methods cr =
    Array.to_list cr.Ph.steps
    |> List.filter_map (function Ph.Lookup { method_; _ } -> Some method_ | _ -> None)
  in
  let all = List.concat_map (fun sp -> sp.Ph.init_rules) plan.strata in
  let m = List.concat_map methods all in
  Alcotest.(check bool) "index joins used" true (List.mem Ph.Index m);
  (* c and d share the same key source Z -> the paper's hash-join case *)
  Alcotest.(check bool) "hash join detected" true (List.mem Ph.Hash m)

let test_nested_loop_fallback () =
  let plan = compile_ok "p(X, Y) <- a(X), b(Y)." in
  let sp = List.hd plan.strata in
  let methods =
    List.concat_map
      (fun (cr : Ph.compiled_rule) ->
        Array.to_list cr.steps
        |> List.filter_map (function Ph.Lookup { method_; _ } -> Some method_ | _ -> None))
      sp.init_rules
  in
  Alcotest.(check bool) "cartesian falls back to nested loop" true
    (List.mem Ph.Nested_loop methods)

let test_params_resolved () =
  let plan =
    compile_ok ~params:[ ("start", 42) ]
      "sp(To, min<C>) <- To = start, C = 0.\nsp(T2, min<C>) <- sp(T1, C1), warc(T1, T2, C2), C = C1 + C2."
  in
  let sp = List.hd plan.strata in
  let init = List.hd sp.init_rules in
  let has_42 =
    Array.exists
      (function Ph.Compute { code = Ph.C_const 42; _ } -> true | _ -> false)
      init.steps
  in
  Alcotest.(check bool) "start resolved to 42" true has_42

let test_symbols_interned () =
  let plan = compile_ok "p(X) <- q(X, foo).\nr(X) <- q(X, bar)." in
  Alcotest.(check int) "two symbols interned" 2 (Dcd_util.Symbol.count plan.symbols)

let test_colocation_error () =
  (* the recursive lookup keys on a value produced by a base lookup, not
     the scanned delta: the engine cannot colocate this *)
  let src = "p(X, Y) <- e(X, Y).\np(X, Y) <- p(X, Z), f(Z, W), p(W, Y)." in
  match compile src with
  | Error msg ->
    Alcotest.(check bool) "mentions colocation" true
      (String.length msg > 0)
  | Ok _ -> Alcotest.fail "expected a colocation planning error"

let test_eval_code () =
  let regs = [| 10; 3 |] in
  let code = Ph.C_bin (Ast.Add, Ph.C_reg 0, Ph.C_bin (Ast.Mul, Ph.C_reg 1, Ph.C_const 2)) in
  Alcotest.(check int) "10 + 3*2" 16 (Ph.eval_code code regs);
  Alcotest.(check int) "neg" (-10) (Ph.eval_code (Ph.C_neg (Ph.C_reg 0)) regs);
  Alcotest.(check int) "div" 3 (Ph.eval_code (Ph.C_bin (Ast.Div, Ph.C_reg 0, Ph.C_reg 1)) regs);
  Alcotest.(check int) "mod" 1 (Ph.eval_code (Ph.C_bin (Ast.Mod, Ph.C_reg 0, Ph.C_reg 1)) regs);
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (Ph.eval_code (Ph.C_bin (Ast.Div, Ph.C_const 1, Ph.C_const 0)) regs))

let test_eval_cmp () =
  Alcotest.(check bool) "eq" true (Ph.eval_cmp Ast.Eq 3 3);
  Alcotest.(check bool) "ne" true (Ph.eval_cmp Ast.Ne 3 4);
  Alcotest.(check bool) "lt" false (Ph.eval_cmp Ast.Lt 4 3);
  Alcotest.(check bool) "le" true (Ph.eval_cmp Ast.Le 3 3);
  Alcotest.(check bool) "gt" true (Ph.eval_cmp Ast.Gt 4 3);
  Alcotest.(check bool) "ge" false (Ph.eval_cmp Ast.Ge 2 3)

let test_base_relations_needed () =
  let plan = compile_ok "tc(X, Y) <- arc(X, Y).\ntc(X, Y) <- tc(X, Z), arc(Z, Y)." in
  let needed = Ph.base_relations_needed plan in
  Alcotest.(check bool) "arc index on col 0" true
    (List.exists (fun (p, cols) -> p = "arc" && cols = [| 0 |]) needed)

let test_explain_runs () =
  let plan = compile_ok apsp_src in
  let text = Ph.explain plan in
  Alcotest.(check bool) "explain non-empty" true (String.length text > 100)

let contains s sub =
  let n = String.length sub in
  let rec loop i = i + n <= String.length s && (String.sub s i n = sub || loop (i + 1)) in
  loop 0

let test_to_dot () =
  let plan = compile_ok apsp_src in
  let dot = Ph.to_dot plan in
  Alcotest.(check bool) "digraph" true (contains dot "digraph physical_plan");
  Alcotest.(check bool) "stratum clusters" true (contains dot "subgraph cluster_1");
  Alcotest.(check bool) "gather node with routes" true (contains dot "routes [0] [1]");
  Alcotest.(check bool) "dashed coordination edges" true (contains dot "style=dashed");
  Alcotest.(check bool) "recursive join labelled" true (contains dot "Join rec:path")

let test_count_head_const_zero () =
  let plan =
    compile_ok "cnt(Y, count<X>) <- attend(X), friend(Y, X).\nattend(1)."
  in
  let sp =
    List.find
      (fun (s : Ph.stratum_plan) -> List.mem "cnt" s.stratum.preds)
      plan.strata
  in
  let cr =
    List.find (fun (c : Ph.compiled_rule) -> c.head.hpred = "cnt") (sp.init_rules @ sp.delta_rules)
  in
  (match cr.head.agg with
  | Some (1, Ast.Count, contribs) ->
    Alcotest.(check int) "one contributor source" 1 (Array.length contribs)
  | _ -> Alcotest.fail "count head mis-compiled");
  Alcotest.(check bool) "count value placeholder" true (cr.head.args.(1) = Ph.Const 0)

let () =
  Alcotest.run "physical"
    [
      ( "unit",
        [
          Alcotest.test_case "apsp routes" `Quick test_apsp_routes;
          Alcotest.test_case "join method selection" `Quick test_join_method_selection;
          Alcotest.test_case "nested loop fallback" `Quick test_nested_loop_fallback;
          Alcotest.test_case "params resolved" `Quick test_params_resolved;
          Alcotest.test_case "symbols interned" `Quick test_symbols_interned;
          Alcotest.test_case "colocation error" `Quick test_colocation_error;
          Alcotest.test_case "eval_code" `Quick test_eval_code;
          Alcotest.test_case "eval_cmp" `Quick test_eval_cmp;
          Alcotest.test_case "base_relations_needed" `Quick test_base_relations_needed;
          Alcotest.test_case "explain" `Quick test_explain_runs;
          Alcotest.test_case "to_dot" `Quick test_to_dot;
          Alcotest.test_case "count head" `Quick test_count_head_const_zero;
        ] );
    ]
