module Q = Dcd_engine.Qmodel

let feed_regular q ~producers ~gap ~per_batch ~batches =
  for b = 1 to batches do
    for j = 0 to producers - 1 do
      Q.record_arrival q ~from:j ~now:(float_of_int b *. gap) ~count:per_batch
    done
  done

let test_cold_start_no_wait () =
  let q = Q.create ~producers:2 () in
  let d = Q.decide q ~buffer_sizes:[| 0; 0 |] in
  Alcotest.(check (float 0.)) "omega zero before stats" 0. d.omega;
  Alcotest.(check (float 0.)) "tau zero before stats" 0. d.tau

let test_stable_queue_produces_wait () =
  let q = Q.create ~producers:1 () in
  (* arrivals: 10 tuples every 1.0s => lambda = 10/s; service: 0.02s per
     tuple => mu = 50/s; rho = 0.2 *)
  feed_regular q ~producers:1 ~gap:1.0 ~per_batch:10 ~batches:20;
  for _ = 1 to 10 do
    Q.record_service q ~tuples:10 ~elapsed:0.2
  done;
  let d = Q.decide q ~buffer_sizes:[| 5 |] in
  Alcotest.(check bool) "rho in (0,1)" true (d.rho > 0. && d.rho < 1.);
  Alcotest.(check bool) "omega finite and non-negative" true (d.omega >= 0. && Float.is_finite d.omega);
  Alcotest.(check bool) "tau consistent with omega" true
    (d.tau >= 0. && Float.is_finite d.tau)

let test_overloaded_never_waits () =
  let q = Q.create ~producers:1 () in
  (* arrivals faster than service: rho >= 1 -> waiting is pointless *)
  feed_regular q ~producers:1 ~gap:0.01 ~per_batch:10 ~batches:50;
  for _ = 1 to 10 do
    Q.record_service q ~tuples:1 ~elapsed:0.5
  done;
  let d = Q.decide q ~buffer_sizes:[| 100 |] in
  Alcotest.(check bool) "rho >= 1 detected" true (d.rho >= 1.);
  Alcotest.(check (float 0.)) "no wait under overload" 0. d.omega

let test_kingman_increases_with_variance () =
  (* same rates, bursty arrivals -> larger expected queue *)
  let smooth = Q.create ~producers:1 () in
  feed_regular smooth ~producers:1 ~gap:1.0 ~per_batch:1 ~batches:40;
  for _ = 1 to 10 do
    Q.record_service smooth ~tuples:1 ~elapsed:0.5
  done;
  let bursty = Q.create ~producers:1 () in
  let t = ref 0. in
  for b = 1 to 40 do
    (* alternating short/long gaps, same mean 1.0 *)
    t := !t +. (if b mod 2 = 0 then 0.1 else 1.9);
    Q.record_arrival bursty ~from:0 ~now:!t ~count:1
  done;
  for _ = 1 to 10 do
    Q.record_service bursty ~tuples:1 ~elapsed:0.5
  done;
  let ds = Q.decide smooth ~buffer_sizes:[| 3 |] in
  let db = Q.decide bursty ~buffer_sizes:[| 3 |] in
  Alcotest.(check bool) "variance raises Lq" true (db.omega > ds.omega)

let test_decay_reduces_confidence () =
  let q = Q.create ~producers:1 () in
  Q.record_arrival q ~from:0 ~now:1.0 ~count:1;
  Q.record_arrival q ~from:0 ~now:2.0 ~count:1;
  Q.record_service q ~tuples:1 ~elapsed:0.1;
  Q.record_service q ~tuples:1 ~elapsed:0.1;
  (* heavy decay forgets nearly everything: back to cold start *)
  for _ = 1 to 200 do
    Q.decay q 0.5
  done;
  let d = Q.decide q ~buffer_sizes:[| 3 |] in
  Alcotest.(check (float 0.)) "decayed to no-wait" 0. d.omega

let test_zero_count_arrivals_ignored () =
  let q = Q.create ~producers:1 () in
  Q.record_arrival q ~from:0 ~now:1.0 ~count:0;
  Q.record_service q ~tuples:0 ~elapsed:0.;
  let d = Q.decide q ~buffer_sizes:[| 1 |] in
  Alcotest.(check (float 0.)) "still cold" 0. d.omega

let () =
  Alcotest.run "qmodel"
    [
      ( "unit",
        [
          Alcotest.test_case "cold start" `Quick test_cold_start_no_wait;
          Alcotest.test_case "stable queue" `Quick test_stable_queue_produces_wait;
          Alcotest.test_case "overload" `Quick test_overloaded_never_waits;
          Alcotest.test_case "kingman variance" `Quick test_kingman_increases_with_variance;
          Alcotest.test_case "decay" `Quick test_decay_reduces_confidence;
          Alcotest.test_case "zero counts" `Quick test_zero_count_arrivals_ignored;
        ] );
    ]
