module Report = Dcd_util.Report

let test_add_and_print () =
  let t = Report.create ~title:"T" ~header:[ "a"; "bb" ] in
  Report.add_row t [ "1"; "2" ];
  Report.add_row t [ "only" ];
  (* shorter row allowed *)
  Report.print t;
  Alcotest.check_raises "too many cells"
    (Invalid_argument "Report.add_row: more cells than header columns") (fun () ->
      Report.add_row t [ "1"; "2"; "3" ])

let test_cells () =
  Alcotest.(check string) "time sub-ms" "0.0042" (Report.cell_time 0.0042);
  Alcotest.(check string) "time sub-s" "0.123" (Report.cell_time 0.1234);
  Alcotest.(check string) "time s" "12.35" (Report.cell_time 12.349);
  Alcotest.(check string) "float" "3.14" (Report.cell_float 3.14159);
  Alcotest.(check string) "float decimals" "3.1416" (Report.cell_float ~decimals:4 3.14159);
  Alcotest.(check string) "speedup" "2.50x" (Report.cell_speedup 2.5)

let () =
  Alcotest.run "report"
    [
      ( "unit",
        [
          Alcotest.test_case "add and print" `Quick test_add_and_print;
          Alcotest.test_case "cell formatting" `Quick test_cells;
        ] );
    ]
