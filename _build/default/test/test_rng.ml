module Rng = Dcd_util.Rng

let test_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let xa = List.init 10 (fun _ -> Rng.int64 a) in
  let xb = List.init 10 (fun _ -> Rng.int64 b) in
  Alcotest.(check bool) "different seeds diverge" true (xa <> xb)

(* regression: Int64 truncation used to produce negative values, which
   generated negative edge weights and a diverging SSSP fixpoint *)
let prop_int_non_negative =
  QCheck.Test.make ~name:"int is always in [0, bound)" ~count:10_000
    QCheck.(pair small_int (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let rng = Rng.create seed in
      let ok = ref true in
      for _ = 1 to 20 do
        let x = Rng.int rng bound in
        if x < 0 || x >= bound then ok := false
      done;
      !ok)

let test_int_bound_one () =
  let rng = Rng.create 7 in
  for _ = 1 to 50 do
    Alcotest.(check int) "bound 1 gives 0" 0 (Rng.int rng 1)
  done;
  Alcotest.check_raises "bound 0 rejected"
    (Invalid_argument "Rng.int: bound must be positive") (fun () -> ignore (Rng.int rng 0))

let test_float_range () =
  let rng = Rng.create 13 in
  for _ = 1 to 1000 do
    let x = Rng.float rng 2.5 in
    Alcotest.(check bool) "in range" true (x >= 0. && x < 2.5)
  done

let test_split_independent () =
  let parent = Rng.create 5 in
  let child = Rng.split parent in
  let xs = List.init 5 (fun _ -> Rng.int64 parent) in
  let ys = List.init 5 (fun _ -> Rng.int64 child) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let test_shuffle_permutation () =
  let rng = Rng.create 11 in
  let a = Array.init 100 (fun i -> i) in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 100 (fun i -> i)) sorted;
  Alcotest.(check bool) "actually shuffled" true (a <> Array.init 100 (fun i -> i))

let test_uniformity_rough () =
  let rng = Rng.create 17 in
  let buckets = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let b = Rng.int rng 10 in
    buckets.(b) <- buckets.(b) + 1
  done;
  Array.iter
    (fun c ->
      Alcotest.(check bool) "within 10% of uniform" true
        (abs (c - (n / 10)) < n / 10 / 10 * 3))
    buckets

let () =
  Alcotest.run "rng"
    [
      ( "unit",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
          Alcotest.test_case "bound one" `Quick test_int_bound_one;
          Alcotest.test_case "float range" `Quick test_float_range;
          Alcotest.test_case "split independence" `Quick test_split_independent;
          Alcotest.test_case "shuffle is a permutation" `Quick test_shuffle_permutation;
          Alcotest.test_case "rough uniformity" `Quick test_uniformity_rough;
        ] );
      ("property", [ QCheck_alcotest.to_alcotest prop_int_non_negative ]);
    ]
