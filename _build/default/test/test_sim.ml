module Sim = Dcd_sim.Simulator
module Coord = Dcd_engine.Coord
module Gen = Dcd_workload.Gen
module Graph = Dcd_workload.Graph

let params = Sim.default_params

let graph = lazy (Gen.rmat ~seed:7 ~scale:9 ~edges:4000 ())

let all_strategies = [ Coord.Global; Coord.Ssp 1; Coord.Ssp 5; Coord.dws ]

(* reference CC label counts computed directly *)
let reference_cc_labels g =
  let n = max (Graph.n g) (Graph.max_vertex g + 1) in
  let adj = Array.make n [] in
  Dcd_util.Vec.iter
    (fun (u, v, _) ->
      adj.(u) <- v :: adj.(u);
      adj.(v) <- u :: adj.(v))
    (Graph.edges g);
  let best = Array.make n max_int in
  let count = ref 0 in
  for v = 0 to n - 1 do
    if adj.(v) <> [] && best.(v) = max_int then begin
      (* BFS the whole component *)
      let q = Queue.create () in
      Queue.push v q;
      best.(v) <- 0;
      while not (Queue.is_empty q) do
        let x = Queue.pop q in
        incr count;
        List.iter
          (fun y -> if best.(y) = max_int then begin best.(y) <- 0; Queue.push y q end)
          adj.(x)
      done
    end
  done;
  !count

let test_all_strategies_reach_fixpoint () =
  let g = Lazy.force graph in
  let expected = reference_cc_labels g in
  List.iter
    (fun strategy ->
      let spec = Sim.cc ~graph:g ~workers:4 in
      let o = Sim.run spec ~strategy ~params in
      Alcotest.(check int)
        ("labels under " ^ Coord.to_string strategy)
        expected o.correct_values)
    all_strategies

let test_deterministic () =
  let g = Lazy.force graph in
  let spec = Sim.cc ~graph:g ~workers:4 in
  let a = Sim.run spec ~strategy:Coord.dws ~params in
  let b = Sim.run spec ~strategy:Coord.dws ~params in
  Alcotest.(check (float 0.)) "same makespan" a.makespan b.makespan;
  Alcotest.(check int) "same tuples" a.tuples_processed b.tuples_processed

let test_global_counts_rounds () =
  let g = Gen.chain ~n:20 in
  let spec = Sim.bfs ~graph:g ~source:0 ~workers:2 in
  let o = Sim.run spec ~strategy:Coord.Global ~params in
  (* a 20-vertex chain needs 19 propagation rounds *)
  let rounds = Array.fold_left max 0 o.iterations in
  Alcotest.(check bool) "rounds ~ chain length" true (rounds >= 10 && rounds <= 20);
  Alcotest.(check int) "all vertices reached" 20 o.correct_values

let test_sssp_distances () =
  let g = Graph.create ~n:4 in
  Graph.add_edge g ~w:10 0 1;
  Graph.add_edge g ~w:2 0 2;
  Graph.add_edge g ~w:3 2 1;
  let spec = Sim.sssp ~graph:g ~source:0 ~workers:2 in
  List.iter
    (fun strategy ->
      let o = Sim.run spec ~strategy ~params in
      Alcotest.(check int) "3 vertices valued" 3 o.correct_values)
    all_strategies

let test_makespan_positive_and_idle_consistent () =
  let g = Lazy.force graph in
  let spec = Sim.cc ~graph:g ~workers:8 in
  List.iter
    (fun strategy ->
      let o = Sim.run spec ~strategy ~params in
      Alcotest.(check bool) "makespan positive" true (o.makespan > 0.);
      Array.iteri
        (fun w busy ->
          Alcotest.(check bool) "busy <= makespan" true (busy <= o.makespan +. 1e-6);
          Alcotest.(check bool) "idle = makespan - busy" true
            (abs_float (o.idle.(w) -. (o.makespan -. busy)) < 1e-6))
        o.busy)
    all_strategies

let test_dws_beats_global_at_scale () =
  (* the headline shape: with many workers, barrier evaluation pays for
     stragglers and serialized exchange; DWS does not *)
  let g = Gen.rmat ~seed:21 ~scale:11 ~edges:20_000 () in
  let spec = Sim.sssp ~graph:g ~source:1 ~workers:32 in
  let global = Sim.run spec ~strategy:Coord.Global ~params in
  let dws = Sim.run spec ~strategy:Coord.dws ~params in
  Alcotest.(check bool)
    (Printf.sprintf "dws (%.0f) < global (%.0f)" dws.makespan global.makespan)
    true (dws.makespan < global.makespan)

let test_values_match_reference () =
  (* not just timing: the simulated evaluation must compute the true
     fixpoint values under every strategy *)
  let g = Graph.create ~n:6 in
  Graph.add_edge g ~w:10 0 1;
  Graph.add_edge g ~w:2 0 2;
  Graph.add_edge g ~w:3 2 1;
  Graph.add_edge g ~w:1 1 3;
  Graph.add_edge g ~w:100 2 3;
  let expected = [| Some 0; Some 5; Some 2; Some 6; None; None |] in
  List.iter
    (fun strategy ->
      let o = Sim.run (Sim.sssp ~graph:g ~source:0 ~workers:3) ~strategy ~params in
      Alcotest.(check bool)
        ("distances exact under " ^ Coord.to_string strategy)
        true
        (o.values = expected))
    all_strategies;
  (* CC labels: min vertex id of each component *)
  let g = Gen.components ~seed:4 ~count:3 ~size:10 in
  let o = Sim.run (Sim.cc ~graph:g ~workers:4) ~strategy:Coord.dws ~params in
  let labels = Array.to_list o.values |> List.filter_map Fun.id |> List.sort_uniq compare in
  Alcotest.(check (list int)) "three component labels" [ 0; 10; 20 ] labels

let test_speedup_curve_monotone_start () =
  let g = Lazy.force graph in
  let curve =
    Sim.speedup_curve
      (fun ~workers -> Sim.cc ~graph:g ~workers)
      ~strategy:Coord.Global ~params ~workers:[ 1; 4; 16 ]
  in
  match curve with
  | [ (1, s1); (4, s4); (16, s16) ] ->
    Alcotest.(check (float 1e-9)) "baseline speedup 1" 1.0 s1;
    Alcotest.(check bool) "speedup grows" true (s4 > s1 && s16 > s4)
  | _ -> Alcotest.fail "unexpected curve shape"

let () =
  Alcotest.run "sim"
    [
      ( "unit",
        [
          Alcotest.test_case "fixpoint under all strategies" `Quick
            test_all_strategies_reach_fixpoint;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "global counts rounds" `Quick test_global_counts_rounds;
          Alcotest.test_case "sssp distances" `Quick test_sssp_distances;
          Alcotest.test_case "idle accounting" `Quick test_makespan_positive_and_idle_consistent;
          Alcotest.test_case "dws beats global at scale" `Quick test_dws_beats_global_at_scale;
          Alcotest.test_case "values match reference" `Quick test_values_match_reference;
          Alcotest.test_case "speedup curve" `Quick test_speedup_curve_monotone_start;
        ] );
    ]
