module Spsc = Dcd_concurrent.Spsc_queue

let test_fifo_sequential () =
  let q = Spsc.create ~capacity:8 in
  Alcotest.(check bool) "empty" true (Spsc.is_empty q);
  for i = 1 to 5 do
    Alcotest.(check bool) "push" true (Spsc.try_push q i)
  done;
  Alcotest.(check int) "size" 5 (Spsc.size q);
  for i = 1 to 5 do
    Alcotest.(check (option int)) "fifo pop" (Some i) (Spsc.try_pop q)
  done;
  Alcotest.(check (option int)) "empty pop" None (Spsc.try_pop q)

let test_capacity_rounding () =
  let q = Spsc.create ~capacity:5 in
  Alcotest.(check int) "rounds to pow2" 8 (Spsc.capacity q);
  Alcotest.check_raises "zero capacity" (Invalid_argument "Spsc_queue.create") (fun () ->
      ignore (Spsc.create ~capacity:0))

let test_full_rejects () =
  let q = Spsc.create ~capacity:4 in
  for i = 1 to 4 do
    Alcotest.(check bool) "fills" true (Spsc.try_push q i)
  done;
  Alcotest.(check bool) "full rejects" false (Spsc.try_push q 99);
  ignore (Spsc.try_pop q);
  Alcotest.(check bool) "slot freed" true (Spsc.try_push q 5)

let test_wraparound () =
  let q = Spsc.create ~capacity:4 in
  (* push/pop many times capacity to exercise index wrap *)
  for round = 0 to 99 do
    Alcotest.(check bool) "push" true (Spsc.try_push q round);
    Alcotest.(check (option int)) "pop" (Some round) (Spsc.try_pop q)
  done

let test_drain () =
  let q = Spsc.create ~capacity:16 in
  for i = 1 to 10 do
    ignore (Spsc.try_push q i)
  done;
  let out = ref [] in
  let n = Spsc.drain q (fun x -> out := x :: !out) in
  Alcotest.(check int) "drain count" 10 n;
  Alcotest.(check (list int)) "drain order" (List.init 10 (fun i -> i + 1)) (List.rev !out);
  Alcotest.(check int) "drain empties" 0 (Spsc.drain q (fun _ -> ()))

(* cross-domain transfer: every pushed value arrives exactly once, in order *)
let test_two_domains () =
  let q = Spsc.create ~capacity:64 in
  let n = 50_000 in
  let producer =
    Domain.spawn (fun () ->
        for i = 1 to n do
          while not (Spsc.try_push q i) do
            Domain.cpu_relax ()
          done
        done)
  in
  let received = ref 0 in
  let in_order = ref true in
  while !received < n do
    match Spsc.try_pop q with
    | Some x ->
      incr received;
      if x <> !received then in_order := false
    | None -> Domain.cpu_relax ()
  done;
  Domain.join producer;
  Alcotest.(check bool) "all values in order" true !in_order;
  Alcotest.(check bool) "queue drained" true (Spsc.is_empty q)

let () =
  Alcotest.run "spsc_queue"
    [
      ( "unit",
        [
          Alcotest.test_case "fifo sequential" `Quick test_fifo_sequential;
          Alcotest.test_case "capacity rounding" `Quick test_capacity_rounding;
          Alcotest.test_case "full rejects" `Quick test_full_rejects;
          Alcotest.test_case "wraparound" `Quick test_wraparound;
          Alcotest.test_case "drain" `Quick test_drain;
        ] );
      ("concurrent", [ Alcotest.test_case "two-domain transfer" `Quick test_two_domains ]);
    ]
