(* Stress and robustness tests: deep recursion, many strata, wide
   fan-out, and parser fuzzing. *)

module D = Dcdatalog

let run ?(config = { D.default_config with workers = 2 }) ?params src edb =
  match D.query ?params ~config src ~edb:(List.map (fun (n, r) -> (n, D.tuples r)) edb) with
  | Ok r -> r
  | Error e -> Alcotest.fail e

let test_deep_chain_tc () =
  (* a 2000-vertex chain: 2000 iterations of the fixpoint, large closure *)
  let n = 2000 in
  let arc = List.init (n - 1) (fun i -> [ i; i + 1 ]) in
  (* tc would be n^2/2 = 2M tuples; reachability from vertex 0 keeps it linear *)
  let src = "reach(Y) <- arc(0, Y).\nreach(Y) <- reach(X), arc(X, Y)." in
  let r = run src [ ("arc", arc) ] in
  Alcotest.(check int) "every vertex reached" (n - 1) (D.relation_count r "reach");
  Alcotest.(check bool) "iterations ~ chain depth" true
    (D.Run_stats.total_iterations r.stats >= (n - 1) / 2)

let test_deep_chain_sssp_weighted () =
  let n = 1500 in
  let warc = List.init (n - 1) (fun i -> [ i; i + 1; 2 ]) in
  let r = run ~params:[ ("start", 0) ] D.Queries.sssp.source [ ("warc", warc) ] in
  let dist = D.relation r "results" in
  Alcotest.(check int) "all distances" n (List.length dist);
  Alcotest.(check (option (list int))) "farthest distance exact"
    (Some [ n - 1; 2 * (n - 1) ])
    (List.find_opt (fun row -> List.hd row = n - 1) dist)

let test_many_strata () =
  (* 30 chained strata: p0 -> p1 -> ... -> p29, alternating recursion *)
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "p0(X) <- base(X).\n";
  for i = 1 to 29 do
    Buffer.add_string buf (Printf.sprintf "p%d(X) <- p%d(X).\n" i (i - 1));
    if i mod 3 = 0 then
      Buffer.add_string buf (Printf.sprintf "p%d(Y) <- p%d(X), e(X, Y).\n" i i)
  done;
  let src = Buffer.contents buf in
  let r = run src [ ("base", [ [ 0 ] ]); ("e", [ [ 0; 1 ]; [ 1; 2 ] ]) ] in
  Alcotest.(check int) "30 strata evaluated" 30 (List.length r.stats.strata);
  Alcotest.(check int) "closure propagated through all strata" 3 (D.relation_count r "p29")

let test_wide_star_aggregate () =
  (* one hub with 20k spokes: a single gather merges 20k candidates *)
  let spokes = 20_000 in
  let warc = List.init spokes (fun i -> [ 0; i + 1; 1 + (i mod 7) ]) in
  let r = run ~params:[ ("start", 0) ] D.Queries.sssp.source [ ("warc", warc) ] in
  Alcotest.(check int) "all spokes reached" (spokes + 1) (D.relation_count r "results")

let test_duplicate_heavy_edb () =
  (* the same fact many times must behave as once *)
  let arc = List.concat (List.init 500 (fun _ -> [ [ 1; 2 ]; [ 2; 3 ] ])) in
  let r = run D.Queries.tc.source [ ("arc", arc) ] in
  Alcotest.(check int) "set semantics" 3 (D.relation_count r "tc")

let test_rule_explosion_bounded_by_dedup () =
  (* diamond chains double path counts exponentially; dedup keeps tuples linear *)
  let k = 18 in
  let arc =
    List.concat
      (List.init k (fun i ->
           let a = 3 * i and b1 = (3 * i) + 1 and b2 = (3 * i) + 2 and c = 3 * (i + 1) in
           [ [ a; b1 ]; [ a; b2 ]; [ b1; c ]; [ b2; c ] ]))
  in
  let src = "reach(Y) <- arc(0, Y).\nreach(Y) <- reach(X), arc(X, Y)." in
  let r = run src [ ("arc", arc) ] in
  (* 2^18 paths but only 3k+... distinct vertices *)
  Alcotest.(check int) "linear output despite exponential paths" (3 * k) (D.relation_count r "reach")

(* the parser/analyzer must reject or accept random garbage without ever
   raising anything but its own error types *)
let prop_frontend_total =
  QCheck.Test.make ~name:"front end never crashes on garbage" ~count:500
    QCheck.(string_gen_of_size (QCheck.Gen.int_range 0 80) QCheck.Gen.printable)
    (fun src ->
      match D.prepare src with
      | Ok _ | Error _ -> true
      | exception e -> QCheck.Test.fail_reportf "unexpected exception %s" (Printexc.to_string e))

let prop_frontend_total_tokens =
  (* structured garbage: random sequences of plausible tokens *)
  QCheck.Test.make ~name:"front end never crashes on token soup" ~count:500
    (QCheck.make
       QCheck.Gen.(
         list_size (int_range 0 25)
           (oneofl
              [ "p"; "q"; "X"; "Y"; "("; ")"; ","; "."; "<-"; "min"; "<"; ">"; "="; "!"; "1"; "+" ])))
    (fun toks ->
      let src = String.concat " " toks in
      match D.prepare src with
      | Ok _ | Error _ -> true
      | exception e -> QCheck.Test.fail_reportf "unexpected exception %s" (Printexc.to_string e))

let () =
  Alcotest.run "stress"
    [
      ( "engine",
        [
          Alcotest.test_case "deep chain tc" `Slow test_deep_chain_tc;
          Alcotest.test_case "deep chain sssp" `Slow test_deep_chain_sssp_weighted;
          Alcotest.test_case "many strata" `Quick test_many_strata;
          Alcotest.test_case "wide star aggregate" `Quick test_wide_star_aggregate;
          Alcotest.test_case "duplicate-heavy edb" `Quick test_duplicate_heavy_edb;
          Alcotest.test_case "exponential paths, linear dedup" `Quick
            test_rule_explosion_bounded_by_dedup;
        ] );
      ( "fuzz",
        [
          QCheck_alcotest.to_alcotest prop_frontend_total;
          QCheck_alcotest.to_alcotest prop_frontend_total_tokens;
        ] );
    ]
