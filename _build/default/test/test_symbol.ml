module Symbol = Dcd_util.Symbol

let test_intern_dense () =
  let t = Symbol.create () in
  Alcotest.(check int) "first id" 0 (Symbol.intern t "alpha");
  Alcotest.(check int) "second id" 1 (Symbol.intern t "beta");
  Alcotest.(check int) "repeat returns same" 0 (Symbol.intern t "alpha");
  Alcotest.(check int) "count" 2 (Symbol.count t)

let test_name_roundtrip () =
  let t = Symbol.create () in
  let names = [ "x"; "y"; "a_longer_name"; "" ] in
  let ids = List.map (Symbol.intern t) names in
  List.iter2
    (fun n id -> Alcotest.(check string) "roundtrip" n (Symbol.name t id))
    names ids

let test_unknown_id () =
  let t = Symbol.create () in
  Alcotest.check_raises "bad id" (Invalid_argument "Symbol.name: unknown id 3") (fun () ->
      ignore (Symbol.name t 3))

let test_mem () =
  let t = Symbol.create () in
  ignore (Symbol.intern t "here");
  Alcotest.(check bool) "mem" true (Symbol.mem t "here");
  Alcotest.(check bool) "not mem" false (Symbol.mem t "absent")

let prop_ids_dense =
  QCheck.Test.make ~name:"ids are dense and stable" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 0 50) string)
    (fun names ->
      let t = Symbol.create () in
      List.iter (fun n -> ignore (Symbol.intern t n)) names;
      let distinct = List.sort_uniq compare names in
      Symbol.count t = List.length distinct
      && List.for_all (fun n -> Symbol.name t (Symbol.intern t n) = n) distinct)

let () =
  Alcotest.run "symbol"
    [
      ( "unit",
        [
          Alcotest.test_case "intern dense" `Quick test_intern_dense;
          Alcotest.test_case "name roundtrip" `Quick test_name_roundtrip;
          Alcotest.test_case "unknown id" `Quick test_unknown_id;
          Alcotest.test_case "mem" `Quick test_mem;
        ] );
      ("property", [ QCheck_alcotest.to_alcotest prop_ids_dense ]);
    ]
