module T = Dcd_concurrent.Termination

let test_initially_active () =
  let t = T.create ~workers:3 in
  Alcotest.(check bool) "worker 0 active" true (T.is_active t ~worker:0);
  Alcotest.(check bool) "not quiescent while active" false (T.quiescent t)

let test_quiescent_when_idle_and_drained () =
  let t = T.create ~workers:2 in
  T.set_active t ~worker:0 false;
  T.set_active t ~worker:1 false;
  Alcotest.(check bool) "quiescent with zero traffic" true (T.quiescent t)

let test_in_flight_blocks_quiescence () =
  let t = T.create ~workers:2 in
  T.set_active t ~worker:0 false;
  T.set_active t ~worker:1 false;
  T.sent t 5;
  Alcotest.(check bool) "unconsumed tuples block" false (T.quiescent t);
  T.consumed t ~worker:1 5;
  Alcotest.(check bool) "consumed => quiescent" true (T.quiescent t);
  Alcotest.(check int) "sent total" 5 (T.total_sent t);
  Alcotest.(check int) "consumed total" 5 (T.total_consumed t)

let test_set_active_idempotent () =
  let t = T.create ~workers:2 in
  T.set_active t ~worker:0 false;
  T.set_active t ~worker:0 false;
  (* double-inactive must not corrupt the active count *)
  T.set_active t ~worker:0 true;
  T.set_active t ~worker:1 false;
  Alcotest.(check bool) "one active blocks" false (T.quiescent t);
  T.set_active t ~worker:0 false;
  Alcotest.(check bool) "now quiescent" true (T.quiescent t)

let test_reactivation () =
  let t = T.create ~workers:1 in
  T.set_active t ~worker:0 false;
  Alcotest.(check bool) "quiescent" true (T.quiescent t);
  T.set_active t ~worker:0 true;
  Alcotest.(check bool) "reactivated" false (T.quiescent t)

(* concurrent senders/consumers never produce consumed > sent at rest *)
let test_concurrent_counting () =
  let t = T.create ~workers:4 in
  let n = 10_000 in
  let bodies me =
    for _ = 1 to n do
      T.sent t 1;
      T.consumed t ~worker:me 1
    done;
    T.set_active t ~worker:me false
  in
  ignore (Dcd_concurrent.Domain_pool.run ~workers:4 bodies);
  Alcotest.(check int) "all sent" (4 * n) (T.total_sent t);
  Alcotest.(check int) "all consumed" (4 * n) (T.total_consumed t);
  Alcotest.(check bool) "quiescent at rest" true (T.quiescent t)

let () =
  Alcotest.run "termination"
    [
      ( "unit",
        [
          Alcotest.test_case "initially active" `Quick test_initially_active;
          Alcotest.test_case "quiescent when idle" `Quick test_quiescent_when_idle_and_drained;
          Alcotest.test_case "in-flight blocks" `Quick test_in_flight_blocks_quiescence;
          Alcotest.test_case "set_active idempotent" `Quick test_set_active_idempotent;
          Alcotest.test_case "reactivation" `Quick test_reactivation;
        ] );
      ("concurrent", [ Alcotest.test_case "concurrent counting" `Quick test_concurrent_counting ]);
    ]
