module Tuple = Dcd_storage.Tuple

let test_equal () =
  Alcotest.(check bool) "equal" true (Tuple.equal [| 1; 2 |] [| 1; 2 |]);
  Alcotest.(check bool) "unequal value" false (Tuple.equal [| 1; 2 |] [| 1; 3 |]);
  Alcotest.(check bool) "unequal arity" false (Tuple.equal [| 1 |] [| 1; 2 |]);
  Alcotest.(check bool) "empty tuples equal" true (Tuple.equal [||] [||])

let test_hash_consistent () =
  Alcotest.(check int) "hash deterministic" (Tuple.hash [| 3; 4 |]) (Tuple.hash [| 3; 4 |]);
  Alcotest.(check bool) "hash non-negative" true (Tuple.hash [| -5; max_int |] >= 0)

let test_hash_spread () =
  (* sequential keys should not collide in a tiny table's worth of buckets *)
  let seen = Hashtbl.create 64 in
  for i = 0 to 999 do
    Hashtbl.replace seen (Tuple.hash [| i |] land 4095) ()
  done;
  Alcotest.(check bool) "good spread over 4096 buckets" true (Hashtbl.length seen > 700)

let test_project () =
  Alcotest.(check (array int)) "projection order" [| 30; 10 |]
    (Tuple.project [| 10; 20; 30 |] [| 2; 0 |]);
  Alcotest.(check (array int)) "empty projection" [||] (Tuple.project [| 1 |] [||])

let test_compare_matches_btree () =
  Alcotest.(check bool) "same order as btree keys" true
    (Tuple.compare [| 1; 2 |] [| 1; 3 |] < 0)

let test_to_string () =
  Alcotest.(check string) "render" "(1, 2, 3)" (Tuple.to_string [| 1; 2; 3 |]);
  Alcotest.(check string) "empty" "()" (Tuple.to_string [||])

let prop_equal_implies_hash =
  QCheck.Test.make ~name:"equal tuples hash equally" ~count:300 QCheck.(array small_int)
    (fun a -> Tuple.hash a = Tuple.hash (Array.copy a))

let () =
  Alcotest.run "tuple"
    [
      ( "unit",
        [
          Alcotest.test_case "equal" `Quick test_equal;
          Alcotest.test_case "hash consistent" `Quick test_hash_consistent;
          Alcotest.test_case "hash spread" `Quick test_hash_spread;
          Alcotest.test_case "project" `Quick test_project;
          Alcotest.test_case "compare" `Quick test_compare_matches_btree;
          Alcotest.test_case "to_string" `Quick test_to_string;
        ] );
      ("property", [ QCheck_alcotest.to_alcotest prop_equal_implies_hash ]);
    ]
