module Ts = Dcd_storage.Tuple_set

let test_add_dedup () =
  let s = Ts.create () in
  Alcotest.(check bool) "first add fresh" true (Ts.add s [| 1; 2 |]);
  Alcotest.(check bool) "duplicate rejected" false (Ts.add s [| 1; 2 |]);
  Alcotest.(check bool) "distinct accepted" true (Ts.add s [| 2; 1 |]);
  Alcotest.(check int) "length" 2 (Ts.length s);
  Alcotest.(check bool) "mem" true (Ts.mem s [| 1; 2 |]);
  Alcotest.(check bool) "not mem" false (Ts.mem s [| 9; 9 |])

let test_empty_tuple_is_storable () =
  let s = Ts.create () in
  Alcotest.(check bool) "zero-arity tuple" true (Ts.add s [||]);
  Alcotest.(check bool) "zero-arity dedup" false (Ts.add s [||]);
  Alcotest.(check bool) "zero-arity mem" true (Ts.mem s [||])

let test_growth () =
  let s = Ts.create ~capacity:4 () in
  for i = 0 to 9999 do
    ignore (Ts.add s [| i; i * 3 |])
  done;
  Alcotest.(check int) "all kept through growth" 10000 (Ts.length s);
  Alcotest.(check bool) "load factor sane" true (Ts.load_factor s <= 0.76);
  for i = 0 to 9999 do
    if not (Ts.mem s [| i; i * 3 |]) then Alcotest.fail "lost a tuple during growth"
  done

let test_iter_fold_clear () =
  let s = Ts.create () in
  List.iter (fun t -> ignore (Ts.add s t)) [ [| 1 |]; [| 2 |]; [| 3 |] ];
  Alcotest.(check int) "fold sum" 6 (Ts.fold (fun acc t -> acc + t.(0)) 0 s);
  Alcotest.(check int) "to_vec size" 3 (Dcd_util.Vec.length (Ts.to_vec s));
  Ts.clear s;
  Alcotest.(check int) "cleared" 0 (Ts.length s);
  Alcotest.(check bool) "add after clear" true (Ts.add s [| 1 |])

module Model = Set.Make (struct
  type t = int list

  let compare = compare
end)

let prop_matches_set_model =
  QCheck.Test.make ~name:"matches a Set model" ~count:100
    QCheck.(list (list_of_size (QCheck.Gen.int_range 0 3) (int_range 0 20)))
    (fun tuples ->
      let s = Ts.create () in
      let model = ref Model.empty in
      List.for_all
        (fun t ->
          let fresh_model = not (Model.mem t !model) in
          model := Model.add t !model;
          let fresh = Ts.add s (Array.of_list t) in
          fresh = fresh_model)
        tuples
      && Ts.length s = Model.cardinal !model)

let () =
  Alcotest.run "tuple_set"
    [
      ( "unit",
        [
          Alcotest.test_case "add dedup" `Quick test_add_dedup;
          Alcotest.test_case "empty tuple storable" `Quick test_empty_tuple_is_storable;
          Alcotest.test_case "growth" `Quick test_growth;
          Alcotest.test_case "iter/fold/clear" `Quick test_iter_fold_clear;
        ] );
      ("property", [ QCheck_alcotest.to_alcotest prop_matches_set_model ]);
    ]
