module Vec = Dcd_util.Vec

let test_push_get () =
  let v = Vec.create () in
  Alcotest.(check bool) "fresh is empty" true (Vec.is_empty v);
  for i = 0 to 99 do
    Vec.push v (i * 2)
  done;
  Alcotest.(check int) "length" 100 (Vec.length v);
  Alcotest.(check int) "get 0" 0 (Vec.get v 0);
  Alcotest.(check int) "get 99" 198 (Vec.get v 99);
  Alcotest.check_raises "get out of bounds"
    (Invalid_argument "Vec: index 100 out of bounds (len 100)") (fun () ->
      ignore (Vec.get v 100))

let test_set () =
  let v = Vec.of_list [ 1; 2; 3 ] in
  Vec.set v 1 42;
  Alcotest.(check (list int)) "after set" [ 1; 42; 3 ] (Vec.to_list v)

let test_pop () =
  let v = Vec.of_list [ 1; 2 ] in
  Alcotest.(check (option int)) "pop" (Some 2) (Vec.pop v);
  Alcotest.(check (option int)) "pop" (Some 1) (Vec.pop v);
  Alcotest.(check (option int)) "pop empty" None (Vec.pop v)

let test_clear_reuses () =
  let v = Vec.of_list [ 1; 2; 3 ] in
  Vec.clear v;
  Alcotest.(check int) "cleared" 0 (Vec.length v);
  Vec.push v 9;
  Alcotest.(check (list int)) "reusable" [ 9 ] (Vec.to_list v)

let test_append () =
  let a = Vec.of_list [ 1; 2 ] and b = Vec.of_list [ 3; 4; 5 ] in
  Vec.append a b;
  Alcotest.(check (list int)) "appended" [ 1; 2; 3; 4; 5 ] (Vec.to_list a);
  Alcotest.(check (list int)) "src untouched" [ 3; 4; 5 ] (Vec.to_list b)

let test_filter_in_place () =
  let v = Vec.of_list [ 1; 2; 3; 4; 5; 6 ] in
  Vec.filter_in_place (fun x -> x mod 2 = 0) v;
  Alcotest.(check (list int)) "evens, order kept" [ 2; 4; 6 ] (Vec.to_list v)

let test_swap_remove () =
  let v = Vec.of_list [ 1; 2; 3; 4 ] in
  let x = Vec.swap_remove v 1 in
  Alcotest.(check int) "removed" 2 x;
  Alcotest.(check (list int)) "last moved in" [ 1; 4; 3 ] (Vec.to_list v)

let test_truncate () =
  let v = Vec.of_list [ 1; 2; 3; 4 ] in
  Vec.truncate v 2;
  Alcotest.(check (list int)) "truncated" [ 1; 2 ] (Vec.to_list v);
  Alcotest.check_raises "bad truncate" (Invalid_argument "Vec.truncate") (fun () ->
      Vec.truncate v 3)

let test_sort_fold_map () =
  let v = Vec.of_list [ 3; 1; 2 ] in
  Vec.sort compare v;
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3 ] (Vec.to_list v);
  Alcotest.(check int) "fold" 6 (Vec.fold ( + ) 0 v);
  Alcotest.(check (list int)) "map" [ 2; 4; 6 ] (Vec.to_list (Vec.map (fun x -> x * 2) v));
  Alcotest.(check bool) "exists" true (Vec.exists (fun x -> x = 2) v);
  Alcotest.(check bool) "exists not" false (Vec.exists (fun x -> x = 9) v)

(* model-based property: a random sequence of operations matches a list *)
let prop_model =
  QCheck.Test.make ~name:"vec behaves like a list" ~count:200
    QCheck.(list (pair bool small_int))
    (fun ops ->
      let v = Vec.create () in
      let model = ref [] in
      List.iter
        (fun (is_push, x) ->
          if is_push then begin
            Vec.push v x;
            model := !model @ [ x ]
          end
          else begin
            match (Vec.pop v, List.rev !model) with
            | None, [] -> ()
            | Some got, last :: rest ->
              assert (got = last);
              model := List.rev rest
            | Some _, [] | None, _ :: _ -> assert false
          end)
        ops;
      Vec.to_list v = !model)

let prop_of_array_roundtrip =
  QCheck.Test.make ~name:"of_array/to_array roundtrip" ~count:200
    QCheck.(array small_int)
    (fun a -> Vec.to_array (Vec.of_array a) = a)

let () =
  Alcotest.run "vec"
    [
      ( "unit",
        [
          Alcotest.test_case "push/get" `Quick test_push_get;
          Alcotest.test_case "set" `Quick test_set;
          Alcotest.test_case "pop" `Quick test_pop;
          Alcotest.test_case "clear reuses storage" `Quick test_clear_reuses;
          Alcotest.test_case "append" `Quick test_append;
          Alcotest.test_case "filter_in_place" `Quick test_filter_in_place;
          Alcotest.test_case "swap_remove" `Quick test_swap_remove;
          Alcotest.test_case "truncate" `Quick test_truncate;
          Alcotest.test_case "sort/fold/map/exists" `Quick test_sort_fold_map;
        ] );
      ( "property",
        [ QCheck_alcotest.to_alcotest prop_model; QCheck_alcotest.to_alcotest prop_of_array_roundtrip ]
      );
    ]
