(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (SS7) at container scale.

     dune exec bench/main.exe                 -- run everything
     dune exec bench/main.exe -- tab2 fig8    -- run selected experiments
     dune exec bench/main.exe -- --scale 0.2 tab2   -- shrink datasets

   Absolute numbers are not comparable to the paper's 32-core testbed
   (see DESIGN.md SS3); each experiment prints the paper's qualitative
   expectation next to the measured numbers, and EXPERIMENTS.md records
   the comparison. *)

module D = Dcdatalog
module Sim = Dcd_sim.Simulator
module Report = Dcd_util.Report
module Clock = Dcd_util.Clock

let bench_workers = ref 4
let sim_workers = 32

(* ------------------------------------------------------------------ *)
(* measurement plumbing                                                 *)

(* repetition count for best-of measurements; BENCH_REPS overrides the
   per-experiment default (lower for quick local runs, higher for more
   stable CI numbers) *)
let bench_reps ~default =
  match Sys.getenv_opt "BENCH_REPS" with
  | Some s -> ( try max 1 (int_of_string s) with Failure _ -> default)
  | None -> default

(* (best, mean, stddev) of a sample; the minimum is the least noisy
   throughput estimator on a shared vCPU, the spread qualifies it *)
let sample_stats = function
  | [] -> (0., 0., 0.)
  | xs ->
    let n = float_of_int (List.length xs) in
    let best = List.fold_left min infinity xs in
    let mean = List.fold_left ( +. ) 0. xs /. n in
    let var = List.fold_left (fun a x -> a +. ((x -. mean) ** 2.)) 0. xs /. n in
    (best, mean, sqrt var)

(* Machine-readable result blocks, accumulated across whichever
   experiments ran and written once at exit as a timestamped history
   file under bench/results/ plus a latest.json copy — so successive
   runs build a perf trajectory instead of overwriting one file. *)
let json_blocks : (string * string) list ref = ref []
let add_json_block name block = json_blocks := (name, block) :: !json_blocks

let rec mkdir_p d =
  if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
    mkdir_p (Filename.dirname d);
    try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* Minimal JSON reader for the self-generated result files — just enough
   to flatten numeric leaves into ["perf.workloads.tc.wall_mean_s"]-style
   paths so two runs can be diffed.  Array elements carrying a "name"
   member are keyed by it rather than by position, keeping paths stable
   when an experiment adds or reorders entries. *)
module Json = struct
  type t =
    | Obj of (string * t) list
    | Arr of t list
    | Num of float
    | Str of string
    | Lit (* true/false/null — never compared *)

  exception Bad of string

  let parse (s : string) : t =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos >= n then raise (Bad "unexpected end of input") else s.[!pos] in
    let rec skip_ws () =
      if !pos < n then
        match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> incr pos; skip_ws () | _ -> ()
    in
    let expect c =
      skip_ws ();
      if peek () <> c then raise (Bad (Printf.sprintf "expected '%c' at offset %d" c !pos));
      incr pos
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        let c = peek () in
        incr pos;
        if c = '"' then Buffer.contents b
        else if c = '\\' then begin
          let e = peek () in
          incr pos;
          (match e with
          | 'n' -> Buffer.add_char b '\n'
          | 't' -> Buffer.add_char b '\t'
          | 'r' -> Buffer.add_char b '\r'
          | 'u' ->
            pos := !pos + 4;
            Buffer.add_char b '?'
          | e -> Buffer.add_char b e);
          go ()
        end
        else begin
          Buffer.add_char b c;
          go ()
        end
      in
      go ()
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | '{' ->
        incr pos;
        skip_ws ();
        if peek () = '}' then (incr pos; Obj [])
        else begin
          let rec members acc =
            let k = parse_string () in
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' -> incr pos; skip_ws (); members ((k, v) :: acc)
            | '}' -> incr pos; Obj (List.rev ((k, v) :: acc))
            | _ -> raise (Bad "malformed object")
          in
          members []
        end
      | '[' ->
        incr pos;
        skip_ws ();
        if peek () = ']' then (incr pos; Arr [])
        else begin
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' -> incr pos; elems (v :: acc)
            | ']' -> incr pos; Arr (List.rev (v :: acc))
            | _ -> raise (Bad "malformed array")
          in
          elems []
        end
      | '"' -> Str (parse_string ())
      | 't' -> pos := !pos + 4; Lit
      | 'f' -> pos := !pos + 5; Lit
      | 'n' -> pos := !pos + 4; Lit
      | _ ->
        let start = !pos in
        let is_num c =
          (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
        in
        while !pos < n && is_num s.[!pos] do
          incr pos
        done;
        (try Num (float_of_string (String.sub s start (!pos - start)))
         with Failure _ -> raise (Bad (Printf.sprintf "bad number at offset %d" start)))
    in
    parse_value ()

  let leaves t =
    let out = ref [] in
    let rec go path = function
      | Num f -> out := (path, f) :: !out
      | Str _ | Lit -> ()
      | Obj kvs ->
        List.iter (fun (k, v) -> go (if path = "" then k else path ^ "." ^ k) v) kvs
      | Arr vs ->
        List.iteri
          (fun i v ->
            let key =
              match v with
              | Obj kvs -> (
                match List.assoc_opt "name" kvs with
                | Some (Str s) -> s
                | _ -> string_of_int i)
              | _ -> string_of_int i
            in
            go (path ^ "." ^ key) v)
          vs
    in
    go "" t;
    List.rev !out
end

(* Snapshot of the previous latest.json, taken at startup so this run's
   own [write_results] cannot clobber the baseline first. *)
let previous_latest =
  let path = "bench/results/latest.json" in
  if Sys.file_exists path then begin
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    Some s
  end
  else None

(* Regression threshold (percent slowdown) past which the compare step
   exits non-zero; BENCH_REGRESSION_PCT overrides. *)
let regression_threshold_pct =
  match Sys.getenv_opt "BENCH_REGRESSION_PCT" with
  | Some s -> ( try float_of_string s with Failure _ -> 25.)
  | None -> 25.

(* Per-experiment deltas vs the previous latest.json.  Every shared
   timing leaf ([*_s]) is compared; stable best-of means — the perf
   workloads' wall_mean_s and the merge microbench's *_mean_s — are the
   gated subset: a slowdown beyond max(threshold, 2σ noise allowance)
   fails the run.  Single-shot metrics (skew/gj best-of-3, sweep grid
   cells) are reported but never gate: on a shared vCPU their spread
   owns the margin.  The gate itself arms only on multi-core runners,
   same convention as the skew/gj bars. *)
let compare_with_previous current =
  match previous_latest with
  | None ->
    Printf.printf "no previous bench/results/latest.json — this run is the new baseline\n"
  | Some old_text -> (
    match (Json.parse old_text, Json.parse current) with
    | exception Json.Bad msg ->
      Printf.printf "regression compare skipped (unreadable results JSON: %s)\n" msg
    | old_j, new_j ->
      let old_leaves = Json.leaves old_j in
      let new_leaves = Json.leaves new_j in
      let gated path =
        String.ends_with ~suffix:"_mean_s" path
        && (String.starts_with ~prefix:"perf." path
           || String.starts_with ~prefix:"merge." path)
      in
      let stddev_for leaves path =
        (* wall_mean_s -> wall_stddev_s sibling, when recorded *)
        if String.ends_with ~suffix:"_mean_s" path then
          let stem = String.sub path 0 (String.length path - String.length "_mean_s") in
          List.assoc_opt (stem ^ "_stddev_s") leaves
        else None
      in
      let compared = ref 0 in
      let failures = ref [] in
      let t =
        Report.create ~title:"Regression compare vs previous latest.json"
          ~header:[ "metric"; "prev (s)"; "now (s)"; "delta"; "±σ"; "gate" ]
      in
      List.iter
        (fun (path, now) ->
          match List.assoc_opt path old_leaves with
          | None -> ()
          | Some prev when String.ends_with ~suffix:"_s" path && prev > 1e-9 ->
            incr compared;
            let delta_pct = (now -. prev) /. prev *. 100. in
            let sigma =
              match (stddev_for old_leaves path, stddev_for new_leaves path) with
              | Some a, Some b -> Some (a +. b)
              | _ -> None
            in
            let allow =
              max regression_threshold_pct
                (match sigma with Some s -> 2. *. s /. prev *. 100. | None -> 0.)
            in
            let is_gated = gated path in
            let failed = is_gated && delta_pct > allow in
            if failed then failures := (path, delta_pct) :: !failures;
            (* keep the table readable: gated metrics always shown, the
               rest only when they moved past the threshold *)
            if is_gated || Float.abs delta_pct >= regression_threshold_pct then
              Report.add_row t
                [ path; Printf.sprintf "%.4f" prev; Printf.sprintf "%.4f" now;
                  Printf.sprintf "%+.1f%%" delta_pct;
                  (match sigma with Some s -> Printf.sprintf "%.4f" s | None -> "-");
                  (if not is_gated then "info"
                   else if failed then "FAIL"
                   else "ok") ]
          | Some _ -> ())
        new_leaves;
      Report.print t;
      Printf.printf "%d shared timing metrics compared (threshold %.0f%%)\n" !compared
        regression_threshold_pct;
      if !failures <> [] then begin
        let cores = Domain.recommended_domain_count () in
        List.iter
          (fun (path, pct) ->
            Printf.eprintf "bench-regression: %s slowed down %.1f%% vs previous run\n" path pct)
          (List.rev !failures);
        if cores >= 2 then exit 1
        else
          Printf.printf
            "(1 hardware thread: the regression gate is informational only on this machine)\n"
      end)

let write_results () =
  if !json_blocks <> [] then begin
    let dir = "bench/results" in
    mkdir_p dir;
    let tm = Unix.localtime (Unix.time ()) in
    let stamp =
      Printf.sprintf "%04d%02d%02d-%02d%02d%02d" (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1)
        tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec
    in
    let file = Filename.concat dir (stamp ^ ".json") in
    let buf = Buffer.create 4096 in
    Buffer.add_string buf "{\n";
    Buffer.add_string buf (Printf.sprintf "  \"timestamp\": %S,\n" stamp);
    Buffer.add_string buf (Printf.sprintf "  \"file\": %S,\n" file);
    Buffer.add_string buf
      (Printf.sprintf "  \"cores\": %d,\n  \"bench_workers\": %d"
         (Domain.recommended_domain_count ()) !bench_workers);
    List.iter
      (fun (name, block) -> Buffer.add_string buf (Printf.sprintf ",\n  %S: %s" name block))
      (List.rev !json_blocks);
    Buffer.add_string buf "\n}\n";
    let write path =
      let oc = open_out path in
      output_string oc (Buffer.contents buf);
      close_out oc
    in
    write file;
    write (Filename.concat dir "latest.json");
    Printf.printf "\nresults recorded in %s (and %s/latest.json)\n" file dir;
    compare_with_previous (Buffer.contents buf)
  end

(* ------------------------------------------------------------------ *)
(* engine helpers                                                      *)

let config ?(max_iterations = 0) ?(opts = D.Rec_store.default_opts) ?(workers = !bench_workers)
    strategy =
  { D.default_config with workers; strategy; max_iterations; store_opts = opts }

let time_run prepared edb cfg =
  let result, elapsed = Clock.time (fun () -> D.run prepared ~edb ~config:cfg ()) in
  (result, elapsed)

let prepare_spec ?(extra_params = []) (spec : D.Queries.spec) =
  match D.prepare ~params:(extra_params @ spec.default_params) spec.source with
  | Ok p -> p
  | Error e -> failwith (spec.name ^ ": " ^ e)

(* evaluates [spec] over [edb] under [cfg]; returns seconds and the
   output cardinality (to confirm all configurations agree) *)
let run_query ?extra_params (spec : D.Queries.spec) edb cfg =
  let prepared = prepare_spec ?extra_params spec in
  let cfg = { cfg with D.max_iterations = spec.max_iterations } in
  let result, elapsed = time_run prepared edb cfg in
  (elapsed, D.relation_count result spec.output)

let strategies =
  [ ("Seq", `Seq); ("Global", `Global); ("SSP(5)", `Ssp); ("DWS", `Dws) ]

let cfg_of = function
  | `Seq -> config ~workers:1 D.Coord.dws
  | `Global -> config D.Coord.Global
  | `Ssp -> config (D.Coord.Ssp 5)
  | `Dws -> config D.Coord.dws

(* ------------------------------------------------------------------ *)
(* dataset assembly                                                    *)

let graph_of name =
  match D.Datasets.find name with
  | Some e -> Lazy.force e.graph
  | None -> failwith ("unknown dataset " ^ name)

let cc_edb name = D.Queries.arc_sym_edb (graph_of name)
let warc_edb name = D.Queries.warc_edb (graph_of name)

let pagerank_input name =
  let g = graph_of name in
  (D.Queries.matrix_edb g, [ ("vnum", D.Graph.max_vertex g + 1) ])

(* ------------------------------------------------------------------ *)
(* Figure 1: SSSP on LiveJournal, engines compared                     *)

let fig1 () =
  let t = Report.create ~title:"Figure 1 — SSSP query performance on LiveJournal(-sim)"
      ~header:[ "engine"; "time (s)"; "vs DWS"; "tuples" ]
  in
  let edb = warc_edb "livejournal-sim" in
  let results =
    List.map (fun (name, s) -> (name, run_query D.Queries.sssp edb (cfg_of s))) strategies
  in
  let dws_time = fst (List.assoc "DWS" results) in
  List.iter
    (fun (name, (secs, n)) ->
      Report.add_row t
        [ name; Report.cell_time secs; Report.cell_speedup (secs /. dws_time); string_of_int n ])
    results;
  Report.print t;
  (* the physically-parallel regime, simulated at 32 workers *)
  let g = graph_of "livejournal-sim" in
  let spec = Sim.sssp ~graph:g ~source:1 ~workers:sim_workers in
  let t2 = Report.create ~title:"Figure 1 (simulator, 32 idealized cores) — virtual time units"
      ~header:[ "strategy"; "makespan"; "vs DWS" ]
  in
  let sims =
    List.map
      (fun (name, strat) -> (name, (Sim.run spec ~strategy:strat ~params:Sim.default_params).makespan))
      [ ("Global", D.Coord.Global); ("SSP(5)", D.Coord.Ssp 5); ("DWS", D.Coord.dws) ]
  in
  let dws = List.assoc "DWS" sims in
  List.iter
    (fun (name, m) ->
      Report.add_row t2 [ name; Report.cell_float ~decimals:0 m; Report.cell_speedup (m /. dws) ])
    sims;
  Report.print t2;
  print_endline
    "paper shape: DCDatalog(DWS) well below all baselines; Global (DeALS-MC-style) worst."

(* ------------------------------------------------------------------ *)
(* Table 2: end-to-end query time                                      *)

let tab2 () =
  let t = Report.create
      ~title:"Table 2 — end-to-end query time (seconds); systems = this engine's modes"
      ~header:[ "query"; "dataset"; "Seq"; "Global"; "SSP(5)"; "DWS"; "tuples" ]
  in
  let row query dataset edb ?extra_params (spec : D.Queries.spec) =
    let cells, tuples =
      List.fold_left
        (fun (acc, _) (_, s) ->
          let secs, n = run_query ?extra_params spec edb (cfg_of s) in
          (acc @ [ Report.cell_time secs ], n))
        ([], 0) strategies
    in
    Report.add_row t ((query :: dataset :: cells) @ [ string_of_int tuples ])
  in
  (* SG on the synthetic family *)
  row "SG" "tree-11" (D.Queries.arc_edb (graph_of "tree-11")) D.Queries.sg;
  row "SG" "g-10k" (D.Queries.arc_edb (graph_of "g-10k")) D.Queries.sg;
  row "SG" "rmat-250" (D.Queries.arc_edb (D.Datasets.rmat 250)) D.Queries.sg;
  (* Delivery on the N-trees *)
  List.iter
    (fun n ->
      let tree, basics = D.Datasets.bom n in
      row "Delivery" (Printf.sprintf "N-%dk" (n / 1000)) (D.Queries.delivery_edb tree basics)
        D.Queries.delivery)
    [ 40_000; 80_000 ];
  (* graph queries on the real-world stand-ins *)
  List.iter
    (fun ds ->
      row "CC" ds (cc_edb ds) D.Queries.cc;
      row "SSSP" ds (warc_edb ds) D.Queries.sssp)
    [ "livejournal-sim"; "orkut-sim" ];
  List.iter
    (fun ds ->
      let edb, params = pagerank_input ds in
      row "PageRank" ds edb ~extra_params:params D.Queries.pagerank)
    [ "livejournal-sim"; "orkut-sim" ];
  Report.print t;
  print_endline
    "paper shape: DWS fastest across the board, 1-2 orders over single-threaded systems.";
  print_endline
    "NOTE: this container has 1 physical core, so Seq necessarily wins here (no parallel\n\
     speedup is possible and coordination is pure overhead); the parallel-regime shape is\n\
     reproduced by the 32-core simulator tables (fig1/fig8).";
  print_endline
    "paper note: Souffle cannot express aggregates-in-recursion (OOM on CC/SSSP/PageRank);\n\
     the stratified rewrite it would need is measured in the tab4 ablation footnote."

(* ------------------------------------------------------------------ *)
(* Table 3: APSP (non-linear recursion)                                *)

let tab3 () =
  let t = Report.create ~title:"Table 3 — APSP (non-linear recursion), RMAT-n family"
      ~header:[ "dataset"; "Seq"; "Global"; "DWS"; "pairs" ]
  in
  List.iter
    (fun n ->
      let g = D.Datasets.rmat n in
      let edb = D.Queries.warc_edb g in
      let cells, pairs =
        List.fold_left
          (fun (acc, _) s ->
            let secs, p = run_query D.Queries.apsp edb (cfg_of s) in
            (acc @ [ Report.cell_time secs ], p))
          ([], 0)
          [ `Seq; `Global; `Dws ]
      in
      Report.add_row t ((Printf.sprintf "RMAT-%d" n :: cells) @ [ string_of_int pairs ]))
    [ 64; 128 ];
  Report.print t;
  print_endline
    "paper shape: DCDatalog routes each path tuple to exactly 2 partitions; systems that\n\
     broadcast (SociaLite/DDlog) blow up and OOM beyond RMAT-512."

(* ------------------------------------------------------------------ *)
(* Table 4: effect of the SS6.2 optimizations                           *)

let tab4 () =
  let t = Report.create
      ~title:"Table 4 — ablation of SS6.2 (aggregate index + existence cache), DWS"
      ~header:[ "query"; "dataset"; "w/o (s)"; "w/ (s)"; "gain" ]
  in
  List.iter
    (fun (qname, spec, edb_of) ->
      List.iter
        (fun ds ->
          let edb = edb_of ds in
          let unopt, n1 =
            run_query spec edb (config ~opts:D.Rec_store.unoptimized_opts D.Coord.dws)
          in
          let opt, n2 = run_query spec edb (config D.Coord.dws) in
          assert (n1 = n2);
          Report.add_row t
            [ qname; ds; Report.cell_time unopt; Report.cell_time opt;
              Report.cell_speedup (unopt /. opt) ])
        [ "livejournal-sim"; "orkut-sim" ])
    [ ("CC", D.Queries.cc, cc_edb); ("SSSP", D.Queries.sssp, warc_edb) ];
  Report.print t;
  print_endline "paper shape: 1.86x-2.91x gain from the two optimizations."

(* ------------------------------------------------------------------ *)
(* Figure 3: the worked coordination example                           *)

let fig3 () =
  (* A hand-crafted skewed instance in the spirit of Figure 3(a): worker 0
     owns a light path containing the global minimum label, workers 1-2
     own heavy clusters.  Global must wait for the heavy workers every
     round; DWS lets the light worker flood the min label ahead. *)
  let g = D.Graph.create ~n:36 in
  let edge a b = D.Graph.add_edge g a b in
  (* light path on worker 0's vertices 0..11 (owner = v mod 3 = 0) *)
  List.iter (fun (a, b) -> edge a b) [ (0, 3); (3, 6); (6, 9) ];
  (* heavy near-cliques on workers 1 and 2 *)
  let clique vs = List.iter (fun a -> List.iter (fun b -> if a <> b then edge a b) vs) vs in
  clique [ 1; 4; 7; 10; 13; 16; 19; 22 ];
  clique [ 2; 5; 8; 11; 14; 17; 20; 23 ];
  (* chains connecting the light path into both clusters *)
  List.iter (fun (a, b) -> edge a b) [ (9, 1); (9, 2); (22, 25); (23, 26) ];
  let spec = Sim.cc ~graph:g ~workers:3 in
  let spec = Sim.custom_owner spec ~owner:(fun v -> v mod 3) in
  let t = Report.create
      ~title:"Figure 3 — worked example (3 workers, skewed), virtual time units"
      ~header:[ "strategy"; "time units"; "vs Global"; "max local iters" ]
  in
  let results =
    List.map
      (fun (name, strat) ->
        let o = Sim.run spec ~strategy:strat ~params:Sim.default_params in
        (name, o))
      [ ("Global", D.Coord.Global); ("SSP(1)", D.Coord.Ssp 1); ("DWS", D.Coord.dws) ]
  in
  let global = (snd (List.hd results)).makespan in
  List.iter
    (fun (name, (o : Sim.outcome)) ->
      Report.add_row t
        [ name; Report.cell_float ~decimals:1 o.makespan;
          Report.cell_float ~decimals:2 (o.makespan /. global);
          string_of_int (Array.fold_left max 0 o.iterations) ])
    results;
  Report.print t;
  print_endline "paper: Global 128, SSP 88 (0.69x), DWS 67 (0.52x) time units on its example."

(* ------------------------------------------------------------------ *)
(* Figure 8: coordination strategy comparison                          *)

let fig8 () =
  let t = Report.create
      ~title:"Figure 8 — coordination strategies, real engine (seconds; idle = time \
              workers spent waiting, the quantity DWS attacks)"
      ~header:[ "query"; "dataset"; "Global"; "idle"; "SSP(5)"; "idle"; "DWS"; "idle" ]
  in
  List.iter
    (fun (qname, spec, edb_of) ->
      List.iter
        (fun ds ->
          let edb = edb_of ds in
          let cells =
            List.concat_map
              (fun s ->
                let prepared = prepare_spec spec in
                let result, secs = time_run prepared edb (cfg_of s) in
                ignore (D.relation_count result spec.output);
                [ Report.cell_time secs;
                  Report.cell_time (D.Run_stats.total_wait result.stats) ])
              [ `Global; `Ssp; `Dws ]
          in
          Report.add_row t (qname :: ds :: cells))
        [ "livejournal-sim"; "orkut-sim" ])
    [ ("CC", D.Queries.cc, cc_edb); ("SSSP", D.Queries.sssp, warc_edb) ];
  Report.print t;
  let t2 = Report.create
      ~title:"Figure 8 (simulator, 32 idealized cores) — virtual time units"
      ~header:[ "query"; "Global"; "SSP(5)"; "DWS"; "Global/DWS" ]
  in
  let g = graph_of "livejournal-sim" in
  List.iter
    (fun (qname, spec) ->
      let m strat = (Sim.run spec ~strategy:strat ~params:Sim.default_params).makespan in
      let global = m D.Coord.Global and ssp = m (D.Coord.Ssp 5) and dws = m D.Coord.dws in
      Report.add_row t2
        [ qname; Report.cell_float ~decimals:0 global; Report.cell_float ~decimals:0 ssp;
          Report.cell_float ~decimals:0 dws; Report.cell_speedup (global /. dws) ])
    [ ("CC", Sim.cc ~graph:g ~workers:sim_workers);
      ("SSSP", Sim.sssp ~graph:g ~source:1 ~workers:sim_workers) ];
  Report.print t2;
  print_endline "paper shape: DWS < SSP < Global everywhere (3-11x Global/DWS on SSSP)."

(* ------------------------------------------------------------------ *)
(* Figure 9a: speedup vs workers                                       *)

let fig9a () =
  let g = graph_of "livejournal-sim" in
  let t = Report.create
      ~title:"Figure 9(a) — simulated DWS speedup vs workers (LiveJournal-sim)"
      ~header:[ "workers"; "CC"; "SSSP"; "BFS" ]
  in
  let workers = [ 1; 2; 4; 8; 16; 32; 64 ] in
  let curve make =
    Sim.speedup_curve make ~strategy:D.Coord.dws ~params:Sim.default_params ~workers
  in
  let cc = curve (fun ~workers -> Sim.cc ~graph:g ~workers) in
  let sssp = curve (fun ~workers -> Sim.sssp ~graph:g ~source:1 ~workers) in
  let bfs = curve (fun ~workers -> Sim.bfs ~graph:g ~source:1 ~workers) in
  List.iter
    (fun w ->
      Report.add_row t
        [ string_of_int w;
          Report.cell_speedup (List.assoc w cc);
          Report.cell_speedup (List.assoc w sssp);
          Report.cell_speedup (List.assoc w bfs) ])
    workers;
  Report.print t;
  (* real-engine sanity points: the container has 1 core, so real domains
     cannot speed up; we verify correctness and overhead only *)
  let t2 = Report.create
      ~title:"Figure 9(a) — real engine on this 1-core container (no speedup possible)"
      ~header:[ "workers"; "CC time (s)" ]
  in
  let edb = cc_edb "livejournal-sim" in
  List.iter
    (fun w ->
      let secs, _ = run_query D.Queries.cc edb (config ~workers:w D.Coord.dws) in
      Report.add_row t2 [ string_of_int w; Report.cell_time secs ])
    [ 1; 2; 4 ];
  Report.print t2;
  print_endline
    "paper shape: near-linear speedup to 32 threads, flattening beyond the physical cores;\n\
     SSSP scales worse than CC (thin frontier)."

(* ------------------------------------------------------------------ *)
(* Figure 9b: scaling the data                                         *)

let fig9b () =
  let t = Report.create
      ~title:"Figure 9(b) — DWS time vs data size (RMAT-n, n vertices / 10n edges)"
      ~header:[ "query"; "n=10k"; "n=20k"; "n=40k"; "n=80k"; "growth 10k->80k" ]
  in
  let sizes = [ 10_000; 20_000; 40_000; 80_000 ] in
  let row qname spec edb_of =
    let times =
      List.map
        (fun n ->
          let secs, _ = run_query spec (edb_of n) (cfg_of `Dws) in
          secs)
        sizes
    in
    let first = List.hd times and last = List.nth times (List.length times - 1) in
    Report.add_row t
      (qname
       :: List.map Report.cell_time times
      @ [ Report.cell_speedup (last /. first) ])
  in
  row "CC" D.Queries.cc (fun n ->
      let g = D.Datasets.rmat n in
      D.Queries.arc_sym_edb g);
  row "SSSP" D.Queries.sssp (fun n -> D.Queries.warc_edb (D.Datasets.rmat n));
  row "Delivery" D.Queries.delivery (fun n ->
      let tree, basics = D.Datasets.bom (n * 3) in
      D.Queries.delivery_edb tree basics);
  Report.print t;
  print_endline
    "paper shape: time grows proportionally with data (8x data -> ~8-13x time)."

(* ------------------------------------------------------------------ *)
(* join-path allocation: minor-heap words per derived tuple through    *)
(* the evaluation pipeline, flat cursors vs the boxed representation   *)
(* the engine used before the arena refactor.  Same compiled rule,     *)
(* same index, same matches — only the tuple representation differs.   *)

let join_alloc () =
  let module Relation = Dcd_storage.Relation in
  let module Arena = Dcd_storage.Arena in
  let module Frame = Dcd_concurrent.Frame in
  let module Eval = Dcd_engine.Eval in
  let module Ph = Dcd_planner.Physical in
  let module Vec = Dcd_util.Vec in
  let cr =
    let src = "p(X, Z) <- d(X, Y), arc(Y, Z)." in
    let info =
      match Dcd_datalog.Analysis.analyze (Dcd_datalog.Parser.parse_program src) with
      | Ok i -> i
      | Error e -> failwith e
    in
    let plan = match Ph.compile info with Ok p -> p | Error e -> failwith e in
    let sp = List.hd plan.Ph.strata in
    List.hd (sp.Ph.init_rules @ sp.Ph.delta_rules)
  in
  let m = 100_000 and n = 200_000 in
  let arc = Relation.create ~name:"arc" ~arity:2 ~size_hint:m () in
  for y = 0 to m - 1 do
    ignore (Relation.add arc [| y; y + 1 |])
  done;
  let ctx =
    {
      Eval.base_iter = (fun _ f -> Relation.iter_slices arc f);
      base_index = (fun _ cols -> Relation.ensure_index arc ~key_cols:cols);
      base_sorted = (fun _ cols -> Relation.ensure_sorted_index arc ~cols);
      rec_resolve = (fun ~pred:_ ~route:_ -> failwith "no recursion");
      rec_matches = (fun _ ~key:_ _ -> failwith "no recursion");
    }
  in
  (* force the index build outside the measured window *)
  ignore (Relation.ensure_index arc ~key_cols:[| 0 |]);
  let measure scan sink =
    let emits = ref 0 in
    let w0 = Gc.minor_words () in
    ignore
      (Eval.run cr ctx ~scan ~emit:(fun ~tuple ~contributor:_ ->
           incr emits;
           sink tuple));
    ((Gc.minor_words () -. w0) /. float_of_int !emits, !emits)
  in
  (* flat: delta tuples live in an arena, derived tuples are packed
     into a pre-sized frame — the parallel engine's hot path *)
  let arena = Arena.create ~capacity:n ~arity:2 () in
  for i = 0 to n - 1 do
    ignore (Arena.push arena [| i; i mod m |])
  done;
  let frame = Frame.create ~capacity:n ~arity:2 ~contrib:false () in
  let flat_w, flat_n = measure (`Flat arena) (fun tup -> Frame.push frame tup [||]) in
  (* boxed reference: delta tuples are individual arrays, every derived
     tuple is copied into a fresh array (the pre-refactor sink) *)
  let batch = Vec.create ~capacity:n () in
  for i = 0 to n - 1 do
    Vec.push batch [| i; i mod m |]
  done;
  let out = Vec.create ~capacity:n () in
  let boxed_w, boxed_n = measure (`Tuples batch) (fun tup -> Vec.push out (Array.copy tup)) in
  assert (flat_n = boxed_n);
  let t =
    Report.create
      ~title:(Printf.sprintf "Join-path allocation (%d derived tuples)" flat_n)
      ~header:[ "representation"; "minor words/derived tuple" ]
  in
  Report.add_row t [ "flat arena -> packed frame"; Printf.sprintf "%.2f" flat_w ];
  Report.add_row t
    [ "boxed tuple -> boxed batch"; Printf.sprintf "%.2f (%.1fx)" boxed_w (boxed_w /. max flat_w 0.01) ];
  Report.print t;
  print_endline
    "paper shape: the packed representation should allocate several times less\n\
     per derived tuple than per-tuple heap objects (SS6.1's framing argument)."

(* ------------------------------------------------------------------ *)
(* micro: bechamel microbenchmarks for the design-choice ablations     *)

let micro () =
  let open Bechamel in
  let module Bptree = Dcd_btree.Bptree in
  let module Spsc = Dcd_concurrent.Spsc_queue in
  let module Locked = Dcd_concurrent.Locked_queue in
  let keys = Array.init 10_000 (fun i -> [| (i * 7919) mod 10_000; i |]) in
  let prefilled = lazy (
    let t = Bptree.create () in
    Array.iter (fun k -> Bptree.insert t k 1) keys;
    t)
  in
  let tests =
    [
      Test.make ~name:"btree-insert-10k" (Staged.stage (fun () ->
          let t = Bptree.create () in
          Array.iter (fun k -> Bptree.insert t k 1) keys));
      Test.make ~name:"btree-probe-10k" (Staged.stage (fun () ->
          let t = Lazy.force prefilled in
          Array.iter (fun k -> ignore (Bptree.find_opt t k)) keys));
      Test.make ~name:"spsc-queue-xfer-10k" (Staged.stage (fun () ->
          let q = Spsc.create ~capacity:16384 in
          for i = 1 to 10_000 do
            ignore (Spsc.try_push q i)
          done;
          ignore (Spsc.drain q (fun _ -> ()))));
      Test.make ~name:"locked-queue-xfer-10k" (Staged.stage (fun () ->
          let q = Locked.create () in
          for i = 1 to 10_000 do
            Locked.push q i
          done;
          ignore (Locked.drain q (fun _ -> ()))));
    ]
  in
  let benchmark test =
    let instance = Toolkit.Instance.monotonic_clock in
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 200) () in
    let raw = Benchmark.all cfg [ instance ] test in
    let results = Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]) instance raw in
    results
  in
  let t = Report.create ~title:"Microbenchmarks (design-choice ablations)"
      ~header:[ "benchmark"; "time/op" ]
  in
  List.iter
    (fun test ->
      let results = benchmark test in
      Hashtbl.iter
        (fun name ols ->
          let estimate =
            match Bechamel.Analyze.OLS.estimates ols with
            | Some [ e ] -> Printf.sprintf "%.0f ns" e
            | _ -> "n/a"
          in
          Report.add_row t [ name; estimate ])
        results)
    tests;
  Report.print t;
  print_endline
    "ablation notes: the SPSC queue vs the lock-based queue is the SS6.1 claim;\n\
     the B-tree probe cost motivates the SS6.2.2 existence cache.";
  join_alloc ()

(* ------------------------------------------------------------------ *)
(* perf: machine-readable perf trajectory (bench/results/*.json)       *)

(* stratum-dispatch cost, shared between the perf JSON and the `pool`
   experiment: the same trivial fork-join round, paid once by spawning
   fresh domains (the per-stratum regime) and once by submitting to one
   persistent pool *)

module Pool = Dcd_concurrent.Domain_pool

let pool_workers = 8
let pool_rounds = 60

let pool_dispatch_times () =
  let job _ = () in
  let spawn_secs =
    snd
      (Clock.time (fun () ->
           for _ = 1 to pool_rounds do
             match Pool.run_collect ~workers:pool_workers job with
             | Ok _ -> ()
             | Error _ -> failwith "pool bench: spawn round failed"
           done))
  in
  let persist_secs =
    let p = Pool.create ~workers:pool_workers in
    Fun.protect
      ~finally:(fun () -> Pool.shutdown p)
      (fun () ->
        snd
          (Clock.time (fun () ->
               for _ = 1 to pool_rounds do
                 match Pool.submit p job with
                 | Ok () -> ()
                 | Error _ -> failwith "pool bench: submit round failed"
               done)))
  in
  (spawn_secs, persist_secs)

(* One row per tracked workload, 4 workers, DWS — the configuration the
   perf trajectory is measured in from PR 1 onward.  Each workload runs
   [bench_reps] times; the fastest run is reported, with mean and stddev
   alongside so the JSON records how noisy the machine was. *)

type perf_row = {
  p_name : string;
  p_dataset : string;
  p_wall : float;
  p_wall_mean : float;
  p_wall_stddev : float;
  p_output_tuples : int;
  p_tuples_processed : int;
  p_tuples_sent : int;
  p_busy : float;
  p_wait : float;
  (* GC deltas of the reported (fastest) run: the allocation cost of the
     data plane, measured rather than anecdotal.  minor+major words are
     summed across all domains (OCaml 5 Gc counters are per-domain
     cumulative; we read them on the main domain after the workers have
     been joined, which includes the workers' contributions). *)
  p_minor_words : float;
  p_major_words : float;
  p_promoted_words : float;
}

(* [Gc.stat] (not [quick_stat]): on OCaml 5 it is the variant whose
   allocation counters aggregate terminated domains, so the worker
   domains' allocations are included once the pool has joined.  The
   calls sit outside the timed region. *)
let gc_words () =
  let s = Gc.stat () in
  (s.Gc.minor_words, s.Gc.major_words, s.Gc.promoted_words)

let perf_row name dataset (spec : D.Queries.spec) edb =
  let cfg = config ~workers:4 D.Coord.dws in
  let best = ref None in
  let times = ref [] in
  for _ = 1 to bench_reps ~default:3 do
    let secs, result, gc =
      let prepared = prepare_spec spec in
      let cfg = { cfg with D.max_iterations = spec.max_iterations } in
      let min0, maj0, pro0 = gc_words () in
      let result, elapsed = time_run prepared edb cfg in
      let min1, maj1, pro1 = gc_words () in
      (elapsed, result, (min1 -. min0, maj1 -. maj0, pro1 -. pro0))
    in
    times := secs :: !times;
    match !best with
    | Some (s, _, _) when s <= secs -> ()
    | _ -> best := Some (secs, result, gc)
  done;
  let _, wall_mean, wall_stddev = sample_stats !times in
  let secs, result, (gc_minor, gc_major, gc_promoted) = Option.get !best in
  let stats = result.D.Parallel.stats in
  let sum f =
    List.fold_left
      (fun acc (s : D.Run_stats.stratum) ->
        acc + Array.fold_left (fun a w -> a + f w) 0 s.workers)
      0 stats.D.Run_stats.strata
  in
  let sumf f =
    List.fold_left
      (fun acc (s : D.Run_stats.stratum) ->
        acc +. Array.fold_left (fun a w -> a +. f w) 0. s.workers)
      0. stats.D.Run_stats.strata
  in
  {
    p_name = name;
    p_dataset = dataset;
    p_wall = secs;
    p_wall_mean = wall_mean;
    p_wall_stddev = wall_stddev;
    p_output_tuples = D.relation_count result spec.output;
    p_tuples_processed = sum (fun w -> w.D.Run_stats.tuples_processed);
    p_tuples_sent = sum (fun w -> w.D.Run_stats.tuples_sent);
    p_busy = sumf (fun w -> w.D.Run_stats.busy_time);
    p_wait = sumf (fun w -> w.D.Run_stats.wait_time);
    p_minor_words = gc_minor;
    p_major_words = gc_major;
    p_promoted_words = gc_promoted;
  }

let perf () =
  let rows =
    [
      perf_row "tc" "rmat-400" D.Queries.tc (D.Queries.arc_edb (D.Datasets.rmat 400));
      perf_row "cc" "livejournal-sim" D.Queries.cc (cc_edb "livejournal-sim");
      perf_row "sssp" "livejournal-sim" D.Queries.sssp (warc_edb "livejournal-sim");
    ]
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "{\"workers\": 4, \"strategy\": \"dws\", \"reps\": %d, \"workloads\": [\n"
       (bench_reps ~default:3));
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"name\": %S, \"dataset\": %S, \"wall_s\": %.6f, \"wall_mean_s\": %.6f, \
            \"wall_stddev_s\": %.6f, \"output_tuples\": %d, \
            \"tuples_processed\": %d, \"tuples_sent\": %d, \"tuples_per_sec\": %.1f, \
            \"busy_s\": %.6f, \"wait_s\": %.6f, \"gc_minor_words\": %.0f, \
            \"gc_major_words\": %.0f, \"gc_promoted_words\": %.0f, \
            \"minor_words_per_sent_tuple\": %.2f}%s\n"
           r.p_name r.p_dataset r.p_wall r.p_wall_mean r.p_wall_stddev r.p_output_tuples
           r.p_tuples_processed r.p_tuples_sent
           (float_of_int r.p_tuples_processed /. Float.max 1e-9 r.p_wall)
           r.p_busy r.p_wait r.p_minor_words r.p_major_words r.p_promoted_words
           (r.p_minor_words /. float_of_int (max 1 r.p_tuples_sent))
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  let spawn_secs, persist_secs = pool_dispatch_times () in
  Buffer.add_string buf
    (Printf.sprintf
       "  ],\n\
       \  \"stratum_dispatch\": {\"workers\": %d, \"rounds\": %d, \"spawn_s\": %.6f, \
        \"persistent_pool_s\": %.6f, \"pool_speedup\": %.2f}}"
       pool_workers pool_rounds spawn_secs persist_secs (spawn_secs /. Float.max 1e-9 persist_secs));
  add_json_block "perf" (Buffer.contents buf);
  let t = Report.create ~title:"Perf trajectory (recorded in bench/results/)"
      ~header:[ "workload"; "dataset"; "wall (s)"; "±σ"; "tuples/sec"; "busy (s)"; "wait (s)";
                "minor Mw"; "minor w/sent" ]
  in
  List.iter
    (fun r ->
      Report.add_row t
        [ r.p_name; r.p_dataset; Report.cell_time r.p_wall;
          Printf.sprintf "%.3f" r.p_wall_stddev;
          Printf.sprintf "%.0f" (float_of_int r.p_tuples_processed /. Float.max 1e-9 r.p_wall);
          Report.cell_time r.p_busy; Report.cell_time r.p_wait;
          Printf.sprintf "%.1f" (r.p_minor_words /. 1e6);
          Printf.sprintf "%.1f" (r.p_minor_words /. float_of_int (max 1 r.p_tuples_sent)) ])
    rows;
  Report.print t

(* ------------------------------------------------------------------ *)
(* pool: persistent worker pool vs per-stratum domain spawning         *)

(* The runtime spawns its [workers] domains once per run and submits
   every stratum to the same pool.  This experiment measures what that
   buys: [pool_rounds] fork-join rounds of a trivial job, once spawning
   fresh domains per round (the per-stratum regime,
   [Domain_pool.run_collect]) and once as [submit] rounds on one
   persistent pool — then evaluates a deliberately many-strata program
   end-to-end and prints its per-stratum phase breakdown. *)

(* [depth] strata: one recursive reachability stratum feeding a chain of
   depth-1 single-rule non-recursive strata *)
let many_strata_source depth =
  let b = Buffer.create 512 in
  Buffer.add_string b "t0(Y) <- seed(Y).\nt0(Y) <- t0(X), e(X, Y).\n";
  for i = 1 to depth - 1 do
    Buffer.add_string b (Printf.sprintf "t%d(Y) <- t%d(X), e(X, Y).\n" i (i - 1))
  done;
  Buffer.contents b

let pool () =
  let spawn_secs, persist_secs = pool_dispatch_times () in
  let t =
    Report.create
      ~title:
        (Printf.sprintf "Stratum dispatch — %d fork-join rounds, %d workers" pool_rounds
           pool_workers)
      ~header:[ "regime"; "total (s)"; "per round (ms)"; "vs spawn" ]
  in
  let per_round s = Printf.sprintf "%.3f" (s /. float_of_int pool_rounds *. 1e3) in
  Report.add_row t
    [ "spawn per round"; Report.cell_time spawn_secs; per_round spawn_secs;
      Report.cell_speedup 1.0 ];
  Report.add_row t
    [ "persistent pool"; Report.cell_time persist_secs; per_round persist_secs;
      Report.cell_speedup (persist_secs /. spawn_secs) ];
  Report.print t;
  let depth = 12 in
  let prepared =
    match D.prepare (many_strata_source depth) with Ok p -> p | Error e -> failwith e
  in
  let edb =
    [ ("seed", D.tuples [ [ 1 ] ]); ("e", List.assoc "arc" (D.Queries.arc_edb (D.Datasets.rmat 200))) ]
  in
  let result, secs = time_run prepared edb (config ~workers:pool_workers D.Coord.dws) in
  let stats = result.D.Parallel.stats in
  let t2 =
    Report.create
      ~title:
        (Printf.sprintf "%d-stratum program, %d workers, one pool — per-stratum phases" depth
           pool_workers)
      ~header:[ "stratum"; "kind"; "wall (ms)"; "setup"; "evaluate"; "materialize" ]
  in
  List.iter
    (fun (s : D.Run_stats.stratum) ->
      let ms v = Printf.sprintf "%.2f" (v *. 1e3) in
      Report.add_row t2
        [ String.concat "," s.preds; s.kind; ms s.wall; ms s.setup; ms s.evaluate;
          ms s.materialize ])
    stats.D.Run_stats.strata;
  Report.print t2;
  Printf.printf "end-to-end: %.3fs over %d strata (%d domains spawned for the whole run)\n"
    secs (List.length stats.D.Run_stats.strata) pool_workers;
  let gain = (spawn_secs -. persist_secs) /. spawn_secs *. 100. in
  Printf.printf
    "persistent pool dispatch is %.1f%% faster than per-round spawning (target: >= 10%%)\n" gain;
  if gain < 10. then begin
    Printf.eprintf "bench-pool: persistent pool gain %.1f%% below the 10%% bar\n" gain;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* smoke: one tiny workload per coordination strategy, for CI          *)

(* Fails fast (nonzero exit) if any strategy or exchange fabric drifts
   from the sequential fixpoint.  Run via `dune build @bench-smoke`. *)
let smoke () =
  let g = D.Datasets.rmat 80 in
  let edb = D.Queries.warc_edb g in
  let expected =
    let _, n = run_query D.Queries.sssp edb (config ~workers:1 D.Coord.dws) in
    n
  in
  let check name cfg =
    let secs, n = run_query D.Queries.sssp edb cfg in
    Printf.printf "  %-28s %.3fs, %d tuples\n%!" name secs n;
    if n <> expected then begin
      Printf.eprintf "bench-smoke: %s produced %d tuples, expected %d\n" name n expected;
      exit 1
    end
  in
  check "Global/spsc" (config ~workers:2 D.Coord.Global);
  check "SSP(5)/spsc" (config ~workers:2 (D.Coord.Ssp 5));
  check "DWS/spsc" (config ~workers:2 D.Coord.dws);
  check "DWS/locked"
    { (config ~workers:2 D.Coord.dws) with D.exchange = D.Parallel.Locked_exchange };
  print_endline "bench-smoke: all coordination strategies agree"

(* ------------------------------------------------------------------ *)
(* ablation: engine-level design choices beyond Table 4               *)

let ablation () =
  let t = Report.create
      ~title:"Engine ablations — SPSC vs locked exchange (SS6.1), partial aggregation (SS5.2.3)"
      ~header:[ "query"; "dataset"; "variant"; "time (s)"; "vs default" ]
  in
  let variants =
    [
      ("default (SPSC+pagg)", fun c -> c);
      ("locked exchange", fun c -> { c with D.exchange = D.Parallel.Locked_exchange });
      ("no partial agg", fun c -> { c with D.partial_agg = false });
    ]
  in
  List.iter
    (fun (qname, spec, edb_of) ->
      let ds = "livejournal-sim" in
      let edb = edb_of ds in
      let base = ref 0. in
      List.iter
        (fun (vname, tweak) ->
          let secs, _ = run_query spec edb (tweak (config D.Coord.dws)) in
          if vname = "default (SPSC+pagg)" then base := secs;
          Report.add_row t
            [ qname; ds; vname; Report.cell_time secs; Report.cell_speedup (secs /. !base) ])
        variants)
    [ ("CC", D.Queries.cc, cc_edb); ("SSSP", D.Queries.sssp, warc_edb) ];
  Report.print t;
  print_endline
    "paper claim (SS6.1): lock-based coordination serializes the exchange and costs\n\
     parallelism; on 1 core the lock is uncontended, so the gap here is a lower bound."

(* ------------------------------------------------------------------ *)
(* skew: morsel-driven work stealing on power-law inputs               *)

(* TC on a zipf graph concentrates the per-iteration delta on the few
   workers that own the hub vertices: without stealing they grind while
   the rest idle at the wait branch.  The experiment measures stealing
   {off, on} on the skewed input plus a uniform (G(n,p)) control, and
   records the numbers in the bench/results/ history.

   The >=10% speedup gate only arms on machines with >= 2 cores: on a
   single hardware thread a thief and its victim time-slice the same
   core, so stealing can only break even there (the honest numbers are
   still printed and recorded). *)

let skew () =
  let skew_repeats = bench_reps ~default:3 in
  let workers = max 2 !bench_workers in
  let n_vertices = 800 in
  let n_edges = 4800 in
  let zipf = D.Gen.zipf ~seed:42 ~n:n_vertices ~edges:n_edges () in
  let uniform =
    D.Gen.gnp ~seed:42 ~n:n_vertices
      ~p:(float_of_int n_edges /. float_of_int (n_vertices * n_vertices))
      ()
  in
  let prepared = prepare_spec D.Queries.tc in
  let measure graph ~steal =
    let edb = D.Queries.arc_edb graph in
    (* smaller-than-default morsels: container-scale deltas must still
       split into enough pieces for the board to matter *)
    let cfg = { (config ~workers D.Coord.dws) with D.steal; D.morsel_tuples = 512 } in
    let best = ref None in
    for _ = 1 to skew_repeats do
      let result, secs = time_run prepared edb cfg in
      match !best with
      | Some (s, _) when s <= secs -> ()
      | _ -> best := Some (secs, result)
    done;
    Option.get !best
  in
  let t =
    Report.create
      ~title:
        (Printf.sprintf "Morsel work stealing — TC, %d workers, DWS (best of %d)" workers
           skew_repeats)
      ~header:
        [ "input"; "stealing"; "time (s)"; "vs off"; "imbalance"; "steals"; "stolen tuples" ]
  in
  let row input (secs_off, (r_off : D.Parallel.result)) (secs_on, (r_on : D.Parallel.result)) =
    let st = r_on.D.Parallel.stats in
    Report.add_row t
      [ input; "off"; Report.cell_time secs_off; Report.cell_speedup 1.0;
        Printf.sprintf "%.2f" (D.Run_stats.busy_imbalance r_off.D.Parallel.stats); "-"; "-" ];
    Report.add_row t
      [ input; "on"; Report.cell_time secs_on; Report.cell_speedup (secs_on /. secs_off);
        Printf.sprintf "%.2f" (D.Run_stats.busy_imbalance st);
        string_of_int (D.Run_stats.total_steals st);
        string_of_int (D.Run_stats.total_stolen_tuples st) ]
  in
  let z_off = measure zipf ~steal:false in
  let z_on = measure zipf ~steal:true in
  let u_off = measure uniform ~steal:false in
  let u_on = measure uniform ~steal:true in
  (* the fixpoint must not depend on stealing *)
  List.iter
    (fun ((_, (a : D.Parallel.result)), (_, (b : D.Parallel.result))) ->
      let ca = D.relation_count a "tc" and cb = D.relation_count b "tc" in
      if ca <> cb then begin
        Printf.eprintf "bench-skew: stealing changed the fixpoint (%d vs %d tuples)\n" ca cb;
        exit 1
      end)
    [ (z_off, z_on); (u_off, u_on) ];
  (* imbalance column for the off rows, now that both runs exist *)
  let imb (_, (r : D.Parallel.result)) = D.Run_stats.busy_imbalance r.D.Parallel.stats in
  row "zipf" z_off z_on;
  row "uniform" u_off u_on;
  Report.print t;
  let gain_z = (fst z_off -. fst z_on) /. fst z_off *. 100. in
  let gain_u = (fst u_off -. fst u_on) /. fst u_off *. 100. in
  Printf.printf
    "zipf: stealing on is %.1f%% faster (imbalance %.2f -> %.2f); uniform control: %+.1f%%\n"
    gain_z (imb z_off) (imb z_on) gain_u;
  let block =
    Printf.sprintf
      "{\"query\": \"tc\", \"workers\": %d, \"reps\": %d, \"zipf_vertices\": %d, \
       \"zipf_edges\": %d,\n\
      \    \"zipf_off_s\": %.6f, \"zipf_on_s\": %.6f, \"zipf_gain_pct\": %.1f,\n\
      \    \"zipf_imbalance_off\": %.2f, \"zipf_imbalance_on\": %.2f,\n\
      \    \"steals\": %d, \"stolen_tuples\": %d,\n\
      \    \"uniform_off_s\": %.6f, \"uniform_on_s\": %.6f, \"uniform_gain_pct\": %.1f,\n\
      \    \"cores\": %d}"
      workers skew_repeats n_vertices n_edges (fst z_off) (fst z_on) gain_z (imb z_off)
      (imb z_on)
      (D.Run_stats.total_steals (snd z_on).D.Parallel.stats)
      (D.Run_stats.total_stolen_tuples (snd z_on).D.Parallel.stats)
      (fst u_off) (fst u_on) gain_u
      (Domain.recommended_domain_count ())
  in
  add_json_block "skew" block;
  let cores = Domain.recommended_domain_count () in
  if cores >= 2 then begin
    if gain_z < 10. then begin
      Printf.eprintf "bench-skew: stealing gain %.1f%% on zipf below the 10%% bar\n" gain_z;
      exit 1
    end
  end
  else
    Printf.printf
      "(1 hardware thread: the >=10%% stealing gate is informational only on this machine)\n"

(* ------------------------------------------------------------------ *)
(* gj: worst-case-optimal generic join vs the binary-join pipeline      *)

(* Triangle listing is the canonical worst case for binary join plans:
   the arc(X,Y),arc(Y,Z) sub-join enumerates every wedge (length-2
   path) before arc(X,Z) can filter, and on skewed graphs the hubs make
   wedges vastly outnumber triangles.  The generic-join path instead
   intersects the successor lists of X and Y per scanned edge — work
   proportional to the smaller list, per the AGM bound argument.  This
   is a join-algorithm gain, not a parallelism gain, so it shows up at
   any worker count, including 1.

   SG is measured under `Force for the recursive-rule flavor: its chain
   body is alpha-acyclic, so `Auto honestly keeps it binary, and the
   forced run quantifies what the trie path costs/buys off its sweet
   spot.  The >=2x triangle gate arms only on multi-core runners,
   matching the skew convention — on one hardware thread the numbers
   are still printed and recorded but CI noise owns the margin. *)

let gj () =
  let reps = bench_reps ~default:3 in
  let workers = !bench_workers in
  let measure ?generic_join (spec : D.Queries.spec) edb =
    let prepared =
      match D.prepare ?generic_join ~params:spec.default_params spec.source with
      | Ok p -> p
      | Error e -> failwith (spec.name ^ ": " ^ e)
    in
    let cfg = config ~workers D.Coord.dws in
    let times = ref [] and count = ref 0 in
    for _ = 1 to reps do
      let result, secs = time_run prepared edb cfg in
      times := secs :: !times;
      count := D.relation_count result spec.output
    done;
    let best, _, stddev = sample_stats !times in
    (best, stddev, !count)
  in
  (* Skewed symmetric graph: hubs create the wedge blowup the binary
     plan pays (~30M wedges vs ~0.6M intersection steps at this size).
     Vertex ids are shuffled so degree is uncorrelated with id: zipf
     numbers hubs 0,1,2,..., and with the X < Y < Z ordering the binary
     plan would then (accidentally, and unrepresentatively) always
     enumerate the successor list of the higher-numbered = low-degree
     endpoint. *)
  let tri_edb =
    let n = 5000 in
    let g = D.Gen.zipf ~seed:7 ~n ~edges:30000 () in
    let perm = Array.init n (fun i -> i) in
    Dcd_util.Rng.shuffle (Dcd_util.Rng.create 13) perm;
    let out = D.Vec.create () in
    D.Vec.iter
      (fun (u, v, _) ->
        D.Vec.push out [| perm.(u); perm.(v) |];
        D.Vec.push out [| perm.(v); perm.(u) |])
      (D.Graph.edges g);
    [ ("arc", out) ]
  in
  let tb, tb_sd, tb_n = measure ~generic_join:`Off D.Queries.triangle tri_edb in
  let tg, tg_sd, tg_n = measure ~generic_join:`Auto D.Queries.triangle tri_edb in
  if tb_n <> tg_n then begin
    Printf.eprintf "bench-gj: triangle counts disagree (binary %d vs generic %d)\n" tb_n tg_n;
    exit 1
  end;
  let sg_edb = D.Queries.arc_edb (graph_of "tree-11") in
  let sb, sb_sd, sb_n = measure ~generic_join:`Off D.Queries.sg sg_edb in
  let sg_t, sg_sd, sg_n = measure ~generic_join:`Force D.Queries.sg sg_edb in
  if sb_n <> sg_n then begin
    Printf.eprintf "bench-gj: sg counts disagree (binary %d vs generic %d)\n" sb_n sg_n;
    exit 1
  end;
  let t =
    Report.create
      ~title:
        (Printf.sprintf "Generic join vs binary pipeline — %d workers, DWS (best of %d)"
           workers reps)
      ~header:[ "query"; "path"; "time (s)"; "±σ"; "tuples"; "vs binary" ]
  in
  let row q path secs sd n speedup =
    Report.add_row t
      [ q; path; Report.cell_time secs; Printf.sprintf "%.3f" sd; string_of_int n;
        Report.cell_speedup speedup ]
  in
  row "triangle (zipf-5000)" "binary" tb tb_sd tb_n 1.0;
  row "triangle (zipf-5000)" "generic join" tg tg_sd tg_n (tg /. tb);
  row "SG (tree-11)" "binary" sb sb_sd sb_n 1.0;
  row "SG (tree-11)" "generic join (forced)" sg_t sg_sd sg_n (sg_t /. sb);
  Report.print t;
  let tri_speedup = tb /. Float.max 1e-9 tg in
  let sg_speedup = sb /. Float.max 1e-9 sg_t in
  Printf.printf
    "triangle: generic join is %.2fx the binary pipeline; SG forced-generic: %.2fx\n"
    tri_speedup sg_speedup;
  add_json_block "generic_join"
    (Printf.sprintf
       "{\"workers\": %d, \"reps\": %d, \"cores\": %d,\n\
       \    \"triangle_dataset\": \"zipf-5000-sym-shuffled\", \"triangle_tuples\": %d,\n\
       \    \"triangle_binary_s\": %.6f, \"triangle_binary_stddev_s\": %.6f,\n\
       \    \"triangle_generic_s\": %.6f, \"triangle_generic_stddev_s\": %.6f,\n\
       \    \"triangle_speedup\": %.2f,\n\
       \    \"sg_dataset\": \"tree-11\", \"sg_tuples\": %d,\n\
       \    \"sg_binary_s\": %.6f, \"sg_forced_generic_s\": %.6f, \"sg_speedup\": %.2f}"
       workers reps
       (Domain.recommended_domain_count ())
       tb_n tb tb_sd tg tg_sd tri_speedup sb_n sb sg_t sg_speedup);
  let cores = Domain.recommended_domain_count () in
  if cores >= 2 then begin
    if tri_speedup < 2. then begin
      Printf.eprintf "bench-gj: triangle generic-join speedup %.2fx below the 2x bar\n"
        tri_speedup;
      exit 1
    end
  end
  else
    Printf.printf
      "(1 hardware thread: the >=2x generic-join gate is informational only on this machine)\n"

(* ------------------------------------------------------------------ *)
(* merge: batch-sorted delta merge vs the per-tuple insert loop         *)

(* Store-level microbench first: fold one deterministic candidate stream
   (with duplicates) into an empty Set store in drain-sized rounds, once
   through [merge_slice] per tuple and once through [stage_slice] +
   [merge_run].  The keyspace is sized so the final store crosses 1M
   keys — the regime the tentpole targets, where per-tuple descents pay
   a full root-to-leaf walk each.  Both paths must produce the same
   fresh count and store size, or the bench aborts.  The >=1.3x gate
   arms only on multi-core runners (skew/gj convention); the numbers
   are recorded honestly either way. *)

let merge_bench () =
  let reps = bench_reps ~default:3 in
  (* End-to-end control first (before the microbench balloons the major
     heap): the same engine run under both --merge paths must reach the
     identical fixpoint, and records what the batch path buys (or
     costs) once exchange and join time dilute the merge.  Reps are
     interleaved so neither path systematically runs on a colder heap. *)
  let tc_edb = D.Queries.arc_edb (D.Datasets.rmat 300) in
  let e2e_times_b = ref [] and e2e_times_p = ref [] in
  let e2e_counts = ref [] in
  for _ = 1 to reps do
    List.iter
      (fun merge ->
        let cfg = { (config D.Coord.dws) with D.merge } in
        let secs, n = run_query D.Queries.tc tc_edb cfg in
        (match merge with
        | D.Parallel.Batch_sorted -> e2e_times_b := secs :: !e2e_times_b
        | D.Parallel.Per_tuple -> e2e_times_p := secs :: !e2e_times_p);
        e2e_counts := n :: !e2e_counts)
      [ D.Parallel.Batch_sorted; D.Parallel.Per_tuple ]
  done;
  let eb, eb_mean, eb_sd = sample_stats !e2e_times_b in
  let ep, ep_mean, ep_sd = sample_stats !e2e_times_p in
  let eb_n = List.hd !e2e_counts in
  if List.exists (fun n -> n <> eb_n) !e2e_counts then begin
    Printf.eprintf "bench-merge: TC fixpoints disagree across merge paths\n";
    exit 1
  end;
  let total = 3_000_000 in
  let keyspace = 2_000_000 in
  let round = 262_144 in
  let arity = 2 in
  let data =
    let rng = Dcd_util.Rng.create 2025 in
    let a = Array.make (total * arity) 0 in
    for i = 0 to total - 1 do
      (* distinct pairs = distinct draws of [p], so the duplicate rate
         is set by keyspace alone *)
      let p = Dcd_util.Rng.int rng keyspace in
      a.(arity * i) <- p / 4;
      a.((arity * i) + 1) <- p mod 4
    done;
    a
  in
  let fresh_store () =
    D.Rec_store.create ~arity ~agg:None ~route:[| 0 |] ~opts:D.Rec_store.default_opts ()
  in
  let run_per_tuple () =
    let store = fresh_store () in
    let fresh = ref 0 in
    let (), secs =
      Clock.time (fun () ->
          for i = 0 to total - 1 do
            match
              D.Rec_store.merge_slice store ~data ~off:(arity * i) ~cdata:data ~coff:0 ~clen:0
            with
            | Some _ -> incr fresh
            | None -> ()
          done)
    in
    (secs, !fresh, D.Rec_store.length store)
  in
  let run_batch () =
    let store = fresh_store () in
    let fresh = ref 0 in
    let on_fresh _ = incr fresh in
    let (), secs =
      Clock.time (fun () ->
          let i = ref 0 in
          while !i < total do
            let stop = min total (!i + round) in
            while !i < stop do
              D.Rec_store.stage_slice store ~data ~off:(arity * !i) ~cdata:data ~coff:0 ~clen:0;
              incr i
            done;
            ignore (D.Rec_store.merge_run store ~on_fresh)
          done)
    in
    (secs, !fresh, D.Rec_store.length store)
  in
  let sample runner =
    let times = ref [] and fresh = ref 0 and keys = ref 0 in
    for _ = 1 to reps do
      let secs, f, k = runner () in
      times := secs :: !times;
      fresh := f;
      keys := k
    done;
    let best, mean, stddev = sample_stats !times in
    (best, mean, stddev, !fresh, !keys)
  in
  let pt, pt_mean, pt_sd, pt_fresh, pt_keys = sample run_per_tuple in
  let bt, bt_mean, bt_sd, bt_fresh, bt_keys = sample run_batch in
  if pt_fresh <> bt_fresh || pt_keys <> bt_keys then begin
    Printf.eprintf
      "bench-merge: paths disagree (per-tuple %d fresh / %d keys, batch %d fresh / %d keys)\n"
      pt_fresh pt_keys bt_fresh bt_keys;
    exit 1
  end;
  let speedup = pt /. Float.max 1e-9 bt in
  let rate secs = float_of_int total /. Float.max 1e-9 secs in
  let t =
    Report.create
      ~title:
        (Printf.sprintf "Delta merge — %dk candidates into a %dk-key store (best of %d)"
           (total / 1000) (pt_keys / 1000) reps)
      ~header:[ "path"; "time (s)"; "±σ"; "Mtuples/s"; "vs per-tuple" ]
  in
  Report.add_row t
    [ "per-tuple"; Report.cell_time pt; Printf.sprintf "%.3f" pt_sd;
      Printf.sprintf "%.2f" (rate pt /. 1e6); Report.cell_speedup 1.0 ];
  Report.add_row t
    [ Printf.sprintf "batch-sorted (%d/run)" round; Report.cell_time bt;
      Printf.sprintf "%.3f" bt_sd; Printf.sprintf "%.2f" (rate bt /. 1e6);
      Report.cell_speedup (bt /. pt) ];
  Report.print t;
  Printf.printf
    "store microbench: batch-sorted is %.2fx per-tuple; TC rmat-300 end-to-end: %.2fx\n" speedup
    (ep /. Float.max 1e-9 eb);
  add_json_block "merge"
    (Printf.sprintf
       "{\"total_candidates\": %d, \"keyspace\": %d, \"round_tuples\": %d, \"store_keys\": %d,\n\
       \    \"reps\": %d, \"cores\": %d,\n\
       \    \"per_tuple_s\": %.6f, \"per_tuple_mean_s\": %.6f, \"per_tuple_stddev_s\": %.6f,\n\
       \    \"batch_s\": %.6f, \"batch_mean_s\": %.6f, \"batch_stddev_s\": %.6f,\n\
       \    \"speedup\": %.3f,\n\
       \    \"tc_dataset\": \"rmat-300\", \"tc_tuples\": %d,\n\
       \    \"tc_batch_s\": %.6f, \"tc_batch_mean_s\": %.6f, \"tc_batch_stddev_s\": %.6f,\n\
       \    \"tc_per_tuple_s\": %.6f, \"tc_per_tuple_mean_s\": %.6f, \
        \"tc_per_tuple_stddev_s\": %.6f,\n\
       \    \"tc_speedup\": %.3f}"
       total keyspace round pt_keys reps
       (Domain.recommended_domain_count ())
       pt pt_mean pt_sd bt bt_mean bt_sd speedup eb_n eb eb_mean eb_sd ep ep_mean ep_sd
       (ep /. Float.max 1e-9 eb));
  let cores = Domain.recommended_domain_count () in
  if cores >= 2 then begin
    if speedup < 1.3 then begin
      Printf.eprintf "bench-merge: batch-sorted speedup %.2fx below the 1.3x bar\n" speedup;
      exit 1
    end
  end
  else
    Printf.printf
      "(1 hardware thread: the >=1.3x merge gate is informational only on this machine)\n"

(* ------------------------------------------------------------------ *)
(* sweep: knob grid + data-scaling curve (ROADMAP item 4)               *)

(* One TC workload swept over workers x strategy x steal x batch_tuples
   x morsel_tuples (morsel size only matters with stealing on, so the
   off rows fix it), every cell checked against the same fixpoint — a
   correctness sweep and a tuning map in one.  A per-workload scaling
   curve (TC/CC/SSSP over growing rmat inputs) rides along so the
   recorded history tracks how evaluation time grows with data size. *)

let sweep () =
  let reps = bench_reps ~default:1 in
  let spec = D.Queries.tc in
  let dataset = "rmat-250" in
  let edb = D.Queries.arc_edb (D.Datasets.rmat 250) in
  let prepared = prepare_spec spec in
  let measure cfg =
    let cfg = { cfg with D.max_iterations = spec.max_iterations } in
    let times = ref [] and count = ref 0 in
    for _ = 1 to reps do
      let result, secs = time_run prepared edb cfg in
      times := secs :: !times;
      count := D.relation_count result spec.output
    done;
    let best, mean, stddev = sample_stats !times in
    (best, mean, stddev, !count)
  in
  let strategy_axis = [ ("global", D.Coord.Global); ("ssp5", D.Coord.Ssp 5); ("dws", D.Coord.dws) ] in
  let cells = ref [] in
  let expected = ref (-1) in
  List.iter
    (fun workers ->
      List.iter
        (fun (sname, strat) ->
          List.iter
            (fun steal ->
              let morsel_axis = if steal then [ 512; 2048 ] else [ 2048 ] in
              List.iter
                (fun batch_tuples ->
                  List.iter
                    (fun morsel_tuples ->
                      let cfg =
                        { (config ~workers strat) with D.steal; D.batch_tuples; D.morsel_tuples }
                      in
                      let best, mean, stddev, count = measure cfg in
                      if !expected < 0 then expected := count
                      else if count <> !expected then begin
                        Printf.eprintf
                          "bench-sweep: fixpoint changed under w=%d %s steal=%b b=%d m=%d (%d \
                           vs %d tuples)\n"
                          workers sname steal batch_tuples morsel_tuples count !expected;
                        exit 1
                      end;
                      let name =
                        Printf.sprintf "w%d-%s-steal%d-b%d-m%d" workers sname
                          (if steal then 1 else 0)
                          batch_tuples morsel_tuples
                      in
                      cells :=
                        (name, workers, sname, steal, batch_tuples, morsel_tuples, best, mean,
                         stddev)
                        :: !cells)
                    morsel_axis)
                [ 0; 1024 ])
            [ false; true ])
        strategy_axis)
    [ 1; 4 ];
  let cells = List.rev !cells in
  let best_cells =
    List.sort (fun (_, _, _, _, _, _, a, _, _) (_, _, _, _, _, _, b, _, _) -> compare a b) cells
  in
  let t =
    Report.create
      ~title:
        (Printf.sprintf "Knob sweep — TC %s, %d cells, fastest first (top 8)" dataset
           (List.length cells))
      ~header:[ "config"; "time (s)"; "±σ" ]
  in
  List.iteri
    (fun i (name, _, _, _, _, _, best, _, stddev) ->
      if i < 8 then
        Report.add_row t [ name; Report.cell_time best; Printf.sprintf "%.3f" stddev ])
    best_cells;
  Report.print t;
  (* data-scaling curve per workload, default knobs *)
  let sizes = [ 100; 200; 400 ] in
  let curve_specs =
    [ ("tc", D.Queries.tc, fun n -> D.Queries.arc_edb (D.Datasets.rmat n));
      ("cc", D.Queries.cc, fun n -> D.Queries.arc_sym_edb (D.Datasets.rmat n));
      ("sssp", D.Queries.sssp, fun n -> D.Queries.warc_edb (D.Datasets.rmat n)) ]
  in
  let ct =
    Report.create ~title:"Data scaling — DWS, default knobs"
      ~header:("workload" :: List.map (fun n -> Printf.sprintf "rmat-%d (s)" n) sizes)
  in
  let curves =
    List.map
      (fun (name, spec, edb_of) ->
        let pts =
          List.map
            (fun n ->
              let secs, count = run_query spec (edb_of n) (config D.Coord.dws) in
              (n, secs, count))
            sizes
        in
        Report.add_row ct (name :: List.map (fun (_, s, _) -> Report.cell_time s) pts);
        (name, pts))
      curve_specs
  in
  Report.print ct;
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"query\": \"tc\", \"dataset\": %S, \"reps\": %d, \"cores\": %d, \"tuples\": %d,\n\
       \    \"grid\": [\n"
       dataset reps
       (Domain.recommended_domain_count ())
       !expected);
  List.iteri
    (fun i (name, workers, sname, steal, batch_tuples, morsel_tuples, best, mean, stddev) ->
      Buffer.add_string buf
        (Printf.sprintf
           "      {\"name\": %S, \"workers\": %d, \"strategy\": %S, \"steal\": %b, \
            \"batch_tuples\": %d, \"morsel_tuples\": %d, \"wall_s\": %.6f, \"wall_mean_s\": \
            %.6f, \"wall_stddev_s\": %.6f}%s\n"
           name workers sname steal batch_tuples morsel_tuples best mean stddev
           (if i = List.length cells - 1 then "" else ",")))
    cells;
  Buffer.add_string buf "    ],\n    \"scaling\": [\n";
  List.iteri
    (fun i (name, pts) ->
      Buffer.add_string buf
        (Printf.sprintf "      {\"name\": %S, \"points\": [" name);
      List.iteri
        (fun j (n, secs, count) ->
          Buffer.add_string buf
            (Printf.sprintf "%s{\"name\": \"rmat-%d\", \"vertices\": %d, \"wall_s\": %.6f, \
                             \"tuples\": %d}"
               (if j = 0 then "" else ", ")
               n n secs count))
        pts;
      Buffer.add_string buf
        (Printf.sprintf "]}%s\n" (if i = List.length curves - 1 then "" else ",")))
    curves;
  Buffer.add_string buf "    ]}";
  add_json_block "sweep" (Buffer.contents buf)

(* ------------------------------------------------------------------ *)
(* recover: checkpoint overhead + crash-recovery demonstration          *)

(* Two questions, one workload (TC over rmat-400):

   1. What does cutting recovery epochs cost a run that never crashes?
      The same fixpoint is timed with checkpointing off and with an
      epoch cut every 4 iterations; multi-core, the overhead must stay
      within 5% or the experiment fails (single-core the gate is
      informational, matching the other perf gates here).
   2. Does a run that DOES crash finish with the right answer?  A
      seeded fault schedule injects worker crashes mid-fixpoint with
      recovery armed; the run must recover (>= 1 recovery round) and
      land on the same tuple count as the crash-free baseline. *)
let recover_bench () =
  let reps = bench_reps ~default:3 in
  let spec = D.Queries.tc in
  let dataset = "rmat-400" in
  let edb = D.Queries.arc_edb (D.Datasets.rmat 400) in
  let prepared = prepare_spec spec in
  let every = 4 in
  let measure cfg =
    let times = ref [] and count = ref 0 and last = ref None in
    for _ = 1 to reps do
      let result, secs = time_run prepared edb cfg in
      times := secs :: !times;
      count := D.relation_count result spec.output;
      last := Some result
    done;
    let best, mean, stddev = sample_stats !times in
    (best, mean, stddev, !count, Option.get !last)
  in
  let base_cfg =
    { (config D.Coord.dws) with D.max_iterations = spec.max_iterations }
  in
  let ckpt_cfg = { base_cfg with D.checkpoint_every = every } in
  let crash_cfg =
    {
      base_cfg with
      D.checkpoint_every = 2;
      D.max_recoveries = 6;
      D.fault =
        Some
          {
            D.Fault.off with
            D.Fault.seed = 11;
            crash_prob = 0.02;
            max_crashes = 2;
          };
    }
  in
  let off, off_mean, off_sd, off_n, _ = measure base_cfg in
  let on_, on_mean, on_sd, on_n, on_res = measure ckpt_cfg in
  if off_n <> on_n then begin
    Printf.eprintf "bench-recover: fixpoint changed with checkpointing on (%d vs %d tuples)\n"
      off_n on_n;
    exit 1
  end;
  let rstats r = r.D.Parallel.stats.D.Run_stats.recovery in
  let epochs = (rstats on_res).D.Run_stats.epochs_cut in
  let ckpt_s = D.Run_stats.total_checkpoint_time on_res.D.Parallel.stats in
  let crash, crash_mean, crash_sd, crash_n, crash_res = measure crash_cfg in
  let recovered = rstats crash_res in
  if crash_n <> off_n then begin
    Printf.eprintf "bench-recover: recovered fixpoint differs (%d vs %d tuples)\n" crash_n off_n;
    exit 1
  end;
  let overhead = (on_ /. Float.max 1e-9 off) -. 1.0 in
  let t =
    Report.create
      ~title:
        (Printf.sprintf "Crash recovery — TC %s, %d workers (best of %d)" dataset
           !bench_workers reps)
      ~header:[ "configuration"; "time (s)"; "±σ"; "vs baseline"; "notes" ]
  in
  Report.add_row t
    [ "recovery off"; Report.cell_time off; Printf.sprintf "%.3f" off_sd;
      Report.cell_speedup 1.0; Printf.sprintf "%d tuples" off_n ];
  Report.add_row t
    [ Printf.sprintf "checkpoint every %d" every; Report.cell_time on_;
      Printf.sprintf "%.3f" on_sd; Report.cell_speedup (on_ /. off);
      Printf.sprintf "%d epochs, %.4fs cutting" epochs ckpt_s ];
  Report.add_row t
    [ "2 crashes + recovery"; Report.cell_time crash; Printf.sprintf "%.3f" crash_sd;
      Report.cell_speedup (crash /. off);
      Printf.sprintf "%d recoveries, %d tuples rolled back"
        recovered.D.Run_stats.recoveries recovered.D.Run_stats.rolled_back_tuples ];
  Report.print t;
  Printf.printf "crash-free checkpoint overhead: %.1f%%\n" (100. *. overhead);
  if recovered.D.Run_stats.recoveries = 0 then begin
    Printf.eprintf "bench-recover: the seeded fault schedule never triggered a recovery\n";
    exit 1
  end;
  add_json_block "recover"
    (Printf.sprintf
       "{\"dataset\": \"%s\", \"workers\": %d, \"reps\": %d, \"cores\": %d,\n\
       \    \"tuples\": %d, \"checkpoint_every\": %d,\n\
       \    \"off_s\": %.6f, \"off_mean_s\": %.6f, \"off_stddev_s\": %.6f,\n\
       \    \"on_s\": %.6f, \"on_mean_s\": %.6f, \"on_stddev_s\": %.6f,\n\
       \    \"overhead_frac\": %.4f, \"epochs_cut\": %d, \"checkpoint_time_s\": %.6f,\n\
       \    \"crash_s\": %.6f, \"crash_mean_s\": %.6f, \"crash_stddev_s\": %.6f,\n\
       \    \"recoveries\": %d, \"rolled_back_tuples\": %d, \"rerun_iterations\": %d}"
       dataset !bench_workers reps
       (Domain.recommended_domain_count ())
       off_n every off off_mean off_sd on_ on_mean on_sd overhead epochs ckpt_s crash
       crash_mean crash_sd recovered.D.Run_stats.recoveries
       recovered.D.Run_stats.rolled_back_tuples recovered.D.Run_stats.rerun_iterations);
  let cores = Domain.recommended_domain_count () in
  if cores >= 2 then begin
    if overhead > 0.05 then begin
      Printf.eprintf "bench-recover: checkpoint overhead %.1f%% above the 5%% bar\n"
        (100. *. overhead);
      exit 1
    end
  end
  else
    Printf.printf
      "(1 hardware thread: the <=5%% checkpoint-overhead gate is informational only on this \
       machine)\n"

(* ------------------------------------------------------------------ *)
(* serve: resident session, incremental maintenance vs full recompute   *)

(* The serving runtime's reason to exist: after a small update batch a
   resident session should repair its fixpoint far faster than a cold
   evaluation reproduces it.  TC over rmat-400; the batch flips ~1% of
   the distinct arc set (half deletes of existing edges, half inserts
   of fresh ones).  Each rep times [Session.apply_batch] forward, then
   applies the inverse batch to restore the base state; the baseline is
   a cold [D.run] over the post-batch EDB.  The maintained fixpoint
   must match the cold one tuple-for-tuple, and multi-core the
   incremental path must win by >= 5x. *)
let serve_bench () =
  let reps = bench_reps ~default:3 in
  let spec = D.Queries.tc in
  let dataset = "rmat-400" in
  let g = D.Datasets.rmat 400 in
  let edb = D.Queries.arc_edb g in
  let arcs =
    match edb with
    | [ (_, v) ] -> v
    | _ -> failwith "bench-serve: unexpected arc EDB shape"
  in
  let present = Hashtbl.create (D.Vec.length arcs) in
  D.Vec.iter (fun t -> Hashtbl.replace present (t.(0), t.(1)) ()) arcs;
  let n_distinct = Hashtbl.length present in
  let batch_n = max 2 (n_distinct / 100) in
  let rng = Dcd_util.Rng.create 0xd15c in
  let distinct = Array.of_seq (Hashtbl.to_seq_keys present) in
  Dcd_util.Rng.shuffle rng distinct;
  let n_del = batch_n / 2 in
  let deletes = Array.sub distinct 0 n_del in
  let maxv = D.Graph.max_vertex g in
  let inserts = ref [] and n_ins = ref 0 in
  while !n_ins < batch_n - n_del do
    let a = Dcd_util.Rng.int rng (maxv + 1) in
    let b = Dcd_util.Rng.int rng (maxv + 1) in
    if a <> b && not (Hashtbl.mem present (a, b)) then begin
      (* reserve it so the same fresh edge is not drawn twice *)
      Hashtbl.replace present (a, b) ();
      inserts := (a, b) :: !inserts;
      incr n_ins
    end
  done;
  let batch =
    Array.to_list (Array.map (fun (a, b) -> D.Maintain.Delete ("arc", [| a; b |])) deletes)
    @ List.map (fun (a, b) -> D.Maintain.Insert ("arc", [| a; b |])) !inserts
  in
  let inverse =
    List.rev_map
      (function
        | D.Maintain.Insert (p, t) -> D.Maintain.Delete (p, t)
        | D.Maintain.Delete (p, t) -> D.Maintain.Insert (p, t))
      batch
  in
  let cfg = { (config D.Coord.dws) with D.max_iterations = spec.max_iterations } in
  let prepared = prepare_spec spec in
  let session = D.open_session prepared ~edb ~config:cfg () in
  let incr_times = ref [] in
  for _ = 1 to reps do
    let (), secs = Clock.time (fun () -> ignore (D.Session.apply_batch session batch)) in
    incr_times := secs :: !incr_times;
    ignore (D.Session.apply_batch session inverse)
  done;
  (* leave the session at the post-batch state for the equality check *)
  ignore (D.Session.apply_batch session batch);
  (* cold recompute over the post-batch EDB *)
  let upd = Hashtbl.create n_distinct in
  D.Vec.iter (fun t -> Hashtbl.replace upd (t.(0), t.(1)) ()) arcs;
  Array.iter (fun e -> Hashtbl.remove upd e) deletes;
  List.iter (fun e -> Hashtbl.replace upd e ()) !inserts;
  let updated_edb =
    [ ("arc", D.Vec.of_list (Hashtbl.fold (fun (a, b) () acc -> [| a; b |] :: acc) upd [])) ]
  in
  let full_times = ref [] and full_res = ref None in
  for _ = 1 to reps do
    let result, secs = time_run prepared updated_edb cfg in
    full_times := secs :: !full_times;
    full_res := Some result
  done;
  let incr, incr_mean, incr_sd = sample_stats !incr_times in
  let full, full_mean, full_sd = sample_stats !full_times in
  let _, rows = D.Session.scan session spec.output in
  let maintained = List.sort compare (List.map Array.to_list rows) in
  let cold = D.relation (Option.get !full_res) spec.output in
  if maintained <> cold then begin
    Printf.eprintf
      "bench-serve: maintained fixpoint differs from cold recompute (%d vs %d tuples)\n"
      (List.length maintained) (List.length cold);
    exit 1
  end;
  let m = (D.Session.stats session).D.Run_stats.maintenance in
  D.Session.close session;
  let speedup = full /. Float.max 1e-9 incr in
  let t =
    Report.create
      ~title:
        (Printf.sprintf "Incremental serving — TC %s, %d workers, %d-update batch (best of %d)"
           dataset !bench_workers batch_n reps)
      ~header:[ "path"; "time (s)"; "±σ"; "speedup"; "notes" ]
  in
  Report.add_row t
    [ "full recompute"; Report.cell_time full; Printf.sprintf "%.3f" full_sd;
      Report.cell_speedup 1.0; Printf.sprintf "%d tuples" (List.length cold) ];
  Report.add_row t
    [ Printf.sprintf "incremental (%d del, %d ins)" n_del (batch_n - n_del);
      Report.cell_time incr; Printf.sprintf "%.3f" incr_sd; Report.cell_speedup speedup;
      Printf.sprintf "%d overdeleted, %d rederived across %d batches" m.D.Run_stats.overdeleted
        m.D.Run_stats.rederived m.D.Run_stats.batches ];
  Report.print t;
  Printf.printf "maintained fixpoint == cold recompute (%d tuples); incremental speedup %.1fx\n"
    (List.length cold) speedup;
  add_json_block "serve"
    (Printf.sprintf
       "{\"dataset\": \"%s\", \"workers\": %d, \"reps\": %d, \"cores\": %d,\n\
       \    \"tuples\": %d, \"batch\": %d, \"deletes\": %d, \"inserts\": %d,\n\
       \    \"incr_s\": %.6f, \"incr_mean_s\": %.6f, \"incr_stddev_s\": %.6f,\n\
       \    \"full_s\": %.6f, \"full_mean_s\": %.6f, \"full_stddev_s\": %.6f,\n\
       \    \"speedup\": %.2f, \"overdeleted\": %d, \"rederived\": %d}"
       dataset !bench_workers reps
       (Domain.recommended_domain_count ())
       (List.length cold) batch_n n_del (batch_n - n_del) incr incr_mean incr_sd full full_mean
       full_sd speedup m.D.Run_stats.overdeleted m.D.Run_stats.rederived);
  let cores = Domain.recommended_domain_count () in
  if cores >= 2 then begin
    if speedup < 5.0 then begin
      Printf.eprintf "bench-serve: incremental speedup %.1fx below the 5x bar\n" speedup;
      exit 1
    end
  end
  else
    Printf.printf
      "(1 hardware thread: the >=5x incremental-speedup gate is informational only on this \
       machine)\n"

(* ------------------------------------------------------------------ *)
(* serve scaling: maintain_workers x batch size                         *)

(* The parallel-maintenance grid: the same TC rmat-400 session repaired
   under mixed batches of 20 / 200 / 2000 arcs with maintain_workers 1
   (the sequential interpreted ablation), 2, and 4.  Every cell's
   post-batch fixpoint must be identical across maintain_workers and
   match a cold recompute of the post-batch EDB; multi-core, the
   compiled+parallel path at 4 maintenance workers must beat the
   sequential interpreter >= 2x on the 200-arc batch. *)
let serve_scaling_bench () =
  let reps = bench_reps ~default:3 in
  let spec = D.Queries.tc in
  let dataset = "rmat-400" in
  let g = D.Datasets.rmat 400 in
  let edb = D.Queries.arc_edb g in
  let arcs =
    match edb with
    | [ (_, v) ] -> v
    | _ -> failwith "bench-serve-scaling: unexpected arc EDB shape"
  in
  let maxv = D.Graph.max_vertex g in
  (* a mixed batch: half deletes of existing distinct arcs, half fresh
     inserts; self-inverse restorable so every cell starts from the
     same base state *)
  let mk_batch seed size =
    let present = Hashtbl.create (D.Vec.length arcs) in
    D.Vec.iter (fun t -> Hashtbl.replace present (t.(0), t.(1)) ()) arcs;
    let rng = Dcd_util.Rng.create seed in
    let distinct = Array.of_seq (Hashtbl.to_seq_keys present) in
    Dcd_util.Rng.shuffle rng distinct;
    let n_del = min (size / 2) (Array.length distinct) in
    let deletes = Array.sub distinct 0 n_del in
    let inserts = ref [] and n_ins = ref 0 in
    while !n_ins < size - n_del do
      let a = Dcd_util.Rng.int rng (maxv + 1) in
      let b = Dcd_util.Rng.int rng (maxv + 1) in
      if a <> b && not (Hashtbl.mem present (a, b)) then begin
        Hashtbl.replace present (a, b) ();
        inserts := (a, b) :: !inserts;
        incr n_ins
      end
    done;
    Array.to_list (Array.map (fun (a, b) -> D.Maintain.Delete ("arc", [| a; b |])) deletes)
    @ List.map (fun (a, b) -> D.Maintain.Insert ("arc", [| a; b |])) !inserts
  in
  let inverse_of batch =
    List.rev_map
      (function
        | D.Maintain.Insert (p, t) -> D.Maintain.Delete (p, t)
        | D.Maintain.Delete (p, t) -> D.Maintain.Insert (p, t))
      batch
  in
  let sizes = [ 20; 200; 2000 ] in
  let mws = [ 1; 2; 4 ] in
  let batches = List.map (fun s -> (s, mk_batch (0xace0 + s) s)) sizes in
  let prepared = prepare_spec spec in
  (* (mw, size) -> (best seconds, post-batch fixpoint) *)
  let cells = Hashtbl.create 16 in
  List.iter
    (fun mw ->
      let cfg =
        {
          (config D.Coord.dws) with
          D.workers = 4;
          D.maintain_workers = mw;
          D.max_iterations = spec.max_iterations;
        }
      in
      let session = D.open_session prepared ~edb ~config:cfg () in
      List.iter
        (fun (size, batch) ->
          let inverse = inverse_of batch in
          let times = ref [] in
          for _ = 1 to reps do
            let (), secs =
              Clock.time (fun () -> ignore (D.Session.apply_batch session batch))
            in
            times := secs :: !times;
            ignore (D.Session.apply_batch session inverse)
          done;
          (* capture the post-batch fixpoint for the equality check,
             then restore the shared base state *)
          ignore (D.Session.apply_batch session batch);
          let _, rows = D.Session.scan session spec.output in
          let fixpoint = List.sort compare (List.map Array.to_list rows) in
          ignore (D.Session.apply_batch session inverse);
          let best, _, _ = sample_stats !times in
          Hashtbl.replace cells (mw, size) (best, fixpoint))
        batches;
      D.Session.close session)
    mws;
  (* cold recompute of each post-batch EDB: the external truth *)
  let cold_of size batch =
    let upd = Hashtbl.create (D.Vec.length arcs) in
    D.Vec.iter (fun t -> Hashtbl.replace upd (t.(0), t.(1)) ()) arcs;
    List.iter
      (function
        | D.Maintain.Delete (_, t) -> Hashtbl.remove upd (t.(0), t.(1))
        | D.Maintain.Insert (_, t) -> Hashtbl.replace upd (t.(0), t.(1)) ())
      batch;
    let updated_edb =
      [ ("arc", D.Vec.of_list (Hashtbl.fold (fun (a, b) () acc -> [| a; b |] :: acc) upd [])) ]
    in
    let cfg = { (config D.Coord.dws) with D.max_iterations = spec.max_iterations } in
    let result, secs = time_run prepared updated_edb cfg in
    ignore size;
    (D.relation result spec.output, secs)
  in
  let t =
    Report.create
      ~title:
        (Printf.sprintf "Maintenance scaling — TC %s, 4 workers, best of %d" dataset reps)
      ~header:
        [ "batch"; "mw=1 (s)"; "mw=2 (s)"; "mw=4 (s)"; "par4 speedup"; "vs recompute" ]
  in
  let json_rows = ref [] in
  List.iter
    (fun (size, batch) ->
      let time_of mw = fst (Hashtbl.find cells (mw, size)) in
      let fix_of mw = snd (Hashtbl.find cells (mw, size)) in
      let cold, cold_s = cold_of size batch in
      List.iter
        (fun mw ->
          if fix_of mw <> cold then begin
            Printf.eprintf
              "bench-serve-scaling: maintain_workers=%d batch=%d fixpoint differs from cold \
               recompute (%d vs %d tuples)\n"
              mw size
              (List.length (fix_of mw))
              (List.length cold);
            exit 1
          end)
        mws;
      let t1 = time_of 1 and t2 = time_of 2 and t4 = time_of 4 in
      let par_speedup = t1 /. Float.max 1e-9 t4 in
      let vs_recompute = cold_s /. Float.max 1e-9 t4 in
      Report.add_row t
        [ Printf.sprintf "%d arcs" size; Report.cell_time t1; Report.cell_time t2;
          Report.cell_time t4; Report.cell_speedup par_speedup;
          Report.cell_speedup vs_recompute ];
      json_rows :=
        Printf.sprintf
          "{\"batch\": %d, \"mw1_s\": %.6f, \"mw2_s\": %.6f, \"mw4_s\": %.6f,\n\
          \     \"par_speedup\": %.2f, \"cold_s\": %.6f, \"vs_recompute\": %.2f}"
          size t1 t2 t4 par_speedup cold_s vs_recompute
        :: !json_rows)
    batches;
  Report.print t;
  add_json_block "serve_scaling"
    (Printf.sprintf
       "{\"dataset\": \"%s\", \"workers\": 4, \"reps\": %d, \"cores\": %d,\n\
       \    \"rows\": [%s]}"
       dataset reps
       (Domain.recommended_domain_count ())
       (String.concat ",\n     " (List.rev !json_rows)));
  let t1 = fst (Hashtbl.find cells (1, 200)) in
  let t4 = fst (Hashtbl.find cells (4, 200)) in
  let gate = t1 /. Float.max 1e-9 t4 in
  Printf.printf
    "all fixpoints identical across maintain_workers and == cold recompute; parallel \
     maintenance speedup %.2fx at 200-arc batch\n"
    gate;
  let cores = Domain.recommended_domain_count () in
  if cores >= 2 then begin
    if gate < 2.0 then begin
      Printf.eprintf
        "bench-serve-scaling: parallel maintenance speedup %.2fx below the 2x bar\n" gate;
      exit 1
    end
  end
  else
    Printf.printf
      "(1 hardware thread: the >=2x parallel-maintenance gate is informational only on this \
       machine)\n"

let experiments =
  [
    ("fig1", fig1, "Figure 1: SSSP engine comparison");
    ("tab2", tab2, "Table 2: end-to-end times, 5 queries");
    ("tab3", tab3, "Table 3: APSP non-linear recursion");
    ("tab4", tab4, "Table 4: SS6.2 optimization ablation");
    ("fig3", fig3, "Figure 3: worked coordination example");
    ("fig8", fig8, "Figure 8: coordination strategies");
    ("fig9a", fig9a, "Figure 9a: speedup vs workers");
    ("fig9b", fig9b, "Figure 9b: time vs data size");
    ("ablation", ablation, "Engine ablations: exchange fabric, partial aggregation");
    ("micro", micro, "Microbenchmarks");
    ("pool", pool, "Persistent pool vs per-stratum spawning, many-strata breakdown");
    ("perf", perf, "Perf trajectory: bench/results/<stamp>.json (4 workers, DWS)");
    ("skew", skew, "Morsel work stealing on zipf vs uniform inputs");
    ("gj", gj, "Generic join vs binary pipeline on triangle and SG");
    ("merge", merge_bench, "Batch-sorted delta merge vs per-tuple inserts");
    ("recover", recover_bench, "Checkpoint overhead + seeded crash-recovery demonstration");
    ( "serve",
      (fun () ->
        serve_bench ();
        serve_scaling_bench ()),
      "Resident session: incremental maintenance vs full recompute + scaling grid" );
    ("sweep", sweep, "Knob grid (workers/strategy/steal/batch/morsel) + data-scaling curve");
    ("smoke", smoke, "CI smoke: tiny workload per coordination strategy");
  ]

let () =
  Printexc.record_backtrace true;
  let args = List.tl (Array.to_list Sys.argv) in
  let rec parse selected = function
    | [] -> List.rev selected
    | "--scale" :: f :: rest ->
      D.Datasets.set_scale_factor (float_of_string f);
      parse selected rest
    | "--workers" :: n :: rest ->
      bench_workers := int_of_string n;
      parse selected rest
    | name :: rest ->
      if List.exists (fun (id, _, _) -> id = name) experiments then parse (name :: selected) rest
      else begin
        Printf.eprintf "unknown experiment %s; available: %s\n" name
          (String.concat " " (List.map (fun (id, _, _) -> id) experiments));
        exit 1
      end
  in
  let selected = parse [] args in
  let to_run =
    if selected = [] then experiments
    else List.filter (fun (id, _, _) -> List.mem id selected) experiments
  in
  Printf.printf "DCDatalog benchmark harness — %d workers, dataset scale %.2f\n"
    !bench_workers (D.Datasets.scale_factor ());
  let total = Clock.stopwatch () in
  List.iter
    (fun (id, f, desc) ->
      Printf.printf "\n=== %s: %s ===\n%!" id desc;
      let (), secs = Clock.time f in
      Printf.printf "[%s completed in %.1fs]\n%!" id secs)
    to_run;
  write_results ();
  Printf.printf "\nAll experiments done in %.1fs.\n" (Clock.elapsed total)
