(* dcdatalog — command-line front end.

   Examples:
     dcdatalog list
     dcdatalog explain --query apsp
     dcdatalog run --query sssp --dataset livejournal-sim --strategy dws --workers 4
     dcdatalog run --query cc --rmat 2000 --strategy global
     dcdatalog run --program my.dl --rmat 500 --show 10

   Exit codes:
     0  success
     1  input error (unknown dataset/query, unreadable file, bad flags)
     2  program error (parse failure, unknown predicate, arity mismatch)
     3  cancelled (--timeout expired or external cancellation)
     4  a worker crashed (the message names the faulting worker)
     5  stalled (the watchdog saw no progress for --stall-window) *)

module D = Dcdatalog
open Cmdliner

let exit_input_error = 1
let exit_program_error = 2
let exit_cancelled = 3
let exit_crashed = 4
let exit_stalled = 5

let input_error msg =
  prerr_endline ("error: " ^ msg);
  exit_input_error

let program_error msg =
  prerr_endline ("error: " ^ String.concat " " (String.split_on_char '\n' msg));
  exit_program_error

let strategy_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "global" -> Ok D.Coord.Global
    | "dws" -> Ok D.Coord.dws
    | s when String.length s > 4 && String.sub s 0 4 = "ssp:" -> (
      match int_of_string_opt (String.sub s 4 (String.length s - 4)) with
      | Some k when k >= 0 -> Ok (D.Coord.Ssp k)
      | _ -> Error (`Msg "ssp:<n> expects a non-negative integer"))
    | _ -> Error (`Msg "strategy must be global, dws, or ssp:<n>")
  in
  Arg.conv (parse, fun fmt s -> Format.pp_print_string fmt (D.Coord.to_string s))

let param_conv =
  let parse s =
    match String.index_opt s '=' with
    | Some i -> (
      let k = String.sub s 0 i and v = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt v with
      | Some v -> Ok (k, v)
      | None -> Error (`Msg "parameter value must be an integer"))
    | None -> Error (`Msg "expected name=value")
  in
  Arg.conv (parse, fun fmt (k, v) -> Format.fprintf fmt "%s=%d" k v)

(* --- common options --- *)

let query_arg =
  Arg.(value & opt (some string) None & info [ "query"; "q" ] ~docv:"NAME"
         ~doc:"Built-in paper query (see $(b,dcdatalog list)).")

let program_arg =
  Arg.(value & opt (some file) None & info [ "program"; "p" ] ~docv:"FILE"
         ~doc:"Datalog program file to run instead of a built-in query.")

let dataset_arg =
  Arg.(value & opt (some string) None & info [ "dataset"; "d" ] ~docv:"NAME"
         ~doc:"Named dataset (see $(b,dcdatalog list)).")

let rmat_arg =
  Arg.(value & opt (some int) None & info [ "rmat" ] ~docv:"N"
         ~doc:"Generate an RMAT-N graph (N vertices, 10N edges) as input.")

let edges_arg =
  Arg.(value & opt (some file) None & info [ "edges" ] ~docv:"FILE"
         ~doc:"Load the input graph from an edge-list file (src dst [weight] per line; \
               # comments).  This is how the paper's real datasets can be used.")

let edb_conv =
  let parse s =
    match String.index_opt s '=' with
    | Some i -> Ok (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
    | None -> Error (`Msg "expected relation=file")
  in
  Arg.conv (parse, fun fmt (k, v) -> Format.fprintf fmt "%s=%s" k v)

let edb_arg =
  Arg.(value & opt_all edb_conv [] & info [ "edb" ] ~docv:"REL=FILE"
         ~doc:"Load a relation from a file of integer rows (repeatable).")

let workers_arg =
  Arg.(value & opt int D.default_config.workers & info [ "workers"; "w" ] ~docv:"N"
         ~doc:"Number of parallel workers (OCaml domains).")

let strategy_arg =
  Arg.(value & opt strategy_conv D.Coord.dws & info [ "strategy"; "s" ] ~docv:"STRAT"
         ~doc:"Coordination strategy: global, ssp:<n>, or dws.")

let no_steal_arg =
  Arg.(value & flag & info [ "no-steal" ]
         ~doc:"Disable intra-iteration morsel work stealing (on by default); with stealing \
               off the engine behaves exactly as before the morsel board existed.")

let maintain_workers_arg =
  Arg.(value & opt int D.default_config.maintain_workers
       & info [ "maintain-workers" ] ~docv:"N"
           ~doc:"Workers for incremental maintenance rounds in $(b,repl)/$(b,serve) \
                 (0 = same as --workers, the default; 1 = the sequential interpreted \
                 path; capped at --workers).")

let unopt_arg =
  Arg.(value & flag & info [ "unoptimized" ]
         ~doc:"Disable the \xc2\xa76.2 optimizations (aggregate index, existence cache).")

let merge_conv =
  let parse = function
    | "batch" -> Ok D.Parallel.Batch_sorted
    | "per-tuple" -> Ok D.Parallel.Per_tuple
    | s -> Error (`Msg (Printf.sprintf "unknown merge path %s (batch | per-tuple)" s))
  in
  let print fmt = function
    | D.Parallel.Batch_sorted -> Format.pp_print_string fmt "batch"
    | D.Parallel.Per_tuple -> Format.pp_print_string fmt "per-tuple"
  in
  Arg.conv (parse, print)

let merge_arg =
  Arg.(value & opt merge_conv D.Parallel.Batch_sorted & info [ "merge" ] ~docv:"PATH"
         ~doc:"Delta-merge path: 'batch' (sort the drained run, one B+-tree descent per leaf \
               segment; the default) or 'per-tuple' (the historical one-descent-per-tuple \
               escape hatch).")

let params_arg =
  Arg.(value & opt_all param_conv [] & info [ "param" ] ~docv:"K=V"
         ~doc:"Bind a program parameter, e.g. --param start=7.")

let show_arg =
  Arg.(value & opt int 0 & info [ "show" ] ~docv:"N" ~doc:"Print the first N result tuples.")

let stats_arg = Arg.(value & flag & info [ "stats" ] ~doc:"Print per-worker execution statistics.")

let timeout_arg =
  Arg.(value & opt (some float) None & info [ "timeout" ] ~docv:"SECS"
         ~doc:"Abort the evaluation cleanly after SECS seconds of wall clock (exit code 3).")

let stall_window_arg =
  Arg.(value & opt (some float) None & info [ "stall-window" ] ~docv:"SECS"
         ~doc:"Arm the stall watchdog: if no worker makes progress for SECS seconds, dump a \
               state snapshot and abort (exit code 5).")

let fault_seed_arg =
  Arg.(value & opt (some int) None & info [ "fault-seed" ] ~docv:"N"
         ~doc:"Enable deterministic fault injection with this seed (testing/diagnostics).")

let fault_crash_arg =
  Arg.(value & opt float 0. & info [ "fault-crash" ] ~docv:"P"
         ~doc:"With --fault-seed: per-site probability of an induced worker crash.")

let fault_delay_arg =
  Arg.(value & opt float 0. & info [ "fault-delay" ] ~docv:"P"
         ~doc:"With --fault-seed: per-site probability of an extra sub-millisecond delay.")

let fault_sites_conv =
  let parse s =
    let names = String.split_on_char ',' s in
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | name :: rest -> (
        match D.Fault.site_of_string (String.trim name) with
        | Some site -> go (site :: acc) rest
        | None ->
          Error
            (`Msg
               (Printf.sprintf
                  "unknown fault site %s (loop | flush | merge | quiesce | steal | \
                   checkpoint | recover)"
                  name)))
    in
    go [] names
  in
  let print fmt sites =
    Format.pp_print_string fmt (String.concat "," (List.map D.Fault.site_to_string sites))
  in
  Arg.conv (parse, print)

let fault_sites_arg =
  Arg.(value & opt (some fault_sites_conv) None & info [ "fault-sites" ] ~docv:"SITES"
         ~doc:"With --fault-seed: comma-separated list of sites where crashes may fire \
               (default: all of loop, flush, merge, quiesce, steal, checkpoint, recover).")

let fault_max_crashes_arg =
  Arg.(value & opt int 2 & info [ "fault-max-crashes" ] ~docv:"N"
         ~doc:"With --fault-seed: global budget of induced crashes (default 2).")

let checkpoint_every_arg =
  Arg.(value & opt int 0 & info [ "checkpoint-every" ] ~docv:"N"
         ~doc:"Cut a crash-recovery epoch every N fixpoint iterations (0 = off).  An epoch \
               is a consistent cut of the recursive stratum's state taken at a globally \
               quiescent point; after a worker crash the run can roll back to the last \
               committed epoch instead of aborting.")

let max_recoveries_arg =
  Arg.(value & opt int 0 & info [ "max-recoveries" ] ~docv:"N"
         ~doc:"Number of worker crashes a single run may recover from by rolling back to \
               the last committed epoch, replacing the crashed domain, and re-running \
               (0 = fail fast, the historical behavior).")

(* --- input assembly --- *)

let load_graph dataset rmat edges_file =
  match (dataset, rmat, edges_file) with
  | Some name, _, _ -> (
    match D.Datasets.find name with
    | Some e -> Ok (Lazy.force e.graph)
    | None -> Error (Printf.sprintf "unknown dataset %s" name))
  | None, Some n, _ -> Ok (D.Datasets.rmat n)
  | None, None, Some path -> (
    match D.Loader.edges_of_file path with
    | g -> Ok g
    | exception Failure msg -> Error (path ^ ": " ^ msg))
  | None, None, None -> Ok (D.Datasets.rmat 500)

let edb_for_query (spec : D.Queries.spec) graph =
  match spec.name with
  | "cc" -> D.Queries.arc_sym_edb graph
  | "sssp" | "apsp" -> D.Queries.warc_edb graph
  | "pagerank" -> D.Queries.matrix_edb graph
  | "delivery" ->
    let tree, basics = D.Datasets.bom (max 100 (D.Graph.edge_count graph / 10)) in
    D.Queries.delivery_edb tree basics
  | "attend" ->
    let g, orgs = D.Gen.friendship ~seed:1 ~people:(max 10 (D.Graph.max_vertex graph + 1))
        ~avg_friends:8 ~organizers:5
    in
    D.Queries.attend_edb g orgs
  | _ -> D.Queries.arc_edb graph

let resolve_source query program =
  match (query, program) with
  | Some q, None -> (
    match D.Queries.find q with
    | Some spec -> Ok (spec.source, spec.default_params, Some spec)
    | None -> Error (Printf.sprintf "unknown query %s (try: dcdatalog list)" q))
  | None, Some file ->
    let ic = open_in file in
    let n = in_channel_length ic in
    let src = really_input_string ic n in
    close_in ic;
    Ok (src, [], None)
  | Some _, Some _ -> Error "--query and --program are mutually exclusive"
  | None, None -> Error "one of --query or --program is required"

(* --- commands --- *)

let run_cmd query program dataset rmat edges_file edb_files workers strategy no_steal unopt
    merge params show stats timeout stall_window checkpoint_every max_recoveries fault_seed
    fault_crash fault_delay fault_sites fault_max_crashes =
  if workers < 1 then input_error "--workers must be at least 1"
  else if checkpoint_every < 0 then input_error "--checkpoint-every must be non-negative"
  else if max_recoveries < 0 then input_error "--max-recoveries must be non-negative"
  else
  match (resolve_source query program, load_graph dataset rmat edges_file) with
  | Error e, _ | _, Error e -> input_error e
  | Ok (source, default_params, spec), Ok graph -> (
    (* precedence (assoc lookups take the first match): explicit --param,
       then values computed from the input, then the query's defaults *)
    let computed =
      match spec with
      | Some { D.Queries.name = "pagerank"; _ } -> [ ("vnum", D.Graph.max_vertex graph + 1) ]
      | _ -> []
    in
    let params = params @ computed @ default_params in
    match D.prepare ~params source with
    | Error e -> program_error e
    | Ok prepared -> (
        let edb =
          match spec with
          | Some spec -> edb_for_query spec graph
          | None -> D.Queries.arc_edb graph @ D.Queries.warc_edb graph
        in
        match
          List.fold_left
            (fun edb (rel, path) ->
              match edb with
              | Error _ -> edb
              | Ok acc -> (
                match D.Loader.tuples_of_file path with
                | tuples -> Ok ((rel, tuples) :: acc)
                | exception (Sys_error msg | Failure msg) -> Error msg))
            (Ok edb) edb_files
        with
        | Error msg -> input_error msg
        | Ok edb -> (
          let config =
            {
              D.default_config with
              workers;
              strategy;
              steal = not no_steal;
              merge;
              max_iterations = (match spec with Some s -> s.max_iterations | None -> 0);
              store_opts =
                (if unopt then D.Rec_store.unoptimized_opts else D.Rec_store.default_opts);
              checkpoint_every;
              max_recoveries;
              coord = { D.Coord.default_config with timeout; stall_window };
              fault =
                Option.map
                  (fun seed ->
                    {
                      D.Fault.off with
                      seed;
                      crash_prob = fault_crash;
                      delay_prob = fault_delay;
                      max_crashes = fault_max_crashes;
                      crash_sites =
                        (match fault_sites with
                        | Some sites -> sites
                        | None -> D.Fault.off.D.Fault.crash_sites);
                    })
                  fault_seed;
            }
          in
          let outcome, elapsed =
            Dcd_util.Clock.time (fun () -> D.try_run prepared ~edb ~config ())
          in
          match outcome with
          | Error (D.Engine_error.Cancelled _ as e) ->
            prerr_endline ("error: " ^ D.Engine_error.to_string e);
            exit_cancelled
          | Error (D.Engine_error.Worker_crashed _ as e) ->
            prerr_endline ("error: " ^ D.Engine_error.to_string e);
            exit_crashed
          | Error (D.Engine_error.Stalled diag as e) ->
            prerr_endline ("error: " ^ D.Engine_error.to_string e);
            Format.eprintf "%a@?" D.Engine_error.pp_diagnostic diag;
            exit_stalled
          | Ok result ->
            let output = match spec with Some s -> s.output | None -> "" in
            let outputs =
              if output <> "" then [ output ]
              else prepared.info.idb
            in
            List.iter
              (fun out ->
                Printf.printf "%s: %d tuples\n" out (D.relation_count result out);
                if show > 0 then
                  List.iteri
                    (fun i row ->
                      if i < show then
                        print_endline ("  " ^ String.concat ", " (List.map string_of_int row)))
                    (D.relation result out))
              outputs;
            Printf.printf "elapsed: %.3fs (%s, %d workers)\n" elapsed
              (D.Coord.to_string strategy) workers;
            if stats then Format.printf "%a" D.Run_stats.pp result.stats;
            0)))

(* --- resident serving (serve / repl subcommands) --- *)

let socket_arg =
  Arg.(value & opt string "dcdatalog.sock" & info [ "socket" ] ~docv:"PATH"
         ~doc:"Unix-domain socket path for $(b,dcdatalog serve).")

let request_timeout_arg =
  Arg.(value & opt (some float) None & info [ "request-timeout" ] ~docv:"SECS"
         ~doc:"Per-request deadline: bounds each scan and gates update-batch admission.")

(* Same input assembly as `run`, ending in a resident session instead of
   a one-shot evaluation. *)
let open_serving_session query program dataset rmat edges_file edb_files workers strategy
    no_steal unopt merge maintain_workers params k =
  if workers < 1 then input_error "--workers must be at least 1"
  else if maintain_workers < 0 then input_error "--maintain-workers must be non-negative"
  else
  match (resolve_source query program, load_graph dataset rmat edges_file) with
  | Error e, _ | _, Error e -> input_error e
  | Ok (source, default_params, spec), Ok graph -> (
    match spec with
    | Some s when s.D.Queries.max_iterations > 0 ->
      input_error
        (Printf.sprintf
           "%s converges only under bounded iterations and cannot be served incrementally"
           s.D.Queries.name)
    | _ -> (
      let computed =
        match spec with
        | Some { D.Queries.name = "pagerank"; _ } -> [ ("vnum", D.Graph.max_vertex graph + 1) ]
        | _ -> []
      in
      let params = params @ computed @ default_params in
      match D.prepare ~params source with
      | Error e -> program_error e
      | Ok prepared -> (
        let edb =
          match spec with
          | Some spec -> edb_for_query spec graph
          | None -> D.Queries.arc_edb graph @ D.Queries.warc_edb graph
        in
        match
          List.fold_left
            (fun edb (rel, path) ->
              match edb with
              | Error _ -> edb
              | Ok acc -> (
                match D.Loader.tuples_of_file path with
                | tuples -> Ok ((rel, tuples) :: acc)
                | exception (Sys_error msg | Failure msg) -> Error msg))
            (Ok edb) edb_files
        with
        | Error msg -> input_error msg
        | Ok edb -> (
          let config =
            {
              D.default_config with
              workers;
              strategy;
              steal = not no_steal;
              merge;
              maintain_workers;
              store_opts =
                (if unopt then D.Rec_store.unoptimized_opts else D.Rec_store.default_opts);
            }
          in
          match D.open_session prepared ~edb ~config () with
          | exception D.Engine_error.Error (D.Engine_error.Cancelled _ as e) ->
            prerr_endline ("error: " ^ D.Engine_error.to_string e);
            exit_cancelled
          | exception D.Engine_error.Error (D.Engine_error.Worker_crashed _ as e) ->
            prerr_endline ("error: " ^ D.Engine_error.to_string e);
            exit_crashed
          | exception D.Engine_error.Error (D.Engine_error.Stalled _ as e) ->
            prerr_endline ("error: " ^ D.Engine_error.to_string e);
            exit_stalled
          | exception Invalid_argument msg -> input_error msg
          | session ->
            Fun.protect ~finally:(fun () -> D.Session.close session) (fun () -> k session)))))

let repl_cmd query program dataset rmat edges_file edb_files workers strategy no_steal unopt
    merge maintain_workers params request_timeout =
  open_serving_session query program dataset rmat edges_file edb_files workers strategy
    no_steal unopt merge maintain_workers params (fun session ->
      let tty = Unix.isatty Unix.stdin in
      if tty then begin
        Printf.printf "dcdatalog repl — %d relations resident, version %d. 'help' lists commands.\n"
          (List.length (D.Session.predicates session))
          (D.Session.version session);
        flush stdout
      end;
      Dcd_serve.Serve.repl ?request_timeout ~prompt:tty session stdin stdout;
      0)

let serve_cmd query program dataset rmat edges_file edb_files workers strategy no_steal unopt
    merge maintain_workers params socket request_timeout =
  open_serving_session query program dataset rmat edges_file edb_files workers strategy
    no_steal unopt merge maintain_workers params (fun session ->
      let server = Dcd_serve.Serve.listen_unix ?request_timeout session ~path:socket in
      Printf.printf "serving on %s (version %d; EOF on stdin shuts down)\n" socket
        (D.Session.version session);
      flush stdout;
      (* the foreground stays a REPL too: handy for stats, and EOF is
         the shutdown signal *)
      Dcd_serve.Serve.repl ?request_timeout ~prompt:(Unix.isatty Unix.stdin) session stdin
        stdout;
      Dcd_serve.Serve.stop server;
      0)

let dot_arg =
  Arg.(value & flag & info [ "dot" ] ~doc:"Emit the plan as a Graphviz digraph instead of text.")

let explain_cmd query program params dot =
  match resolve_source query program with
  | Error e -> input_error e
  | Ok (source, default_params, _) -> (
    match D.prepare ~params:(default_params @ params) source with
    | Error e -> program_error e
    | Ok prepared ->
      if dot then print_string (D.Physical.to_dot prepared.plan)
      else begin
        print_endline (D.explain prepared);
        match D.Pcg.roots prepared.info with
        | root :: _ ->
          print_endline "AND/OR tree:";
          print_endline (D.pcg_string prepared ~root)
        | [] -> ()
      end;
      0)

let list_cmd () =
  print_endline "Built-in queries:";
  List.iter
    (fun (s : D.Queries.spec) -> Printf.printf "  %-10s %s\n" s.name s.description)
    D.Queries.all;
  print_endline "\nNamed datasets:";
  List.iter
    (fun (e : D.Datasets.entry) -> Printf.printf "  %-16s %s\n" e.name e.description)
    D.Datasets.all;
  print_endline "\nAlso: --rmat N generates the paper's RMAT-N family on the fly.";
  0

let run_term =
  Term.(
    const run_cmd $ query_arg $ program_arg $ dataset_arg $ rmat_arg $ edges_arg $ edb_arg
    $ workers_arg $ strategy_arg $ no_steal_arg $ unopt_arg $ merge_arg $ params_arg $ show_arg $ stats_arg $ timeout_arg
    $ stall_window_arg $ checkpoint_every_arg $ max_recoveries_arg $ fault_seed_arg
    $ fault_crash_arg $ fault_delay_arg $ fault_sites_arg $ fault_max_crashes_arg)

let explain_term = Term.(const explain_cmd $ query_arg $ program_arg $ params_arg $ dot_arg)

let repl_term =
  Term.(
    const repl_cmd $ query_arg $ program_arg $ dataset_arg $ rmat_arg $ edges_arg $ edb_arg
    $ workers_arg $ strategy_arg $ no_steal_arg $ unopt_arg $ merge_arg
    $ maintain_workers_arg $ params_arg $ request_timeout_arg)

let serve_term =
  Term.(
    const serve_cmd $ query_arg $ program_arg $ dataset_arg $ rmat_arg $ edges_arg $ edb_arg
    $ workers_arg $ strategy_arg $ no_steal_arg $ unopt_arg $ merge_arg
    $ maintain_workers_arg $ params_arg $ socket_arg $ request_timeout_arg)

let list_term = Term.(const list_cmd $ const ())

let () =
  Printexc.record_backtrace true;
  let info = Cmd.info "dcdatalog" ~doc:"Parallel recursive Datalog engine (SIGMOD 2022 reproduction)" in
  let cmds =
    Cmd.group info
      [
        Cmd.v (Cmd.info "run" ~doc:"Evaluate a query over a dataset") run_term;
        Cmd.v (Cmd.info "explain" ~doc:"Show the physical plan and AND/OR tree") explain_term;
        Cmd.v (Cmd.info "list" ~doc:"List built-in queries and datasets") list_term;
        Cmd.v
          (Cmd.info "repl"
             ~doc:"Keep the fixpoint resident and answer queries/updates interactively")
          repl_term;
        Cmd.v
          (Cmd.info "serve"
             ~doc:"Serve the resident fixpoint to concurrent clients on a Unix socket")
          serve_term;
      ]
  in
  exit (Cmd.eval' cmds)
