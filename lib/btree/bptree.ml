type key = int array

(* Top-level recursion: key comparison runs on every node descent, and
   a local [let rec] closure would be heap-allocated per comparison. *)
let rec compare_range (a : key) (b : key) i n =
  if i = n then 0
  else
    let c = Int.compare (Array.unsafe_get a i) (Array.unsafe_get b i) in
    if c <> 0 then c else compare_range a b (i + 1) n

let compare_key (a : key) (b : key) =
  let la = Array.length a and lb = Array.length b in
  let n = if la < lb then la else lb in
  let c = compare_range a b 0 n in
  if c <> 0 then c else Int.compare la lb

type 'a leaf = {
  mutable lkeys : key array;
  mutable lvals : 'a array;
  mutable ln : int;
  mutable next : 'a leaf option;
}

type 'a internal = {
  mutable ikeys : key array; (* separators; children.(i+1) holds keys >= ikeys.(i) *)
  mutable ichildren : 'a node array;
  mutable ik : int; (* number of separators; children count = ik + 1 *)
}

and 'a node =
  | Leaf of 'a leaf
  | Internal of 'a internal

type 'a t = {
  branching : int;
  mutable root : 'a node;
  mutable count : int;
  mutable version : int;
      (* bumped on every mutating entry point; cursors cache a leaf
         position and re-descend from the root when this moves *)
}

let dummy_key : key = [||]

let new_leaf b = { lkeys = Array.make b dummy_key; lvals = Array.make b (Obj.magic 0); ln = 0; next = None }

let new_internal b =
  { ikeys = Array.make b dummy_key; ichildren = Array.make (b + 1) (Obj.magic 0); ik = 0 }

let create ?(branching = 32) () =
  if branching < 4 then invalid_arg "Bptree.create: branching must be >= 4";
  { branching; root = Leaf (new_leaf branching); count = 0; version = 0 }

let length t = t.count

let is_empty t = t.count = 0

(* Number of separators [<= k]: index of the child to descend into. *)
let child_index node k =
  let lo = ref 0 and hi = ref node.ik in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if compare_key node.ikeys.(mid) k <= 0 then lo := mid + 1 else hi := mid
  done;
  !lo

(* Position of [k] in a leaf: [Ok i] if present at [i], [Error i] for the
   insertion point. *)
let leaf_search leaf k =
  let lo = ref 0 and hi = ref leaf.ln in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if compare_key leaf.lkeys.(mid) k < 0 then lo := mid + 1 else hi := mid
  done;
  let i = !lo in
  if i < leaf.ln && compare_key leaf.lkeys.(i) k = 0 then Ok i else Error i

let rec find_leaf node k =
  match node with
  | Leaf l -> l
  | Internal n -> find_leaf n.ichildren.(child_index n k) k

let find_opt t k =
  let l = find_leaf t.root k in
  match leaf_search l k with
  | Ok i -> Some l.lvals.(i)
  | Error _ -> None

let mem t k =
  let l = find_leaf t.root k in
  match leaf_search l k with Ok _ -> true | Error _ -> false

(* --- insertion (preemptive splitting on the way down) --- *)

let leaf_full t l = l.ln = t.branching

let internal_full t n = n.ik = t.branching - 1

(* Splits full leaf [l]; returns (separator, right sibling). *)
let split_leaf t l =
  let b = t.branching in
  let left_n = b / 2 in
  let right_n = b - left_n in
  let r = new_leaf b in
  Array.blit l.lkeys left_n r.lkeys 0 right_n;
  Array.blit l.lvals left_n r.lvals 0 right_n;
  Array.fill l.lkeys left_n right_n dummy_key;
  Array.fill l.lvals left_n right_n (Obj.magic 0);
  r.ln <- right_n;
  l.ln <- left_n;
  r.next <- l.next;
  l.next <- Some r;
  (r.lkeys.(0), r)

(* Splits full internal [n]; returns (separator moved up, right sibling). *)
let split_internal t n =
  let mid = n.ik / 2 in
  let sep = n.ikeys.(mid) in
  let r = new_internal t.branching in
  let right_keys = n.ik - mid - 1 in
  Array.blit n.ikeys (mid + 1) r.ikeys 0 right_keys;
  Array.blit n.ichildren (mid + 1) r.ichildren 0 (right_keys + 1);
  Array.fill n.ikeys mid (n.ik - mid) dummy_key;
  Array.fill n.ichildren (mid + 1) (n.ik - mid) (Obj.magic 0);
  r.ik <- right_keys;
  n.ik <- mid;
  (sep, r)

let insert_sep parent i sep child =
  Array.blit parent.ikeys i parent.ikeys (i + 1) (parent.ik - i);
  Array.blit parent.ichildren (i + 1) parent.ichildren (i + 2) (parent.ik - i);
  parent.ikeys.(i) <- sep;
  parent.ichildren.(i + 1) <- child;
  parent.ik <- parent.ik + 1

let split_root t =
  match t.root with
  | Leaf l when leaf_full t l ->
    let sep, r = split_leaf t l in
    let root = new_internal t.branching in
    root.ikeys.(0) <- sep;
    root.ichildren.(0) <- Leaf l;
    root.ichildren.(1) <- Leaf r;
    root.ik <- 1;
    t.root <- Internal root
  | Internal n when internal_full t n ->
    let sep, r = split_internal t n in
    let root = new_internal t.branching in
    root.ikeys.(0) <- sep;
    root.ichildren.(0) <- Internal n;
    root.ichildren.(1) <- Internal r;
    root.ik <- 1;
    t.root <- Internal root
  | _ -> ()

let upsert t k f =
  t.version <- t.version + 1;
  split_root t;
  let rec descend node =
    match node with
    | Leaf l -> begin
      match leaf_search l k with
      | Ok i -> l.lvals.(i) <- f (Some l.lvals.(i))
      | Error i ->
        (* run the callback before touching the leaf: if it raises, the
           tree must remain intact *)
        let v = f None in
        Array.blit l.lkeys i l.lkeys (i + 1) (l.ln - i);
        Array.blit l.lvals i l.lvals (i + 1) (l.ln - i);
        l.lkeys.(i) <- Array.copy k;
        l.lvals.(i) <- v;
        l.ln <- l.ln + 1;
        t.count <- t.count + 1
    end
    | Internal n ->
      let i = child_index n k in
      let child = n.ichildren.(i) in
      let child =
        match child with
        | Leaf l when leaf_full t l ->
          let sep, r = split_leaf t l in
          insert_sep n i sep (Leaf r);
          if compare_key k sep >= 0 then Leaf r else child
        | Internal c when internal_full t c ->
          let sep, r = split_internal t c in
          insert_sep n i sep (Internal r);
          if compare_key k sep >= 0 then Internal r else child
        | _ -> child
      in
      descend child
  in
  descend t.root

let insert t k v = upsert t k (fun _ -> v)

(* A single descent with preemptive splitting, like [upsert], but an
   existing binding is left untouched and reported via the return value
   — the primitive behind set-semantics merging, which otherwise needs
   a [mem] probe followed by an [insert] (two descents per candidate). *)
let add_if_absent t k v =
  t.version <- t.version + 1;
  split_root t;
  let rec descend node =
    match node with
    | Leaf l -> begin
      match leaf_search l k with
      | Ok _ -> false
      | Error i ->
        Array.blit l.lkeys i l.lkeys (i + 1) (l.ln - i);
        Array.blit l.lvals i l.lvals (i + 1) (l.ln - i);
        l.lkeys.(i) <- Array.copy k;
        l.lvals.(i) <- v;
        l.ln <- l.ln + 1;
        t.count <- t.count + 1;
        true
    end
    | Internal n ->
      let i = child_index n k in
      let child = n.ichildren.(i) in
      let child =
        match child with
        | Leaf l when leaf_full t l ->
          let sep, r = split_leaf t l in
          insert_sep n i sep (Leaf r);
          if compare_key k sep >= 0 then Leaf r else child
        | Internal c when internal_full t c ->
          let sep, r = split_internal t c in
          insert_sep n i sep (Internal r);
          if compare_key k sep >= 0 then Internal r else child
        | _ -> child
      in
      descend child
  in
  descend t.root

(* [add_if_absent] for callers whose value is scratch: the binding is
   materialized by [make] only on an actual insert, so a probe that
   finds an existing binding allocates nothing. *)
let add_if_absent_lazy t k make =
  t.version <- t.version + 1;
  split_root t;
  let rec descend node =
    match node with
    | Leaf l -> begin
      match leaf_search l k with
      | Ok _ -> None
      | Error i ->
        Array.blit l.lkeys i l.lkeys (i + 1) (l.ln - i);
        Array.blit l.lvals i l.lvals (i + 1) (l.ln - i);
        l.lkeys.(i) <- Array.copy k;
        let v = make () in
        l.lvals.(i) <- v;
        l.ln <- l.ln + 1;
        t.count <- t.count + 1;
        Some v
    end
    | Internal n ->
      let i = child_index n k in
      let child = n.ichildren.(i) in
      let child =
        match child with
        | Leaf l when leaf_full t l ->
          let sep, r = split_leaf t l in
          insert_sep n i sep (Leaf r);
          if compare_key k sep >= 0 then Leaf r else child
        | Internal c when internal_full t c ->
          let sep, r = split_internal t c in
          insert_sep n i sep (Internal r);
          if compare_key k sep >= 0 then Internal r else child
        | _ -> child
      in
      descend child
  in
  descend t.root

(* --- deletion (preemptive borrow/merge on the way down) --- *)

let leaf_min t = t.branching / 2

let internal_min t = (t.branching - 2) / 2 (* 2*min+1 <= b-1: preemptive merge cannot overflow *)

let remove t k =
  t.version <- t.version + 1;
  let removed = ref false in
  let rec descend node =
    match node with
    | Leaf l -> begin
      match leaf_search l k with
      | Error _ -> ()
      | Ok i ->
        Array.blit l.lkeys (i + 1) l.lkeys i (l.ln - i - 1);
        Array.blit l.lvals (i + 1) l.lvals i (l.ln - i - 1);
        l.lkeys.(l.ln - 1) <- dummy_key;
        l.lvals.(l.ln - 1) <- Obj.magic 0;
        l.ln <- l.ln - 1;
        t.count <- t.count - 1;
        removed := true
    end
    | Internal n ->
      let i = child_index n k in
      let i = ensure_roomy n i in
      descend n.ichildren.(i)
  and ensure_roomy n i =
    let child = n.ichildren.(i) in
    let is_leaf = match child with Leaf _ -> true | Internal _ -> false in
    let min_sz = if is_leaf then leaf_min t else internal_min t in
    let size c = match c with Leaf l -> l.ln | Internal m -> m.ik in
    if size child > min_sz then i
    else if i > 0 && size n.ichildren.(i - 1) > min_sz then begin
      borrow_left n i;
      i
    end
    else if i < n.ik && size n.ichildren.(i + 1) > min_sz then begin
      borrow_right n i;
      i
    end
    else if i > 0 then merge_at n (i - 1)
    else begin
      ignore (merge_at n i);
      i
    end
  and borrow_left n i =
    match (n.ichildren.(i - 1), n.ichildren.(i)) with
    | Leaf left, Leaf child ->
      Array.blit child.lkeys 0 child.lkeys 1 child.ln;
      Array.blit child.lvals 0 child.lvals 1 child.ln;
      child.lkeys.(0) <- left.lkeys.(left.ln - 1);
      child.lvals.(0) <- left.lvals.(left.ln - 1);
      left.lkeys.(left.ln - 1) <- dummy_key;
      left.lvals.(left.ln - 1) <- Obj.magic 0;
      left.ln <- left.ln - 1;
      child.ln <- child.ln + 1;
      n.ikeys.(i - 1) <- child.lkeys.(0)
    | Internal left, Internal child ->
      Array.blit child.ikeys 0 child.ikeys 1 child.ik;
      Array.blit child.ichildren 0 child.ichildren 1 (child.ik + 1);
      child.ikeys.(0) <- n.ikeys.(i - 1);
      child.ichildren.(0) <- left.ichildren.(left.ik);
      n.ikeys.(i - 1) <- left.ikeys.(left.ik - 1);
      left.ikeys.(left.ik - 1) <- dummy_key;
      left.ichildren.(left.ik) <- Obj.magic 0;
      left.ik <- left.ik - 1;
      child.ik <- child.ik + 1
    | _ -> assert false
  and borrow_right n i =
    match (n.ichildren.(i), n.ichildren.(i + 1)) with
    | Leaf child, Leaf right ->
      child.lkeys.(child.ln) <- right.lkeys.(0);
      child.lvals.(child.ln) <- right.lvals.(0);
      child.ln <- child.ln + 1;
      Array.blit right.lkeys 1 right.lkeys 0 (right.ln - 1);
      Array.blit right.lvals 1 right.lvals 0 (right.ln - 1);
      right.lkeys.(right.ln - 1) <- dummy_key;
      right.lvals.(right.ln - 1) <- Obj.magic 0;
      right.ln <- right.ln - 1;
      n.ikeys.(i) <- right.lkeys.(0)
    | Internal child, Internal right ->
      child.ikeys.(child.ik) <- n.ikeys.(i);
      child.ichildren.(child.ik + 1) <- right.ichildren.(0);
      child.ik <- child.ik + 1;
      n.ikeys.(i) <- right.ikeys.(0);
      Array.blit right.ikeys 1 right.ikeys 0 (right.ik - 1);
      Array.blit right.ichildren 1 right.ichildren 0 right.ik;
      right.ikeys.(right.ik - 1) <- dummy_key;
      right.ichildren.(right.ik) <- Obj.magic 0;
      right.ik <- right.ik - 1
    | _ -> assert false
  and merge_at n j =
    (match (n.ichildren.(j), n.ichildren.(j + 1)) with
    | Leaf left, Leaf right ->
      Array.blit right.lkeys 0 left.lkeys left.ln right.ln;
      Array.blit right.lvals 0 left.lvals left.ln right.ln;
      left.ln <- left.ln + right.ln;
      left.next <- right.next
    | Internal left, Internal right ->
      left.ikeys.(left.ik) <- n.ikeys.(j);
      Array.blit right.ikeys 0 left.ikeys (left.ik + 1) right.ik;
      Array.blit right.ichildren 0 left.ichildren (left.ik + 1) (right.ik + 1);
      left.ik <- left.ik + 1 + right.ik
    | _ -> assert false);
    Array.blit n.ikeys (j + 1) n.ikeys j (n.ik - j - 1);
    Array.blit n.ichildren (j + 2) n.ichildren (j + 1) (n.ik - j - 1);
    n.ikeys.(n.ik - 1) <- dummy_key;
    n.ichildren.(n.ik) <- Obj.magic 0;
    n.ik <- n.ik - 1;
    j
  in
  descend t.root;
  (* collapse a root that lost all separators *)
  (match t.root with
  | Internal n when n.ik = 0 -> t.root <- n.ichildren.(0)
  | _ -> ());
  !removed

(* --- traversal --- *)

let rec leftmost_leaf = function
  | Leaf l -> l
  | Internal n -> leftmost_leaf n.ichildren.(0)

let iter t f =
  let rec walk = function
    | None -> ()
    | Some l ->
      for i = 0 to l.ln - 1 do
        f l.lkeys.(i) l.lvals.(i)
      done;
      walk l.next
  in
  walk (Some (leftmost_leaf t.root))

let fold t ~init ~f =
  let acc = ref init in
  iter t (fun k v -> acc := f !acc k v);
  !acc

let iter_range t ~lo ~hi f =
  let l = find_leaf t.root lo in
  let start = match leaf_search l lo with Ok i -> i | Error i -> i in
  let rec walk l i =
    if i < l.ln then begin
      let k = l.lkeys.(i) in
      if compare_key k hi < 0 then begin
        f k l.lvals.(i);
        walk l (i + 1)
      end
    end
    else match l.next with None -> () | Some l' -> walk l' 0
  in
  walk l start

let rec prefix_loop (prefix : key) (k : key) i lp =
  i = lp || (k.(i) = prefix.(i) && prefix_loop prefix k (i + 1) lp)

let prefix_matches prefix k =
  let lp = Array.length prefix in
  Array.length k >= lp && prefix_loop prefix k 0 lp

let iter_prefix t ~prefix f =
  let l = find_leaf t.root prefix in
  let start = match leaf_search l prefix with Ok i -> i | Error i -> i in
  let rec walk l i =
    if i < l.ln then begin
      let k = l.lkeys.(i) in
      if prefix_matches prefix k then begin
        f k l.lvals.(i);
        walk l (i + 1)
      end
    end
    else match l.next with None -> () | Some l' -> walk l' 0
  in
  walk l start

let min_binding t =
  let l = leftmost_leaf t.root in
  if l.ln = 0 then None else Some (l.lkeys.(0), l.lvals.(0))

let max_binding t =
  let rec rightmost = function
    | Leaf l -> l
    | Internal n -> rightmost n.ichildren.(n.ik)
  in
  let l = rightmost t.root in
  if l.ln = 0 then None else Some (l.lkeys.(l.ln - 1), l.lvals.(l.ln - 1))

let to_list t = List.rev (fold t ~init:[] ~f:(fun acc k v -> (k, v) :: acc))

(* --- sorted cursors (leapfrog substrate) --- *)

(* A cursor caches its leaf + slot so that the monotone forward seeks a
   leapfrog join performs resolve with one in-leaf binary search instead
   of a root descent whenever the target still lands in the current
   leaf.  Staleness is detected with the tree's [version]: any mutation
   bumps it, and a stale cursor re-descends from the root.  [ckey] holds
   the key *object* at the current position — key arrays are only ever
   moved between slots, never mutated in place, so the reference stays a
   valid search target across splits, merges and blits. *)
type 'a cursor = {
  ctree : 'a t;
  mutable cversion : int;
  mutable cleaf : 'a leaf option; (* None = not positioned / exhausted *)
  mutable cidx : int;
  mutable ckey : key;
}

let cursor t = { ctree = t; cversion = t.version - 1; cleaf = None; cidx = 0; ckey = dummy_key }

let cursor_at_slot c l i =
  c.cleaf <- Some l;
  c.cidx <- i;
  c.ckey <- l.lkeys.(i);
  true

let cursor_exhaust c =
  c.cleaf <- None;
  c.cidx <- 0;
  false

(* Full root descent; also re-syncs the cursor's version. *)
let seek_slow c k =
  let t = c.ctree in
  c.cversion <- t.version;
  let l = find_leaf t.root k in
  let i = match leaf_search l k with Ok i -> i | Error i -> i in
  if i < l.ln then cursor_at_slot c l i
  else
    (* the insertion point sits past this leaf's last key; the first key
       of the next leaf (if any) is the answer — non-root leaves are
       never empty, so one hop suffices *)
    match l.next with
    | Some l' when l'.ln > 0 -> cursor_at_slot c l' 0
    | _ -> cursor_exhaust c

let seek_geq c k =
  let t = c.ctree in
  if c.cversion <> t.version then seek_slow c k
  else
    match c.cleaf with
    | Some l
      when c.cidx < l.ln
           && compare_key l.lkeys.(c.cidx) k <= 0
           && compare_key l.lkeys.(l.ln - 1) k >= 0 ->
      (* forward seek landing in the current leaf: binary search the
         suffix [cidx, ln) *)
      let lo = ref c.cidx and hi = ref l.ln in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if compare_key l.lkeys.(mid) k < 0 then lo := mid + 1 else hi := mid
      done;
      cursor_at_slot c l !lo
    | _ -> seek_slow c k

let cursor_positioned c = c.cleaf <> None

let cursor_key c =
  match c.cleaf with
  | None -> invalid_arg "Bptree.cursor_key: cursor not positioned"
  | Some _ -> c.ckey

let cursor_value c =
  match c.cleaf with
  | None -> invalid_arg "Bptree.cursor_value: cursor not positioned"
  | Some l ->
    if c.cversion <> c.ctree.version then begin
      (* the slot may have been blitted away; re-locate our key *)
      ignore (seek_slow c c.ckey);
      match c.cleaf with
      | Some l' -> l'.lvals.(c.cidx)
      | None -> invalid_arg "Bptree.cursor_value: key vanished under cursor"
    end
    else l.lvals.(c.cidx)

let rec cursor_next c =
  match c.cleaf with
  | None -> false
  | Some l ->
    if c.cversion = c.ctree.version then begin
      let i = c.cidx + 1 in
      if i < l.ln then cursor_at_slot c l i
      else
        match l.next with
        | Some l' when l'.ln > 0 -> cursor_at_slot c l' 0
        | _ -> cursor_exhaust c
    end
    else begin
      (* interleaved mutation: resume from the remembered key.  If the
         key still exists we land on it and must step once more; if it
         was removed we land on its successor, which is the answer. *)
      let here = c.ckey in
      if not (seek_slow c here) then false
      else if compare_key c.ckey here = 0 then cursor_next c
      else true
    end

(* --- bulk construction (of_sorted, merge_sorted_slice) --- *)

(* The group count is clamped so that even spreading can neither
   overflow capacity nor underflow the minimum fill (a single group is
   always legal: it becomes the root or hangs under one). *)
let clamp_groups ~items ~target ~cap ~min_fill =
  let lo = (items + cap - 1) / cap in
  let hi = max 1 (items / min_fill) in
  max lo (min hi (max 1 ((items + target - 1) / target)))

(* Builds internal levels at ~3/4 fill over [entries] — ascending
   (subtree min key, node) pairs — until one node remains.  The first
   entry's min key is never consulted (only entries [> 0] supply
   separators), so callers may pass [dummy_key] for it. *)
let build_internal_levels ~branching entries =
  let per_node = max ((branching + 1) / 2) (branching * 3 / 4) in
  (* min children of a non-root internal node = internal_min + 1 *)
  let min_children = ((branching - 2) / 2) + 1 in
  let level = ref entries in
  while Array.length !level > 1 do
    let cur = !level in
    let m = Array.length cur in
    let nparents = clamp_groups ~items:m ~target:per_node ~cap:branching ~min_fill:min_children in
    let parents = Array.make nparents (dummy_key, Leaf (new_leaf branching)) in
    let pos = ref 0 in
    for pi = 0 to nparents - 1 do
      let node = new_internal branching in
      let remaining = m - !pos in
      let parents_left = nparents - pi in
      let take = (remaining + parents_left - 1) / parents_left in
      for j = 0 to take - 1 do
        let min_k, child = cur.(!pos + j) in
        node.ichildren.(j) <- child;
        if j > 0 then node.ikeys.(j - 1) <- min_k
      done;
      node.ik <- take - 1;
      parents.(pi) <- (fst cur.(!pos), Internal node);
      pos := !pos + take
    done;
    level := parents
  done;
  snd (!level).(0)

let of_sorted ?(branching = 32) entries =
  if branching < 4 then invalid_arg "Bptree.of_sorted";
  let n = Array.length entries in
  for i = 1 to n - 1 do
    if compare_key (fst entries.(i - 1)) (fst entries.(i)) >= 0 then
      invalid_arg "Bptree.of_sorted: keys must be strictly increasing"
  done;
  let t = create ~branching () in
  if n = 0 then t
  else begin
    (* Build the leaf level at ~3/4 fill, then internal levels on top. *)
    let per_leaf = max (branching / 2) (branching * 3 / 4) in
    let nleaves =
      clamp_groups ~items:n ~target:per_leaf ~cap:branching ~min_fill:(max 1 (branching / 2))
    in
    let leaves = Array.make nleaves (new_leaf branching) in
    let pos = ref 0 in
    for li = 0 to nleaves - 1 do
      let l = new_leaf branching in
      let remaining = n - !pos in
      let leaves_left = nleaves - li in
      (* spread remainder so no leaf underflows *)
      let take = (remaining + leaves_left - 1) / leaves_left in
      for j = 0 to take - 1 do
        let k, v = entries.(!pos + j) in
        l.lkeys.(j) <- Array.copy k;
        l.lvals.(j) <- v
      done;
      l.ln <- take;
      pos := !pos + take;
      leaves.(li) <- l;
      if li > 0 then leaves.(li - 1).next <- Some l
    done;
    (* minimum key of each node, used as separators one level up *)
    t.root <- build_internal_levels ~branching (Array.map (fun l -> (l.lkeys.(0), Leaf l)) leaves);
    t.count <- n;
    t
  end

(* Batch-sorted merge: folds a strictly-increasing run of keys into the
   tree with ONE root descent per leaf *segment* (the maximal run prefix
   that belongs to the current leaf), instead of one descent per key.
   Each descent records the internal path and the tightest right-hand
   separator bound seen on the way down — run keys at or past that bound
   belong to a later leaf and must re-descend even if they would
   physically fit here, or the separator invariant breaks.  A segment is
   merged co-sequentially with the leaf's entries into scratch; if the
   result overflows, the leaf is rebuilt as k siblings at ~3/4 fill and
   the new (min key, leaf) pairs are spliced into the parent path with
   cascading bulk internal splits ([of_sorted]-style level building when
   the root itself overflows). *)
let merge_sorted_slice t ~n ~key:keyf ~merge =
  if n < 0 then invalid_arg "Bptree.merge_sorted_slice";
  if n > 0 then begin
    t.version <- t.version + 1;
    let b = t.branching in
    let per_leaf = max (b / 2) (b * 3 / 4) in
    let leaf_min_fill = max 1 (b / 2) in
    let internal_min_children = ((b - 2) / 2) + 1 in
    let per_node_children = max internal_min_children (b * 3 / 4) in
    (* descent path, root first: internal node + child index taken *)
    let path_nodes : 'a internal array = Array.make 64 (Obj.magic 0) in
    let path_idx = Array.make 64 0 in
    (* Splice [news] — ascending (separator, node) pairs — as new right
       siblings after child [path_idx.(d)] of [path_nodes.(d)],
       rebuilding (and bulk-splitting) upward as needed.  [d = -1] grows
       the tree above the current root. *)
    let rec splice_up d (news : (key * 'a node) array) =
      let added = Array.length news in
      if added = 0 then ()
      else if d < 0 then begin
        let entries = Array.make (1 + added) (dummy_key, t.root) in
        Array.blit news 0 entries 1 added;
        t.root <- build_internal_levels ~branching:b entries
      end
      else begin
        let p = path_nodes.(d) and ci = path_idx.(d) in
        if p.ik + added <= b - 1 then begin
          (* fits: shift the tail right and write the new entries *)
          Array.blit p.ikeys ci p.ikeys (ci + added) (p.ik - ci);
          Array.blit p.ichildren (ci + 1) p.ichildren (ci + 1 + added) (p.ik - ci);
          for j = 0 to added - 1 do
            let sep, node = news.(j) in
            p.ikeys.(ci + j) <- sep;
            p.ichildren.(ci + 1 + j) <- node
          done;
          p.ik <- p.ik + added
        end
        else begin
          (* overflow: regroup the spliced child list into sibling
             internals at ~3/4 fill; [p] keeps the first group (its
             subtree min key is unchanged), the rest are promoted *)
          let old_ik = p.ik in
          let c_total = old_ik + 1 + added in
          let children = Array.make c_total (Obj.magic 0 : 'a node) in
          (* seps.(i) separates children.(i-1) and children.(i); (0) unused *)
          let seps = Array.make c_total dummy_key in
          Array.blit p.ichildren 0 children 0 (ci + 1);
          Array.blit p.ikeys 0 seps 1 ci;
          for j = 0 to added - 1 do
            let sep, node = news.(j) in
            seps.(ci + 1 + j) <- sep;
            children.(ci + 1 + j) <- node
          done;
          Array.blit p.ichildren (ci + 1) children (ci + 1 + added) (old_ik - ci);
          Array.blit p.ikeys ci seps (ci + 1 + added) (old_ik - ci);
          let ngroups =
            clamp_groups ~items:c_total ~target:per_node_children ~cap:b
              ~min_fill:internal_min_children
          in
          let promoted = Array.make (ngroups - 1) (dummy_key, (Obj.magic 0 : 'a node)) in
          let pos = ref 0 in
          for g = 0 to ngroups - 1 do
            let remaining = c_total - !pos in
            let groups_left = ngroups - g in
            let take = (remaining + groups_left - 1) / groups_left in
            if g = 0 then begin
              for j = 0 to take - 1 do
                p.ichildren.(j) <- children.(!pos + j);
                if j > 0 then p.ikeys.(j - 1) <- seps.(!pos + j)
              done;
              for j = take - 1 to old_ik - 1 do
                p.ikeys.(j) <- dummy_key
              done;
              for j = take to old_ik do
                p.ichildren.(j) <- (Obj.magic 0 : 'a node)
              done;
              p.ik <- take - 1
            end
            else begin
              let node = new_internal b in
              for j = 0 to take - 1 do
                node.ichildren.(j) <- children.(!pos + j);
                if j > 0 then node.ikeys.(j - 1) <- seps.(!pos + j)
              done;
              node.ik <- take - 1;
              promoted.(g - 1) <- (seps.(!pos), Internal node)
            end;
            pos := !pos + take
          done;
          splice_up (d - 1) promoted
        end
      end
    in
    let inserted = ref 0 in
    let i = ref 0 in
    while !i < n do
      let k0 = keyf !i in
      let depth = ref 0 in
      let ub = ref dummy_key in
      let has_ub = ref false in
      let rec down = function
        | Leaf l -> l
        | Internal nd ->
          let ci = child_index nd k0 in
          path_nodes.(!depth) <- nd;
          path_idx.(!depth) <- ci;
          incr depth;
          (* deeper bounds nest inside shallower ones, so the last
             assignment is the tightest *)
          if ci < nd.ik then begin
            ub := nd.ikeys.(ci);
            has_ub := true
          end;
          down nd.ichildren.(ci)
      in
      let leaf = down t.root in
      (* segment end: the first run index whose key falls past the bound *)
      let stop = ref (!i + 1) in
      if !has_ub then begin
        let u = !ub in
        while !stop < n && compare_key (keyf !stop) u < 0 do
          incr stop
        done
      end
      else stop := n;
      let stop = !stop in
      (* co-sequential merge of leaf entries and the run segment *)
      let ln = leaf.ln in
      let mk = Array.make (ln + (stop - !i)) dummy_key in
      let mv = Array.make (ln + (stop - !i)) (Obj.magic 0 : 'a) in
      let m = ref 0 in
      let p = ref 0 and q = ref !i in
      while !p < ln && !q < stop do
        let kq = keyf !q in
        let c = compare_key leaf.lkeys.(!p) kq in
        if c < 0 then begin
          mk.(!m) <- leaf.lkeys.(!p);
          mv.(!m) <- leaf.lvals.(!p);
          incr m;
          incr p
        end
        else if c = 0 then begin
          let v0 = leaf.lvals.(!p) in
          let v = match merge !q (Some v0) with Some v -> v | None -> v0 in
          mk.(!m) <- leaf.lkeys.(!p);
          mv.(!m) <- v;
          incr m;
          incr p;
          incr q
        end
        else begin
          (match merge !q None with
          | Some v ->
            mk.(!m) <- kq;
            mv.(!m) <- v;
            incr m;
            incr inserted
          | None -> ());
          incr q
        end
      done;
      while !p < ln do
        mk.(!m) <- leaf.lkeys.(!p);
        mv.(!m) <- leaf.lvals.(!p);
        incr m;
        incr p
      done;
      while !q < stop do
        (match merge !q None with
        | Some v ->
          mk.(!m) <- keyf !q;
          mv.(!m) <- v;
          incr m;
          incr inserted
        | None -> ());
        incr q
      done;
      let m = !m in
      if m <= b then begin
        (* fits in place; [m >= ln] always (no removals), so slots past
           [m] are already clear *)
        Array.blit mk 0 leaf.lkeys 0 m;
        Array.blit mv 0 leaf.lvals 0 m;
        leaf.ln <- m
      end
      else begin
        (* bulk leaf split: rebuild this leaf plus fresh right siblings
           at ~3/4 fill, relink the chain, splice the new (min key,
           leaf) pairs into the parent path *)
        let nl = clamp_groups ~items:m ~target:per_leaf ~cap:b ~min_fill:leaf_min_fill in
        let old_next = leaf.next in
        let news = Array.make (nl - 1) (dummy_key, (Obj.magic 0 : 'a node)) in
        let pos = ref 0 in
        let prev = ref leaf in
        for li = 0 to nl - 1 do
          let l = if li = 0 then leaf else new_leaf b in
          let remaining = m - !pos in
          let leaves_left = nl - li in
          let take = (remaining + leaves_left - 1) / leaves_left in
          Array.blit mk !pos l.lkeys 0 take;
          Array.blit mv !pos l.lvals 0 take;
          if li = 0 then
            for x = take to b - 1 do
              l.lkeys.(x) <- dummy_key;
              l.lvals.(x) <- (Obj.magic 0 : 'a)
            done;
          l.ln <- take;
          if li > 0 then begin
            (!prev).next <- Some l;
            news.(li - 1) <- (l.lkeys.(0), Leaf l)
          end;
          prev := l;
          pos := !pos + take
        done;
        (!prev).next <- old_next;
        splice_up (!depth - 1) news
      end;
      i := stop
    done;
    t.count <- t.count + !inserted
  end

(* --- invariant checking --- *)

let check_invariants t =
  let fail fmt = Printf.ksprintf failwith fmt in
  let counted = ref 0 in
  let is_root n = n == t.root in
  (* returns (depth, min_key, max_key) *)
  let rec check node lo hi =
    match node with
    | Leaf l ->
      if l.ln = 0 && not (is_root node) then fail "empty non-root leaf";
      if (not (is_root node)) && l.ln < leaf_min t then
        fail "leaf underflow: %d < %d" l.ln (leaf_min t);
      if l.ln > t.branching then fail "leaf overflow";
      for i = 0 to l.ln - 1 do
        incr counted;
        if i > 0 && compare_key l.lkeys.(i - 1) l.lkeys.(i) >= 0 then fail "leaf keys out of order";
        (match lo with
        | Some b when compare_key l.lkeys.(i) b < 0 -> fail "leaf key below lower bound"
        | _ -> ());
        match hi with
        | Some b when compare_key l.lkeys.(i) b >= 0 -> fail "leaf key above upper bound"
        | _ -> ()
      done;
      1
    | Internal n ->
      if n.ik < 1 then fail "internal node without separators";
      if (not (is_root node)) && n.ik < internal_min t then
        fail "internal underflow: %d < %d" n.ik (internal_min t);
      if n.ik > t.branching - 1 then fail "internal overflow";
      for i = 1 to n.ik - 1 do
        if compare_key n.ikeys.(i - 1) n.ikeys.(i) >= 0 then fail "separators out of order"
      done;
      let depth = ref 0 in
      for i = 0 to n.ik do
        let lo_i = if i = 0 then lo else Some n.ikeys.(i - 1) in
        let hi_i = if i = n.ik then hi else Some n.ikeys.(i) in
        let d = check n.ichildren.(i) lo_i hi_i in
        if i = 0 then depth := d
        else if d <> !depth then fail "non-uniform depth"
      done;
      !depth + 1
  in
  ignore (check t.root None None);
  if !counted <> t.count then fail "count mismatch: counted %d, recorded %d" !counted t.count;
  (* the leaf chain must enumerate exactly the same number of keys in order *)
  let chain = ref 0 in
  let prev = ref None in
  let rec walk = function
    | None -> ()
    | Some l ->
      for i = 0 to l.ln - 1 do
        (match !prev with
        | Some p when compare_key p l.lkeys.(i) >= 0 -> fail "leaf chain out of order"
        | _ -> ());
        prev := Some l.lkeys.(i);
        incr chain
      done;
      walk l.next
  in
  walk (Some (leftmost_leaf t.root));
  if !chain <> t.count then fail "leaf chain length mismatch"
