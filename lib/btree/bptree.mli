(** B⁺-tree over composite integer keys (paper §3, Storage Layer).

    The recursive relations of DCDatalog are indexed by a B⁺-tree on the
    partition/join key; aggregates also use it to locate the current value
    for a group key (§6.2.1).  Keys are [int array]s compared
    lexicographically (shorter array = prefix = smaller when equal so
    far), values are arbitrary.  All key arrays handed to the tree are
    copied defensively on insert, so callers may reuse scratch buffers.

    Not thread-safe: in the engine each worker owns the tree for its own
    partition exclusively, which is precisely the design point of the
    partitioned evaluation (§2.2) — no concurrent index needed. *)

type 'a t

type key = int array

val compare_key : key -> key -> int
(** Lexicographic order; a strict prefix sorts first. *)

val create : ?branching:int -> unit -> 'a t
(** [branching] is the max number of children of an internal node
    (default 32). @raise Invalid_argument if [branching < 4]. *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val insert : 'a t -> key -> 'a -> unit
(** [insert t k v] maps [k] to [v], replacing any previous binding. *)

val add_if_absent : 'a t -> key -> 'a -> bool
(** [add_if_absent t k v] binds [k] to [v] and returns [true] iff no
    binding existed; an existing binding is left untouched and [false]
    is returned.  One descent either way — the set-semantics merge
    primitive, replacing the [mem]-then-[insert] double descent. *)

val add_if_absent_lazy : 'a t -> key -> (unit -> 'a) -> 'a option
(** [add_if_absent_lazy t k make] is {!add_if_absent} with the value
    materialized only on an actual insert; returns [Some v] (the stored
    value) iff [k] was absent.  The probe path allocates nothing, which
    lets callers pass scratch-backed candidates and copy on retention. *)

val upsert : 'a t -> key -> ('a option -> 'a) -> unit
(** [upsert t k f] binds [k] to [f (find_opt t k)] with a single
    descent.  This is the primitive behind monotone aggregate merging:
    [f] receives the current aggregate for the group key and returns the
    merged one. *)

val find_opt : 'a t -> key -> 'a option

val mem : 'a t -> key -> bool

val remove : 'a t -> key -> bool
(** [remove t k] deletes the binding if present; returns whether a
    binding was removed.  Rebalances (borrow/merge) to keep all nodes at
    least half full. *)

val iter : 'a t -> (key -> 'a -> unit) -> unit
(** In ascending key order. *)

val fold : 'a t -> init:'acc -> f:('acc -> key -> 'a -> 'acc) -> 'acc

val iter_range : 'a t -> lo:key -> hi:key -> (key -> 'a -> unit) -> unit
(** All bindings with [lo <= k < hi], ascending. *)

val iter_prefix : 'a t -> prefix:key -> (key -> 'a -> unit) -> unit
(** All bindings whose key starts with [prefix], ascending. *)

(** {2 Sorted cursors}

    The substrate for leapfrog-style generic joins: a cursor supports
    monotone [seek_geq] probes that resolve with a single in-leaf binary
    search when the target lands in the current leaf, falling back to a
    root descent otherwise.  Cursors survive interleaved mutation: every
    mutating operation bumps an internal version counter, and a stale
    cursor transparently re-positions from the root using the key it was
    parked on (so a [seek_geq]/[cursor_next] sequence over a tree being
    concurrently grown by its single owner never observes torn state —
    it resumes at the remembered key's successor). *)

type 'a cursor

val cursor : 'a t -> 'a cursor
(** A fresh, unpositioned cursor.  Position it with {!seek_geq}. *)

val seek_geq : 'a cursor -> key -> bool
(** [seek_geq c k] positions [c] on the smallest key [>= k]; returns
    [false] (and exhausts the cursor) if every key is [< k].  Because a
    strict prefix sorts before its extensions, seeking a prefix lands on
    the first key carrying that prefix, which is how trie-level descent
    is expressed over the flattened composite keys. *)

val cursor_positioned : 'a cursor -> bool

val cursor_key : 'a cursor -> key
(** Current key. @raise Invalid_argument when not positioned. *)

val cursor_value : 'a cursor -> 'a
(** Current value. @raise Invalid_argument when not positioned. *)

val cursor_next : 'a cursor -> bool
(** Advance to the successor key; [false] exhausts the cursor.  After an
    interleaved mutation, resumes at the successor of the key the cursor
    was parked on. *)

val min_binding : 'a t -> (key * 'a) option

val max_binding : 'a t -> (key * 'a) option

val to_list : 'a t -> (key * 'a) list

val of_sorted : ?branching:int -> (key * 'a) array -> 'a t
(** Bulk load from a strictly-sorted array of distinct keys; O(n).
    @raise Invalid_argument if the input is not strictly sorted. *)

val merge_sorted_slice :
  'a t -> n:int -> key:(int -> key) -> merge:(int -> 'a option -> 'a option) -> unit
(** [merge_sorted_slice t ~n ~key ~merge] folds a {e strictly
    increasing} run of [n] keys into the tree with one root descent per
    leaf {e segment} instead of one per key: the leaf chain is walked
    co-sequentially with the run, leaves are rewritten in place when the
    merged result fits, and overflowing leaves bulk-split into siblings
    at ~3/4 fill with cascading bulk internal splits up the recorded
    descent path ([of_sorted]-style level building when the root
    overflows).

    For each run index [i] (ascending, exactly once), [merge i cur] is
    called with the current binding of [key i] ([None] when absent) and
    decides the outcome: [Some v] binds [key i] to [v] (insert or
    overwrite), [None] leaves the tree untouched (no binding created, an
    existing one kept).  This single callback shape expresses both
    set-semantics merging ([None] on [Some _]) and monotone aggregate
    upserts.

    [key i] may be evaluated more than once per index and must be
    stable; on an actual insert the returned array is {e adopted}, not
    copied — callers must not mutate it afterwards (materialize fresh
    arrays, as the run-sorting layer does).

    An empty tree degenerates to a pure [of_sorted]-style bulk load.
    Cost: O(n + touched leaves · log-splits) descents instead of
    O(n · log |t|). *)

val check_invariants : 'a t -> unit
(** Asserts structural invariants (key order, node fill, uniform leaf
    depth, leaf chain consistency).  For tests. @raise Failure on
    violation. *)
