exception Poisoned

type t = {
  parties : int;
  mutex : Mutex.t;
  cond : Condition.t;
  mutable arrived : int;
  mutable generation : int;
  mutable poisoned : bool;
}

let create parties =
  if parties < 1 then invalid_arg "Barrier.create";
  {
    parties;
    mutex = Mutex.create ();
    cond = Condition.create ();
    arrived = 0;
    generation = 0;
    poisoned = false;
  }

let await t =
  Mutex.lock t.mutex;
  if t.poisoned then begin
    Mutex.unlock t.mutex;
    raise Poisoned
  end;
  let gen = t.generation in
  t.arrived <- t.arrived + 1;
  if t.arrived = t.parties then begin
    t.arrived <- 0;
    t.generation <- gen + 1;
    Condition.broadcast t.cond
  end
  else
    while t.generation = gen && not t.poisoned do
      Condition.wait t.cond t.mutex
    done;
  let poisoned = t.poisoned in
  Mutex.unlock t.mutex;
  if poisoned then raise Poisoned

(* Like [await], but a non-last arriver spins on [work] instead of
   blocking on the condition variable: the barrier tail becomes a place
   where useful work (morsel stealing) can happen.  [work] runs with the
   mutex released; it is expected to nap briefly itself when it finds
   nothing to do, so the generation re-check stays cheap. *)
let await_poll t work =
  Mutex.lock t.mutex;
  if t.poisoned then begin
    Mutex.unlock t.mutex;
    raise Poisoned
  end;
  let gen = t.generation in
  t.arrived <- t.arrived + 1;
  if t.arrived = t.parties then begin
    t.arrived <- 0;
    t.generation <- gen + 1;
    Condition.broadcast t.cond;
    Mutex.unlock t.mutex
  end
  else begin
    Mutex.unlock t.mutex;
    let released = ref false in
    while not !released do
      Mutex.lock t.mutex;
      let done_ = t.generation <> gen in
      let poisoned = t.poisoned in
      Mutex.unlock t.mutex;
      if poisoned then raise Poisoned;
      if done_ then released := true else work ()
    done
  end

(* Recovery reset: un-poisons a barrier whose round was abandoned.
   Only legal between rounds, when every party has been collected — a
   waiter that exited through [Poisoned] leaves its [arrived] increment
   behind, so the counter is cleared here rather than asserted zero. *)
let reset t =
  Mutex.lock t.mutex;
  t.poisoned <- false;
  t.arrived <- 0;
  t.generation <- 0;
  Mutex.unlock t.mutex

let poison t =
  Mutex.lock t.mutex;
  t.poisoned <- true;
  Condition.broadcast t.cond;
  Mutex.unlock t.mutex

let is_poisoned t =
  Mutex.lock t.mutex;
  let p = t.poisoned in
  Mutex.unlock t.mutex;
  p

let parties t = t.parties
