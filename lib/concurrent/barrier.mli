(** Reusable n-party barrier for the [Global] coordination strategy.

    Sense-reversing, blocking on a condition variable rather than
    spinning, because the whole point of the paper's comparison is the
    time workers spend idle at the barrier — a spin barrier would burn a
    core while "idle" and distort measurements on oversubscribed
    machines. *)

type t

exception Poisoned
(** Raised by {!await} (in every waiter, current and future) once the
    barrier has been {!poison}ed — a participant died and the round can
    never complete. *)

val create : int -> t
(** [create n] is a barrier for [n] parties. @raise Invalid_argument if
    [n < 1]. *)

val await : t -> unit
(** Blocks until all [n] parties have called [await] in the current
    generation, then releases them all. Reusable for further rounds.
    @raise Poisoned if the barrier is or becomes poisoned. *)

val await_poll : t -> (unit -> unit) -> unit
(** Like {!await}, but instead of blocking on the condition variable a
    non-last arriver repeatedly runs [work ()] (with the barrier mutex
    released) and re-checks the generation.  [work] should do something
    useful or nap briefly; it must not call back into this barrier.
    @raise Poisoned as {!await}. *)

val reset : t -> unit
(** Clears the poison (and the arrival count left behind by waiters
    that exited through {!Poisoned}) so the barrier can serve another
    round after a crashed attempt.  Recovery-only: the caller must
    guarantee every party has been collected first. *)

val poison : t -> unit
(** Marks the barrier broken and wakes every waiter with {!Poisoned}.
    Called by a worker that is about to die with an exception, so its
    peers do not block forever waiting for it. Idempotent. *)

val is_poisoned : t -> bool

val parties : t -> int
