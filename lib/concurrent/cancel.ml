module Clock = Dcd_util.Clock

type reason =
  | User
  | Deadline
  | Stall
  | Peer_crash

type t = {
  flag : bool Atomic.t;
  why : reason option Atomic.t;
  mutable deadline : float; (* absolute Clock.now seconds; infinity = none *)
}

let create ?deadline () =
  {
    flag = Atomic.make false;
    why = Atomic.make None;
    deadline = (match deadline with Some d -> d | None -> infinity);
  }

let cancel t reason =
  (* first caller wins; the recorded reason never changes afterwards *)
  if Atomic.compare_and_set t.flag false true then begin
    Atomic.set t.why (Some reason);
    true
  end
  else false

let is_set t = Atomic.get t.flag

let reason t = Atomic.get t.why

let arm_deadline t ~at = if at < t.deadline then t.deadline <- at

let deadline t = if t.deadline = infinity then None else Some t.deadline

let check t =
  Atomic.get t.flag
  ||
  (t.deadline < infinity
  && Clock.now () >= t.deadline
  &&
  (ignore (cancel t Deadline);
   true))

let reason_to_string = function
  | User -> "user"
  | Deadline -> "deadline"
  | Stall -> "stall"
  | Peer_crash -> "peer-crash"
