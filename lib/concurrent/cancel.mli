(** Cooperative cancellation token with an optional wall-clock deadline.

    One writer side ([cancel], first caller wins) and any number of
    polling readers.  The engine's strategy loops poll [check] once per
    local iteration: a set token makes every worker abandon the fixpoint
    at its next poll, so cancellation needs no signal delivery beyond a
    single atomic flag.  Deadlines are folded into the same token — a
    poll past the deadline self-cancels with reason [Deadline], so a
    timeout behaves exactly like an external cancel. *)

type reason =
  | User  (** external [cancel] by the caller *)
  | Deadline  (** the armed wall-clock deadline passed *)
  | Stall  (** the watchdog observed no progress for its window *)
  | Peer_crash  (** a worker died; peers are being torn down *)

type t

val create : ?deadline:float -> unit -> t
(** [deadline] is absolute, in {!Dcd_util.Clock.now} seconds. *)

val cancel : t -> reason -> bool
(** Sets the token.  Returns [true] for the first caller (whose reason
    sticks), [false] if it was already set. *)

val is_set : t -> bool
(** One atomic load; safe on the hot path. *)

val reason : t -> reason option

val arm_deadline : t -> at:float -> unit
(** Tightens the deadline to [at] if earlier than the current one.
    Call before the workers start polling. *)

val deadline : t -> float option

val check : t -> bool
(** [is_set], additionally self-cancelling with [Deadline] when the
    armed deadline has passed.  Reads the clock only when a deadline is
    armed. *)

val reason_to_string : reason -> string
