(** Unbounded single-producer single-consumer queue.

    A linked list of fixed-size chunks.  The producer owns the tail chunk
    and publishes elements by bumping the chunk's atomic committed count;
    the consumer owns the head chunk and follows [next] links once a full
    chunk is consumed.  Used for the DWS message buffers when delta
    batches can exceed any fixed ring capacity: unlike {!Spsc_queue} a
    push can never fail, so a producing worker never blocks on a slow
    consumer (which would reintroduce the coordination stall DWS is
    designed to remove).

    The engine enqueues whole {e batches} (one element per
    (copy, destination) flush carrying a vector of tuples), not
    individual tuples, so {!size} counts batches; tuple-denominated
    occupancy for the queueing model is tracked by the engine
    separately. *)

type 'a t

val create : ?chunk:int -> unit -> 'a t
(** [chunk] is the chunk capacity (default 256). *)

val push : 'a t -> 'a -> unit
(** Producer only. Never fails. *)

val try_pop : 'a t -> 'a option
(** Consumer only. *)

val drain : 'a t -> ('a -> unit) -> int
(** Consumer only. Pops all currently visible elements in FIFO order and
    returns how many were consumed. *)

val size : 'a t -> int
(** Approximate occupancy (exact when producer and consumer are quiescent). *)

val is_empty : 'a t -> bool
