type failure = {
  index : int;
  error : exn;
  backtrace : string;
}

let run_collect ~workers body =
  if workers < 1 then invalid_arg "Domain_pool.run_collect";
  let results : 'a option array = Array.make workers None in
  let errors : (exn * Printexc.raw_backtrace) option array = Array.make workers None in
  let wrap i () =
    match body i with
    | x -> results.(i) <- Some x
    | exception e -> errors.(i) <- Some (e, Printexc.get_raw_backtrace ())
  in
  let domains = Array.init (workers - 1) (fun k -> Domain.spawn (wrap (k + 1))) in
  wrap 0 ();
  Array.iter Domain.join domains;
  let failures = ref [] in
  for i = workers - 1 downto 0 do
    match errors.(i) with
    | Some (error, bt) ->
      failures :=
        { index = i; error; backtrace = Printexc.raw_backtrace_to_string bt } :: !failures
    | None -> ()
  done;
  match !failures with
  | [] ->
    Ok
      (Array.map
         (function
           | Some x -> x
           | None -> assert false)
         results)
  | fs -> Error fs

let run ~workers body =
  match run_collect ~workers body with
  | Ok results -> results
  | Error ({ error; _ } :: _) -> raise error
  | Error [] -> assert false

let recommended_workers () = max 1 (Domain.recommended_domain_count ())
