type failure = {
  index : int;
  error : exn;
  backtrace : string;
}

(* Process-wide count of domains spawned through this module (pool
   workers, fork-join workers, the watchdog guardian).  Tests assert the
   engine spawns exactly [workers] (+ watchdog) domains per run no
   matter how many strata it evaluates. *)
let spawned = Atomic.make 0

let spawn_counted f =
  Atomic.incr spawned;
  Domain.spawn f

let total_spawned () = Atomic.get spawned

(* --- one-shot fork-join --- *)

let run_collect ~workers body =
  if workers < 1 then invalid_arg "Domain_pool.run_collect";
  let results : 'a option array = Array.make workers None in
  let errors : (exn * Printexc.raw_backtrace) option array = Array.make workers None in
  let wrap i () =
    match body i with
    | x -> results.(i) <- Some x
    | exception e -> errors.(i) <- Some (e, Printexc.get_raw_backtrace ())
  in
  let domains = Array.init (workers - 1) (fun k -> spawn_counted (wrap (k + 1))) in
  wrap 0 ();
  Array.iter Domain.join domains;
  let failures = ref [] in
  for i = workers - 1 downto 0 do
    match errors.(i) with
    | Some (error, bt) ->
      failures :=
        { index = i; error; backtrace = Printexc.raw_backtrace_to_string bt } :: !failures
    | None -> ()
  done;
  match !failures with
  | [] ->
    Ok
      (Array.map
         (function
           | Some x -> x
           | None -> assert false)
         results)
  | fs -> Error fs

let run ~workers body =
  match run_collect ~workers body with
  | Ok results -> results
  | Error ({ error; _ } :: _) -> raise error
  | Error [] -> assert false

let recommended_workers () = max 1 (Domain.recommended_domain_count ())

(* --- persistent pool --- *)

(* One long-lived domain per worker index.  Jobs are delivered through
   per-worker slots under a single mutex/condition pair: [submit] fills
   every slot, broadcasts, and sleeps until the pending count returns to
   zero.  A worker that raises parks its exception (with backtrace) in
   its error cell and keeps looping, so one crashed round never poisons
   the pool itself — the next [submit] reuses the same domains.

   Memory ordering: a worker writes its error cell before taking the
   mutex to decrement [pending]; the submitter reads the cells only
   after observing [pending = 0] under the same mutex, so the mutex
   provides the happens-before edge.  Job closures themselves are free
   to share whatever synchronized state they like, exactly as
   [run_collect] bodies were. *)

type job =
  | Idle
  | Job of (int -> unit)
  | Quit

type t = {
  psize : int;
  mutex : Mutex.t;
  cond : Condition.t;
  slots : job array;
  errs : (exn * Printexc.raw_backtrace) option array;
  mutable pending : int;
  mutable live : bool;
  mutable domains : unit Domain.t array;
}

let rec next_job t i =
  match t.slots.(i) with
  | Idle ->
    Condition.wait t.cond t.mutex;
    next_job t i
  | Job f ->
    t.slots.(i) <- Idle;
    Some f
  | Quit -> None

let rec worker_loop t i =
  Mutex.lock t.mutex;
  let job = next_job t i in
  Mutex.unlock t.mutex;
  match job with
  | None -> ()
  | Some f ->
    (match f i with
    | () -> ()
    | exception e -> t.errs.(i) <- Some (e, Printexc.get_raw_backtrace ()));
    Mutex.lock t.mutex;
    t.pending <- t.pending - 1;
    Condition.broadcast t.cond;
    Mutex.unlock t.mutex;
    worker_loop t i

let create ~workers =
  if workers < 1 then invalid_arg "Domain_pool.create";
  let t =
    {
      psize = workers;
      mutex = Mutex.create ();
      cond = Condition.create ();
      slots = Array.make workers Idle;
      errs = Array.make workers None;
      pending = 0;
      live = true;
      domains = [||];
    }
  in
  t.domains <- Array.init workers (fun i -> spawn_counted (fun () -> worker_loop t i));
  t

let size t = t.psize

let submit t body =
  Mutex.lock t.mutex;
  if not t.live then begin
    Mutex.unlock t.mutex;
    invalid_arg "Domain_pool.submit: pool is shut down"
  end;
  Array.fill t.errs 0 t.psize None;
  t.pending <- t.psize;
  for i = 0 to t.psize - 1 do
    t.slots.(i) <- Job body
  done;
  Condition.broadcast t.cond;
  while t.pending > 0 do
    Condition.wait t.cond t.mutex
  done;
  let failures = ref [] in
  for i = t.psize - 1 downto 0 do
    match t.errs.(i) with
    | Some (error, bt) ->
      failures :=
        { index = i; error; backtrace = Printexc.raw_backtrace_to_string bt } :: !failures
    | None -> ()
  done;
  Mutex.unlock t.mutex;
  match !failures with
  | [] -> Ok ()
  | fs -> Error fs

(* Recovery respawn: retire pool domain [i] and put a fresh domain in
   its slot.  The crashed round's body has already returned (its
   exception was parked and collected by [submit]), so the old domain is
   sitting in [next_job] waiting on Idle; a targeted Quit releases
   exactly it.  Bumps the spawn counter by one — the spawn-accounting
   invariant for a recovered run is [workers + watchdog + replacements].

   Only legal between rounds (never racing [submit]); the same
   single-owner discipline [submit]/[shutdown] already require. *)
let replace t i =
  if i < 0 || i >= t.psize then invalid_arg "Domain_pool.replace";
  Mutex.lock t.mutex;
  if not t.live then begin
    Mutex.unlock t.mutex;
    invalid_arg "Domain_pool.replace: pool is shut down"
  end;
  t.slots.(i) <- Quit;
  Condition.broadcast t.cond;
  Mutex.unlock t.mutex;
  Domain.join t.domains.(i);
  Mutex.lock t.mutex;
  t.slots.(i) <- Idle;
  t.errs.(i) <- None;
  Mutex.unlock t.mutex;
  t.domains.(i) <- spawn_counted (fun () -> worker_loop t i)

let shutdown t =
  Mutex.lock t.mutex;
  if not t.live then Mutex.unlock t.mutex
  else begin
    t.live <- false;
    (* [submit] only returns once pending = 0, so every slot is Idle *)
    for i = 0 to t.psize - 1 do
      t.slots.(i) <- Quit
    done;
    Condition.broadcast t.cond;
    Mutex.unlock t.mutex;
    Array.iter Domain.join t.domains
  end
