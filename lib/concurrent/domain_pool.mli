(** Fork–join execution of worker bodies on OCaml 5 domains. *)

type failure = {
  index : int;  (** worker whose body raised *)
  error : exn;
  backtrace : string;  (** from the raise site; empty unless
                           [Printexc.record_backtrace] is on *)
}

val run_collect : workers:int -> (int -> 'a) -> ('a array, failure list) result
(** [run_collect ~workers body] executes [body i] for each worker index
    [0 .. workers-1], worker 0 on the calling domain and the rest on
    fresh domains, joining them all before returning.  If any body
    raised, returns [Error failures] with {e every} worker's exception
    (ordered by worker index) — so a caller can tell the true origin of
    a cascade from peers that merely died of its poisoning. *)

val run : workers:int -> (int -> 'a) -> 'a array
(** Like {!run_collect} but returns the results directly, re-raising the
    first failure (by worker index) if any body raised. *)

val recommended_workers : unit -> int
(** [Domain.recommended_domain_count], at least 1. *)
