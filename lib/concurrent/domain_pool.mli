(** Execution of worker bodies on OCaml 5 domains: a one-shot fork-join
    helper and a persistent pool that reuses the same domains across
    many submitted rounds (one engine run spawns its workers once, then
    evaluates every stratum on them). *)

type failure = {
  index : int;  (** worker whose body raised *)
  error : exn;
  backtrace : string;  (** from the raise site; empty unless
                           [Printexc.record_backtrace] is on *)
}

val run_collect : workers:int -> (int -> 'a) -> ('a array, failure list) result
(** [run_collect ~workers body] executes [body i] for each worker index
    [0 .. workers-1], worker 0 on the calling domain and the rest on
    fresh domains, joining them all before returning.  If any body
    raised, returns [Error failures] with {e every} worker's exception
    (ordered by worker index) — so a caller can tell the true origin of
    a cascade from peers that merely died of its poisoning. *)

val run : workers:int -> (int -> 'a) -> 'a array
(** Like {!run_collect} but returns the results directly, re-raising the
    first failure (by worker index) if any body raised. *)

val recommended_workers : unit -> int
(** [Domain.recommended_domain_count], at least 1. *)

(** {1 Persistent pool} *)

type t
(** A pool of [workers] long-lived domains accepting rounds of jobs.
    Jobs are delivered through per-worker slots; a worker that raises
    parks the exception and stays alive, so the pool remains usable
    after a crashed round. *)

val create : workers:int -> t
(** Spawns all [workers] domains immediately (the caller does not act as
    a worker).  @raise Invalid_argument if [workers < 1]. *)

val size : t -> int

val submit : t -> (int -> unit) -> (unit, failure list) result
(** [submit t body] runs [body i] on pool domain [i] for every
    [i = 0 .. size-1] and blocks until all have finished the round.
    Raised exceptions are collected exactly like {!run_collect}: the
    result lists {e every} worker that raised, in index order, with
    backtraces.  Not reentrant: one round at a time.
    @raise Invalid_argument after {!shutdown}. *)

val replace : t -> int -> unit
(** [replace t i] retires pool domain [i] (join) and spawns a fresh
    domain into its slot.  The crash-recovery path uses this to swap
    out a worker whose round crashed — the pool itself survives a
    crashed round fine (the exception is parked), but a replaced domain
    gives the retried round a clean stack and drops any domain-local
    state the crash may have corrupted.  Counts one extra spawn in
    {!total_spawned}.  Between rounds only; must not race {!submit}.
    @raise Invalid_argument if out of range or after {!shutdown}. *)

val shutdown : t -> unit
(** Joins every pool domain.  Idempotent.  Must not race a concurrent
    {!submit}. *)

(** {1 Spawn accounting} *)

val spawn_counted : (unit -> 'a) -> 'a Domain.t
(** [Domain.spawn] plus a bump of the process-wide spawn counter.  All
    runtime-owned domains (pool workers, fork-join workers, the
    watchdog) are spawned through this, so tests can assert how many
    domains an engine run really created. *)

val total_spawned : unit -> int
(** Number of domains spawned through {!spawn_counted} since process
    start (monotone). *)
