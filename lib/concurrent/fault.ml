module Rng = Dcd_util.Rng

type site =
  | Loop
  | Flush
  | Merge
  | Quiesce
  | Steal
  | Checkpoint
  | Recover
  | Maintain

let site_to_string = function
  | Loop -> "loop"
  | Flush -> "flush"
  | Merge -> "merge"
  | Quiesce -> "quiesce"
  | Steal -> "steal"
  | Checkpoint -> "checkpoint"
  | Recover -> "recover"
  | Maintain -> "maintain"

let site_of_string = function
  | "loop" -> Some Loop
  | "flush" -> Some Flush
  | "merge" -> Some Merge
  | "quiesce" -> Some Quiesce
  | "steal" -> Some Steal
  | "checkpoint" -> Some Checkpoint
  | "recover" -> Some Recover
  | "maintain" -> Some Maintain
  | _ -> None

type spec = {
  seed : int;
  crash_prob : float;
  crash_sites : site list;
  crash_workers : int list;
  max_crashes : int;
  delay_prob : float;
  delay_max : float;
  stall_worker : int option;
  stall_after : int;
}

let off =
  {
    seed = 0;
    crash_prob = 0.;
    crash_sites = [ Loop; Flush; Merge; Quiesce; Steal; Checkpoint; Recover; Maintain ];
    crash_workers = [];
    max_crashes = 1;
    delay_prob = 0.;
    delay_max = 0.0005;
    stall_worker = None;
    stall_after = 0;
  }

exception Injected of {
  worker : int;
  site : site;
  ordinal : int;
}

let () =
  Printexc.register_printer (function
    | Injected { worker; site; ordinal } ->
      Some
        (Printf.sprintf "Fault.Injected(worker %d, site %s, hit %d)" worker
           (site_to_string site) ordinal)
    | _ -> None)

(* Per-worker streams: a worker's decision sequence depends only on the
   seed and on its own hit history, never on how the domains happen to
   interleave.  Which worker wins a shared crash budget still depends on
   the schedule; the per-worker schedules do not. *)
type lane = {
  rng : Rng.t;
  mutable hits : int;
  mutable loop_hits : int;
}

type t = {
  spec : spec;
  lanes : lane array;
  crashes_left : int Atomic.t;
  injected : int Atomic.t;
  mutable stop : unit -> bool;
}

let create ~workers spec =
  if workers < 1 then invalid_arg "Fault.create";
  {
    spec;
    lanes =
      Array.init workers (fun w ->
          {
            rng = Rng.create (spec.seed lxor ((w + 1) * 0x9E3779B9));
            hits = 0;
            loop_hits = 0;
          });
    crashes_left = Atomic.make (max 0 spec.max_crashes);
    injected = Atomic.make 0;
    stop = (fun () -> false);
  }

let set_stop t f = t.stop <- f

let injected_crashes t = Atomic.get t.injected

let rec take_crash_budget t =
  let left = Atomic.get t.crashes_left in
  left > 0
  && (Atomic.compare_and_set t.crashes_left left (left - 1) || take_crash_budget t)

(* The stall is a cooperative hang, not a sleep of fixed length: it holds
   the worker exactly until cancellation is signalled (via [set_stop]),
   which is what lets the watchdog acceptance test assert that a stalled
   run is detected and torn down rather than timed out. *)
let stall t =
  while not (t.stop ()) do
    Unix.sleepf 0.001
  done

let hit t site ~worker =
  let spec = t.spec in
  let lane = t.lanes.(worker) in
  lane.hits <- lane.hits + 1;
  if site = Loop then begin
    lane.loop_hits <- lane.loop_hits + 1;
    match spec.stall_worker with
    | Some w when w = worker && lane.loop_hits = spec.stall_after -> stall t
    | _ -> ()
  end;
  let eligible_crash =
    spec.crash_prob > 0.
    && List.mem site spec.crash_sites
    && (spec.crash_workers = [] || List.mem worker spec.crash_workers)
  in
  (* One roll per hit regardless of eligibility keeps a worker's stream
     aligned across configs that only move the crash filter. *)
  let roll = Rng.float lane.rng 1.0 in
  if eligible_crash && roll < spec.crash_prob && take_crash_budget t then begin
    Atomic.incr t.injected;
    raise (Injected { worker; site; ordinal = lane.hits })
  end;
  if spec.delay_prob > 0. then begin
    let droll = Rng.float lane.rng 1.0 in
    if droll < spec.delay_prob then Unix.sleepf (Rng.float lane.rng spec.delay_max)
  end
