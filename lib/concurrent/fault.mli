(** Deterministic, seeded fault injection for the parallel runtime.

    The engine threads a [t] (when configured; [None] costs nothing)
    through its worker loops and calls {!hit} at five kinds of sites:

    - [Loop]: top of a strategy-loop pass,
    - [Flush]: before a worker flushes its outgoing delta frames,
    - [Merge]: before an incoming batch is merged,
    - [Quiesce]: before a global-quiescence probe,
    - [Steal]: after a thief has claimed a morsel, before executing it
      (the window where a crash leaves the victim joining on an
      outstanding morsel — exercised to prove stealing coexists with
      crash containment),
    - [Checkpoint]: while a worker is cutting an epoch — a crash here
      must leave the previously committed epoch intact (double-banked
      slots),
    - [Maintain]: in a worker's morsel loop of a parallel incremental-
      maintenance round ({!Dcd_engine.Maintain}) — a crash here must
      poison the owning session, never tear its resident state,
    - [Recover]: during rollback itself.  Unlike the other sites this
      one is evaluated by the {e orchestrator} on the rolled-back
      worker's lane (the worker's domain is being replaced at that
      point); a crash here exercises the second-level retry, consuming
      another unit of the recovery budget.

    Each hit may (a) raise {!Injected} — an induced worker crash,
    exercising the poison/failed-flag containment path, (b) sleep a
    random sub-millisecond delay — widening race windows in the
    termination protocol, or (c) for one designated worker at one
    designated loop pass, {e stall}: hold the worker until cancellation
    is signalled, provoking exactly the no-progress livelock a
    quiescence bug would cause, so the watchdog can be tested against a
    reproducible hang.

    Decisions are drawn from per-worker RNG streams derived from the
    seed, so a worker's fault schedule depends only on the seed and its
    own hit ordinal — not on domain interleaving. *)

type site =
  | Loop
  | Flush
  | Merge
  | Quiesce
  | Steal
  | Checkpoint
  | Recover
  | Maintain

val site_to_string : site -> string

val site_of_string : string -> site option
(** Inverse of {!site_to_string} (CLI [--fault-sites] parsing). *)

type spec = {
  seed : int;
  crash_prob : float;  (** per-hit crash probability at eligible sites *)
  crash_sites : site list;  (** sites where crashes may fire *)
  crash_workers : int list;  (** workers that may crash; [[]] = any *)
  max_crashes : int;  (** global budget of induced crashes *)
  delay_prob : float;  (** per-hit probability of an extra delay *)
  delay_max : float;  (** delay upper bound, seconds *)
  stall_worker : int option;  (** worker to stall, if any *)
  stall_after : int;  (** stall at this (1-based) loop hit *)
}

val off : spec
(** All probabilities zero, no stall: a convenient base for [{ off with ... }]. *)

exception Injected of {
  worker : int;
  site : site;
  ordinal : int;
}
(** The induced crash.  Registered with a [Printexc] printer. *)

type t

val create : workers:int -> spec -> t

val set_stop : t -> (unit -> bool) -> unit
(** Wires the stall loop to the runtime's cancellation token: a stalled
    worker is released (and returns from {!hit} normally) once the
    predicate turns true. *)

val hit : t -> site -> worker:int -> unit
(** Evaluate one injection point.  May raise {!Injected}, sleep, or
    stall; otherwise a few nanoseconds. Only worker [worker] may pass
    its own index. *)

val injected_crashes : t -> int
(** Crashes injected so far (shared across workers). *)
