(* Packed exchange frame: every delta tuple a worker produced for one
   (copy, destination) in one flush, laid out back to back in a single
   [int array].  The whole flush crosses the SPSC queue as one object —
   one heap block per frame instead of one per tuple (plus one per
   pair, plus the vector spine), and the consumer walks it as flat
   records without unpacking.

   Record layout, at stride [arity] when [contrib] is false:
     field_0 .. field_{arity-1}
   and variable-length when [contrib] is true (count/sum copies ship a
   contributor key with each tuple):
     field_0 .. field_{arity-1}; clen; c_0 .. c_{clen-1} *)

type t = {
  arity : int;
  contrib : bool;
  mutable data : int array;
  mutable used : int; (* ints consumed in [data] *)
  mutable count : int; (* records *)
}

let create ?(capacity = 64) ~arity ~contrib () =
  if arity < 0 then invalid_arg "Frame.create";
  let per = arity + if contrib then 1 else 0 in
  { arity; contrib; data = Array.make (max 1 (capacity * per)) 0; used = 0; count = 0 }

let arity t = t.arity

let data t = t.data

let has_contrib t = t.contrib

let count t = t.count

let words t = t.used

let is_empty t = t.count = 0

let clear t =
  t.used <- 0;
  t.count <- 0

let ensure t extra =
  if t.used + extra > Array.length t.data then begin
    let cap = max (t.used + extra) (max 16 (Array.length t.data * 2)) in
    let data' = Array.make cap 0 in
    Array.blit t.data 0 data' 0 t.used;
    t.data <- data'
  end

let push t (tuple : int array) (contributor : int array) =
  let clen = Array.length contributor in
  if (not t.contrib) && clen > 0 then invalid_arg "Frame.push: contributor on a plain frame";
  ensure t (t.arity + if t.contrib then 1 + clen else 0);
  Array.blit tuple 0 t.data t.used t.arity;
  t.used <- t.used + t.arity;
  if t.contrib then begin
    t.data.(t.used) <- clen;
    Array.blit contributor 0 t.data (t.used + 1) clen;
    t.used <- t.used + 1 + clen
  end;
  t.count <- t.count + 1

(* Re-pack one record out of another frame's buffer (chunk splitting,
   partial-aggregation rebuild). *)
let push_slice t (src : int array) ~toff ~clen ~coff =
  if (not t.contrib) && clen > 0 then invalid_arg "Frame.push_slice: contributor on a plain frame";
  ensure t (t.arity + if t.contrib then 1 + clen else 0);
  Array.blit src toff t.data t.used t.arity;
  t.used <- t.used + t.arity;
  if t.contrib then begin
    t.data.(t.used) <- clen;
    Array.blit src coff t.data (t.used + 1) clen;
    t.used <- t.used + 1 + clen
  end;
  t.count <- t.count + 1

let iter t f =
  let data = t.data and arity = t.arity in
  let off = ref 0 in
  if t.contrib then
    for _ = 1 to t.count do
      let toff = !off in
      let clen = data.(toff + arity) in
      f data ~toff ~clen ~coff:(toff + arity + 1);
      off := toff + arity + 1 + clen
    done
  else
    for _ = 1 to t.count do
      f data ~toff:!off ~clen:0 ~coff:0;
      off := !off + arity
    done

(* Fixed-stride frames split into chunks with one blit per chunk. *)
let append_range dst src ~first ~n =
  if dst.contrib || src.contrib then invalid_arg "Frame.append_range: variable-stride frame";
  if dst.arity <> src.arity then invalid_arg "Frame.append_range: arity mismatch";
  let k = src.arity in
  ensure dst (n * k);
  Array.blit src.data (first * k) dst.data dst.used (n * k);
  dst.used <- dst.used + (n * k);
  dst.count <- dst.count + n
