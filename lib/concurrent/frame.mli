(** Packed exchange frame: one flush's worth of delta tuples for one
    (copy, destination), in a single flat [int array].

    The cross-worker exchange of the paper's §6.1 ships these as whole
    messages: the producer packs tuples (and, for count/sum copies,
    their contributor keys) back to back, pushes the frame as one queue
    element, and the consumer folds it in record by record via {!iter}
    — no per-tuple heap object crosses the fabric.

    Plain frames ([contrib = false]) store records at a fixed stride of
    [arity] ints; contributor frames append [clen; contributor...]
    after each tuple's fields.  A frame is owned by one domain at a
    time: the producer gives up ownership when it enqueues the frame. *)

type t

val create : ?capacity:int -> arity:int -> contrib:bool -> unit -> t
(** [capacity] is a record-count hint. *)

val arity : t -> int

val data : t -> int array
(** The backing buffer (for reading records at offsets previously
    handed out by {!iter}); valid until the next push. *)

val has_contrib : t -> bool

val count : t -> int
(** Number of records. *)

val words : t -> int
(** Payload size in ints (fields plus contributor prefixes) — the
    exchange-traffic denomination used by the per-worker [words_sent]
    statistic. *)

val is_empty : t -> bool

val push : t -> int array -> int array -> unit
(** [push t tuple contributor] packs one record; both arrays are copied
    (they may be scratch).  [contributor] must be [[||]] for plain
    frames.  @raise Invalid_argument otherwise. *)

val push_slice : t -> int array -> toff:int -> clen:int -> coff:int -> unit
(** Re-packs one record read out of another frame's buffer (as handed
    to an {!iter} callback). *)

val iter : t -> (int array -> toff:int -> clen:int -> coff:int -> unit) -> unit
(** [iter t f] calls [f data ~toff ~clen ~coff] per record: the tuple's
    fields are [data.(toff .. toff+arity-1)], its contributor key
    [data.(coff .. coff+clen-1)] ([clen = 0] for none). *)

val append_range : t -> t -> first:int -> n:int -> unit
(** [append_range dst src ~first ~n] copies records
    [first .. first+n-1] with a single blit.  Fixed-stride (plain)
    frames of equal arity only.  @raise Invalid_argument otherwise. *)

val clear : t -> unit
