type t = {
  nworkers : int;
  sent_total : int Atomic.t;
  consumed_by : int Atomic.t array;
  active : bool Atomic.t array;
  active_count : int Atomic.t;
}

let create ~workers =
  if workers < 1 then invalid_arg "Termination.create";
  {
    nworkers = workers;
    sent_total = Atomic.make 0;
    consumed_by = Array.init workers (fun _ -> Atomic.make 0);
    active = Array.init workers (fun _ -> Atomic.make true);
    active_count = Atomic.make workers;
  }

let workers t = t.nworkers

(* Recovery reset: back to the just-created state (all counters zero,
   every worker active).  Only sound between rounds — no worker may be
   running, no tuple may be in flight. *)
let reset t =
  Atomic.set t.sent_total 0;
  Array.iter (fun c -> Atomic.set c 0) t.consumed_by;
  Array.iter (fun a -> Atomic.set a true) t.active;
  Atomic.set t.active_count t.nworkers

let sent t n = if n > 0 then ignore (Atomic.fetch_and_add t.sent_total n)

let consumed t ~worker n = if n > 0 then ignore (Atomic.fetch_and_add t.consumed_by.(worker) n)

let set_active t ~worker flag =
  let cell = t.active.(worker) in
  if Atomic.exchange cell flag <> flag then
    if flag then ignore (Atomic.fetch_and_add t.active_count 1)
    else ignore (Atomic.fetch_and_add t.active_count (-1))

let is_active t ~worker = Atomic.get t.active.(worker)

let active_count t = Atomic.get t.active_count

let consumed_of t ~worker = Atomic.get t.consumed_by.(worker)

let total_sent t = Atomic.get t.sent_total

let total_consumed t =
  Array.fold_left (fun acc c -> acc + Atomic.get c) 0 t.consumed_by

let quiescent t =
  if Atomic.get t.active_count <> 0 then false
  else begin
    let sent_before = Atomic.get t.sent_total in
    let consumed = total_consumed t in
    (* A stable snapshot: every sent tuple was consumed, nobody woke up
       while we summed, and nothing was sent meanwhile.  The final
       sent-counter read must come AFTER the active-count re-read: a
       worker records its sends before going inactive, so once we observe
       it inactive its sends are visible too.  Reading in the opposite
       order admits a worker that sends and then deactivates between our
       two reads, yielding a false quiescence with a tuple in flight. *)
    consumed = sent_before
    && Atomic.get t.active_count = 0
    && Atomic.get t.sent_total = sent_before
  end
