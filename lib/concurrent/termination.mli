(** Global-fixpoint detection (paper §6.1).

    The parallel evaluation terminates when (i) every worker is inactive
    and (ii) every message buffer is empty.  Following the paper, (ii) is
    checked with one global counter of tuples ever sent and per-worker
    counters of tuples consumed: when the global sent count equals the sum
    of consumed counts while all workers are idle, no tuple is in flight.

    The two reads (sent, then consumed sum) are racy in isolation, so
    [quiescent] re-reads the sent counter after summing and only reports
    quiescence on a stable snapshot taken while all workers are inactive.
    The re-read order matters: active-count last-but-one, sent counter
    last, so a worker observed inactive has all its sends visible (it
    records sends before deactivating).  Symmetrically, a consumer must
    mark itself active before recording consumption, so a snapshot that
    includes its consumed counts also sees it active.

    The counters are tuple-denominated but updated {e per batch}: a
    producer calls [sent t k] once for a k-tuple batch, before pushing
    it (so sent can never lag a visible batch), and a consumer calls
    [consumed] once per drain with the total it merged (after merging,
    so consumed never leads).  This amortization is why batching the
    exchange removes almost all of its shared-counter traffic without
    touching the quiescence argument. *)

type t

val create : workers:int -> t

val workers : t -> int

val reset : t -> unit
(** Back to the freshly-created state: counters zeroed, all workers
    active.  Recovery-only; the caller must guarantee no worker is
    running and no tuple is in flight (the orchestrator calls this
    between rounds, after the pool has collected every worker). *)

val sent : t -> int -> unit
(** [sent t n] records that [n] tuples entered some buffer. Any worker. *)

val consumed : t -> worker:int -> int -> unit
(** [consumed t ~worker n] records that worker [worker] drained [n]
    tuples. Only worker [worker] may call this. *)

val set_active : t -> worker:int -> bool -> unit
(** Flips the worker's active flag (idempotent). *)

val is_active : t -> worker:int -> bool

val active_count : t -> int
(** Number of workers currently flagged active (racy snapshot; used by
    the watchdog's stall diagnostics, not by the quiescence proof). *)

val consumed_of : t -> worker:int -> int
(** Tuples drained by one worker so far (racy snapshot; any caller). *)

val quiescent : t -> bool
(** True iff a consistent snapshot shows all workers inactive and all
    buffers drained — the global fixpoint. *)

val total_sent : t -> int

val total_consumed : t -> int
