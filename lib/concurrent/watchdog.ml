module Clock = Dcd_util.Clock

type t = {
  stop_flag : bool Atomic.t;
  domain : unit Domain.t;
}

let spawn ?(window = infinity) ~poll ~progress ~on_stall ~on_tick () =
  if poll <= 0. then invalid_arg "Watchdog.spawn: poll must be positive";
  let stop_flag = Atomic.make false in
  let body () =
    let last_progress = ref (progress ()) in
    let last_change = ref (Clock.now ()) in
    let fired = ref false in
    while not (Atomic.get stop_flag) do
      Unix.sleepf poll;
      if not (Atomic.get stop_flag) then begin
        on_tick ();
        let p = progress () in
        if p <> !last_progress then begin
          last_progress := p;
          last_change := Clock.now ()
        end
        else if (not !fired) && Clock.now () -. !last_change >= window then begin
          fired := true;
          on_stall ()
        end
      end
    done
  in
  { stop_flag; domain = Domain_pool.spawn_counted body }

let stop t =
  Atomic.set t.stop_flag true;
  Domain.join t.domain
