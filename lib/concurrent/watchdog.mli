(** Stall watchdog: a guardian domain that samples a monotone progress
    counter and fires when it stops moving.

    The parallel engine's barrier-free termination protocol fails by
    {e hanging}, not by crashing; the watchdog converts such a hang into
    a diagnosable error.  It runs on its own domain, off every hot path:
    workers publish heartbeats through counters they already maintain,
    and the watchdog reads them at a coarse [poll] interval.

    [on_tick] runs every sample (used by the engine to poll the
    cancellation token and deadline even while progress is being made);
    [on_stall] runs at most once, when [progress] has not changed for
    [window] seconds.  With [window = infinity] (the default) the
    watchdog is a pure deadline/cancellation guardian.

    The [progress] / [on_*] callbacks execute on the watchdog's domain:
    they must only touch data that is safe to read concurrently
    (atomics, plain int counters read racily for a heartbeat). *)

type t

val spawn :
  ?window:float ->
  poll:float ->
  progress:(unit -> int) ->
  on_stall:(unit -> unit) ->
  on_tick:(unit -> unit) ->
  unit ->
  t
(** @raise Invalid_argument if [poll <= 0]. *)

val stop : t -> unit
(** Signals the guardian and joins its domain.  Idempotent effect-wise;
    must be called exactly once to release the domain. *)
