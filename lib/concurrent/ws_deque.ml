(* Chase–Lev work-stealing deque (Chase & Lev, SPAA 2005), on OCaml 5
   SC atomics.

   One owner pushes and pops at the bottom (LIFO); any number of
   thieves steal from the top (FIFO).  The only contended transition is
   claiming the top element, resolved by a CAS on [top]; the owner's
   fast path is two atomic loads and one store.

   Cells are ['a option Atomic.t] rather than a plain array with
   unsynchronized reads: the OCaml memory model makes the published
   value visible to the thief through the cell's own atomic, so no
   fence reasoning beyond the SC defaults is needed.  Morsel-grained
   use (thousands of tuples per element) makes the per-cell atomic
   cost irrelevant.

   The buffer grows by doubling and is never reused after replacement,
   which removes the classic ABA-on-shrink hazard of the original
   algorithm: a thief holding a stale buffer still reads the same
   elements for the same indices, and the CAS on [top] decides
   ownership either way. *)

type 'a t = {
  top : int Atomic.t;
  bottom : int Atomic.t;
  buf : 'a option Atomic.t array Atomic.t;
}

let create ?(capacity = 64) () =
  let cap = max 2 capacity in
  (* round up to a power of two so index masking is a [land] *)
  let cap =
    let c = ref 2 in
    while !c < cap do
      c := !c * 2
    done;
    !c
  in
  {
    top = Atomic.make 0;
    bottom = Atomic.make 0;
    buf = Atomic.make (Array.init cap (fun _ -> Atomic.make None));
  }

let size t = max 0 (Atomic.get t.bottom - Atomic.get t.top)

let is_empty t = size t = 0

let grow t ~top ~bottom =
  let old = Atomic.get t.buf in
  let mask = Array.length old - 1 in
  let nbuf = Array.init (2 * Array.length old) (fun _ -> Atomic.make None) in
  let nmask = Array.length nbuf - 1 in
  for i = top to bottom - 1 do
    Atomic.set nbuf.(i land nmask) (Atomic.get old.(i land mask))
  done;
  Atomic.set t.buf nbuf

(* owner only *)
let push t v =
  let b = Atomic.get t.bottom in
  let tp = Atomic.get t.top in
  let buf = Atomic.get t.buf in
  if b - tp >= Array.length buf then grow t ~top:tp ~bottom:b;
  let buf = Atomic.get t.buf in
  Atomic.set buf.(b land (Array.length buf - 1)) (Some v);
  Atomic.set t.bottom (b + 1)

(* owner only: LIFO end *)
let pop t =
  let b = Atomic.get t.bottom - 1 in
  Atomic.set t.bottom b;
  let tp = Atomic.get t.top in
  if b < tp then begin
    (* already empty: undo *)
    Atomic.set t.bottom tp;
    None
  end
  else begin
    let buf = Atomic.get t.buf in
    let v = Atomic.get buf.(b land (Array.length buf - 1)) in
    if b > tp then v
    else begin
      (* last element: race the thieves for it *)
      let won = Atomic.compare_and_set t.top tp (tp + 1) in
      Atomic.set t.bottom (tp + 1);
      if won then v else None
    end
  end

(* any thief: FIFO end.  [None] means empty or lost a race — the caller
   treats both as "nothing to steal right now". *)
let steal t =
  let tp = Atomic.get t.top in
  let b = Atomic.get t.bottom in
  if tp >= b then None
  else begin
    let buf = Atomic.get t.buf in
    let v = Atomic.get buf.(tp land (Array.length buf - 1)) in
    if Atomic.compare_and_set t.top tp (tp + 1) then v else None
  end
