(** Lock-free Chase–Lev work-stealing deque.

    Single owner, many thieves: the owner {!push}es and {!pop}s at the
    bottom in LIFO order (hot data stays cache-warm), thieves {!steal}
    the oldest element from the top.  All operations are non-blocking;
    the only synchronization is a CAS on the top index when claiming an
    element.

    Used by the morsel scheduler: each worker publishes its scan
    morsels to its own deque and idle peers steal from the top. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** [capacity] is a hint (rounded up to a power of two, default 64);
    the deque grows as needed. *)

val push : 'a t -> 'a -> unit
(** Owner only: append at the bottom. *)

val pop : 'a t -> 'a option
(** Owner only: take the most recently pushed remaining element, or
    [None] if the deque is empty (a concurrent thief may have taken the
    last element). *)

val steal : 'a t -> 'a option
(** Any domain: claim the oldest element.  [None] means empty {e or} a
    CAS race was lost — callers retry or move to another victim. *)

val size : 'a t -> int
(** Racy snapshot of the element count (advisory, for victim
    selection). *)

val is_empty : 'a t -> bool
