module Ast = Dcd_datalog.Ast
module Parser = Dcd_datalog.Parser
module Analysis = Dcd_datalog.Analysis
module Pcg = Dcd_datalog.Pcg
module Logical = Dcd_planner.Logical
module Physical = Dcd_planner.Physical
module Coord = Dcd_engine.Coord
module Parallel = Dcd_engine.Parallel
module Engine_error = Dcd_engine.Engine_error
module Cancel = Dcd_concurrent.Cancel
module Fault = Dcd_concurrent.Fault
module Naive = Dcd_engine.Naive
module Run_stats = Dcd_engine.Run_stats
module Catalog = Dcd_engine.Catalog
module Rec_store = Dcd_engine.Rec_store
module Graph = Dcd_workload.Graph
module Gen = Dcd_workload.Gen
module Queries = Dcd_workload.Queries
module Datasets = Dcd_workload.Datasets
module Loader = Dcd_workload.Loader
module Tuple = Dcd_storage.Tuple
module Relation = Dcd_storage.Relation
module Vec = Dcd_util.Vec
module Maintain = Dcd_engine.Maintain
module Snapshot = Dcd_storage.Snapshot
module Session = Session

type prepared = {
  source : string;
  info : Analysis.info;
  plan : Physical.t;
}

type config = Parallel.config = {
  workers : int;
  strategy : Coord.t;
  store_opts : Rec_store.opts;
  partial_agg : bool;
  max_iterations : int;
  exchange : Parallel.exchange;
  batch_tuples : int;
  steal : bool;
  morsel_tuples : int;
  merge : Parallel.merge_path;
  coord : Coord.config;
  fault : Fault.spec option;
  checkpoint_every : int;
  max_recoveries : int;
  maintain_workers : int;
}

let default_config = Parallel.default_config

let prepare ?(params = []) ?generic_join source =
  match Parser.parse_program source with
  | exception Dcd_datalog.Lexer.Lex_error e -> Error e
  | exception Parser.Parse_error e -> Error e
  | program -> (
    match Analysis.analyze program with
    | Error e -> Error e
    | Ok info -> (
      match Physical.compile ~params ?generic_join info with
      | Error e -> Error e
      | Ok plan -> Ok { source; info; plan }))

let run prepared ~edb ?(config = default_config) () =
  Parallel.run prepared.plan ~edb ~config

let try_run prepared ~edb ?(config = default_config) () =
  match Parallel.run prepared.plan ~edb ~config with
  | result -> Ok result
  | exception Engine_error.Error e -> Error e

let query ?params ?generic_join ?config source ~edb =
  match prepare ?params ?generic_join source with
  | Error e -> Error e
  | Ok prepared -> Ok (run prepared ~edb ?config ())

let relation result name =
  Parallel.relation_vec result name
  |> Vec.to_list
  |> List.map Array.to_list
  |> List.sort compare

let relation_count result name = Vec.length (Parallel.relation_vec result name)

let tuples rows = Vec.of_list (List.map Array.of_list rows)

let open_session prepared ~edb ?config () =
  Session.open_session ~plan:prepared.plan ~edb ?config ()

let explain prepared = Physical.explain prepared.plan

let pcg_string prepared ~root =
  Format.asprintf "%a" Pcg.pp (Pcg.of_program prepared.info ~root)
