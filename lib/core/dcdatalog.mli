(** DCDatalog — a parallel Datalog engine for shared-memory multicore
    machines.

    OCaml reproduction of Wu, Wang & Zaniolo,
    "Optimizing Parallel Recursive Datalog Evaluation on Multicore
    Machines" (SIGMOD 2022).

    {1 Quick start}

    {[
      let program = "tc(X, Y) <- arc(X, Y).  tc(X, Y) <- tc(X, Z), arc(Z, Y)." in
      let prepared = Result.get_ok (Dcdatalog.prepare program) in
      let edb = [ ("arc", Dcdatalog.tuples [ [1; 2]; [2; 3] ]) ] in
      let result = Dcdatalog.run prepared ~edb () in
      Dcdatalog.relation result "tc"   (* [(1,2); (1,3); (2,3)] *)
    ]}

    The engine supports linear, non-linear and mutual recursion, the
    monotone aggregates min/max/count/sum inside recursion, stratified
    negation outside recursion, and three parallel coordination
    strategies — [Global] barriers, stale-synchronous [Ssp], and the
    paper's dynamic weight-based strategy [Dws] (the default).

    {1 Submodules}

    The full machinery is re-exported for power users: [Ast]/[Parser]/
    [Analysis]/[Pcg] (front end), [Logical]/[Physical] (planner),
    [Parallel]/[Naive]/[Coord]/[Run_stats] (engines), and the
    [Graph]/[Gen]/[Queries]/[Datasets] workload kit. *)

module Ast = Dcd_datalog.Ast
module Parser = Dcd_datalog.Parser
module Analysis = Dcd_datalog.Analysis
module Pcg = Dcd_datalog.Pcg
module Logical = Dcd_planner.Logical
module Physical = Dcd_planner.Physical
module Coord = Dcd_engine.Coord
module Parallel = Dcd_engine.Parallel
module Engine_error = Dcd_engine.Engine_error
module Cancel = Dcd_concurrent.Cancel
module Fault = Dcd_concurrent.Fault
module Naive = Dcd_engine.Naive
module Run_stats = Dcd_engine.Run_stats
module Catalog = Dcd_engine.Catalog
module Rec_store = Dcd_engine.Rec_store
module Graph = Dcd_workload.Graph
module Gen = Dcd_workload.Gen
module Queries = Dcd_workload.Queries
module Datasets = Dcd_workload.Datasets
module Loader = Dcd_workload.Loader
module Tuple = Dcd_storage.Tuple
module Relation = Dcd_storage.Relation
module Vec = Dcd_util.Vec
module Maintain = Dcd_engine.Maintain
module Snapshot = Dcd_storage.Snapshot

module Session = Session
(** The resident serving runtime: open once, query and update many
    times (see {!Session.open_session} and {!open_session}). *)

type prepared = {
  source : string;
  info : Analysis.info;
  plan : Physical.t;
}

type config = Parallel.config = {
  workers : int;
  strategy : Coord.t;
  store_opts : Rec_store.opts;
  partial_agg : bool;
  max_iterations : int;
  exchange : Parallel.exchange;
  batch_tuples : int;
  steal : bool; (** morsel-driven work stealing (default [true]) *)
  morsel_tuples : int; (** scan tuples per stealable morsel (default 2048) *)
  merge : Parallel.merge_path;
      (** delta-merge path: [Batch_sorted] (default) or the historical
          [Per_tuple] escape hatch *)
  coord : Coord.config;
  fault : Fault.spec option;
  checkpoint_every : int;
      (** cut a crash-recovery epoch every [n] fixpoint iterations
          ([0] = off) *)
  max_recoveries : int;
      (** worker crashes one run may recover from by rolling back to
          the last epoch and re-running ([0] = fail fast) *)
  maintain_workers : int;
      (** workers for incremental-maintenance delta joins in a
          {!Session} ([0] = same as [workers], [1] = sequential
          interpreter) *)
}

val default_config : config

val prepare :
  ?params:(string * int) list ->
  ?generic_join:[ `Auto | `Off | `Force ] ->
  string ->
  (prepared, string) result
(** Parses, analyzes and compiles a Datalog program.  [params] binds
    symbolic constants (e.g. [("start", 42)] for the SSSP query) at
    plan time.  [generic_join] controls whether eligible rule bodies
    compile to the worst-case-optimal multiway join instead of a binary
    lookup chain: [`Auto] (default) uses it only for cyclic bodies,
    [`Off] never, [`Force] for every eligible body (see
    {!Physical.compile}). *)

val run :
  prepared ->
  edb:(string * Tuple.t Vec.t) list ->
  ?config:config ->
  unit ->
  Parallel.result
(** Evaluates to the global fixpoint and returns the materialized
    relations plus execution statistics.
    @raise Engine_error.Error on cancellation, worker crash, or a
    watchdog-detected stall (see {!Engine_error.t}); use {!try_run} for
    the exception-free variant. *)

val try_run :
  prepared ->
  edb:(string * Tuple.t Vec.t) list ->
  ?config:config ->
  unit ->
  (Parallel.result, Engine_error.t) result
(** Like {!run}, but returns runtime failures — [Cancelled],
    [Worker_crashed], [Stalled] — as a structured [Error] instead of
    raising. *)

val query :
  ?params:(string * int) list ->
  ?generic_join:[ `Auto | `Off | `Force ] ->
  ?config:config ->
  string ->
  edb:(string * Tuple.t Vec.t) list ->
  (Parallel.result, string) result
(** One-shot [prepare] + [run]. *)

val relation : Parallel.result -> string -> int list list
(** Tuples of a result relation as sorted lists (empty when absent) —
    convenient for tests and small outputs.  For bulk access use
    {!Parallel.relation_vec}. *)

val relation_count : Parallel.result -> string -> int

val tuples : int list list -> Tuple.t Vec.t
(** EDB construction helper. *)

val open_session :
  prepared ->
  edb:(string * Tuple.t Vec.t) list ->
  ?config:config ->
  unit ->
  Session.t
(** Runs the initial fixpoint and keeps it resident: the returned
    session serves wait-free snapshot reads and maintains the fixpoint
    incrementally under {!Session.apply_batch} update batches, on a
    persistent worker pool, until {!Session.close}. *)

val explain : prepared -> string
(** The physical plan: strata, partition routes, join methods. *)

val pcg_string : prepared -> root:string -> string
(** The AND/OR tree (predicate connection graph) rooted at [root]. *)
