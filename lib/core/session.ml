module Physical = Dcd_planner.Physical
module Parallel = Dcd_engine.Parallel
module Maintain = Dcd_engine.Maintain
module Run_stats = Dcd_engine.Run_stats
module Catalog = Dcd_engine.Catalog
module Engine_error = Dcd_engine.Engine_error
module Cancel = Dcd_concurrent.Cancel
module Relation = Dcd_storage.Relation
module Snapshot = Dcd_storage.Snapshot
module Tuple = Dcd_storage.Tuple
module Clock = Dcd_util.Clock
module Vec = Dcd_util.Vec

type state =
  | Live
  | Poisoned
  | Closed

module Tset = Hashtbl.Make (struct
  type t = Tuple.t

  let equal = Tuple.equal
  let hash = Tuple.hash
end)

(* A published relation: a materialized base plus a small overlay of
   net changes since the base was last (re)built.  Publishing a batch
   then costs O(|delta|) instead of O(|relation|); when the overlay
   outgrows a fraction of the base the next publish compacts it back
   into a fresh materialization.  Views are immutable once published —
   a new batch builds new overlay tables, so concurrent readers keep a
   consistent value forever. *)
type view = {
  v_base : Relation.t;
  v_dead : unit Tset.t; (* ⊆ base: deleted since materialization *)
  v_extra : Tuple.t list; (* inserted since; disjoint from base \ dead *)
  v_extra_mem : unit Tset.t; (* [v_extra] as a set *)
  v_count : int; (* |base| - |dead| + |extra| *)
}

let view_of_rel rel =
  {
    v_base = rel;
    v_dead = Tset.create 1;
    v_extra = [];
    v_extra_mem = Tset.create 1;
    v_count = Relation.length rel;
  }

let view_mem v tup =
  (Relation.mem v.v_base tup && not (Tset.mem v.v_dead tup)) || Tset.mem v.v_extra_mem tup

let view_iter_prefix v ~prefix f =
  (if Tset.length v.v_dead = 0 then Relation.iter_prefix v.v_base ~prefix f
   else Relation.iter_prefix v.v_base ~prefix (fun tup -> if not (Tset.mem v.v_dead tup) then f tup));
  match v.v_extra with
  | [] -> ()
  | extra ->
    let plen = Array.length prefix in
    List.iter
      (fun tup ->
        let ok = ref true in
        for i = 0 to plen - 1 do
          if tup.(i) <> prefix.(i) then ok := false
        done;
        if !ok then f tup)
      extra

type t = {
  plan : Physical.t;
  config : Parallel.config;
  runtime : Parallel.runtime;
  maintain : Maintain.t;
  stats : Run_stats.t;
  snap : (string * view) list Snapshot.t;
  write_mutex : Mutex.t; (* serializes update batches and close *)
  idx_mutex : Mutex.t; (* guards idx_wanted only *)
  idx_wanted : (string, unit) Hashtbl.t;
      (* predicates whose rebuilt snapshots should carry a sorted index
         (sticky: set by the first prefix scan against each) *)
  mutable state : state;
}

let check_deadline = function
  | Some d when Clock.now () > d ->
    raise (Engine_error.Error (Engine_error.Cancelled Cancel.Deadline))
  | _ -> ()

let open_session ~plan ~edb ?(config = Parallel.default_config) () =
  let runtime = Parallel.create_runtime ~workers:config.Parallel.workers in
  match
    let result = Parallel.run ~runtime plan ~edb ~config in
    let maintain = Maintain.create ~plan ~config ~runtime ~catalog:result.Parallel.catalog () in
    (result, maintain)
  with
  | exception e ->
    Parallel.destroy_runtime runtime;
    raise e
  | result, maintain ->
    (* version 0 reuses the engine's own materializations: nothing
       mutates them once the run has returned *)
    let rels =
      List.map
        (fun p ->
          match Catalog.find result.Parallel.catalog p with
          | Some rel -> (p, view_of_rel rel)
          | None ->
            (p, view_of_rel (Relation.create ~name:p ~arity:(Maintain.arity maintain p) ())))
        (Maintain.predicates maintain)
    in
    {
      plan;
      config;
      runtime;
      maintain;
      stats = result.Parallel.stats;
      snap = Snapshot.create rels;
      write_mutex = Mutex.create ();
      idx_mutex = Mutex.create ();
      idx_wanted = Hashtbl.create 8;
      state = Live;
    }

let require_open t =
  match t.state with
  | Live -> ()
  | Poisoned ->
    invalid_arg "Session: poisoned by an escaped maintenance error; close and reopen"
  | Closed -> invalid_arg "Session: closed"

(* --- writes --- *)

let apply_batch t ?deadline updates =
  Mutex.protect t.write_mutex (fun () ->
      require_open t;
      (* the deadline gates admission only: once admitted, a batch runs
         to completion — a half-applied batch is not a state readers
         could ever be allowed to see *)
      check_deadline deadline;
      let t0 = Clock.now () in
      let report =
        try Maintain.apply t.maintain updates with
        | Invalid_argument _ as e -> raise e (* pre-validation: state untouched *)
        | e ->
          t.state <- Poisoned;
          raise e
      in
      match
        let wanted =
          Mutex.protect t.idx_mutex (fun () ->
              Hashtbl.fold (fun k () acc -> k :: acc) t.idx_wanted [])
        in
        (* full rematerialization of one relation, from the maintenance
           state; the once-per-batch fallback when a view's overlay has
           outgrown its base or a sorted index was requested *)
        let materialize name =
          let arity = Maintain.arity t.maintain name in
          let nr =
            Relation.create
              ~size_hint:(max 16 (Maintain.visible_count t.maintain name))
              ~name ~arity ()
          in
          Maintain.visible t.maintain name (fun tup -> ignore (Relation.add nr tup));
          if List.mem name wanted then
            ignore (Relation.ensure_sorted_index nr ~cols:(Array.init arity Fun.id));
          view_of_rel nr
        in
        let _, old_views = Snapshot.read t.snap in
        let rels =
          List.map
            (fun (name, v) ->
              match
                List.find_opt (fun (n, _, _) -> n = name) report.Maintain.br_deltas
              with
              | None -> (name, v)
              | Some (_, ins, del) ->
                let n_ins = List.length ins and n_del = List.length del in
                let count = v.v_count + n_ins - n_del in
                let osize =
                  Tset.length v.v_dead + Tset.length v.v_extra_mem + n_ins + n_del
                in
                let needs_index =
                  List.mem name wanted
                  && Relation.find_sorted_index v.v_base
                       ~cols:(Array.init (Relation.arity v.v_base) Fun.id)
                     = None
                in
                if needs_index || osize * 8 > count then (name, materialize name)
                else begin
                  (* fold the net batch delta into fresh overlay tables;
                     the published ones are never mutated *)
                  let dead = Tset.copy v.v_dead in
                  let extra_mem = Tset.copy v.v_extra_mem in
                  List.iter
                    (fun tup ->
                      if Tset.mem extra_mem tup then Tset.remove extra_mem tup
                      else Tset.replace dead tup ())
                    del;
                  let fresh =
                    List.filter
                      (fun tup ->
                        if Tset.mem dead tup then begin
                          (* deleted earlier, back now: still in base *)
                          Tset.remove dead tup;
                          false
                        end
                        else begin
                          Tset.replace extra_mem tup ();
                          true
                        end)
                      ins
                  in
                  let extra =
                    fresh @ List.filter (fun tup -> Tset.mem extra_mem tup) v.v_extra
                  in
                  ( name,
                    { v_base = v.v_base; v_dead = dead; v_extra = extra; v_extra_mem = extra_mem; v_count = count } )
                end)
            old_views
        in
        ignore (Snapshot.publish t.snap rels);
        let m = t.stats.Run_stats.maintenance in
        m.Run_stats.batches <- m.Run_stats.batches + 1;
        m.Run_stats.base_inserted <- m.Run_stats.base_inserted + report.Maintain.br_base_inserted;
        m.Run_stats.base_deleted <- m.Run_stats.base_deleted + report.Maintain.br_base_deleted;
        m.Run_stats.inserted <- m.Run_stats.inserted + report.Maintain.br_derived_inserted;
        m.Run_stats.deleted <- m.Run_stats.deleted + report.Maintain.br_derived_deleted;
        m.Run_stats.overdeleted <- m.Run_stats.overdeleted + report.Maintain.br_overdeleted;
        m.Run_stats.rederived <- m.Run_stats.rederived + report.Maintain.br_rederived;
        m.Run_stats.recomputed_strata <-
          m.Run_stats.recomputed_strata + report.Maintain.br_recomputed_strata;
        m.Run_stats.maintain_s <- m.Run_stats.maintain_s +. (Clock.now () -. t0)
      with
      | () -> report
      | exception e ->
        (* the fixpoint moved but the snapshot did not: readers are
           still consistent, the session is not *)
        t.state <- Poisoned;
        raise e)

(* --- snapshot reads (no locks; safe against a concurrent batch) --- *)

let version t = Snapshot.version t.snap

let snapshot t =
  let ver, views = Snapshot.read t.snap in
  ( ver,
    List.map
      (fun (name, v) ->
        match (Tset.length v.v_dead, v.v_extra) with
        | 0, [] -> (name, v.v_base)
        | _ ->
          (* collapse the overlay into a standalone relation *)
          let nr =
            Relation.create ~size_hint:(max 16 v.v_count) ~name
              ~arity:(Relation.arity v.v_base) ()
          in
          view_iter_prefix v ~prefix:[||] (fun tup -> ignore (Relation.add nr (Array.copy tup)));
          (name, nr))
      views )

let snap_view t name =
  let ver, views = Snapshot.read t.snap in
  match List.assoc_opt name views with
  | Some v -> (ver, v)
  | None -> invalid_arg (Printf.sprintf "Session: unknown relation %s" name)

let lookup t name tup =
  let ver, v = snap_view t name in
  if Array.length tup <> Relation.arity v.v_base then
    invalid_arg (Printf.sprintf "Session: arity mismatch for %s" name);
  (ver, view_mem v tup)

let count t name =
  let ver, v = snap_view t name in
  (ver, v.v_count)

let scan t ?deadline ?(prefix = [||]) name =
  let ver, v = snap_view t name in
  if Array.length prefix > 0 then
    (* remember the access pattern so the next publish of this relation
       carries a sorted index; this snapshot may still scan-filter *)
    Mutex.protect t.idx_mutex (fun () -> Hashtbl.replace t.idx_wanted name ());
  let out = ref [] in
  let n = ref 0 in
  view_iter_prefix v ~prefix (fun tup ->
      incr n;
      if !n land 255 = 0 then check_deadline deadline;
      out := Array.copy tup :: !out);
  (ver, List.sort Tuple.compare !out)

let predicates t = Maintain.predicates t.maintain

let is_base t name = Maintain.is_base t.maintain name

let arity t name =
  let _, v = snap_view t name in
  Relation.arity v.v_base

let stats t = t.stats

let config t = t.config

let closed t = t.state <> Live

let close t =
  Mutex.protect t.write_mutex (fun () ->
      match t.state with
      | Closed -> ()
      | Live | Poisoned ->
        t.state <- Closed;
        Parallel.destroy_runtime t.runtime)
