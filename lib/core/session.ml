module Physical = Dcd_planner.Physical
module Parallel = Dcd_engine.Parallel
module Maintain = Dcd_engine.Maintain
module Run_stats = Dcd_engine.Run_stats
module Catalog = Dcd_engine.Catalog
module Engine_error = Dcd_engine.Engine_error
module Cancel = Dcd_concurrent.Cancel
module Relation = Dcd_storage.Relation
module Snapshot = Dcd_storage.Snapshot
module Tuple = Dcd_storage.Tuple
module Clock = Dcd_util.Clock
module Vec = Dcd_util.Vec

type state =
  | Live
  | Poisoned of exn (* the original escaped error, re-raised by later writes *)
  | Closed

(* One queued [apply_batch] caller.  Callers that arrive while a
   maintenance round is running enqueue here and are flushed together
   as a single merged round by whichever caller becomes the leader. *)
type outcome =
  | Pending
  | Done of Maintain.batch_report
  | Failed of exn

type waiter = {
  w_updates : Maintain.update list;
  w_deadline : float option;
  mutable w_outcome : outcome;
}

module Tset = Hashtbl.Make (struct
  type t = Tuple.t

  let equal = Tuple.equal
  let hash = Tuple.hash
end)

(* A published relation: a materialized base plus a small overlay of
   net changes since the base was last (re)built.  Publishing a batch
   then costs O(|delta|) instead of O(|relation|); when the overlay
   outgrows a fraction of the base the next publish compacts it back
   into a fresh materialization.  Views are immutable once published —
   a new batch builds new overlay tables, so concurrent readers keep a
   consistent value forever. *)
type view = {
  v_base : Relation.t;
  v_dead : unit Tset.t; (* ⊆ base: deleted since materialization *)
  v_extra : Tuple.t list; (* inserted since; disjoint from base \ dead *)
  v_extra_mem : unit Tset.t; (* [v_extra] as a set *)
  v_count : int; (* |base| - |dead| + |extra| *)
}

let view_of_rel rel =
  {
    v_base = rel;
    v_dead = Tset.create 1;
    v_extra = [];
    v_extra_mem = Tset.create 1;
    v_count = Relation.length rel;
  }

let view_mem v tup =
  (Relation.mem v.v_base tup && not (Tset.mem v.v_dead tup)) || Tset.mem v.v_extra_mem tup

let view_iter_prefix v ~prefix f =
  (if Tset.length v.v_dead = 0 then Relation.iter_prefix v.v_base ~prefix f
   else Relation.iter_prefix v.v_base ~prefix (fun tup -> if not (Tset.mem v.v_dead tup) then f tup));
  match v.v_extra with
  | [] -> ()
  | extra ->
    let plen = Array.length prefix in
    List.iter
      (fun tup ->
        let ok = ref true in
        for i = 0 to plen - 1 do
          if tup.(i) <> prefix.(i) then ok := false
        done;
        if !ok then f tup)
      extra

type t = {
  plan : Physical.t;
  config : Parallel.config;
  runtime : Parallel.runtime;
  maintain : Maintain.t;
  stats : Run_stats.t;
  snap : (string * view) list Snapshot.t;
  write_mutex : Mutex.t; (* serializes maintenance rounds and close *)
  q_mutex : Mutex.t; (* guards q_waiters / q_flushing *)
  q_cond : Condition.t; (* followers wait here for their outcome *)
  mutable q_waiters : waiter list; (* newest first; flushed in arrival order *)
  mutable q_flushing : bool; (* a leader is running a round *)
  idx_mutex : Mutex.t; (* guards idx_wanted only *)
  idx_wanted : (string, unit) Hashtbl.t;
      (* predicates whose rebuilt snapshots should carry a sorted index
         (sticky: set by the first prefix scan against each) *)
  mutable state : state;
}

let check_deadline = function
  | Some d when Clock.now () > d ->
    raise (Engine_error.Error (Engine_error.Cancelled Cancel.Deadline))
  | _ -> ()

let open_session ~plan ~edb ?(config = Parallel.default_config) () =
  let runtime = Parallel.create_runtime ~workers:config.Parallel.workers in
  match
    let result = Parallel.run ~runtime plan ~edb ~config in
    let maintain = Maintain.create ~plan ~config ~runtime ~catalog:result.Parallel.catalog () in
    (result, maintain)
  with
  | exception e ->
    Parallel.destroy_runtime runtime;
    raise e
  | result, maintain ->
    (* version 0 reuses the engine's own materializations: nothing
       mutates them once the run has returned *)
    let rels =
      List.map
        (fun p ->
          match Catalog.find result.Parallel.catalog p with
          | Some rel -> (p, view_of_rel rel)
          | None ->
            (p, view_of_rel (Relation.create ~name:p ~arity:(Maintain.arity maintain p) ())))
        (Maintain.predicates maintain)
    in
    {
      plan;
      config;
      runtime;
      maintain;
      stats = result.Parallel.stats;
      snap = Snapshot.create rels;
      write_mutex = Mutex.create ();
      q_mutex = Mutex.create ();
      q_cond = Condition.create ();
      q_waiters = [];
      q_flushing = false;
      idx_mutex = Mutex.create ();
      idx_wanted = Hashtbl.create 8;
      state = Live;
    }

let require_open t =
  match t.state with
  | Live -> ()
  | Poisoned e -> raise e (* the original escaped error, verbatim *)
  | Closed -> invalid_arg "Session: closed"

(* --- writes --- *)

(* Restores the published snapshot and the session stats from one
   maintenance round's report.  Caller holds [write_mutex].
   [coalesced] is how many queued batches rode along beyond the first. *)
let publish_round t report ~t0 ~coalesced =
  let wanted =
    Mutex.protect t.idx_mutex (fun () ->
        Hashtbl.fold (fun k () acc -> k :: acc) t.idx_wanted [])
  in
  (* full rematerialization of one relation, from the maintenance
     state; the once-per-batch fallback when a view's overlay has
     outgrown its base or a sorted index was requested *)
  let materialize name =
    let arity = Maintain.arity t.maintain name in
    let nr =
      Relation.create
        ~size_hint:(max 16 (Maintain.visible_count t.maintain name))
        ~name ~arity ()
    in
    Maintain.visible t.maintain name (fun tup -> ignore (Relation.add nr tup));
    if List.mem name wanted then
      ignore (Relation.ensure_sorted_index nr ~cols:(Array.init arity Fun.id));
    view_of_rel nr
  in
  let _, old_views = Snapshot.read t.snap in
  let rels =
    List.map
      (fun (name, v) ->
        match List.find_opt (fun (n, _, _) -> n = name) report.Maintain.br_deltas with
        | None -> (name, v)
        | Some (_, ins, del) ->
          let n_ins = List.length ins and n_del = List.length del in
          let count = v.v_count + n_ins - n_del in
          let osize = Tset.length v.v_dead + Tset.length v.v_extra_mem + n_ins + n_del in
          let needs_index =
            List.mem name wanted
            && Relation.find_sorted_index v.v_base
                 ~cols:(Array.init (Relation.arity v.v_base) Fun.id)
               = None
          in
          if needs_index || osize * 8 > count then (name, materialize name)
          else begin
            (* fold the net batch delta into fresh overlay tables;
               the published ones are never mutated *)
            let dead = Tset.copy v.v_dead in
            let extra_mem = Tset.copy v.v_extra_mem in
            List.iter
              (fun tup ->
                if Tset.mem extra_mem tup then Tset.remove extra_mem tup
                else Tset.replace dead tup ())
              del;
            let fresh =
              List.filter
                (fun tup ->
                  if Tset.mem dead tup then begin
                    (* deleted earlier, back now: still in base *)
                    Tset.remove dead tup;
                    false
                  end
                  else begin
                    Tset.replace extra_mem tup ();
                    true
                  end)
                ins
            in
            let extra = fresh @ List.filter (fun tup -> Tset.mem extra_mem tup) v.v_extra in
            ( name,
              {
                v_base = v.v_base;
                v_dead = dead;
                v_extra = extra;
                v_extra_mem = extra_mem;
                v_count = count;
              } )
          end)
      old_views
  in
  ignore (Snapshot.publish t.snap rels);
  let m = t.stats.Run_stats.maintenance in
  m.Run_stats.batches <- m.Run_stats.batches + 1;
  m.Run_stats.base_inserted <- m.Run_stats.base_inserted + report.Maintain.br_base_inserted;
  m.Run_stats.base_deleted <- m.Run_stats.base_deleted + report.Maintain.br_base_deleted;
  m.Run_stats.inserted <- m.Run_stats.inserted + report.Maintain.br_derived_inserted;
  m.Run_stats.deleted <- m.Run_stats.deleted + report.Maintain.br_derived_deleted;
  m.Run_stats.overdeleted <- m.Run_stats.overdeleted + report.Maintain.br_overdeleted;
  m.Run_stats.rederived <- m.Run_stats.rederived + report.Maintain.br_rederived;
  m.Run_stats.recomputed_strata <-
    m.Run_stats.recomputed_strata + report.Maintain.br_recomputed_strata;
  m.Run_stats.coalesced <- m.Run_stats.coalesced + coalesced;
  List.iteri
    (fun i (js, mo, st, tu) ->
      let mw = Run_stats.maintain_worker m i in
      mw.Run_stats.mw_join_s <- mw.Run_stats.mw_join_s +. js;
      mw.Run_stats.mw_morsels <- mw.Run_stats.mw_morsels + mo;
      mw.Run_stats.mw_steals <- mw.Run_stats.mw_steals + st;
      mw.Run_stats.mw_stolen <- mw.Run_stats.mw_stolen + tu)
    report.Maintain.br_workers;
  m.Run_stats.maintain_s <- m.Run_stats.maintain_s +. (Clock.now () -. t0)

(* Runs one merged maintenance round for every waiter queued so far.
   Caller has claimed [q_flushing] and holds neither mutex.  Every
   waiter grabbed here leaves with a resolved outcome. *)
let flush_round t =
  let group =
    Mutex.protect t.q_mutex (fun () ->
        let g = List.rev t.q_waiters in
        t.q_waiters <- [];
        g)
  in
  if group <> [] then
    Mutex.protect t.write_mutex (fun () ->
        let fail_all ws e = List.iter (fun w -> w.w_outcome <- Failed e) ws in
        match t.state with
        | Poisoned e -> fail_all group e
        | Closed -> fail_all group (Invalid_argument "Session: closed")
        | Live -> (
          (* the deadline gates admission only: once admitted, a batch
             runs to completion — a half-applied batch is not a state
             readers could ever be allowed to see.  Re-checked here
             because the wait in the queue counts against it. *)
          let admitted, expired =
            List.partition
              (fun w ->
                match w.w_deadline with Some d when Clock.now () > d -> false | _ -> true)
              group
          in
          fail_all expired (Engine_error.Error (Engine_error.Cancelled Cancel.Deadline));
          match admitted with
          | [] -> ()
          | _ -> (
            let t0 = Clock.now () in
            (* every batch was validated before it enqueued, so the
               concatenation is well-formed; base flips apply in list
               order, so the merged round reaches the same fixpoint as
               applying the queued batches back to back *)
            let updates = List.concat_map (fun w -> w.w_updates) admitted in
            match
              let report = Maintain.apply t.maintain updates in
              publish_round t report ~t0 ~coalesced:(List.length admitted - 1);
              report
            with
            | report -> List.iter (fun w -> w.w_outcome <- Done report) admitted
            | exception e ->
              (* the fixpoint may have moved but the snapshot did not:
                 readers are still consistent, the session is not.  The
                 poisoning exception is kept and re-raised verbatim by
                 every later write. *)
              t.state <- Poisoned e;
              fail_all admitted e)))

let apply_batch t ?deadline updates =
  require_open t;
  (* malformed batches fail fast on their own caller, before they can
     reach a merged round and poison innocent co-waiters *)
  Maintain.validate t.maintain updates;
  check_deadline deadline;
  let w = { w_updates = updates; w_deadline = deadline; w_outcome = Pending } in
  Mutex.lock t.q_mutex;
  t.q_waiters <- w :: t.q_waiters;
  let rec wait_outcome () =
    match w.w_outcome with
    | Done r ->
      Mutex.unlock t.q_mutex;
      r
    | Failed e ->
      Mutex.unlock t.q_mutex;
      raise e
    | Pending ->
      if not t.q_flushing then begin
        (* become the leader: run one round over everything queued,
           ourselves included, then hand the baton to whoever queued
           up meanwhile *)
        t.q_flushing <- true;
        Mutex.unlock t.q_mutex;
        let fin = try Ok (flush_round t) with e -> Error e in
        Mutex.lock t.q_mutex;
        t.q_flushing <- false;
        Condition.broadcast t.q_cond;
        (match fin with
        | Ok () -> ()
        | Error e ->
          Mutex.unlock t.q_mutex;
          raise e);
        wait_outcome ()
      end
      else begin
        Condition.wait t.q_cond t.q_mutex;
        wait_outcome ()
      end
  in
  wait_outcome ()

(* --- snapshot reads (no locks; safe against a concurrent batch) --- *)

let version t = Snapshot.version t.snap

let snapshot t =
  let ver, views = Snapshot.read t.snap in
  ( ver,
    List.map
      (fun (name, v) ->
        match (Tset.length v.v_dead, v.v_extra) with
        | 0, [] -> (name, v.v_base)
        | _ ->
          (* collapse the overlay into a standalone relation *)
          let nr =
            Relation.create ~size_hint:(max 16 v.v_count) ~name
              ~arity:(Relation.arity v.v_base) ()
          in
          view_iter_prefix v ~prefix:[||] (fun tup -> ignore (Relation.add nr (Array.copy tup)));
          (name, nr))
      views )

let snap_view t name =
  let ver, views = Snapshot.read t.snap in
  match List.assoc_opt name views with
  | Some v -> (ver, v)
  | None -> invalid_arg (Printf.sprintf "Session: unknown relation %s" name)

let lookup t name tup =
  let ver, v = snap_view t name in
  if Array.length tup <> Relation.arity v.v_base then
    invalid_arg (Printf.sprintf "Session: arity mismatch for %s" name);
  (ver, view_mem v tup)

let count t name =
  let ver, v = snap_view t name in
  (ver, v.v_count)

let scan t ?deadline ?(prefix = [||]) name =
  let ver, v = snap_view t name in
  if Array.length prefix > 0 then
    (* remember the access pattern so the next publish of this relation
       carries a sorted index; this snapshot may still scan-filter *)
    Mutex.protect t.idx_mutex (fun () -> Hashtbl.replace t.idx_wanted name ());
  let out = ref [] in
  let n = ref 0 in
  view_iter_prefix v ~prefix (fun tup ->
      incr n;
      if !n land 255 = 0 then check_deadline deadline;
      out := Array.copy tup :: !out);
  (ver, List.sort Tuple.compare !out)

let predicates t = Maintain.predicates t.maintain

let is_base t name = Maintain.is_base t.maintain name

let arity t name =
  let _, v = snap_view t name in
  Relation.arity v.v_base

let stats t = t.stats

let config t = t.config

let closed t =
  match t.state with
  | Live -> false
  | Poisoned _ | Closed -> true

let close t =
  Mutex.protect t.write_mutex (fun () ->
      match t.state with
      | Closed -> ()
      | Live | Poisoned _ ->
        t.state <- Closed;
        Parallel.destroy_runtime t.runtime)
