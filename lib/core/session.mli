(** A resident serving session: the compiled program, the persistent
    worker pool, and the materialized fixpoint, kept alive between
    requests and maintained incrementally under update batches
    (ISSUE 9 tentpole; see DESIGN.md §3h).

    Lifecycle: {!open_session} runs the initial fixpoint on a freshly
    spawned {!Dcd_engine.Parallel.runtime} and hands the result to
    {!Dcd_engine.Maintain}; {!apply_batch} maintains it; {!close} joins
    the pool.  Between batches the session is a database.

    {b Concurrency contract.}  Reads ({!lookup}, {!scan}, {!count},
    {!version}) are wait-free against the last published snapshot: each
    response carries the snapshot version it was computed from, and a
    read racing {!apply_batch} sees either the entire pre-batch or the
    entire post-batch fixpoint — never a torn mix (snapshots are
    copy-on-write and published with a single atomic store).  Writes
    ({!apply_batch}, {!close}) serialize on an internal mutex; callers
    that queue up behind a running maintenance round are {e coalesced} —
    their batches merge, in arrival order, into one maintenance round
    (see {!apply_batch}).  Any number of threads or domains may call
    anything. *)

type t

val open_session :
  plan:Dcd_planner.Physical.t ->
  edb:(string * Dcd_storage.Tuple.t Dcd_util.Vec.t) list ->
  ?config:Dcd_engine.Parallel.config ->
  unit ->
  t
(** Spawns the pool, evaluates the initial fixpoint, builds the
    maintenance state, and publishes snapshot version 0.  On any
    failure the pool is torn down before the exception escapes.
    @raise Dcd_engine.Engine_error.Error as {!Dcd_engine.Parallel.run}.
    @raise Invalid_argument as {!Dcd_engine.Maintain.create} (notably
    [config.max_iterations > 0]). *)

val apply_batch :
  t -> ?deadline:float -> Dcd_engine.Maintain.update list -> Dcd_engine.Maintain.batch_report
(** Applies one update batch, restores the fixpoint, publishes the next
    snapshot version, and folds the counters into [stats.maintenance].

    {b Writer coalescing.}  Callers that arrive while another caller's
    round is running enqueue; when the round finishes, one queued caller
    becomes the leader and applies {e every} queued batch as a single
    merged maintenance round (batches concatenate in arrival order, so
    the resulting fixpoint is the one serial application would reach).
    All callers of a merged round receive the same {!Maintain.batch_report}
    — the report of the merged round, not of their slice.  Each batch is
    validated {e before} it enqueues, so a malformed batch raises on its
    own caller and never contaminates a merged round.

    [deadline] (absolute, {!Dcd_util.Clock.now} seconds) gates
    {e admission} only — a batch already admitted runs to completion,
    because no reader-visible state exists between "admitted" and
    "published".  Time spent queued counts: the deadline is re-checked
    when the merged round forms.
    @raise Dcd_engine.Engine_error.Error [(Cancelled Deadline)] when the
    deadline passed while queued.
    @raise Invalid_argument on a malformed batch (state untouched) or a
    closed session.  Any other escape poisons the session: reads keep
    serving the last published snapshot, and every later write re-raises
    the {e original} poisoning exception verbatim, so callers can tell
    what actually went wrong rather than a generic "session poisoned". *)

val lookup : t -> string -> Dcd_storage.Tuple.t -> int * bool
(** [(version, present)] against the current snapshot. *)

val scan :
  t -> ?deadline:float -> ?prefix:Dcd_storage.Tuple.t -> string -> int * Dcd_storage.Tuple.t list
(** [(version, tuples)] — the relation's tuples whose leading columns
    equal [prefix] (all of them when empty), sorted.  [deadline] is
    polled every 256 tuples.  A prefix scan marks the relation so its
    next published version carries a sorted index. *)

val count : t -> string -> int * int
(** [(version, cardinality)]. *)

val version : t -> int
(** The currently published snapshot version (0 = initial fixpoint). *)

val snapshot : t -> int * (string * Dcd_storage.Relation.t) list
(** The raw published snapshot.  The relations are immutable; callers
    may read them at leisure, even across later batches. *)

val predicates : t -> string list

val is_base : t -> string -> bool

val arity : t -> string -> int

val stats : t -> Dcd_engine.Run_stats.t
(** Cumulative run + maintenance statistics (live object). *)

val config : t -> Dcd_engine.Parallel.config

val closed : t -> bool
(** [true] once closed or poisoned. *)

val close : t -> unit
(** Joins the worker pool.  Idempotent.  Reads against an already-taken
    snapshot stay valid; new requests are refused. *)
