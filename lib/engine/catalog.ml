module Relation = Dcd_storage.Relation
module Vec = Dcd_util.Vec

type t = { mutable rels : (string * Relation.t) list }

let create () = { rels = [] }

let find t name = List.assoc_opt name t.rels

let add_relation t rel =
  t.rels <- (Relation.name rel, rel) :: List.remove_assoc (Relation.name rel) t.rels

let ensure t ~name ~arity =
  match find t name with
  | Some rel ->
    if Relation.arity rel <> arity then
      invalid_arg (Printf.sprintf "Catalog.ensure: %s has arity %d, wanted %d" name
           (Relation.arity rel) arity);
    rel
  | None ->
    let rel = Relation.create ~name ~arity () in
    add_relation t rel;
    rel

let load t ~name ~arity tuples =
  let rel = ensure t ~name ~arity in
  Vec.iter (fun tup -> ignore (Relation.add rel tup)) tuples

let get t name =
  match find t name with
  | Some rel -> rel
  | None -> invalid_arg (Printf.sprintf "Catalog.get: unknown relation %s" name)

let names t = List.map fst t.rels
