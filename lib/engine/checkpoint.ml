module Arena = Dcd_storage.Arena

(* Double-banked fixpoint checkpoints (crash recovery, §3d of
   DESIGN.md).

   An epoch is a consistent cut of one recursive stratum taken at a
   globally quiescent point: every exchanged batch drained and merged,
   every morsel joined, every worker's fresh delta sitting in its delta
   arenas.  At such a point the whole evaluation state is exactly

     (per-worker stores, per-worker delta arenas, per-worker iteration
      counts)

   — nothing is in flight, so nothing else needs saving, and a rollback
   that restores ALL workers from the SAME committed epoch is sound:
   any batch discarded from the exchange was produced after the cut and
   will be regenerated when the senders re-run from it.  Restoring
   workers from different epochs would lose derivations, which is why
   commit is a single atomic over the whole matrix of banks.

   Banks are double-buffered by epoch parity: the cut for epoch [e]
   writes [banks.(w).(e land 1)] while the previously committed epoch
   [e - 1] stays intact in the other bank.  A crash in the middle of a
   cut therefore never corrupts the recovery point — [committed] still
   names the old epoch and its banks were not touched.  [commit] runs
   on worker 0 only, strictly after a barrier has collected every
   worker's bank write, and is itself followed by a barrier before any
   worker mutates post-cut state.

   The [requested] flag is the asynchronous strategies' rendezvous: a
   worker whose local iteration count is [every] past its last cut
   raises it, and every worker polls it at its loop top and briefly
   forces global quiescence ([Worker.join_cut]) to take the cut.  The
   Global strategy needs neither flag nor extra quiescence — every
   barrier already is a quiescent point, so it cuts in lockstep on a
   shared pass count. *)

type bank = {
  mutable bk_snaps : Rec_store.snapshot array; (* per copy, this worker's row *)
  mutable bk_deltas : Arena.t array; (* per copy, deep copies *)
  mutable bk_iterations : int; (* the worker's local iteration count at the cut *)
}

type t = {
  every : int;
  workers : int;
  banks : bank array array; (* banks.(worker).(epoch land 1) *)
  committed : int Atomic.t; (* last committed epoch; 0 = base state only *)
  requested : bool Atomic.t;
}

let create ~workers ~every =
  if workers < 1 then invalid_arg "Checkpoint.create: workers must be >= 1";
  if every < 1 then invalid_arg "Checkpoint.create: every must be >= 1";
  {
    every;
    workers;
    banks =
      Array.init workers (fun _ ->
          Array.init 2 (fun _ -> { bk_snaps = [||]; bk_deltas = [||]; bk_iterations = 0 }));
    committed = Atomic.make 0;
    requested = Atomic.make false;
  }

let every t = t.every

let epoch t = Atomic.get t.committed

let next_epoch t = Atomic.get t.committed + 1

let bank t ~worker ~epoch =
  if epoch < 1 then invalid_arg "Checkpoint.bank: epochs start at 1";
  t.banks.(worker).(epoch land 1)

let commit t ~epoch = Atomic.set t.committed epoch

let request t = Atomic.set t.requested true

let requested t = Atomic.get t.requested

let clear_request t = Atomic.set t.requested false

(* Bank arenas are recycled across cuts (the copy layout of a stratum
   never changes), so after the first two cuts a cut allocates nothing
   but the store snapshots — and Set-store snapshots are O(1)
   watermarks. *)
let write_bank bank ~snaps ~deltas ~iterations =
  bank.bk_snaps <- snaps;
  let n = Array.length deltas in
  let reusable =
    Array.length bank.bk_deltas = n
    && Array.for_all2 (fun d s -> Arena.arity d = Arena.arity s) bank.bk_deltas deltas
  in
  if not reusable then
    bank.bk_deltas <- Array.map (fun a -> Arena.create ~arity:(Arena.arity a) ()) deltas;
  Array.iteri
    (fun i src ->
      let dst = bank.bk_deltas.(i) in
      Arena.clear dst;
      let len = Arena.length src in
      if len > 0 then ignore (Arena.append_block dst (Arena.data src) ~off:0 ~tuples:len))
    deltas;
  bank.bk_iterations <- iterations
