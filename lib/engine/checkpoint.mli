(** Double-banked fixpoint checkpoints for crash recovery.

    An {e epoch} is a consistent cut of one recursive stratum taken at
    a globally quiescent point (exchange empty, morsels joined, deltas
    merged): per worker, a snapshot of its store row, a deep copy of
    its delta arenas, and its local iteration count.  Banks are
    double-buffered by epoch parity so cutting epoch [e] never touches
    the banks of the committed epoch [e - 1]; [commit] — worker 0,
    between two barriers — atomically promotes the new epoch.  Rollback
    ({!Parallel}) restores {e every} worker from the {e same} committed
    epoch; in-flight exchange batches can then be discarded because
    their senders re-run from the cut and regenerate them.  Restoring a
    mix of epochs would lose derivations and is never done. *)

type bank = {
  mutable bk_snaps : Rec_store.snapshot array;
      (** one snapshot per copy, for the owning worker's store row *)
  mutable bk_deltas : Dcd_storage.Arena.t array;
      (** deep copies of the worker's delta arenas at the cut *)
  mutable bk_iterations : int;
      (** the worker's local iteration count at the cut *)
}

type t

val create : workers:int -> every:int -> t
(** [every] is the cut cadence in iterations (>= 1). *)

val every : t -> int

val epoch : t -> int
(** Last committed epoch; [0] means none (base state only). *)

val next_epoch : t -> int

val bank : t -> worker:int -> epoch:int -> bank
(** The bank slot for [worker] at [epoch] (>= 1): parity-indexed, so
    [epoch] and [epoch - 1] never share a slot. *)

val write_bank :
  bank ->
  snaps:Rec_store.snapshot array ->
  deltas:Dcd_storage.Arena.t array ->
  iterations:int ->
  unit
(** Fills a bank: adopts [snaps], deep-copies [deltas] (recycling the
    bank's arenas from two epochs ago), records [iterations]. *)

val commit : t -> epoch:int -> unit
(** Worker 0 only, after a barrier has collected every bank write. *)

val request : t -> unit
(** Raise the asynchronous cut-request flag (SSP/DWS: a worker [every]
    iterations past its last cut asks everyone to rendezvous). *)

val requested : t -> bool

val clear_request : t -> unit
