type dws_opts = {
  tau_cap : float;
  poll_interval : float;
  decay : float;
}

let default_dws = { tau_cap = 0.01; poll_interval = 0.0002; decay = 0.98 }

type t =
  | Global
  | Ssp of int
  | Dws of dws_opts

let dws = Dws default_dws

type config = {
  timeout : float option;
  cancel : Dcd_concurrent.Cancel.t option;
  stall_window : float option;
  stall_poll : float;
}

let default_config = { timeout = None; cancel = None; stall_window = None; stall_poll = 0.02 }

let to_string = function
  | Global -> "global"
  | Ssp s -> Printf.sprintf "ssp(%d)" s
  | Dws _ -> "dws"
