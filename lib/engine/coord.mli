(** Coordination strategies for parallel semi-naive evaluation (paper §4).

    - [Global]: Algorithm 1 — a barrier after every global iteration.
      This is the DeALS-MC-style baseline; fast workers idle at the
      barrier until the slowest finishes.
    - [Ssp s]: the stale-synchronous extension — a worker may run up to
      [s] local iterations ahead of the slowest active worker before
      blocking.
    - [Dws]: the paper's contribution (Algorithm 2) — no global
      coordination at all; each worker decides locally, from the
      queueing model ({!Qmodel}), whether to wait up to [τ_i] for its
      pending delta to reach [ω_i] tuples or to proceed immediately. *)

type dws_opts = {
  tau_cap : float; (** hard cap on a single wait, seconds (deadlock-avoidance
                       timeout of Algorithm 2, line 7) *)
  poll_interval : float; (** sleep between re-checks while waiting, seconds *)
  decay : float; (** per-iteration exponential forgetting of statistics *)
}

val default_dws : dws_opts

type t =
  | Global
  | Ssp of int
  | Dws of dws_opts

val dws : t
(** [Dws default_dws]. *)

(** Run-guard configuration: cooperative cancellation and the stall
    watchdog.  The strategy loops poll the (internal or caller-supplied)
    {!Dcd_concurrent.Cancel} token once per local iteration, so any of
    these knobs aborts the fixpoint cleanly — barrier poisoned, queues
    abandoned, a structured {!Engine_error.t} raised — rather than
    leaving domains running. *)
type config = {
  timeout : float option;
      (** wall-clock budget for the whole run, seconds; on expiry the
          run raises [Cancelled Deadline] *)
  cancel : Dcd_concurrent.Cancel.t option;
      (** caller-owned token; cancel it from any thread to abort *)
  stall_window : float option;
      (** arm the watchdog: if no worker makes progress (heartbeats,
          tuples exchanged, iterations) for this many seconds, the run
          is torn down with [Stalled] and a state snapshot.  Must
          comfortably exceed the longest single rule×delta evaluation,
          which cannot be interrupted mid-flight. *)
  stall_poll : float;  (** watchdog sampling interval, seconds *)
}

val default_config : config
(** No timeout, no external token, watchdog off, 20 ms sampling. *)

val to_string : t -> string
