module Ast = Dcd_datalog.Ast
module Tuple = Dcd_storage.Tuple
module Tuple_set = Dcd_storage.Tuple_set
module Partition = Dcd_storage.Partition
module Frame = Dcd_concurrent.Frame

type t = {
  me : int;
  exch : Exchange.t;
  h : Partition.t;
  partial_agg : bool;
  take_frame : arity:int -> contrib:bool -> Frame.t;
  outbuf : Frame.t array array; (* outbuf.(copy).(dest) *)
}

let create ~exch ~me ~h ~partial_agg ~take_frame =
  let copies = Exchange.copies exch in
  let n = Exchange.workers exch in
  let outbuf =
    Array.init (Array.length copies) (fun cid ->
        Array.init n (fun _ ->
            take_frame ~arity:copies.(cid).Exchange.ci_arity ~contrib:(Exchange.contrib exch cid)))
  in
  { me; exch; h; partial_agg; take_frame; outbuf }

(* [tuple]/[contributor] are Eval's emission scratch: Frame.push copies
   them into the packed buffer before returning.  The single-target case
   (the overwhelmingly common one) is specialized so the emit path
   allocates nothing and does no list traversal — [targets] is the
   head's copy-id array, resolved once at rule-compile time. *)
let emitter t ~targets =
  let copies = Exchange.copies t.exch in
  if Array.length targets = 1 then begin
    let cid = targets.(0) in
    let bufs = t.outbuf.(cid) and route = copies.(cid).Exchange.ci_route in
    fun ~tuple ~contributor ->
      Frame.push bufs.(Partition.of_tuple t.h ~cols:route tuple) tuple contributor
  end
  else
    fun ~tuple ~contributor ->
      for k = 0 to Array.length targets - 1 do
        let cid = Array.unsafe_get targets k in
        let dest = Partition.of_tuple t.h ~cols:copies.(cid).Exchange.ci_route tuple in
        Frame.push t.outbuf.(cid).(dest) tuple contributor
      done

let flush t ~ws =
  let copies = Exchange.copies t.exch in
  let n = Exchange.workers t.exch in
  for cid = 0 to Array.length copies - 1 do
    let ci = copies.(cid) in
    for dest = 0 to n - 1 do
      let buf = t.outbuf.(cid).(dest) in
      if not (Frame.is_empty buf) then begin
        match (t.partial_agg, ci.Exchange.ci_agg) with
        | true, Some (pos, ((Ast.Min | Ast.Max) as kind)) ->
          (* partial aggregation: keep only the best record per group
             within this outgoing frame (paper §5.2.3).  Group identity
             is every column but the value; candidates are hashed and
             compared in place in the frame buffer, so no boxed group
             keys exist. *)
          let arity = ci.Exchange.ci_arity in
          let gcols = Array.init (arity - 1) (fun i -> if i < pos then i else i + 1) in
          let rec pow2 p need = if p >= need then p else pow2 (p * 2) need in
          let cap = pow2 16 (2 * Frame.count buf) in
          let mask = cap - 1 in
          let table = Array.make cap 0 (* record toff + 1; 0 = empty *) in
          let data = Frame.data buf in
          let glen = Array.length gcols in
          (* one closure per flush, not per record: hoisted out of the
             [Frame.iter] callback and driven by a while loop *)
          let group_eq a b =
            let rec loop i =
              i = glen
              ||
              let c = Array.unsafe_get gcols i in
              data.(a + c) = data.(b + c) && loop (i + 1)
            in
            loop 0
          in
          Frame.iter buf (fun _ ~toff ~clen:_ ~coff:_ ->
              let i = ref (Tuple.hash_cols data ~base:toff gcols land mask) in
              let placed = ref false in
              while not !placed do
                match table.(!i) with
                | 0 ->
                  table.(!i) <- toff + 1;
                  placed := true
                | e ->
                  let cur = e - 1 in
                  if group_eq cur toff then begin
                    let keep =
                      if kind = Ast.Min then data.(toff + pos) < data.(cur + pos)
                      else data.(toff + pos) > data.(cur + pos)
                    in
                    if keep then table.(!i) <- toff + 1;
                    placed := true
                  end
                  else i := (!i + 1) land mask
              done);
          let out = Frame.create ~capacity:(Frame.count buf) ~arity ~contrib:true () in
          Array.iter
            (fun e -> if e <> 0 then Frame.push_slice out data ~toff:(e - 1) ~clen:0 ~coff:0)
            table;
          Frame.clear buf;
          Exchange.send t.exch ~ws ~src:t.me ~dest ~copy:cid out
        | true, None ->
          (* set semantics: drop duplicates within the frame, probing
             straight out of the packed records *)
          let arity = ci.Exchange.ci_arity in
          let seen = Tuple_set.create ~capacity:(Frame.count buf) () in
          let out = Frame.create ~capacity:(Frame.count buf) ~arity ~contrib:false () in
          Frame.iter buf (fun data ~toff ~clen:_ ~coff:_ ->
              if Tuple_set.add_slice seen data toff arity then
                Frame.push_slice out data ~toff ~clen:0 ~coff:0);
          Frame.clear buf;
          Exchange.send t.exch ~ws ~src:t.me ~dest ~copy:cid out
        | _ ->
          (* ship the accumulation frame itself — ownership passes to
             the consumer, the producer starts a fresh one *)
          t.outbuf.(cid).(dest) <-
            t.take_frame ~arity:ci.Exchange.ci_arity ~contrib:(Exchange.contrib t.exch cid);
          Exchange.send t.exch ~ws ~src:t.me ~dest ~copy:cid buf
      end
    done
  done

let release t give = Array.iter (fun row -> Array.iter give row) t.outbuf
