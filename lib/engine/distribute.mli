(** One worker's distribution side: per-(copy, destination) outgoing
    frames, the emit closures the join kernel writes through, and the
    flush path — with optional partial aggregation (min/max pre-combine
    per group) and per-frame set dedup (paper §5.2.3) — into the
    {!Exchange} fabric.

    Owned by exactly one worker; no synchronization inside (the only
    cross-worker effect is {!Exchange.send} at flush time). *)

type t

val create :
  exch:Exchange.t ->
  me:int ->
  h:Dcd_storage.Partition.t ->
  partial_agg:bool ->
  take_frame:(arity:int -> contrib:bool -> Dcd_concurrent.Frame.t) ->
  t
(** [take_frame] supplies (possibly recycled) empty frames for the
    outgoing buffers — the worker's scratch pool, so buffers survive
    from one stratum to the next. *)

val emitter :
  t ->
  targets:int array ->
  (tuple:Dcd_storage.Tuple.t -> contributor:Dcd_storage.Tuple.t -> unit)
(** The emit closure for one rule head: partitions the tuple under each
    target copy's route and appends it to the matching outgoing frame.
    [targets] is the head predicate's copy-id array, resolved once at
    rule-compile time; the single-target case is specialized to a
    straight array-indexed push (no list traversal, no allocation). *)

val flush : t -> ws:Run_stats.worker -> unit
(** Ships every non-empty outgoing frame to its destination, applying
    partial aggregation / set dedup per frame when enabled. *)

val release : t -> (Dcd_concurrent.Frame.t -> unit) -> unit
(** Hands every outgoing buffer frame back (end of stratum), for reuse
    by the next stratum's {!create}. *)
