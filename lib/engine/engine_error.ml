type worker_snapshot = {
  ws_worker : int;
  ws_active : bool;
  ws_iterations : int;
  ws_consumed : int;
  ws_inbox_tuples : int;
  ws_inbox_batches : int;
}

type stall_diagnostic = {
  stall_window : float;
  stall_strategy : string;
  stall_sent : int;
  stall_consumed : int;
  stall_workers : worker_snapshot array;
}

type crash = {
  worker : int;
  error : exn;
  backtrace : string;
}

type t =
  | Cancelled of Dcd_concurrent.Cancel.reason
  | Worker_crashed of {
      worker : int;
      error : exn;
      backtrace : string;
      others : crash list;
    }
  | Stalled of stall_diagnostic

exception Error of t

let pp_diagnostic fmt d =
  Format.fprintf fmt
    "no worker progress for %.2fs under %s; sent=%d consumed=%d (%d in flight)@." d.stall_window
    d.stall_strategy d.stall_sent d.stall_consumed (d.stall_sent - d.stall_consumed);
  Array.iter
    (fun w ->
      Format.fprintf fmt "  w%d: %s, %d iterations, %d consumed, inbox %d tuples / %d batches@."
        w.ws_worker
        (if w.ws_active then "active" else "idle")
        w.ws_iterations w.ws_consumed w.ws_inbox_tuples w.ws_inbox_batches)
    d.stall_workers

let to_string = function
  | Cancelled reason ->
    Printf.sprintf "evaluation cancelled (%s)" (Dcd_concurrent.Cancel.reason_to_string reason)
  | Worker_crashed { worker; error; others; _ } ->
    let peers =
      match others with
      | [] -> ""
      | l ->
        Printf.sprintf " (+%d more: %s)" (List.length l)
          (String.concat ", " (List.map (fun c -> Printf.sprintf "w%d" c.worker) l))
    in
    Printf.sprintf "worker %d crashed: %s%s" worker (Printexc.to_string error) peers
  | Stalled d ->
    Printf.sprintf "evaluation stalled: no worker progress for %.2fs under %s (%d tuples in flight)"
      d.stall_window d.stall_strategy (d.stall_sent - d.stall_consumed)

let () =
  Printexc.register_printer (function
    | Error e -> Some ("Engine_error: " ^ to_string e)
    | _ -> None)
