(** Structured failures of the parallel runtime.

    Everything that aborts a fixpoint — a deadline, an external cancel,
    a crashed worker, a detected stall — surfaces as one [Error of t]
    exception carrying enough structure to act on: the faulting worker
    with its backtrace (and its poisoned peers, separated), or the
    watchdog's state snapshot at the moment progress stopped.  Raw
    worker exceptions never escape {!Parallel.run}. *)

type worker_snapshot = {
  ws_worker : int;
  ws_active : bool;  (** termination-protocol active flag *)
  ws_iterations : int;  (** local iterations completed *)
  ws_consumed : int;  (** tuples drained from its inbox *)
  ws_inbox_tuples : int;  (** occupancy |M_i^*| awaiting this worker *)
  ws_inbox_batches : int;  (** queue elements awaiting this worker *)
}

type stall_diagnostic = {
  stall_window : float;  (** seconds without progress before firing *)
  stall_strategy : string;
  stall_sent : int;  (** global sent counter at the snapshot *)
  stall_consumed : int;  (** sum of consumed counters at the snapshot *)
  stall_workers : worker_snapshot array;
}

type crash = {
  worker : int;
  error : exn;
  backtrace : string;
}

type t =
  | Cancelled of Dcd_concurrent.Cancel.reason
      (** the run was cancelled cooperatively (deadline or caller) *)
  | Worker_crashed of {
      worker : int;  (** the true origin: first worker whose body raised *)
      error : exn;
      backtrace : string;
      others : crash list;  (** further genuine crashes, if any *)
    }
  | Stalled of stall_diagnostic
      (** the watchdog saw no progress for its window *)

exception Error of t

val to_string : t -> string
(** One-line rendering (CLI stderr). *)

val pp_diagnostic : Format.formatter -> stall_diagnostic -> unit
(** Multi-line state snapshot dump. *)
