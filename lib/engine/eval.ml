open Dcd_planner
module Tuple = Dcd_storage.Tuple
module Arena = Dcd_storage.Arena
module Hash_index = Dcd_storage.Hash_index
module Bptree = Dcd_btree.Bptree
module Vec = Dcd_util.Vec

type context = {
  base_iter : string -> (int array -> int -> unit) -> unit;
  base_index : string -> int array -> Hash_index.t;
  base_sorted : string -> int array -> unit Bptree.t;
  rec_resolve : pred:string -> route:int array -> int;
  rec_matches : int -> key:int array -> (int array -> int -> unit) -> unit;
}

type emit = tuple:Tuple.t -> contributor:Tuple.t -> unit

exception Found

(* Tuples flow through the pipeline as (data, off) cursors into flat
   storage — an arena, an index arena, a packed frame — never as boxed
   arrays.  A boxed tuple is just the cursor (tup, 0).  The per-field
   work (binds, checks, key/head fills) runs through the monomorphic
   closures of {!Kernel}, specialized once at prepare time. *)

type prepared = {
  cr : Physical.compiled_rule;
  regs : int array;
  entry : unit -> unit; (* pipeline from the first step *)
  scan_bind : int array -> int -> unit;
  scan_check : int array -> int -> bool;
}

(* Top-level recursion, not a local [let rec]: runs on every trie probe,
   and a local recursive closure would be heap-allocated per call by the
   non-flambda compiler. *)
let rec prefix_eq_loop (a : int array) (b : int array) i n =
  i = n || (Array.unsafe_get a i = Array.unsafe_get b i && prefix_eq_loop a b (i + 1) n)

(* Compiles a step array into a closure chain ending in [cont]. *)
let build_steps ctx regs (steps : Physical.step array) cont =
  let nsteps = Array.length steps in
  let rec build k =
    if k = nsteps then cont
    else begin
      let next = build (k + 1) in
      match steps.(k) with
      | Physical.Filter { op; lhs; rhs } ->
        fun () ->
          (match (Physical.eval_code lhs regs, Physical.eval_code rhs regs) with
          | x, y -> if Physical.eval_cmp op x y then next ()
          | exception Division_by_zero -> ())
      | Physical.Compute { reg; code } ->
        fun () ->
          (match Physical.eval_code code regs with
          | v ->
            regs.(reg) <- v;
            next ()
          | exception Division_by_zero -> ())
      | Physical.Lookup { rel; key_cols; key_src; binds; checks; negated; _ } ->
        (* binds first: a residual check may compare against a register
           bound by this very tuple (within-atom variable repeats) *)
        let bind = Kernel.binder binds ~regs in
        let check = Kernel.checker checks ~regs in
        let on_match data off =
          bind data off;
          if check data off then if negated then raise Found else next ()
        in
        let key = Array.make (Array.length key_src) 0 in
        let fill_key = Kernel.filler key_src ~regs ~buf:key in
        let iterate =
          match rel with
          | Physical.R_rec { pred; route } ->
            let cid = ctx.rec_resolve ~pred ~route in
            fun () ->
              fill_key ();
              ctx.rec_matches cid ~key on_match
          | Physical.R_base pred ->
            if Array.length key_cols = 0 then begin
              let scan = ctx.base_iter pred in
              fun () -> scan on_match
            end
            else begin
              let idx = ctx.base_index pred key_cols in
              fun () ->
                fill_key ();
                Hash_index.iter_matches idx key on_match
            end
        in
        if negated then
          fun () ->
            (match iterate () with
            | () -> next () (* no match found: anti-join succeeds *)
            | exception Found -> ())
        else iterate
    end
  in
  build 0

(* --- generic (worst-case-optimal) join ---

   One closure per elimination level.  Each participating atom holds a
   B⁺-tree cursor over its sorted trie index plus a full-length working
   key buffer: the scan fills the bound-prefix slots once per scanned
   tuple, and each level writes its resolved value into the slot the
   variable occupies in that atom's trie order.  Within one scanned
   tuple every cursor only moves forward (leapfrog), so almost all seeks
   resolve inside the current leaf; the backward seek at the next
   scanned tuple re-descends from the root. *)
let build_gj ctx (g : Physical.gj) ~regs ~emit_stage =
  let atoms = g.gj_atoms in
  let na = Array.length atoms in
  let cursors =
    Array.map
      (fun (ga : Physical.gj_atom) -> Bptree.cursor (ctx.base_sorted ga.ga_pred ga.ga_cols))
      atoms
  in
  let keybufs =
    Array.map (fun (ga : Physical.gj_atom) -> Array.make (Array.length ga.ga_cols) 0) atoms
  in
  let prefix_fills =
    Array.mapi
      (fun i (ga : Physical.gj_atom) -> Kernel.filler ga.ga_prefix ~regs ~buf:keybufs.(i))
      atoms
  in
  let nlevels = Array.length g.gj_levels in
  let rec build_level li =
    if li = nlevels then emit_stage
    else begin
      let lv = g.gj_levels.(li) in
      let after = build_steps ctx regs lv.gv_steps (build_level (li + 1)) in
      let np = Array.length lv.gv_atoms in
      let ais = Array.map fst lv.gv_atoms in
      let depths = Array.map snd lv.gv_atoms in
      let entry_bufs = Array.map (fun d -> Array.make (d - 1) 0) depths in
      let cand_bufs = Array.map (fun d -> Array.make d 0) depths in
      let cands = Array.make np 0 in
      let reg = lv.gv_reg in
      (* Position participant [j] at its first value >= [v] under the
         current prefix; false when the subtrie is exhausted. *)
      let probe j v =
        let ai = ais.(j) in
        let d = depths.(j) in
        let kb = keybufs.(ai) in
        let cb = cand_bufs.(j) in
        Array.blit kb 0 cb 0 (d - 1);
        cb.(d - 1) <- v;
        Bptree.seek_geq cursors.(ai) cb
        &&
        let k = Bptree.cursor_key cursors.(ai) in
        prefix_eq_loop k kb 0 (d - 1)
        &&
        (cands.(j) <- Array.unsafe_get k (d - 1);
         true)
      in
      (* First value of participant [j] under the current prefix. *)
      let enter j =
        let ai = ais.(j) in
        let d = depths.(j) in
        let kb = keybufs.(ai) in
        let eb = entry_bufs.(j) in
        Array.blit kb 0 eb 0 (d - 1);
        Bptree.seek_geq cursors.(ai) eb
        &&
        let k = Bptree.cursor_key cursors.(ai) in
        prefix_eq_loop k kb 0 (d - 1)
        &&
        (cands.(j) <- Array.unsafe_get k (d - 1);
         true)
      in
      let bind_match v =
        Array.unsafe_set regs reg v;
        for j = 0 to np - 1 do
          keybufs.(ais.(j)).(depths.(j) - 1) <- v
        done;
        after ()
      in
      (* Leapfrog: raise every candidate to the common frontier [v];
         when all [np] agree, bind and descend, then resume past [v].
         All recursive calls are tail calls. *)
      let rec settle v j =
        if j = np then begin
          bind_match v;
          if v < max_int && probe 0 (v + 1) then settle cands.(0) 0
        end
        else if cands.(j) = v then settle v (j + 1)
        else if cands.(j) > v then settle cands.(j) 0
        else if probe j v then
          if cands.(j) = v then settle v (j + 1) else settle cands.(j) 0
      in
      let rec init j vmax =
        if j = np then settle vmax 0
        else if enter j then init (j + 1) (if cands.(j) > vmax then cands.(j) else vmax)
      in
      fun () -> init 0 min_int
    end
  in
  let levels_entry = build_level 0 in
  build_steps ctx regs g.gj_prelude (fun () ->
      for i = 0 to na - 1 do
        (Array.unsafe_get prefix_fills i) ()
      done;
      levels_entry ())

let prepare (cr : Physical.compiled_rule) ctx ~emit =
  let regs = Array.make (max 1 cr.nregs) 0 in
  let head = cr.head in
  (* The emitted tuple and contributor are filled into scratch buffers
     reused across emissions: [emit] sees them transiently and must
     copy on retention (the flat sinks blit them into frames/arenas). *)
  let head_buf = Array.make (Array.length head.args) 0 in
  let contrib_src =
    match head.agg with
    | Some (_, _, contrib) when Array.length contrib > 0 -> Some contrib
    | _ -> None
  in
  let contrib_buf =
    match contrib_src with Some c -> Array.make (Array.length c) 0 | None -> [||]
  in
  let head_fill = Kernel.filler head.args ~regs ~buf:head_buf in
  let contrib_fill =
    Kernel.filler
      (match contrib_src with Some c -> c | None -> [||])
      ~regs ~buf:contrib_buf
  in
  let emit_stage () =
    head_fill ();
    contrib_fill ();
    emit ~tuple:head_buf ~contributor:contrib_buf
  in
  let entry =
    match cr.gj with
    | Some g -> build_gj ctx g ~regs ~emit_stage
    | None -> build_steps ctx regs cr.steps emit_stage
  in
  let scan_binds, scan_checks =
    match cr.scan with
    | Physical.S_base { binds; checks; _ } -> (binds, checks)
    | Physical.S_delta { binds; checks; _ } -> (binds, checks)
    | Physical.S_unit -> ([||], [||])
  in
  {
    cr;
    regs;
    entry;
    scan_bind = Kernel.binder scan_binds ~regs;
    scan_check = Kernel.checker scan_checks ~regs;
  }

let check_scan_kind p ~unit_input =
  match (p.cr.scan, unit_input) with
  | Physical.S_unit, true | (Physical.S_base _ | Physical.S_delta _), false -> ()
  | Physical.S_unit, false -> invalid_arg "Eval.run: tuple input for a unit-scan rule"
  | (Physical.S_base _ | Physical.S_delta _), true ->
    invalid_arg "Eval.run: `Unit scan input for a rule that scans a relation"

let run_prepared p ~scan =
  match scan with
  | `Unit ->
    check_scan_kind p ~unit_input:true;
    p.entry ();
    1
  | `Tuples batch ->
    check_scan_kind p ~unit_input:false;
    let bind = p.scan_bind and check = p.scan_check in
    Vec.iter
      (fun tup ->
        bind tup 0;
        if check tup 0 then p.entry ())
      batch;
    Vec.length batch
  | `Flat arena ->
    check_scan_kind p ~unit_input:false;
    let bind = p.scan_bind and check = p.scan_check in
    (* Read count/data once: rules must not grow the scanned arena
       (deltas are only mutated between iterations). *)
    let n = Arena.length arena and k = Arena.arity arena in
    let data = Arena.data arena in
    let off = ref 0 in
    for _ = 1 to n do
      bind data !off;
      if check data !off then p.entry ();
      off := !off + k
    done;
    n
  | `Flat_range (arena, first, len) ->
    check_scan_kind p ~unit_input:false;
    let bind = p.scan_bind and check = p.scan_check in
    let k = Arena.arity arena in
    let data = Arena.data arena in
    let off = ref (first * k) in
    for _ = 1 to len do
      bind data !off;
      if check data !off then p.entry ();
      off := !off + k
    done;
    len

let run cr ctx ~scan ~emit = run_prepared (prepare cr ctx ~emit) ~scan
