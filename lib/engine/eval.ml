open Dcd_planner
module Tuple = Dcd_storage.Tuple
module Hash_index = Dcd_storage.Hash_index
module Vec = Dcd_util.Vec

type context = {
  base_iter : string -> (Tuple.t -> unit) -> unit;
  base_index : string -> int array -> Hash_index.t;
  rec_resolve : pred:string -> route:int array -> int;
  rec_matches : int -> key:int array -> (Tuple.t -> unit) -> unit;
}

type emit = tuple:Tuple.t -> contributor:Tuple.t -> unit

exception Found

let src_value regs = function
  | Physical.Const c -> c
  | Physical.Reg r -> Array.unsafe_get regs r

let checks_pass regs (tup : Tuple.t) checks =
  let n = Array.length checks in
  let rec loop i =
    i = n
    ||
    let col, src = Array.unsafe_get checks i in
    tup.(col) = src_value regs src && loop (i + 1)
  in
  loop 0

let apply_binds regs (tup : Tuple.t) binds =
  Array.iter (fun (col, r) -> regs.(r) <- tup.(col)) binds

(* A rule compiled against a concrete context: the operator pipeline as
   a closure chain built once, so the per-tuple path performs no
   dispatch on plan structure, no string comparison (recursive copies
   and base indexes are resolved up front) and no key allocation (each
   Lookup step owns a scratch key buffer, filled in place per probe —
   every consumer either uses the key transiently or copies it on
   retention). *)
type prepared = {
  cr : Physical.compiled_rule;
  regs : int array;
  entry : unit -> unit; (* pipeline from the first step *)
  scan_binds : (int * int) array;
  scan_checks : (int * Physical.src) array;
}

let prepare (cr : Physical.compiled_rule) ctx ~emit =
  let regs = Array.make (max 1 cr.nregs) 0 in
  let head = cr.head in
  let emit_stage () =
    let tuple = Array.map (src_value regs) head.args in
    let contributor =
      match head.agg with
      | Some (_, _, contrib) when Array.length contrib > 0 -> Array.map (src_value regs) contrib
      | _ -> [||]
    in
    emit ~tuple ~contributor
  in
  let nsteps = Array.length cr.steps in
  let rec build k =
    if k = nsteps then emit_stage
    else begin
      let next = build (k + 1) in
      match cr.steps.(k) with
      | Physical.Filter { op; lhs; rhs } ->
        fun () ->
          (match (Physical.eval_code lhs regs, Physical.eval_code rhs regs) with
          | x, y -> if Physical.eval_cmp op x y then next ()
          | exception Division_by_zero -> ())
      | Physical.Compute { reg; code } ->
        fun () ->
          (match Physical.eval_code code regs with
          | v ->
            regs.(reg) <- v;
            next ()
          | exception Division_by_zero -> ())
      | Physical.Lookup { rel; key_cols; key_src; binds; checks; negated; _ } ->
        (* binds first: a residual check may compare against a register
           bound by this very tuple (within-atom variable repeats) *)
        let on_match tup =
          apply_binds regs tup binds;
          if checks_pass regs tup checks then if negated then raise Found else next ()
        in
        let nkey = Array.length key_src in
        let key = Array.make nkey 0 in
        let fill_key () =
          for i = 0 to nkey - 1 do
            Array.unsafe_set key i (src_value regs (Array.unsafe_get key_src i))
          done
        in
        let iterate =
          match rel with
          | Physical.R_rec { pred; route } ->
            let cid = ctx.rec_resolve ~pred ~route in
            fun () ->
              fill_key ();
              ctx.rec_matches cid ~key on_match
          | Physical.R_base pred ->
            if Array.length key_cols = 0 then begin
              let scan = ctx.base_iter pred in
              fun () -> scan on_match
            end
            else begin
              let idx = ctx.base_index pred key_cols in
              fun () ->
                fill_key ();
                Hash_index.iter_matches idx key on_match
            end
        in
        if negated then
          fun () ->
            (match iterate () with
            | () -> next () (* no match found: anti-join succeeds *)
            | exception Found -> ())
        else iterate
    end
  in
  let scan_binds, scan_checks =
    match cr.scan with
    | Physical.S_base { binds; checks; _ } -> (binds, checks)
    | Physical.S_delta { binds; checks; _ } -> (binds, checks)
    | Physical.S_unit -> ([||], [||])
  in
  { cr; regs; entry = build 0; scan_binds; scan_checks }

let run_prepared p ~scan =
  match scan with
  | `Unit ->
    (match p.cr.scan with
    | Physical.S_unit -> p.entry ()
    | Physical.S_base _ | Physical.S_delta _ ->
      invalid_arg "Eval.run: `Unit scan input for a rule that scans a relation");
    1
  | `Tuples batch ->
    (match p.cr.scan with
    | Physical.S_base _ | Physical.S_delta _ -> ()
    | Physical.S_unit -> invalid_arg "Eval.run: tuple input for a unit-scan rule");
    let regs = p.regs and binds = p.scan_binds and checks = p.scan_checks in
    Vec.iter
      (fun tup ->
        apply_binds regs tup binds;
        if checks_pass regs tup checks then p.entry ())
      batch;
    Vec.length batch

let run cr ctx ~scan ~emit = run_prepared (prepare cr ctx ~emit) ~scan
