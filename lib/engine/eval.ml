open Dcd_planner
module Tuple = Dcd_storage.Tuple
module Arena = Dcd_storage.Arena
module Hash_index = Dcd_storage.Hash_index
module Vec = Dcd_util.Vec

type context = {
  base_iter : string -> (int array -> int -> unit) -> unit;
  base_index : string -> int array -> Hash_index.t;
  rec_resolve : pred:string -> route:int array -> int;
  rec_matches : int -> key:int array -> (int array -> int -> unit) -> unit;
}

type emit = tuple:Tuple.t -> contributor:Tuple.t -> unit

exception Found

let src_value regs = function
  | Physical.Const c -> c
  | Physical.Reg r -> Array.unsafe_get regs r

(* Tuples flow through the pipeline as (data, off) cursors into flat
   storage — an arena, an index arena, a packed frame — never as boxed
   arrays.  A boxed tuple is just the cursor (tup, 0). *)
(* Top-level recursion, not a local [let rec]: this runs once per
   scanned tuple and once per join match, and a local recursive closure
   would be heap-allocated on every call by the non-flambda compiler. *)
let rec checks_loop regs (data : int array) off checks i n =
  i = n
  ||
  let col, src = Array.unsafe_get checks i in
  Array.unsafe_get data (off + col) = src_value regs src
  && checks_loop regs data off checks (i + 1) n

let checks_pass regs (data : int array) off checks =
  checks_loop regs data off checks 0 (Array.length checks)

let apply_binds regs (data : int array) off binds =
  for i = 0 to Array.length binds - 1 do
    let col, r = Array.unsafe_get binds i in
    Array.unsafe_set regs r (Array.unsafe_get data (off + col))
  done

type prepared = {
  cr : Physical.compiled_rule;
  regs : int array;
  entry : unit -> unit; (* pipeline from the first step *)
  scan_binds : (int * int) array;
  scan_checks : (int * Physical.src) array;
}

let prepare (cr : Physical.compiled_rule) ctx ~emit =
  let regs = Array.make (max 1 cr.nregs) 0 in
  let head = cr.head in
  (* The emitted tuple and contributor are filled into scratch buffers
     reused across emissions: [emit] sees them transiently and must
     copy on retention (the flat sinks blit them into frames/arenas). *)
  let head_buf = Array.make (Array.length head.args) 0 in
  let contrib_src =
    match head.agg with
    | Some (_, _, contrib) when Array.length contrib > 0 -> Some contrib
    | _ -> None
  in
  let contrib_buf =
    match contrib_src with Some c -> Array.make (Array.length c) 0 | None -> [||]
  in
  let emit_stage () =
    for i = 0 to Array.length head.args - 1 do
      Array.unsafe_set head_buf i (src_value regs (Array.unsafe_get head.args i))
    done;
    (match contrib_src with
    | Some contrib ->
      for i = 0 to Array.length contrib - 1 do
        Array.unsafe_set contrib_buf i (src_value regs (Array.unsafe_get contrib i))
      done
    | None -> ());
    emit ~tuple:head_buf ~contributor:contrib_buf
  in
  let nsteps = Array.length cr.steps in
  let rec build k =
    if k = nsteps then emit_stage
    else begin
      let next = build (k + 1) in
      match cr.steps.(k) with
      | Physical.Filter { op; lhs; rhs } ->
        fun () ->
          (match (Physical.eval_code lhs regs, Physical.eval_code rhs regs) with
          | x, y -> if Physical.eval_cmp op x y then next ()
          | exception Division_by_zero -> ())
      | Physical.Compute { reg; code } ->
        fun () ->
          (match Physical.eval_code code regs with
          | v ->
            regs.(reg) <- v;
            next ()
          | exception Division_by_zero -> ())
      | Physical.Lookup { rel; key_cols; key_src; binds; checks; negated; _ } ->
        (* binds first: a residual check may compare against a register
           bound by this very tuple (within-atom variable repeats) *)
        let on_match data off =
          apply_binds regs data off binds;
          if checks_pass regs data off checks then if negated then raise Found else next ()
        in
        let nkey = Array.length key_src in
        let key = Array.make nkey 0 in
        let fill_key () =
          for i = 0 to nkey - 1 do
            Array.unsafe_set key i (src_value regs (Array.unsafe_get key_src i))
          done
        in
        let iterate =
          match rel with
          | Physical.R_rec { pred; route } ->
            let cid = ctx.rec_resolve ~pred ~route in
            fun () ->
              fill_key ();
              ctx.rec_matches cid ~key on_match
          | Physical.R_base pred ->
            if Array.length key_cols = 0 then begin
              let scan = ctx.base_iter pred in
              fun () -> scan on_match
            end
            else begin
              let idx = ctx.base_index pred key_cols in
              fun () ->
                fill_key ();
                Hash_index.iter_matches idx key on_match
            end
        in
        if negated then
          fun () ->
            (match iterate () with
            | () -> next () (* no match found: anti-join succeeds *)
            | exception Found -> ())
        else iterate
    end
  in
  let scan_binds, scan_checks =
    match cr.scan with
    | Physical.S_base { binds; checks; _ } -> (binds, checks)
    | Physical.S_delta { binds; checks; _ } -> (binds, checks)
    | Physical.S_unit -> ([||], [||])
  in
  { cr; regs; entry = build 0; scan_binds; scan_checks }

let check_scan_kind p ~unit_input =
  match (p.cr.scan, unit_input) with
  | Physical.S_unit, true | (Physical.S_base _ | Physical.S_delta _), false -> ()
  | Physical.S_unit, false -> invalid_arg "Eval.run: tuple input for a unit-scan rule"
  | (Physical.S_base _ | Physical.S_delta _), true ->
    invalid_arg "Eval.run: `Unit scan input for a rule that scans a relation"

let run_prepared p ~scan =
  match scan with
  | `Unit ->
    check_scan_kind p ~unit_input:true;
    p.entry ();
    1
  | `Tuples batch ->
    check_scan_kind p ~unit_input:false;
    let regs = p.regs and binds = p.scan_binds and checks = p.scan_checks in
    Vec.iter
      (fun tup ->
        apply_binds regs tup 0 binds;
        if checks_pass regs tup 0 checks then p.entry ())
      batch;
    Vec.length batch
  | `Flat arena ->
    check_scan_kind p ~unit_input:false;
    let regs = p.regs and binds = p.scan_binds and checks = p.scan_checks in
    (* Read count/data once: rules must not grow the scanned arena
       (deltas are only mutated between iterations). *)
    let n = Arena.length arena and k = Arena.arity arena in
    let data = Arena.data arena in
    let off = ref 0 in
    for _ = 1 to n do
      apply_binds regs data !off binds;
      if checks_pass regs data !off checks then p.entry ();
      off := !off + k
    done;
    n
  | `Flat_range (arena, first, len) ->
    check_scan_kind p ~unit_input:false;
    let regs = p.regs and binds = p.scan_binds and checks = p.scan_checks in
    let k = Arena.arity arena in
    let data = Arena.data arena in
    let off = ref (first * k) in
    for _ = 1 to len do
      apply_binds regs data !off binds;
      if checks_pass regs data !off checks then p.entry ();
      off := !off + k
    done;
    len

let run cr ctx ~scan ~emit = run_prepared (prepare cr ctx ~emit) ~scan
