(** Execution of one compiled rule over a batch of scan tuples.

    This is the operator pipeline of the physical plan (paper §5.2):
    the scan binds registers from each input tuple, [Lookup] steps probe
    shared base indexes or the worker's partitioned recursive stores,
    [Filter]/[Compute] steps evaluate compiled arithmetic, and every
    complete binding is projected through the head and handed to [emit]
    (the entry point of the Distribute operator).  Rules compiled to a
    {!Physical.gj} plan replace the lookup chain with a leapfrog
    multiway intersection over sorted base indexes, one level per
    variable in the elimination order.

    Tuples flow through the pipeline as [(data, off)] cursors into flat
    storage — the delta arena being scanned, a hash index's arena, a
    packed exchange frame — so the per-tuple path touches no boxed
    tuple at all.  A boxed tuple is the degenerate cursor [(tup, 0)].

    Rules are {!prepare}d against a context once and then run many
    times: preparation resolves every recursive lookup to an integer
    copy id ({!context.rec_resolve}) and every indexed base lookup to
    its concrete hash index, and allocates the register file, the
    per-step lookup-key scratch buffers and the head/contributor
    emission buffers.  The per-tuple path therefore performs no string
    comparison and no allocation; scratch buffers are reused across
    probes and emissions, which is sound because every consumer either
    uses them transiently or copies on retention.

    Pure with respect to shared state: base relations are only read, and
    recursive lookups go through the caller-supplied callback so each
    worker only ever touches its own stores.  A [prepared] value owns
    mutable scratch state: it belongs to one worker and must not be run
    reentrantly. *)

open Dcd_planner

type context = {
  base_iter : string -> (int array -> int -> unit) -> unit;
      (** full scan of a shared base / lower-stratum relation; the
          callback receives [(data, off)] slices valid only during the
          call *)
  base_index : string -> int array -> Dcd_storage.Hash_index.t;
      (** prebuilt shared hash index on the given key columns *)
  base_sorted : string -> int array -> unit Dcd_btree.Bptree.t;
      (** prebuilt shared sorted (trie) index whose keys are the
          relation's tuples permuted to the given column order; probed
          by generic-join pipelines with prefix seeks.  Read-only during
          evaluation. *)
  rec_resolve : pred:string -> route:int array -> int;
      (** called once per recursive lookup at prepare time: the integer
          id under which {!rec_matches} will be probed *)
  rec_matches : int -> key:int array -> (int array -> int -> unit) -> unit;
      (** matches in this worker's copy [cid] of a recursive relation;
          [key] is a scratch buffer valid only during the call, and the
          matched slices likewise *)
}

type emit = tuple:Dcd_storage.Tuple.t -> contributor:Dcd_storage.Tuple.t -> unit
(** Both arrays are scratch buffers owned by the prepared rule and
    overwritten by the next emission — copy (or blit into flat storage)
    on retention.  [contributor] is [[||]] for non-aggregate heads. *)

type prepared
(** A rule compiled against a context and an emit sink: the closure
    chain plus its scratch buffers. *)

val prepare : Physical.compiled_rule -> context -> emit:emit -> prepared

val run_prepared :
  prepared ->
  scan:
    [ `Flat of Dcd_storage.Arena.t
    | `Flat_range of Dcd_storage.Arena.t * int * int
    | `Tuples of Dcd_storage.Tuple.t Dcd_util.Vec.t
    | `Unit ] ->
  int
(** Runs the rule over the given scan input ([`Unit] for bodies without
    positive atoms; [`Flat] scans an arena without boxing — the rule
    must not push into that same arena; [`Flat_range (a, first, len)]
    scans only the [len] tuples starting at slot [first] — the morsel
    form, same non-growth proviso) and returns the number of scan
    tuples processed.  Arithmetic faults (division by zero) silently
    drop the binding, per standard Datalog semantics for partial
    built-ins. *)

val run :
  Physical.compiled_rule ->
  context ->
  scan:
    [ `Flat of Dcd_storage.Arena.t
    | `Flat_range of Dcd_storage.Arena.t * int * int
    | `Tuples of Dcd_storage.Tuple.t Dcd_util.Vec.t
    | `Unit ] ->
  emit:emit ->
  int
(** [prepare] + [run_prepared] in one call, for one-shot evaluation. *)
