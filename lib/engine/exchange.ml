open Dcd_planner
module Ast = Dcd_datalog.Ast
module Frame = Dcd_concurrent.Frame
module Chunk_queue = Dcd_concurrent.Chunk_queue
module Locked_queue = Dcd_concurrent.Locked_queue
module Termination = Dcd_concurrent.Termination

type kind =
  | Spsc_exchange
  | Locked_exchange

(* --- copy table --- *)

type copy_info = {
  ci_pred : string;
  ci_route : int array;
  ci_arity : int;
  ci_agg : (int * Ast.agg_kind) option;
}

let build_copies (sp : Physical.stratum_plan) =
  let copies = ref [] in
  List.iter
    (fun (pp : Physical.pred_plan) ->
      List.iter
        (fun route ->
          copies :=
            { ci_pred = pp.pred; ci_route = route; ci_arity = pp.arity; ci_agg = pp.agg }
            :: !copies)
        pp.routes)
    sp.pred_plans;
  Array.of_list (List.rev !copies)

(* Linear scan over the copy table.  Only ever called at setup/prepare
   time: the per-tuple path dispatches on the integer ids this resolves
   to (Eval precomputes them per compiled rule), never on strings. *)
let copy_id copies pred route =
  let n = Array.length copies in
  let rec loop i =
    if i = n then
      invalid_arg (Printf.sprintf "no copy for %s under the requested route" pred)
    else if String.equal copies.(i).ci_pred pred && copies.(i).ci_route = route then i
    else loop (i + 1)
  in
  loop 0

let copies_of_pred copies pred =
  let out = ref [] in
  Array.iteri (fun i ci -> if String.equal ci.ci_pred pred then out := i :: !out) copies;
  List.rev !out

(* --- the fabric --- *)

(* One exchange message: every delta tuple a worker produced for one
   (copy, destination) in one flush, packed flat into a single frame.
   The producer gives up ownership on push; the consumer folds the
   records in without unpacking them into boxed tuples. *)
type batch = {
  bcopy : int;
  bsrc : int;
  bframe : Frame.t;
}

(* Either the paper's SPSC matrix (M_i^j, §6.1) or the lock-based
   alternative it argues against (one mutex-protected multi-producer
   queue per destination) — kept for the ablation.  Queue elements are
   whole batches, so queue traffic and termination accounting are per
   flush, not per tuple. *)
type fabric =
  | Spsc of batch Chunk_queue.t array array (* queues.(dest).(src) *)
  | Locked of batch Locked_queue.t array

type t = {
  workers : int;
  copies : copy_info array;
  contrib : bool array;
      (* count/sum copies ship a contributor key with every tuple; the
         other copies travel at fixed stride *)
  batch_tuples : int;
  fabric : fabric;
  (* Tuple-denominated buffer occupancy |M_i^j| for the queueing model
     (the queues themselves count batches).  Producers add before the
     push, consumers subtract after the drain, so a read never
     under-reports in-flight work. *)
  occupancy : int Atomic.t array array; (* occupancy.(dest).(src) *)
  term : Termination.t;
}

let create ~workers ~kind ~batch_tuples ~copies =
  let fabric =
    match kind with
    | Spsc_exchange ->
      Spsc (Array.init workers (fun _ -> Array.init workers (fun _ -> Chunk_queue.create ~chunk:64 ())))
    | Locked_exchange -> Locked (Array.init workers (fun _ -> Locked_queue.create ()))
  in
  {
    workers;
    copies;
    contrib = Array.map (fun ci -> ci.ci_agg <> None) copies;
    batch_tuples;
    fabric;
    occupancy = Array.init workers (fun _ -> Array.init workers (fun _ -> Atomic.make 0));
    term = Termination.create ~workers;
  }

let workers t = t.workers

let copies t = t.copies

let contrib t cid = t.contrib.(cid)

let term t = t.term

let push_batch t ~dest b =
  match t.fabric with
  | Spsc q -> Chunk_queue.push q.(dest).(b.bsrc) b
  | Locked q -> Locked_queue.push q.(dest) b

(* Ships one packed frame: one queue push and one amortized termination
   update per flush, instead of one of each per tuple. *)
let ship t ~ws ~src ~dest ~copy frame =
  let len = Frame.count frame in
  Termination.sent t.term len;
  ignore (Atomic.fetch_and_add t.occupancy.(dest).(src) len);
  ws.Run_stats.tuples_sent <- ws.Run_stats.tuples_sent + len;
  ws.Run_stats.batches_sent <- ws.Run_stats.batches_sent + 1;
  ws.Run_stats.words_sent <- ws.Run_stats.words_sent + Frame.words frame;
  push_batch t ~dest { bcopy = copy; bsrc = src; bframe = frame }

let send t ~ws ~src ~dest ~copy frame =
  let len = Frame.count frame in
  let cap = t.batch_tuples in
  if cap <= 0 || len <= cap then ship t ~ws ~src ~dest ~copy frame
  else if not (Frame.has_contrib frame) then begin
    (* batch-size knob: split into chunks of at most [cap] tuples
       (cap = 1 reproduces the old per-tuple message framing);
       fixed-stride records split with one blit per chunk *)
    let arity = t.copies.(copy).ci_arity in
    let i = ref 0 in
    while !i < len do
      let k = min cap (len - !i) in
      let chunk = Frame.create ~capacity:k ~arity ~contrib:false () in
      Frame.append_range chunk frame ~first:!i ~n:k;
      ship t ~ws ~src ~dest ~copy chunk;
      i := !i + k
    done
  end
  else begin
    let arity = t.copies.(copy).ci_arity in
    let chunk = ref (Frame.create ~capacity:cap ~arity ~contrib:true ()) in
    Frame.iter frame (fun data ~toff ~clen ~coff ->
        Frame.push_slice !chunk data ~toff ~clen ~coff;
        if Frame.count !chunk = cap then begin
          ship t ~ws ~src ~dest ~copy !chunk;
          chunk := Frame.create ~capacity:cap ~arity ~contrib:true ()
        end);
    if not (Frame.is_empty !chunk) then ship t ~ws ~src ~dest ~copy !chunk
  end

let drain t ~me ~drained_from consume =
  Array.fill drained_from 0 t.workers 0;
  let on_batch b =
    consume b;
    drained_from.(b.bsrc) <- drained_from.(b.bsrc) + Frame.count b.bframe
  in
  (match t.fabric with
  | Spsc q ->
    for j = 0 to t.workers - 1 do
      ignore (Chunk_queue.drain q.(me).(j) on_batch)
    done
  | Locked q -> ignore (Locked_queue.drain q.(me) on_batch));
  let total = ref 0 in
  for j = 0 to t.workers - 1 do
    let cnt = drained_from.(j) in
    if cnt > 0 then begin
      ignore (Atomic.fetch_and_add t.occupancy.(me).(j) (-cnt));
      total := !total + cnt
    end
  done;
  !total

(* Recovery reset: discard every in-flight batch, zero the occupancy
   matrix, and reset the termination counters — back to the state a
   fresh exchange starts a stratum in.  In-flight batches are safe to
   drop because rollback restores every worker to the same committed
   epoch: the senders re-run from the cut and regenerate them (and
   re-merges are idempotent under set semantics / restored contributor
   state).  Between rounds only — no worker may be running. *)
let reset t =
  let discard (_ : batch) = () in
  (match t.fabric with
  | Spsc q ->
    Array.iter (fun row -> Array.iter (fun sq -> ignore (Chunk_queue.drain sq discard)) row) q
  | Locked q -> Array.iter (fun lq -> ignore (Locked_queue.drain lq discard)) q);
  Array.iter (fun row -> Array.iter (fun c -> Atomic.set c 0) row) t.occupancy;
  Termination.reset t.term

let inbox_sizes t ~dest = Array.init t.workers (fun j -> Atomic.get t.occupancy.(dest).(j))

let inbox_tuples t ~dest =
  Array.fold_left (fun acc c -> acc + Atomic.get c) 0 t.occupancy.(dest)

let inbox_batches t ~dest =
  match t.fabric with
  | Spsc q -> Array.fold_left (fun acc s -> acc + Chunk_queue.size s) 0 q.(dest)
  | Locked q -> Locked_queue.size q.(dest)
