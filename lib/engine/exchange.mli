(** The delta-exchange fabric of one recursive stratum (paper §6.1).

    Owns everything workers share to move tuples: the copy table (one
    entry per (predicate, partition route) pair), the message queues —
    the paper's SPSC matrix [M_i^j] or the locked ablation — the
    tuple-denominated occupancy matrix the DWS queueing model reads, and
    the global-fixpoint termination counters.

    Tuples travel in {e batches}: each flush ships one {!batch} per
    (copy, destination) carrying every tuple produced for it, so the
    queue push and the termination-counter updates are amortized over
    the whole batch rather than paid per tuple.  Fixpoint detection
    stays tuple-denominated (a batch of [k] tuples bumps the sent
    counter by [k] in a single atomic add). *)

open Dcd_planner

(** [Spsc_exchange] is the paper's design (§6.1): a matrix of
    single-producer single-consumer queues maintained with atomics only.
    [Locked_exchange] is the coarse-grained alternative the paper argues
    against — one mutex-protected multi-producer queue per destination —
    kept so the claim can be measured as an ablation. *)
type kind =
  | Spsc_exchange
  | Locked_exchange

(** {1 Copy table} *)

type copy_info = {
  ci_pred : string;
  ci_route : int array;
  ci_arity : int;
  ci_agg : (int * Dcd_datalog.Ast.agg_kind) option;
}

val build_copies : Physical.stratum_plan -> copy_info array
(** One copy per (predicate, route), in plan order. *)

val copy_id : copy_info array -> string -> int array -> int
(** Resolves a (pred, route) pair to its copy id by linear scan.  Only
    for setup/prepare time: the per-tuple path dispatches on the integer
    ids this returns. @raise Invalid_argument if absent. *)

val copies_of_pred : copy_info array -> string -> int list
(** All copy ids of one predicate, in table order (primary route first). *)

(** {1 Fabric} *)

(** One exchange message: every delta tuple one worker produced for one
    (copy, destination) in one flush, packed flat into a single frame.
    The producer gives up ownership on push. *)
type batch = {
  bcopy : int;
  bsrc : int;
  bframe : Dcd_concurrent.Frame.t;
}

type t

val create : workers:int -> kind:kind -> batch_tuples:int -> copies:copy_info array -> t
(** [batch_tuples] caps tuples per shipped batch ([0] = unbounded, one
    batch per flush; [1] reproduces per-tuple framing). *)

val workers : t -> int

val copies : t -> copy_info array

val contrib : t -> int -> bool
(** Whether a copy's frames carry a contributor suffix (count/sum). *)

val term : t -> Dcd_concurrent.Termination.t
(** The stratum's global-fixpoint counters. *)

val ship : t -> ws:Run_stats.worker -> src:int -> dest:int -> copy:int -> Dcd_concurrent.Frame.t -> unit
(** Pushes one frame as a single batch: bumps the sent counter by the
    frame's tuple count, adds to the occupancy cell, updates [ws], then
    enqueues.  Ownership of the frame passes to the consumer. *)

val send : t -> ws:Run_stats.worker -> src:int -> dest:int -> copy:int -> Dcd_concurrent.Frame.t -> unit
(** Like {!ship} but honoring the [batch_tuples] cap: oversized frames
    are split into chunks (fixed-stride records with one blit per
    chunk). *)

val drain : t -> me:int -> drained_from:int array -> (batch -> unit) -> int
(** [drain t ~me ~drained_from consume] pops every currently visible
    batch addressed to [me] (FIFO per source), calls [consume] on each,
    fills [drained_from.(src)] with per-source tuple counts, subtracts
    the drained tuples from the occupancy matrix {e after} the drain,
    and returns the total tuple count.  Consumer side only; the caller
    owns the termination-counter update. *)

val reset : t -> unit
(** Recovery reset: discards every in-flight batch, zeroes the
    occupancy matrix, and resets the termination counters.  Sound only
    between rounds with every worker collected, and only because
    rollback restores {e all} workers to the same committed epoch — the
    senders of the discarded batches re-run from the cut and regenerate
    them. *)

val inbox_sizes : t -> dest:int -> int array
(** Per-source occupancy snapshot |M_dest^j| (tuples), for
    {!Qmodel.decide}. *)

val inbox_tuples : t -> dest:int -> int

val inbox_batches : t -> dest:int -> int
