module Key_tbl = Hashtbl.Make (struct
  type t = Dcd_storage.Tuple.t

  let equal = Dcd_storage.Tuple.equal
  let hash = Dcd_storage.Tuple.hash
end)

type t = {
  table : int Key_tbl.t;
  mutable hits : int;
  mutable misses : int;
}

let create ?(capacity = 1024) () = { table = Key_tbl.create capacity; hits = 0; misses = 0 }

let find t key =
  match Key_tbl.find_opt t.table key with
  | Some v ->
    t.hits <- t.hits + 1;
    Some v
  | None ->
    t.misses <- t.misses + 1;
    None

let put t key v = Key_tbl.replace t.table key v

(* Bulk refresh from a merge pass: the batch-sorted path answers
   existence for a whole run out of one B⁺-tree walk and warms the cache
   from the results here, instead of per-probe.  Keys are retained as
   given (the merge pass hands over the arrays the tree adopted, which
   are immutable from then on). *)
let warm t ~n ~key ~value =
  for i = 0 to n - 1 do
    Key_tbl.replace t.table (key i) (value i)
  done

(* Recovery rollback: cached values may describe state newer than the
   restored store (for a monotone aggregate even a *bound* that no
   longer holds, which would wrongly absorb re-derived candidates), so
   the whole table is dropped.  Hit/miss counters survive — they are
   cumulative run diagnostics, not correctness state. *)
let clear t = Key_tbl.reset t.table

let length t = Key_tbl.length t.table

let hits t = t.hits

let misses t = t.misses
