(** Constant-time existence-check cache (paper §6.2.2).

    At each semi-naive iteration the engine must decide, per candidate
    tuple, whether the key already exists in the recursive table — an
    O(log n) B⁺-tree probe.  This cache sits in front: a hash table from
    key to the last-known aggregate value (or presence marker), checked
    in O(1).  A hit with a value at least as good as the candidate lets
    the engine drop the candidate without touching the index at all;
    anything else falls through to the authoritative store, whose answer
    refreshes the cache. *)

type t

val create : ?capacity:int -> unit -> t

val find : t -> Dcd_storage.Tuple.t -> int option
(** Last value cached for this key, if any. *)

val put : t -> Dcd_storage.Tuple.t -> int -> unit

val warm : t -> n:int -> key:(int -> Dcd_storage.Tuple.t) -> value:(int -> int) -> unit
(** Bulk refresh after a batch-sorted merge pass: caches [key i ↦
    value i] for [i < n] without touching the hit/miss counters.  Keys
    are retained as given — callers pass the (now immutable) arrays the
    B⁺-tree adopted. *)

val clear : t -> unit
(** Drops every cached entry (hit/miss counters survive).  Required on
    checkpoint rollback: a cached aggregate value can be {e newer} than
    the restored store and would silently absorb candidates that must
    re-derive. *)

val length : t -> int

val hits : t -> int
(** Number of [find]s answered from the cache (diagnostics). *)

val misses : t -> int
