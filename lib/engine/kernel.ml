open Dcd_planner

(* The three per-tuple primitives of a prepared pipeline — binding
   matched columns into registers, residual equality checks, and filling
   a scratch buffer (lookup key, trie prefix, head projection) from
   sources — specialized at prepare time into monomorphic closures.
   The common arities capture their columns/registers as immediate ints,
   so the per-tuple work is array reads and int compares with a single
   indirect call, no per-field tuple unpacking and no [src] variant
   dispatch.  The fallbacks pre-split constants from registers once, at
   prepare time. *)

let bind0 (_ : int array) (_ : int) = ()

let binder (binds : (int * int) array) ~(regs : int array) =
  match binds with
  | [||] -> bind0
  | [| (c0, r0) |] ->
    fun data off -> Array.unsafe_set regs r0 (Array.unsafe_get data (off + c0))
  | [| (c0, r0); (c1, r1) |] ->
    fun data off ->
      Array.unsafe_set regs r0 (Array.unsafe_get data (off + c0));
      Array.unsafe_set regs r1 (Array.unsafe_get data (off + c1))
  | [| (c0, r0); (c1, r1); (c2, r2) |] ->
    fun data off ->
      Array.unsafe_set regs r0 (Array.unsafe_get data (off + c0));
      Array.unsafe_set regs r1 (Array.unsafe_get data (off + c1));
      Array.unsafe_set regs r2 (Array.unsafe_get data (off + c2))
  | binds ->
    fun data off ->
      for i = 0 to Array.length binds - 1 do
        let c, r = Array.unsafe_get binds i in
        Array.unsafe_set regs r (Array.unsafe_get data (off + c))
      done

let check_true (_ : int array) (_ : int) = true

(* Top-level recursions: a local [let rec] closure would be allocated
   per call by the non-flambda compiler. *)
let rec const_checks_loop (data : int array) off a i n =
  i = n
  ||
  let c, k = Array.unsafe_get a i in
  Array.unsafe_get data (off + c) = k && const_checks_loop data off a (i + 1) n

let rec reg_checks_loop (regs : int array) (data : int array) off a i n =
  i = n
  ||
  let c, r = Array.unsafe_get a i in
  Array.unsafe_get data (off + c) = Array.unsafe_get regs r
  && reg_checks_loop regs data off a (i + 1) n

let checker (checks : (int * Physical.src) array) ~(regs : int array) =
  match checks with
  | [||] -> check_true
  | [| (c0, Physical.Const k0) |] -> fun data off -> Array.unsafe_get data (off + c0) = k0
  | [| (c0, Physical.Reg r0) |] ->
    fun data off -> Array.unsafe_get data (off + c0) = Array.unsafe_get regs r0
  | [| (c0, Physical.Reg r0); (c1, Physical.Reg r1) |] ->
    fun data off ->
      Array.unsafe_get data (off + c0) = Array.unsafe_get regs r0
      && Array.unsafe_get data (off + c1) = Array.unsafe_get regs r1
  | checks ->
    let consts =
      Array.of_list
        (List.filter_map
           (function c, Physical.Const k -> Some (c, k) | _, Physical.Reg _ -> None)
           (Array.to_list checks))
    in
    let regchecks =
      Array.of_list
        (List.filter_map
           (function c, Physical.Reg r -> Some (c, r) | _, Physical.Const _ -> None)
           (Array.to_list checks))
    in
    let nc = Array.length consts and nr = Array.length regchecks in
    fun data off ->
      const_checks_loop data off consts 0 nc && reg_checks_loop regs data off regchecks 0 nr

let fill0 () = ()

let filler (srcs : Physical.src array) ~(regs : int array) ~(buf : int array) =
  match srcs with
  | [||] -> fill0
  | [| Physical.Reg r0 |] -> fun () -> Array.unsafe_set buf 0 (Array.unsafe_get regs r0)
  | [| Physical.Reg r0; Physical.Reg r1 |] ->
    fun () ->
      Array.unsafe_set buf 0 (Array.unsafe_get regs r0);
      Array.unsafe_set buf 1 (Array.unsafe_get regs r1)
  | [| Physical.Reg r0; Physical.Reg r1; Physical.Reg r2 |] ->
    fun () ->
      Array.unsafe_set buf 0 (Array.unsafe_get regs r0);
      Array.unsafe_set buf 1 (Array.unsafe_get regs r1);
      Array.unsafe_set buf 2 (Array.unsafe_get regs r2)
  | srcs ->
    (* constants never change between calls: written once, here *)
    Array.iteri
      (fun i s -> match s with Physical.Const c -> buf.(i) <- c | Physical.Reg _ -> ())
      srcs;
    let regsrcs = ref [] in
    Array.iteri
      (fun i s ->
        match s with Physical.Reg r -> regsrcs := (i, r) :: !regsrcs | Physical.Const _ -> ())
      srcs;
    let regsrcs = Array.of_list (List.rev !regsrcs) in
    if Array.length regsrcs = 0 then fill0
    else
      fun () ->
        for j = 0 to Array.length regsrcs - 1 do
          let i, r = Array.unsafe_get regsrcs j in
          Array.unsafe_set buf i (Array.unsafe_get regs r)
        done
