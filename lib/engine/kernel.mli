(** Monomorphic per-tuple kernels.

    A prepared pipeline's inner loop decomposes into three primitives:
    binding matched columns into registers, residual equality checks
    against a [(data, off)] slice, and filling a scratch buffer (lookup
    key, trie prefix, head projection) from compiled sources.  These
    specializers are invoked once, at prepare time, and return closures
    keyed on the arity and shape of their spec: the common cases (0–3
    fields, constant vs register sources) capture their columns and
    registers as immediate ints so the per-tuple path is arena reads and
    int compares behind a single indirect call — no per-field tuple
    unpacking, no [Physical.src] variant dispatch.  The generic
    fallbacks pre-split constants from registers once; constants in a
    {!filler} are written into the buffer at specialization time and
    never touched again. *)

open Dcd_planner

val binder : (int * int) array -> regs:int array -> int array -> int -> unit
(** [binder binds ~regs] returns [bind] with [bind data off] setting
    [regs.(r) <- data.(off + c)] for each [(c, r)]. *)

val checker : (int * Physical.src) array -> regs:int array -> int array -> int -> bool
(** [checker checks ~regs] returns [check] with [check data off] true
    iff [data.(off + c)] equals each source's value. *)

val filler : Physical.src array -> regs:int array -> buf:int array -> unit -> unit
(** [filler srcs ~regs ~buf] returns [fill] with [fill ()] writing each
    source's current value into [buf] positionally.  Constant sources
    are written immediately and not per call. *)
