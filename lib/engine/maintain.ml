(* Incremental maintenance of a materialized fixpoint under batched
   base-relation updates.

   The maintenance state mirrors the engine's catalog as hash-table
   stores with per-tuple support, processed stratum by stratum in the
   same bottom-up order the engine evaluated them:

   - non-recursive strata use counting (Gupta–Mumick–Subrahmanian):
     per-tuple derivation counts, updated by signed delta rules where
     the delta atom at body position [i] sees the batch delta, positions
     [< i] see the new state and positions [> i] the old one — the
     telescoping N0⋈N1 − O0⋈O1 = ∆0⋈O1 + N0⋈∆1, so every changed
     derivation is counted exactly once with its net sign;
   - recursive plain strata use DRed: overdelete closure w.r.t. the old
     database, physical removal, goal-directed rederivation, then
     worklist insert propagation (semi-naive from the current fixpoint);
   - recursive strata whose aggregates are all min/max propagate inserts
     monotonically (improvements only — sound because a grown database
     can only improve a monotone aggregate) and fall back to a stratum
     recompute for deletions;
   - strata with negation, or recursive count/sum aggregates, recompute
     through the parallel engine itself ({!Parallel.run} on the resident
     {!Parallel.runtime} pool), then diff against the previous state.

   The old (pre-batch) state of a finished lower stratum is
   reconstructed per predicate as [(current \ d_ins) ∪ d_del] from the
   per-batch delta recorder, with lazily built overlay indexes over the
   delete set for keyed lookups. *)

open Dcd_planner
module Ast = Dcd_datalog.Ast
module Analysis = Dcd_datalog.Analysis
module Tuple = Dcd_storage.Tuple
module Relation = Dcd_storage.Relation
module Vec = Dcd_util.Vec
module Arena = Dcd_storage.Arena
module Clock = Dcd_util.Clock
module Fault = Dcd_concurrent.Fault
module Domain_pool = Dcd_concurrent.Domain_pool

module Tup_tbl = Hashtbl.Make (struct
  type t = Tuple.t

  let equal = Tuple.equal
  let hash = Tuple.hash
end)

type update =
  | Insert of string * Tuple.t
  | Delete of string * Tuple.t

type batch_report = {
  br_base_inserted : int;
  br_base_deleted : int;
  br_derived_inserted : int;
  br_derived_deleted : int;
  br_overdeleted : int;
  br_rederived : int;
  br_recomputed_strata : int;
  br_changed : (string * int * int) list;
  br_deltas : (string * Dcd_storage.Tuple.t list * Dcd_storage.Tuple.t list) list;
  br_workers : (float * int * int * int) list;
      (* per maintenance worker: (join seconds, morsels executed,
         steals, tuples stolen) — empty on the sequential path *)
}

(* --- state --- *)

(* Counting support for an aggregated head in a non-recursive stratum:
   enough to recompute the group's visible value after any mix of
   derivation gains and losses. *)
type agg_support =
  | Sminmax of (int, int) Hashtbl.t (* value -> derivation count *)
  | Scount of int Tup_tbl.t (* contributor -> derivation count *)
  | Ssum of (int, int) Hashtbl.t Tup_tbl.t (* contributor -> value -> count *)

type apred = {
  a_pos : int;
  a_kind : Ast.agg_kind;
  a_best : int Tup_tbl.t; (* group -> visible aggregate value *)
  a_support : agg_support Tup_tbl.t option; (* counting strata only *)
}

type pbody =
  | Pplain of int Tup_tbl.t (* tuple -> derivation count (sets: 1) *)
  | Pagg of apred

type index = {
  ix_cols : int array;
  ix_buckets : unit Tup_tbl.t Tup_tbl.t; (* projected key -> visible tuples *)
}

(* Per-batch net change recorder.  Invariants after cancellation:
   d_del ∩ visible = ∅ and d_ins ⊆ visible, so the old state is exactly
   (visible \ d_ins) ∪ d_del. *)
type delta = {
  d_ins : unit Tup_tbl.t;
  d_del : unit Tup_tbl.t;
  mutable d_overlays : (int array * unit Tup_tbl.t Tup_tbl.t) list;
      (* lazy keyed indexes over d_del, for Old-visibility lookups *)
}

type pred_state = {
  ps_name : string;
  ps_arity : int;
  ps_body : pbody;
  mutable ps_indexes : index list;
  ps_delta : delta;
  ps_ranks : int Tup_tbl.t;
      (* DRed strata only: a well-founded derivation rank per visible
         tuple, grounding the rank-decreasing support counts that brake
         the overdeletion cascade *)
  ps_supports : int Tup_tbl.t;
      (* DRed strata only: a lower bound on the number of surviving
         rank-decreasing derivations of each visible tuple (exact after
         [build_ranks]; deletions decrement, insertions start at 1).  A
         positive count proves the tuple derivable in the new fixpoint,
         so only zero-count tuples join the overdeletion frontier.
         Lower-bound discipline keeps this sound: decrements may
         over-fire and increments under-fire — a premature zero only
         costs a rederivation check, never a wrong fixpoint. *)
}

(* --- compiled delta kernels --- *)

(* One worker's private half of a compiled maintenance kernel: its
   {!Maintain_kernel.instance} (register file, head/contrib scratch)
   plus, for DRed decrement kernels, a filler per same-stratum non-delta
   atom so the emit closure can look up that atom's derivation rank
   without a boxed environment. *)
type mk_inst = {
  mi_pipe : Maintain_kernel.instance;
  mi_atoms : (pred_state * int array * (unit -> unit)) array;
}

type mkernel = {
  mk_insts : mk_inst array; (* one per maintenance worker *)
  mk_rank_reg : int; (* cascade kernels: register of the scan rank column, -1 if none *)
  mk_prewarm : (unit -> unit) list;
      (* forces lazily built per-batch structures (delete overlays)
         on the coordinator before a parallel round reads them *)
}

(* --- compiled rules --- *)

type catom = {
  ca_pred : string;
  ca_args : Ast.term array;
}

type oelem =
  | O_atom of int (* index into cr_atoms *)
  | O_neg of Ast.atom
  | O_filter of Ast.cmp_op * Ast.expr * Ast.expr
  | O_assign of string * Ast.expr

type crule = {
  cr_rule : Ast.rule;
  cr_head : string;
  cr_agg : (int * Ast.agg_kind) option;
  cr_atoms : catom array;
  cr_others : Ast.literal list; (* negations and comparisons *)
  mutable cr_orders : (int * oelem list) list;
      (* greedy orderings cached by scan key: the delta atom index,
         [-1] = full evaluation, [-2] = head-bound (rederive check) *)
  mutable cr_kernels : (int * mkernel) list;
      (* compiled pipelines cached by phase key (see [kcount] etc.);
         valid across batches — they close over the persistent
         pred_state tables and maintained indexes, never over
         batch-local data *)
}

type mode =
  | M_counting
  | M_dred
  | M_aggrec
  | M_subrun

type cstratum = {
  cs_stratum : Analysis.stratum;
  cs_mode : mode;
  cs_insert_ok : bool; (* aggrec: every aggregate is min/max *)
  cs_body_preds : string list; (* lower predicates feeding this stratum *)
  cs_rules : crule array;
  mutable cs_sub : Physical.t option; (* cached recompute sub-plan *)
}

type t = {
  plan : Physical.t;
  config : Parallel.config;
  runtime : Parallel.runtime option;
  preds : (string, pred_state) Hashtbl.t;
  edb : (string, unit) Hashtbl.t;
  m_workers : int;
      (* effective maintenance parallelism: 1 without a runtime (or as
         the explicit ablation), else config.maintain_workers clamped
         to [1, workers] with 0 meaning "same as workers" *)
  m_steal : Steal.t option; (* morsel board for parallel rounds (m_workers > 1) *)
  m_fault : Fault.t option; (* injection schedule for the Maintain site *)
  m_bufs : (Tuple.t * Tuple.t) Vec.t array;
      (* per-worker (head, contrib) emission buffers, drained
         sequentially by the coordinator after each round's barrier *)
  m_arenas : (int, Arena.t) Hashtbl.t; (* scratch scan arenas by arity *)
  m_wjoin : float array; (* per-batch, per-worker round-execution seconds *)
  m_wmorsels : int array;
  m_wsteals : int array;
  m_wstolen : int array;
  mutable strata : cstratum list;
  mutable recording : bool;
  mutable rank_counter : int;
      (* strictly above every assigned rank; fresh insertions take the
         next value so later tuples always outrank their supports *)
  mutable cur_overdeleted : int;
  mutable cur_rederived : int;
  mutable cur_recomputed : int;
}

type vis =
  | Cur
  | Old

exception Found

(* --- basic helpers --- *)

let get_pred mt name =
  match Hashtbl.find_opt mt.preds name with
  | Some ps -> ps
  | None -> invalid_arg (Printf.sprintf "Maintain: unknown predicate %s" name)

let sym_value mt s =
  match List.assoc_opt s mt.plan.Physical.params with
  | Some v -> v
  | None -> Dcd_util.Symbol.intern mt.plan.Physical.symbols s

let term_value mt env = function
  | Ast.Int i -> i
  | Ast.Sym s -> sym_value mt s
  | Ast.Var v -> (
    match Hashtbl.find_opt env v with
    | Some x -> x
    | None -> invalid_arg (Printf.sprintf "Maintain: unbound variable %s" v))

let rec expr_value mt env = function
  | Ast.Term t -> term_value mt env t
  | Ast.Binop (op, a, b) -> (
    let x = expr_value mt env a and y = expr_value mt env b in
    match op with
    | Ast.Add -> x + y
    | Ast.Sub -> x - y
    | Ast.Mul -> x * y
    | Ast.Div -> x / y
    | Ast.Mod -> x mod y)
  | Ast.Neg e -> -expr_value mt env e

let group_of a tup =
  let arity = Array.length tup in
  let g = Array.make (arity - 1) 0 in
  let gi = ref 0 in
  for c = 0 to arity - 1 do
    if c <> a.a_pos then begin
      g.(!gi) <- tup.(c);
      incr gi
    end
  done;
  g

let assemble a group v =
  let arity = Array.length group + 1 in
  let tup = Array.make arity 0 in
  let gi = ref 0 in
  for c = 0 to arity - 1 do
    if c = a.a_pos then tup.(c) <- v
    else begin
      tup.(c) <- group.(!gi);
      incr gi
    end
  done;
  tup

let cols_equal a b = Array.length a = Array.length b && Array.for_all2 ( = ) a b

(* --- visibility --- *)

let iter_vis_cur ps f =
  match ps.ps_body with
  | Pplain counts -> Tup_tbl.iter (fun tup _ -> f tup) counts
  | Pagg a -> Tup_tbl.iter (fun g v -> f (assemble a g v)) a.a_best

let mem_cur ps tup =
  match ps.ps_body with
  | Pplain counts -> Tup_tbl.mem counts tup
  | Pagg a -> (
    let g = group_of a tup in
    match Tup_tbl.find_opt a.a_best g with
    | Some v -> v = tup.(a.a_pos)
    | None -> false)

let mem_vis ps visk tup =
  match visk with
  | Cur -> mem_cur ps tup
  | Old ->
    let d = ps.ps_delta in
    (mem_cur ps tup && not (Tup_tbl.mem d.d_ins tup)) || Tup_tbl.mem d.d_del tup

let iter_vis ps visk f =
  match visk with
  | Cur -> iter_vis_cur ps f
  | Old ->
    let d = ps.ps_delta in
    iter_vis_cur ps (fun tup -> if not (Tup_tbl.mem d.d_ins tup) then f tup);
    Tup_tbl.iter (fun tup () -> f tup) d.d_del

let visible_count_ps ps =
  match ps.ps_body with
  | Pplain counts -> Tup_tbl.length counts
  | Pagg a -> Tup_tbl.length a.a_best

(* --- indexes and delta recording --- *)

let bucket_add buckets key tup =
  let b =
    match Tup_tbl.find_opt buckets key with
    | Some b -> b
    | None ->
      let b = Tup_tbl.create 4 in
      Tup_tbl.add buckets key b;
      b
  in
  Tup_tbl.replace b tup ()

let ensure_index ps cols =
  match List.find_opt (fun ix -> cols_equal ix.ix_cols cols) ps.ps_indexes with
  | Some ix -> ix
  | None ->
    let ix = { ix_cols = Array.copy cols; ix_buckets = Tup_tbl.create 64 } in
    iter_vis_cur ps (fun tup -> bucket_add ix.ix_buckets (Tuple.project tup ix.ix_cols) tup);
    ps.ps_indexes <- ix :: ps.ps_indexes;
    ix

let overlay ps cols =
  let d = ps.ps_delta in
  match List.find_opt (fun (c, _) -> cols_equal c cols) d.d_overlays with
  | Some (_, tbl) -> tbl
  | None ->
    let tbl = Tup_tbl.create 16 in
    Tup_tbl.iter (fun tup () -> bucket_add tbl (Tuple.project tup cols) tup) d.d_del;
    d.d_overlays <- (Array.copy cols, tbl) :: d.d_overlays;
    tbl

let record_ins ps tup =
  let d = ps.ps_delta in
  if Tup_tbl.mem d.d_del tup then begin
    Tup_tbl.remove d.d_del tup;
    d.d_overlays <- []
  end
  else if not (Tup_tbl.mem d.d_ins tup) then Tup_tbl.add d.d_ins tup ()

let record_del ps tup =
  let d = ps.ps_delta in
  if Tup_tbl.mem d.d_ins tup then Tup_tbl.remove d.d_ins tup
  else if not (Tup_tbl.mem d.d_del tup) then begin
    Tup_tbl.add d.d_del tup ();
    d.d_overlays <- []
  end

(* The single entry points for a visibility flip: maintain every built
   index and (once serving) the per-batch delta recorder.  Callers own
   the support tables. *)
let visible_insert mt ps tup =
  List.iter (fun ix -> bucket_add ix.ix_buckets (Tuple.project tup ix.ix_cols) tup) ps.ps_indexes;
  if mt.recording then record_ins ps tup

let visible_remove mt ps tup =
  List.iter
    (fun ix ->
      match Tup_tbl.find_opt ix.ix_buckets (Tuple.project tup ix.ix_cols) with
      | Some b -> Tup_tbl.remove b tup
      | None -> ())
    ps.ps_indexes;
  if mt.recording then record_del ps tup

(* --- support updates --- *)

let plain_add mt ps counts tup sign =
  let cur = Option.value ~default:0 (Tup_tbl.find_opt counts tup) in
  let nv = cur + sign in
  if nv < 0 then
    invalid_arg (Printf.sprintf "Maintain: negative support for %s %s" ps.ps_name (Tuple.to_string tup));
  if nv = 0 then Tup_tbl.remove counts tup else Tup_tbl.replace counts tup nv;
  if cur = 0 && nv > 0 then visible_insert mt ps tup
  else if cur > 0 && nv = 0 then visible_remove mt ps tup

let bump_int tbl k sign =
  let cur = Option.value ~default:0 (Hashtbl.find_opt tbl k) in
  let nv = cur + sign in
  if nv < 0 then invalid_arg "Maintain: negative aggregate support";
  if nv = 0 then Hashtbl.remove tbl k else Hashtbl.replace tbl k nv

let bump_tup tbl k sign =
  let cur = Option.value ~default:0 (Tup_tbl.find_opt tbl k) in
  let nv = cur + sign in
  if nv < 0 then invalid_arg "Maintain: negative aggregate support";
  if nv = 0 then Tup_tbl.remove tbl k else Tup_tbl.replace tbl k nv

(* Recomputes a group's visible value from its support after an update,
   flipping the assembled tuple's visibility when it changed.  Sum
   groups fold each contributor's largest pending value — a contributor
   carrying several distinct values at once has no engine-defined order,
   and the initial-build verification rejects programs where this
   matters. *)
let refresh_group mt ps a support_tbl group =
  let newbest =
    match Tup_tbl.find_opt support_tbl group with
    | None -> None
    | Some (Sminmax vt) ->
      if Hashtbl.length vt = 0 then None
      else
        Hashtbl.fold
          (fun v _ acc ->
            match acc with
            | None -> Some v
            | Some b -> Some (if a.a_kind = Ast.Min then min b v else max b v))
          vt None
    | Some (Scount ct) ->
      let n = Tup_tbl.length ct in
      if n = 0 then None else Some n
    | Some (Ssum st) ->
      if Tup_tbl.length st = 0 then None
      else
        Some
          (Tup_tbl.fold
             (fun _ vt acc -> acc + Hashtbl.fold (fun v _ m -> max v m) vt min_int)
             st 0)
  in
  if newbest = None then Tup_tbl.remove support_tbl group;
  let oldbest = Tup_tbl.find_opt a.a_best group in
  if oldbest <> newbest then begin
    (match oldbest with
    | Some v ->
      Tup_tbl.remove a.a_best group;
      visible_remove mt ps (assemble a group v)
    | None -> ());
    match newbest with
    | Some v ->
      Tup_tbl.replace a.a_best group v;
      visible_insert mt ps (assemble a group v)
    | None -> ()
  end

let agg_support_add mt ps a tuple contrib sign =
  let group = group_of a tuple in
  let support_tbl =
    match a.a_support with
    | Some s -> s
    | None -> invalid_arg "Maintain: aggregate support missing"
  in
  let sup =
    match Tup_tbl.find_opt support_tbl group with
    | Some s -> s
    | None ->
      let s =
        match a.a_kind with
        | Ast.Min | Ast.Max -> Sminmax (Hashtbl.create 8)
        | Ast.Count -> Scount (Tup_tbl.create 8)
        | Ast.Sum -> Ssum (Tup_tbl.create 8)
      in
      Tup_tbl.add support_tbl group s;
      s
  in
  (match sup with
  | Sminmax vt -> bump_int vt tuple.(a.a_pos) sign
  | Scount ct -> bump_tup ct contrib sign
  | Ssum st ->
    let vt =
      match Tup_tbl.find_opt st contrib with
      | Some vt -> vt
      | None ->
        let vt = Hashtbl.create 4 in
        Tup_tbl.add st contrib vt;
        vt
    in
    bump_int vt tuple.(a.a_pos) sign;
    if Hashtbl.length vt = 0 then Tup_tbl.remove st contrib);
  refresh_group mt ps a support_tbl group

(* --- head emission --- *)

let head_tuple mt cr env =
  Array.of_list
    (List.map
       (fun (arg : Ast.head_arg) ->
         match arg with
         | Ast.Plain t -> term_value mt env t
         | Ast.Agg (Ast.Count, _) -> 0
         | Ast.Agg ((Ast.Min | Ast.Max), [ t ]) -> term_value mt env t
         | Ast.Agg (Ast.Sum, ts) -> term_value mt env (List.nth ts (List.length ts - 1))
         | Ast.Agg _ -> invalid_arg "Maintain: malformed aggregate")
       cr.cr_rule.Ast.head_args)

(* Reconstructs the tuple a fully-matched body atom is bound to. *)
let atom_tuple mt env ca = Array.map (term_value mt env) ca.ca_args

let head_contrib mt cr env =
  Array.of_list
    (List.concat_map
       (fun (arg : Ast.head_arg) ->
         match arg with
         | Ast.Agg (Ast.Count, ts) -> List.map (term_value mt env) ts
         | Ast.Agg (Ast.Sum, ts) ->
           List.map (term_value mt env) (List.filteri (fun i _ -> i < List.length ts - 1) ts)
         | Ast.Agg ((Ast.Min | Ast.Max), _) | Ast.Plain _ -> [])
       cr.cr_rule.Ast.head_args)

let emit_counting mt cr env sign =
  let ps = get_pred mt cr.cr_head in
  let tuple = head_tuple mt cr env in
  match (ps.ps_body, cr.cr_agg) with
  | Pplain counts, None -> plain_add mt ps counts tuple sign
  | Pagg a, Some _ -> agg_support_add mt ps a tuple (head_contrib mt cr env) sign
  | _ -> invalid_arg "Maintain: aggregate/plain mismatch"

(* --- rule compilation and greedy ordering --- *)

let compile_rule (r : Ast.rule) =
  let atoms =
    Array.of_list
      (List.filter_map
         (function
           | Ast.Pos a -> Some { ca_pred = a.Ast.pred; ca_args = Array.of_list a.Ast.args }
           | Ast.Neg_lit _ | Ast.Cmp _ -> None)
         r.Ast.body)
  in
  let others =
    List.filter
      (function
        | Ast.Pos _ -> false
        | Ast.Neg_lit _ | Ast.Cmp _ -> true)
      r.Ast.body
  in
  {
    cr_rule = r;
    cr_head = r.Ast.head_pred;
    cr_agg = Ast.agg_of_rule r;
    cr_atoms = atoms;
    cr_others = others;
    cr_orders = [];
    cr_kernels = [];
  }

(* Orders the remaining body for a given scan key: drain every
   placeable comparison (filter once bound, Eq-with-unbound-var as an
   assignment) and negation, then the atom with the most bound argument
   positions — ties broken toward the smaller visible relation, which
   keeps head-bound probes scanning a narrow EDB bucket instead of a
   wide recursive one — and repeat. *)
let compute_order mt cr key =
  let bound : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let bind_vars vars = List.iter (fun v -> Hashtbl.replace bound v ()) vars in
  (match key with
  | -2 ->
    List.iter
      (function
        | Ast.Plain t -> bind_vars (Ast.vars_of_term t)
        | Ast.Agg _ -> ())
      cr.cr_rule.Ast.head_args
  | i when i >= 0 -> Array.iter (fun t -> bind_vars (Ast.vars_of_term t)) cr.cr_atoms.(i).ca_args
  | _ -> ());
  let all_bound vars = List.for_all (Hashtbl.mem bound) vars in
  let remaining_atoms =
    ref
      (List.filter
         (fun i -> i <> key)
         (List.init (Array.length cr.cr_atoms) (fun i -> i)))
  in
  let remaining_others = ref cr.cr_others in
  let out = ref [] in
  let rec drain_others () =
    let placed = ref false in
    remaining_others :=
      List.filter
        (fun lit ->
          match lit with
          | Ast.Cmp (op, lhs, rhs) -> (
            if all_bound (Ast.vars_of_expr lhs) && all_bound (Ast.vars_of_expr rhs) then begin
              out := O_filter (op, lhs, rhs) :: !out;
              placed := true;
              false
            end
            else if op <> Ast.Eq then true
            else
              match (lhs, rhs) with
              | Ast.Term (Ast.Var x), e
                when (not (Hashtbl.mem bound x)) && all_bound (Ast.vars_of_expr e) ->
                out := O_assign (x, e) :: !out;
                bind_vars [ x ];
                placed := true;
                false
              | e, Ast.Term (Ast.Var x)
                when (not (Hashtbl.mem bound x)) && all_bound (Ast.vars_of_expr e) ->
                out := O_assign (x, e) :: !out;
                bind_vars [ x ];
                placed := true;
                false
              | _ -> true)
          | Ast.Neg_lit a ->
            if all_bound (List.concat_map Ast.vars_of_term a.Ast.args) then begin
              out := O_neg a :: !out;
              placed := true;
              false
            end
            else true
          | Ast.Pos _ -> assert false)
        !remaining_others;
    if !placed then drain_others ()
  in
  drain_others ();
  while !remaining_atoms <> [] do
    let score i =
      Array.fold_left
        (fun acc t ->
          match t with
          | Ast.Int _ | Ast.Sym _ -> acc + 1
          | Ast.Var v -> if Hashtbl.mem bound v then acc + 1 else acc)
        0
        cr.cr_atoms.(i).ca_args
    in
    let size i = visible_count_ps (get_pred mt cr.cr_atoms.(i).ca_pred) in
    let best =
      List.fold_left
        (fun acc i ->
          match acc with
          | None -> Some (i, score i)
          | Some (j, s) ->
            let si = score i in
            if si > s || (si = s && size i < size j) then Some (i, si) else acc)
        None !remaining_atoms
    in
    let i, _ = Option.get best in
    out := O_atom i :: !out;
    Array.iter (fun t -> bind_vars (Ast.vars_of_term t)) cr.cr_atoms.(i).ca_args;
    remaining_atoms := List.filter (fun j -> j <> i) !remaining_atoms;
    drain_others ()
  done;
  if !remaining_others <> [] then
    invalid_arg ("Maintain: cannot order body of " ^ Ast.rule_to_string cr.cr_rule);
  List.rev !out

let get_order mt cr key =
  match List.assoc_opt key cr.cr_orders with
  | Some o -> o
  | None ->
    let o = compute_order mt cr key in
    cr.cr_orders <- (key, o) :: cr.cr_orders;
    o

(* --- kernel compilation (parallel maintenance) --- *)

(* Phase keys for the per-rule kernel cache.  For delta/scan atom [i]:
   counting uses [4i] (positions < i New, > i Old), DRed seeding
   [4i+1] (same-stratum Cur, lower Old, decrement extras), the DRed
   cascade [4i+2] (all Cur, a trailing rank column on the scan row) and
   insert propagation [4i+3] (all Cur); [-2] is the head-bound
   rederivation probe. *)
let kcount i = 4 * i
let kseed i = (4 * i) + 1
let kcasc i = (4 * i) + 2
let kprop i = (4 * i) + 3
let krederive = -2

(* Compiles one cached ordering of [cr] into a {!Maintain_kernel.spec}
   and instantiates it once per maintenance worker.  Variables become
   integer registers; each body atom becomes a membership probe (fully
   bound), a keyed bucket scan against a persistent [ensure_index]
   (partially bound, with the per-batch delete overlay layered on for
   Old visibility) or a full visible scan.  The iteration closures read
   the maintenance tables but never write them — a parallel round keeps
   every mutation in the per-worker emission buffers. *)
let build_mkernel mt cr ~order ~scan ~vis_of ~with_rank ~datom_idx ~in_stratum =
  let nregs = ref 0 in
  let vars : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let reg_of v =
    match Hashtbl.find_opt vars v with
    | Some r -> r
    | None ->
      let r = !nregs in
      incr nregs;
      Hashtbl.add vars v r;
      r
  in
  let src_of = function
    | Ast.Int i -> Physical.Const i
    | Ast.Sym s -> Physical.Const (sym_value mt s)
    | Ast.Var v -> (
      match Hashtbl.find_opt vars v with
      | Some r -> Physical.Reg r
      | None -> invalid_arg (Printf.sprintf "Maintain: unbound kernel variable %s" v))
  in
  let rec code_of = function
    | Ast.Term t -> (
      match src_of t with
      | Physical.Const c -> Physical.C_const c
      | Physical.Reg r -> Physical.C_reg r)
    | Ast.Binop (op, a, b) ->
      let ca = code_of a in
      let cb = code_of b in
      Physical.C_bin (op, ca, cb)
    | Ast.Neg e -> Physical.C_neg (code_of e)
  in
  (* scan row: first occurrence of a variable binds its register,
     repeats and constants become residual checks *)
  let scan_terms =
    match scan with
    | `Atom i -> cr.cr_atoms.(i).ca_args
    | `Head ->
      Array.of_list
        (List.map
           (function
             | Ast.Plain t -> t
             | Ast.Agg _ -> invalid_arg "Maintain: aggregate head in rederive kernel")
           cr.cr_rule.Ast.head_args)
  in
  let sbinds = ref [] and schecks = ref [] in
  Array.iteri
    (fun c t ->
      match t with
      | Ast.Var v when not (Hashtbl.mem vars v) -> sbinds := (c, reg_of v) :: !sbinds
      | t -> schecks := (c, src_of t) :: !schecks)
    scan_terms;
  let rank_reg =
    if with_rank then begin
      let r = !nregs in
      incr nregs;
      sbinds := (Array.length scan_terms, r) :: !sbinds;
      r
    end
    else -1
  in
  let prewarm = ref [] in
  let steps =
    List.map
      (fun el ->
        match el with
        | O_atom j ->
          let ca = cr.cr_atoms.(j) in
          let ps = get_pred mt ca.ca_pred in
          let vis = vis_of j in
          let arity = Array.length ca.ca_args in
          let newly : (string, unit) Hashtbl.t = Hashtbl.create 4 in
          let cols = ref [] and ksrc = ref [] and binds = ref [] and checks = ref [] in
          Array.iteri
            (fun c t ->
              match t with
              | Ast.Var v when Hashtbl.mem newly v ->
                checks := (c, Physical.Reg (Hashtbl.find vars v)) :: !checks
              | Ast.Var v when not (Hashtbl.mem vars v) ->
                Hashtbl.add newly v ();
                binds := (c, reg_of v) :: !binds
              | t ->
                cols := c :: !cols;
                ksrc := src_of t :: !ksrc)
            ca.ca_args;
          let cols = Array.of_list (List.rev !cols) in
          let ksrc = Array.of_list (List.rev !ksrc) in
          if Array.length cols = arity then
            Maintain_kernel.S_mem
              { sm_key_src = ksrc; sm_mem = (fun key -> mem_vis ps vis key); sm_negated = false }
          else begin
            let iter =
              if Array.length cols = 0 then fun _key f -> iter_vis ps vis (fun tup -> f tup 0)
              else begin
                (* built (from the current visible set) at compile time,
                   then maintained forever by visible_insert/remove —
                   capturing it here stays correct across batches *)
                let ix = ensure_index ps cols in
                match vis with
                | Cur ->
                  fun key f -> (
                    match Tup_tbl.find_opt ix.ix_buckets key with
                    | Some b -> Tup_tbl.iter (fun tup () -> f tup 0) b
                    | None -> ())
                | Old ->
                  prewarm := (fun () -> ignore (overlay ps cols)) :: !prewarm;
                  let d = ps.ps_delta in
                  fun key f ->
                    (match Tup_tbl.find_opt ix.ix_buckets key with
                    | Some b ->
                      Tup_tbl.iter
                        (fun tup () -> if not (Tup_tbl.mem d.d_ins tup) then f tup 0)
                        b
                    | None -> ());
                    (match Tup_tbl.find_opt (overlay ps cols) key with
                    | Some b -> Tup_tbl.iter (fun tup () -> f tup 0) b
                    | None -> ())
              end
            in
            Maintain_kernel.S_atom
              {
                sa_key_src = ksrc;
                sa_binds = Array.of_list (List.rev !binds);
                sa_checks = Array.of_list (List.rev !checks);
                sa_iter = iter;
              }
          end
        | O_neg a ->
          let ps = get_pred mt a.Ast.pred in
          let ksrc = Array.of_list (List.map src_of a.Ast.args) in
          Maintain_kernel.S_mem
            { sm_key_src = ksrc; sm_mem = (fun key -> mem_vis ps Cur key); sm_negated = true }
        | O_filter (op, lhs, rhs) ->
          let cl = code_of lhs in
          let crr = code_of rhs in
          Maintain_kernel.S_filter (op, cl, crr)
        | O_assign (x, e) ->
          let c = code_of e in
          Maintain_kernel.S_compute (reg_of x, c))
      order
  in
  let head_srcs =
    Array.of_list
      (List.map
         (fun (arg : Ast.head_arg) ->
           match arg with
           | Ast.Plain t -> src_of t
           | Ast.Agg (Ast.Count, _) -> Physical.Const 0
           | Ast.Agg ((Ast.Min | Ast.Max), [ t ]) -> src_of t
           | Ast.Agg (Ast.Sum, ts) -> src_of (List.nth ts (List.length ts - 1))
           | Ast.Agg _ -> invalid_arg "Maintain: malformed aggregate")
         cr.cr_rule.Ast.head_args)
  in
  let contrib_srcs =
    Array.of_list
      (List.concat_map
         (fun (arg : Ast.head_arg) ->
           match arg with
           | Ast.Agg (Ast.Count, ts) -> List.map src_of ts
           | Ast.Agg (Ast.Sum, ts) ->
             List.map src_of (List.filteri (fun i _ -> i < List.length ts - 1) ts)
           | Ast.Agg ((Ast.Min | Ast.Max), _) | Ast.Plain _ -> [])
         cr.cr_rule.Ast.head_args)
  in
  let datoms =
    match datom_idx with
    | None -> [||]
    | Some skip ->
      let acc = ref [] in
      Array.iteri
        (fun j ca ->
          if j <> skip && in_stratum ca.ca_pred then
            acc := (get_pred mt ca.ca_pred, Array.map src_of ca.ca_args) :: !acc)
        cr.cr_atoms;
      Array.of_list (List.rev !acc)
  in
  let spec =
    {
      Maintain_kernel.sp_nregs = !nregs;
      sp_scan_binds = Array.of_list (List.rev !sbinds);
      sp_scan_checks = Array.of_list (List.rev !schecks);
      sp_steps = steps;
      sp_head = head_srcs;
      sp_contrib = contrib_srcs;
    }
  in
  let insts =
    Array.init mt.m_workers (fun _ ->
        let pipe = Maintain_kernel.instantiate spec in
        let regs = Maintain_kernel.regs pipe in
        let atoms =
          Array.map
            (fun (ps, srcs) ->
              let buf = Array.make (Array.length srcs) 0 in
              (ps, buf, Kernel.filler srcs ~regs ~buf))
            datoms
        in
        { mi_pipe = pipe; mi_atoms = atoms })
  in
  { mk_insts = insts; mk_rank_reg = rank_reg; mk_prewarm = !prewarm }

let get_kernel mt cs cr key =
  match List.assoc_opt key cr.cr_kernels with
  | Some mk -> mk
  | None ->
    let in_stratum p = List.mem p cs.cs_stratum.Analysis.preds in
    let mk =
      if key = krederive then
        build_mkernel mt cr ~order:(get_order mt cr (-2)) ~scan:`Head ~vis_of:(fun _ -> Cur)
          ~with_rank:false ~datom_idx:None ~in_stratum
      else begin
        let i = key / 4 in
        let order = get_order mt cr i in
        let scan = `Atom i in
        match key mod 4 with
        | 0 ->
          build_mkernel mt cr ~order ~scan
            ~vis_of:(fun j -> if j < i then Cur else Old)
            ~with_rank:false ~datom_idx:None ~in_stratum
        | 1 ->
          build_mkernel mt cr ~order ~scan
            ~vis_of:(fun j -> if in_stratum cr.cr_atoms.(j).ca_pred then Cur else Old)
            ~with_rank:false ~datom_idx:(Some i) ~in_stratum
        | 2 ->
          build_mkernel mt cr ~order ~scan ~vis_of:(fun _ -> Cur) ~with_rank:true
            ~datom_idx:(Some i) ~in_stratum
        | _ ->
          build_mkernel mt cr ~order ~scan ~vis_of:(fun _ -> Cur) ~with_rank:false
            ~datom_idx:None ~in_stratum
      end
    in
    cr.cr_kernels <- (key, mk) :: cr.cr_kernels;
    mk

(* --- parallel round execution --- *)

(* Rounds smaller than this run inline on the coordinator: a morsel
   round costs a pool submit and a barrier, which only pays for itself
   on scans of a few hundred tuples and up. *)
let par_threshold = 256

let default_morsel mi _w arena ~first ~len = Maintain_kernel.run_range mi.mi_pipe arena ~first ~len

let set_emits mk make =
  Array.iteri (fun w mi -> Maintain_kernel.set_emit mi.mi_pipe (make w mi)) mk.mk_insts

(* The standard emit: buffer a copy of the head (and aggregate
   contributors, if any) for the post-barrier apply. *)
let push_emit mt w mi =
  let buf = mt.m_bufs.(w) in
  let h = Maintain_kernel.head mi.mi_pipe in
  let c = Maintain_kernel.contrib mi.mi_pipe in
  if Array.length c = 0 then fun () -> Vec.push buf (Array.copy h, [||])
  else fun () -> Vec.push buf (Array.copy h, Array.copy c)

let raise_worker_crash (failures : Domain_pool.failure list) =
  match failures with
  | [] -> assert false
  | first :: rest ->
    raise
      (Engine_error.Error
         (Engine_error.Worker_crashed
            {
              worker = first.Domain_pool.index;
              error = first.Domain_pool.error;
              backtrace = first.Domain_pool.backtrace;
              others =
                List.map
                  (fun (f : Domain_pool.failure) ->
                    {
                      Engine_error.worker = f.Domain_pool.index;
                      error = f.Domain_pool.error;
                      backtrace = f.Domain_pool.backtrace;
                    })
                  rest;
            }))

(* One buffered maintenance round over [arena].  Below the threshold
   (or with one effective worker) the coordinator runs instance 0
   inline; above it each pool worker publishes its stripe of the range
   as morsels on the steal board, drains its own deque LIFO, then
   claims from loaded peers, executing every morsel through its private
   kernel instance with all emissions buffered.  The maintenance state
   is strictly read-only between the prewarm and the barrier, so the
   concurrent hash-table reads are safe; [apply] then drains the
   buffers sequentially.  Every pass only uses rounds whose
   applications commute within the round (signed counting updates of
   one sign, support decrements, idempotent inserts, monotone merges),
   which is what keeps the result bit-identical to the sequential
   interpreter. *)
let run_round mt mk ~arena ~morsel ~apply =
  let n = Arena.length arena in
  if n > 0 then begin
    let mw = mt.m_workers in
    match (mt.m_steal, mt.runtime) with
    | Some steal, Some rt when n >= par_threshold && mw > 1 ->
      List.iter (fun f -> f ()) mk.mk_prewarm;
      Steal.reset steal;
      let body me =
        if me < mw then begin
          let t0 = Clock.now () in
          let lo = n * me / mw and hi = n * (me + 1) / mw in
          if hi > lo then
            Steal.publish_range steal ~me ~kind:Steal.Delta ~gid:0 ~arena ~first:lo
              ~len:(hi - lo);
          let mi = mk.mk_insts.(me) in
          let exec stolen (m : Steal.morsel) =
            (match mt.m_fault with
            | Some fa -> Fault.hit fa Fault.Maintain ~worker:me
            | None -> ());
            morsel mi me m.Steal.m_arena ~first:m.Steal.m_first ~len:m.Steal.m_len;
            Steal.complete steal m;
            mt.m_wmorsels.(me) <- mt.m_wmorsels.(me) + 1;
            if stolen then begin
              mt.m_wsteals.(me) <- mt.m_wsteals.(me) + 1;
              mt.m_wstolen.(me) <- mt.m_wstolen.(me) + m.Steal.m_len
            end
          in
          let rec drain () =
            match Steal.pop_own steal ~me with
            | Some m ->
              exec false m;
              drain ()
            | None ->
              if Steal.enabled steal then (
                match Steal.try_claim steal ~me with
                | Some m ->
                  exec true m;
                  drain ()
                | None -> ())
          in
          drain ();
          mt.m_wjoin.(me) <- mt.m_wjoin.(me) +. (Clock.now () -. t0)
        end
      in
      (match Domain_pool.submit rt.Parallel.rt_pool body with
      | Ok () -> ()
      | Error failures -> raise_worker_crash failures);
      for w = 0 to mw - 1 do
        let buf = mt.m_bufs.(w) in
        Vec.iter apply buf;
        Vec.clear buf
      done
    | _ ->
      morsel mk.mk_insts.(0) 0 arena ~first:0 ~len:n;
      let buf = mt.m_bufs.(0) in
      Vec.iter apply buf;
      Vec.clear buf
  end

let scratch_arena mt ~arity =
  match Hashtbl.find_opt mt.m_arenas arity with
  | Some a ->
    Arena.clear a;
    a
  | None ->
    let a = Arena.create ~arity () in
    Hashtbl.add mt.m_arenas arity a;
    a

let arena_of_tbl mt tbl ~arity =
  let a = scratch_arena mt ~arity in
  Tup_tbl.iter (fun tup () -> ignore (Arena.push a tup)) tbl;
  a

(* --- evaluation --- *)

let match_atom mt env (args : Ast.term array) (tup : Tuple.t) =
  let n = Array.length args in
  if Array.length tup <> n then None
  else begin
    let added = ref [] in
    let rec go i =
      if i = n then true
      else
        match args.(i) with
        | Ast.Var v -> (
          match Hashtbl.find_opt env v with
          | Some b -> b = tup.(i) && go (i + 1)
          | None ->
            Hashtbl.add env v tup.(i);
            added := v :: !added;
            go (i + 1))
        | t -> term_value mt env t = tup.(i) && go (i + 1)
    in
    if go 0 then Some !added
    else begin
      List.iter (Hashtbl.remove env) !added;
      None
    end
  end

let with_match mt env args tup k =
  match match_atom mt env args tup with
  | Some added ->
    k ();
    List.iter (Hashtbl.remove env) added
  | None -> ()

(* Iterates the tuples of [ps] under [visk] matching the atom's
   argument list against the environment: membership probe when fully
   bound, keyed bucket scan (with the delete-overlay for Old) when
   partially bound, full visible scan otherwise. *)
let iter_match mt ps visk env (args : Ast.term array) k =
  let arity = Array.length args in
  if arity <> ps.ps_arity then
    invalid_arg (Printf.sprintf "Maintain: arity mismatch for %s" ps.ps_name);
  let vals = Array.make (max arity 1) 0 in
  let bnd = Array.make (max arity 1) false in
  let nbound = ref 0 in
  Array.iteri
    (fun i t ->
      match t with
      | Ast.Int v ->
        vals.(i) <- v;
        bnd.(i) <- true;
        incr nbound
      | Ast.Sym s ->
        vals.(i) <- sym_value mt s;
        bnd.(i) <- true;
        incr nbound
      | Ast.Var v -> (
        match Hashtbl.find_opt env v with
        | Some x ->
          vals.(i) <- x;
          bnd.(i) <- true;
          incr nbound
        | None -> ()))
    args;
  if !nbound = arity then begin
    (* [vals] already has length [arity] unless the atom is nullary;
       the membership probe only hashes and compares, never retains *)
    let tup = if arity = Array.length vals then vals else Array.sub vals 0 arity in
    if mem_vis ps visk tup then k ()
  end
  else if !nbound = 0 then iter_vis ps visk (fun tup -> with_match mt env args tup k)
  else begin
    let cols = Array.make !nbound 0 in
    let key = Array.make !nbound 0 in
    let j = ref 0 in
    for i = 0 to arity - 1 do
      if bnd.(i) then begin
        cols.(!j) <- i;
        key.(!j) <- vals.(i);
        incr j
      end
    done;
    let ix = ensure_index ps cols in
    match visk with
    | Cur -> (
      match Tup_tbl.find_opt ix.ix_buckets key with
      | Some b -> Tup_tbl.iter (fun tup () -> with_match mt env args tup k) b
      | None -> ())
    | Old ->
      let d = ps.ps_delta in
      (match Tup_tbl.find_opt ix.ix_buckets key with
      | Some b ->
        Tup_tbl.iter
          (fun tup () -> if not (Tup_tbl.mem d.d_ins tup) then with_match mt env args tup k)
          b
      | None -> ());
      let ov = overlay ps cols in
      (match Tup_tbl.find_opt ov key with
      | Some b -> Tup_tbl.iter (fun tup () -> with_match mt env args tup k) b
      | None -> ())
  end

let rec eval_elems mt cr env elems ~vis_of ~emit =
  match elems with
  | [] -> emit ()
  | O_atom i :: rest ->
    let ca = cr.cr_atoms.(i) in
    let ps = get_pred mt ca.ca_pred in
    iter_match mt ps (vis_of i) env ca.ca_args (fun () ->
        eval_elems mt cr env rest ~vis_of ~emit)
  | O_neg a :: rest ->
    let tup = Array.of_list (List.map (term_value mt env) a.Ast.args) in
    let ps = get_pred mt a.Ast.pred in
    if not (mem_vis ps Cur tup) then eval_elems mt cr env rest ~vis_of ~emit
  | O_filter (op, lhs, rhs) :: rest -> (
    match (expr_value mt env lhs, expr_value mt env rhs) with
    | x, y -> if Physical.eval_cmp op x y then eval_elems mt cr env rest ~vis_of ~emit
    | exception Division_by_zero -> ())
  | O_assign (x, e) :: rest -> (
    match expr_value mt env e with
    | v ->
      Hashtbl.add env x v;
      eval_elems mt cr env rest ~vis_of ~emit;
      Hashtbl.remove env x
    | exception Division_by_zero -> ())

(* --- counting strata --- *)

let counting_pass mt cs =
  let env : (string, int) Hashtbl.t = Hashtbl.create 32 in
  Array.iter
    (fun cr ->
      Array.iteri
        (fun i ca ->
          let d = (get_pred mt ca.ca_pred).ps_delta in
          if Tup_tbl.length d.d_ins > 0 || Tup_tbl.length d.d_del > 0 then begin
            let order = get_order mt cr i in
            let vis_of j = if j < i then Cur else Old in
            let run_delta tbl sign =
              Tup_tbl.iter
                (fun tup () ->
                  with_match mt env ca.ca_args tup (fun () ->
                      eval_elems mt cr env order ~vis_of ~emit:(fun () ->
                          emit_counting mt cr env sign)))
                tbl
            in
            run_delta d.d_del (-1);
            run_delta d.d_ins 1
          end)
        cr.cr_atoms)
    cs.cs_rules

(* Compiled/parallel counting: one buffered round per (rule, delta
   atom, sign).  Within a round every application carries the same
   sign, and same-sign support updates commute (counts never cross the
   zero boundary out of order: deletions run first, exactly as the
   interpreter schedules them), so the morsel execution order cannot
   change the resulting state. *)
let counting_pass_par mt cs =
  Array.iter
    (fun cr ->
      Array.iteri
        (fun i ca ->
          let dps = get_pred mt ca.ca_pred in
          let d = dps.ps_delta in
          if Tup_tbl.length d.d_ins > 0 || Tup_tbl.length d.d_del > 0 then begin
            let mk = get_kernel mt cs cr (kcount i) in
            set_emits mk (push_emit mt);
            let hps = get_pred mt cr.cr_head in
            let apply sign (tuple, contrib) =
              match (hps.ps_body, cr.cr_agg) with
              | Pplain counts, None -> plain_add mt hps counts tuple sign
              | Pagg a, Some _ -> agg_support_add mt hps a tuple contrib sign
              | _ -> invalid_arg "Maintain: aggregate/plain mismatch"
            in
            let run tbl sign =
              if Tup_tbl.length tbl > 0 then
                run_round mt mk
                  ~arena:(arena_of_tbl mt tbl ~arity:dps.ps_arity)
                  ~morsel:default_morsel ~apply:(apply sign)
            in
            run d.d_del (-1);
            run d.d_ins 1
          end)
        cr.cr_atoms)
    cs.cs_rules

(* --- recursive plain strata (DRed) --- *)

(* Binds [tup] against the rule head, extending [env]; false when the
   head cannot produce this tuple (constant clash or aggregate). *)
let bind_head mt cr env tup =
  try
    List.iteri
      (fun i (arg : Ast.head_arg) ->
        match arg with
        | Ast.Plain (Ast.Var v) -> (
          match Hashtbl.find_opt env v with
          | Some b -> if b <> tup.(i) then raise Exit
          | None -> Hashtbl.add env v tup.(i))
        | Ast.Plain t -> if term_value mt env t <> tup.(i) then raise Exit
        | Ast.Agg _ -> raise Exit)
      cr.cr_rule.Ast.head_args;
    true
  with Exit -> false

(* Head-bound goal check: does any rule for [tup]'s predicate still
   derive it from the current (post-delete) state? *)
let rederive_check mt cr tup =
  let env : (string, int) Hashtbl.t = Hashtbl.create 16 in
  bind_head mt cr env tup
  &&
  let order = get_order mt cr (-2) in
  match eval_elems mt cr env order ~vis_of:(fun _ -> Cur) ~emit:(fun () -> raise Found) with
  | () -> false
  | exception Found -> true

(* Derivation ranks for a DRed stratum: rank(t) = 1 + max rank over the
   same-stratum atoms of some derivation (0 when a rule without
   same-stratum atoms derives it) — a layered, well-founded labelling
   of the adopted fixpoint.  The overdelete phase counts surviving
   rank-decreasing derivations; soundness needs only well-foundedness,
   so approximate or drifting ranks merely make the counts more
   conservative, never wrong. *)
let build_ranks mt cs =
  let stratum = cs.cs_stratum in
  let in_stratum p = List.mem p stratum.Analysis.preds in
  let env : (string, int) Hashtbl.t = Hashtbl.create 32 in
  let frontier = Vec.create () in
  let try_rank p tup r =
    let ps = get_pred mt p in
    if mem_cur ps tup && not (Tup_tbl.mem ps.ps_ranks tup) then begin
      Tup_tbl.replace ps.ps_ranks tup r;
      Vec.push frontier (p, tup)
    end
  in
  (* A derivation is usable once every same-stratum atom is ranked; an
     instantiation blocked on an unranked atom re-emerges when that
     atom's own frontier entry is processed.  The same enumeration
     seeds the support counts: a rank-decreasing instantiation is
     counted when found from its lexicographically greatest
     (rank, position) same-stratum atom — by then the others are
     already ranked, and no other frontier entry claims the same
     instantiation as its own maximum, so nothing is counted twice
     (an instantiation missed because an atom ranked late merely
     leaves the lower bound tighter).  Instantiations binding the same
     tuple to several same-stratum atoms are never counted: once that
     tuple dies the survivors cannot re-enumerate them to decrement.
     [i] is the frontier atom position, [-1] in the base pass. *)
  let emit cr i () =
    let n = Array.length cr.cr_atoms in
    let tups = Array.make n [||] in
    let ok = ref true and r = ref 0 and best = ref (-1) and best_r = ref (-1) in
    Array.iteri
      (fun j ca ->
        if !ok && in_stratum ca.ca_pred then begin
          let t = atom_tuple mt env ca in
          tups.(j) <- t;
          match Tup_tbl.find_opt (get_pred mt ca.ca_pred).ps_ranks t with
          | Some x ->
            if x >= !r then r := x + 1;
            if x > !best_r || (x = !best_r && j > !best) then begin
              best_r := x;
              best := j
            end
          | None -> ok := false
        end)
      cr.cr_atoms;
    if !ok then begin
      let h = head_tuple mt cr env in
      try_rank cr.cr_head h !r;
      if !best = i then begin
        let dup = ref false in
        Array.iteri
          (fun j ca ->
            if in_stratum ca.ca_pred then
              for k = j + 1 to n - 1 do
                if cr.cr_atoms.(k).ca_pred = ca.ca_pred && tups.(j) = tups.(k) then dup := true
              done)
          cr.cr_atoms;
        if not !dup then
          let ps = get_pred mt cr.cr_head in
          match Tup_tbl.find_opt ps.ps_ranks h with
          | Some hr when hr = !r ->
            Tup_tbl.replace ps.ps_supports h
              (1 + Option.value ~default:0 (Tup_tbl.find_opt ps.ps_supports h))
          | _ -> ()
      end
    end
  in
  Array.iter
    (fun cr ->
      if Array.for_all (fun ca -> not (in_stratum ca.ca_pred)) cr.cr_atoms then
        eval_elems mt cr env (get_order mt cr (-1)) ~vis_of:(fun _ -> Cur) ~emit:(emit cr (-1)))
    cs.cs_rules;
  let cursor = ref 0 in
  while !cursor < Vec.length frontier do
    let p, tup = Vec.get frontier !cursor in
    incr cursor;
    Array.iter
      (fun cr ->
        Array.iteri
          (fun i ca ->
            if ca.ca_pred = p then
              with_match mt env ca.ca_args tup (fun () ->
                  eval_elems mt cr env (get_order mt cr i) ~vis_of:(fun _ -> Cur)
                    ~emit:(emit cr i)))
          cr.cr_atoms)
      cs.cs_rules
  done;
  List.iter
    (fun p ->
      let ps = get_pred mt p in
      let m = Tup_tbl.fold (fun _ r acc -> max acc r) ps.ps_ranks mt.rank_counter in
      mt.rank_counter <- m + 1)
    stratum.Analysis.preds

(* Phase 2 of DRed, shared by the interpreted and compiled paths:
   physically remove the dead set from stores, ranks, supports and
   indexes. *)
let dred_remove_dead mt dsets =
  List.iter
    (fun (p, ds) ->
      let ps = get_pred mt p in
      let counts =
        match ps.ps_body with
        | Pplain c -> c
        | Pagg _ -> invalid_arg "Maintain: aggregate in DRed stratum"
      in
      Tup_tbl.iter
        (fun tup () ->
          if Tup_tbl.mem counts tup then begin
            Tup_tbl.remove counts tup;
            Tup_tbl.remove ps.ps_ranks tup;
            Tup_tbl.remove ps.ps_supports tup;
            visible_remove mt ps tup
          end)
        ds;
      mt.cur_overdeleted <- mt.cur_overdeleted + Tup_tbl.length ds)
    dsets

let dred_pass mt cs =
  let stratum = cs.cs_stratum in
  let in_stratum p = List.mem p stratum.Analysis.preds in
  let env : (string, int) Hashtbl.t = Hashtbl.create 32 in
  let dsets = List.map (fun p -> (p, Tup_tbl.create 64)) stratum.Analysis.preds in
  let dset p = List.assoc p dsets in
  (* phases 1 and 2: support-counted overdeletion.  Instead of the
     classic DRed closure — overdelete everything the dead tuples ever
     helped derive, then rederive most of it back — each death
     decrements the rank-decreasing support counts of the derivations
     it kills, and a tuple dies only when its count reaches zero, i.e.
     when no surviving well-founded derivation is left.  On densely
     supported fixpoints (transitive closure over one big SCC is the
     canonical case) the cascade stops at roughly the true deleted
     delta instead of unravelling the whole stratum.  A zero count is
     still only a *candidate* death: phase 3 rederives any tuple that
     survives via a rank-increasing derivation, so conservative counts
     cost time, never correctness. *)
  let dead = Vec.create () in
  let kill p tup =
    let ds = dset p in
    if not (Tup_tbl.mem ds tup) then begin
      let r =
        match Tup_tbl.find_opt (get_pred mt p).ps_ranks tup with
        | Some r -> r
        | None -> 0
      in
      Tup_tbl.add ds tup ();
      Vec.push dead (p, tup, r)
    end
  in
  let rank_of p tup = Tup_tbl.find_opt (get_pred mt p).ps_ranks tup in
  (* Decrement the head's support for the instantiation bound in [env],
     provided the count could have included it: a rank-decreasing
     derivation of a still-live head.  [delta_rank] carries the dying
     delta atom's rank (None for a lower-stratum delta, which the rank
     condition ignores).  The stratum stays physically untouched for
     the whole cascade, so a derivation with several dying atoms is
     re-enumerated — and decremented — once per death; counted once,
     decremented possibly more, the bound only drops, which stays
     sound. *)
  let decrement cr i delta_rank =
    let head_ps = get_pred mt cr.cr_head in
    let h = head_tuple mt cr env in
    if mem_cur head_ps h && not (Tup_tbl.mem (dset cr.cr_head) h) then
      match Tup_tbl.find_opt head_ps.ps_ranks h with
      | None -> ()
      | Some hr ->
        let ok = ref (match delta_rank with Some r -> r < hr | None -> true) in
        Array.iteri
          (fun j ca ->
            if !ok && j <> i && in_stratum ca.ca_pred then
              match rank_of ca.ca_pred (atom_tuple mt env ca) with
              | Some r -> if r >= hr then ok := false
              | None -> ok := false)
          cr.cr_atoms;
        if !ok then begin
          let s =
            match Tup_tbl.find_opt head_ps.ps_supports h with
            | Some s -> s
            | None -> 0
          in
          if s <= 1 then kill cr.cr_head h
          else Tup_tbl.replace head_ps.ps_supports h (s - 1)
        end
  in
  (* seed: derivations lost to lower-stratum deletions — lower atoms
     read Old, same-stratum atoms the physically untouched pre-batch
     fixpoint *)
  Array.iter
    (fun cr ->
      Array.iteri
        (fun i ca ->
          if not (in_stratum ca.ca_pred) then begin
            let d = (get_pred mt ca.ca_pred).ps_delta in
            if Tup_tbl.length d.d_del > 0 then begin
              let order = get_order mt cr i in
              let vis_of j = if in_stratum cr.cr_atoms.(j).ca_pred then Cur else Old in
              Tup_tbl.iter
                (fun tup () ->
                  with_match mt env ca.ca_args tup (fun () ->
                      eval_elems mt cr env order ~vis_of ~emit:(fun () -> decrement cr i None)))
                d.d_del
            end
          end)
        cr.cr_atoms)
    cs.cs_rules;
  (* cascade: deaths propagate by decrement; lower relations read their
     new fixpoint (derivations through same-batch lower insertions were
     never counted, so decrementing or skipping them is equally sound) *)
  let cursor = ref 0 in
  while !cursor < Vec.length dead do
    let p, tup, r = Vec.get dead !cursor in
    incr cursor;
    Array.iter
      (fun cr ->
        Array.iteri
          (fun i ca ->
            if ca.ca_pred = p then
              with_match mt env ca.ca_args tup (fun () ->
                  eval_elems mt cr env (get_order mt cr i) ~vis_of:(fun _ -> Cur)
                    ~emit:(fun () -> decrement cr i (Some r))))
          cr.cr_atoms)
      cs.cs_rules
  done;
  (* phase 2: physically remove the dead set *)
  dred_remove_dead mt dsets;
  (* phases 3 and 4: goal-directed rederivation of the overdeleted
     tuples, then worklist insert propagation — rederived tuples and
     lower-stratum insertions enter the same semi-naive frontier.
     Emissions are buffered per evaluation so no table is mutated while
     one of its buckets is being iterated. *)
  let prop = Vec.create () in
  let buffer = Vec.create () in
  let try_insert p tup =
    let ps = get_pred mt p in
    let counts =
      match ps.ps_body with
      | Pplain c -> c
      | Pagg _ -> assert false
    in
    if not (Tup_tbl.mem counts tup) then begin
      Tup_tbl.replace counts tup 1;
      (* any fresh well-founded rank keeps future counts sound; the
         monotone counter also orders same-batch inserts by derivation.
         One support is a lower bound — further derivations discovered
         later go uncounted, which only risks a premature candidate. *)
      Tup_tbl.replace ps.ps_ranks tup mt.rank_counter;
      Tup_tbl.replace ps.ps_supports tup 1;
      mt.rank_counter <- mt.rank_counter + 1;
      visible_insert mt ps tup;
      if Tup_tbl.mem (dset p) tup then mt.cur_rederived <- mt.cur_rederived + 1;
      Vec.push prop (p, tup)
    end
  in
  let flush_buffer () =
    Vec.iter (fun (p, h) -> try_insert p h) buffer;
    Vec.clear buffer
  in
  List.iter
    (fun (p, ds) ->
      let rules_for =
        List.filter (fun cr -> cr.cr_head = p) (Array.to_list cs.cs_rules)
      in
      Tup_tbl.iter
        (fun tup () ->
          if List.exists (fun cr -> rederive_check mt cr tup) rules_for then
            Vec.push buffer (p, tup))
        ds;
      flush_buffer ())
    dsets;
  Array.iter
    (fun cr ->
      Array.iteri
        (fun i ca ->
          if not (in_stratum ca.ca_pred) then begin
            let d = (get_pred mt ca.ca_pred).ps_delta in
            if Tup_tbl.length d.d_ins > 0 then begin
              let order = get_order mt cr i in
              Tup_tbl.iter
                (fun tup () ->
                  with_match mt env ca.ca_args tup (fun () ->
                      eval_elems mt cr env order ~vis_of:(fun _ -> Cur) ~emit:(fun () ->
                          Vec.push buffer (cr.cr_head, head_tuple mt cr env))))
                d.d_ins;
              flush_buffer ()
            end
          end)
        cr.cr_atoms)
    cs.cs_rules;
  let cursor = ref 0 in
  while !cursor < Vec.length prop do
    let p, tup = Vec.get prop !cursor in
    incr cursor;
    Array.iter
      (fun cr ->
        Array.iteri
          (fun i ca ->
            if ca.ca_pred = p then begin
              let order = get_order mt cr i in
              with_match mt env ca.ca_args tup (fun () ->
                  eval_elems mt cr env order ~vis_of:(fun _ -> Cur) ~emit:(fun () ->
                      Vec.push buffer (cr.cr_head, head_tuple mt cr env)));
              flush_buffer ()
            end)
          cr.cr_atoms)
      cs.cs_rules
  done

(* Compiled/parallel DRed.  Same four phases as [dred_pass], with the
   per-tuple interpreter loops replaced by buffered morsel rounds:

   - seed and cascade rounds evaluate the decrement body through a
     compiled kernel whose emit replays the rank conditions worker-side
     (sound: ranks and current-visibility are frozen until phase 2,
     and supports — which do change — are only read at apply time);
     the dead-set dedup and the support counter itself stay on the
     sequential apply side, so a head killed early in a round's apply
     order absorbs no further decrements, exactly as the interpreter;
   - the cascade drains the dead list in segments, one scan arena per
     predicate with the dying tuple's rank as a trailing column;
   - rederivation runs one existence round per (predicate, rule) over
     the candidate set, with insertions flushed per predicate in dsets
     order — the interpreter's flush points;
   - insert propagation seeds from the lower-stratum d_ins sets and
     drains the worklist in per-predicate segments.  Tuples are made
     visible before they enter the worklist, so any derivation needing
     two same-segment tuples is found from either scan side; inserts
     are idempotent, which makes the round order immaterial. *)
let dred_pass_par mt cs =
  let stratum = cs.cs_stratum in
  let in_stratum p = List.mem p stratum.Analysis.preds in
  let dsets = List.map (fun p -> (p, Tup_tbl.create 64)) stratum.Analysis.preds in
  let dset p = List.assoc p dsets in
  let dead = Vec.create () in
  let kill p tup =
    let ds = dset p in
    if not (Tup_tbl.mem ds tup) then begin
      let r =
        match Tup_tbl.find_opt (get_pred mt p).ps_ranks tup with
        | Some r -> r
        | None -> 0
      in
      Tup_tbl.add ds tup ();
      Vec.push dead (p, tup, r)
    end
  in
  let apply_decrement cr (h, _) =
    let head_ps = get_pred mt cr.cr_head in
    if not (Tup_tbl.mem (dset cr.cr_head) h) then begin
      let s = Option.value ~default:0 (Tup_tbl.find_opt head_ps.ps_supports h) in
      if s <= 1 then kill cr.cr_head h else Tup_tbl.replace head_ps.ps_supports h (s - 1)
    end
  in
  let decrement_emit mk cr w mi =
    let head_ps = get_pred mt cr.cr_head in
    let buf = mt.m_bufs.(w) in
    let h = Maintain_kernel.head mi.mi_pipe in
    let regs = Maintain_kernel.regs mi.mi_pipe in
    let rank_reg = mk.mk_rank_reg in
    fun () ->
      if mem_cur head_ps h then
        match Tup_tbl.find_opt head_ps.ps_ranks h with
        | None -> ()
        | Some hr ->
          if rank_reg < 0 || regs.(rank_reg) < hr then begin
            let ok = ref true in
            Array.iter
              (fun (aps, _abuf, fill) ->
                if !ok then begin
                  fill ();
                  match Tup_tbl.find_opt aps.ps_ranks _abuf with
                  | Some r -> if r >= hr then ok := false
                  | None -> ok := false
                end)
              mi.mi_atoms;
            if !ok then Vec.push buf (Array.copy h, [||])
          end
  in
  (* phase 1a: derivations lost to lower-stratum deletions *)
  Array.iter
    (fun cr ->
      Array.iteri
        (fun i ca ->
          if not (in_stratum ca.ca_pred) then begin
            let dps = get_pred mt ca.ca_pred in
            let d = dps.ps_delta in
            if Tup_tbl.length d.d_del > 0 then begin
              let mk = get_kernel mt cs cr (kseed i) in
              set_emits mk (decrement_emit mk cr);
              run_round mt mk
                ~arena:(arena_of_tbl mt d.d_del ~arity:dps.ps_arity)
                ~morsel:default_morsel ~apply:(apply_decrement cr)
            end
          end)
        cr.cr_atoms)
    cs.cs_rules;
  (* phase 1b: the cascade, in dead-list segments *)
  let cursor = ref 0 in
  while !cursor < Vec.length dead do
    let upto = Vec.length dead in
    let by_pred : (string, (Tuple.t * int) Vec.t) Hashtbl.t = Hashtbl.create 4 in
    for k = !cursor to upto - 1 do
      let p, tup, r = Vec.get dead k in
      let l =
        match Hashtbl.find_opt by_pred p with
        | Some l -> l
        | None ->
          let l = Vec.create () in
          Hashtbl.add by_pred p l;
          l
      in
      Vec.push l (tup, r)
    done;
    cursor := upto;
    List.iter
      (fun p ->
        match Hashtbl.find_opt by_pred p with
        | None -> ()
        | Some entries ->
          let arity = (get_pred mt p).ps_arity in
          let arena = scratch_arena mt ~arity:(arity + 1) in
          let row = Array.make (arity + 1) 0 in
          Vec.iter
            (fun (tup, r) ->
              Array.blit tup 0 row 0 arity;
              row.(arity) <- r;
              ignore (Arena.push arena row))
            entries;
          Array.iter
            (fun cr ->
              Array.iteri
                (fun i ca ->
                  if ca.ca_pred = p then begin
                    let mk = get_kernel mt cs cr (kcasc i) in
                    set_emits mk (decrement_emit mk cr);
                    run_round mt mk ~arena ~morsel:default_morsel
                      ~apply:(apply_decrement cr)
                  end)
                cr.cr_atoms)
            cs.cs_rules)
      stratum.Analysis.preds
  done;
  (* phase 2: physically remove the dead set *)
  dred_remove_dead mt dsets;
  (* phases 3 and 4: rederive, then worklist insert propagation *)
  let prop = Vec.create () in
  let try_insert p tup =
    let ps = get_pred mt p in
    let counts =
      match ps.ps_body with
      | Pplain c -> c
      | Pagg _ -> assert false
    in
    if not (Tup_tbl.mem counts tup) then begin
      Tup_tbl.replace counts tup 1;
      Tup_tbl.replace ps.ps_ranks tup mt.rank_counter;
      Tup_tbl.replace ps.ps_supports tup 1;
      mt.rank_counter <- mt.rank_counter + 1;
      visible_insert mt ps tup;
      if Tup_tbl.mem (dset p) tup then mt.cur_rederived <- mt.cur_rederived + 1;
      Vec.push prop (p, tup)
    end
  in
  List.iter
    (fun (p, ds) ->
      if Tup_tbl.length ds > 0 then begin
        let ps = get_pred mt p in
        let arena = arena_of_tbl mt ds ~arity:ps.ps_arity in
        let seen = Tup_tbl.create 64 in
        let matched = Vec.create () in
        Array.iter
          (fun cr ->
            if cr.cr_head = p then begin
              let mk = get_kernel mt cs cr krederive in
              set_emits mk (fun _w _mi () -> raise Maintain_kernel.Stop);
              let morsel mi w a ~first ~len =
                let data = Arena.data a in
                let k = Arena.arity a in
                let buf = mt.m_bufs.(w) in
                for s = first to first + len - 1 do
                  if Maintain_kernel.run_row mi.mi_pipe data (s * k) then begin
                    let tup = Array.make k 0 in
                    Array.blit data (s * k) tup 0 k;
                    Vec.push buf (tup, [||])
                  end
                done
              in
              run_round mt mk ~arena ~morsel ~apply:(fun (tup, _) ->
                  if not (Tup_tbl.mem seen tup) then begin
                    Tup_tbl.add seen tup ();
                    Vec.push matched tup
                  end)
            end)
          cs.cs_rules;
        Vec.iter (fun tup -> try_insert p tup) matched
      end)
    dsets;
  Array.iter
    (fun cr ->
      Array.iteri
        (fun i ca ->
          if not (in_stratum ca.ca_pred) then begin
            let dps = get_pred mt ca.ca_pred in
            let d = dps.ps_delta in
            if Tup_tbl.length d.d_ins > 0 then begin
              let mk = get_kernel mt cs cr (kprop i) in
              set_emits mk (push_emit mt);
              run_round mt mk
                ~arena:(arena_of_tbl mt d.d_ins ~arity:dps.ps_arity)
                ~morsel:default_morsel
                ~apply:(fun (h, _) -> try_insert cr.cr_head h)
            end
          end)
        cr.cr_atoms)
    cs.cs_rules;
  let cursor = ref 0 in
  while !cursor < Vec.length prop do
    let upto = Vec.length prop in
    let by_pred : (string, Tuple.t Vec.t) Hashtbl.t = Hashtbl.create 4 in
    for k = !cursor to upto - 1 do
      let p, tup = Vec.get prop k in
      let l =
        match Hashtbl.find_opt by_pred p with
        | Some l -> l
        | None ->
          let l = Vec.create () in
          Hashtbl.add by_pred p l;
          l
      in
      Vec.push l tup
    done;
    cursor := upto;
    List.iter
      (fun p ->
        match Hashtbl.find_opt by_pred p with
        | None -> ()
        | Some entries ->
          let arena = scratch_arena mt ~arity:(get_pred mt p).ps_arity in
          Vec.iter (fun tup -> ignore (Arena.push arena tup)) entries;
          Array.iter
            (fun cr ->
              Array.iteri
                (fun i ca ->
                  if ca.ca_pred = p then begin
                    let mk = get_kernel mt cs cr (kprop i) in
                    set_emits mk (push_emit mt);
                    run_round mt mk ~arena ~morsel:default_morsel
                      ~apply:(fun (h, _) -> try_insert cr.cr_head h)
                  end)
                cr.cr_atoms)
            cs.cs_rules)
      stratum.Analysis.preds
  done

(* --- recursive min/max aggregate strata: monotone insert propagation --- *)

let aggrec_insert_pass mt cs =
  let stratum = cs.cs_stratum in
  let in_stratum p = List.mem p stratum.Analysis.preds in
  let env : (string, int) Hashtbl.t = Hashtbl.create 32 in
  let prop = Vec.create () in
  let buffer = Vec.create () in
  let merge p tup =
    let ps = get_pred mt p in
    match ps.ps_body with
    | Pplain counts ->
      if not (Tup_tbl.mem counts tup) then begin
        Tup_tbl.replace counts tup 1;
        visible_insert mt ps tup;
        Vec.push prop (p, tup)
      end
    | Pagg a -> (
      let g = group_of a tup in
      let v = tup.(a.a_pos) in
      let improves =
        match Tup_tbl.find_opt a.a_best g with
        | None -> true
        | Some cur -> (
          match a.a_kind with
          | Ast.Min -> v < cur
          | Ast.Max -> v > cur
          | Ast.Count | Ast.Sum -> invalid_arg "Maintain: non-monotone aggregate insert")
      in
      if improves then begin
        (match Tup_tbl.find_opt a.a_best g with
        | Some cur ->
          Tup_tbl.remove a.a_best g;
          visible_remove mt ps (assemble a g cur)
        | None -> ());
        Tup_tbl.replace a.a_best g v;
        visible_insert mt ps tup;
        Vec.push prop (p, tup)
      end)
  in
  let flush_buffer () =
    Vec.iter (fun (p, h) -> merge p h) buffer;
    Vec.clear buffer
  in
  Array.iter
    (fun cr ->
      Array.iteri
        (fun i ca ->
          if not (in_stratum ca.ca_pred) then begin
            let d = (get_pred mt ca.ca_pred).ps_delta in
            if Tup_tbl.length d.d_ins > 0 then begin
              let order = get_order mt cr i in
              Tup_tbl.iter
                (fun tup () ->
                  with_match mt env ca.ca_args tup (fun () ->
                      eval_elems mt cr env order ~vis_of:(fun _ -> Cur) ~emit:(fun () ->
                          Vec.push buffer (cr.cr_head, head_tuple mt cr env))))
                d.d_ins;
              flush_buffer ()
            end
          end)
        cr.cr_atoms)
    cs.cs_rules;
  let cursor = ref 0 in
  while !cursor < Vec.length prop do
    let p, tup = Vec.get prop !cursor in
    incr cursor;
    Array.iter
      (fun cr ->
        Array.iteri
          (fun i ca ->
            if ca.ca_pred = p then begin
              let order = get_order mt cr i in
              with_match mt env ca.ca_args tup (fun () ->
                  eval_elems mt cr env order ~vis_of:(fun _ -> Cur) ~emit:(fun () ->
                      Vec.push buffer (cr.cr_head, head_tuple mt cr env)));
              flush_buffer ()
            end)
          cr.cr_atoms)
      cs.cs_rules
  done

(* Compiled/parallel monotone insert propagation: the same seed +
   worklist shape as the DRed insert phases, with [merge] as the apply.
   Merging keeps the best value per group whatever the order, and any
   improvement re-enters the worklist, so segment rounds reach the same
   monotone fixpoint as the per-tuple interpreter. *)
let aggrec_insert_pass_par mt cs =
  let stratum = cs.cs_stratum in
  let in_stratum p = List.mem p stratum.Analysis.preds in
  let prop = Vec.create () in
  let merge p tup =
    let ps = get_pred mt p in
    match ps.ps_body with
    | Pplain counts ->
      if not (Tup_tbl.mem counts tup) then begin
        Tup_tbl.replace counts tup 1;
        visible_insert mt ps tup;
        Vec.push prop (p, tup)
      end
    | Pagg a -> (
      let g = group_of a tup in
      let v = tup.(a.a_pos) in
      let improves =
        match Tup_tbl.find_opt a.a_best g with
        | None -> true
        | Some cur -> (
          match a.a_kind with
          | Ast.Min -> v < cur
          | Ast.Max -> v > cur
          | Ast.Count | Ast.Sum -> invalid_arg "Maintain: non-monotone aggregate insert")
      in
      if improves then begin
        (match Tup_tbl.find_opt a.a_best g with
        | Some cur ->
          Tup_tbl.remove a.a_best g;
          visible_remove mt ps (assemble a g cur)
        | None -> ());
        Tup_tbl.replace a.a_best g v;
        visible_insert mt ps tup;
        Vec.push prop (p, tup)
      end)
  in
  Array.iter
    (fun cr ->
      Array.iteri
        (fun i ca ->
          if not (in_stratum ca.ca_pred) then begin
            let dps = get_pred mt ca.ca_pred in
            let d = dps.ps_delta in
            if Tup_tbl.length d.d_ins > 0 then begin
              let mk = get_kernel mt cs cr (kprop i) in
              set_emits mk (push_emit mt);
              run_round mt mk
                ~arena:(arena_of_tbl mt d.d_ins ~arity:dps.ps_arity)
                ~morsel:default_morsel
                ~apply:(fun (h, _) -> merge cr.cr_head h)
            end
          end)
        cr.cr_atoms)
    cs.cs_rules;
  let cursor = ref 0 in
  while !cursor < Vec.length prop do
    let upto = Vec.length prop in
    let by_pred : (string, Tuple.t Vec.t) Hashtbl.t = Hashtbl.create 4 in
    for k = !cursor to upto - 1 do
      let p, tup = Vec.get prop k in
      let l =
        match Hashtbl.find_opt by_pred p with
        | Some l -> l
        | None ->
          let l = Vec.create () in
          Hashtbl.add by_pred p l;
          l
      in
      Vec.push l tup
    done;
    cursor := upto;
    List.iter
      (fun p ->
        match Hashtbl.find_opt by_pred p with
        | None -> ()
        | Some entries ->
          let arena = scratch_arena mt ~arity:(get_pred mt p).ps_arity in
          Vec.iter (fun tup -> ignore (Arena.push arena tup)) entries;
          Array.iter
            (fun cr ->
              Array.iteri
                (fun i ca ->
                  if ca.ca_pred = p then begin
                    let mk = get_kernel mt cs cr (kprop i) in
                    set_emits mk (push_emit mt);
                    run_round mt mk ~arena ~morsel:default_morsel
                      ~apply:(fun (h, _) -> merge cr.cr_head h)
                  end)
                cr.cr_atoms)
            cs.cs_rules)
      stratum.Analysis.preds
  done

(* --- stratum recompute through the parallel engine --- *)

let collect_syms rules =
  let acc = Hashtbl.create 16 in
  let term = function
    | Ast.Sym s -> Hashtbl.replace acc s ()
    | Ast.Int _ | Ast.Var _ -> ()
  in
  let rec expr = function
    | Ast.Term t -> term t
    | Ast.Binop (_, a, b) ->
      expr a;
      expr b
    | Ast.Neg e -> expr e
  in
  List.iter
    (fun (r : Ast.rule) ->
      List.iter
        (fun (ha : Ast.head_arg) ->
          match ha with
          | Ast.Plain t -> term t
          | Ast.Agg (_, ts) -> List.iter term ts)
        r.Ast.head_args;
      List.iter
        (fun lit ->
          match lit with
          | Ast.Pos a | Ast.Neg_lit a -> List.iter term a.Ast.args
          | Ast.Cmp (_, l, r') ->
            expr l;
            expr r')
        r.Ast.body)
    rules;
  Hashtbl.fold (fun s () l -> s :: l) acc []

let sub_plan mt cs =
  match cs.cs_sub with
  | Some p -> p
  | None ->
    let rules = cs.cs_stratum.Analysis.base_rules @ cs.cs_stratum.Analysis.recursive_rules in
    let program = { Ast.rules } in
    let info =
      match Analysis.analyze program with
      | Ok i -> i
      | Error e -> invalid_arg ("Maintain: sub-program analysis failed: " ^ e)
    in
    (* resolve every symbolic constant against the session plan's table
       so interned ids agree with the maintained tuples *)
    let params =
      List.fold_left
        (fun acc s ->
          if List.mem_assoc s acc then acc
          else (s, Dcd_util.Symbol.intern mt.plan.Physical.symbols s) :: acc)
        mt.plan.Physical.params (collect_syms rules)
    in
    let plan =
      match Physical.compile ~params info with
      | Ok p -> p
      | Error e -> invalid_arg ("Maintain: sub-program compile failed: " ^ e)
    in
    cs.cs_sub <- Some plan;
    plan

let visible_vec_of mt p =
  let v = Vec.create () in
  iter_vis_cur (get_pred mt p) (fun tup -> Vec.push v tup);
  v

let recompute mt cs =
  mt.cur_recomputed <- mt.cur_recomputed + 1;
  let sub = sub_plan mt cs in
  let edb = List.map (fun p -> (p, visible_vec_of mt p)) sub.Physical.info.Analysis.edb in
  let config =
    {
      mt.config with
      Parallel.fault = None;
      checkpoint_every = 0;
      max_recoveries = 0;
      coord = Coord.default_config;
    }
  in
  let result = Parallel.run ?runtime:mt.runtime sub ~edb ~config in
  List.iter
    (fun p ->
      let ps = get_pred mt p in
      let newvec = Parallel.relation_vec result p in
      match ps.ps_body with
      | Pplain counts ->
        let newset = Tup_tbl.create (max 16 (Vec.length newvec)) in
        Vec.iter (fun tup -> Tup_tbl.replace newset tup ()) newvec;
        let stale = ref [] in
        Tup_tbl.iter
          (fun tup _ -> if not (Tup_tbl.mem newset tup) then stale := tup :: !stale)
          counts;
        List.iter
          (fun tup ->
            Tup_tbl.remove counts tup;
            visible_remove mt ps tup)
          !stale;
        Tup_tbl.iter
          (fun tup () ->
            if not (Tup_tbl.mem counts tup) then begin
              Tup_tbl.replace counts tup 1;
              visible_insert mt ps tup
            end)
          newset
      | Pagg a ->
        let newbest = Tup_tbl.create 64 in
        Vec.iter (fun tup -> Tup_tbl.replace newbest (group_of a tup) tup.(a.a_pos)) newvec;
        let stale = ref [] in
        Tup_tbl.iter
          (fun g v ->
            match Tup_tbl.find_opt newbest g with
            | Some v' when v' = v -> ()
            | _ -> stale := (g, v) :: !stale)
          a.a_best;
        List.iter
          (fun (g, v) ->
            Tup_tbl.remove a.a_best g;
            visible_remove mt ps (assemble a g v))
          !stale;
        Tup_tbl.iter
          (fun g v ->
            if not (Tup_tbl.mem a.a_best g) then begin
              Tup_tbl.replace a.a_best g v;
              visible_insert mt ps (assemble a g v)
            end)
          newbest)
    cs.cs_stratum.Analysis.preds

(* --- construction --- *)

let new_ps name arity body =
  {
    ps_name = name;
    ps_arity = arity;
    ps_body = body;
    ps_indexes = [];
    ps_delta = { d_ins = Tup_tbl.create 16; d_del = Tup_tbl.create 16; d_overlays = [] };
    ps_ranks = Tup_tbl.create 16;
    ps_supports = Tup_tbl.create 16;
  }

let arity_of info p =
  match List.assoc_opt p info.Analysis.arities with
  | Some a -> a
  | None -> invalid_arg (Printf.sprintf "Maintain: unknown arity for %s" p)

let create ~plan ~config ?runtime ~catalog () =
  if config.Parallel.max_iterations > 0 then
    invalid_arg "Maintain: bounded-iteration programs cannot be incrementally maintained";
  (match runtime with
  | Some rt when rt.Parallel.rt_workers <> config.Parallel.workers ->
    invalid_arg "Maintain: runtime/config worker mismatch"
  | _ -> ());
  if config.Parallel.maintain_workers < 0 then
    invalid_arg "Maintain: maintain_workers must be >= 0";
  let m_workers =
    match runtime with
    | None -> 1
    | Some _ ->
      let req =
        if config.Parallel.maintain_workers = 0 then config.Parallel.workers
        else config.Parallel.maintain_workers
      in
      max 1 (min req config.Parallel.workers)
  in
  let mt =
    {
      plan;
      config;
      runtime;
      preds = Hashtbl.create 32;
      edb = Hashtbl.create 16;
      m_workers;
      m_steal =
        (if m_workers > 1 then
           Some
             (Steal.create ~workers:m_workers ~enabled:config.Parallel.steal
                ~morsel_tuples:(max 1 config.Parallel.morsel_tuples))
         else None);
      m_fault =
        (match config.Parallel.fault with
        | Some spec when m_workers > 1 -> Some (Fault.create ~workers:m_workers spec)
        | _ -> None);
      m_bufs = Array.init m_workers (fun _ -> Vec.create ());
      m_arenas = Hashtbl.create 8;
      m_wjoin = Array.make m_workers 0.;
      m_wmorsels = Array.make m_workers 0;
      m_wsteals = Array.make m_workers 0;
      m_wstolen = Array.make m_workers 0;
      strata = [];
      recording = false;
      rank_counter = 1;
      cur_overdeleted = 0;
      cur_rederived = 0;
      cur_recomputed = 0;
    }
  in
  let info = plan.Physical.info in
  List.iter
    (fun pred ->
      let counts = Tup_tbl.create 64 in
      (match Catalog.find catalog pred with
      | Some rel -> Relation.iter (fun tup -> Tup_tbl.replace counts tup 1) rel
      | None -> ());
      Hashtbl.replace mt.preds pred (new_ps pred (arity_of info pred) (Pplain counts));
      Hashtbl.replace mt.edb pred ())
    info.Analysis.edb;
  mt.strata <-
    List.map
      (fun (st : Analysis.stratum) ->
        let rules = st.Analysis.base_rules @ st.Analysis.recursive_rules in
        let has_neg =
          List.exists
            (fun (r : Ast.rule) ->
              List.exists
                (function
                  | Ast.Neg_lit _ -> true
                  | Ast.Pos _ | Ast.Cmp _ -> false)
                r.Ast.body)
            rules
        in
        let agg_preds =
          List.filter (fun p -> List.mem_assoc p info.Analysis.aggregated) st.Analysis.preds
        in
        let mode =
          if has_neg then M_subrun
          else if st.Analysis.kind = Analysis.Nonrecursive then M_counting
          else if agg_preds <> [] then M_aggrec
          else M_dred
        in
        let insert_ok =
          List.for_all
            (fun p ->
              match List.assoc p info.Analysis.aggregated with
              | _, (Ast.Min | Ast.Max) -> true
              | _, (Ast.Count | Ast.Sum) -> false)
            agg_preds
        in
        let body_preds =
          List.sort_uniq compare
            (List.concat_map
               (fun (r : Ast.rule) ->
                 List.filter_map
                   (function
                     | Ast.Pos a | Ast.Neg_lit a ->
                       if List.mem a.Ast.pred st.Analysis.preds then None else Some a.Ast.pred
                     | Ast.Cmp _ -> None)
                   r.Ast.body)
               rules)
        in
        List.iter
          (fun p ->
            let body =
              match List.assoc_opt p info.Analysis.aggregated with
              | Some (pos, kind) ->
                Pagg
                  {
                    a_pos = pos;
                    a_kind = kind;
                    a_best = Tup_tbl.create 64;
                    a_support = (if mode = M_counting then Some (Tup_tbl.create 64) else None);
                  }
              | None -> Pplain (Tup_tbl.create 64)
            in
            Hashtbl.replace mt.preds p (new_ps p (arity_of info p) body))
          st.Analysis.preds;
        let cs =
          {
            cs_stratum = st;
            cs_mode = mode;
            cs_insert_ok = insert_ok;
            cs_body_preds = body_preds;
            cs_rules = Array.of_list (List.map compile_rule rules);
            cs_sub = None;
          }
        in
        (match mode with
        | M_counting ->
          (* rebuild the support from scratch (one pass: the bodies are
             all lower-stratum), then verify the visible set reproduces
             the engine's materialization exactly *)
          let env : (string, int) Hashtbl.t = Hashtbl.create 32 in
          Array.iter
            (fun cr ->
              let order = get_order mt cr (-1) in
              eval_elems mt cr env order ~vis_of:(fun _ -> Cur) ~emit:(fun () ->
                  emit_counting mt cr env 1))
            cs.cs_rules;
          List.iter
            (fun p ->
              let ps = get_pred mt p in
              let rel = Catalog.find catalog p in
              let rel_len = match rel with Some r -> Relation.length r | None -> 0 in
              let vis_len = visible_count_ps ps in
              let ok =
                rel_len = vis_len
                &&
                match rel with
                | None -> true
                | Some r ->
                  let good = ref true in
                  Relation.iter (fun tup -> if not (mem_cur ps tup) then good := false) r;
                  !good
              in
              if not ok then
                invalid_arg
                  (Printf.sprintf
                     "Maintain: support interpreter diverged from the engine on %s (engine %d \
                      tuples, interpreter %d)"
                     p rel_len vis_len))
            st.Analysis.preds
        | M_dred | M_aggrec | M_subrun ->
          (* adopt the engine's fixpoint as the maintained state *)
          List.iter
            (fun p ->
              let ps = get_pred mt p in
              match Catalog.find catalog p with
              | None -> ()
              | Some rel -> (
                match ps.ps_body with
                | Pplain counts -> Relation.iter (fun tup -> Tup_tbl.replace counts tup 1) rel
                | Pagg a ->
                  Relation.iter
                    (fun tup -> Tup_tbl.replace a.a_best (group_of a tup) tup.(a.a_pos))
                    rel))
            st.Analysis.preds;
          if mode = M_dred then build_ranks mt cs);
        cs)
      info.Analysis.strata;
  mt.recording <- true;
  mt

(* --- batch application --- *)

(* Validates (and defensively copies) a whole batch before any
   mutation: user errors must not tear the resident state. *)
let validate_norm mt updates =
  List.map
      (fun u ->
        let name, tup, ins =
          match u with
          | Insert (n, t) -> (n, t, true)
          | Delete (n, t) -> (n, t, false)
        in
        let ps =
          match Hashtbl.find_opt mt.preds name with
          | Some ps -> ps
          | None -> invalid_arg (Printf.sprintf "Maintain: unknown relation %s" name)
        in
        if not (Hashtbl.mem mt.edb name) then
          invalid_arg (Printf.sprintf "Maintain: %s is derived, not a base relation" name);
        if Array.length tup <> ps.ps_arity then
          invalid_arg
            (Printf.sprintf "Maintain: arity mismatch for %s (expected %d, got %d)" name
               ps.ps_arity (Array.length tup));
        (ps, Array.copy tup, ins))
    updates

let validate mt updates = ignore (validate_norm mt updates)

let apply mt updates =
  let norm = validate_norm mt updates in
  mt.cur_overdeleted <- 0;
  mt.cur_rederived <- 0;
  mt.cur_recomputed <- 0;
  Array.fill mt.m_wjoin 0 mt.m_workers 0.;
  Array.fill mt.m_wmorsels 0 mt.m_workers 0;
  Array.fill mt.m_wsteals 0 mt.m_workers 0;
  Array.fill mt.m_wstolen 0 mt.m_workers 0;
  Array.iter Vec.clear mt.m_bufs;
  List.iter
    (fun (ps, tup, ins) ->
      let counts =
        match ps.ps_body with
        | Pplain c -> c
        | Pagg _ -> assert false
      in
      if ins then begin
        if not (Tup_tbl.mem counts tup) then begin
          Tup_tbl.replace counts tup 1;
          visible_insert mt ps tup
        end
      end
      else if Tup_tbl.mem counts tup then begin
        Tup_tbl.remove counts tup;
        visible_remove mt ps tup
      end)
    norm;
  List.iter
    (fun cs ->
      let changed =
        List.exists
          (fun p ->
            let d = (get_pred mt p).ps_delta in
            Tup_tbl.length d.d_ins > 0 || Tup_tbl.length d.d_del > 0)
          cs.cs_body_preds
      in
      if changed then begin
        (* maintain_workers = 1 (or no runtime) is the ablation: the
           interpreted per-tuple path, bit-for-bit the PR 9 behavior *)
        let par = mt.m_workers > 1 in
        match cs.cs_mode with
        | M_counting -> if par then counting_pass_par mt cs else counting_pass mt cs
        | M_dred -> if par then dred_pass_par mt cs else dred_pass mt cs
        | M_subrun -> recompute mt cs
        | M_aggrec ->
          let has_del =
            List.exists
              (fun p -> Tup_tbl.length (get_pred mt p).ps_delta.d_del > 0)
              cs.cs_body_preds
          in
          if cs.cs_insert_ok && not has_del then
            if par then aggrec_insert_pass_par mt cs else aggrec_insert_pass mt cs
          else recompute mt cs
      end)
    mt.strata;
  let changed = ref [] in
  let deltas = ref [] in
  let base_i = ref 0
  and base_d = ref 0
  and der_i = ref 0
  and der_d = ref 0 in
  Hashtbl.iter
    (fun name ps ->
      let d = ps.ps_delta in
      let i = Tup_tbl.length d.d_ins and r = Tup_tbl.length d.d_del in
      if i > 0 || r > 0 then begin
        changed := (name, i, r) :: !changed;
        (* the tuple arrays outlive the delta reset below; nothing in
           this module mutates a tuple once stored *)
        deltas :=
          ( name,
            Tup_tbl.fold (fun t () acc -> t :: acc) d.d_ins [],
            Tup_tbl.fold (fun t () acc -> t :: acc) d.d_del [] )
          :: !deltas;
        if Hashtbl.mem mt.edb name then begin
          base_i := !base_i + i;
          base_d := !base_d + r
        end
        else begin
          der_i := !der_i + i;
          der_d := !der_d + r
        end
      end)
    mt.preds;
  let report =
    {
      br_base_inserted = !base_i;
      br_base_deleted = !base_d;
      br_derived_inserted = !der_i;
      br_derived_deleted = !der_d;
      br_overdeleted = mt.cur_overdeleted;
      br_rederived = mt.cur_rederived;
      br_recomputed_strata = mt.cur_recomputed;
      br_changed = List.sort compare !changed;
      br_deltas = List.sort (fun (a, _, _) (b, _, _) -> compare a b) !deltas;
      br_workers =
        (if mt.m_workers > 1 then
           List.init mt.m_workers (fun w ->
               (mt.m_wjoin.(w), mt.m_wmorsels.(w), mt.m_wsteals.(w), mt.m_wstolen.(w)))
         else []);
    }
  in
  Hashtbl.iter
    (fun _ ps ->
      let d = ps.ps_delta in
      Tup_tbl.reset d.d_ins;
      Tup_tbl.reset d.d_del;
      d.d_overlays <- [])
    mt.preds;
  report

(* --- read access for the session layer --- *)

let visible mt name f = iter_vis_cur (get_pred mt name) f

let visible_count mt name = visible_count_ps (get_pred mt name)

let arity mt name = (get_pred mt name).ps_arity

let predicates mt = List.sort compare (Hashtbl.fold (fun name _ acc -> name :: acc) mt.preds [])

let is_base mt name = Hashtbl.mem mt.edb name
