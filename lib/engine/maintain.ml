(* Incremental maintenance of a materialized fixpoint under batched
   base-relation updates.

   The maintenance state mirrors the engine's catalog as hash-table
   stores with per-tuple support, processed stratum by stratum in the
   same bottom-up order the engine evaluated them:

   - non-recursive strata use counting (Gupta–Mumick–Subrahmanian):
     per-tuple derivation counts, updated by signed delta rules where
     the delta atom at body position [i] sees the batch delta, positions
     [< i] see the new state and positions [> i] the old one — the
     telescoping N0⋈N1 − O0⋈O1 = ∆0⋈O1 + N0⋈∆1, so every changed
     derivation is counted exactly once with its net sign;
   - recursive plain strata use DRed: overdelete closure w.r.t. the old
     database, physical removal, goal-directed rederivation, then
     worklist insert propagation (semi-naive from the current fixpoint);
   - recursive strata whose aggregates are all min/max propagate inserts
     monotonically (improvements only — sound because a grown database
     can only improve a monotone aggregate) and fall back to a stratum
     recompute for deletions;
   - strata with negation, or recursive count/sum aggregates, recompute
     through the parallel engine itself ({!Parallel.run} on the resident
     {!Parallel.runtime} pool), then diff against the previous state.

   The old (pre-batch) state of a finished lower stratum is
   reconstructed per predicate as [(current \ d_ins) ∪ d_del] from the
   per-batch delta recorder, with lazily built overlay indexes over the
   delete set for keyed lookups. *)

open Dcd_planner
module Ast = Dcd_datalog.Ast
module Analysis = Dcd_datalog.Analysis
module Tuple = Dcd_storage.Tuple
module Relation = Dcd_storage.Relation
module Vec = Dcd_util.Vec

module Tup_tbl = Hashtbl.Make (struct
  type t = Tuple.t

  let equal = Tuple.equal
  let hash = Tuple.hash
end)

type update =
  | Insert of string * Tuple.t
  | Delete of string * Tuple.t

type batch_report = {
  br_base_inserted : int;
  br_base_deleted : int;
  br_derived_inserted : int;
  br_derived_deleted : int;
  br_overdeleted : int;
  br_rederived : int;
  br_recomputed_strata : int;
  br_changed : (string * int * int) list;
  br_deltas : (string * Dcd_storage.Tuple.t list * Dcd_storage.Tuple.t list) list;
}

(* --- state --- *)

(* Counting support for an aggregated head in a non-recursive stratum:
   enough to recompute the group's visible value after any mix of
   derivation gains and losses. *)
type agg_support =
  | Sminmax of (int, int) Hashtbl.t (* value -> derivation count *)
  | Scount of int Tup_tbl.t (* contributor -> derivation count *)
  | Ssum of (int, int) Hashtbl.t Tup_tbl.t (* contributor -> value -> count *)

type apred = {
  a_pos : int;
  a_kind : Ast.agg_kind;
  a_best : int Tup_tbl.t; (* group -> visible aggregate value *)
  a_support : agg_support Tup_tbl.t option; (* counting strata only *)
}

type pbody =
  | Pplain of int Tup_tbl.t (* tuple -> derivation count (sets: 1) *)
  | Pagg of apred

type index = {
  ix_cols : int array;
  ix_buckets : unit Tup_tbl.t Tup_tbl.t; (* projected key -> visible tuples *)
}

(* Per-batch net change recorder.  Invariants after cancellation:
   d_del ∩ visible = ∅ and d_ins ⊆ visible, so the old state is exactly
   (visible \ d_ins) ∪ d_del. *)
type delta = {
  d_ins : unit Tup_tbl.t;
  d_del : unit Tup_tbl.t;
  mutable d_overlays : (int array * unit Tup_tbl.t Tup_tbl.t) list;
      (* lazy keyed indexes over d_del, for Old-visibility lookups *)
}

type pred_state = {
  ps_name : string;
  ps_arity : int;
  ps_body : pbody;
  mutable ps_indexes : index list;
  ps_delta : delta;
  ps_ranks : int Tup_tbl.t;
      (* DRed strata only: a well-founded derivation rank per visible
         tuple, grounding the rank-decreasing support counts that brake
         the overdeletion cascade *)
  ps_supports : int Tup_tbl.t;
      (* DRed strata only: a lower bound on the number of surviving
         rank-decreasing derivations of each visible tuple (exact after
         [build_ranks]; deletions decrement, insertions start at 1).  A
         positive count proves the tuple derivable in the new fixpoint,
         so only zero-count tuples join the overdeletion frontier.
         Lower-bound discipline keeps this sound: decrements may
         over-fire and increments under-fire — a premature zero only
         costs a rederivation check, never a wrong fixpoint. *)
}

(* --- compiled rules --- *)

type catom = {
  ca_pred : string;
  ca_args : Ast.term array;
}

type oelem =
  | O_atom of int (* index into cr_atoms *)
  | O_neg of Ast.atom
  | O_filter of Ast.cmp_op * Ast.expr * Ast.expr
  | O_assign of string * Ast.expr

type crule = {
  cr_rule : Ast.rule;
  cr_head : string;
  cr_agg : (int * Ast.agg_kind) option;
  cr_atoms : catom array;
  cr_others : Ast.literal list; (* negations and comparisons *)
  mutable cr_orders : (int * oelem list) list;
      (* greedy orderings cached by scan key: the delta atom index,
         [-1] = full evaluation, [-2] = head-bound (rederive check) *)
}

type mode =
  | M_counting
  | M_dred
  | M_aggrec
  | M_subrun

type cstratum = {
  cs_stratum : Analysis.stratum;
  cs_mode : mode;
  cs_insert_ok : bool; (* aggrec: every aggregate is min/max *)
  cs_body_preds : string list; (* lower predicates feeding this stratum *)
  cs_rules : crule array;
  mutable cs_sub : Physical.t option; (* cached recompute sub-plan *)
}

type t = {
  plan : Physical.t;
  config : Parallel.config;
  runtime : Parallel.runtime option;
  preds : (string, pred_state) Hashtbl.t;
  edb : (string, unit) Hashtbl.t;
  mutable strata : cstratum list;
  mutable recording : bool;
  mutable rank_counter : int;
      (* strictly above every assigned rank; fresh insertions take the
         next value so later tuples always outrank their supports *)
  mutable cur_overdeleted : int;
  mutable cur_rederived : int;
  mutable cur_recomputed : int;
}

type vis =
  | Cur
  | Old

exception Found

(* --- basic helpers --- *)

let get_pred mt name =
  match Hashtbl.find_opt mt.preds name with
  | Some ps -> ps
  | None -> invalid_arg (Printf.sprintf "Maintain: unknown predicate %s" name)

let sym_value mt s =
  match List.assoc_opt s mt.plan.Physical.params with
  | Some v -> v
  | None -> Dcd_util.Symbol.intern mt.plan.Physical.symbols s

let term_value mt env = function
  | Ast.Int i -> i
  | Ast.Sym s -> sym_value mt s
  | Ast.Var v -> (
    match Hashtbl.find_opt env v with
    | Some x -> x
    | None -> invalid_arg (Printf.sprintf "Maintain: unbound variable %s" v))

let rec expr_value mt env = function
  | Ast.Term t -> term_value mt env t
  | Ast.Binop (op, a, b) -> (
    let x = expr_value mt env a and y = expr_value mt env b in
    match op with
    | Ast.Add -> x + y
    | Ast.Sub -> x - y
    | Ast.Mul -> x * y
    | Ast.Div -> x / y
    | Ast.Mod -> x mod y)
  | Ast.Neg e -> -expr_value mt env e

let group_of a tup =
  let arity = Array.length tup in
  let g = Array.make (arity - 1) 0 in
  let gi = ref 0 in
  for c = 0 to arity - 1 do
    if c <> a.a_pos then begin
      g.(!gi) <- tup.(c);
      incr gi
    end
  done;
  g

let assemble a group v =
  let arity = Array.length group + 1 in
  let tup = Array.make arity 0 in
  let gi = ref 0 in
  for c = 0 to arity - 1 do
    if c = a.a_pos then tup.(c) <- v
    else begin
      tup.(c) <- group.(!gi);
      incr gi
    end
  done;
  tup

let cols_equal a b = Array.length a = Array.length b && Array.for_all2 ( = ) a b

(* --- visibility --- *)

let iter_vis_cur ps f =
  match ps.ps_body with
  | Pplain counts -> Tup_tbl.iter (fun tup _ -> f tup) counts
  | Pagg a -> Tup_tbl.iter (fun g v -> f (assemble a g v)) a.a_best

let mem_cur ps tup =
  match ps.ps_body with
  | Pplain counts -> Tup_tbl.mem counts tup
  | Pagg a -> (
    let g = group_of a tup in
    match Tup_tbl.find_opt a.a_best g with
    | Some v -> v = tup.(a.a_pos)
    | None -> false)

let mem_vis ps visk tup =
  match visk with
  | Cur -> mem_cur ps tup
  | Old ->
    let d = ps.ps_delta in
    (mem_cur ps tup && not (Tup_tbl.mem d.d_ins tup)) || Tup_tbl.mem d.d_del tup

let iter_vis ps visk f =
  match visk with
  | Cur -> iter_vis_cur ps f
  | Old ->
    let d = ps.ps_delta in
    iter_vis_cur ps (fun tup -> if not (Tup_tbl.mem d.d_ins tup) then f tup);
    Tup_tbl.iter (fun tup () -> f tup) d.d_del

let visible_count_ps ps =
  match ps.ps_body with
  | Pplain counts -> Tup_tbl.length counts
  | Pagg a -> Tup_tbl.length a.a_best

(* --- indexes and delta recording --- *)

let bucket_add buckets key tup =
  let b =
    match Tup_tbl.find_opt buckets key with
    | Some b -> b
    | None ->
      let b = Tup_tbl.create 4 in
      Tup_tbl.add buckets key b;
      b
  in
  Tup_tbl.replace b tup ()

let ensure_index ps cols =
  match List.find_opt (fun ix -> cols_equal ix.ix_cols cols) ps.ps_indexes with
  | Some ix -> ix
  | None ->
    let ix = { ix_cols = Array.copy cols; ix_buckets = Tup_tbl.create 64 } in
    iter_vis_cur ps (fun tup -> bucket_add ix.ix_buckets (Tuple.project tup ix.ix_cols) tup);
    ps.ps_indexes <- ix :: ps.ps_indexes;
    ix

let overlay ps cols =
  let d = ps.ps_delta in
  match List.find_opt (fun (c, _) -> cols_equal c cols) d.d_overlays with
  | Some (_, tbl) -> tbl
  | None ->
    let tbl = Tup_tbl.create 16 in
    Tup_tbl.iter (fun tup () -> bucket_add tbl (Tuple.project tup cols) tup) d.d_del;
    d.d_overlays <- (Array.copy cols, tbl) :: d.d_overlays;
    tbl

let record_ins ps tup =
  let d = ps.ps_delta in
  if Tup_tbl.mem d.d_del tup then begin
    Tup_tbl.remove d.d_del tup;
    d.d_overlays <- []
  end
  else if not (Tup_tbl.mem d.d_ins tup) then Tup_tbl.add d.d_ins tup ()

let record_del ps tup =
  let d = ps.ps_delta in
  if Tup_tbl.mem d.d_ins tup then Tup_tbl.remove d.d_ins tup
  else if not (Tup_tbl.mem d.d_del tup) then begin
    Tup_tbl.add d.d_del tup ();
    d.d_overlays <- []
  end

(* The single entry points for a visibility flip: maintain every built
   index and (once serving) the per-batch delta recorder.  Callers own
   the support tables. *)
let visible_insert mt ps tup =
  List.iter (fun ix -> bucket_add ix.ix_buckets (Tuple.project tup ix.ix_cols) tup) ps.ps_indexes;
  if mt.recording then record_ins ps tup

let visible_remove mt ps tup =
  List.iter
    (fun ix ->
      match Tup_tbl.find_opt ix.ix_buckets (Tuple.project tup ix.ix_cols) with
      | Some b -> Tup_tbl.remove b tup
      | None -> ())
    ps.ps_indexes;
  if mt.recording then record_del ps tup

(* --- support updates --- *)

let plain_add mt ps counts tup sign =
  let cur = Option.value ~default:0 (Tup_tbl.find_opt counts tup) in
  let nv = cur + sign in
  if nv < 0 then
    invalid_arg (Printf.sprintf "Maintain: negative support for %s %s" ps.ps_name (Tuple.to_string tup));
  if nv = 0 then Tup_tbl.remove counts tup else Tup_tbl.replace counts tup nv;
  if cur = 0 && nv > 0 then visible_insert mt ps tup
  else if cur > 0 && nv = 0 then visible_remove mt ps tup

let bump_int tbl k sign =
  let cur = Option.value ~default:0 (Hashtbl.find_opt tbl k) in
  let nv = cur + sign in
  if nv < 0 then invalid_arg "Maintain: negative aggregate support";
  if nv = 0 then Hashtbl.remove tbl k else Hashtbl.replace tbl k nv

let bump_tup tbl k sign =
  let cur = Option.value ~default:0 (Tup_tbl.find_opt tbl k) in
  let nv = cur + sign in
  if nv < 0 then invalid_arg "Maintain: negative aggregate support";
  if nv = 0 then Tup_tbl.remove tbl k else Tup_tbl.replace tbl k nv

(* Recomputes a group's visible value from its support after an update,
   flipping the assembled tuple's visibility when it changed.  Sum
   groups fold each contributor's largest pending value — a contributor
   carrying several distinct values at once has no engine-defined order,
   and the initial-build verification rejects programs where this
   matters. *)
let refresh_group mt ps a support_tbl group =
  let newbest =
    match Tup_tbl.find_opt support_tbl group with
    | None -> None
    | Some (Sminmax vt) ->
      if Hashtbl.length vt = 0 then None
      else
        Hashtbl.fold
          (fun v _ acc ->
            match acc with
            | None -> Some v
            | Some b -> Some (if a.a_kind = Ast.Min then min b v else max b v))
          vt None
    | Some (Scount ct) ->
      let n = Tup_tbl.length ct in
      if n = 0 then None else Some n
    | Some (Ssum st) ->
      if Tup_tbl.length st = 0 then None
      else
        Some
          (Tup_tbl.fold
             (fun _ vt acc -> acc + Hashtbl.fold (fun v _ m -> max v m) vt min_int)
             st 0)
  in
  if newbest = None then Tup_tbl.remove support_tbl group;
  let oldbest = Tup_tbl.find_opt a.a_best group in
  if oldbest <> newbest then begin
    (match oldbest with
    | Some v ->
      Tup_tbl.remove a.a_best group;
      visible_remove mt ps (assemble a group v)
    | None -> ());
    match newbest with
    | Some v ->
      Tup_tbl.replace a.a_best group v;
      visible_insert mt ps (assemble a group v)
    | None -> ()
  end

let agg_support_add mt ps a tuple contrib sign =
  let group = group_of a tuple in
  let support_tbl =
    match a.a_support with
    | Some s -> s
    | None -> invalid_arg "Maintain: aggregate support missing"
  in
  let sup =
    match Tup_tbl.find_opt support_tbl group with
    | Some s -> s
    | None ->
      let s =
        match a.a_kind with
        | Ast.Min | Ast.Max -> Sminmax (Hashtbl.create 8)
        | Ast.Count -> Scount (Tup_tbl.create 8)
        | Ast.Sum -> Ssum (Tup_tbl.create 8)
      in
      Tup_tbl.add support_tbl group s;
      s
  in
  (match sup with
  | Sminmax vt -> bump_int vt tuple.(a.a_pos) sign
  | Scount ct -> bump_tup ct contrib sign
  | Ssum st ->
    let vt =
      match Tup_tbl.find_opt st contrib with
      | Some vt -> vt
      | None ->
        let vt = Hashtbl.create 4 in
        Tup_tbl.add st contrib vt;
        vt
    in
    bump_int vt tuple.(a.a_pos) sign;
    if Hashtbl.length vt = 0 then Tup_tbl.remove st contrib);
  refresh_group mt ps a support_tbl group

(* --- head emission --- *)

let head_tuple mt cr env =
  Array.of_list
    (List.map
       (fun (arg : Ast.head_arg) ->
         match arg with
         | Ast.Plain t -> term_value mt env t
         | Ast.Agg (Ast.Count, _) -> 0
         | Ast.Agg ((Ast.Min | Ast.Max), [ t ]) -> term_value mt env t
         | Ast.Agg (Ast.Sum, ts) -> term_value mt env (List.nth ts (List.length ts - 1))
         | Ast.Agg _ -> invalid_arg "Maintain: malformed aggregate")
       cr.cr_rule.Ast.head_args)

(* Reconstructs the tuple a fully-matched body atom is bound to. *)
let atom_tuple mt env ca = Array.map (term_value mt env) ca.ca_args

let head_contrib mt cr env =
  Array.of_list
    (List.concat_map
       (fun (arg : Ast.head_arg) ->
         match arg with
         | Ast.Agg (Ast.Count, ts) -> List.map (term_value mt env) ts
         | Ast.Agg (Ast.Sum, ts) ->
           List.map (term_value mt env) (List.filteri (fun i _ -> i < List.length ts - 1) ts)
         | Ast.Agg ((Ast.Min | Ast.Max), _) | Ast.Plain _ -> [])
       cr.cr_rule.Ast.head_args)

let emit_counting mt cr env sign =
  let ps = get_pred mt cr.cr_head in
  let tuple = head_tuple mt cr env in
  match (ps.ps_body, cr.cr_agg) with
  | Pplain counts, None -> plain_add mt ps counts tuple sign
  | Pagg a, Some _ -> agg_support_add mt ps a tuple (head_contrib mt cr env) sign
  | _ -> invalid_arg "Maintain: aggregate/plain mismatch"

(* --- rule compilation and greedy ordering --- *)

let compile_rule (r : Ast.rule) =
  let atoms =
    Array.of_list
      (List.filter_map
         (function
           | Ast.Pos a -> Some { ca_pred = a.Ast.pred; ca_args = Array.of_list a.Ast.args }
           | Ast.Neg_lit _ | Ast.Cmp _ -> None)
         r.Ast.body)
  in
  let others =
    List.filter
      (function
        | Ast.Pos _ -> false
        | Ast.Neg_lit _ | Ast.Cmp _ -> true)
      r.Ast.body
  in
  {
    cr_rule = r;
    cr_head = r.Ast.head_pred;
    cr_agg = Ast.agg_of_rule r;
    cr_atoms = atoms;
    cr_others = others;
    cr_orders = [];
  }

(* Orders the remaining body for a given scan key: drain every
   placeable comparison (filter once bound, Eq-with-unbound-var as an
   assignment) and negation, then the atom with the most bound argument
   positions — ties broken toward the smaller visible relation, which
   keeps head-bound probes scanning a narrow EDB bucket instead of a
   wide recursive one — and repeat. *)
let compute_order mt cr key =
  let bound : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let bind_vars vars = List.iter (fun v -> Hashtbl.replace bound v ()) vars in
  (match key with
  | -2 ->
    List.iter
      (function
        | Ast.Plain t -> bind_vars (Ast.vars_of_term t)
        | Ast.Agg _ -> ())
      cr.cr_rule.Ast.head_args
  | i when i >= 0 -> Array.iter (fun t -> bind_vars (Ast.vars_of_term t)) cr.cr_atoms.(i).ca_args
  | _ -> ());
  let all_bound vars = List.for_all (Hashtbl.mem bound) vars in
  let remaining_atoms =
    ref
      (List.filter
         (fun i -> i <> key)
         (List.init (Array.length cr.cr_atoms) (fun i -> i)))
  in
  let remaining_others = ref cr.cr_others in
  let out = ref [] in
  let rec drain_others () =
    let placed = ref false in
    remaining_others :=
      List.filter
        (fun lit ->
          match lit with
          | Ast.Cmp (op, lhs, rhs) -> (
            if all_bound (Ast.vars_of_expr lhs) && all_bound (Ast.vars_of_expr rhs) then begin
              out := O_filter (op, lhs, rhs) :: !out;
              placed := true;
              false
            end
            else if op <> Ast.Eq then true
            else
              match (lhs, rhs) with
              | Ast.Term (Ast.Var x), e
                when (not (Hashtbl.mem bound x)) && all_bound (Ast.vars_of_expr e) ->
                out := O_assign (x, e) :: !out;
                bind_vars [ x ];
                placed := true;
                false
              | e, Ast.Term (Ast.Var x)
                when (not (Hashtbl.mem bound x)) && all_bound (Ast.vars_of_expr e) ->
                out := O_assign (x, e) :: !out;
                bind_vars [ x ];
                placed := true;
                false
              | _ -> true)
          | Ast.Neg_lit a ->
            if all_bound (List.concat_map Ast.vars_of_term a.Ast.args) then begin
              out := O_neg a :: !out;
              placed := true;
              false
            end
            else true
          | Ast.Pos _ -> assert false)
        !remaining_others;
    if !placed then drain_others ()
  in
  drain_others ();
  while !remaining_atoms <> [] do
    let score i =
      Array.fold_left
        (fun acc t ->
          match t with
          | Ast.Int _ | Ast.Sym _ -> acc + 1
          | Ast.Var v -> if Hashtbl.mem bound v then acc + 1 else acc)
        0
        cr.cr_atoms.(i).ca_args
    in
    let size i = visible_count_ps (get_pred mt cr.cr_atoms.(i).ca_pred) in
    let best =
      List.fold_left
        (fun acc i ->
          match acc with
          | None -> Some (i, score i)
          | Some (j, s) ->
            let si = score i in
            if si > s || (si = s && size i < size j) then Some (i, si) else acc)
        None !remaining_atoms
    in
    let i, _ = Option.get best in
    out := O_atom i :: !out;
    Array.iter (fun t -> bind_vars (Ast.vars_of_term t)) cr.cr_atoms.(i).ca_args;
    remaining_atoms := List.filter (fun j -> j <> i) !remaining_atoms;
    drain_others ()
  done;
  if !remaining_others <> [] then
    invalid_arg ("Maintain: cannot order body of " ^ Ast.rule_to_string cr.cr_rule);
  List.rev !out

let get_order mt cr key =
  match List.assoc_opt key cr.cr_orders with
  | Some o -> o
  | None ->
    let o = compute_order mt cr key in
    cr.cr_orders <- (key, o) :: cr.cr_orders;
    o

(* --- evaluation --- *)

let match_atom mt env (args : Ast.term array) (tup : Tuple.t) =
  let n = Array.length args in
  if Array.length tup <> n then None
  else begin
    let added = ref [] in
    let rec go i =
      if i = n then true
      else
        match args.(i) with
        | Ast.Var v -> (
          match Hashtbl.find_opt env v with
          | Some b -> b = tup.(i) && go (i + 1)
          | None ->
            Hashtbl.add env v tup.(i);
            added := v :: !added;
            go (i + 1))
        | t -> term_value mt env t = tup.(i) && go (i + 1)
    in
    if go 0 then Some !added
    else begin
      List.iter (Hashtbl.remove env) !added;
      None
    end
  end

let with_match mt env args tup k =
  match match_atom mt env args tup with
  | Some added ->
    k ();
    List.iter (Hashtbl.remove env) added
  | None -> ()

(* Iterates the tuples of [ps] under [visk] matching the atom's
   argument list against the environment: membership probe when fully
   bound, keyed bucket scan (with the delete-overlay for Old) when
   partially bound, full visible scan otherwise. *)
let iter_match mt ps visk env (args : Ast.term array) k =
  let arity = Array.length args in
  if arity <> ps.ps_arity then
    invalid_arg (Printf.sprintf "Maintain: arity mismatch for %s" ps.ps_name);
  let vals = Array.make (max arity 1) 0 in
  let bnd = Array.make (max arity 1) false in
  let nbound = ref 0 in
  Array.iteri
    (fun i t ->
      match t with
      | Ast.Int v ->
        vals.(i) <- v;
        bnd.(i) <- true;
        incr nbound
      | Ast.Sym s ->
        vals.(i) <- sym_value mt s;
        bnd.(i) <- true;
        incr nbound
      | Ast.Var v -> (
        match Hashtbl.find_opt env v with
        | Some x ->
          vals.(i) <- x;
          bnd.(i) <- true;
          incr nbound
        | None -> ()))
    args;
  if !nbound = arity then begin
    (* [vals] already has length [arity] unless the atom is nullary;
       the membership probe only hashes and compares, never retains *)
    let tup = if arity = Array.length vals then vals else Array.sub vals 0 arity in
    if mem_vis ps visk tup then k ()
  end
  else if !nbound = 0 then iter_vis ps visk (fun tup -> with_match mt env args tup k)
  else begin
    let cols = Array.make !nbound 0 in
    let key = Array.make !nbound 0 in
    let j = ref 0 in
    for i = 0 to arity - 1 do
      if bnd.(i) then begin
        cols.(!j) <- i;
        key.(!j) <- vals.(i);
        incr j
      end
    done;
    let ix = ensure_index ps cols in
    match visk with
    | Cur -> (
      match Tup_tbl.find_opt ix.ix_buckets key with
      | Some b -> Tup_tbl.iter (fun tup () -> with_match mt env args tup k) b
      | None -> ())
    | Old ->
      let d = ps.ps_delta in
      (match Tup_tbl.find_opt ix.ix_buckets key with
      | Some b ->
        Tup_tbl.iter
          (fun tup () -> if not (Tup_tbl.mem d.d_ins tup) then with_match mt env args tup k)
          b
      | None -> ());
      let ov = overlay ps cols in
      (match Tup_tbl.find_opt ov key with
      | Some b -> Tup_tbl.iter (fun tup () -> with_match mt env args tup k) b
      | None -> ())
  end

let rec eval_elems mt cr env elems ~vis_of ~emit =
  match elems with
  | [] -> emit ()
  | O_atom i :: rest ->
    let ca = cr.cr_atoms.(i) in
    let ps = get_pred mt ca.ca_pred in
    iter_match mt ps (vis_of i) env ca.ca_args (fun () ->
        eval_elems mt cr env rest ~vis_of ~emit)
  | O_neg a :: rest ->
    let tup = Array.of_list (List.map (term_value mt env) a.Ast.args) in
    let ps = get_pred mt a.Ast.pred in
    if not (mem_vis ps Cur tup) then eval_elems mt cr env rest ~vis_of ~emit
  | O_filter (op, lhs, rhs) :: rest -> (
    match (expr_value mt env lhs, expr_value mt env rhs) with
    | x, y -> if Physical.eval_cmp op x y then eval_elems mt cr env rest ~vis_of ~emit
    | exception Division_by_zero -> ())
  | O_assign (x, e) :: rest -> (
    match expr_value mt env e with
    | v ->
      Hashtbl.add env x v;
      eval_elems mt cr env rest ~vis_of ~emit;
      Hashtbl.remove env x
    | exception Division_by_zero -> ())

(* --- counting strata --- *)

let counting_pass mt cs =
  let env : (string, int) Hashtbl.t = Hashtbl.create 32 in
  Array.iter
    (fun cr ->
      Array.iteri
        (fun i ca ->
          let d = (get_pred mt ca.ca_pred).ps_delta in
          if Tup_tbl.length d.d_ins > 0 || Tup_tbl.length d.d_del > 0 then begin
            let order = get_order mt cr i in
            let vis_of j = if j < i then Cur else Old in
            let run_delta tbl sign =
              Tup_tbl.iter
                (fun tup () ->
                  with_match mt env ca.ca_args tup (fun () ->
                      eval_elems mt cr env order ~vis_of ~emit:(fun () ->
                          emit_counting mt cr env sign)))
                tbl
            in
            run_delta d.d_del (-1);
            run_delta d.d_ins 1
          end)
        cr.cr_atoms)
    cs.cs_rules

(* --- recursive plain strata (DRed) --- *)

(* Binds [tup] against the rule head, extending [env]; false when the
   head cannot produce this tuple (constant clash or aggregate). *)
let bind_head mt cr env tup =
  try
    List.iteri
      (fun i (arg : Ast.head_arg) ->
        match arg with
        | Ast.Plain (Ast.Var v) -> (
          match Hashtbl.find_opt env v with
          | Some b -> if b <> tup.(i) then raise Exit
          | None -> Hashtbl.add env v tup.(i))
        | Ast.Plain t -> if term_value mt env t <> tup.(i) then raise Exit
        | Ast.Agg _ -> raise Exit)
      cr.cr_rule.Ast.head_args;
    true
  with Exit -> false

(* Head-bound goal check: does any rule for [tup]'s predicate still
   derive it from the current (post-delete) state? *)
let rederive_check mt cr tup =
  let env : (string, int) Hashtbl.t = Hashtbl.create 16 in
  bind_head mt cr env tup
  &&
  let order = get_order mt cr (-2) in
  match eval_elems mt cr env order ~vis_of:(fun _ -> Cur) ~emit:(fun () -> raise Found) with
  | () -> false
  | exception Found -> true

(* Derivation ranks for a DRed stratum: rank(t) = 1 + max rank over the
   same-stratum atoms of some derivation (0 when a rule without
   same-stratum atoms derives it) — a layered, well-founded labelling
   of the adopted fixpoint.  The overdelete phase counts surviving
   rank-decreasing derivations; soundness needs only well-foundedness,
   so approximate or drifting ranks merely make the counts more
   conservative, never wrong. *)
let build_ranks mt cs =
  let stratum = cs.cs_stratum in
  let in_stratum p = List.mem p stratum.Analysis.preds in
  let env : (string, int) Hashtbl.t = Hashtbl.create 32 in
  let frontier = Vec.create () in
  let try_rank p tup r =
    let ps = get_pred mt p in
    if mem_cur ps tup && not (Tup_tbl.mem ps.ps_ranks tup) then begin
      Tup_tbl.replace ps.ps_ranks tup r;
      Vec.push frontier (p, tup)
    end
  in
  (* A derivation is usable once every same-stratum atom is ranked; an
     instantiation blocked on an unranked atom re-emerges when that
     atom's own frontier entry is processed.  The same enumeration
     seeds the support counts: a rank-decreasing instantiation is
     counted when found from its lexicographically greatest
     (rank, position) same-stratum atom — by then the others are
     already ranked, and no other frontier entry claims the same
     instantiation as its own maximum, so nothing is counted twice
     (an instantiation missed because an atom ranked late merely
     leaves the lower bound tighter).  Instantiations binding the same
     tuple to several same-stratum atoms are never counted: once that
     tuple dies the survivors cannot re-enumerate them to decrement.
     [i] is the frontier atom position, [-1] in the base pass. *)
  let emit cr i () =
    let n = Array.length cr.cr_atoms in
    let tups = Array.make n [||] in
    let ok = ref true and r = ref 0 and best = ref (-1) and best_r = ref (-1) in
    Array.iteri
      (fun j ca ->
        if !ok && in_stratum ca.ca_pred then begin
          let t = atom_tuple mt env ca in
          tups.(j) <- t;
          match Tup_tbl.find_opt (get_pred mt ca.ca_pred).ps_ranks t with
          | Some x ->
            if x >= !r then r := x + 1;
            if x > !best_r || (x = !best_r && j > !best) then begin
              best_r := x;
              best := j
            end
          | None -> ok := false
        end)
      cr.cr_atoms;
    if !ok then begin
      let h = head_tuple mt cr env in
      try_rank cr.cr_head h !r;
      if !best = i then begin
        let dup = ref false in
        Array.iteri
          (fun j ca ->
            if in_stratum ca.ca_pred then
              for k = j + 1 to n - 1 do
                if cr.cr_atoms.(k).ca_pred = ca.ca_pred && tups.(j) = tups.(k) then dup := true
              done)
          cr.cr_atoms;
        if not !dup then
          let ps = get_pred mt cr.cr_head in
          match Tup_tbl.find_opt ps.ps_ranks h with
          | Some hr when hr = !r ->
            Tup_tbl.replace ps.ps_supports h
              (1 + Option.value ~default:0 (Tup_tbl.find_opt ps.ps_supports h))
          | _ -> ()
      end
    end
  in
  Array.iter
    (fun cr ->
      if Array.for_all (fun ca -> not (in_stratum ca.ca_pred)) cr.cr_atoms then
        eval_elems mt cr env (get_order mt cr (-1)) ~vis_of:(fun _ -> Cur) ~emit:(emit cr (-1)))
    cs.cs_rules;
  let cursor = ref 0 in
  while !cursor < Vec.length frontier do
    let p, tup = Vec.get frontier !cursor in
    incr cursor;
    Array.iter
      (fun cr ->
        Array.iteri
          (fun i ca ->
            if ca.ca_pred = p then
              with_match mt env ca.ca_args tup (fun () ->
                  eval_elems mt cr env (get_order mt cr i) ~vis_of:(fun _ -> Cur)
                    ~emit:(emit cr i)))
          cr.cr_atoms)
      cs.cs_rules
  done;
  List.iter
    (fun p ->
      let ps = get_pred mt p in
      let m = Tup_tbl.fold (fun _ r acc -> max acc r) ps.ps_ranks mt.rank_counter in
      mt.rank_counter <- m + 1)
    stratum.Analysis.preds

let dred_pass mt cs =
  let stratum = cs.cs_stratum in
  let in_stratum p = List.mem p stratum.Analysis.preds in
  let env : (string, int) Hashtbl.t = Hashtbl.create 32 in
  let dsets = List.map (fun p -> (p, Tup_tbl.create 64)) stratum.Analysis.preds in
  let dset p = List.assoc p dsets in
  (* phases 1 and 2: support-counted overdeletion.  Instead of the
     classic DRed closure — overdelete everything the dead tuples ever
     helped derive, then rederive most of it back — each death
     decrements the rank-decreasing support counts of the derivations
     it kills, and a tuple dies only when its count reaches zero, i.e.
     when no surviving well-founded derivation is left.  On densely
     supported fixpoints (transitive closure over one big SCC is the
     canonical case) the cascade stops at roughly the true deleted
     delta instead of unravelling the whole stratum.  A zero count is
     still only a *candidate* death: phase 3 rederives any tuple that
     survives via a rank-increasing derivation, so conservative counts
     cost time, never correctness. *)
  let dead = Vec.create () in
  let kill p tup =
    let ds = dset p in
    if not (Tup_tbl.mem ds tup) then begin
      let r =
        match Tup_tbl.find_opt (get_pred mt p).ps_ranks tup with
        | Some r -> r
        | None -> 0
      in
      Tup_tbl.add ds tup ();
      Vec.push dead (p, tup, r)
    end
  in
  let rank_of p tup = Tup_tbl.find_opt (get_pred mt p).ps_ranks tup in
  (* Decrement the head's support for the instantiation bound in [env],
     provided the count could have included it: a rank-decreasing
     derivation of a still-live head.  [delta_rank] carries the dying
     delta atom's rank (None for a lower-stratum delta, which the rank
     condition ignores).  The stratum stays physically untouched for
     the whole cascade, so a derivation with several dying atoms is
     re-enumerated — and decremented — once per death; counted once,
     decremented possibly more, the bound only drops, which stays
     sound. *)
  let decrement cr i delta_rank =
    let head_ps = get_pred mt cr.cr_head in
    let h = head_tuple mt cr env in
    if mem_cur head_ps h && not (Tup_tbl.mem (dset cr.cr_head) h) then
      match Tup_tbl.find_opt head_ps.ps_ranks h with
      | None -> ()
      | Some hr ->
        let ok = ref (match delta_rank with Some r -> r < hr | None -> true) in
        Array.iteri
          (fun j ca ->
            if !ok && j <> i && in_stratum ca.ca_pred then
              match rank_of ca.ca_pred (atom_tuple mt env ca) with
              | Some r -> if r >= hr then ok := false
              | None -> ok := false)
          cr.cr_atoms;
        if !ok then begin
          let s =
            match Tup_tbl.find_opt head_ps.ps_supports h with
            | Some s -> s
            | None -> 0
          in
          if s <= 1 then kill cr.cr_head h
          else Tup_tbl.replace head_ps.ps_supports h (s - 1)
        end
  in
  (* seed: derivations lost to lower-stratum deletions — lower atoms
     read Old, same-stratum atoms the physically untouched pre-batch
     fixpoint *)
  Array.iter
    (fun cr ->
      Array.iteri
        (fun i ca ->
          if not (in_stratum ca.ca_pred) then begin
            let d = (get_pred mt ca.ca_pred).ps_delta in
            if Tup_tbl.length d.d_del > 0 then begin
              let order = get_order mt cr i in
              let vis_of j = if in_stratum cr.cr_atoms.(j).ca_pred then Cur else Old in
              Tup_tbl.iter
                (fun tup () ->
                  with_match mt env ca.ca_args tup (fun () ->
                      eval_elems mt cr env order ~vis_of ~emit:(fun () -> decrement cr i None)))
                d.d_del
            end
          end)
        cr.cr_atoms)
    cs.cs_rules;
  (* cascade: deaths propagate by decrement; lower relations read their
     new fixpoint (derivations through same-batch lower insertions were
     never counted, so decrementing or skipping them is equally sound) *)
  let cursor = ref 0 in
  while !cursor < Vec.length dead do
    let p, tup, r = Vec.get dead !cursor in
    incr cursor;
    Array.iter
      (fun cr ->
        Array.iteri
          (fun i ca ->
            if ca.ca_pred = p then
              with_match mt env ca.ca_args tup (fun () ->
                  eval_elems mt cr env (get_order mt cr i) ~vis_of:(fun _ -> Cur)
                    ~emit:(fun () -> decrement cr i (Some r))))
          cr.cr_atoms)
      cs.cs_rules
  done;
  (* phase 2: physically remove the dead set *)
  List.iter
    (fun (p, ds) ->
      let ps = get_pred mt p in
      let counts =
        match ps.ps_body with
        | Pplain c -> c
        | Pagg _ -> invalid_arg "Maintain: aggregate in DRed stratum"
      in
      Tup_tbl.iter
        (fun tup () ->
          if Tup_tbl.mem counts tup then begin
            Tup_tbl.remove counts tup;
            Tup_tbl.remove ps.ps_ranks tup;
            Tup_tbl.remove ps.ps_supports tup;
            visible_remove mt ps tup
          end)
        ds;
      mt.cur_overdeleted <- mt.cur_overdeleted + Tup_tbl.length ds)
    dsets;
  (* phases 3 and 4: goal-directed rederivation of the overdeleted
     tuples, then worklist insert propagation — rederived tuples and
     lower-stratum insertions enter the same semi-naive frontier.
     Emissions are buffered per evaluation so no table is mutated while
     one of its buckets is being iterated. *)
  let prop = Vec.create () in
  let buffer = Vec.create () in
  let try_insert p tup =
    let ps = get_pred mt p in
    let counts =
      match ps.ps_body with
      | Pplain c -> c
      | Pagg _ -> assert false
    in
    if not (Tup_tbl.mem counts tup) then begin
      Tup_tbl.replace counts tup 1;
      (* any fresh well-founded rank keeps future counts sound; the
         monotone counter also orders same-batch inserts by derivation.
         One support is a lower bound — further derivations discovered
         later go uncounted, which only risks a premature candidate. *)
      Tup_tbl.replace ps.ps_ranks tup mt.rank_counter;
      Tup_tbl.replace ps.ps_supports tup 1;
      mt.rank_counter <- mt.rank_counter + 1;
      visible_insert mt ps tup;
      if Tup_tbl.mem (dset p) tup then mt.cur_rederived <- mt.cur_rederived + 1;
      Vec.push prop (p, tup)
    end
  in
  let flush_buffer () =
    Vec.iter (fun (p, h) -> try_insert p h) buffer;
    Vec.clear buffer
  in
  List.iter
    (fun (p, ds) ->
      let rules_for =
        List.filter (fun cr -> cr.cr_head = p) (Array.to_list cs.cs_rules)
      in
      Tup_tbl.iter
        (fun tup () ->
          if List.exists (fun cr -> rederive_check mt cr tup) rules_for then
            Vec.push buffer (p, tup))
        ds;
      flush_buffer ())
    dsets;
  Array.iter
    (fun cr ->
      Array.iteri
        (fun i ca ->
          if not (in_stratum ca.ca_pred) then begin
            let d = (get_pred mt ca.ca_pred).ps_delta in
            if Tup_tbl.length d.d_ins > 0 then begin
              let order = get_order mt cr i in
              Tup_tbl.iter
                (fun tup () ->
                  with_match mt env ca.ca_args tup (fun () ->
                      eval_elems mt cr env order ~vis_of:(fun _ -> Cur) ~emit:(fun () ->
                          Vec.push buffer (cr.cr_head, head_tuple mt cr env))))
                d.d_ins;
              flush_buffer ()
            end
          end)
        cr.cr_atoms)
    cs.cs_rules;
  let cursor = ref 0 in
  while !cursor < Vec.length prop do
    let p, tup = Vec.get prop !cursor in
    incr cursor;
    Array.iter
      (fun cr ->
        Array.iteri
          (fun i ca ->
            if ca.ca_pred = p then begin
              let order = get_order mt cr i in
              with_match mt env ca.ca_args tup (fun () ->
                  eval_elems mt cr env order ~vis_of:(fun _ -> Cur) ~emit:(fun () ->
                      Vec.push buffer (cr.cr_head, head_tuple mt cr env)));
              flush_buffer ()
            end)
          cr.cr_atoms)
      cs.cs_rules
  done

(* --- recursive min/max aggregate strata: monotone insert propagation --- *)

let aggrec_insert_pass mt cs =
  let stratum = cs.cs_stratum in
  let in_stratum p = List.mem p stratum.Analysis.preds in
  let env : (string, int) Hashtbl.t = Hashtbl.create 32 in
  let prop = Vec.create () in
  let buffer = Vec.create () in
  let merge p tup =
    let ps = get_pred mt p in
    match ps.ps_body with
    | Pplain counts ->
      if not (Tup_tbl.mem counts tup) then begin
        Tup_tbl.replace counts tup 1;
        visible_insert mt ps tup;
        Vec.push prop (p, tup)
      end
    | Pagg a -> (
      let g = group_of a tup in
      let v = tup.(a.a_pos) in
      let improves =
        match Tup_tbl.find_opt a.a_best g with
        | None -> true
        | Some cur -> (
          match a.a_kind with
          | Ast.Min -> v < cur
          | Ast.Max -> v > cur
          | Ast.Count | Ast.Sum -> invalid_arg "Maintain: non-monotone aggregate insert")
      in
      if improves then begin
        (match Tup_tbl.find_opt a.a_best g with
        | Some cur ->
          Tup_tbl.remove a.a_best g;
          visible_remove mt ps (assemble a g cur)
        | None -> ());
        Tup_tbl.replace a.a_best g v;
        visible_insert mt ps tup;
        Vec.push prop (p, tup)
      end)
  in
  let flush_buffer () =
    Vec.iter (fun (p, h) -> merge p h) buffer;
    Vec.clear buffer
  in
  Array.iter
    (fun cr ->
      Array.iteri
        (fun i ca ->
          if not (in_stratum ca.ca_pred) then begin
            let d = (get_pred mt ca.ca_pred).ps_delta in
            if Tup_tbl.length d.d_ins > 0 then begin
              let order = get_order mt cr i in
              Tup_tbl.iter
                (fun tup () ->
                  with_match mt env ca.ca_args tup (fun () ->
                      eval_elems mt cr env order ~vis_of:(fun _ -> Cur) ~emit:(fun () ->
                          Vec.push buffer (cr.cr_head, head_tuple mt cr env))))
                d.d_ins;
              flush_buffer ()
            end
          end)
        cr.cr_atoms)
    cs.cs_rules;
  let cursor = ref 0 in
  while !cursor < Vec.length prop do
    let p, tup = Vec.get prop !cursor in
    incr cursor;
    Array.iter
      (fun cr ->
        Array.iteri
          (fun i ca ->
            if ca.ca_pred = p then begin
              let order = get_order mt cr i in
              with_match mt env ca.ca_args tup (fun () ->
                  eval_elems mt cr env order ~vis_of:(fun _ -> Cur) ~emit:(fun () ->
                      Vec.push buffer (cr.cr_head, head_tuple mt cr env)));
              flush_buffer ()
            end)
          cr.cr_atoms)
      cs.cs_rules
  done

(* --- stratum recompute through the parallel engine --- *)

let collect_syms rules =
  let acc = Hashtbl.create 16 in
  let term = function
    | Ast.Sym s -> Hashtbl.replace acc s ()
    | Ast.Int _ | Ast.Var _ -> ()
  in
  let rec expr = function
    | Ast.Term t -> term t
    | Ast.Binop (_, a, b) ->
      expr a;
      expr b
    | Ast.Neg e -> expr e
  in
  List.iter
    (fun (r : Ast.rule) ->
      List.iter
        (fun (ha : Ast.head_arg) ->
          match ha with
          | Ast.Plain t -> term t
          | Ast.Agg (_, ts) -> List.iter term ts)
        r.Ast.head_args;
      List.iter
        (fun lit ->
          match lit with
          | Ast.Pos a | Ast.Neg_lit a -> List.iter term a.Ast.args
          | Ast.Cmp (_, l, r') ->
            expr l;
            expr r')
        r.Ast.body)
    rules;
  Hashtbl.fold (fun s () l -> s :: l) acc []

let sub_plan mt cs =
  match cs.cs_sub with
  | Some p -> p
  | None ->
    let rules = cs.cs_stratum.Analysis.base_rules @ cs.cs_stratum.Analysis.recursive_rules in
    let program = { Ast.rules } in
    let info =
      match Analysis.analyze program with
      | Ok i -> i
      | Error e -> invalid_arg ("Maintain: sub-program analysis failed: " ^ e)
    in
    (* resolve every symbolic constant against the session plan's table
       so interned ids agree with the maintained tuples *)
    let params =
      List.fold_left
        (fun acc s ->
          if List.mem_assoc s acc then acc
          else (s, Dcd_util.Symbol.intern mt.plan.Physical.symbols s) :: acc)
        mt.plan.Physical.params (collect_syms rules)
    in
    let plan =
      match Physical.compile ~params info with
      | Ok p -> p
      | Error e -> invalid_arg ("Maintain: sub-program compile failed: " ^ e)
    in
    cs.cs_sub <- Some plan;
    plan

let visible_vec_of mt p =
  let v = Vec.create () in
  iter_vis_cur (get_pred mt p) (fun tup -> Vec.push v tup);
  v

let recompute mt cs =
  mt.cur_recomputed <- mt.cur_recomputed + 1;
  let sub = sub_plan mt cs in
  let edb = List.map (fun p -> (p, visible_vec_of mt p)) sub.Physical.info.Analysis.edb in
  let config =
    {
      mt.config with
      Parallel.fault = None;
      checkpoint_every = 0;
      max_recoveries = 0;
      coord = Coord.default_config;
    }
  in
  let result = Parallel.run ?runtime:mt.runtime sub ~edb ~config in
  List.iter
    (fun p ->
      let ps = get_pred mt p in
      let newvec = Parallel.relation_vec result p in
      match ps.ps_body with
      | Pplain counts ->
        let newset = Tup_tbl.create (max 16 (Vec.length newvec)) in
        Vec.iter (fun tup -> Tup_tbl.replace newset tup ()) newvec;
        let stale = ref [] in
        Tup_tbl.iter
          (fun tup _ -> if not (Tup_tbl.mem newset tup) then stale := tup :: !stale)
          counts;
        List.iter
          (fun tup ->
            Tup_tbl.remove counts tup;
            visible_remove mt ps tup)
          !stale;
        Tup_tbl.iter
          (fun tup () ->
            if not (Tup_tbl.mem counts tup) then begin
              Tup_tbl.replace counts tup 1;
              visible_insert mt ps tup
            end)
          newset
      | Pagg a ->
        let newbest = Tup_tbl.create 64 in
        Vec.iter (fun tup -> Tup_tbl.replace newbest (group_of a tup) tup.(a.a_pos)) newvec;
        let stale = ref [] in
        Tup_tbl.iter
          (fun g v ->
            match Tup_tbl.find_opt newbest g with
            | Some v' when v' = v -> ()
            | _ -> stale := (g, v) :: !stale)
          a.a_best;
        List.iter
          (fun (g, v) ->
            Tup_tbl.remove a.a_best g;
            visible_remove mt ps (assemble a g v))
          !stale;
        Tup_tbl.iter
          (fun g v ->
            if not (Tup_tbl.mem a.a_best g) then begin
              Tup_tbl.replace a.a_best g v;
              visible_insert mt ps (assemble a g v)
            end)
          newbest)
    cs.cs_stratum.Analysis.preds

(* --- construction --- *)

let new_ps name arity body =
  {
    ps_name = name;
    ps_arity = arity;
    ps_body = body;
    ps_indexes = [];
    ps_delta = { d_ins = Tup_tbl.create 16; d_del = Tup_tbl.create 16; d_overlays = [] };
    ps_ranks = Tup_tbl.create 16;
    ps_supports = Tup_tbl.create 16;
  }

let arity_of info p =
  match List.assoc_opt p info.Analysis.arities with
  | Some a -> a
  | None -> invalid_arg (Printf.sprintf "Maintain: unknown arity for %s" p)

let create ~plan ~config ?runtime ~catalog () =
  if config.Parallel.max_iterations > 0 then
    invalid_arg "Maintain: bounded-iteration programs cannot be incrementally maintained";
  (match runtime with
  | Some rt when rt.Parallel.rt_workers <> config.Parallel.workers ->
    invalid_arg "Maintain: runtime/config worker mismatch"
  | _ -> ());
  let mt =
    {
      plan;
      config;
      runtime;
      preds = Hashtbl.create 32;
      edb = Hashtbl.create 16;
      strata = [];
      recording = false;
      rank_counter = 1;
      cur_overdeleted = 0;
      cur_rederived = 0;
      cur_recomputed = 0;
    }
  in
  let info = plan.Physical.info in
  List.iter
    (fun pred ->
      let counts = Tup_tbl.create 64 in
      (match Catalog.find catalog pred with
      | Some rel -> Relation.iter (fun tup -> Tup_tbl.replace counts tup 1) rel
      | None -> ());
      Hashtbl.replace mt.preds pred (new_ps pred (arity_of info pred) (Pplain counts));
      Hashtbl.replace mt.edb pred ())
    info.Analysis.edb;
  mt.strata <-
    List.map
      (fun (st : Analysis.stratum) ->
        let rules = st.Analysis.base_rules @ st.Analysis.recursive_rules in
        let has_neg =
          List.exists
            (fun (r : Ast.rule) ->
              List.exists
                (function
                  | Ast.Neg_lit _ -> true
                  | Ast.Pos _ | Ast.Cmp _ -> false)
                r.Ast.body)
            rules
        in
        let agg_preds =
          List.filter (fun p -> List.mem_assoc p info.Analysis.aggregated) st.Analysis.preds
        in
        let mode =
          if has_neg then M_subrun
          else if st.Analysis.kind = Analysis.Nonrecursive then M_counting
          else if agg_preds <> [] then M_aggrec
          else M_dred
        in
        let insert_ok =
          List.for_all
            (fun p ->
              match List.assoc p info.Analysis.aggregated with
              | _, (Ast.Min | Ast.Max) -> true
              | _, (Ast.Count | Ast.Sum) -> false)
            agg_preds
        in
        let body_preds =
          List.sort_uniq compare
            (List.concat_map
               (fun (r : Ast.rule) ->
                 List.filter_map
                   (function
                     | Ast.Pos a | Ast.Neg_lit a ->
                       if List.mem a.Ast.pred st.Analysis.preds then None else Some a.Ast.pred
                     | Ast.Cmp _ -> None)
                   r.Ast.body)
               rules)
        in
        List.iter
          (fun p ->
            let body =
              match List.assoc_opt p info.Analysis.aggregated with
              | Some (pos, kind) ->
                Pagg
                  {
                    a_pos = pos;
                    a_kind = kind;
                    a_best = Tup_tbl.create 64;
                    a_support = (if mode = M_counting then Some (Tup_tbl.create 64) else None);
                  }
              | None -> Pplain (Tup_tbl.create 64)
            in
            Hashtbl.replace mt.preds p (new_ps p (arity_of info p) body))
          st.Analysis.preds;
        let cs =
          {
            cs_stratum = st;
            cs_mode = mode;
            cs_insert_ok = insert_ok;
            cs_body_preds = body_preds;
            cs_rules = Array.of_list (List.map compile_rule rules);
            cs_sub = None;
          }
        in
        (match mode with
        | M_counting ->
          (* rebuild the support from scratch (one pass: the bodies are
             all lower-stratum), then verify the visible set reproduces
             the engine's materialization exactly *)
          let env : (string, int) Hashtbl.t = Hashtbl.create 32 in
          Array.iter
            (fun cr ->
              let order = get_order mt cr (-1) in
              eval_elems mt cr env order ~vis_of:(fun _ -> Cur) ~emit:(fun () ->
                  emit_counting mt cr env 1))
            cs.cs_rules;
          List.iter
            (fun p ->
              let ps = get_pred mt p in
              let rel = Catalog.find catalog p in
              let rel_len = match rel with Some r -> Relation.length r | None -> 0 in
              let vis_len = visible_count_ps ps in
              let ok =
                rel_len = vis_len
                &&
                match rel with
                | None -> true
                | Some r ->
                  let good = ref true in
                  Relation.iter (fun tup -> if not (mem_cur ps tup) then good := false) r;
                  !good
              in
              if not ok then
                invalid_arg
                  (Printf.sprintf
                     "Maintain: support interpreter diverged from the engine on %s (engine %d \
                      tuples, interpreter %d)"
                     p rel_len vis_len))
            st.Analysis.preds
        | M_dred | M_aggrec | M_subrun ->
          (* adopt the engine's fixpoint as the maintained state *)
          List.iter
            (fun p ->
              let ps = get_pred mt p in
              match Catalog.find catalog p with
              | None -> ()
              | Some rel -> (
                match ps.ps_body with
                | Pplain counts -> Relation.iter (fun tup -> Tup_tbl.replace counts tup 1) rel
                | Pagg a ->
                  Relation.iter
                    (fun tup -> Tup_tbl.replace a.a_best (group_of a tup) tup.(a.a_pos))
                    rel))
            st.Analysis.preds;
          if mode = M_dred then build_ranks mt cs);
        cs)
      info.Analysis.strata;
  mt.recording <- true;
  mt

(* --- batch application --- *)

let apply mt updates =
  (* validate (and defensively copy) the whole batch before any
     mutation: user errors must not tear the resident state *)
  let norm =
    List.map
      (fun u ->
        let name, tup, ins =
          match u with
          | Insert (n, t) -> (n, t, true)
          | Delete (n, t) -> (n, t, false)
        in
        let ps =
          match Hashtbl.find_opt mt.preds name with
          | Some ps -> ps
          | None -> invalid_arg (Printf.sprintf "Maintain: unknown relation %s" name)
        in
        if not (Hashtbl.mem mt.edb name) then
          invalid_arg (Printf.sprintf "Maintain: %s is derived, not a base relation" name);
        if Array.length tup <> ps.ps_arity then
          invalid_arg
            (Printf.sprintf "Maintain: arity mismatch for %s (expected %d, got %d)" name
               ps.ps_arity (Array.length tup));
        (ps, Array.copy tup, ins))
      updates
  in
  mt.cur_overdeleted <- 0;
  mt.cur_rederived <- 0;
  mt.cur_recomputed <- 0;
  List.iter
    (fun (ps, tup, ins) ->
      let counts =
        match ps.ps_body with
        | Pplain c -> c
        | Pagg _ -> assert false
      in
      if ins then begin
        if not (Tup_tbl.mem counts tup) then begin
          Tup_tbl.replace counts tup 1;
          visible_insert mt ps tup
        end
      end
      else if Tup_tbl.mem counts tup then begin
        Tup_tbl.remove counts tup;
        visible_remove mt ps tup
      end)
    norm;
  List.iter
    (fun cs ->
      let changed =
        List.exists
          (fun p ->
            let d = (get_pred mt p).ps_delta in
            Tup_tbl.length d.d_ins > 0 || Tup_tbl.length d.d_del > 0)
          cs.cs_body_preds
      in
      if changed then
        match cs.cs_mode with
        | M_counting -> counting_pass mt cs
        | M_dred -> dred_pass mt cs
        | M_subrun -> recompute mt cs
        | M_aggrec ->
          let has_del =
            List.exists
              (fun p -> Tup_tbl.length (get_pred mt p).ps_delta.d_del > 0)
              cs.cs_body_preds
          in
          if cs.cs_insert_ok && not has_del then aggrec_insert_pass mt cs
          else recompute mt cs)
    mt.strata;
  let changed = ref [] in
  let deltas = ref [] in
  let base_i = ref 0
  and base_d = ref 0
  and der_i = ref 0
  and der_d = ref 0 in
  Hashtbl.iter
    (fun name ps ->
      let d = ps.ps_delta in
      let i = Tup_tbl.length d.d_ins and r = Tup_tbl.length d.d_del in
      if i > 0 || r > 0 then begin
        changed := (name, i, r) :: !changed;
        (* the tuple arrays outlive the delta reset below; nothing in
           this module mutates a tuple once stored *)
        deltas :=
          ( name,
            Tup_tbl.fold (fun t () acc -> t :: acc) d.d_ins [],
            Tup_tbl.fold (fun t () acc -> t :: acc) d.d_del [] )
          :: !deltas;
        if Hashtbl.mem mt.edb name then begin
          base_i := !base_i + i;
          base_d := !base_d + r
        end
        else begin
          der_i := !der_i + i;
          der_d := !der_d + r
        end
      end)
    mt.preds;
  let report =
    {
      br_base_inserted = !base_i;
      br_base_deleted = !base_d;
      br_derived_inserted = !der_i;
      br_derived_deleted = !der_d;
      br_overdeleted = mt.cur_overdeleted;
      br_rederived = mt.cur_rederived;
      br_recomputed_strata = mt.cur_recomputed;
      br_changed = List.sort compare !changed;
      br_deltas = List.sort (fun (a, _, _) (b, _, _) -> compare a b) !deltas;
    }
  in
  Hashtbl.iter
    (fun _ ps ->
      let d = ps.ps_delta in
      Tup_tbl.reset d.d_ins;
      Tup_tbl.reset d.d_del;
      d.d_overlays <- [])
    mt.preds;
  report

(* --- read access for the session layer --- *)

let visible mt name f = iter_vis_cur (get_pred mt name) f

let visible_count mt name = visible_count_ps (get_pred mt name)

let arity mt name = (get_pred mt name).ps_arity

let predicates mt = List.sort compare (Hashtbl.fold (fun name _ acc -> name :: acc) mt.preds [])

let is_base mt name = Hashtbl.mem mt.edb name
