(** Incremental maintenance of a materialized fixpoint under batched
    base-relation updates (ISSUE 9; Ajileye–Motik–Horrocks-style
    incremental materialisation).

    A {!t} mirrors the engine's catalog after an initial {!Parallel.run}
    and keeps it at the exact fixpoint across {!apply} batches without
    recomputing from scratch:

    - non-recursive strata maintain per-tuple derivation counts
      (counting / GMS) and per-group aggregate support, updated by
      signed delta rules with mixed old/new visibility;
    - recursive plain strata run DRed (overdelete w.r.t. the old
      database, goal-directed rederive, semi-naive insert propagation);
    - recursive min/max-aggregate strata propagate inserts monotonically
      and recompute on deletions;
    - strata with negation or recursive count/sum recompute through
      {!Parallel.run}, on the resident {!Parallel.runtime} if one is
      supplied.

    Every maintained state is verified against (or adopted from) the
    engine's own materialization at {!create} time, and the differential
    suite checks {!apply} against a cold naive-oracle recompute.

    With a resident {!Parallel.runtime} and
    [config.maintain_workers <> 1], the delta joins of every pass
    compile to monomorphic {!Maintain_kernel} pipelines (registers,
    {!Kernel} binder/checker/filler closures) and scans above a small
    threshold execute as steal-enabled morsel rounds on the resident
    pool: workers run the kernels read-only against the frozen state
    and buffer their emissions, which the coordinator applies
    sequentially after the round barrier — the fixpoints are identical
    to the interpreted path, which [maintain_workers = 1] preserves
    verbatim as the ablation baseline.

    Not thread-safe: callers serialize {!apply}, and must not read
    through {!visible} concurrently with it (the {!Dcdatalog.Session}
    layer publishes copy-on-write snapshots for that). *)

type t

type update =
  | Insert of string * Dcd_storage.Tuple.t
  | Delete of string * Dcd_storage.Tuple.t

(** What one {!apply} did, for stats and the serve front door.
    [br_changed] lists [(pred, inserted, deleted)] for every predicate
    whose visible set changed, sorted by name. *)
type batch_report = {
  br_base_inserted : int;
  br_base_deleted : int;
  br_derived_inserted : int;
  br_derived_deleted : int;
  br_overdeleted : int;  (** DRed overdeletion marks physically removed *)
  br_rederived : int;  (** overdeleted tuples that rederived *)
  br_recomputed_strata : int;  (** strata that fell back to a sub-run *)
  br_changed : (string * int * int) list;
  br_deltas : (string * Dcd_storage.Tuple.t list * Dcd_storage.Tuple.t list) list;
      (** [(pred, inserted, deleted)] with the actual net tuples, same
          predicates and order as [br_changed] — what the session layer
          folds into its published snapshot overlays.  The arrays are
          immutable and remain valid across later batches. *)
  br_workers : (float * int * int * int) list;
      (** per maintenance worker: (join seconds, morsels executed,
          steals, tuples stolen).  Empty on the sequential interpreted
          path ([maintain_workers = 1] or no runtime); when parallelism
          is armed it always has [maintain_workers] entries — all zero
          if every round stayed below the inline threshold. *)
}

val create :
  plan:Dcd_planner.Physical.t ->
  config:Parallel.config ->
  ?runtime:Parallel.runtime ->
  catalog:Catalog.t ->
  unit ->
  t
(** Builds the maintenance state from a finished run's catalog.  The
    counting strata rebuild their support from scratch and verify the
    result against the catalog tuple-for-tuple; the other strata adopt
    the engine fixpoint as-is.
    @raise Invalid_argument if [config.max_iterations > 0] (a bounded
    fixpoint is not a model and cannot be maintained), if the runtime's
    worker count disagrees with [config.workers], or if the counting
    interpreter diverges from the engine's materialization. *)

val validate : t -> update list -> unit
(** The validation prefix of {!apply} alone: raises [Invalid_argument]
    on an unknown predicate, a derived target or an arity mismatch, and
    is guaranteed to mutate nothing.  The session layer runs it before
    admitting a batch to the writer-coalescing queue, so a malformed
    batch fails fast on its own caller instead of poisoning a merged
    maintenance round. *)

val apply : t -> update list -> batch_report
(** Applies one batch of base-relation updates and restores the exact
    fixpoint.  Set semantics: inserting a present tuple or deleting an
    absent one is a no-op.  The whole batch is validated before any
    mutation, so a raised [Invalid_argument] (unknown predicate, derived
    target, arity mismatch) leaves the state untouched; any other escape
    (e.g. {!Engine_error.Error} from a recompute sub-run) may leave the
    state torn and must be treated as fatal to this [t]. *)

val visible : t -> string -> (Dcd_storage.Tuple.t -> unit) -> unit
(** Iterates the current visible tuples of a predicate. *)

val visible_count : t -> string -> int

val arity : t -> string -> int

val predicates : t -> string list
(** All maintained predicates (base and derived), sorted. *)

val is_base : t -> string -> bool
