open Dcd_planner
module Arena = Dcd_storage.Arena

exception Stop

type iter = int array -> (int array -> int -> unit) -> unit

type step =
  | S_atom of {
      sa_key_src : Physical.src array;
      sa_binds : (int * int) array;
      sa_checks : (int * Physical.src) array;
      sa_iter : iter;
    }
  | S_mem of {
      sm_key_src : Physical.src array;
      sm_mem : int array -> bool;
      sm_negated : bool;
    }
  | S_filter of Dcd_datalog.Ast.cmp_op * Physical.code * Physical.code
  | S_compute of int * Physical.code

type spec = {
  sp_nregs : int;
  sp_scan_binds : (int * int) array;
  sp_scan_checks : (int * Physical.src) array;
  sp_steps : step list;
  sp_head : Physical.src array;
  sp_contrib : Physical.src array;
}

type instance = {
  in_regs : int array;
  in_head : int array;
  in_contrib : int array;
  in_emit : (unit -> unit) ref;
  in_entry : unit -> unit;
  in_scan_bind : int array -> int -> unit;
  in_scan_check : int array -> int -> bool;
}

let instantiate (sp : spec) =
  let regs = Array.make (max 1 sp.sp_nregs) 0 in
  let head_buf = Array.make (Array.length sp.sp_head) 0 in
  let contrib_buf = Array.make (Array.length sp.sp_contrib) 0 in
  let fill_head = Kernel.filler sp.sp_head ~regs ~buf:head_buf in
  let fill_contrib = Kernel.filler sp.sp_contrib ~regs ~buf:contrib_buf in
  let emit = ref (fun () -> ()) in
  let tail () =
    fill_head ();
    fill_contrib ();
    !emit ()
  in
  (* The step chain is compiled back to front, each step capturing its
     continuation — the same closure-chain shape as {!Eval}, with
     {!Kernel} primitives doing the per-tuple work. *)
  let rec build = function
    | [] -> tail
    | S_atom a :: rest ->
      let next = build rest in
      let key = Array.make (Array.length a.sa_key_src) 0 in
      let fill_key = Kernel.filler a.sa_key_src ~regs ~buf:key in
      let bind = Kernel.binder a.sa_binds ~regs in
      let check = Kernel.checker a.sa_checks ~regs in
      let iterate = a.sa_iter in
      fun () ->
        fill_key ();
        iterate key (fun data off ->
            bind data off;
            if check data off then next ())
    | S_mem m :: rest ->
      let next = build rest in
      let key = Array.make (Array.length m.sm_key_src) 0 in
      let fill_key = Kernel.filler m.sm_key_src ~regs ~buf:key in
      let mem = m.sm_mem in
      if m.sm_negated then (fun () ->
        fill_key ();
        if not (mem key) then next ())
      else fun () ->
        fill_key ();
        if mem key then next ()
    | S_filter (op, lhs, rhs) :: rest ->
      let next = build rest in
      fun () -> (
        match (Physical.eval_code lhs regs, Physical.eval_code rhs regs) with
        | x, y -> if Physical.eval_cmp op x y then next ()
        | exception Division_by_zero -> ())
    | S_compute (reg, code) :: rest ->
      let next = build rest in
      fun () -> (
        match Physical.eval_code code regs with
        | v ->
          regs.(reg) <- v;
          next ()
        | exception Division_by_zero -> ())
  in
  {
    in_regs = regs;
    in_head = head_buf;
    in_contrib = contrib_buf;
    in_emit = emit;
    in_entry = build sp.sp_steps;
    in_scan_bind = Kernel.binder sp.sp_scan_binds ~regs;
    in_scan_check = Kernel.checker sp.sp_scan_checks ~regs;
  }

let regs inst = inst.in_regs

let head inst = inst.in_head

let contrib inst = inst.in_contrib

let set_emit inst f = inst.in_emit := f

let run_row inst data off =
  inst.in_scan_bind data off;
  inst.in_scan_check data off
  &&
  match inst.in_entry () with
  | () -> false
  | exception Stop -> true

let run_range inst arena ~first ~len =
  let data = Arena.data arena in
  let k = Arena.arity arena in
  for s = first to first + len - 1 do
    ignore (run_row inst data (s * k))
  done
