(** Compiled delta-rule pipelines for incremental maintenance.

    {!Maintain}'s interpreted evaluator walks an ordered body with a
    string-keyed environment and a closure per element — ~10× the
    per-emit constants of the engine's compiled kernels.  This module
    closes that gap for the maintenance phases: a [spec] is the same
    register machine {!Dcd_planner.Physical} compiles rules into, but
    with each body atom's iteration abstracted behind a closure the
    maintenance state supplies (its hash stores carry per-batch
    Old/Cur visibility the engine's relations know nothing about).
    Binds, residual checks and key/head fills execute through the exact
    {!Kernel} monomorphic binder/checker/filler closures the one-shot
    engine uses.

    An [instance] owns mutable register/key/head buffers, so each
    maintenance worker gets its own; the atom-iteration closures inside
    the shared [spec] are read-only against the maintenance state and
    safe to share across domains {e provided} the state is frozen for
    the duration of a parallel round (lazy indexes and delete-overlays
    prewarmed, all mutation buffered and applied after the barrier —
    {!Maintain} enforces this). *)

open Dcd_planner

exception Stop
(** Raised by an emit closure to abandon the current scan tuple —
    the existence-check mode used by rederivation probes.
    {!run_row} converts it into a [true] return. *)

type iter = int array -> (int array -> int -> unit) -> unit
(** [iter key f] calls [f data off] for every candidate tuple matching
    the filled key buffer.  Must not retain [key] or mutate any shared
    state. *)

type step =
  | S_atom of {
      sa_key_src : Physical.src array;  (** sources filling the probe key *)
      sa_binds : (int * int) array;  (** (column, register) on match *)
      sa_checks : (int * Physical.src) array;  (** residual equalities *)
      sa_iter : iter;
    }
  | S_mem of {
      sm_key_src : Physical.src array;  (** the fully bound tuple *)
      sm_mem : int array -> bool;
      sm_negated : bool;
    }
  | S_filter of Dcd_datalog.Ast.cmp_op * Physical.code * Physical.code
  | S_compute of int * Physical.code

type spec = {
  sp_nregs : int;
  sp_scan_binds : (int * int) array;
  sp_scan_checks : (int * Physical.src) array;
  sp_steps : step list;
  sp_head : Physical.src array;
  sp_contrib : Physical.src array;  (** aggregate contributor sources *)
}

type instance

val instantiate : spec -> instance
(** Fresh register file and buffers; emit is initially a no-op.
    Division by zero inside a filter or assignment rejects the binding,
    exactly as the interpreted path does. *)

val regs : instance -> int array
(** The live register file — for phase-specific emit closures that need
    extra projections (e.g. DRed rank lookups). *)

val head : instance -> int array
(** The head scratch buffer, valid inside the emit closure.  Copy on
    retention. *)

val contrib : instance -> int array
(** The aggregate-contributor scratch buffer, likewise transient. *)

val set_emit : instance -> (unit -> unit) -> unit
(** Installs the emission continuation for the next run; it reads
    {!head}/{!contrib}/{!regs} and may raise {!Stop}. *)

val run_row : instance -> int array -> int -> bool
(** Feeds one scan tuple at [(data, off)] through the pipeline;
    [true] iff an emit raised {!Stop} (existence established). *)

val run_range : instance -> Dcd_storage.Arena.t -> first:int -> len:int -> unit
(** Runs a contiguous arena range (one morsel) through the pipeline. *)
