open Dcd_planner
module Analysis = Dcd_datalog.Analysis
module Relation = Dcd_storage.Relation
module Partition = Dcd_storage.Partition
module Vec = Dcd_util.Vec
module Clock = Dcd_util.Clock
module Barrier = Dcd_concurrent.Barrier
module Termination = Dcd_concurrent.Termination
module Domain_pool = Dcd_concurrent.Domain_pool
module Cancel = Dcd_concurrent.Cancel
module Fault = Dcd_concurrent.Fault
module Watchdog = Dcd_concurrent.Watchdog

type exchange = Exchange.kind =
  | Spsc_exchange
  | Locked_exchange

type merge_path =
  | Batch_sorted
  | Per_tuple

type config = {
  workers : int;
  strategy : Coord.t;
  store_opts : Rec_store.opts;
  partial_agg : bool;
  max_iterations : int;
  exchange : exchange;
  batch_tuples : int;
  steal : bool;
  morsel_tuples : int;
  merge : merge_path;
  coord : Coord.config;
  fault : Fault.spec option;
  checkpoint_every : int;
  max_recoveries : int;
  maintain_workers : int;
}

let default_config =
  {
    workers = min 4 (Domain_pool.recommended_workers ());
    strategy = Coord.dws;
    store_opts = Rec_store.default_opts;
    partial_agg = true;
    max_iterations = 0;
    exchange = Spsc_exchange;
    batch_tuples = 0;
    steal = true;
    morsel_tuples = 2048;
    merge = Batch_sorted;
    coord = Coord.default_config;
    fault = None;
    checkpoint_every = 0;
    max_recoveries = 0;
    maintain_workers = 0;
  }

type result = {
  catalog : Catalog.t;
  stats : Run_stats.t;
}

(* --- resident runtime --- *)

type runtime = {
  rt_workers : int;
  rt_pool : Domain_pool.t;
  rt_scratches : Worker.scratch array;
}

let create_runtime ~workers =
  if workers < 1 then invalid_arg "Parallel.create_runtime: workers must be >= 1";
  {
    rt_workers = workers;
    rt_pool = Domain_pool.create ~workers;
    rt_scratches = Array.init workers (fun _ -> Worker.make_scratch ~workers ());
  }

let destroy_runtime rt = Domain_pool.shutdown rt.rt_pool

(* --- shared helpers --- *)

let arity_of (plan : Physical.t) pred =
  match List.assoc_opt pred plan.info.arities with
  | Some a -> a
  | None -> invalid_arg (Printf.sprintf "unknown predicate %s" pred)

(* Builds the hash indexes this stratum's base lookups will probe, before
   any worker starts (the shared catalog is read-only during parallel
   execution). *)
let prebuild_indexes (plan : Physical.t) catalog (sp : Physical.stratum_plan) =
  let note_steps steps =
    Array.iter
      (fun step ->
        match step with
        | Physical.Lookup { rel = Physical.R_base pred; key_cols; _ } ->
          (* scanned and nested-loop relations must at least exist *)
          let rel = Catalog.ensure catalog ~name:pred ~arity:(arity_of plan pred) in
          if Array.length key_cols > 0 then ignore (Relation.ensure_index rel ~key_cols)
        | Physical.Lookup _ | Physical.Filter _ | Physical.Compute _ -> ())
      steps
  in
  let note cr =
    note_steps cr.Physical.steps;
    (match cr.Physical.gj with
    | Some g ->
      note_steps g.Physical.gj_prelude;
      Array.iter (fun lv -> note_steps lv.Physical.gv_steps) g.Physical.gj_levels;
      (* sorted trie indexes, one per generic-join atom, bulk-loaded
         here so workers only ever read them *)
      Array.iter
        (fun (ga : Physical.gj_atom) ->
          let rel =
            Catalog.ensure catalog ~name:ga.ga_pred ~arity:(arity_of plan ga.ga_pred)
          in
          ignore (Relation.ensure_sorted_index rel ~cols:ga.ga_cols))
        g.Physical.gj_atoms
    | None -> ());
    match cr.Physical.scan with
    | Physical.S_base { pred; _ } ->
      ignore (Catalog.ensure catalog ~name:pred ~arity:(arity_of plan pred))
    | Physical.S_delta _ | Physical.S_unit -> ()
  in
  List.iter note sp.init_rules;
  List.iter note sp.delta_rules

(* --- cancellation plumbing --- *)

let cancel_reason token =
  match Cancel.reason token with
  | Some r -> r
  | None -> Cancel.User

let raise_cancelled token = raise (Engine_error.Error (Cancelled (cancel_reason token)))

(* The per-run watchdog dispatches through this indirection: each
   stratum arms it with closures over its own barrier/exchange state and
   disarms it before materialization.  While disarmed, progress is an
   ever-advancing idle tick so the stall window cannot fire between
   strata. *)
type monitor = {
  g_progress : unit -> int;
  g_stall : unit -> unit;
  g_tick : unit -> unit;
}

(* --- one stratum on the pool --- *)

let eval_stratum (plan : Physical.t) catalog (sp : Physical.stratum_plan) config ~pool
    ~scratches ~fault ~monitor ~stall_diag ~token stats =
  let t0 = Clock.now () in
  prebuild_indexes plan catalog sp;
  let n = config.workers in
  let h = Partition.create ~workers:n in
  let copies = Exchange.build_copies sp in
  let exch =
    Exchange.create ~workers:n ~kind:config.exchange ~batch_tuples:config.batch_tuples ~copies
  in
  let steal =
    Steal.create ~workers:n ~enabled:config.steal ~morsel_tuples:config.morsel_tuples
  in
  let recursive = sp.stratum.kind <> Analysis.Nonrecursive in
  let recovery_on = config.max_recoveries > 0 in
  (* Epoch checkpoints only make sense inside a fixpoint loop; a
     non-recursive stratum recovers by restarting from its base
     snapshots (it is one init round). *)
  let ckpt =
    if recursive && config.checkpoint_every > 0 then
      Some (Checkpoint.create ~workers:n ~every:config.checkpoint_every)
    else None
  in
  (* Set-store snapshots are watermarks into the canonical-tuple log,
     so both the cut path and the base snapshots need the log armed. *)
  let store_opts =
    if recovery_on || Option.is_some ckpt then
      { config.store_opts with Rec_store.track_log = true }
    else config.store_opts
  in
  let shared =
    Worker.make_shared ~exch ~token ~fault ~max_iterations:config.max_iterations ~steal
      ~merge_sorted:(config.merge = Batch_sorted) ~ckpt
  in
  let stores =
    Array.init n (fun _ ->
        Array.map
          (fun (ci : Exchange.copy_info) ->
            Rec_store.create ~arity:ci.ci_arity ~agg:ci.ci_agg ~route:ci.ci_route
              ~opts:store_opts ())
          copies)
  in
  (* epoch-0 rollback target: the empty stores, before any init rule
     ran (also the only target for non-recursive strata and for crashes
     before the first committed cut) *)
  let base_snaps =
    if recovery_on then Some (Array.map (Array.map Rec_store.snapshot) stores) else None
  in
  let wstats = Array.init n (fun _ -> Run_stats.fresh_worker ()) in
  let sx = Worker.make_stratum ~catalog ~copies ~h ~partial_agg:config.partial_agg sp in
  let setup = Clock.now () -. t0 in
  (* The run guardian's closures read [shared.token] through the record
     so they follow the per-attempt token swaps during recovery; the
     external run [token] is bridged onto the current attempt by the
     tick. *)
  let idle = ref 0 in
  let arm_monitor () =
    Atomic.set monitor
      (Some
         {
           g_progress =
             (if recursive then fun () ->
                let term = Exchange.term exch in
                let acc = ref (Termination.total_sent term + Termination.total_consumed term) in
                for w = 0 to n - 1 do
                  acc :=
                    !acc + shared.Worker.heartbeats.(w) + Atomic.get shared.Worker.iter_counts.(w)
                done;
                !acc
              else fun () ->
                (* non-recursive strata have no quiescence protocol to
                   livelock; keep the stall window quiet and let the tick
                   handle cancellation *)
                incr idle;
                !idle);
           g_stall =
             (fun () ->
               stall_diag :=
                 Some
                   (Worker.stall_snapshot shared
                      ~strategy:(Coord.to_string config.strategy)
                      ~window:(Option.value config.coord.stall_window ~default:0.));
               ignore (Cancel.cancel shared.Worker.token Cancel.Stall);
               Barrier.poison shared.Worker.barrier);
           g_tick =
             (fun () ->
               if Cancel.check token && not (Cancel.is_set shared.Worker.token) then
                 ignore (Cancel.cancel shared.Worker.token (cancel_reason token));
               if Cancel.is_set shared.Worker.token then Barrier.poison shared.Worker.barrier);
         })
  in
  (* Fault containment: if a worker dies (plan bug, arithmetic fault in
     a hook, OOM, injected crash), its peers must not wait for it
     forever — poison the barrier and raise a flag the barrier-free
     strategies poll.  Peers that die of the poisoning return quietly,
     so the failures [Domain_pool.submit] hands back are all genuine
     origins, never poisoned bystanders. *)
  let t1 = Clock.now () in
  let worker me =
    let body () =
      let w =
        Worker.create ~shared ~scratch:scratches.(me) ~stratum:sx ~me ~stores ~ws:wstats.(me)
      in
      (* a committed epoch means the orchestrator rolled the stores back
         to it: refill the deltas and iteration counters from its banks
         and skip straight into the fixpoint loop *)
      let resumed = recursive && Worker.restore w in
      if not resumed then Worker.run_init w;
      if recursive then Strategy.run config.strategy w else Worker.finish_nonrecursive w;
      Worker.recycle w
    in
    try body () with
    | Barrier.Poisoned -> ()
    | e ->
      let bt = Printexc.get_raw_backtrace () in
      Atomic.set shared.Worker.failed true;
      ignore (Cancel.cancel shared.Worker.token Cancel.Peer_crash);
      Barrier.poison shared.Worker.barrier;
      Printexc.raise_with_backtrace e bt
  in
  let raise_crashed (failures : Domain_pool.failure list) =
    let crashes =
      List.map
        (fun (f : Domain_pool.failure) ->
          { Engine_error.worker = f.index; error = f.error; backtrace = f.backtrace })
        failures
    in
    match crashes with
    | first :: others ->
      raise
        (Engine_error.Error
           (Worker_crashed
              {
                worker = first.worker;
                error = first.error;
                backtrace = first.backtrace;
                others;
              }))
    | [] -> assert false
  in
  let rec_stats = stats.Run_stats.recovery in
  (* Roll every worker's store row back to the committed epoch (or to
     the empty base state when none is committed).  Sound only because
     ALL workers restore from the SAME epoch: anything discarded from
     the exchange was produced after the cut and is regenerated when
     the senders re-run from it.  The [Recover] fault site is evaluated
     here, on each rolled-back worker's lane, so crash schedules can
     also hit the recovery path itself. *)
  let rollback_all () =
    let epoch = match ckpt with Some c -> Checkpoint.epoch c | None -> 0 in
    for wk = 0 to n - 1 do
      (match fault with Some f -> Fault.hit f Fault.Recover ~worker:wk | None -> ());
      let target_iters, snap_of =
        if epoch > 0 then begin
          let bank = Checkpoint.bank (Option.get ckpt) ~worker:wk ~epoch in
          (bank.Checkpoint.bk_iterations, fun cid -> bank.Checkpoint.bk_snaps.(cid))
        end
        else (0, fun cid -> (Option.get base_snaps).(wk).(cid))
      in
      rec_stats.Run_stats.rerun_iterations <-
        rec_stats.Run_stats.rerun_iterations
        + max 0 (wstats.(wk).Run_stats.iterations - target_iters);
      wstats.(wk).Run_stats.iterations <- target_iters;
      Array.iteri
        (fun cid st ->
          rec_stats.Run_stats.rolled_back_tuples <-
            rec_stats.Run_stats.rolled_back_tuples + Rec_store.rollback st (snap_of cid))
        stores.(wk)
    done
  in
  (* Each recovery attempt gets its own cancellation token (carrying the
     run deadline) so a peer-crash cancellation dies with the round it
     aborted; with recovery off the run token is used directly and
     behavior is exactly the pre-recovery protocol. *)
  let fresh_attempt_token () =
    if not recovery_on then token else Cancel.create ?deadline:(Cancel.deadline token) ()
  in
  let rec attempt ~left =
    arm_monitor ();
    let pool_result = Domain_pool.submit pool worker in
    Atomic.set monitor None;
    match pool_result with
    | Ok () -> ()
    | Error failures ->
      let recoverable =
        recovery_on && left > 0
        (* only genuine crashes are retried: a stall, deadline or user
           cancellation on the attempt means retrying cannot help *)
        && (match Cancel.reason shared.Worker.token with
           | None | Some Cancel.Peer_crash -> true
           | Some _ -> false)
        && not (Cancel.check token)
      in
      if not recoverable then raise_crashed failures
      else begin
        rec_stats.Run_stats.recoveries <- rec_stats.Run_stats.recoveries + 1;
        (* the crashed domains are parked on their exceptions: replace
           them so the pool is whole again before the retry *)
        List.iter (fun (f : Domain_pool.failure) -> Domain_pool.replace pool f.index) failures;
        (* exponential backoff, clipped to the run deadline *)
        let used = config.max_recoveries - left in
        let delay = 0.001 *. (2. ** float_of_int used) in
        let delay =
          match Cancel.deadline token with
          | Some at -> Float.min delay (Float.max 0. (at -. Clock.now () -. 0.001))
          | None -> delay
        in
        if delay > 0. then Unix.sleepf delay;
        (* rollback can itself crash (the Recover site): each such crash
           consumes budget and the rollback is retried — it is
           idempotent, snapshots survive being restored from *)
        let rec roll left =
          match rollback_all () with
          | () -> Some left
          | exception Fault.Injected _ ->
            if left > 0 then begin
              rec_stats.Run_stats.recoveries <- rec_stats.Run_stats.recoveries + 1;
              roll (left - 1)
            end
            else None
        in
        match roll (left - 1) with
        | None -> raise_crashed failures
        | Some left ->
          Exchange.reset exch;
          Steal.reset steal;
          Worker.reset_shared shared ~token:(fresh_attempt_token ());
          attempt ~left
      end
  in
  if recovery_on then shared.Worker.token <- fresh_attempt_token ();
  attempt ~left:config.max_recoveries;
  if Cancel.is_set shared.Worker.token then begin
    match !stall_diag with
    | Some d -> raise (Engine_error.Error (Stalled d))
    | None -> raise_cancelled shared.Worker.token
  end;
  (match ckpt with
  | Some c ->
    rec_stats.Run_stats.epochs_cut <- rec_stats.Run_stats.epochs_cut + Checkpoint.epoch c
  | None -> ());
  let evaluate = Clock.now () -. t1 in
  (* fold each worker's existence-cache counters into its stratum stats
     (stores are per-stratum, so these are per-stratum totals) *)
  for w = 0 to n - 1 do
    Array.iter
      (fun st ->
        match Rec_store.cache_stats st with
        | Some (h, m) ->
          wstats.(w).Run_stats.cache_hits <- wstats.(w).Run_stats.cache_hits + h;
          wstats.(w).Run_stats.cache_misses <- wstats.(w).Run_stats.cache_misses + m
        | None -> ())
      stores.(w)
  done;
  (* --- materialize the primary-route union into the catalog --- *)
  let t2 = Clock.now () in
  List.iter
    (fun (pp : Physical.pred_plan) ->
      let primary = List.hd pp.routes in
      let cid = Exchange.copy_id copies pp.pred primary in
      let total = ref 0 in
      for w = 0 to n - 1 do
        total := !total + Rec_store.length stores.(w).(cid)
      done;
      let rel = Relation.create ~size_hint:!total ~name:pp.pred ~arity:pp.arity () in
      (* one bulk add per predicate: partitions are disjoint, and any
         sorted trie index present refreshes from one sorted run *)
      let batch = Vec.create ~capacity:!total () in
      for w = 0 to n - 1 do
        Rec_store.iter stores.(w).(cid) (fun tup -> Vec.push batch tup)
      done;
      ignore (Relation.add_batch rel batch);
      Catalog.add_relation catalog rel)
    sp.pred_plans;
  let materialize = Clock.now () -. t2 in
  Run_stats.add_stratum stats
    {
      Run_stats.preds = sp.stratum.preds;
      kind = Analysis.recursion_kind_to_string sp.stratum.kind;
      wall = Clock.now () -. t0;
      setup;
      evaluate;
      materialize;
      workers = wstats;
    }

(* --- top level --- *)

let run ?runtime (plan : Physical.t) ~edb ~config =
  if config.workers < 1 then invalid_arg "Parallel.run: workers must be >= 1";
  if config.morsel_tuples < 1 then invalid_arg "Parallel.run: morsel_tuples must be >= 1";
  (match runtime with
  | Some rt when rt.rt_workers <> config.workers ->
    invalid_arg
      (Printf.sprintf "Parallel.run: runtime has %d workers but config wants %d" rt.rt_workers
         config.workers)
  | _ -> ());
  (* One token guards the whole run (every stratum): caller-supplied or
     internal, with the timeout folded in as an absolute deadline. *)
  let token =
    match config.coord.cancel with
    | Some t -> t
    | None -> Cancel.create ()
  in
  (match config.coord.timeout with
  | Some s -> Cancel.arm_deadline token ~at:(Clock.now () +. s)
  | None -> ());
  let catalog = Catalog.create () in
  let stats = Run_stats.create () in
  let t0 = Clock.now () in
  (* load the EDB *)
  List.iter
    (fun (name, tuples) ->
      let arity =
        match List.assoc_opt name plan.Physical.info.arities with
        | Some a -> a
        | None -> if Vec.is_empty tuples then 0 else Array.length (Vec.get tuples 0)
      in
      Catalog.load catalog ~name ~arity tuples)
    edb;
  List.iter
    (fun pred -> ignore (Catalog.ensure catalog ~name:pred ~arity:(arity_of plan pred)))
    plan.Physical.info.edb;
  (* The persistent runtime: [workers] domains spawned once, every
     stratum submitted to the same pool; per-worker scratch carries
     across strata; one fault schedule and at most one guardian domain
     per run. *)
  let n = config.workers in
  let owned, pool, scratches =
    match runtime with
    | Some rt -> (false, rt.rt_pool, rt.rt_scratches)
    | None -> (true, Domain_pool.create ~workers:n, Array.init n (fun _ -> Worker.make_scratch ~workers:n ()))
  in
  let fault = Option.map (Fault.create ~workers:n) config.fault in
  let monitor : monitor option Atomic.t = Atomic.make None in
  let stall_diag : Engine_error.stall_diagnostic option ref = ref None in
  let guard = config.coord in
  let need_guardian =
    guard.stall_window <> None || guard.cancel <> None || Cancel.deadline token <> None
  in
  let idle = ref 0 in
  let guardian =
    if not need_guardian then None
    else
      let window = Option.value guard.stall_window ~default:infinity in
      Some
        (Watchdog.spawn ~window ~poll:guard.stall_poll
           ~progress:(fun () ->
             match Atomic.get monitor with
             | Some m -> m.g_progress ()
             | None ->
               incr idle;
               !idle)
           ~on_stall:(fun () ->
             match Atomic.get monitor with
             | Some m -> m.g_stall ()
             | None -> ())
           ~on_tick:(fun () ->
             match Atomic.get monitor with
             | Some m -> m.g_tick ()
             | None -> ())
           ())
  in
  Fun.protect
    ~finally:(fun () ->
      Option.iter Watchdog.stop guardian;
      if owned then Domain_pool.shutdown pool)
    (fun () ->
      List.iter
        (fun (sp : Physical.stratum_plan) ->
          if Cancel.check token then raise_cancelled token;
          eval_stratum plan catalog sp config ~pool ~scratches ~fault ~monitor ~stall_diag
            ~token stats)
        plan.Physical.strata;
      stats.Run_stats.total_wall <- Clock.now () -. t0;
      { catalog; stats })

let relation_vec result name =
  match Catalog.find result.catalog name with
  | Some rel -> Relation.to_vec rel
  | None -> Vec.create ()
