open Dcd_planner
module Ast = Dcd_datalog.Ast
module Analysis = Dcd_datalog.Analysis
module Tuple = Dcd_storage.Tuple
module Arena = Dcd_storage.Arena
module Tuple_set = Dcd_storage.Tuple_set
module Relation = Dcd_storage.Relation
module Partition = Dcd_storage.Partition
module Frame = Dcd_concurrent.Frame
module Vec = Dcd_util.Vec
module Clock = Dcd_util.Clock
module Chunk_queue = Dcd_concurrent.Chunk_queue
module Barrier = Dcd_concurrent.Barrier
module Termination = Dcd_concurrent.Termination
module Backoff = Dcd_concurrent.Backoff
module Domain_pool = Dcd_concurrent.Domain_pool
module Cancel = Dcd_concurrent.Cancel
module Fault = Dcd_concurrent.Fault
module Watchdog = Dcd_concurrent.Watchdog

type exchange =
  | Spsc_exchange
  | Locked_exchange

type config = {
  workers : int;
  strategy : Coord.t;
  store_opts : Rec_store.opts;
  partial_agg : bool;
  max_iterations : int;
  exchange : exchange;
  batch_tuples : int;
  coord : Coord.config;
  fault : Fault.spec option;
}

let default_config =
  {
    workers = min 4 (Domain_pool.recommended_workers ());
    strategy = Coord.dws;
    store_opts = Rec_store.default_opts;
    partial_agg = true;
    max_iterations = 0;
    exchange = Spsc_exchange;
    batch_tuples = 0;
    coord = Coord.default_config;
    fault = None;
  }

type result = {
  catalog : Catalog.t;
  stats : Run_stats.t;
}

(* One exchange message: every delta tuple a worker produced for one
   (copy, destination) in one flush, packed flat into a single frame.
   The producer gives up ownership on push; the consumer folds the
   records in without unpacking them into boxed tuples. *)
type batch = {
  bcopy : int;
  bsrc : int;
  bframe : Frame.t;
}

type copy_info = {
  ci_pred : string;
  ci_route : int array;
  ci_arity : int;
  ci_agg : (int * Ast.agg_kind) option;
}

(* --- copy table construction --- *)

let build_copies (sp : Physical.stratum_plan) =
  let copies = ref [] in
  List.iter
    (fun (pp : Physical.pred_plan) ->
      List.iter
        (fun route ->
          copies :=
            { ci_pred = pp.pred; ci_route = route; ci_arity = pp.arity; ci_agg = pp.agg }
            :: !copies)
        pp.routes)
    sp.pred_plans;
  Array.of_list (List.rev !copies)

(* Linear scan over the copy table.  Only ever called at setup/prepare
   time: the per-tuple path dispatches on the integer ids this resolves
   to (Eval precomputes them per compiled rule), never on strings. *)
let copy_id_fn copies pred route =
  let n = Array.length copies in
  let rec loop i =
    if i = n then
      invalid_arg (Printf.sprintf "no copy for %s under the requested route" pred)
    else if String.equal copies.(i).ci_pred pred && copies.(i).ci_route = route then i
    else loop (i + 1)
  in
  loop 0

let copies_of_pred copies pred =
  let out = ref [] in
  Array.iteri (fun i ci -> if String.equal ci.ci_pred pred then out := i :: !out) copies;
  List.rev !out

(* --- shared helpers --- *)

let arity_of (plan : Physical.t) pred =
  match List.assoc_opt pred plan.info.arities with
  | Some a -> a
  | None -> invalid_arg (Printf.sprintf "unknown predicate %s" pred)

(* Builds the hash indexes this stratum's base lookups will probe, before
   any worker starts (the shared catalog is read-only during parallel
   execution). *)
let prebuild_indexes (plan : Physical.t) catalog (sp : Physical.stratum_plan) =
  let note cr =
    Array.iter
      (fun step ->
        match step with
        | Physical.Lookup { rel = Physical.R_base pred; key_cols; _ }
          when Array.length key_cols > 0 ->
          let rel = Catalog.ensure catalog ~name:pred ~arity:(arity_of plan pred) in
          ignore (Relation.ensure_index rel ~key_cols)
        | Physical.Lookup _ | Physical.Filter _ | Physical.Compute _ -> ())
      cr.Physical.steps;
    (* scanned and nested-loop relations must at least exist *)
    (match cr.Physical.scan with
    | Physical.S_base { pred; _ } ->
      ignore (Catalog.ensure catalog ~name:pred ~arity:(arity_of plan pred))
    | Physical.S_delta _ | Physical.S_unit -> ());
    Array.iter
      (fun step ->
        match step with
        | Physical.Lookup { rel = Physical.R_base pred; _ } ->
          ignore (Catalog.ensure catalog ~name:pred ~arity:(arity_of plan pred))
        | Physical.Lookup _ | Physical.Filter _ | Physical.Compute _ -> ())
      cr.Physical.steps
  in
  List.iter note sp.init_rules;
  List.iter note sp.delta_rules

(* Flat scan source for a whole relation: the init rules and the
   non-recursive strata scan relations through an arena cursor, not a
   boxed-tuple vector. *)
let arena_of_relation rel =
  let a =
    Arena.create ~capacity:(max 1 (Relation.length rel)) ~arity:(Relation.arity rel) ()
  in
  Relation.iter_slices rel (fun data off -> ignore (Arena.push_slice a data off));
  a

let eval_context catalog ~rec_resolve ~rec_matches =
  {
    Eval.base_iter = (fun pred f -> Relation.iter_slices (Catalog.get catalog pred) f);
    base_index =
      (fun pred cols ->
        match Relation.find_index (Catalog.get catalog pred) ~key_cols:cols with
        | Some idx -> idx
        | None ->
          (* prebuild_indexes guarantees this cannot happen *)
          assert false);
    rec_resolve;
    rec_matches;
  }

(* --- cancellation plumbing --- *)

let cancel_reason token =
  match Cancel.reason token with
  | Some r -> r
  | None -> Cancel.User

let raise_cancelled token = raise (Engine_error.Error (Cancelled (cancel_reason token)))

(* --- non-recursive strata: single-threaded --- *)

let eval_nonrecursive (plan : Physical.t) catalog (sp : Physical.stratum_plan) config ~token
    stats =
  let t0 = Clock.now () in
  prebuild_indexes plan catalog sp;
  let copies = build_copies sp in
  (* one store per stratum predicate (primary route only) *)
  let stores =
    Array.map
      (fun ci ->
        Rec_store.create ~arity:ci.ci_arity ~agg:ci.ci_agg ~route:ci.ci_route
          ~opts:config.store_opts ())
      copies
  in
  let store_of_pred pred =
    match copies_of_pred copies pred with
    | cid :: _ -> stores.(cid)
    | [] -> invalid_arg (Printf.sprintf "nonrecursive stratum: unknown head %s" pred)
  in
  let ctx =
    eval_context catalog
      ~rec_resolve:(fun ~pred ~route ->
        ignore route;
        invalid_arg (Printf.sprintf "recursive lookup of %s in a non-recursive stratum" pred))
      ~rec_matches:(fun _ ~key f ->
        ignore key;
        ignore f;
        assert false)
  in
  let ws = Run_stats.fresh_worker () in
  List.iter
    (fun (cr : Physical.compiled_rule) ->
      if Cancel.check token then raise_cancelled token;
      let store = store_of_pred cr.head.hpred in
      let emit ~tuple ~contributor =
        ignore (Rec_store.merge store ~tuple ~contributor)
      in
      let prepared = Eval.prepare cr ctx ~emit in
      let processed =
        match cr.scan with
        | Physical.S_unit -> Eval.run_prepared prepared ~scan:`Unit
        | Physical.S_base { pred; _ } ->
          Eval.run_prepared prepared ~scan:(`Flat (arena_of_relation (Catalog.get catalog pred)))
        | Physical.S_delta _ -> assert false
      in
      ws.tuples_processed <- ws.tuples_processed + processed)
    sp.init_rules;
  ws.iterations <- 1;
  (* materialize *)
  List.iter
    (fun (pp : Physical.pred_plan) ->
      let store = store_of_pred pp.pred in
      let rel =
        Relation.create ~size_hint:(Rec_store.length store) ~name:pp.pred ~arity:pp.arity ()
      in
      Rec_store.iter store (fun tup -> ignore (Relation.add rel tup));
      Catalog.add_relation catalog rel)
    sp.pred_plans;
  let wall = Clock.now () -. t0 in
  ws.busy_time <- wall;
  Run_stats.add_stratum stats
    {
      Run_stats.preds = sp.stratum.preds;
      kind = Analysis.recursion_kind_to_string sp.stratum.kind;
      wall;
      workers = [| ws |];
    }

(* --- recursive strata: parallel --- *)

let eval_recursive (plan : Physical.t) catalog (sp : Physical.stratum_plan) config ~token stats =
  let t0 = Clock.now () in
  prebuild_indexes plan catalog sp;
  let n = config.workers in
  let h = Partition.create ~workers:n in
  let copies = build_copies sp in
  let ncopies = Array.length copies in
  let copy_id = copy_id_fn copies in
  (* distribution targets per head predicate *)
  let head_targets =
    List.map (fun (pp : Physical.pred_plan) -> (pp.pred, copies_of_pred copies pp.pred))
      sp.pred_plans
  in
  let stores =
    Array.init n (fun _ ->
        Array.map
          (fun ci ->
            Rec_store.create ~arity:ci.ci_arity ~agg:ci.ci_agg ~route:ci.ci_route
              ~opts:config.store_opts ())
          copies)
  in
  (* The message fabric: either the paper's SPSC matrix (M_i^j, §6.1) or
     the lock-based alternative it argues against (one mutex-protected
     multi-producer queue per destination) — kept for the ablation.
     Queue elements are whole batches, so queue traffic and termination
     accounting are per flush, not per tuple. *)
  let module Locked_queue = Dcd_concurrent.Locked_queue in
  let spsc_queues =
    match config.exchange with
    | Spsc_exchange ->
      (* queues.(dest).(src): single producer [src], single consumer [dest] *)
      Some (Array.init n (fun _ -> Array.init n (fun _ -> Chunk_queue.create ~chunk:64 ())))
    | Locked_exchange -> None
  in
  let locked_queues =
    match config.exchange with
    | Locked_exchange -> Some (Array.init n (fun _ -> Locked_queue.create ()))
    | Spsc_exchange -> None
  in
  let push_batch ~dest (b : batch) =
    match (spsc_queues, locked_queues) with
    | Some q, _ -> Chunk_queue.push q.(dest).(b.bsrc) b
    | None, Some q -> Locked_queue.push q.(dest) b
    | None, None -> assert false
  in
  (* Tuple-denominated buffer occupancy |M_i^j| for the queueing model
     (the queues themselves count batches).  Producers add before the
     push, consumers subtract after the drain, so a read never
     under-reports in-flight work. *)
  let occupancy = Array.init n (fun _ -> Array.init n (fun _ -> Atomic.make 0)) in
  let inbox_sizes ~dest = Array.init n (fun j -> Atomic.get occupancy.(dest).(j)) in
  let term = Termination.create ~workers:n in
  let barrier = Barrier.create n in
  let failed = Atomic.make false in
  (* Fault injection: [inject] is a no-op closure when disabled, so the
     sites below cost one static call on a frame/batch/loop-pass
     granularity — never per tuple. *)
  let fault = Option.map (fun spec -> Fault.create ~workers:n spec) config.fault in
  let inject =
    match fault with
    | None -> fun _site ~worker:_ -> ()
    | Some f ->
      Fault.set_stop f (fun () -> Atomic.get failed || Cancel.is_set token);
      fun site ~worker -> Fault.hit f site ~worker
  in
  (* Per-worker heartbeats of *useful* work (rules evaluated, batches
     merged), bumped only between units of real progress: an idle worker
     spinning through backoff does not beat, so a quiescence livelock
     goes flat and the watchdog can see it.  Plain ints read racily by
     the watchdog domain — staleness only widens the window slightly. *)
  let heartbeats = Array.make n 0 in
  let iter_counts = Array.init n (fun _ -> Atomic.make 0) in
  let nonempty = Array.init n (fun _ -> Atomic.make false) in
  let wstats = Array.init n (fun _ -> Run_stats.fresh_worker ()) in
  (* shared flat scan sources for the init rules (read-only during the
     parallel phase, so all workers stripe over the same arena) *)
  let scan_sources =
    List.filter_map
      (fun (cr : Physical.compiled_rule) ->
        match cr.scan with
        | Physical.S_base { pred; _ } ->
          Some (pred, arena_of_relation (Catalog.get catalog pred))
        | Physical.S_delta _ | Physical.S_unit -> None)
      sp.init_rules
  in

  (* count/sum copies ship a contributor key with every tuple; the
     other copies travel at fixed stride *)
  let frame_contrib = Array.map (fun ci -> ci.ci_agg <> None) copies in
  let worker_body me =
    let ws = wstats.(me) in
    let my_stores = stores.(me) in
    let deltas = Array.map (fun ci -> Arena.create ~arity:ci.ci_arity ()) copies in
    (* Per-iteration group index for aggregate copies: the Gather
       operator emits ONE delta entry per changed group, holding the
       current aggregate (paper Example 6.1).  Without this, a group
       improved k times in one gather would be scanned k times, which
       explodes quadratically on high-degree vertices. *)
    let delta_groups =
      Array.map
        (fun ci ->
          match ci.ci_agg with
          | Some _ -> Some (Hashtbl.create 64 : (Tuple.t, int) Hashtbl.t)
          | None -> None)
        copies
    in
    let push_delta cid (fresh : Tuple.t) =
      match delta_groups.(cid) with
      | None -> ignore (Arena.push deltas.(cid) fresh)
      | Some groups -> (
        let pos, _ = Option.get copies.(cid).ci_agg in
        let group = Tuple.group_key fresh ~agg_pos:pos in
        match Hashtbl.find_opt groups group with
        | Some slot -> Arena.set_slot deltas.(cid) slot fresh
        | None ->
          Hashtbl.add groups group (Arena.length deltas.(cid));
          ignore (Arena.push deltas.(cid) fresh))
    in
    let clear_deltas () =
      Array.iter Arena.clear deltas;
      Array.iter (function Some g -> Hashtbl.reset g | None -> ()) delta_groups
    in
    let qm = Qmodel.create ~producers:n () in
    let fresh_frame cid =
      Frame.create ~arity:copies.(cid).ci_arity ~contrib:frame_contrib.(cid) ()
    in
    let outbuf = Array.init ncopies (fun cid -> Array.init n (fun _ -> fresh_frame cid)) in
    let ctx =
      eval_context catalog
        ~rec_resolve:(fun ~pred ~route -> copy_id pred route)
        ~rec_matches:(fun cid ~key f -> Rec_store.iter_matches my_stores.(cid) ~key f)
    in
    let emit_for pred =
      (* [tuple]/[contributor] are Eval's emission scratch: Frame.push
         copies them into the packed buffer before returning.  The
         single-target case (the overwhelmingly common one) is
         specialized so the emit path allocates nothing. *)
      match List.assoc pred head_targets with
      | [ cid ] ->
        let bufs = outbuf.(cid) and route = copies.(cid).ci_route in
        fun ~tuple ~contributor ->
          Frame.push bufs.(Partition.of_tuple h ~cols:route tuple) tuple contributor
      | targets ->
        fun ~tuple ~contributor ->
          List.iter
            (fun cid ->
              let dest = Partition.of_tuple h ~cols:copies.(cid).ci_route tuple in
              Frame.push outbuf.(cid).(dest) tuple contributor)
            targets
    in
    (* Ships one packed frame: one queue push and one amortized
       termination update per flush, instead of one of each per tuple. *)
    let ship ~dest cid frame =
      let len = Frame.count frame in
      Termination.sent term len;
      ignore (Atomic.fetch_and_add occupancy.(dest).(me) len);
      ws.tuples_sent <- ws.tuples_sent + len;
      ws.batches_sent <- ws.batches_sent + 1;
      ws.words_sent <- ws.words_sent + Frame.words frame;
      push_batch ~dest { bcopy = cid; bsrc = me; bframe = frame }
    in
    let send ~dest cid frame =
      let len = Frame.count frame in
      let cap = config.batch_tuples in
      if cap <= 0 || len <= cap then ship ~dest cid frame
      else if not (Frame.has_contrib frame) then begin
        (* batch-size knob: split into chunks of at most [cap] tuples
           (cap = 1 reproduces the old per-tuple message framing);
           fixed-stride records split with one blit per chunk *)
        let i = ref 0 in
        while !i < len do
          let k = min cap (len - !i) in
          let chunk = Frame.create ~capacity:k ~arity:copies.(cid).ci_arity ~contrib:false () in
          Frame.append_range chunk frame ~first:!i ~n:k;
          ship ~dest cid chunk;
          i := !i + k
        done
      end
      else begin
        let chunk = ref (Frame.create ~capacity:cap ~arity:copies.(cid).ci_arity ~contrib:true ()) in
        Frame.iter frame (fun data ~toff ~clen ~coff ->
            Frame.push_slice !chunk data ~toff ~clen ~coff;
            if Frame.count !chunk = cap then begin
              ship ~dest cid !chunk;
              chunk := Frame.create ~capacity:cap ~arity:copies.(cid).ci_arity ~contrib:true ()
            end);
        if not (Frame.is_empty !chunk) then ship ~dest cid !chunk
      end
    in
    let flush_outgoing () =
      inject Fault.Flush ~worker:me;
      for cid = 0 to ncopies - 1 do
        let ci = copies.(cid) in
        for dest = 0 to n - 1 do
          let buf = outbuf.(cid).(dest) in
          if not (Frame.is_empty buf) then begin
            match (config.partial_agg, ci.ci_agg) with
            | true, Some (pos, ((Ast.Min | Ast.Max) as kind)) ->
              (* partial aggregation: keep only the best record per
                 group within this outgoing frame (paper §5.2.3).
                 Group identity is every column but the value;
                 candidates are hashed and compared in place in the
                 frame buffer, so no boxed group keys exist. *)
              let gcols = Array.init (ci.ci_arity - 1) (fun i -> if i < pos then i else i + 1) in
              let rec pow2 p need = if p >= need then p else pow2 (p * 2) need in
              let cap = pow2 16 (2 * Frame.count buf) in
              let mask = cap - 1 in
              let table = Array.make cap 0 (* record toff + 1; 0 = empty *) in
              let data = Frame.data buf in
              let glen = Array.length gcols in
              (* one closure per flush, not per record: hoisted out of
                 the [Frame.iter] callback and driven by a while loop *)
              let group_eq a b =
                let rec loop i =
                  i = glen
                  ||
                  let c = Array.unsafe_get gcols i in
                  data.(a + c) = data.(b + c) && loop (i + 1)
                in
                loop 0
              in
              Frame.iter buf (fun _ ~toff ~clen:_ ~coff:_ ->
                  let i = ref (Tuple.hash_cols data ~base:toff gcols land mask) in
                  let placed = ref false in
                  while not !placed do
                    match table.(!i) with
                    | 0 ->
                      table.(!i) <- toff + 1;
                      placed := true
                    | e ->
                      let cur = e - 1 in
                      if group_eq cur toff then begin
                        let keep =
                          if kind = Ast.Min then data.(toff + pos) < data.(cur + pos)
                          else data.(toff + pos) > data.(cur + pos)
                        in
                        if keep then table.(!i) <- toff + 1;
                        placed := true
                      end
                      else i := (!i + 1) land mask
                  done);
              let out =
                Frame.create ~capacity:(Frame.count buf) ~arity:ci.ci_arity ~contrib:true ()
              in
              Array.iter
                (fun e -> if e <> 0 then Frame.push_slice out data ~toff:(e - 1) ~clen:0 ~coff:0)
                table;
              Frame.clear buf;
              send ~dest cid out
            | true, None ->
              (* set semantics: drop duplicates within the frame,
                 probing straight out of the packed records *)
              let seen = Tuple_set.create ~capacity:(Frame.count buf) () in
              let out =
                Frame.create ~capacity:(Frame.count buf) ~arity:ci.ci_arity ~contrib:false ()
              in
              Frame.iter buf (fun data ~toff ~clen:_ ~coff:_ ->
                  if Tuple_set.add_slice seen data toff ci.ci_arity then
                    Frame.push_slice out data ~toff ~clen:0 ~coff:0);
              Frame.clear buf;
              send ~dest cid out
            | _ ->
              (* ship the accumulation frame itself — ownership passes
                 to the consumer, the producer starts a fresh one *)
              outbuf.(cid).(dest) <- fresh_frame cid;
              send ~dest cid buf
          end
        done
      done
    in
    (* per-source tuple counts of the current drain, for arrival stats *)
    let drained_from = Array.make n 0 in
    let merge_batch (b : batch) =
      inject Fault.Merge ~worker:me;
      heartbeats.(me) <- heartbeats.(me) + 1;
      let store = my_stores.(b.bcopy) in
      (* records are folded in straight from the packed frame: absorbed
         candidates never exist as heap objects on the consumer side *)
      Frame.iter b.bframe (fun data ~toff ~clen ~coff ->
          match Rec_store.merge_slice store ~data ~off:toff ~cdata:data ~coff ~clen with
          | Some fresh -> push_delta b.bcopy fresh
          | None -> ());
      drained_from.(b.bsrc) <- drained_from.(b.bsrc) + Frame.count b.bframe
    in
    let drain_and_merge () =
      Array.fill drained_from 0 n 0;
      (match (spsc_queues, locked_queues) with
      | Some q, _ ->
        for j = 0 to n - 1 do
          ignore (Chunk_queue.drain q.(me).(j) merge_batch)
        done
      | None, Some q -> ignore (Locked_queue.drain q.(me) merge_batch)
      | None, None -> assert false);
      let total = ref 0 in
      let now = ref 0. in
      for j = 0 to n - 1 do
        let cnt = drained_from.(j) in
        if cnt > 0 then begin
          ignore (Atomic.fetch_and_add occupancy.(me).(j) (-cnt));
          (* one clock read per drain, not per tuple: the arrival model
             keeps its per-batch framing (see Qmodel) *)
          if !now = 0. then now := Clock.now ();
          Qmodel.record_arrival qm ~from:j ~now:!now ~count:cnt;
          total := !total + cnt
        end
      done;
      if !total > 0 then begin
        (* Become visibly active BEFORE recording consumption: a peer whose
           quiescence snapshot includes these consumed counts must also see
           this worker active, or it could exit while we still hold
           unprocessed tuples and go on to send to it. *)
        Termination.set_active term ~worker:me true;
        Termination.consumed term ~worker:me !total
      end;
      !total
    in
    let delta_size () = Array.fold_left (fun acc a -> acc + Arena.length a) 0 deltas in
    let frozen () = config.max_iterations > 0 && ws.iterations >= config.max_iterations in
    (* Delta rules prepared once per worker: recursive lookups and the
       scanned copy resolve to integer ids here, at setup time. *)
    let emits =
      List.map
        (fun (cr : Physical.compiled_rule) ->
          let scan_cid =
            match cr.scan with
            | Physical.S_delta { pred; route; _ } -> copy_id pred route
            | Physical.S_base _ | Physical.S_unit -> assert false
          in
          (scan_cid, Eval.prepare cr ctx ~emit:(emit_for cr.head.hpred)))
        sp.delta_rules
    in
    let run_iteration () =
      let t0 = Clock.now () in
      let processed = ref 0 in
      List.iter
        (fun (scan_cid, prepared) ->
          let batch = deltas.(scan_cid) in
          if not (Arena.is_empty batch) then begin
            heartbeats.(me) <- heartbeats.(me) + 1;
            processed := !processed + Eval.run_prepared prepared ~scan:(`Flat batch)
          end)
        emits;
      clear_deltas ();
      flush_outgoing ();
      let dt = Clock.now () -. t0 in
      ws.busy_time <- ws.busy_time +. dt;
      ws.tuples_processed <- ws.tuples_processed + !processed;
      Qmodel.record_service qm ~tuples:!processed ~elapsed:dt;
      ws.iterations <- ws.iterations + 1;
      Atomic.incr iter_counts.(me)
    in
    let timed_wait f =
      let t0 = Clock.now () in
      f ();
      ws.wait_time <- ws.wait_time +. (Clock.now () -. t0)
    in
    (* --- initialization: base rules over striped scans --- *)
    List.iter
      (fun (cr : Physical.compiled_rule) ->
        let prepared = Eval.prepare cr ctx ~emit:(emit_for cr.head.hpred) in
        match cr.scan with
        | Physical.S_unit -> if me = 0 then ignore (Eval.run_prepared prepared ~scan:`Unit)
        | Physical.S_base { pred; _ } ->
          let src = List.assoc pred scan_sources in
          let len = Arena.length src and arity = Arena.arity src in
          let sdata = Arena.data src in
          let stripe = Arena.create ~capacity:((len / n) + 1) ~arity () in
          let k = ref me in
          while !k < len do
            ignore (Arena.push_slice stripe sdata (!k * arity));
            k := !k + n
          done;
          ws.tuples_processed <-
            ws.tuples_processed + Eval.run_prepared prepared ~scan:(`Flat stripe)
        | Physical.S_delta _ -> assert false)
      sp.init_rules;
    flush_outgoing ();

    (* --- iteration loops per strategy --- *)
    (* A worker that observes cancellation (deadline, external token,
       watchdog) exits its loop quietly via [Poisoned] after poisoning
       the barrier, so peers blocked in [await] wake too; the structured
       error is raised once, after the join. *)
    let bail_if_cancelled () =
      if Atomic.get failed || Cancel.check token then begin
        Barrier.poison barrier;
        raise Dcd_concurrent.Barrier.Poisoned
      end
    in
    (match config.strategy with
    | Coord.Global ->
      let continue_ = ref true in
      while !continue_ do
        inject Fault.Loop ~worker:me;
        bail_if_cancelled ();
        timed_wait (fun () -> Barrier.await barrier);
        ignore (drain_and_merge ());
        if frozen () then clear_deltas ();
        Atomic.set nonempty.(me) (delta_size () > 0);
        timed_wait (fun () -> Barrier.await barrier);
        let any = Array.exists Atomic.get nonempty in
        if not any then continue_ := false
        else if Atomic.get nonempty.(me) then run_iteration ()
      done
    | Coord.Ssp s ->
      let backoff = Backoff.create () in
      let continue_ = ref true in
      while !continue_ do
        inject Fault.Loop ~worker:me;
        bail_if_cancelled ();
        ignore (drain_and_merge ());
        if frozen () then clear_deltas ();
        if delta_size () = 0 then begin
          Termination.set_active term ~worker:me false;
          inject Fault.Quiesce ~worker:me;
          if Termination.quiescent term then continue_ := false
          else timed_wait (fun () -> Backoff.once backoff)
        end
        else begin
          Termination.set_active term ~worker:me true;
          Backoff.reset backoff;
          (* bounded staleness gate: at most [s] iterations ahead of the
             slowest still-active worker *)
          let min_active () =
            let m = ref max_int in
            for j = 0 to n - 1 do
              if j = me || Termination.is_active term ~worker:j then
                m := min !m (Atomic.get iter_counts.(j))
            done;
            !m
          in
          while
            (not (Atomic.get failed || Cancel.is_set token))
            && Atomic.get iter_counts.(me) - min_active () > s
          do
            timed_wait (fun () ->
                Unix.sleepf 0.0002;
                ignore (drain_and_merge ()))
          done;
          run_iteration ()
        end
      done
    | Coord.Dws opts ->
      let backoff = Backoff.create () in
      let continue_ = ref true in
      while !continue_ do
        inject Fault.Loop ~worker:me;
        bail_if_cancelled ();
        ignore (drain_and_merge ());
        if frozen () then clear_deltas ();
        if delta_size () = 0 then begin
          Termination.set_active term ~worker:me false;
          inject Fault.Quiesce ~worker:me;
          if Termination.quiescent term then continue_ := false
          else timed_wait (fun () -> Backoff.once backoff)
        end
        else begin
          Termination.set_active term ~worker:me true;
          Backoff.reset backoff;
          let buffer_sizes = inbox_sizes ~dest:me in
          let decision = Qmodel.decide qm ~buffer_sizes in
          let sz = delta_size () in
          if float_of_int sz < decision.omega then begin
            (* wait up to τ (capped) for the delta to reach ω, collecting
               arriving tuples meanwhile; resume on timeout *)
            let deadline = Clock.now () +. Float.min decision.tau opts.tau_cap in
            let waiting = ref true in
            while !waiting do
              if Atomic.get failed || Cancel.is_set token then waiting := false
              else if Clock.now () >= deadline then waiting := false
              else begin
                timed_wait (fun () -> Unix.sleepf opts.poll_interval);
                ignore (drain_and_merge ());
                if float_of_int (delta_size ()) >= decision.omega then waiting := false
              end
            done
          end;
          run_iteration ();
          Qmodel.decay qm opts.decay
        end
      done);
    ()
  in
  (* Fault containment: if a worker dies (plan bug, arithmetic fault in a
     hook, OOM, injected crash), its peers must not wait for it forever —
     poison the barrier and raise a flag the barrier-free strategies
     poll.  Peers that die of the poisoning return quietly, so the
     failures [Domain_pool.run_collect] hands back are all genuine
     origins, never poisoned bystanders. *)
  let worker me =
    try worker_body me with
    | Dcd_concurrent.Barrier.Poisoned -> ()
    | e ->
      let bt = Printexc.get_raw_backtrace () in
      Atomic.set failed true;
      ignore (Cancel.cancel token Cancel.Peer_crash);
      Barrier.poison barrier;
      Printexc.raise_with_backtrace e bt
  in
  (* Guardian domain: stall watchdog + deadline/external-cancel poller.
     Spawned only when some guard is armed, so an unguarded run pays
     nothing.  Progress is useful work only (heartbeats, exchange
     counters, iterations); idle spinning does not count, which is what
     makes a quiescence livelock visible as a flat line. *)
  let stall_diag : Engine_error.stall_diagnostic option ref = ref None in
  let inbox_batches ~dest =
    match (spsc_queues, locked_queues) with
    | Some q, _ -> Array.fold_left (fun acc s -> acc + Chunk_queue.size s) 0 q.(dest)
    | None, Some q -> Dcd_concurrent.Locked_queue.size q.(dest)
    | None, None -> 0
  in
  let snapshot window =
    {
      Engine_error.stall_window = window;
      stall_strategy = Coord.to_string config.strategy;
      stall_sent = Termination.total_sent term;
      stall_consumed = Termination.total_consumed term;
      stall_workers =
        Array.init n (fun w ->
            {
              Engine_error.ws_worker = w;
              ws_active = Termination.is_active term ~worker:w;
              ws_iterations = Atomic.get iter_counts.(w);
              ws_consumed = Termination.consumed_of term ~worker:w;
              ws_inbox_tuples = Array.fold_left (fun acc c -> acc + Atomic.get c) 0 occupancy.(w);
              ws_inbox_batches = inbox_batches ~dest:w;
            });
    }
  in
  let guard = config.coord in
  let need_guardian =
    guard.stall_window <> None || guard.cancel <> None || Cancel.deadline token <> None
  in
  let guardian =
    if not need_guardian then None
    else
      let window = Option.value guard.stall_window ~default:infinity in
      Some
        (Watchdog.spawn ~window ~poll:guard.stall_poll
           ~progress:(fun () ->
             let acc = ref (Termination.total_sent term + Termination.total_consumed term) in
             for w = 0 to n - 1 do
               acc := !acc + heartbeats.(w) + Atomic.get iter_counts.(w)
             done;
             !acc)
           ~on_stall:(fun () ->
             stall_diag := Some (snapshot (Option.value guard.stall_window ~default:0.));
             ignore (Cancel.cancel token Cancel.Stall);
             Barrier.poison barrier)
           ~on_tick:(fun () -> if Cancel.check token then Barrier.poison barrier)
           ())
  in
  let pool_result =
    Fun.protect
      ~finally:(fun () -> Option.iter Watchdog.stop guardian)
      (fun () -> Domain_pool.run_collect ~workers:n worker)
  in
  (match pool_result with
  | Ok _ -> ()
  | Error failures ->
    let crashes =
      List.map
        (fun (f : Domain_pool.failure) ->
          { Engine_error.worker = f.index; error = f.error; backtrace = f.backtrace })
        failures
    in
    (match crashes with
    | first :: others ->
      raise
        (Engine_error.Error
           (Worker_crashed
              {
                worker = first.worker;
                error = first.error;
                backtrace = first.backtrace;
                others;
              }))
    | [] -> assert false));
  if Cancel.is_set token then begin
    match !stall_diag with
    | Some d -> raise (Engine_error.Error (Stalled d))
    | None -> raise_cancelled token
  end;

  (* --- materialize the primary-route union into the catalog --- *)
  List.iter
    (fun (pp : Physical.pred_plan) ->
      let primary = List.hd pp.routes in
      let cid = copy_id pp.pred primary in
      let total = ref 0 in
      for w = 0 to n - 1 do
        total := !total + Rec_store.length stores.(w).(cid)
      done;
      let rel = Relation.create ~size_hint:!total ~name:pp.pred ~arity:pp.arity () in
      for w = 0 to n - 1 do
        Rec_store.iter stores.(w).(cid) (fun tup -> ignore (Relation.add rel tup))
      done;
      Catalog.add_relation catalog rel)
    sp.pred_plans;
  Run_stats.add_stratum stats
    {
      Run_stats.preds = sp.stratum.preds;
      kind = Analysis.recursion_kind_to_string sp.stratum.kind;
      wall = Clock.now () -. t0;
      workers = wstats;
    }

(* --- top level --- *)

let run (plan : Physical.t) ~edb ~config =
  if config.workers < 1 then invalid_arg "Parallel.run: workers must be >= 1";
  (* One token guards the whole run (every stratum): caller-supplied or
     internal, with the timeout folded in as an absolute deadline. *)
  let token =
    match config.coord.cancel with
    | Some t -> t
    | None -> Cancel.create ()
  in
  (match config.coord.timeout with
  | Some s -> Cancel.arm_deadline token ~at:(Clock.now () +. s)
  | None -> ());
  let catalog = Catalog.create () in
  let stats = Run_stats.create () in
  let t0 = Clock.now () in
  (* load the EDB *)
  List.iter
    (fun (name, tuples) ->
      let arity =
        match List.assoc_opt name plan.Physical.info.arities with
        | Some a -> a
        | None -> if Vec.is_empty tuples then 0 else Array.length (Vec.get tuples 0)
      in
      Catalog.load catalog ~name ~arity tuples)
    edb;
  List.iter
    (fun pred -> ignore (Catalog.ensure catalog ~name:pred ~arity:(arity_of plan pred)))
    plan.Physical.info.edb;
  List.iter
    (fun (sp : Physical.stratum_plan) ->
      if Cancel.check token then raise_cancelled token;
      if sp.stratum.kind = Analysis.Nonrecursive then
        eval_nonrecursive plan catalog sp config ~token stats
      else eval_recursive plan catalog sp config ~token stats)
    plan.Physical.strata;
  stats.Run_stats.total_wall <- Clock.now () -. t0;
  { catalog; stats }

let relation_vec result name =
  match Catalog.find result.catalog name with
  | Some rel -> Relation.to_vec rel
  | None -> Vec.create ()
