(** Parallel bottom-up evaluation of a compiled program (paper §4, §6).

    This module is the thin stratum orchestrator over the layered
    runtime: it owns the run-wide resources — one persistent
    {!Dcd_concurrent.Domain_pool} of [workers] domains, the per-worker
    {!Worker.scratch}, the fault schedule and the watchdog guardian —
    and submits each stratum (in dependency order) as one job per pool
    worker.  The evaluation machinery itself lives below:

    - {!Exchange} — the inter-worker tuple fabric (SPSC matrix or
      locked-queue ablation), batching, occupancy and termination
      accounting;
    - {!Distribute} — the emit side: head-target routing into per-copy ×
      per-destination frames, partial aggregation and set dedup at flush;
    - {!Worker} — per-worker stores, delta arenas, prepared rule
      pipelines, and the step primitives (init scan striping,
      drain/merge, one semi-naive iteration);
    - {!Strategy} — the coordination loops driving those steps: [Global]
      barriers, [Ssp s] bounded staleness, or [Dws] with the {!Qmodel}
      controller (Algorithm 2).

    Both recursive and non-recursive strata evaluate on the same pool:
    non-recursive strata stripe their init-rule scans across the workers
    and converge after a single exchange round.  Domains are spawned
    exactly once per run, regardless of how many strata the program has.

    After a stratum reaches its global fixpoint, the union of its
    primary-route partitions is materialized into the catalog, where
    later strata (and the caller) read it. *)

(** The tuple-exchange fabric between workers.  [Spsc_exchange] is the
    paper's design (§6.1): a matrix of single-producer single-consumer
    queues maintained with atomics only.  [Locked_exchange] is the
    coarse-grained alternative the paper argues against — one
    mutex-protected multi-producer queue per destination — kept so the
    claim can be measured as an ablation. *)
type exchange = Exchange.kind =
  | Spsc_exchange
  | Locked_exchange

(** How drained candidates are folded into the recursive stores.
    [Batch_sorted] (the default) stages a drain's candidates into a
    per-store run, sorts it, self-dedups, and walks the B⁺-tree
    co-sequentially — one descent per leaf segment
    ({!Rec_store.merge_run}).  [Per_tuple] is the historical path — one
    index descent per drained tuple — kept as an escape hatch and for
    differential testing.  Fixpoints are identical for both. *)
type merge_path =
  | Batch_sorted
  | Per_tuple

type config = {
  workers : int;
  strategy : Coord.t;
  store_opts : Rec_store.opts;
  partial_agg : bool;
  max_iterations : int;
      (** cap on local iterations per worker (0 = unbounded).  Needed
          for programs whose aggregate fixpoint converges only
          numerically (PageRank); also a safety net. *)
  exchange : exchange;
  batch_tuples : int;
      (** maximum tuples per exchange batch.  [0] (the default) ships
          each (copy, destination) flush as a single batch regardless of
          size; [1] reproduces the historical per-tuple message framing;
          intermediate values bound consumer latency under very large
          flushes.  Fixpoints are identical for every setting. *)
  steal : bool;
      (** intra-iteration morsel-driven work stealing (default [true]).
          Large delta and init scans are split into fixed-size morsels
          on a per-worker lock-free deque; idle workers steal from the
          most-loaded peer and emit through their own exchange row.
          Off, or with [workers = 1], the engine behaves exactly as
          before the morsel board existed. *)
  morsel_tuples : int;
      (** scan tuples per morsel (default 2048).  Scans of at most
          twice this size run unsplit — too small to be worth the
          publish/claim traffic. *)
  merge : merge_path;
      (** delta-merge path (default [Batch_sorted]). *)
  coord : Coord.config;
      (** run guard: wall-clock timeout, caller-owned cancel token, and
          the stall watchdog.  All off by default; when off, the only
          residual cost is one atomic load per worker loop pass. *)
  fault : Dcd_concurrent.Fault.spec option;
      (** seeded fault injection for the stress harness.  [None] (the
          default) compiles the injection sites down to a static no-op
          closure call per loop pass / flush / batch — the per-tuple hot
          path has no hook at all. *)
  checkpoint_every : int;
      (** cut a recovery epoch every [n] fixpoint iterations ([0], the
          default, disables checkpointing).  Under the Global strategy
          the cut is taken at the vote barrier — already a quiescent
          point; SSP/DWS briefly rendezvous to force one. *)
  max_recoveries : int;
      (** how many worker crashes one run may transparently recover
          from by rolling back to the last committed epoch (or the
          stratum's base state) and re-running on a repaired pool.  [0]
          (the default) keeps the historical fail-fast behavior:
          {!Engine_error.Worker_crashed} on the first crash. *)
  maintain_workers : int;
      (** workers for incremental-maintenance delta joins ({!Maintain}):
          large seed scans and cascade sweeps dispatch onto the resident
          pool as steal-enabled morsel rounds.  [0] (the default) means
          "same as [workers]"; [1] forces the sequential interpreted
          path (the ablation baseline); values above [workers] are
          clamped.  Ignored by {!run} itself. *)
}

val default_config : config
(** 4 workers (or fewer if the machine recommends less), DWS, optimized
    stores, partial aggregation on, unbounded iterations, unbounded
    batches. *)

type result = {
  catalog : Catalog.t;
  stats : Run_stats.t;
}

(** A resident worker runtime: the persistent domain pool plus the
    per-worker scratch, created once and shared across many {!run}
    calls.  This is what keeps a serving {!Dcd_engine} session from
    re-spawning domains on every incremental recompute.  The caller owns
    it: {!run} with [?runtime] never shuts the pool down, and
    {!destroy_runtime} must be called exactly once when done.  Not
    thread-safe — at most one [run] may use a runtime at a time. *)
type runtime = {
  rt_workers : int;
  rt_pool : Dcd_concurrent.Domain_pool.t;
  rt_scratches : Worker.scratch array;
}

val create_runtime : workers:int -> runtime
(** Spawns the [workers] domains and allocates their scratch. *)

val destroy_runtime : runtime -> unit
(** Joins the pool's domains.  Idempotence follows
    {!Dcd_concurrent.Domain_pool.shutdown}. *)

val run :
  ?runtime:runtime ->
  Dcd_planner.Physical.t ->
  edb:(string * Dcd_storage.Tuple.t Dcd_util.Vec.t) list ->
  config:config ->
  result
(** Evaluates the program over the given EDB.  Relation names absent
    from [edb] but used as base tables evaluate as empty.  Spawns the
    worker pool (and the guardian, if any run guard is armed) once, and
    always tears both down before returning or raising — unless a
    [runtime] is supplied, in which case its pool and scratches are
    reused and left alive (its worker count must equal
    [config.workers]; a crash that exhausts [max_recoveries] may leave
    the shared pool with parked domains, so a caller sharing a runtime
    should treat an escaping error as fatal to the runtime).
    @raise Invalid_argument on arity mismatches in [edb].
    @raise Engine_error.Error when the run is cancelled (deadline or
    token), a worker crashes (the error names the faulting worker, with
    backtrace and any further genuine crashes), or the watchdog detects
    a stall — never a raw worker exception, and never a hang: workers
    are joined and the barrier poisoned before the error is raised. *)

val relation_vec : result -> string -> Dcd_storage.Tuple.t Dcd_util.Vec.t
(** Tuples of a materialized relation (empty if the relation is absent). *)
