(** Parallel bottom-up evaluation of a compiled program (paper §4, §6).

    Strata are evaluated in dependency order.  Non-recursive strata run
    single-threaded over the shared catalog.  Each recursive stratum is
    evaluated by [workers] OCaml domains:

    - every recursive predicate is partitioned across workers under each
      of its plan routes ({!Rec_store});
    - workers exchange delta tuples through a matrix of unbounded SPSC
      queues [M_i^j] (§6.1).  Tuples travel in {e batches}: each flush
      ships one message object per (copy, destination) carrying every
      tuple produced for it, so the queue push and the
      termination-counter updates are amortized over the whole batch
      rather than paid per tuple.  Global-fixpoint detection stays
      tuple-denominated (a batch of [k] tuples bumps the sent counter by
      [k] in a single atomic add);
    - the iteration structure is controlled by the configured
      {!Coord.t} strategy — [Global] barriers, [Ssp s] bounded
      staleness, or [Dws] with the {!Qmodel} controller (Algorithm 2);
    - the Distribute side optionally pre-combines min/max candidates per
      group and deduplicates set tuples per outgoing batch (partial
      aggregation, §5.2.3).

    After a stratum reaches its global fixpoint, the union of its
    primary-route partitions is materialized into the catalog, where
    later strata (and the caller) read it. *)

(** The tuple-exchange fabric between workers.  [Spsc_exchange] is the
    paper's design (§6.1): a matrix of single-producer single-consumer
    queues maintained with atomics only.  [Locked_exchange] is the
    coarse-grained alternative the paper argues against — one
    mutex-protected multi-producer queue per destination — kept so the
    claim can be measured as an ablation. *)
type exchange =
  | Spsc_exchange
  | Locked_exchange

type config = {
  workers : int;
  strategy : Coord.t;
  store_opts : Rec_store.opts;
  partial_agg : bool;
  max_iterations : int;
      (** cap on local iterations per worker (0 = unbounded).  Needed
          for programs whose aggregate fixpoint converges only
          numerically (PageRank); also a safety net. *)
  exchange : exchange;
  batch_tuples : int;
      (** maximum tuples per exchange batch.  [0] (the default) ships
          each (copy, destination) flush as a single batch regardless of
          size; [1] reproduces the historical per-tuple message framing;
          intermediate values bound consumer latency under very large
          flushes.  Fixpoints are identical for every setting. *)
  coord : Coord.config;
      (** run guard: wall-clock timeout, caller-owned cancel token, and
          the stall watchdog.  All off by default; when off, the only
          residual cost is one atomic load per worker loop pass. *)
  fault : Dcd_concurrent.Fault.spec option;
      (** seeded fault injection for the stress harness.  [None] (the
          default) compiles the injection sites down to a static no-op
          closure call per loop pass / flush / batch — the per-tuple hot
          path has no hook at all. *)
}

val default_config : config
(** 4 workers (or fewer if the machine recommends less), DWS, optimized
    stores, partial aggregation on, unbounded iterations, unbounded
    batches. *)

type result = {
  catalog : Catalog.t;
  stats : Run_stats.t;
}

val run :
  Dcd_planner.Physical.t ->
  edb:(string * Dcd_storage.Tuple.t Dcd_util.Vec.t) list ->
  config:config ->
  result
(** Evaluates the program over the given EDB.  Relation names absent
    from [edb] but used as base tables evaluate as empty.
    @raise Invalid_argument on arity mismatches in [edb].
    @raise Engine_error.Error when the run is cancelled (deadline or
    token), a worker crashes (the error names the faulting worker, with
    backtrace and any further genuine crashes), or the watchdog detects
    a stall — never a raw worker exception, and never a hang: workers
    are joined and the barrier poisoned before the error is raised. *)

val relation_vec : result -> string -> Dcd_storage.Tuple.t Dcd_util.Vec.t
(** Tuples of a materialized relation (empty if the relation is absent). *)
