module Stats = Dcd_util.Online_stats

type producer = {
  interarrival : Stats.t;
  mutable last_arrival : float;
  mutable seen : int;
}

type t = {
  producers : producer array;
  service : Stats.t; (* per-tuple service time, sampled per iteration *)
}

let create ~producers () =
  {
    producers =
      Array.init producers (fun _ ->
          { interarrival = Stats.create (); last_arrival = nan; seen = 0 });
    service = Stats.create ();
  }

let record_arrival t ~from ~now ~count =
  if count > 0 then begin
    let p = t.producers.(from) in
    if Float.is_nan p.last_arrival then p.last_arrival <- now
    else begin
      (* spread the batch gap across its tuples: a batch of k tuples
         arriving dt after the previous one approximates k arrivals of
         inter-arrival dt/k *)
      let dt = (now -. p.last_arrival) /. float_of_int count in
      Stats.add p.interarrival dt;
      p.last_arrival <- now
    end;
    p.seen <- p.seen + count
  end

let record_service t ~tuples ~elapsed =
  if tuples > 0 && elapsed > 0. then Stats.add t.service (elapsed /. float_of_int tuples)

type decision = {
  omega : float;
  tau : float;
  rho : float;
}

let no_wait = { omega = 0.; tau = 0.; rho = 0. }

(* Kingman prices waiting as pure idle time.  When the morsel board
   advertises stealable work, a wait pass is productive instead (the
   strategy loop fills it with stolen morsels), so the effective cost
   of waiting halves — modeled by stretching the wait budget τ rather
   than touching ω: the "enough delta to be worth running" threshold is
   about batching efficiency, not about what the wait costs. *)
let stealable_stretch = 2.

let decide ?(stealable = false) t ~buffer_sizes =
  (* Equation 1: combine per-producer arrival processes, weighted by the
     current buffer occupancies |M_i^j|. *)
  let weight_sum = ref 0. in
  let inv_rate_acc = ref 0. in
  let var_acc = ref 0. in
  Array.iteri
    (fun j p ->
      (* |M_i^j| weights the combination; an empty buffer still
         contributes its observed arrival process with unit weight,
         otherwise the model would go blind right after a drain *)
      let w = Float.max 1. (float_of_int buffer_sizes.(j)) in
      if Stats.count p.interarrival >= 2 then begin
        let mean_gap = Stats.mean p.interarrival in
        if mean_gap > 0. then begin
          weight_sum := !weight_sum +. w;
          inv_rate_acc := !inv_rate_acc +. (w *. mean_gap);
          var_acc := !var_acc +. (w *. (Stats.variance p.interarrival +. (mean_gap *. mean_gap)))
        end
      end)
    t.producers;
  if !weight_sum = 0. || Stats.count t.service < 2 then no_wait
  else begin
    let mean_gap = !inv_rate_acc /. !weight_sum in
    let lambda = 1. /. mean_gap in
    let sigma_a2 = Float.max 0. ((!var_acc /. !weight_sum) -. (mean_gap *. mean_gap)) in
    let service_mean = Stats.mean t.service in
    if service_mean <= 0. then no_wait
    else begin
      let mu = 1. /. service_mean in
      let sigma_s2 = Stats.variance t.service in
      let rho = lambda /. mu in
      if rho >= 1. then { no_wait with rho }
      else begin
        (* Equation 2: Kingman *)
        let ca2 = lambda *. lambda *. sigma_a2 in
        let cs2 = mu *. mu *. sigma_s2 in
        let lq = rho *. rho *. (ca2 +. cs2) /. (2. *. (1. -. rho)) in
        let tau = lq /. lambda in
        let tau = if stealable then tau *. stealable_stretch else tau in
        { omega = lq; tau; rho }
      end
    end
  end

let decay t f =
  Array.iter (fun p -> Stats.decay p.interarrival f) t.producers;
  Stats.decay t.service f

let reset t =
  Array.iter
    (fun p ->
      Stats.reset p.interarrival;
      p.last_arrival <- nan;
      p.seen <- 0)
    t.producers;
  Stats.reset t.service
