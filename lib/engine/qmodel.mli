(** The DWS queueing model (paper §4.2, Equations 1 and 2).

    Each worker [W_i] models itself as a G/G/1 queue: tuples arrive from
    the message buffers [M_i^j] and are serviced by local computation.
    From live statistics — per-producer mean arrival rate [λ_j] and
    inter-arrival variance [σ²_{a,j}], plus the worker's own service
    rate [μ] and variance [σ²_s] — Equation 1 combines the per-buffer
    arrival processes (weighted by buffer occupancy [|M_i^j|]) and
    Kingman's formula (Equation 2) estimates the steady-state queue
    length [L_q]:

    {v Lq ≈ ρ²(C_a² + C_s²) / (2(1 − ρ)) v}

    with [ρ = λ/μ], [C_a² = λ²σ_a²], [C_s² = μ²σ_s²].  The decision
    threshold is [ω_i = L_q] and the wait budget [τ_i = L_q / λ] (the
    mean queue wait).  When the system is unstable ([ρ ≥ 1] — tuples
    arrive faster than they can be processed) waiting is pointless and
    the model returns [ω = 0].

    One [t] belongs to one worker; not thread-safe. *)

type t

val create : producers:int -> unit -> t
(** [producers] is the number of peer workers feeding this one. *)

val record_arrival : t -> from:int -> now:float -> count:int -> unit
(** Notes that [count] tuples from producer [from] were observed at time
    [now]; updates that buffer's inter-arrival statistics. *)

val record_service : t -> tuples:int -> elapsed:float -> unit
(** Notes that one local iteration processed [tuples] delta tuples in
    [elapsed] seconds. *)

type decision = {
  omega : float; (** ω_i: proceed when the pending delta is at least this *)
  tau : float; (** τ_i: maximum seconds to wait for more tuples *)
  rho : float; (** utilization, for diagnostics *)
}

val decide : ?stealable:bool -> t -> buffer_sizes:int array -> decision
(** Evaluates Equations 1–2 against the current statistics.  With no
    statistics yet (cold start), returns [omega = 0] so workers never
    stall before the model has data.  [stealable] (default [false])
    signals that the morsel board currently advertises stealable work:
    a wait pass is then productive rather than idle, so the wait budget
    [tau] is stretched (ω is unchanged — it prices batching efficiency,
    not idleness). *)

val decay : t -> float -> unit
(** Exponential forgetting of all statistics, to track phase changes of
    the fixpoint computation. *)

val reset : t -> unit
(** Discards all statistics, returning the model to its cold-start
    state (it answers [omega = 0] until it has data again).  Used when a
    persistent worker carries its model from one stratum to the next:
    the arrival process of the new fixpoint shares nothing with the old
    one. *)
