open Dcd_datalog
module Tuple = Dcd_storage.Tuple
module Arena = Dcd_storage.Arena
module Agg_table = Dcd_storage.Agg_table
module Run_buffer = Dcd_storage.Run_buffer
module Bptree = Dcd_btree.Bptree

type opts = {
  agg_backend : Agg_table.backend;
  use_cache : bool;
  track_log : bool;
}

let default_opts = { agg_backend = Agg_table.Indexed; use_cache = true; track_log = false }

let unoptimized_opts = { agg_backend = Agg_table.Scan; use_cache = false; track_log = false }

let agg_kind_of_ast = function
  | Ast.Min -> Agg_table.Min
  | Ast.Max -> Agg_table.Max
  | Ast.Count -> Agg_table.Count
  | Ast.Sum -> Agg_table.Sum

type store =
  | Set of Tuple.t Bptree.t (* permuted tuple -> canonical tuple *)
  | Agg of {
      table : Agg_table.t; (* keyed by route-permuted group *)
      kind : Ast.agg_kind;
      value_pos : int;
    }

type t = {
  arity : int;
  (* canonical column ids in permuted (route-first) order; excludes the
     aggregate value position for aggregate stores *)
  order : int array;
  mutable store : store; (* reassigned only by checkpoint [rollback] *)
  (* append-only insertion log of canonical tuples (Set stores under
     [track_log] only): a checkpoint of a set store is just this log's
     length, and rollback is truncate + index rebuild from the surviving
     prefix.  Invariant: [Arena.length log = Bptree.length tree]. *)
  log : Arena.t option;
  (* batch-sorted merge scratch: candidates staged during a drain, then
     sorted and folded in one co-sequential index walk (merge_run) *)
  run : Run_buffer.t;
  cache : Exist_cache.t option;
  (* reusable permuted-key buffer: a merge probe that is absorbed (cache
     hit or existing tuple) allocates nothing.  Everything the scratch
     key is handed to either uses it transiently (B⁺-tree search,
     hashtable probe) or copies it on retention (B⁺-tree insert); the
     sites that retain keys themselves (existence cache, flat agg table)
     copy explicitly. *)
  scratch : int array;
}

let permuted_order ~arity ~route ~skip =
  let in_route c = Array.exists (fun r -> r = c) route in
  let rest = ref [] in
  for c = arity - 1 downto 0 do
    if (not (in_route c)) && skip <> Some c then rest := c :: !rest
  done;
  Array.append route (Array.of_list !rest)

let create ~arity ~agg ~route ~opts () =
  let store, skip =
    match agg with
    | None -> (Set (Bptree.create ()), None)
    | Some (value_pos, kind) ->
      ( Agg
          {
            table =
              Agg_table.create ~backend:opts.agg_backend ~kind:(agg_kind_of_ast kind)
                ~group_arity:(arity - 1) ();
            kind;
            value_pos;
          },
        Some value_pos )
  in
  let order = permuted_order ~arity ~route ~skip in
  {
    arity;
    order;
    store;
    log =
      (match store with
      | Set _ when opts.track_log -> Some (Arena.create ~arity ())
      | _ -> None);
    run =
      (* aggregate copies' frames carry a contributor suffix (empty for
         min/max), matching Exchange.contrib *)
      Run_buffer.create ~arity
        ~contrib:(match store with Agg _ -> true | Set _ -> false)
        ~key_cols:order ();
    cache = (if opts.use_cache then Some (Exist_cache.create ()) else None);
    scratch = Array.make (Array.length order) 0;
  }

(* Fills the scratch buffer with the route-permuted key of the tuple
   stored flat at [data.(off ..)] and returns it.  Valid until the next
   [permute] on the same store. *)
let permute t (data : int array) off =
  let k = t.scratch and order = t.order in
  for i = 0 to Array.length order - 1 do
    Array.unsafe_set k i (Array.unsafe_get data (off + Array.unsafe_get order i))
  done;
  k

(* Rebuilds a canonical tuple from a permuted group key and the
   aggregate value. *)
let canonical_of_group t group value value_pos =
  let out = Array.make t.arity 0 in
  Array.iteri (fun i c -> out.(c) <- group.(i)) t.order;
  out.(value_pos) <- value;
  out

let absorbed_by_cache kind cached candidate =
  match kind with
  | Ast.Min -> candidate >= cached
  | Ast.Max -> candidate <= cached
  | Ast.Count | Ast.Sum -> false (* contributor dedup must still run *)

(* Core merge over flat cursors: [data.(off ..)] is the candidate in
   canonical order, [cdata.(coff .. coff+clen-1)] its contributor key
   (clen = 0 for none).  Both are read transiently — everything retained
   (B⁺-tree value, cache key, agg contributor) is copied here, so the
   caller may pass scratch buffers or packed-frame slices directly. *)
let merge_slice t ~data ~off ~cdata ~coff ~clen =
  match t.store with
  | Set tree -> (
    let key = permute t data off in
    match t.cache with
    | Some cache when Exist_cache.find cache key <> None -> None
    | _ ->
      (* single descent: probe and insert in one pass; the stored value
         is materialized only on an actual insert *)
      let stored = Bptree.add_if_absent_lazy tree key (fun () -> Array.sub data off t.arity) in
      (* the cache retains its key beyond this call: materialize the scratch *)
      (match t.cache with Some c -> Exist_cache.put c (Array.copy key) 1 | None -> ());
      (match stored, t.log with
      | Some tuple, Some log -> ignore (Arena.push log tuple)
      | _ -> ());
      stored)
  | Agg { table; kind; value_pos } -> (
    let group = permute t data off in
    let v = data.(off + value_pos) in
    let cache_absorbs =
      match t.cache with
      | Some cache -> (
        match Exist_cache.find cache group with
        | Some cached -> absorbed_by_cache kind cached v
        | None -> false)
      | None -> false
    in
    if cache_absorbs then None
    else begin
      let contributor = if clen = 0 then None else Some (Array.sub cdata coff clen) in
      match Agg_table.merge table ~group ?contributor v with
      | None -> None (* cache entries are only refreshed on change: any
                        cached value remains a sound monotone bound *)
      | Some updated ->
        (match t.cache with Some c -> Exist_cache.put c (Array.copy group) updated | None -> ());
        Some (canonical_of_group t group updated value_pos)
    end)

let merge t ~tuple ~contributor =
  merge_slice t ~data:tuple ~off:0 ~cdata:contributor ~coff:0
    ~clen:(Array.length contributor)

(* --- batch-sorted merge path --- *)

(* Stages one candidate into the run instead of merging it immediately.
   The existence cache is still probed here — a hit drops the candidate
   without staging it, exactly like the per-tuple path's front cache —
   but the authoritative index is not touched until [merge_run]. *)
let stage_slice t ~data ~off ~cdata ~coff ~clen =
  match t.store with
  | Set _ -> (
    match t.cache with
    | Some cache when Exist_cache.find cache (permute t data off) <> None -> ()
    | _ -> Run_buffer.stage_slice t.run ~data ~off ~cdata ~coff ~clen)
  | Agg { kind; value_pos; _ } ->
    let absorbed =
      match t.cache with
      | Some cache -> (
        match Exist_cache.find cache (permute t data off) with
        | Some cached -> absorbed_by_cache kind cached data.(off + value_pos)
        | None -> false)
      | None -> false
    in
    if not absorbed then Run_buffer.stage_slice t.run ~data ~off ~cdata ~coff ~clen

let staged t = Run_buffer.length t.run

(* Folds the staged run into the store in one sorted pass: sort by
   permuted key (stable on ties), self-dedup inside the run, then one
   co-sequential B⁺-tree walk ([Bptree.merge_sorted_slice] /
   [Agg_table.apply_sorted]) instead of one descent per tuple.  Calls
   [on_fresh] with the canonical delta tuple for every store change and
   returns [(merged, dup_dropped)]: candidates handed to the index walk
   after self-dedup / contributor absorption, and candidates dropped
   before reaching it. *)
let merge_run t ~on_fresh =
  let rb = t.run in
  let n = Run_buffer.length rb in
  if n = 0 then (0, 0)
  else begin
    Run_buffer.sort rb;
    let pool = Run_buffer.data rb in
    let result =
      match t.store with
      | Set tree ->
        (* the key covers every column, so equal keys are identical
           tuples: keep the first, like repeated add_if_absent would *)
        let ukeys = Array.make n [||] in
        let uoff = Array.make n 0 in
        let u = ref 0 in
        for i = 0 to n - 1 do
          if i = 0 || not (Run_buffer.equal_keys rb (i - 1) i) then begin
            ukeys.(!u) <- Run_buffer.key rb i;
            uoff.(!u) <- Run_buffer.off rb i;
            incr u
          end
        done;
        let m = !u in
        Bptree.merge_sorted_slice tree ~n:m
          ~key:(fun i -> ukeys.(i))
          ~merge:(fun i existing ->
            match existing with
            | Some _ -> None
            | None ->
              let tuple = Array.sub pool uoff.(i) t.arity in
              (match t.log with Some log -> ignore (Arena.push log tuple) | None -> ());
              on_fresh tuple;
              Some tuple);
        (* every probed key now has a known answer: bulk-refresh the
           cache from the walk instead of per-probe puts *)
        (match t.cache with
        | Some c -> Exist_cache.warm c ~n:m ~key:(fun i -> ukeys.(i)) ~value:(fun _ -> 1)
        | None -> ());
        (m, n - m)
      | Agg { table; value_pos; _ } ->
        let akind = Agg_table.kind table in
        let groups = Array.make n [||] in
        let values = Array.make n 0 in
        let g = ref 0 in
        let i = ref 0 in
        while !i < n do
          let s = !i in
          let group = Run_buffer.key rb s in
          (* normalize the group's candidates in staging order (the sort
             is stable), so Sum's last-contribution-wins replacement
             matches the per-tuple path, then pre-combine survivors *)
          let acc = ref None in
          let j = ref s in
          let more = ref true in
          while !more do
            let o = Run_buffer.off rb !j in
            let v = pool.(o + value_pos) in
            let cl = Run_buffer.clen rb !j in
            let contributor =
              if cl = 0 then None else Some (Array.sub pool (Run_buffer.coff rb !j) cl)
            in
            (match Agg_table.normalize_candidate table ~group ?contributor v with
            | None -> ()
            | Some nv ->
              acc := Some (match !acc with None -> nv | Some a -> Agg_table.combine akind a nv));
            incr j;
            if !j >= n || not (Run_buffer.equal_keys rb (!j - 1) !j) then more := false
          done;
          (match !acc with
          | Some v ->
            groups.(!g) <- group;
            values.(!g) <- v;
            incr g
          | None -> ());
          i := !j
        done;
        let m = !g in
        Agg_table.apply_sorted table ~n:m
          ~group:(fun i -> groups.(i))
          ~value:(fun i -> values.(i))
          ~changed:(fun i v' ->
            (* cache refreshed only on change, like the per-tuple path:
               stale cached values stay sound monotone bounds *)
            (match t.cache with Some c -> Exist_cache.put c groups.(i) v' | None -> ());
            on_fresh (canonical_of_group t groups.(i) v' value_pos));
        (m, n - m)
    in
    Run_buffer.clear rb;
    result
  end

let iter_matches t ~key f =
  match t.store with
  | Set tree -> Bptree.iter_prefix tree ~prefix:key (fun _ tuple -> f tuple 0)
  | Agg { table; value_pos; _ } ->
    Agg_table.iter_prefix table ~prefix:key (fun group v ->
        f (canonical_of_group t group v value_pos) 0)

let iter t f =
  match t.store with
  | Set tree -> Bptree.iter tree (fun _ tuple -> f tuple)
  | Agg { table; value_pos; _ } ->
    Agg_table.iter table (fun group v -> f (canonical_of_group t group v value_pos))

let length t =
  match t.store with
  | Set tree -> Bptree.length tree
  | Agg { table; _ } -> Agg_table.length table

let cache_stats t =
  Option.map (fun c -> (Exist_cache.hits c, Exist_cache.misses c)) t.cache

(* --- checkpoint snapshot / rollback --- *)

type snapshot =
  | Snap_set of int (* insertion-log watermark *)
  | Snap_agg of Agg_table.snapshot

let snapshot t =
  match t.store with
  | Set _ -> (
    match t.log with
    | Some log -> Snap_set (Arena.length log)
    | None -> invalid_arg "Rec_store.snapshot: set store created without track_log")
  | Agg { table; _ } -> Snap_agg (Agg_table.snapshot table)

(* Restores the store to the snapshotted state, returning the number of
   tuples (set) / groups (aggregate) rolled back.  The existence cache
   is dropped wholesale: a cached entry can describe state newer than
   the restored store — for a monotone aggregate even a bound that no
   longer holds — and would silently absorb candidates that must
   re-derive.  Any candidates staged in the run buffer belong to the
   crashed round and are dropped too. *)
let rollback t snap =
  Run_buffer.clear t.run;
  (match t.cache with Some c -> Exist_cache.clear c | None -> ());
  match (t.store, snap) with
  | Set _, Snap_set wm ->
    let log =
      match t.log with
      | Some l -> l
      | None -> invalid_arg "Rec_store.rollback: set store created without track_log"
    in
    let rolled = Arena.length log - wm in
    if rolled < 0 then invalid_arg "Rec_store.rollback: watermark ahead of log";
    Arena.truncate log ~count:wm;
    (* index rebuild from the surviving log prefix; [Bptree] copies keys
       defensively, so the permute scratch is safe to pass *)
    let tree = Bptree.create () in
    Arena.iter_slices log (fun data off ->
        let key = permute t data off in
        ignore (Bptree.add_if_absent_lazy tree key (fun () -> Array.sub data off t.arity)));
    t.store <- Set tree;
    rolled
  | Agg agg, Snap_agg sn ->
    let before = Agg_table.length agg.table in
    Agg_table.restore agg.table sn;
    max 0 (before - Agg_table.length agg.table)
  | Set _, Snap_agg _ | Agg _, Snap_set _ ->
    invalid_arg "Rec_store.rollback: snapshot shape mismatch"
