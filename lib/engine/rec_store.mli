(** One worker's partition of one route-copy of a recursive relation.

    Recursive predicates are partitioned across workers by the hash of
    their route columns (paper §2.2); non-linear recursion additionally
    replicates a relation under several routes (§4.3), so the engine
    materializes one [Rec_store.t] per (predicate, route, worker).

    Internally the store is either a set relation — a B⁺-tree on the
    route-permuted tuple, the paper's recursive-table index — or an
    aggregate relation backed by {!Dcd_storage.Agg_table}.  All tuples
    are exchanged and returned in the predicate's canonical column
    order; the permutation needed to make the route columns a B⁺-tree
    prefix is internal.

    A store is owned by exactly one worker; no synchronization inside. *)

open Dcd_datalog

type opts = {
  agg_backend : Dcd_storage.Agg_table.backend;
      (** [Indexed] = paper-optimized merge; [Scan] = Table 4 "w/o" *)
  use_cache : bool; (** §6.2.2 existence-check cache *)
}

val default_opts : opts

val unoptimized_opts : opts

type t

val create :
  arity:int -> agg:(int * Ast.agg_kind) option -> route:int array -> opts:opts -> unit -> t

val merge : t -> tuple:Dcd_storage.Tuple.t -> contributor:Dcd_storage.Tuple.t -> Dcd_storage.Tuple.t option
(** Folds one candidate (canonical order) into the store.  For
    aggregate stores [contributor] carries the count/sum contributor
    key ([[||]] otherwise).  Returns the canonical delta tuple when the
    store changed — for aggregates this carries the {e updated}
    aggregate value, which may differ from the candidate's.  Both
    inputs are read transiently (anything retained is copied), so they
    may be scratch buffers. *)

val merge_slice :
  t ->
  data:int array ->
  off:int ->
  cdata:int array ->
  coff:int ->
  clen:int ->
  Dcd_storage.Tuple.t option
(** {!merge} reading the candidate straight out of flat storage: the
    tuple is [data.(off .. off+arity-1)], the contributor
    [cdata.(coff .. coff+clen-1)] ([clen = 0] for none).  This is how
    packed exchange frames are folded in without materializing boxed
    tuples for absorbed candidates. *)

val iter_matches : t -> key:int array -> (int array -> int -> unit) -> unit
(** All current tuples whose route columns equal [key], canonical
    order, passed as [(data, off)] cursors valid only during the call.
    This is the recursive-relation side of an index join. *)

val iter : t -> (Dcd_storage.Tuple.t -> unit) -> unit
(** Full scan in unspecified order (used to collect final results). *)

val length : t -> int

val cache_stats : t -> (int * int) option
(** (hits, misses) of the existence cache, if enabled. *)
