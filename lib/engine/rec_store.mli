(** One worker's partition of one route-copy of a recursive relation.

    Recursive predicates are partitioned across workers by the hash of
    their route columns (paper §2.2); non-linear recursion additionally
    replicates a relation under several routes (§4.3), so the engine
    materializes one [Rec_store.t] per (predicate, route, worker).

    Internally the store is either a set relation — a B⁺-tree on the
    route-permuted tuple, the paper's recursive-table index — or an
    aggregate relation backed by {!Dcd_storage.Agg_table}.  All tuples
    are exchanged and returned in the predicate's canonical column
    order; the permutation needed to make the route columns a B⁺-tree
    prefix is internal.

    A store is owned by exactly one worker; no synchronization inside. *)

open Dcd_datalog

type opts = {
  agg_backend : Dcd_storage.Agg_table.backend;
      (** [Indexed] = paper-optimized merge; [Scan] = Table 4 "w/o" *)
  use_cache : bool; (** §6.2.2 existence-check cache *)
  track_log : bool;
      (** keep an append-only insertion log on set stores so the store
          can be checkpointed ({!snapshot} is then an O(1) watermark)
          and rolled back.  Off by default: crash recovery turns it on. *)
}

val default_opts : opts

val unoptimized_opts : opts

type t

val create :
  arity:int -> agg:(int * Ast.agg_kind) option -> route:int array -> opts:opts -> unit -> t

val merge : t -> tuple:Dcd_storage.Tuple.t -> contributor:Dcd_storage.Tuple.t -> Dcd_storage.Tuple.t option
(** Folds one candidate (canonical order) into the store.  For
    aggregate stores [contributor] carries the count/sum contributor
    key ([[||]] otherwise).  Returns the canonical delta tuple when the
    store changed — for aggregates this carries the {e updated}
    aggregate value, which may differ from the candidate's.  Both
    inputs are read transiently (anything retained is copied), so they
    may be scratch buffers. *)

val merge_slice :
  t ->
  data:int array ->
  off:int ->
  cdata:int array ->
  coff:int ->
  clen:int ->
  Dcd_storage.Tuple.t option
(** {!merge} reading the candidate straight out of flat storage: the
    tuple is [data.(off .. off+arity-1)], the contributor
    [cdata.(coff .. coff+clen-1)] ([clen = 0] for none).  This is how
    packed exchange frames are folded in without materializing boxed
    tuples for absorbed candidates. *)

val stage_slice :
  t ->
  data:int array ->
  off:int ->
  cdata:int array ->
  coff:int ->
  clen:int ->
  unit
(** The batch-sorted alternative to {!merge_slice}: stages the candidate
    into the store's scratch run instead of merging it immediately.  The
    existence cache is still probed here (a hit drops the candidate
    without staging), but the authoritative index is untouched until
    {!merge_run}.  Inputs are copied into the run pool. *)

val staged : t -> int
(** Candidates currently staged and not yet folded by {!merge_run}. *)

val merge_run : t -> on_fresh:(Dcd_storage.Tuple.t -> unit) -> int * int
(** Folds the staged run into the store in one sorted pass: sorts the
    run by permuted key, self-dedups it, and walks the index
    co-sequentially — one descent per leaf segment instead of one per
    tuple ({!Dcd_btree.Bptree.merge_sorted_slice}).  [on_fresh] fires
    with the canonical delta tuple for every store change, in key order.
    Returns [(merged, dup_dropped)]: candidates handed to the index walk
    after self-dedup/contributor absorption, and candidates dropped
    before reaching it.  Equivalent to {!merge_slice} per staged
    candidate in staging order: final store state identical, and the
    deltas match the per-tuple path's last delta per group — except a
    Sum run whose contributions net to zero against an existing group,
    where the per-tuple path emits a cancelling delta pair and the
    batch path (soundly) emits nothing. *)

val iter_matches : t -> key:int array -> (int array -> int -> unit) -> unit
(** All current tuples whose route columns equal [key], canonical
    order, passed as [(data, off)] cursors valid only during the call.
    This is the recursive-relation side of an index join. *)

val iter : t -> (Dcd_storage.Tuple.t -> unit) -> unit
(** Full scan in unspecified order (used to collect final results). *)

val length : t -> int

val cache_stats : t -> (int * int) option
(** (hits, misses) of the existence cache, if enabled. *)

(** {1 Checkpoint snapshot / rollback} *)

type snapshot
(** The store's contribution to a checkpoint epoch.  For a set store
    this is an O(1) watermark into its append-only insertion log (so
    cutting an epoch costs nothing proportional to the relation); for an
    aggregate store it is a deep value snapshot including the
    contributor-dedup state ({!Dcd_storage.Agg_table.snapshot}). *)

val snapshot : t -> snapshot
(** @raise Invalid_argument on a set store created without
    [track_log]. *)

val rollback : t -> snapshot -> int
(** Restores the store to exactly the snapshotted state: set stores
    truncate the log to the watermark and rebuild the B⁺-tree from the
    surviving prefix; aggregate stores restore groups {e and}
    contributor state.  The existence cache is dropped (a cached value
    can be newer than the restored store and would wrongly absorb
    re-derived candidates) and any staged run candidates are discarded.
    Returns the number of tuples/groups rolled back.  The snapshot
    survives the call — a second-level retry may roll back again. *)
