type worker = {
  mutable iterations : int;
  mutable tuples_processed : int;
  mutable tuples_sent : int;
  mutable batches_sent : int;
  mutable words_sent : int;
  mutable tuples_drained : int;
  mutable merge_time : float;
  mutable merged_tuples : int;
  mutable dup_dropped : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable steals : int;
  mutable morsels_executed : int;
  mutable stolen_tuples : int;
  mutable wait_time : float;
  mutable busy_time : float;
  mutable checkpoint_time : float;
}

type recovery = {
  mutable recoveries : int;
  mutable epochs_cut : int;
  mutable rolled_back_tuples : int;
  mutable rerun_iterations : int;
}

type stratum = {
  preds : string list;
  kind : string;
  wall : float;
  setup : float;
  evaluate : float;
  materialize : float;
  workers : worker array;
}

type maintain_worker = {
  mutable mw_join_s : float;
  mutable mw_morsels : int;
  mutable mw_steals : int;
  mutable mw_stolen : int;
}

type maintenance = {
  mutable batches : int;
  mutable base_inserted : int;
  mutable base_deleted : int;
  mutable inserted : int;
  mutable deleted : int;
  mutable overdeleted : int;
  mutable rederived : int;
  mutable recomputed_strata : int;
  mutable maintain_s : float;
  mutable coalesced : int;
  mutable mworkers : maintain_worker array;
}

let fresh_maintain_worker () = { mw_join_s = 0.; mw_morsels = 0; mw_steals = 0; mw_stolen = 0 }

(* Grows the per-maintenance-worker array on demand: the session layer
   folds whatever width {!Maintain.batch_report.br_workers} reports. *)
let maintain_worker m i =
  let n = Array.length m.mworkers in
  if i >= n then
    m.mworkers <-
      Array.init (i + 1) (fun j -> if j < n then m.mworkers.(j) else fresh_maintain_worker ());
  m.mworkers.(i)

type t = {
  mutable strata : stratum list;
  mutable total_wall : float;
  recovery : recovery;
  maintenance : maintenance;
}

let create () =
  {
    strata = [];
    total_wall = 0.;
    recovery = { recoveries = 0; epochs_cut = 0; rolled_back_tuples = 0; rerun_iterations = 0 };
    maintenance =
      {
        batches = 0;
        base_inserted = 0;
        base_deleted = 0;
        inserted = 0;
        deleted = 0;
        overdeleted = 0;
        rederived = 0;
        recomputed_strata = 0;
        maintain_s = 0.;
        coalesced = 0;
        mworkers = [||];
      };
  }

let fresh_worker () =
  {
    iterations = 0;
    tuples_processed = 0;
    tuples_sent = 0;
    batches_sent = 0;
    words_sent = 0;
    tuples_drained = 0;
    merge_time = 0.;
    merged_tuples = 0;
    dup_dropped = 0;
    cache_hits = 0;
    cache_misses = 0;
    steals = 0;
    morsels_executed = 0;
    stolen_tuples = 0;
    wait_time = 0.;
    busy_time = 0.;
    checkpoint_time = 0.;
  }

let add_stratum t s = t.strata <- t.strata @ [ s ]

let sum_strata t f =
  List.fold_left
    (fun acc s -> acc + Array.fold_left (fun a w -> a + f w) 0 s.workers)
    0 t.strata

let total_iterations t =
  List.fold_left
    (fun acc s -> acc + Array.fold_left (fun m w -> max m w.iterations) 0 s.workers)
    0 t.strata

let total_wait t =
  List.fold_left
    (fun acc s -> acc +. Array.fold_left (fun a w -> a +. w.wait_time) 0. s.workers)
    0. t.strata

let total_sent t = sum_strata t (fun w -> w.tuples_sent)

let total_words t = sum_strata t (fun w -> w.words_sent)

let total_batches t = sum_strata t (fun w -> w.batches_sent)

let total_drained t = sum_strata t (fun w -> w.tuples_drained)

let total_merged t = sum_strata t (fun w -> w.merged_tuples)

let total_dup_dropped t = sum_strata t (fun w -> w.dup_dropped)

let total_cache_hits t = sum_strata t (fun w -> w.cache_hits)

let total_cache_misses t = sum_strata t (fun w -> w.cache_misses)

let total_merge_time t =
  List.fold_left
    (fun acc s -> acc +. Array.fold_left (fun a w -> a +. w.merge_time) 0. s.workers)
    0. t.strata

let total_steals t = sum_strata t (fun w -> w.steals)

let total_checkpoint_time t =
  List.fold_left
    (fun acc s -> acc +. Array.fold_left (fun a w -> a +. w.checkpoint_time) 0. s.workers)
    0. t.strata

let total_stolen_tuples t = sum_strata t (fun w -> w.stolen_tuples)

(* max/mean of per-worker busy time summed across strata: 1.0 is a
   perfectly balanced run, the paper's skew pathology shows up as one
   worker's busy time dwarfing the mean.  Stolen morsels are accounted
   to the thief's busy time, so effective stealing pulls this toward 1. *)
let busy_imbalance t =
  match t.strata with
  | [] -> 1.
  | first :: _ ->
    let n = Array.length first.workers in
    if n = 0 then 1.
    else begin
      let busy = Array.make n 0. in
      List.iter
        (fun s ->
          Array.iteri (fun i w -> if i < n then busy.(i) <- busy.(i) +. w.busy_time) s.workers)
        t.strata;
      let max_b = Array.fold_left Float.max 0. busy in
      let mean_b = Array.fold_left ( +. ) 0. busy /. float_of_int n in
      if mean_b <= 0. then 1. else max_b /. mean_b
    end

let stratum_imbalance s =
  let n = Array.length s.workers in
  if n = 0 then 1.
  else begin
    let max_b = Array.fold_left (fun a w -> Float.max a w.busy_time) 0. s.workers in
    let mean_b =
      Array.fold_left (fun a w -> a +. w.busy_time) 0. s.workers /. float_of_int n
    in
    if mean_b <= 0. then 1. else max_b /. mean_b
  end

let pp fmt t =
  Format.fprintf fmt
    "total wall %.3fs, %d global iterations, %.3fs idle, %d tuples sent, %d steals (%d tuples), \
     busy imbalance %.2f@."
    t.total_wall (total_iterations t) (total_wait t) (total_sent t) (total_steals t)
    (total_stolen_tuples t) (busy_imbalance t);
  let r = t.recovery in
  if r.recoveries > 0 || r.epochs_cut > 0 then
    Format.fprintf fmt
      "  recovery: %d recoveries, %d epochs cut (%.3fs checkpointing), %d tuples rolled back, %d \
       iterations re-run@."
      r.recoveries r.epochs_cut (total_checkpoint_time t) r.rolled_back_tuples r.rerun_iterations;
  let m = t.maintenance in
  if m.batches > 0 then begin
    Format.fprintf fmt
      "  maintenance: %d batches in %.3fs, base +%d/-%d, derived +%d/-%d, %d overdeleted, %d \
       rederived, %d strata recomputed@."
      m.batches m.maintain_s m.base_inserted m.base_deleted m.inserted m.deleted m.overdeleted
      m.rederived m.recomputed_strata;
    if m.coalesced > 0 then
      Format.fprintf fmt "    coalesced: %d caller batches merged into shared rounds@."
        m.coalesced;
    Array.iteri
      (fun i w ->
        if w.mw_morsels > 0 || w.mw_join_s > 0. then
          Format.fprintf fmt "    mw%d: %d morsels (%d stolen, %d tuples), join %.3fs@." i
            w.mw_morsels w.mw_steals w.mw_stolen w.mw_join_s)
      m.mworkers
  end;
  List.iter
    (fun s ->
      Format.fprintf fmt
        "  stratum {%s} (%s): %.3fs (setup %.3fs, evaluate %.3fs, materialize %.3fs), imbalance %.2f@."
        (String.concat "," s.preds) s.kind s.wall s.setup s.evaluate s.materialize
        (stratum_imbalance s);
      Array.iteri
        (fun i w ->
          Format.fprintf fmt
            "    w%d: %d iters, %d in, %d out (%d batches, %d words), %d morsels (%d stolen, %d \
             tuples), busy %.3fs, idle %.3fs@."
            i w.iterations w.tuples_processed w.tuples_sent w.batches_sent w.words_sent
            w.morsels_executed w.steals w.stolen_tuples w.busy_time w.wait_time;
          Format.fprintf fmt
            "        merge %.3fs: %d merged, %d dups dropped, cache %d hit / %d miss@."
            w.merge_time w.merged_tuples w.dup_dropped w.cache_hits w.cache_misses)
        s.workers)
    t.strata
