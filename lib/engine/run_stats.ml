type worker = {
  mutable iterations : int;
  mutable tuples_processed : int;
  mutable tuples_sent : int;
  mutable batches_sent : int;
  mutable words_sent : int;
  mutable wait_time : float;
  mutable busy_time : float;
}

type stratum = {
  preds : string list;
  kind : string;
  wall : float;
  setup : float;
  evaluate : float;
  materialize : float;
  workers : worker array;
}

type t = {
  mutable strata : stratum list;
  mutable total_wall : float;
}

let create () = { strata = []; total_wall = 0. }

let fresh_worker () =
  {
    iterations = 0;
    tuples_processed = 0;
    tuples_sent = 0;
    batches_sent = 0;
    words_sent = 0;
    wait_time = 0.;
    busy_time = 0.;
  }

let add_stratum t s = t.strata <- t.strata @ [ s ]

let total_iterations t =
  List.fold_left
    (fun acc s -> acc + Array.fold_left (fun m w -> max m w.iterations) 0 s.workers)
    0 t.strata

let total_wait t =
  List.fold_left
    (fun acc s -> acc +. Array.fold_left (fun a w -> a +. w.wait_time) 0. s.workers)
    0. t.strata

let total_sent t =
  List.fold_left
    (fun acc s -> acc + Array.fold_left (fun a w -> a + w.tuples_sent) 0 s.workers)
    0 t.strata

let total_words t =
  List.fold_left
    (fun acc s -> acc + Array.fold_left (fun a w -> a + w.words_sent) 0 s.workers)
    0 t.strata

let total_batches t =
  List.fold_left
    (fun acc s -> acc + Array.fold_left (fun a w -> a + w.batches_sent) 0 s.workers)
    0 t.strata

let pp fmt t =
  Format.fprintf fmt "total wall %.3fs, %d global iterations, %.3fs idle, %d tuples sent@."
    t.total_wall (total_iterations t) (total_wait t) (total_sent t);
  List.iter
    (fun s ->
      Format.fprintf fmt "  stratum {%s} (%s): %.3fs (setup %.3fs, evaluate %.3fs, materialize %.3fs)@."
        (String.concat "," s.preds) s.kind s.wall s.setup s.evaluate s.materialize;
      Array.iteri
        (fun i w ->
          Format.fprintf fmt
            "    w%d: %d iters, %d in, %d out (%d batches, %d words), busy %.3fs, idle %.3fs@."
            i w.iterations w.tuples_processed w.tuples_sent w.batches_sent w.words_sent
            w.busy_time w.wait_time)
        s.workers)
    t.strata
