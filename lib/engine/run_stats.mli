(** Execution statistics collected by the parallel evaluator.

    Used by the benchmark harness to report the quantities the paper's
    figures are about: idle waiting time per worker under each
    coordination strategy, local/global iteration counts, and message
    volumes. *)

type worker = {
  mutable iterations : int; (** local iterations executed *)
  mutable tuples_processed : int;
  mutable tuples_sent : int;
  mutable batches_sent : int;
      (** batch objects pushed into the exchange; each batch costs one
          queue push and one termination-counter update regardless of
          how many tuples it carries *)
  mutable words_sent : int;
      (** exchange payload volume in ints (tuple fields + contributor
          prefixes) — the words-per-sent-tuple ratio tracked in
          EXPERIMENTS.md *)
  mutable tuples_drained : int;
      (** tuples this worker consumed from its inbox.  At the end of a
          completed run, [total_drained = total_sent] — exact
          termination means nothing was left in flight, stolen
          emissions included (asserted by the stress suite) *)
  mutable merge_time : float;
      (** seconds in [drain_and_merge] — inbox drain plus the store
          merge, whichever merge path is active *)
  mutable merged_tuples : int;
      (** candidates handed to the authoritative index: unique run
          candidates under the batch-sorted path, every drained record
          under the per-tuple path *)
  mutable dup_dropped : int;
      (** candidates dropped by the batch path's run self-dedup and
          contributor absorption before reaching the index (0 under the
          per-tuple path — its duplicates cost a full descent each) *)
  mutable cache_hits : int; (** existence-cache hits (§6.2.2), per stratum *)
  mutable cache_misses : int;
  mutable steals : int; (** morsels stolen from other workers *)
  mutable morsels_executed : int; (** morsels executed, own and stolen *)
  mutable stolen_tuples : int; (** scan tuples in the stolen morsels *)
  mutable wait_time : float; (** seconds idle: barrier + DWS/SSP waits *)
  mutable busy_time : float; (** seconds computing (stolen morsels count
                                 toward the thief) *)
  mutable checkpoint_time : float;
      (** seconds this worker spent cutting checkpoint epochs (snapshot
          of its stores + delta copy) *)
}

(** Run-level crash-recovery counters (zero on a crash-free run with
    checkpoints off). *)
type recovery = {
  mutable recoveries : int; (** crashed rounds recovered from *)
  mutable epochs_cut : int; (** committed checkpoint epochs, all strata *)
  mutable rolled_back_tuples : int;
      (** tuples/groups discarded from stores by rollbacks *)
  mutable rerun_iterations : int;
      (** worker-iterations re-executed after rollbacks (sum over
          workers of iterations lost per rollback) *)
}

type stratum = {
  preds : string list;
  kind : string;
  wall : float; (** end-to-end stratum time (setup + evaluate + materialize) *)
  setup : float;
      (** plan/copy-table construction, index prebuild, store and
          exchange allocation — everything before the pool round starts *)
  evaluate : float; (** the pool round: workers inside the fixpoint *)
  materialize : float; (** union of the partitions into the catalog *)
  workers : worker array;
}

(** Per-maintenance-worker counters accumulated across batches (the
    maintenance pool reuses the resident evaluation domains, but its
    rounds are separate from stratum evaluation, so the breakdown is
    kept apart from {!worker}). *)
type maintain_worker = {
  mutable mw_join_s : float; (** seconds inside maintenance delta joins *)
  mutable mw_morsels : int; (** maintenance morsels executed, own + stolen *)
  mutable mw_steals : int; (** maintenance morsels stolen from other workers *)
  mutable mw_stolen : int; (** scan tuples in the stolen morsels *)
}

(** Per-session incremental-maintenance counters, folded in by the
    {!Dcdatalog.Session} layer after each update batch (all zero on a
    one-shot run). *)
type maintenance = {
  mutable batches : int; (** update batches applied *)
  mutable base_inserted : int; (** base tuples actually added *)
  mutable base_deleted : int; (** base tuples actually removed *)
  mutable inserted : int; (** derived tuples that became visible *)
  mutable deleted : int; (** derived tuples that became invisible *)
  mutable overdeleted : int; (** DRed overdeletion marks removed *)
  mutable rederived : int; (** overdeleted tuples that rederived *)
  mutable recomputed_strata : int; (** stratum fallback recomputes *)
  mutable maintain_s : float; (** seconds inside {!Maintain.apply} *)
  mutable coalesced : int;
      (** caller batches that rode along in another caller's maintenance
          round via writer coalescing (each merged group of [n] queued
          batches counts [n - 1]) *)
  mutable mworkers : maintain_worker array;
      (** per-maintenance-worker breakdown; empty until a parallel
          maintenance round runs, then grown to the maintenance worker
          count by {!maintain_worker} *)
}

type t = {
  mutable strata : stratum list; (** in evaluation order *)
  mutable total_wall : float;
  recovery : recovery;
  maintenance : maintenance;
}

val create : unit -> t

val fresh_worker : unit -> worker

val maintain_worker : maintenance -> int -> maintain_worker
(** [maintain_worker m i] is the accumulator for maintenance worker [i],
    growing [m.mworkers] with zeroed entries as needed. *)

val add_stratum : t -> stratum -> unit

val sum_strata : t -> (worker -> int) -> int
(** Sum an integer worker counter across all workers and strata. *)

val total_iterations : t -> int
(** Max local iteration count over workers, summed over strata — the
    "global iterations" a barrier engine would have used. *)

val total_wait : t -> float
(** Total idle time across all workers and strata. *)

val total_sent : t -> int

val total_words : t -> int
(** Exchange payload ints across all workers and strata. *)

val total_batches : t -> int
(** Exchange batches pushed across all workers and strata; with
    batching enabled this is far below {!total_sent} (one per
    (copy, destination) flush instead of one per tuple). *)

val total_drained : t -> int
(** Tuples consumed across all workers and strata.  Equal to
    {!total_sent} after any completed run — the produced/consumed
    balance that certifies exact termination with stealing on. *)

val total_merged : t -> int

val total_dup_dropped : t -> int

val total_cache_hits : t -> int

val total_cache_misses : t -> int

val total_merge_time : t -> float
(** Seconds across all workers and strata spent draining and merging. *)

val total_steals : t -> int

val total_checkpoint_time : t -> float
(** Seconds across all workers and strata spent cutting epochs. *)

val total_stolen_tuples : t -> int

val busy_imbalance : t -> float
(** max/mean of per-worker busy seconds (summed across strata): 1.0 is
    perfect balance; skew without stealing shows up as values well
    above it. *)

val stratum_imbalance : stratum -> float

val pp : Format.formatter -> t -> unit
