(** Execution statistics collected by the parallel evaluator.

    Used by the benchmark harness to report the quantities the paper's
    figures are about: idle waiting time per worker under each
    coordination strategy, local/global iteration counts, and message
    volumes. *)

type worker = {
  mutable iterations : int; (** local iterations executed *)
  mutable tuples_processed : int;
  mutable tuples_sent : int;
  mutable batches_sent : int;
      (** batch objects pushed into the exchange; each batch costs one
          queue push and one termination-counter update regardless of
          how many tuples it carries *)
  mutable words_sent : int;
      (** exchange payload volume in ints (tuple fields + contributor
          prefixes) — the words-per-sent-tuple ratio tracked in
          EXPERIMENTS.md *)
  mutable wait_time : float; (** seconds idle: barrier + DWS/SSP waits *)
  mutable busy_time : float; (** seconds computing *)
}

type stratum = {
  preds : string list;
  kind : string;
  wall : float; (** end-to-end stratum time (setup + evaluate + materialize) *)
  setup : float;
      (** plan/copy-table construction, index prebuild, store and
          exchange allocation — everything before the pool round starts *)
  evaluate : float; (** the pool round: workers inside the fixpoint *)
  materialize : float; (** union of the partitions into the catalog *)
  workers : worker array;
}

type t = {
  mutable strata : stratum list; (** in evaluation order *)
  mutable total_wall : float;
}

val create : unit -> t

val fresh_worker : unit -> worker

val add_stratum : t -> stratum -> unit

val total_iterations : t -> int
(** Max local iteration count over workers, summed over strata — the
    "global iterations" a barrier engine would have used. *)

val total_wait : t -> float
(** Total idle time across all workers and strata. *)

val total_sent : t -> int

val total_words : t -> int
(** Exchange payload ints across all workers and strata. *)

val total_batches : t -> int
(** Exchange batches pushed across all workers and strata; with
    batching enabled this is far below {!total_sent} (one per
    (copy, destination) flush instead of one per tuple). *)

val pp : Format.formatter -> t -> unit
