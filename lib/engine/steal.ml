module Arena = Dcd_storage.Arena
module Ws_deque = Dcd_concurrent.Ws_deque

(* Morsel-driven work stealing, layered under every coordination
   strategy.

   A morsel is a contiguous slot range of a scan arena — either one
   worker's per-iteration delta arena (Delta) or the stratum's shared
   init-scan arena (Init) — small enough that execution order does not
   matter and large enough that the claim cost (one CAS) is noise.

   Protocol (the publish–execute–join window):
   - the owner bumps [pending.(me)] for each morsel BEFORE pushing it to
     its deque, executes what it can pop back LIFO, and then joins:
     spins until [pending.(me)] returns to zero.  While any of its
     morsels are outstanding the owner mutates NOTHING a thief could
     read — its recursive stores are only written by drain/merge, which
     runs strictly outside the window, and the scanned arenas are only
     cleared after the join;
   - a thief claims from the top of the most-loaded victim's deque,
     executes the morsel with pipelines prepared against the VICTIM's
     stores (the discriminating hash placed the matching recursive
     tuples in the victim's partition) but emits through its OWN
     Distribute buffers and its own Exchange row, so every queue keeps
     exactly one producer;
   - the thief flushes its emissions before decrementing the victim's
     pending counter.  The victim stays Termination-active until its
     join completes, so every stolen emission lands while at least one
     worker is visibly active: the quiescence snapshot cannot certify
     an empty system while stolen tuples are still in flight.

   [published] is an advisory per-owner count of stealable tuples (not
   morsels), used for victim selection and for the queueing model's
   "stealable work exists" input; it is updated racily and only ever
   read as a heuristic. *)

type kind =
  | Delta
  | Init

type morsel = {
  m_kind : kind;
  m_src : int; (* publishing worker: whose stores the pipelines must probe *)
  m_gid : int; (* pipeline group: delta-rule group or init-rule group index *)
  m_arena : Arena.t;
  m_first : int; (* first tuple slot of the range *)
  m_len : int; (* tuples in the range *)
}

type t = {
  on : bool;
  workers : int;
  morsel_tuples : int;
  deques : morsel Ws_deque.t array;
  pending : int Atomic.t array;
  published : int Atomic.t array;
}

let create ~workers ~enabled ~morsel_tuples =
  if morsel_tuples < 1 then invalid_arg "Steal.create: morsel_tuples must be >= 1";
  {
    on = enabled && workers > 1;
    workers;
    morsel_tuples;
    deques = Array.init workers (fun _ -> Ws_deque.create ());
    pending = Array.init workers (fun _ -> Atomic.make 0);
    published = Array.init workers (fun _ -> Atomic.make 0);
  }

let enabled t = t.on

let morsel_tuples t = t.morsel_tuples

(* Split [first, first+len) into morsels on the owner's deque.  pending
   is bumped before each push: a thief can only observe (and complete) a
   morsel whose pending contribution is already visible, so the join
   can never see a transient zero while work is outstanding. *)
let publish_range t ~me ~kind ~gid ~arena ~first ~len =
  let msz = t.morsel_tuples in
  let off = ref first in
  let remaining = ref len in
  ignore (Atomic.fetch_and_add t.published.(me) len);
  while !remaining > 0 do
    let l = min msz !remaining in
    Atomic.incr t.pending.(me);
    Ws_deque.push t.deques.(me)
      { m_kind = kind; m_src = me; m_gid = gid; m_arena = arena; m_first = !off; m_len = l };
    off := !off + l;
    remaining := !remaining - l
  done

let pop_own t ~me =
  match Ws_deque.pop t.deques.(me) with
  | Some m as r ->
    ignore (Atomic.fetch_and_add t.published.(me) (-m.m_len));
    r
  | None -> None

(* Victim selection: the most-loaded peer by published-tuple estimate,
   falling back to any other non-empty peer when the CAS race is lost
   (or the estimate was stale). *)
let try_claim t ~me =
  let best = ref (-1) in
  let best_load = ref 0 in
  for j = 0 to t.workers - 1 do
    if j <> me then begin
      let l = Atomic.get t.published.(j) in
      if l > !best_load then begin
        best := j;
        best_load := l
      end
    end
  done;
  let claim v =
    match Ws_deque.steal t.deques.(v) with
    | Some m as r ->
      ignore (Atomic.fetch_and_add t.published.(m.m_src) (-m.m_len));
      r
    | None -> None
  in
  if !best < 0 then None
  else
    match claim !best with
    | Some _ as r -> r
    | None ->
      let r = ref None in
      let j = ref 0 in
      while !r = None && !j < t.workers do
        if !j <> me && !j <> !best && Atomic.get t.published.(!j) > 0 then r := claim !j;
        incr j
      done;
      !r

(* Executor-side release.  The executor (owner or thief) MUST have
   flushed every emission produced by the morsel before calling this:
   the victim's join — and with it the victim's next quiescence vote —
   is gated on this counter. *)
let complete t m = ignore (Atomic.fetch_and_add t.pending.(m.m_src) (-1))

let pending t ~me = Atomic.get t.pending.(me)

(* Recovery reset: abandon every published morsel and zero the
   counters.  A crashed round can leave morsels on deques (and pending
   counts above zero) with no executor left to complete them; the
   retried round republishes its own scans from the restored state.
   Between rounds only — draining via [steal] is then race-free. *)
let reset t =
  Array.iter
    (fun dq ->
      let rec drain () =
        match Ws_deque.steal dq with
        | Some _ -> drain ()
        | None -> if not (Ws_deque.is_empty dq) then drain ()
      in
      drain ())
    t.deques;
  Array.iter (fun c -> Atomic.set c 0) t.pending;
  Array.iter (fun c -> Atomic.set c 0) t.published

let stealable t ~me =
  t.on
  &&
  let found = ref false in
  for j = 0 to t.workers - 1 do
    if j <> me && Atomic.get t.published.(j) > 0 then found := true
  done;
  !found
