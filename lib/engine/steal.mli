(** The morsel board: intra-iteration work stealing under every
    coordination strategy.

    Each worker splits its delta scans and its init-scan share into
    fixed-size {e morsels} (contiguous slot ranges of a scan arena) and
    publishes them to its own Chase–Lev deque; an otherwise-idle peer —
    the DWS wait branch, the SSP staleness gate, the Global barrier
    tail, or a quiescence-backoff pass — steals from the most-loaded
    victim.

    Safety rests on two invariants, enforced by {!Worker}:

    - {e frozen-victim window}: between publishing morsels and the
      pending counter returning to zero, the owner mutates neither its
      recursive stores nor the published arenas, so a thief may execute
      stolen morsels against pipelines bound to the {e victim's} stores
      (recursive lookups must probe the victim's partition — the
      discriminating hash put the matching tuples there) while emitting
      through its {e own} Distribute buffers and Exchange row (SPSC
      queues keep exactly one producer);
    - {e flush-before-complete}: a thief ships its emissions before
      {!complete}, and the victim stays Termination-active until its
      join finishes — so stolen emissions are always covered by an
      active worker and exact termination detection is preserved. *)

type kind =
  | Delta  (** a range of one worker's per-iteration delta arena *)
  | Init  (** a range of the stratum's shared init-scan arena *)

type morsel = {
  m_kind : kind;
  m_src : int;  (** publisher: whose stores execution must probe *)
  m_gid : int;  (** pipeline group index (per-kind) *)
  m_arena : Dcd_storage.Arena.t;
  m_first : int;
  m_len : int;
}

type t

val create : workers:int -> enabled:bool -> morsel_tuples:int -> t
(** Stealing is forced off for a single worker regardless of [enabled]. *)

val enabled : t -> bool

val morsel_tuples : t -> int

val publish_range :
  t -> me:int -> kind:kind -> gid:int -> arena:Dcd_storage.Arena.t -> first:int -> len:int -> unit
(** Owner only: splits the range into morsels on [me]'s deque, bumping
    [me]'s pending count per morsel (before publication) and the
    published-tuple estimate. *)

val pop_own : t -> me:int -> morsel option
(** Owner only: LIFO-pop one of [me]'s own morsels.  The caller must
    execute it and then {!complete} it. *)

val try_claim : t -> me:int -> morsel option
(** Steal one morsel from the most-loaded other worker (by published
    tuples), falling back to any non-empty peer.  [None] when nothing
    is stealable right now.  The caller must execute the morsel, flush
    its emissions, and only then {!complete} it. *)

val complete : t -> morsel -> unit
(** Releases one executed morsel back to its publisher's join.  Call
    only after every emission the morsel produced has been flushed to
    the exchange. *)

val pending : t -> me:int -> int
(** Outstanding (published but not completed) morsels of [me] — the
    owner's join condition. *)

val stealable : t -> me:int -> bool
(** Whether any other worker currently advertises stealable tuples
    (advisory; feeds the queueing model's wait decision). *)

val reset : t -> unit
(** Recovery reset: abandons every published morsel and zeroes the
    pending/published counters (a crashed round can orphan morsels with
    no executor left).  Between rounds only. *)
