module Clock = Dcd_util.Clock
module Barrier = Dcd_concurrent.Barrier
module Backoff = Dcd_concurrent.Backoff
module Termination = Dcd_concurrent.Termination
module Cancel = Dcd_concurrent.Cancel
module Fault = Dcd_concurrent.Fault

(* Algorithm 1: a barrier after every global iteration.  The first
   barrier closes the exchange round (every peer has flushed), the
   second publishes the per-worker nonempty votes that decide global
   termination. *)
let global w =
  let sh = Worker.shared w in
  let me = Worker.me w in
  let continue_ = ref true in
  while !continue_ do
    Worker.inject w Fault.Loop;
    Worker.bail_if_cancelled w;
    Worker.timed_wait w (fun () -> Barrier.await sh.Worker.barrier);
    ignore (Worker.drain_and_merge w);
    if Worker.frozen w then Worker.clear_deltas w;
    Atomic.set sh.Worker.nonempty.(me) (Worker.delta_size w > 0);
    Worker.timed_wait w (fun () -> Barrier.await sh.Worker.barrier);
    let any = Array.exists Atomic.get sh.Worker.nonempty in
    if not any then continue_ := false
    else if Atomic.get sh.Worker.nonempty.(me) then Worker.run_iteration w
  done

(* Stale-synchronous: at most [s] local iterations ahead of the slowest
   still-active worker. *)
let ssp w s =
  let sh = Worker.shared w in
  let me = Worker.me w in
  let term = Exchange.term sh.Worker.exch in
  let backoff = Backoff.create () in
  let continue_ = ref true in
  while !continue_ do
    Worker.inject w Fault.Loop;
    Worker.bail_if_cancelled w;
    ignore (Worker.drain_and_merge w);
    if Worker.frozen w then Worker.clear_deltas w;
    if Worker.delta_size w = 0 then begin
      Termination.set_active term ~worker:me false;
      Worker.inject w Fault.Quiesce;
      if Termination.quiescent term then continue_ := false
      else Worker.timed_wait w (fun () -> Backoff.once backoff)
    end
    else begin
      Termination.set_active term ~worker:me true;
      Backoff.reset backoff;
      (* bounded staleness gate *)
      let min_active () =
        let m = ref max_int in
        for j = 0 to sh.Worker.n - 1 do
          if j = me || Termination.is_active term ~worker:j then
            m := min !m (Atomic.get sh.Worker.iter_counts.(j))
        done;
        !m
      in
      while
        (not (Atomic.get sh.Worker.failed || Cancel.is_set sh.Worker.token))
        && Atomic.get sh.Worker.iter_counts.(me) - min_active () > s
      do
        Worker.timed_wait w (fun () ->
            Unix.sleepf 0.0002;
            ignore (Worker.drain_and_merge w))
      done;
      Worker.run_iteration w
    end
  done

(* Algorithm 2: no global coordination — the queueing model decides,
   per pass, whether to wait up to τ for the pending delta to reach ω
   tuples or to proceed immediately. *)
let dws w (opts : Coord.dws_opts) =
  let sh = Worker.shared w in
  let me = Worker.me w in
  let term = Exchange.term sh.Worker.exch in
  let backoff = Backoff.create () in
  let continue_ = ref true in
  while !continue_ do
    Worker.inject w Fault.Loop;
    Worker.bail_if_cancelled w;
    ignore (Worker.drain_and_merge w);
    if Worker.frozen w then Worker.clear_deltas w;
    if Worker.delta_size w = 0 then begin
      Termination.set_active term ~worker:me false;
      Worker.inject w Fault.Quiesce;
      if Termination.quiescent term then continue_ := false
      else Worker.timed_wait w (fun () -> Backoff.once backoff)
    end
    else begin
      Termination.set_active term ~worker:me true;
      Backoff.reset backoff;
      let decision = Worker.decide w in
      let sz = Worker.delta_size w in
      if float_of_int sz < decision.Qmodel.omega then begin
        (* wait up to τ (capped) for the delta to reach ω, collecting
           arriving tuples meanwhile; resume on timeout *)
        let deadline = Clock.now () +. Float.min decision.Qmodel.tau opts.tau_cap in
        let waiting = ref true in
        while !waiting do
          if Atomic.get sh.Worker.failed || Cancel.is_set sh.Worker.token then waiting := false
          else if Clock.now () >= deadline then waiting := false
          else begin
            Worker.timed_wait w (fun () -> Unix.sleepf opts.poll_interval);
            ignore (Worker.drain_and_merge w);
            if float_of_int (Worker.delta_size w) >= decision.Qmodel.omega then
              waiting := false
          end
        done
      end;
      Worker.run_iteration w;
      Worker.decay_model w opts.decay
    end
  done

let run strategy w =
  match strategy with
  | Coord.Global -> global w
  | Coord.Ssp s -> ssp w s
  | Coord.Dws opts -> dws w opts
