module Clock = Dcd_util.Clock
module Backoff = Dcd_concurrent.Backoff
module Termination = Dcd_concurrent.Termination
module Cancel = Dcd_concurrent.Cancel
module Fault = Dcd_concurrent.Fault

(* Steal-before-wait: every branch below that used to sleep first tries
   to take a morsel off a loaded peer's deque.  A successful steal is
   real progress (the stolen busy time is accounted inside [try_steal]),
   so the caller resets its backoff instead of widening it. *)

(* Algorithm 1: a barrier after every global iteration.  The first
   barrier closes the exchange round (every peer has flushed), the
   second publishes the per-worker nonempty votes that decide global
   termination.  Both barrier tails steal: a worker parked at the
   barrier while a skewed peer grinds through its delta is exactly the
   idle time the morsel board exists to reclaim. *)
let global w =
  let sh = Worker.shared w in
  let me = Worker.me w in
  let continue_ = ref true in
  (* lockstep pass count: every worker runs the same barrier rounds, so
     a local counter agrees across workers and decides checkpoint cuts
     without extra coordination *)
  let pass = ref 0 in
  while !continue_ do
    Worker.inject w Fault.Loop;
    Worker.bail_if_cancelled w;
    Worker.await_barrier w;
    ignore (Worker.drain_and_merge w);
    if Worker.frozen w then Worker.clear_deltas w;
    Atomic.set sh.Worker.nonempty.(me) (Worker.delta_size w > 0);
    Worker.await_barrier w;
    let any = Array.exists Atomic.get sh.Worker.nonempty in
    if not any then continue_ := false
    else begin
      incr pass;
      (* the vote barrier is already a globally quiescent point —
         exchange drained, morsels joined — so the cut is free of extra
         synchronization beyond its own commit dance *)
      if Worker.cut_due_global w ~pass:!pass then Worker.cut_epoch w;
      if Atomic.get sh.Worker.nonempty.(me) then Worker.run_iteration w
    end
  done

(* Stale-synchronous: at most [s] local iterations ahead of the slowest
   still-active worker. *)
let ssp w s =
  let sh = Worker.shared w in
  let me = Worker.me w in
  let term = Exchange.term sh.Worker.exch in
  let backoff = Backoff.create () in
  let continue_ = ref true in
  while !continue_ do
    Worker.inject w Fault.Loop;
    Worker.bail_if_cancelled w;
    (* a peer asked for a checkpoint: rendezvous before anything else
       this pass (the requester stays active until the cut commits, so
       quiescence cannot be observed while we converge on it) *)
    if Worker.cut_pending w then Worker.join_cut w;
    ignore (Worker.drain_and_merge w);
    if Worker.frozen w then Worker.clear_deltas w;
    if Worker.delta_size w = 0 then begin
      Termination.set_active term ~worker:me false;
      Worker.inject w Fault.Quiesce;
      if Termination.quiescent term then begin
        (* re-check after the quiescence read: a cut request ordered
           before our snapshot must be joined, not abandoned *)
        if Worker.cut_pending w then Worker.join_cut w else continue_ := false
      end
      else if Worker.try_steal w then Backoff.reset backoff
      else Worker.timed_wait w (fun () -> Backoff.once backoff)
    end
    else begin
      Termination.set_active term ~worker:me true;
      Backoff.reset backoff;
      (* bounded staleness gate *)
      let min_active () =
        let m = ref max_int in
        for j = 0 to sh.Worker.n - 1 do
          if j = me || Termination.is_active term ~worker:j then
            m := min !m (Atomic.get sh.Worker.iter_counts.(j))
        done;
        !m
      in
      (* a pending checkpoint unblocks the gate: the straggler we are
         waiting on may already be parked at the cut barrier with its
         iteration count frozen — gating on it would deadlock the
         rendezvous.  We run the iteration and join the cut at the next
         loop top (all our sends land before barrier 1, so the cut's
         drain still sees them). *)
      while
        (not (Atomic.get sh.Worker.failed || Cancel.is_set sh.Worker.token))
        && (not (Worker.cut_pending w))
        && Atomic.get sh.Worker.iter_counts.(me) - min_active () > s
      do
        (* gated on a straggler: take some of its work instead of
           napping — the steal directly advances the iteration count we
           are waiting on *)
        if not (Worker.try_steal w) then
          Worker.timed_wait w (fun () -> Unix.sleepf 0.0002);
        ignore (Worker.drain_and_merge w)
      done;
      Worker.run_iteration w;
      Worker.maybe_request_cut w
    end
  done

(* Algorithm 2: no global coordination — the queueing model decides,
   per pass, whether to wait up to τ for the pending delta to reach ω
   tuples or to proceed immediately.  The model knows about the morsel
   board: when stealable work exists the wait budget is stretched
   (waiting is productive), and the wait itself is spent stealing. *)
let dws w (opts : Coord.dws_opts) =
  let sh = Worker.shared w in
  let me = Worker.me w in
  let term = Exchange.term sh.Worker.exch in
  let backoff = Backoff.create () in
  let continue_ = ref true in
  while !continue_ do
    Worker.inject w Fault.Loop;
    Worker.bail_if_cancelled w;
    (* checkpoint rendezvous, same protocol as SSP *)
    if Worker.cut_pending w then Worker.join_cut w;
    ignore (Worker.drain_and_merge w);
    if Worker.frozen w then Worker.clear_deltas w;
    if Worker.delta_size w = 0 then begin
      Termination.set_active term ~worker:me false;
      Worker.inject w Fault.Quiesce;
      if Termination.quiescent term then begin
        if Worker.cut_pending w then Worker.join_cut w else continue_ := false
      end
      else if Worker.try_steal w then Backoff.reset backoff
      else Worker.timed_wait w (fun () -> Backoff.once backoff)
    end
    else begin
      Termination.set_active term ~worker:me true;
      Backoff.reset backoff;
      let decision = Worker.decide w in
      let sz = Worker.delta_size w in
      if float_of_int sz < decision.Qmodel.omega then begin
        (* wait up to τ (capped) for the delta to reach ω, collecting
           arriving tuples and stealing meanwhile; resume on timeout *)
        let deadline = Clock.now () +. Float.min decision.Qmodel.tau opts.tau_cap in
        let waiting = ref true in
        while !waiting do
          if Atomic.get sh.Worker.failed || Cancel.is_set sh.Worker.token then waiting := false
          else if Worker.cut_pending w then
            (* peers are converging on a checkpoint barrier — run now
               and join at the next loop top instead of waiting out τ *)
            waiting := false
          else if Clock.now () >= deadline then waiting := false
          else begin
            if not (Worker.try_steal w) then
              Worker.timed_wait w (fun () -> Unix.sleepf opts.poll_interval);
            ignore (Worker.drain_and_merge w);
            if float_of_int (Worker.delta_size w) >= decision.Qmodel.omega then
              waiting := false
          end
        done
      end;
      Worker.run_iteration w;
      Worker.maybe_request_cut w;
      Worker.decay_model w opts.decay
    end
  done

let run strategy w =
  match strategy with
  | Coord.Global -> global w
  | Coord.Ssp s -> ssp w s
  | Coord.Dws opts -> dws w opts
