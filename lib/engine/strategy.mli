(** The coordination-strategy driver: runs one worker's fixpoint loop
    under the configured {!Coord.t}, driving the {!Worker} step
    primitives ([drain_and_merge], [run_iteration], quiescence and
    staleness bookkeeping) until the stratum's global fixpoint.

    - [Global] — Algorithm 1 double-barrier rounds with nonempty votes;
    - [Ssp s] — bounded staleness over the shared iteration counters;
    - [Dws] — Algorithm 2: the {!Qmodel} controller decides per pass
      whether to wait up to τ for ω pending tuples or proceed.

    All three poll the failed flag and the cancellation token once per
    pass and exit through the barrier-poisoning path
    ({!Worker.bail_if_cancelled}), so a crash, deadline, stall or
    external cancel tears the whole round down without a hang. *)

val run : Coord.t -> Worker.t -> unit
(** Runs this worker to the stratum's global fixpoint (or until
    poisoned — {!Dcd_concurrent.Barrier.Poisoned} escapes to the
    caller's containment wrapper). *)
