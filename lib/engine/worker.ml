open Dcd_planner
module Tuple = Dcd_storage.Tuple
module Arena = Dcd_storage.Arena
module Relation = Dcd_storage.Relation
module Partition = Dcd_storage.Partition
module Frame = Dcd_concurrent.Frame
module Clock = Dcd_util.Clock
module Barrier = Dcd_concurrent.Barrier
module Termination = Dcd_concurrent.Termination
module Cancel = Dcd_concurrent.Cancel
module Fault = Dcd_concurrent.Fault

(* --- persistent scratch: survives from stratum to stratum --- *)

(* Everything a worker allocates per stratum that the next stratum can
   reuse: the queueing model (reset, same producer count), the drain
   counting array, and free lists of cleared delta arenas and exchange
   frames keyed by their shape.  Owned by one worker index for the whole
   run; only that pool domain touches it during evaluation. *)
type scratch = {
  qm : Qmodel.t;
  drained_from : int array;
  mutable spare_arenas : Arena.t list;
  mutable spare_frames : Frame.t list;
}

let make_scratch ~workers () =
  {
    qm = Qmodel.create ~producers:workers ();
    drained_from = Array.make workers 0;
    spare_arenas = [];
    spare_frames = [];
  }

let take_arena sc ~arity =
  let rec pick acc = function
    | [] -> Arena.create ~arity ()
    | a :: rest when Arena.arity a = arity ->
      sc.spare_arenas <- List.rev_append acc rest;
      Arena.clear a;
      a
    | a :: rest -> pick (a :: acc) rest
  in
  pick [] sc.spare_arenas

let give_arena sc a = sc.spare_arenas <- a :: sc.spare_arenas

let take_frame sc ~arity ~contrib =
  let rec pick acc = function
    | [] -> Frame.create ~arity ~contrib ()
    | f :: rest when Frame.arity f = arity && Frame.has_contrib f = contrib ->
      sc.spare_frames <- List.rev_append acc rest;
      Frame.clear f;
      f
    | f :: rest -> pick (f :: acc) rest
  in
  pick [] sc.spare_frames

let give_frame sc f = sc.spare_frames <- f :: sc.spare_frames

(* --- per-stratum shared coordination state --- *)

type shared = {
  n : int;
  exch : Exchange.t;
  barrier : Barrier.t;
  steal : Steal.t;
  failed : bool Atomic.t;
  (* Swapped for a fresh token on every recovery attempt (a peer-crash
     cancellation must not outlive the round it aborted).  Written only
     between rounds with the pool idle — the submit path's mutex
     publishes the new value to the worker domains. *)
  mutable token : Cancel.t;
  ckpt : Checkpoint.t option; (* epoch store; [None] = no checkpointing *)
  (* Per-worker heartbeats of *useful* work (rules evaluated, batches
     merged), bumped only between units of real progress: an idle worker
     spinning through backoff does not beat, so a quiescence livelock
     goes flat and the watchdog can see it.  Plain ints read racily by
     the watchdog domain — staleness only widens the window slightly. *)
  heartbeats : int array;
  iter_counts : int Atomic.t array;
  nonempty : bool Atomic.t array;
  mutable inject : Fault.site -> worker:int -> unit;
  max_iterations : int;
  (* batch-sorted merge path: drains stage candidates into per-store
     runs, folded by one sorted index walk at the end of the drain,
     instead of one descent per tuple *)
  merge_batch_sorted : bool;
}

let make_shared ~exch ~token ~fault ~max_iterations ~steal ~merge_sorted ~ckpt =
  let n = Exchange.workers exch in
  let sh =
    {
      n;
      exch;
      barrier = Barrier.create n;
      steal;
      failed = Atomic.make false;
      token;
      ckpt;
      heartbeats = Array.make n 0;
      iter_counts = Array.init n (fun _ -> Atomic.make 0);
      nonempty = Array.init n (fun _ -> Atomic.make false);
      inject = (fun _site ~worker:_ -> ());
      max_iterations;
      merge_batch_sorted = merge_sorted;
    }
  in
  (* Fault injection: [inject] stays the no-op closure when disabled, so
     the sites cost one static call on a frame/batch/loop-pass
     granularity — never per tuple.  The stop predicate reads
     [sh.token] through the record so it tracks per-attempt token swaps
     during recovery. *)
  (match fault with
  | None -> ()
  | Some f ->
    Fault.set_stop f (fun () -> Atomic.get sh.failed || Cancel.is_set sh.token);
    sh.inject <- (fun site ~worker -> Fault.hit f site ~worker));
  sh

(* Between recovery attempts only, every worker collected: clears the
   crash flag and the per-round coordination counters, and installs the
   next attempt's cancellation token.  The exchange, steal board and
   store rollback are the orchestrator's side of the reset. *)
let reset_shared sh ~token =
  Atomic.set sh.failed false;
  sh.token <- token;
  Array.fill sh.heartbeats 0 sh.n 0;
  Array.iter (fun c -> Atomic.set c 0) sh.iter_counts;
  Array.iter (fun c -> Atomic.set c false) sh.nonempty;
  Barrier.reset sh.barrier

(* --- per-stratum compiled context, shared read-only by all workers --- *)

type stratum_ctx = {
  sx_catalog : Catalog.t;
  sx_copies : Exchange.copy_info array;
  sx_h : Partition.t;
  sx_partial_agg : bool;
  sx_init : (Physical.compiled_rule * int array) list;
  sx_delta : (Physical.compiled_rule * int array * int) list;
  sx_scan_sources : (string * Arena.t) list;
  (* Morsel grouping: a morsel names a pipeline group, and a group runs
     every rule that scans the same source over the same slot range.
     Group tables are part of the shared stratum context so a morsel's
     group id means the same thing to its owner and to any thief. *)
  sx_delta_groups : (int * (Physical.compiled_rule * int array) list) array;
      (** delta rules grouped by scanned copy id *)
  sx_init_groups : (Arena.t * (Physical.compiled_rule * int array) list) array;
      (** [S_base] init rules grouped by scanned relation (one shared
          flat arena per distinct relation) *)
  sx_init_unit : (Physical.compiled_rule * int array) list;
}

(* Flat scan source for a whole relation: init rules scan relations
   through an arena cursor striped across workers, not a boxed-tuple
   vector. *)
let arena_of_relation rel =
  let a =
    Arena.create ~capacity:(max 1 (Relation.length rel)) ~arity:(Relation.arity rel) ()
  in
  Relation.iter_slices rel (fun data off -> ignore (Arena.push_slice a data off));
  a

(* groups an association-shaped list by key, preserving first-seen key
   order and per-key element order *)
let group_by keys_equal key_of items =
  let groups = ref [] in
  List.iter
    (fun item ->
      let k = key_of item in
      match List.find_opt (fun (k', _) -> keys_equal k k') !groups with
      | Some (_, cell) -> cell := item :: !cell
      | None -> groups := !groups @ [ (k, ref [ item ]) ])
    items;
  List.map (fun (k, cell) -> (k, List.rev !cell)) !groups

let make_stratum ~catalog ~copies ~h ~partial_agg (sp : Physical.stratum_plan) =
  (* distribution targets per head predicate, resolved once per stratum:
     the emit path indexes an int array, never a string lookup *)
  let head_targets =
    List.map
      (fun (pp : Physical.pred_plan) ->
        (pp.pred, Array.of_list (Exchange.copies_of_pred copies pp.pred)))
      sp.pred_plans
  in
  let targets_of pred = List.assoc pred head_targets in
  let sx_init =
    List.map
      (fun (cr : Physical.compiled_rule) -> (cr, targets_of cr.head.hpred))
      sp.init_rules
  in
  let sx_delta =
    List.map
      (fun (cr : Physical.compiled_rule) ->
        let scan_cid =
          match cr.scan with
          | Physical.S_delta { pred; route; _ } -> Exchange.copy_id copies pred route
          | Physical.S_base _ | Physical.S_unit -> assert false
        in
        (cr, targets_of cr.head.hpred, scan_cid))
      sp.delta_rules
  in
  let sx_delta_groups =
    Array.of_list
      (List.map
         (fun (cid, rules) -> (cid, List.map (fun (cr, tg, _) -> (cr, tg)) rules))
         (group_by ( = ) (fun (_, _, cid) -> cid) sx_delta))
  in
  let base_init =
    List.filter_map
      (fun ((cr : Physical.compiled_rule), tg) ->
        match cr.scan with
        | Physical.S_base { pred; _ } -> Some (pred, (cr, tg))
        | Physical.S_delta _ | Physical.S_unit -> None)
      sx_init
  in
  let pred_groups = group_by String.equal fst base_init in
  (* one shared flat snapshot per distinct scanned relation — also the
     arena init morsels range over *)
  let sx_scan_sources =
    List.map (fun (pred, _) -> (pred, arena_of_relation (Catalog.get catalog pred))) pred_groups
  in
  let sx_init_groups =
    Array.of_list
      (List.map
         (fun (pred, rules) -> (List.assoc pred sx_scan_sources, List.map snd rules))
         pred_groups)
  in
  let sx_init_unit =
    List.filter
      (fun ((cr : Physical.compiled_rule), _) -> cr.scan = Physical.S_unit)
      sx_init
  in
  {
    sx_catalog = catalog;
    sx_copies = copies;
    sx_h = h;
    sx_partial_agg = partial_agg;
    sx_init;
    sx_delta;
    sx_scan_sources;
    sx_delta_groups;
    sx_init_groups;
    sx_init_unit;
  }

let stall_snapshot sh ~strategy ~window =
  let term = Exchange.term sh.exch in
  {
    Engine_error.stall_window = window;
    stall_strategy = strategy;
    stall_sent = Termination.total_sent term;
    stall_consumed = Termination.total_consumed term;
    stall_workers =
      Array.init sh.n (fun w ->
          {
            Engine_error.ws_worker = w;
            ws_active = Termination.is_active term ~worker:w;
            ws_iterations = Atomic.get sh.iter_counts.(w);
            ws_consumed = Termination.consumed_of term ~worker:w;
            ws_inbox_tuples = Exchange.inbox_tuples sh.exch ~dest:w;
            ws_inbox_batches = Exchange.inbox_batches sh.exch ~dest:w;
          });
  }

(* --- the worker --- *)

type t = {
  sh : shared;
  sc : scratch;
  sx : stratum_ctx;
  me : int;
  ws : Run_stats.worker;
  stores : Rec_store.t array; (* own partition: stores.(me) of the run matrix *)
  deltas : Arena.t array;
  (* Per-iteration group index for aggregate copies: the Gather operator
     emits ONE delta entry per changed group, holding the current
     aggregate (paper Example 6.1).  Without this, a group improved k
     times in one gather would be scanned k times, which explodes
     quadratically on high-degree vertices. *)
  delta_groups : (Tuple.t, int) Hashtbl.t option array;
  dist : Distribute.t;
  delta_pipes : Eval.prepared list array; (* aligned with sx_delta_groups *)
  init_pipes : Eval.prepared list array; (* aligned with sx_init_groups *)
  init_arenas : Arena.t array; (* scan arena per init group *)
  unit_pipes : Eval.prepared list;
  (* Steal pipelines: [steal_*_pipes.(v).(g)] evaluates group [g] with
     recursive lookups bound to victim [v]'s stores — a stolen morsel
     must probe the partition the discriminating hash routed the
     matching tuples to — while emitting through THIS worker's
     Distribute buffers and Exchange row, so every SPSC queue keeps its
     single producer.  Entry [me] is unused (own morsels run the own
     pipelines above); empty when stealing is off. *)
  steal_delta_pipes : Eval.prepared list array array;
  steal_init_pipes : Eval.prepared list array array;
  mutable on_batch : Exchange.batch -> unit;
  mutable last_cut : int; (* local iteration count at the last epoch cut *)
}

let me t = t.me

let shared t = t.sh

let stats t = t.ws

let push_delta w cid (fresh : Tuple.t) =
  match w.delta_groups.(cid) with
  | None -> ignore (Arena.push w.deltas.(cid) fresh)
  | Some groups -> (
    let pos, _ = Option.get w.sx.sx_copies.(cid).Exchange.ci_agg in
    let group = Tuple.group_key fresh ~agg_pos:pos in
    match Hashtbl.find_opt groups group with
    | Some slot -> Arena.set_slot w.deltas.(cid) slot fresh
    | None ->
      Hashtbl.add groups group (Arena.length w.deltas.(cid));
      ignore (Arena.push w.deltas.(cid) fresh))

let merge_batch w (b : Exchange.batch) =
  w.sh.inject Fault.Merge ~worker:w.me;
  w.sh.heartbeats.(w.me) <- w.sh.heartbeats.(w.me) + 1;
  let store = w.stores.(b.bcopy) in
  w.ws.merged_tuples <- w.ws.merged_tuples + Frame.count b.bframe;
  (* records are folded in straight from the packed frame: absorbed
     candidates never exist as heap objects on the consumer side *)
  Frame.iter b.bframe (fun data ~toff ~clen ~coff ->
      match Rec_store.merge_slice store ~data ~off:toff ~cdata:data ~coff ~clen with
      | Some fresh -> push_delta w b.bcopy fresh
      | None -> ())

(* Batch-sorted alternative: the drain only *stages* candidates into the
   store's scratch run (the existence cache still filters here); the
   sorted fold into the index happens once per drain in
   [drain_and_merge], after the termination counters are updated. *)
let stage_batch w (b : Exchange.batch) =
  w.sh.inject Fault.Merge ~worker:w.me;
  w.sh.heartbeats.(w.me) <- w.sh.heartbeats.(w.me) + 1;
  let store = w.stores.(b.bcopy) in
  Frame.iter b.bframe (fun data ~toff ~clen ~coff ->
      Rec_store.stage_slice store ~data ~off:toff ~cdata:data ~coff ~clen)

let create ~shared:sh ~scratch:sc ~stratum:sx ~me ~stores:all_stores ~ws =
  let copies = sx.sx_copies in
  let own_stores = all_stores.(me) in
  let deltas = Array.map (fun ci -> take_arena sc ~arity:ci.Exchange.ci_arity) copies in
  let delta_groups =
    Array.map
      (fun ci ->
        match ci.Exchange.ci_agg with
        | Some _ -> Some (Hashtbl.create 64 : (Tuple.t, int) Hashtbl.t)
        | None -> None)
      copies
  in
  let dist =
    Distribute.create ~exch:sh.exch ~me ~h:sx.sx_h ~partial_agg:sx.sx_partial_agg
      ~take_frame:(fun ~arity ~contrib -> take_frame sc ~arity ~contrib)
  in
  (* one evaluation context per store row the pipelines may probe: own
     rules bind to this worker's partition, steal pipelines to the
     victim's *)
  let ctx_for row_stores =
    {
      Eval.base_iter =
        (fun pred f -> Relation.iter_slices (Catalog.get sx.sx_catalog pred) f);
      base_index =
        (fun pred cols ->
          match Relation.find_index (Catalog.get sx.sx_catalog pred) ~key_cols:cols with
          | Some idx -> idx
          | None ->
            (* Parallel.prebuild_indexes guarantees this cannot happen *)
            assert false);
      base_sorted =
        (fun pred cols ->
          match Relation.find_sorted_index (Catalog.get sx.sx_catalog pred) ~cols with
          | Some tree -> tree
          | None ->
            (* Parallel.prebuild_indexes guarantees this cannot happen *)
            assert false);
      rec_resolve = (fun ~pred ~route -> Exchange.copy_id copies pred route);
      rec_matches = (fun cid ~key f -> Rec_store.iter_matches row_stores.(cid) ~key f);
    }
  in
  (* Rules prepared once per worker and stratum: recursive lookups, the
     scanned copy, and the head's distribution targets all resolve to
     integer ids here, at setup time. *)
  let prep ctx (rules : (Physical.compiled_rule * int array) list) =
    List.map
      (fun ((cr : Physical.compiled_rule), targets) ->
        Eval.prepare cr ctx ~emit:(Distribute.emitter dist ~targets))
      rules
  in
  let own_ctx = ctx_for own_stores in
  let steal_on = Steal.enabled sh.steal in
  let steal_pipes_of groups =
    Array.init sh.n (fun v ->
        if (not steal_on) || v = me then [||]
        else Array.map (fun (_, rules) -> prep (ctx_for all_stores.(v)) rules) groups)
  in
  let w =
    {
      sh;
      sc;
      sx;
      me;
      ws;
      stores = own_stores;
      deltas;
      delta_groups;
      dist;
      delta_pipes = Array.map (fun (_, rules) -> prep own_ctx rules) sx.sx_delta_groups;
      init_pipes = Array.map (fun (_, rules) -> prep own_ctx rules) sx.sx_init_groups;
      init_arenas = Array.map fst sx.sx_init_groups;
      unit_pipes = prep own_ctx sx.sx_init_unit;
      steal_delta_pipes = steal_pipes_of sx.sx_delta_groups;
      steal_init_pipes = steal_pipes_of sx.sx_init_groups;
      on_batch = ignore;
      last_cut = 0;
    }
  in
  w.on_batch <- (if sh.merge_batch_sorted then stage_batch w else merge_batch w);
  w

let clear_deltas w =
  Array.iter Arena.clear w.deltas;
  Array.iter (function Some g -> Hashtbl.reset g | None -> ()) w.delta_groups

let delta_size w = Array.fold_left (fun acc a -> acc + Arena.length a) 0 w.deltas

let frozen w = w.sh.max_iterations > 0 && w.ws.iterations >= w.sh.max_iterations

let flush_outgoing w =
  w.sh.inject Fault.Flush ~worker:w.me;
  Distribute.flush w.dist ~ws:w.ws

let drain_and_merge w =
  let t0 = Clock.now () in
  let total = Exchange.drain w.sh.exch ~me:w.me ~drained_from:w.sc.drained_from w.on_batch in
  if total > 0 then begin
    (* one clock read per drain, not per tuple: the arrival model keeps
       its per-batch framing (see Qmodel) *)
    let now = Clock.now () in
    for j = 0 to w.sh.n - 1 do
      let cnt = w.sc.drained_from.(j) in
      if cnt > 0 then Qmodel.record_arrival w.sc.qm ~from:j ~now ~count:cnt
    done;
    (* Become visibly active BEFORE recording consumption: a peer whose
       quiescence snapshot includes these consumed counts must also see
       this worker active, or it could exit while we still hold
       unprocessed tuples and go on to send to it. *)
    Termination.set_active (Exchange.term w.sh.exch) ~worker:w.me true;
    Termination.consumed (Exchange.term w.sh.exch) ~worker:w.me total;
    w.ws.tuples_drained <- w.ws.tuples_drained + total;
    if w.sh.merge_batch_sorted then begin
      (* Fold every staged run now, with this worker already visibly
         active for the drained tuples — safe, because only the worker
         itself ever clears its own active flag.  One sorted pass per
         store replaces one index descent per drained tuple. *)
      let stores = w.stores in
      for cid = 0 to Array.length stores - 1 do
        if Rec_store.staged stores.(cid) > 0 then begin
          let merged, dups = Rec_store.merge_run stores.(cid) ~on_fresh:(push_delta w cid) in
          w.ws.merged_tuples <- w.ws.merged_tuples + merged;
          w.ws.dup_dropped <- w.ws.dup_dropped + dups
        end
      done
    end;
    w.ws.merge_time <- w.ws.merge_time +. (Clock.now () -. t0)
  end;
  total

let timed_wait w f =
  let t0 = Clock.now () in
  f ();
  w.ws.wait_time <- w.ws.wait_time +. (Clock.now () -. t0)

(* A worker that observes cancellation (deadline, external token,
   watchdog, peer crash) exits its loop quietly via [Poisoned] after
   poisoning the barrier, so peers blocked in [await] wake too; the
   structured error is raised once, after the round is joined. *)
let bail_if_cancelled w =
  if Atomic.get w.sh.failed || Cancel.check w.sh.token then begin
    Barrier.poison w.sh.barrier;
    raise Barrier.Poisoned
  end

let steal_enabled w = Steal.enabled w.sh.steal

(* --- morsel execution --- *)

let exec_morsel w (m : Steal.morsel) =
  let pipes =
    match m.Steal.m_kind with
    | Steal.Delta ->
      if m.Steal.m_src = w.me then w.delta_pipes.(m.Steal.m_gid)
      else w.steal_delta_pipes.(m.Steal.m_src).(m.Steal.m_gid)
    | Steal.Init ->
      if m.Steal.m_src = w.me then w.init_pipes.(m.Steal.m_gid)
      else w.steal_init_pipes.(m.Steal.m_src).(m.Steal.m_gid)
  in
  let scan = `Flat_range (m.Steal.m_arena, m.Steal.m_first, m.Steal.m_len) in
  let k = ref 0 in
  List.iter (fun p -> k := !k + Eval.run_prepared p ~scan) pipes;
  w.ws.morsels_executed <- w.ws.morsels_executed + 1;
  !k

let try_steal w =
  let st = w.sh.steal in
  if not (Steal.enabled st) then false
  else
    match Steal.try_claim st ~me:w.me with
    | None -> false
    | Some m ->
      (* the injection site sits inside the claim window on purpose: a
         crash here leaves the victim joining on an outstanding morsel,
         which must resolve through the failed-flag poll below *)
      w.sh.inject Fault.Steal ~worker:w.me;
      w.sh.heartbeats.(w.me) <- w.sh.heartbeats.(w.me) + 1;
      let t0 = Clock.now () in
      let k = exec_morsel w m in
      (* Flush-before-complete: the stolen emissions must be in the
         exchange (sent counters bumped) while the victim is still
         pinned active by this outstanding morsel — otherwise a peer's
         quiescence snapshot could certify an empty system with stolen
         tuples still privately buffered here. *)
      Distribute.flush w.dist ~ws:w.ws;
      Steal.complete st m;
      let dt = Clock.now () -. t0 in
      w.ws.busy_time <- w.ws.busy_time +. dt;
      w.ws.tuples_processed <- w.ws.tuples_processed + k;
      w.ws.steals <- w.ws.steals + 1;
      w.ws.stolen_tuples <- w.ws.stolen_tuples + m.Steal.m_len;
      Qmodel.record_service w.sc.qm ~tuples:k ~elapsed:dt;
      true

(* The owner's join: wait for every outstanding morsel to come back,
   stealing from peers meanwhile (any outstanding morsel anywhere means
   some worker is mid-window, so there is often work to take).  Crash
   containment: if a thief dies holding one of our morsels the pending
   count never returns to zero — the failed/cancelled poll is the exit.
   Only the idle fraction is charged as wait time; stolen execution
   accounts itself as busy inside [try_steal]. *)
let join_morsels w =
  let st = w.sh.steal in
  if Steal.pending st ~me:w.me > 0 then begin
    let t0 = Clock.now () in
    let stolen = ref 0. in
    while Steal.pending st ~me:w.me > 0 do
      bail_if_cancelled w;
      let s0 = Clock.now () in
      if try_steal w then stolen := !stolen +. (Clock.now () -. s0) else Domain.cpu_relax ()
    done;
    w.ws.wait_time <- w.ws.wait_time +. Float.max 0. (Clock.now () -. t0 -. !stolen)
  end

(* Barrier arrival that fills the wait with steals when the board is on
   (the Global strategy's idle tail, and the non-recursive close). *)
let await_barrier w =
  if steal_enabled w then
    Barrier.await_poll w.sh.barrier (fun () ->
        if not (try_steal w) then timed_wait w (fun () -> Unix.sleepf 5e-5))
  else timed_wait w (fun () -> Barrier.await w.sh.barrier)

let run_iteration w =
  let st = w.sh.steal in
  let t0 = Clock.now () in
  let processed = ref 0 in
  let run_group_whole g batch =
    List.iter
      (fun p -> processed := !processed + Eval.run_prepared p ~scan:(`Flat batch))
      w.delta_pipes.(g)
  in
  if Steal.enabled st then begin
    let msz = Steal.morsel_tuples st in
    Array.iteri
      (fun g (cid, _) ->
        let batch = w.deltas.(cid) in
        let len = Arena.length batch in
        if len > 0 then begin
          w.sh.heartbeats.(w.me) <- w.sh.heartbeats.(w.me) + 1;
          (* a delta too small to make two morsels is not worth the
             publish/claim traffic *)
          if len <= 2 * msz then run_group_whole g batch
          else
            Steal.publish_range st ~me:w.me ~kind:Steal.Delta ~gid:g ~arena:batch ~first:0 ~len
        end)
      w.sx.sx_delta_groups;
    let continue_ = ref true in
    while !continue_ do
      match Steal.pop_own st ~me:w.me with
      | Some m ->
        processed := !processed + exec_morsel w m;
        Steal.complete st m
      | None -> continue_ := false
    done
  end
  else
    Array.iteri
      (fun g (cid, _) ->
        let batch = w.deltas.(cid) in
        if not (Arena.is_empty batch) then begin
          w.sh.heartbeats.(w.me) <- w.sh.heartbeats.(w.me) + 1;
          run_group_whole g batch
        end)
      w.sx.sx_delta_groups;
  let own = Clock.now () -. t0 in
  (* join before clearing: stolen morsels still range over our delta
     arenas, and our stores must stay frozen until the last one is back *)
  if Steal.enabled st then join_morsels w;
  let t1 = Clock.now () in
  clear_deltas w;
  flush_outgoing w;
  let dt = own +. (Clock.now () -. t1) in
  w.ws.busy_time <- w.ws.busy_time +. dt;
  w.ws.tuples_processed <- w.ws.tuples_processed + !processed;
  Qmodel.record_service w.sc.qm ~tuples:!processed ~elapsed:dt;
  w.ws.iterations <- w.ws.iterations + 1;
  Atomic.incr w.sh.iter_counts.(w.me)

let decide w =
  Qmodel.decide
    ~stealable:(Steal.stealable w.sh.steal ~me:w.me)
    w.sc.qm
    ~buffer_sizes:(Exchange.inbox_sizes w.sh.exch ~dest:w.me)

let decay_model w f = Qmodel.decay w.sc.qm f

let inject w site = w.sh.inject site ~worker:w.me

(* --- checkpoint epochs (crash recovery) --- *)

(* Cut this worker's slice of the next epoch: snapshot every store of
   the row, deep-copy the delta arenas, record the local iteration
   count.  The caller guarantees global quiescence — nothing in the
   exchange, every morsel joined, every drained tuple merged — so these
   three pieces ARE the whole evaluation state. *)
let cut_epoch_local w =
  match w.sh.ckpt with
  | None -> ()
  | Some c ->
    w.sh.inject Fault.Checkpoint ~worker:w.me;
    let t0 = Clock.now () in
    let bank = Checkpoint.bank c ~worker:w.me ~epoch:(Checkpoint.next_epoch c) in
    Checkpoint.write_bank bank
      ~snaps:(Array.map Rec_store.snapshot w.stores)
      ~deltas:w.deltas ~iterations:w.ws.iterations;
    w.last_cut <- w.ws.iterations;
    w.ws.checkpoint_time <- w.ws.checkpoint_time +. (Clock.now () -. t0)

(* The commit dance: everyone cuts into the uncommitted bank, a barrier
   collects the bank writes, worker 0 promotes the epoch, and a second
   barrier keeps anyone from mutating post-cut state before the
   promotion is visible.  A crash anywhere in the dance is harmless:
   [committed] still names the previous epoch, whose parity bank was
   never touched. *)
let cut_epoch w =
  match w.sh.ckpt with
  | None -> ()
  | Some c ->
    let e = Checkpoint.next_epoch c in
    cut_epoch_local w;
    await_barrier w;
    if w.me = 0 then begin
      Checkpoint.commit c ~epoch:e;
      Checkpoint.clear_request c
    end;
    await_barrier w

let cut_due_global w ~pass =
  match w.sh.ckpt with
  | Some c -> pass mod Checkpoint.every c = 0
  | None -> false

let cut_pending w =
  match w.sh.ckpt with Some c -> Checkpoint.requested c | None -> false

let maybe_request_cut w =
  match w.sh.ckpt with
  | Some c when w.ws.iterations - w.last_cut >= Checkpoint.every c -> Checkpoint.request c
  | Some _ | None -> ()

(* SSP/DWS cut rendezvous: the asynchronous strategies have no natural
   quiescent point, so a pending request briefly forces one.  Barrier 1
   stops every worker at its loop top (no one is producing); the drain
   then empties every inbox (all sends happened before barrier 1);
   barrier 2 certifies the exchange empty; [cut_epoch] takes and
   commits the cut.  Deadlock-free because the requesting worker is
   Termination-active from before its request until the cut completes
   (it requested right after running an iteration and never clears its
   flag while joining), so no peer can observe quiescence and exit
   while a request is outstanding. *)
let join_cut w =
  if Option.is_some w.sh.ckpt then begin
    await_barrier w;
    ignore (drain_and_merge w);
    await_barrier w;
    cut_epoch w
  end

(* Resume from the committed epoch after a rollback: refill the delta
   arenas from the bank copies, rebuild the aggregate group index over
   them, and rewind the iteration counters.  [false] when no epoch is
   committed — the caller restarts the stratum from [run_init]. *)
let restore w =
  match w.sh.ckpt with
  | None -> false
  | Some c ->
    let e = Checkpoint.epoch c in
    if e = 0 then false
    else begin
      let bank = Checkpoint.bank c ~worker:w.me ~epoch:e in
      clear_deltas w;
      Array.iteri
        (fun cid src ->
          let len = Arena.length src in
          if len > 0 then begin
            ignore (Arena.append_block w.deltas.(cid) (Arena.data src) ~off:0 ~tuples:len);
            match w.delta_groups.(cid) with
            | None -> ()
            | Some groups ->
              let pos, _ = Option.get w.sx.sx_copies.(cid).Exchange.ci_agg in
              let arena = w.deltas.(cid) in
              for slot = 0 to Arena.length arena - 1 do
                Hashtbl.replace groups (Tuple.group_key (Arena.get arena slot) ~agg_pos:pos) slot
              done
          end)
        bank.Checkpoint.bk_deltas;
      w.ws.iterations <- bank.Checkpoint.bk_iterations;
      w.last_cut <- bank.Checkpoint.bk_iterations;
      Atomic.set w.sh.iter_counts.(w.me) bank.Checkpoint.bk_iterations;
      true
    end

(* --- initialization: base rules over the shared scan arenas --- *)

let run_init w =
  let st = w.sh.steal in
  if w.me = 0 then
    List.iter
      (fun p ->
        bail_if_cancelled w;
        ignore (Eval.run_prepared p ~scan:`Unit))
      w.unit_pipes;
  if Steal.enabled st then begin
    (* publish this worker's contiguous share of every shared scan arena
       as morsels — peers that finish their own share steal the rest *)
    Array.iteri
      (fun g src ->
        bail_if_cancelled w;
        let len = Arena.length src in
        let lo = len * w.me / w.sh.n and hi = len * (w.me + 1) / w.sh.n in
        if hi > lo then
          Steal.publish_range st ~me:w.me ~kind:Steal.Init ~gid:g ~arena:src ~first:lo
            ~len:(hi - lo))
      w.init_arenas;
    let continue_ = ref true in
    while !continue_ do
      match Steal.pop_own st ~me:w.me with
      | Some m ->
        w.ws.tuples_processed <- w.ws.tuples_processed + exec_morsel w m;
        Steal.complete st m
      | None -> continue_ := false
    done;
    join_morsels w
  end
  else
    (* stealing off: the historical strided stripe, copied into a scratch
       arena per group *)
    Array.iteri
      (fun g src ->
        bail_if_cancelled w;
        let len = Arena.length src and arity = Arena.arity src in
        let sdata = Arena.data src in
        let stripe = take_arena w.sc ~arity in
        let k = ref w.me in
        while !k < len do
          ignore (Arena.push_slice stripe sdata (!k * arity));
          k := !k + w.sh.n
        done;
        List.iter
          (fun p ->
            w.ws.tuples_processed <-
              w.ws.tuples_processed + Eval.run_prepared p ~scan:(`Flat stripe))
          w.init_pipes.(g);
        give_arena w.sc stripe)
      w.init_arenas;
  flush_outgoing w

(* Non-recursive strata have no fixpoint loop: after every worker has
   flushed its init-rule output, one barrier makes all pushes visible,
   and one drain folds each worker's inbox into its partition of the
   stratum's stores.  Crash containment and cancellation reuse the same
   poisoning protocol as the recursive loops; the barrier tail steals
   leftover init morsels when the board is on. *)
let finish_nonrecursive w =
  await_barrier w;
  ignore (drain_and_merge w);
  w.ws.iterations <- w.ws.iterations + 1

(* --- end of stratum: recycle the scratch --- *)

let recycle w =
  Array.iter
    (fun a ->
      Arena.clear a;
      give_arena w.sc a)
    w.deltas;
  Distribute.release w.dist (give_frame w.sc);
  Qmodel.reset w.sc.qm
