open Dcd_planner
module Tuple = Dcd_storage.Tuple
module Arena = Dcd_storage.Arena
module Relation = Dcd_storage.Relation
module Partition = Dcd_storage.Partition
module Frame = Dcd_concurrent.Frame
module Clock = Dcd_util.Clock
module Barrier = Dcd_concurrent.Barrier
module Termination = Dcd_concurrent.Termination
module Cancel = Dcd_concurrent.Cancel
module Fault = Dcd_concurrent.Fault

(* --- persistent scratch: survives from stratum to stratum --- *)

(* Everything a worker allocates per stratum that the next stratum can
   reuse: the queueing model (reset, same producer count), the drain
   counting array, and free lists of cleared delta arenas and exchange
   frames keyed by their shape.  Owned by one worker index for the whole
   run; only that pool domain touches it during evaluation. *)
type scratch = {
  qm : Qmodel.t;
  drained_from : int array;
  mutable spare_arenas : Arena.t list;
  mutable spare_frames : Frame.t list;
}

let make_scratch ~workers () =
  {
    qm = Qmodel.create ~producers:workers ();
    drained_from = Array.make workers 0;
    spare_arenas = [];
    spare_frames = [];
  }

let take_arena sc ~arity =
  let rec pick acc = function
    | [] -> Arena.create ~arity ()
    | a :: rest when Arena.arity a = arity ->
      sc.spare_arenas <- List.rev_append acc rest;
      Arena.clear a;
      a
    | a :: rest -> pick (a :: acc) rest
  in
  pick [] sc.spare_arenas

let give_arena sc a = sc.spare_arenas <- a :: sc.spare_arenas

let take_frame sc ~arity ~contrib =
  let rec pick acc = function
    | [] -> Frame.create ~arity ~contrib ()
    | f :: rest when Frame.arity f = arity && Frame.has_contrib f = contrib ->
      sc.spare_frames <- List.rev_append acc rest;
      Frame.clear f;
      f
    | f :: rest -> pick (f :: acc) rest
  in
  pick [] sc.spare_frames

let give_frame sc f = sc.spare_frames <- f :: sc.spare_frames

(* --- per-stratum shared coordination state --- *)

type shared = {
  n : int;
  exch : Exchange.t;
  barrier : Barrier.t;
  failed : bool Atomic.t;
  token : Cancel.t;
  (* Per-worker heartbeats of *useful* work (rules evaluated, batches
     merged), bumped only between units of real progress: an idle worker
     spinning through backoff does not beat, so a quiescence livelock
     goes flat and the watchdog can see it.  Plain ints read racily by
     the watchdog domain — staleness only widens the window slightly. *)
  heartbeats : int array;
  iter_counts : int Atomic.t array;
  nonempty : bool Atomic.t array;
  inject : Fault.site -> worker:int -> unit;
  max_iterations : int;
}

let make_shared ~exch ~token ~fault ~max_iterations =
  let n = Exchange.workers exch in
  let failed = Atomic.make false in
  (* Fault injection: [inject] is a no-op closure when disabled, so the
     sites cost one static call on a frame/batch/loop-pass granularity —
     never per tuple. *)
  let inject =
    match fault with
    | None -> fun _site ~worker:_ -> ()
    | Some f ->
      Fault.set_stop f (fun () -> Atomic.get failed || Cancel.is_set token);
      fun site ~worker -> Fault.hit f site ~worker
  in
  {
    n;
    exch;
    barrier = Barrier.create n;
    failed;
    token;
    heartbeats = Array.make n 0;
    iter_counts = Array.init n (fun _ -> Atomic.make 0);
    nonempty = Array.init n (fun _ -> Atomic.make false);
    inject;
    max_iterations;
  }

(* --- per-stratum compiled context, shared read-only by all workers --- *)

type stratum_ctx = {
  sx_catalog : Catalog.t;
  sx_copies : Exchange.copy_info array;
  sx_h : Partition.t;
  sx_partial_agg : bool;
  sx_init : (Physical.compiled_rule * int array) list;
  sx_delta : (Physical.compiled_rule * int array * int) list;
  sx_scan_sources : (string * Arena.t) list;
}

(* Flat scan source for a whole relation: init rules scan relations
   through an arena cursor striped across workers, not a boxed-tuple
   vector. *)
let arena_of_relation rel =
  let a =
    Arena.create ~capacity:(max 1 (Relation.length rel)) ~arity:(Relation.arity rel) ()
  in
  Relation.iter_slices rel (fun data off -> ignore (Arena.push_slice a data off));
  a

let make_stratum ~catalog ~copies ~h ~partial_agg (sp : Physical.stratum_plan) =
  (* distribution targets per head predicate, resolved once per stratum:
     the emit path indexes an int array, never a string lookup *)
  let head_targets =
    List.map
      (fun (pp : Physical.pred_plan) ->
        (pp.pred, Array.of_list (Exchange.copies_of_pred copies pp.pred)))
      sp.pred_plans
  in
  let targets_of pred = List.assoc pred head_targets in
  {
    sx_catalog = catalog;
    sx_copies = copies;
    sx_h = h;
    sx_partial_agg = partial_agg;
    sx_init =
      List.map
        (fun (cr : Physical.compiled_rule) -> (cr, targets_of cr.head.hpred))
        sp.init_rules;
    sx_delta =
      List.map
        (fun (cr : Physical.compiled_rule) ->
          let scan_cid =
            match cr.scan with
            | Physical.S_delta { pred; route; _ } -> Exchange.copy_id copies pred route
            | Physical.S_base _ | Physical.S_unit -> assert false
          in
          (cr, targets_of cr.head.hpred, scan_cid))
        sp.delta_rules;
    sx_scan_sources =
      List.filter_map
        (fun (cr : Physical.compiled_rule) ->
          match cr.scan with
          | Physical.S_base { pred; _ } ->
            Some (pred, arena_of_relation (Catalog.get catalog pred))
          | Physical.S_delta _ | Physical.S_unit -> None)
        sp.init_rules;
  }

let stall_snapshot sh ~strategy ~window =
  let term = Exchange.term sh.exch in
  {
    Engine_error.stall_window = window;
    stall_strategy = strategy;
    stall_sent = Termination.total_sent term;
    stall_consumed = Termination.total_consumed term;
    stall_workers =
      Array.init sh.n (fun w ->
          {
            Engine_error.ws_worker = w;
            ws_active = Termination.is_active term ~worker:w;
            ws_iterations = Atomic.get sh.iter_counts.(w);
            ws_consumed = Termination.consumed_of term ~worker:w;
            ws_inbox_tuples = Exchange.inbox_tuples sh.exch ~dest:w;
            ws_inbox_batches = Exchange.inbox_batches sh.exch ~dest:w;
          });
  }

(* --- the worker --- *)

type t = {
  sh : shared;
  sc : scratch;
  sx : stratum_ctx;
  me : int;
  ws : Run_stats.worker;
  stores : Rec_store.t array;
  deltas : Arena.t array;
  (* Per-iteration group index for aggregate copies: the Gather operator
     emits ONE delta entry per changed group, holding the current
     aggregate (paper Example 6.1).  Without this, a group improved k
     times in one gather would be scanned k times, which explodes
     quadratically on high-degree vertices. *)
  delta_groups : (Tuple.t, int) Hashtbl.t option array;
  dist : Distribute.t;
  emits : (int * Eval.prepared) list; (* scanned copy id, prepared delta rule *)
  init_rules : (Physical.compiled_rule * Eval.prepared) list;
  mutable on_batch : Exchange.batch -> unit;
}

let me t = t.me

let shared t = t.sh

let stats t = t.ws

let push_delta w cid (fresh : Tuple.t) =
  match w.delta_groups.(cid) with
  | None -> ignore (Arena.push w.deltas.(cid) fresh)
  | Some groups -> (
    let pos, _ = Option.get w.sx.sx_copies.(cid).Exchange.ci_agg in
    let group = Tuple.group_key fresh ~agg_pos:pos in
    match Hashtbl.find_opt groups group with
    | Some slot -> Arena.set_slot w.deltas.(cid) slot fresh
    | None ->
      Hashtbl.add groups group (Arena.length w.deltas.(cid));
      ignore (Arena.push w.deltas.(cid) fresh))

let merge_batch w (b : Exchange.batch) =
  w.sh.inject Fault.Merge ~worker:w.me;
  w.sh.heartbeats.(w.me) <- w.sh.heartbeats.(w.me) + 1;
  let store = w.stores.(b.bcopy) in
  (* records are folded in straight from the packed frame: absorbed
     candidates never exist as heap objects on the consumer side *)
  Frame.iter b.bframe (fun data ~toff ~clen ~coff ->
      match Rec_store.merge_slice store ~data ~off:toff ~cdata:data ~coff ~clen with
      | Some fresh -> push_delta w b.bcopy fresh
      | None -> ())

let create ~shared:sh ~scratch:sc ~stratum:sx ~me ~stores ~ws =
  let copies = sx.sx_copies in
  let deltas = Array.map (fun ci -> take_arena sc ~arity:ci.Exchange.ci_arity) copies in
  let delta_groups =
    Array.map
      (fun ci ->
        match ci.Exchange.ci_agg with
        | Some _ -> Some (Hashtbl.create 64 : (Tuple.t, int) Hashtbl.t)
        | None -> None)
      copies
  in
  let dist =
    Distribute.create ~exch:sh.exch ~me ~h:sx.sx_h ~partial_agg:sx.sx_partial_agg
      ~take_frame:(fun ~arity ~contrib -> take_frame sc ~arity ~contrib)
  in
  let ctx =
    {
      Eval.base_iter =
        (fun pred f -> Relation.iter_slices (Catalog.get sx.sx_catalog pred) f);
      base_index =
        (fun pred cols ->
          match Relation.find_index (Catalog.get sx.sx_catalog pred) ~key_cols:cols with
          | Some idx -> idx
          | None ->
            (* Parallel.prebuild_indexes guarantees this cannot happen *)
            assert false);
      rec_resolve = (fun ~pred ~route -> Exchange.copy_id copies pred route);
      rec_matches = (fun cid ~key f -> Rec_store.iter_matches stores.(cid) ~key f);
    }
  in
  (* Rules prepared once per worker and stratum: recursive lookups, the
     scanned copy, and the head's distribution targets all resolve to
     integer ids here, at setup time. *)
  let w =
    {
      sh;
      sc;
      sx;
      me;
      ws;
      stores;
      deltas;
      delta_groups;
      dist;
      emits =
        List.map
          (fun ((cr : Physical.compiled_rule), targets, scan_cid) ->
            (scan_cid, Eval.prepare cr ctx ~emit:(Distribute.emitter dist ~targets)))
          sx.sx_delta;
      init_rules =
        List.map
          (fun ((cr : Physical.compiled_rule), targets) ->
            (cr, Eval.prepare cr ctx ~emit:(Distribute.emitter dist ~targets)))
          sx.sx_init;
      on_batch = ignore;
    }
  in
  w.on_batch <- merge_batch w;
  w

let clear_deltas w =
  Array.iter Arena.clear w.deltas;
  Array.iter (function Some g -> Hashtbl.reset g | None -> ()) w.delta_groups

let delta_size w = Array.fold_left (fun acc a -> acc + Arena.length a) 0 w.deltas

let frozen w = w.sh.max_iterations > 0 && w.ws.iterations >= w.sh.max_iterations

let flush_outgoing w =
  w.sh.inject Fault.Flush ~worker:w.me;
  Distribute.flush w.dist ~ws:w.ws

let drain_and_merge w =
  let total = Exchange.drain w.sh.exch ~me:w.me ~drained_from:w.sc.drained_from w.on_batch in
  if total > 0 then begin
    (* one clock read per drain, not per tuple: the arrival model keeps
       its per-batch framing (see Qmodel) *)
    let now = Clock.now () in
    for j = 0 to w.sh.n - 1 do
      let cnt = w.sc.drained_from.(j) in
      if cnt > 0 then Qmodel.record_arrival w.sc.qm ~from:j ~now ~count:cnt
    done;
    (* Become visibly active BEFORE recording consumption: a peer whose
       quiescence snapshot includes these consumed counts must also see
       this worker active, or it could exit while we still hold
       unprocessed tuples and go on to send to it. *)
    Termination.set_active (Exchange.term w.sh.exch) ~worker:w.me true;
    Termination.consumed (Exchange.term w.sh.exch) ~worker:w.me total
  end;
  total

let run_iteration w =
  let t0 = Clock.now () in
  let processed = ref 0 in
  List.iter
    (fun (scan_cid, prepared) ->
      let batch = w.deltas.(scan_cid) in
      if not (Arena.is_empty batch) then begin
        w.sh.heartbeats.(w.me) <- w.sh.heartbeats.(w.me) + 1;
        processed := !processed + Eval.run_prepared prepared ~scan:(`Flat batch)
      end)
    w.emits;
  clear_deltas w;
  flush_outgoing w;
  let dt = Clock.now () -. t0 in
  w.ws.busy_time <- w.ws.busy_time +. dt;
  w.ws.tuples_processed <- w.ws.tuples_processed + !processed;
  Qmodel.record_service w.sc.qm ~tuples:!processed ~elapsed:dt;
  w.ws.iterations <- w.ws.iterations + 1;
  Atomic.incr w.sh.iter_counts.(w.me)

let timed_wait w f =
  let t0 = Clock.now () in
  f ();
  w.ws.wait_time <- w.ws.wait_time +. (Clock.now () -. t0)

(* A worker that observes cancellation (deadline, external token,
   watchdog, peer crash) exits its loop quietly via [Poisoned] after
   poisoning the barrier, so peers blocked in [await] wake too; the
   structured error is raised once, after the round is joined. *)
let bail_if_cancelled w =
  if Atomic.get w.sh.failed || Cancel.check w.sh.token then begin
    Barrier.poison w.sh.barrier;
    raise Barrier.Poisoned
  end

let decide w = Qmodel.decide w.sc.qm ~buffer_sizes:(Exchange.inbox_sizes w.sh.exch ~dest:w.me)

let decay_model w f = Qmodel.decay w.sc.qm f

let inject w site = w.sh.inject site ~worker:w.me

(* --- initialization: base rules over striped scans --- *)

let run_init w =
  List.iter
    (fun ((cr : Physical.compiled_rule), prepared) ->
      bail_if_cancelled w;
      match cr.scan with
      | Physical.S_unit -> if w.me = 0 then ignore (Eval.run_prepared prepared ~scan:`Unit)
      | Physical.S_base { pred; _ } ->
        let src = List.assoc pred w.sx.sx_scan_sources in
        let len = Arena.length src and arity = Arena.arity src in
        let sdata = Arena.data src in
        let stripe = take_arena w.sc ~arity in
        let k = ref w.me in
        while !k < len do
          ignore (Arena.push_slice stripe sdata (!k * arity));
          k := !k + w.sh.n
        done;
        w.ws.tuples_processed <-
          w.ws.tuples_processed + Eval.run_prepared prepared ~scan:(`Flat stripe);
        give_arena w.sc stripe
      | Physical.S_delta _ -> assert false)
    w.init_rules;
  flush_outgoing w

(* Non-recursive strata have no fixpoint loop: after every worker has
   flushed its striped init-rule output, one barrier makes all pushes
   visible, and one drain folds each worker's inbox into its partition
   of the stratum's stores.  Crash containment and cancellation reuse
   the same poisoning protocol as the recursive loops. *)
let finish_nonrecursive w =
  timed_wait w (fun () -> Barrier.await w.sh.barrier);
  ignore (drain_and_merge w);
  w.ws.iterations <- w.ws.iterations + 1

(* --- end of stratum: recycle the scratch --- *)

let recycle w =
  Array.iter
    (fun a ->
      Arena.clear a;
      give_arena w.sc a)
    w.deltas;
  Distribute.release w.dist (give_frame w.sc);
  Qmodel.reset w.sc.qm
