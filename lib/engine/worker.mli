(** One evaluation worker: its stores, delta arenas, prepared rule
    pipelines and distribution buffers, plus the step primitives the
    {!Strategy} loops drive (init, drain/merge, run one iteration,
    quiesce bookkeeping).

    A worker object lives for one stratum, but its {!scratch} — the
    queueing model, drain counters, and free lists of arenas/frames —
    persists for the whole run and is rethreaded into the next stratum's
    worker, so per-stratum evaluation does not reallocate the hot-path
    buffers.

    With the morsel board ({!Steal}) enabled, every delta and init scan
    is split into fixed-size morsels published on the owner's deque;
    idle peers claim them, evaluate them against the {e victim's} stores
    (the discriminating hash routed the matching recursive tuples
    there), and emit through their {e own} Distribute buffers and
    Exchange row, keeping every SPSC queue single-producer. *)

open Dcd_planner

(** {1 Persistent per-worker scratch} *)

type scratch

val make_scratch : workers:int -> unit -> scratch
(** One per pool worker, created once per run. *)

(** {1 Per-stratum shared coordination state} *)

type shared = {
  n : int;
  exch : Exchange.t;
  barrier : Dcd_concurrent.Barrier.t;
  steal : Steal.t; (** the stratum's morsel board *)
  failed : bool Atomic.t;
  mutable token : Dcd_concurrent.Cancel.t;
      (** the round's cancellation token; swapped for a fresh one per
          recovery attempt, only between rounds with the pool idle *)
  ckpt : Checkpoint.t option; (** epoch store; [None] = no checkpointing *)
  heartbeats : int array;
      (** useful-work beats, plain ints read racily by the watchdog *)
  iter_counts : int Atomic.t array;
  nonempty : bool Atomic.t array; (** per-worker votes of the Global barrier round *)
  mutable inject : Dcd_concurrent.Fault.site -> worker:int -> unit;
  max_iterations : int;
  merge_batch_sorted : bool;
      (** batch-sorted merge path on: drains stage candidates into
          per-store runs, folded in one sorted index walk per drain *)
}

val make_shared :
  exch:Exchange.t ->
  token:Dcd_concurrent.Cancel.t ->
  fault:Dcd_concurrent.Fault.t option ->
  max_iterations:int ->
  steal:Steal.t ->
  merge_sorted:bool ->
  ckpt:Checkpoint.t option ->
  shared

val reset_shared : shared -> token:Dcd_concurrent.Cancel.t -> unit
(** Between recovery attempts only, every worker collected: clears the
    crash flag, heartbeats, iteration counts and votes, resets the
    barrier, and installs the next attempt's token.  The exchange,
    steal board and store rollback are reset separately by the
    orchestrator. *)

(** Read-only per-stratum compilation context, built once by the
    orchestrator and shared by every worker: rules paired with their
    head-target copy arrays (resolved at rule-compile time, so the emit
    path never does a string lookup), the shared flat scan sources the
    init rules range over, and the morsel group tables (a morsel names a
    group id that means the same thing to its owner and to any thief). *)
type stratum_ctx = {
  sx_catalog : Catalog.t;
  sx_copies : Exchange.copy_info array;
  sx_h : Dcd_storage.Partition.t;
  sx_partial_agg : bool;
  sx_init : (Physical.compiled_rule * int array) list;
  sx_delta : (Physical.compiled_rule * int array * int) list;
      (** (rule, head targets, scanned copy id) *)
  sx_scan_sources : (string * Dcd_storage.Arena.t) list;
  sx_delta_groups : (int * (Physical.compiled_rule * int array) list) array;
      (** delta rules grouped by scanned copy id; the group index is the
          [m_gid] of [Delta] morsels *)
  sx_init_groups : (Dcd_storage.Arena.t * (Physical.compiled_rule * int array) list) array;
      (** [S_base] init rules grouped by scanned relation (one shared
          flat arena per distinct relation); the group index is the
          [m_gid] of [Init] morsels *)
  sx_init_unit : (Physical.compiled_rule * int array) list;
}

val make_stratum :
  catalog:Catalog.t ->
  copies:Exchange.copy_info array ->
  h:Dcd_storage.Partition.t ->
  partial_agg:bool ->
  Physical.stratum_plan ->
  stratum_ctx
(** Resolves every rule's head targets and scanned copy to integer ids,
    snapshots the init-rule scan relations into flat arenas (one per
    distinct relation), and builds the morsel group tables. *)

val stall_snapshot : shared -> strategy:string -> window:float -> Engine_error.stall_diagnostic
(** The watchdog's evidence on stall: global and per-worker termination
    counters, active flags, iteration counts and inbox occupancy. *)

(** {1 The worker} *)

type t

val create :
  shared:shared ->
  scratch:scratch ->
  stratum:stratum_ctx ->
  me:int ->
  stores:Rec_store.t array array ->
  ws:Run_stats.worker ->
  t
(** Prepares every rule pipeline against this worker's stores and
    scratch.  [stores] is the full per-worker store matrix
    ([stores.(v).(cid)]): row [me] backs the worker's own pipelines, and
    when stealing is on, one extra pipeline set per victim row binds
    recursive lookups to that victim's partition.  Runs on the pool
    domain itself, so preparation is parallel across workers. *)

val me : t -> int

val shared : t -> shared

val stats : t -> Run_stats.worker

val run_init : t -> unit
(** Evaluates the init rules ([S_unit] on worker 0 only; [S_base] scans
    of the shared flat arenas: published as stealable [Init] morsels
    over this worker's contiguous share when the board is on, otherwise
    striped into a scratch arena) and flushes the produced deltas into
    the exchange. *)

val finish_nonrecursive : t -> unit
(** The whole evaluation of a non-recursive stratum after {!run_init}:
    one barrier (all flushes visible, stealing leftover init morsels in
    the barrier tail when the board is on), one drain into this worker's
    partition of the stores. *)

val drain_and_merge : t -> int
(** Drains this worker's inbox, folds every batch into its stores
    (new-delta tuples land in the delta arenas), feeds the arrival
    model, and updates the termination counters.  Under the
    batch-sorted merge path the drain stages candidates into per-store
    runs and the fold happens here, after the termination counters, as
    one sorted index walk per store ({!Rec_store.merge_run}).  Returns
    the tuple count drained. *)

val run_iteration : t -> unit
(** One local semi-naive iteration: evaluate every delta rule group over
    the current delta arenas (publishing large scans as stealable
    morsels and joining on their completion when the board is on), clear
    them, flush the produced tuples. *)

val steal_enabled : t -> bool
(** The morsel board is on for this stratum (workers > 1 and the config
    did not disable it). *)

val try_steal : t -> bool
(** One steal attempt: claim a morsel from the most-loaded peer, execute
    it against the victim's stores, flush the emissions through this
    worker's own exchange row, then release it.  Returns [false] when
    nothing was claimed.  Accounts its own busy time, steal counters and
    service-model samples. *)

val await_barrier : t -> unit
(** Barrier arrival that fills the wait with {!try_steal} attempts when
    the board is on (plain timed await otherwise). *)

val delta_size : t -> int

val clear_deltas : t -> unit

val frozen : t -> bool
(** The [max_iterations] cap has been reached for this worker. *)

val timed_wait : t -> (unit -> unit) -> unit
(** Runs a blocking action, accounting its duration as idle time. *)

val bail_if_cancelled : t -> unit
(** If the run failed or was cancelled: poison the barrier and raise
    {!Dcd_concurrent.Barrier.Poisoned} (the quiet exit path). *)

val decide : t -> Qmodel.decision
(** {!Qmodel.decide} against the live occupancy of this worker's inbox,
    with the stealable-work signal from the morsel board. *)

val decay_model : t -> float -> unit

val inject : t -> Dcd_concurrent.Fault.site -> unit
(** Evaluate one fault-injection site as this worker. *)

(** {1 Checkpoint epochs (crash recovery)}

    All of these are no-ops (or [false]) when the stratum has no
    {!Checkpoint.t}. *)

val cut_epoch : t -> unit
(** Cut and commit the next epoch.  Caller guarantees global
    quiescence: exchange empty, morsels joined, deltas merged.  Runs
    the full commit dance (cut, barrier, worker-0 promote, barrier), so
    {e every} worker must call it — the Global strategy does so in
    lockstep when {!cut_due_global}. *)

val cut_due_global : t -> pass:int -> bool
(** Whether the Global strategy's lockstep pass count says to cut. *)

val maybe_request_cut : t -> unit
(** SSP/DWS: raise the cut-request flag when this worker is
    [checkpoint_every] local iterations past its last cut. *)

val cut_pending : t -> bool

val join_cut : t -> unit
(** SSP/DWS cut rendezvous: force global quiescence (barrier, drain,
    barrier) and run {!cut_epoch}.  Every worker must call it once per
    pending request — they poll {!cut_pending} at their loop tops. *)

val restore : t -> bool
(** Resume from the committed epoch after the orchestrator rolled the
    stores back: refill the delta arenas and aggregate group indexes
    from the epoch's banks and rewind the iteration counters.  [false]
    when no epoch is committed — the caller restarts from
    {!run_init}. *)

val recycle : t -> unit
(** End of stratum: return the delta arenas and outgoing frames to the
    scratch free lists and reset the queueing model, so the next
    stratum's {!create} reuses them. *)
