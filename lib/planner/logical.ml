open Dcd_datalog

type scan_kind =
  | Scan_base of Ast.atom
  | Scan_delta of {
      atom : Ast.atom;
      occurrence : int;
    }
  | Scan_unit

type pipe_elem =
  | L_join of {
      atom : Ast.atom;
      recursive : bool;
    }
  | L_neg of Ast.atom
  | L_filter of Ast.cmp_op * Ast.expr * Ast.expr
  | L_assign of string * Ast.expr

type rule_pipeline = {
  rule : Ast.rule;
  scan : scan_kind;
  pipeline : pipe_elem list;
}

module Sset = Set.Make (String)

let recursive_occurrences stratum (r : Ast.rule) =
  List.length
    (List.filter (fun a -> Analysis.is_recursive_atom stratum a) (Ast.body_atoms r))

(* Greedy linearization.  [remaining] holds unplaced literals; each step
   emits the cheapest literal whose inputs are available. *)
let order stratum (r : Ast.rule) ~delta_occurrence =
  let is_rec a = Analysis.is_recursive_atom stratum a in
  (* locate the scan literal *)
  let scan, remaining =
    match delta_occurrence with
    | Some k ->
      let count = ref (-1) in
      let scan = ref None in
      let rest =
        List.filter
          (fun lit ->
            match (lit, !scan) with
            | Ast.Pos a, None when is_rec a ->
              incr count;
              if !count = k then begin
                scan := Some (Scan_delta { atom = a; occurrence = k });
                false
              end
              else true
            | _ -> true)
          r.body
      in
      (match !scan with
      | Some s -> (s, rest)
      | None ->
        invalid_arg
          (Printf.sprintf "Logical.order: rule has no recursive occurrence %d (%s)" k
             (Ast.rule_to_string r)))
    | None -> (
      (* base rule: scan the first positive atom if any *)
      let rec split acc = function
        | [] -> (Scan_unit, List.rev acc)
        | Ast.Pos a :: rest when not (is_rec a) -> (Scan_base a, List.rev_append acc rest)
        | lit :: rest -> split (lit :: acc) rest
      in
      split [] r.body)
  in
  let bound = ref Sset.empty in
  let bind_atom (a : Ast.atom) =
    List.iter (fun t -> List.iter (fun v -> bound := Sset.add v !bound) (Ast.vars_of_term t)) a.args
  in
  (match scan with
  | Scan_base a | Scan_delta { atom = a; _ } -> bind_atom a
  | Scan_unit -> ());
  let all_bound vars = List.for_all (fun v -> Sset.mem v !bound) vars in
  let assign_target lhs rhs =
    (* [Some (x, e)] when the Eq literal can run as an assignment *)
    match (lhs, rhs) with
    | Ast.Term (Ast.Var x), e when (not (Sset.mem x !bound)) && all_bound (Ast.vars_of_expr e)
      ->
      Some (x, e)
    | e, Ast.Term (Ast.Var x) when (not (Sset.mem x !bound)) && all_bound (Ast.vars_of_expr e)
      ->
      Some (x, e)
    | _ -> None
  in
  let atom_score (a : Ast.atom) =
    (* bound argument positions = usable index key columns *)
    List.fold_left
      (fun acc t ->
        match t with
        | Ast.Int _ | Ast.Sym _ -> acc + 1
        | Ast.Var v -> if Sset.mem v !bound then acc + 1 else acc)
      0 a.args
  in
  let rec place acc remaining =
    if remaining = [] then Ok (List.rev acc)
    else begin
      (* 1. assignments, 2. filters, 3. negations, 4. best-scored atom *)
      let ready_assign =
        List.find_opt
          (function
            | Ast.Cmp (Ast.Eq, lhs, rhs) -> assign_target lhs rhs <> None
            | _ -> false)
          remaining
      in
      let ready_filter =
        List.find_opt
          (function
            | Ast.Cmp (_, lhs, rhs) ->
              all_bound (Ast.vars_of_expr lhs @ Ast.vars_of_expr rhs)
            | _ -> false)
          remaining
      in
      let ready_neg =
        List.find_opt
          (function
            | Ast.Neg_lit a -> all_bound (List.concat_map Ast.vars_of_term a.Ast.args)
            | _ -> false)
          remaining
      in
      let best_atom =
        List.fold_left
          (fun best lit ->
            match lit with
            | Ast.Pos a -> (
              let s = atom_score a in
              match best with
              | Some (_, s') when s' >= s -> best
              | _ -> Some (lit, s))
            | _ -> best)
          None remaining
      in
      let chosen =
        match (ready_assign, ready_filter, ready_neg, best_atom) with
        | Some l, _, _, _ | None, Some l, _, _ | None, None, Some l, _ -> Some l
        | None, None, None, Some (l, _) -> Some l
        | None, None, None, None -> None
      in
      match chosen with
      | None ->
        Error
          (Printf.sprintf "cannot order rule body (unbound comparison?): %s"
             (Ast.rule_to_string r))
      | Some lit ->
        let remaining = List.filter (fun l -> l != lit) remaining in
        let elem =
          match lit with
          | Ast.Pos a ->
            bind_atom a;
            L_join { atom = a; recursive = is_rec a }
          | Ast.Neg_lit a -> L_neg a
          | Ast.Cmp (Ast.Eq, lhs, rhs) -> (
            match assign_target lhs rhs with
            | Some (x, e) ->
              bound := Sset.add x !bound;
              L_assign (x, e)
            | None -> L_filter (Ast.Eq, lhs, rhs))
          | Ast.Cmp (op, lhs, rhs) -> L_filter (op, lhs, rhs)
        in
        place (elem :: acc) remaining
    end
  in
  match place [] remaining with
  | Error e -> Error e
  | Ok pipeline -> Ok { rule = r; scan; pipeline }

(* --- cyclic-body analysis (generic-join path selection) --- *)

let positive_atoms (r : Ast.rule) =
  List.filter_map (function Ast.Pos a -> Some a | _ -> None) r.body

let atom_vars (a : Ast.atom) = List.concat_map Ast.vars_of_term a.args

(* Join-graph cycle check via GYO ear removal (alpha-acyclicity of the
   body hypergraph).  An "ear" is an atom whose variables shared with
   the rest of the body are covered by one other single atom; repeatedly
   plucking ears empties an acyclic body.  Triangle (arc(X,Y), arc(Y,Z),
   arc(X,Z)) has no ear and is cyclic; SG's recursive body (arc(A,X),
   sg(A,B), arc(B,Y)) is a chain; subsumed-atom shapes like
   a(X,Z), c(Z), d(Z) reduce away and correctly stay on the binary
   path. *)
let body_cyclic (r : Ast.rule) =
  let edges =
    List.map (fun a -> List.sort_uniq compare (atom_vars a)) (positive_atoms r)
  in
  let rec reduce edges =
    match edges with
    | [] | [ _ ] -> true
    | _ -> (
      let is_ear e others =
        let shared =
          List.filter (fun v -> List.exists (fun o -> List.mem v o) others) e
        in
        shared = []
        || List.exists (fun o -> List.for_all (fun v -> List.mem v o) shared) others
      in
      let rec find_ear acc = function
        | [] -> None
        | e :: rest ->
          let others = List.rev_append acc rest in
          if is_ear e others then Some others else find_ear (e :: acc) rest
      in
      match find_ear [] edges with
      | Some rest -> reduce rest
      | None -> false)
  in
  not (reduce edges)

(* Greedy elimination order for the variables not bound by the scan:
   highest atom-degree first (intersecting more iterators earlier prunes
   harder), ties broken toward variables adjacent to already-bound ones
   (keeps trie prefixes usable), then lexicographically so plans are
   deterministic. *)
let elimination_order ~bound atoms =
  let boundset = ref (Sset.of_list bound) in
  let unbound =
    List.concat_map atom_vars atoms
    |> List.sort_uniq compare
    |> List.filter (fun v -> not (Sset.mem v !boundset))
  in
  let degree v =
    List.length (List.filter (fun a -> List.mem v (atom_vars a)) atoms)
  in
  let adjacent_bound v =
    List.exists
      (fun a ->
        let vs = atom_vars a in
        List.mem v vs && List.exists (fun w -> Sset.mem w !boundset) vs)
      atoms
  in
  let rec loop acc remaining =
    match remaining with
    | [] -> List.rev acc
    | _ -> (
      let best =
        List.fold_left
          (fun best v ->
            let s = (degree v, adjacent_bound v) in
            match best with
            | Some (bv, (bo, ba)) ->
              let o, a = s in
              if o > bo || (o = bo && a && not ba) || (o = bo && a = ba && v < bv) then
                Some (v, s)
              else best
            | None -> Some (v, s))
          None remaining
      in
      match best with
      | None -> List.rev acc
      | Some (v, _) ->
        boundset := Sset.add v !boundset;
        loop (v :: acc) (List.filter (fun w -> w <> v) remaining))
  in
  loop [] unbound

let pp fmt { rule; scan; pipeline } =
  (match scan with
  | Scan_base a -> Format.fprintf fmt "SCAN %s" a.Ast.pred
  | Scan_delta { atom; occurrence } ->
    Format.fprintf fmt "SCAN d.%s#%d" atom.Ast.pred occurrence
  | Scan_unit -> Format.fprintf fmt "UNIT");
  List.iter
    (fun elem ->
      match elem with
      | L_join { atom; recursive } ->
        Format.fprintf fmt " JOIN %s%s" (if recursive then "rec:" else "") atom.Ast.pred
      | L_neg a -> Format.fprintf fmt " ANTIJOIN %s" a.Ast.pred
      | L_filter (op, lhs, rhs) ->
        Format.fprintf fmt " FILTER(%a)" Ast.pp_literal (Ast.Cmp (op, lhs, rhs))
      | L_assign (x, e) -> Format.fprintf fmt " COMPUTE(%s := %a)" x Ast.pp_expr e)
    pipeline;
  Format.fprintf fmt " PROJECT %s" rule.Ast.head_pred

let to_string p = Format.asprintf "%a" pp p
