open Dcd_datalog

(** Logical planning: ordering a rule body into a left-deep pipeline
    (paper §5.1).

    The optimizations applied here are the ones the paper calls out:
    - the recursive (delta) occurrence is moved to the leftmost, outer
      position of the join so the indexes on the other relations drive
      the lookups;
    - selections (comparison literals) are pushed down to the earliest
      point at which their variables are bound;
    - assignments ([X = expr] with [X] unbound) are placed as soon as
      their inputs are available;
    - remaining atoms are ordered greedily by the number of bound
      argument positions, i.e. most selective index access first. *)

type scan_kind =
  | Scan_base of Ast.atom (** full scan of a base / lower-stratum relation *)
  | Scan_delta of {
      atom : Ast.atom;
      occurrence : int; (** which recursive body occurrence is the delta *)
    }
  | Scan_unit (** body without positive atoms (e.g. SSSP's exit rule) *)

type pipe_elem =
  | L_join of {
      atom : Ast.atom;
      recursive : bool; (** same-stratum predicate: looked up in the local
                            partitioned copy rather than a shared base index *)
    }
  | L_neg of Ast.atom
  | L_filter of Ast.cmp_op * Ast.expr * Ast.expr
  | L_assign of string * Ast.expr

type rule_pipeline = {
  rule : Ast.rule;
  scan : scan_kind;
  pipeline : pipe_elem list;
}

val order :
  Analysis.stratum -> Ast.rule -> delta_occurrence:int option -> (rule_pipeline, string) result
(** [order stratum rule ~delta_occurrence] linearizes the body.  For a
    recursive rule, [delta_occurrence = Some k] designates the [k]-th
    recursive body atom (0-based, counting only same-stratum atoms) as
    the delta to scan; the semi-naive rewriting generates one pipeline
    per occurrence.  [None] treats the rule as a base rule. *)

val recursive_occurrences : Analysis.stratum -> Ast.rule -> int
(** Number of same-stratum atoms in the body. *)

val body_cyclic : Ast.rule -> bool
(** Join-graph cycle check over the positive body atoms: GYO ear
    removal, i.e. alpha-acyclicity of the body hypergraph.  Cyclic
    bodies — triangles, clique patterns — are where binary join
    pipelines materialize doomed intermediates and the generic-join
    path is selected. *)

val elimination_order : bound:string list -> Ast.atom list -> string list
(** Greedy variable elimination order over [atoms] for the variables not
    in [bound]: highest atom-degree first, ties toward variables
    adjacent to bound ones, then name order (deterministic plans). *)

val pp : Format.formatter -> rule_pipeline -> unit
(** One-line rendering, e.g.
    [SCAN δcc2 ⋈ arc[X] → σ(...) → π cc2(Y, min<Z>)]. *)

val to_string : rule_pipeline -> string
