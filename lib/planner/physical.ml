open Dcd_datalog

type src =
  | Const of int
  | Reg of int

type join_method =
  | Hash
  | Index
  | Nested_loop

type rel_ref =
  | R_base of string
  | R_rec of {
      pred : string;
      route : int array;
    }

type code =
  | C_const of int
  | C_reg of int
  | C_bin of Ast.binop * code * code
  | C_neg of code

type step =
  | Lookup of {
      rel : rel_ref;
      method_ : join_method;
      key_cols : int array;
      key_src : src array;
      binds : (int * int) array;
      checks : (int * src) array;
      negated : bool;
    }
  | Filter of {
      op : Ast.cmp_op;
      lhs : code;
      rhs : code;
    }
  | Compute of {
      reg : int;
      code : code;
    }

type scan_spec =
  | S_base of {
      pred : string;
      binds : (int * int) array;
      checks : (int * src) array;
    }
  | S_delta of {
      pred : string;
      route : int array;
      binds : (int * int) array;
      checks : (int * src) array;
    }
  | S_unit

type head = {
  hpred : string;
  args : src array;
  agg : (int * Ast.agg_kind * src array) option;
}

(* Generic (worst-case-optimal) join: the non-scan atoms become trie
   iterators over sorted indexes and the unbound variables are resolved
   one level at a time by multiway intersection (leapfrog). *)
type gj_atom = {
  ga_pred : string; (* base / lower-stratum relation *)
  ga_cols : int array;
      (* full column permutation defining the trie order: the
         scan-bound/constant columns first, then the eliminated
         variables' columns in elimination order *)
  ga_prefix : src array; (* sources filling the leading bound columns *)
}

type gj_level = {
  gv_reg : int; (* register receiving this level's variable *)
  gv_atoms : (int * int) array;
      (* (atom index, probe depth): at this level the atom's trie key is
         probed on its first [depth] columns, the candidate value living
         at slot [depth - 1] *)
  gv_steps : step array; (* residual steps runnable once this binds *)
}

type gj = {
  gj_atoms : gj_atom array;
  gj_prelude : step array; (* steps runnable from the scan bindings alone *)
  gj_levels : gj_level array;
  gj_elim : string list; (* elimination order, for explain *)
}

type compiled_rule = {
  source : Ast.rule;
  logical : string;
  nregs : int;
  scan : scan_spec;
  steps : step array; (* binary pipeline; [||] when [gj] is chosen *)
  gj : gj option;
  head : head;
}

type pred_plan = {
  pred : string;
  arity : int;
  agg : (int * Ast.agg_kind) option;
  routes : int array list;
}

type stratum_plan = {
  stratum : Analysis.stratum;
  pred_plans : pred_plan list;
  init_rules : compiled_rule list;
  delta_rules : compiled_rule list;
}

type t = {
  info : Analysis.info;
  symbols : Dcd_util.Symbol.table;
  params : (string * int) list;
  strata : stratum_plan list;
}

exception Plan_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Plan_error s)) fmt

(* --- evaluation of compiled arithmetic --- *)

let rec eval_code code regs =
  match code with
  | C_const c -> c
  | C_reg r -> Array.unsafe_get regs r
  | C_bin (op, a, b) -> (
    let x = eval_code a regs and y = eval_code b regs in
    match op with
    | Ast.Add -> x + y
    | Ast.Sub -> x - y
    | Ast.Mul -> x * y
    | Ast.Div -> x / y
    | Ast.Mod -> x mod y)
  | C_neg e -> -eval_code e regs

let eval_cmp op x y =
  match op with
  | Ast.Eq -> x = y
  | Ast.Ne -> x <> y
  | Ast.Lt -> x < y
  | Ast.Le -> x <= y
  | Ast.Gt -> x > y
  | Ast.Ge -> x >= y

(* --- compilation context --- *)

type ctx = {
  symbols : Dcd_util.Symbol.table;
  cparams : (string * int) list;
  regs : (string, int) Hashtbl.t;
  mutable next_reg : int;
}

let reg_of ctx v =
  match Hashtbl.find_opt ctx.regs v with
  | Some r -> r
  | None ->
    let r = ctx.next_reg in
    ctx.next_reg <- r + 1;
    Hashtbl.add ctx.regs v r;
    r

let is_bound ctx v = Hashtbl.mem ctx.regs v

let const_of ctx s =
  match List.assoc_opt s ctx.cparams with
  | Some v -> v
  | None -> Dcd_util.Symbol.intern ctx.symbols s

let src_of_term ctx (t : Ast.term) =
  match t with
  | Ast.Int i -> Const i
  | Ast.Sym s -> Const (const_of ctx s)
  | Ast.Var v ->
    if not (is_bound ctx v) then fail "internal: variable %s used before binding" v;
    Reg (reg_of ctx v)

let rec code_of_expr ctx (e : Ast.expr) =
  match e with
  | Ast.Term t -> (
    match src_of_term ctx t with
    | Const c -> C_const c
    | Reg r -> C_reg r)
  | Ast.Binop (op, a, b) -> C_bin (op, code_of_expr ctx a, code_of_expr ctx b)
  | Ast.Neg e -> C_neg (code_of_expr ctx e)

(* Compiles the argument list of an atom that is being matched (scan or
   lookup): returns bound positions with their sources, fresh bindings,
   and residual checks for within-atom variable repeats. *)
let compile_match ctx (args : Ast.term list) =
  let key = ref [] in
  let binds = ref [] in
  let checks = ref [] in
  (* variables first bound by THIS atom: a repeat within the atom is a
     residual check, not a key column — its register is only filled
     while matching, so it cannot feed the lookup key *)
  let fresh = Hashtbl.create 4 in
  List.iteri
    (fun col t ->
      match t with
      | Ast.Int _ | Ast.Sym _ -> key := (col, src_of_term ctx t) :: !key
      | Ast.Var v ->
        if Hashtbl.mem fresh v then checks := (col, Reg (reg_of ctx v)) :: !checks
        else if is_bound ctx v then key := (col, Reg (reg_of ctx v)) :: !key
        else begin
          let r = reg_of ctx v in
          Hashtbl.add fresh v ();
          binds := (col, r) :: !binds
        end)
    args;
  (List.rev !key, Array.of_list (List.rev !binds), Array.of_list (List.rev !checks))

(* For a scan, all "key" positions are residual checks. *)
let compile_scan_match ctx args =
  let key, binds, checks = compile_match ctx args in
  (binds, Array.append (Array.of_list key) checks)

let agg_value_pos (info : Analysis.info) pred =
  match List.assoc_opt pred info.aggregated with
  | Some (pos, _) -> Some pos
  | None -> None

(* --- per-rule compilation (pass 2) --- *)

type prepared = {
  p_pipeline : Logical.rule_pipeline;
  (* required scan route, when a recursive lookup pins it *)
  p_scan_route : int array option;
  (* routes required on looked-up recursive predicates *)
  p_lookup_routes : (string * int array) list;
}

(* Decides lookup keys the same way pass 2 will, but only to discover
   route requirements.  Returns (scan_route_requirement, lookup_routes). *)
let analyze_routes (info : Analysis.info) (pl : Logical.rule_pipeline) =
  let bound : (string, [ `Scan of int | `Other ]) Hashtbl.t = Hashtbl.create 16 in
  let bind_scan (a : Ast.atom) =
    List.iteri
      (fun col t ->
        match t with
        | Ast.Var v when not (Hashtbl.mem bound v) -> Hashtbl.add bound v (`Scan col)
        | _ -> ())
      a.args
  in
  (match pl.scan with
  | Logical.Scan_base a -> bind_scan a
  | Logical.Scan_delta { atom; _ } -> bind_scan atom
  | Logical.Scan_unit -> ());
  let scan_route = ref None in
  let lookup_routes = ref [] in
  List.iter
    (fun elem ->
      match elem with
      | Logical.L_join { atom; recursive } ->
        let value_pos = agg_value_pos info atom.Ast.pred in
        if recursive then begin
          (* key = bound, non-value positions; each must trace back to a
             scan column for colocation *)
          let key_cols = ref [] and scan_cols = ref [] in
          List.iteri
            (fun col t ->
              let is_value = value_pos = Some col in
              match t with
              | Ast.Var v when Hashtbl.mem bound v && not is_value -> (
                key_cols := col :: !key_cols;
                match Hashtbl.find bound v with
                | `Scan c -> scan_cols := c :: !scan_cols
                | `Other ->
                  fail
                    "recursive lookup on %s keys on a value not taken from the scanned delta; \
                     cannot colocate partitions"
                    atom.Ast.pred)
              | Ast.Int _ | Ast.Sym _ when not is_value ->
                fail
                  "recursive lookup on %s keys on a constant; cannot colocate partitions"
                  atom.Ast.pred
              | _ -> ())
            atom.args;
          let route = Array.of_list (List.rev !key_cols) in
          let wanted_scan_route = Array.of_list (List.rev !scan_cols) in
          if Array.length route = 0 then
            fail "recursive lookup on %s has no bound key columns" atom.Ast.pred;
          (match !scan_route with
          | None -> scan_route := Some wanted_scan_route
          | Some existing when existing = wanted_scan_route -> ()
          | Some _ ->
            fail "rule needs two different scan partitionings (%s)"
              (Ast.rule_to_string pl.rule));
          lookup_routes := (atom.Ast.pred, route) :: !lookup_routes
        end;
        (* after the join, all of the atom's variables are bound *)
        List.iter
          (fun t ->
            match t with
            | Ast.Var v when not (Hashtbl.mem bound v) -> Hashtbl.add bound v `Other
            | _ -> ())
          atom.args
      | Logical.L_assign (x, _) ->
        if not (Hashtbl.mem bound x) then Hashtbl.add bound x `Other
      | Logical.L_neg _ | Logical.L_filter _ -> ())
    pl.pipeline;
  (!scan_route, !lookup_routes)

(* --- generic-join construction --- *)

let gj_joins (pl : Logical.rule_pipeline) =
  List.filter_map
    (function Logical.L_join { atom; recursive } -> Some (atom, recursive) | _ -> None)
    pl.pipeline

(* The generic path is restricted to bodies whose non-scan atoms are all
   base (or lower-stratum) relations: those live in shared, read-only
   sorted indexes that any worker — victim or thief — can leapfrog over,
   whereas recursive predicates are stored route-permuted per partition
   and mutate every iteration.  Recursive occurrences other than the
   scanned delta keep the binary pipeline. *)
let gj_eligible (pl : Logical.rule_pipeline) =
  let joins = gj_joins pl in
  pl.scan <> Logical.Scan_unit
  && List.length joins >= 2
  && List.for_all (fun (_, recursive) -> not recursive) joins
  && List.for_all
       (fun ((a : Ast.atom), _) ->
         (* a within-atom variable repeat would put the same variable at
            two trie levels; keep those on the binary path *)
         let vs = List.concat_map Ast.vars_of_term a.args in
         List.length vs = List.length (List.sort_uniq compare vs))
       joins
  && List.for_all
       (fun elem ->
         match elem with
         | Logical.L_assign (x, _) ->
           (* an assigned variable feeding a trie prefix would have to
              be bound before the levels run; disallow *)
           not
             (List.exists
                (fun ((a : Ast.atom), _) ->
                  List.exists (fun t -> List.mem x (Ast.vars_of_term t)) a.args)
                (gj_joins pl))
         | _ -> true)
       pl.pipeline

(* Builds the generic-join body.  Must run right after the scan has been
   compiled: the registers live at that point are exactly the
   scan-bound variables; elimination variables are allocated here, in
   elimination order. *)
let build_generic ctx (pl : Logical.rule_pipeline) =
  let atoms = Array.of_list (List.map fst (gj_joins pl)) in
  let scan_vars = Hashtbl.fold (fun v _ acc -> v :: acc) ctx.regs [] in
  let elim =
    Logical.elimination_order ~bound:scan_vars
      (Array.to_list atoms)
  in
  if elim = [] then None
  else begin
    let elim_pos = List.mapi (fun i v -> (v, i)) elim in
    let level_regs = Array.of_list (List.map (reg_of ctx) elim) in
    let atom_vars (a : Ast.atom) = List.concat_map Ast.vars_of_term a.args in
    let gj_atoms =
      Array.map
        (fun (a : Ast.atom) ->
          let bound = ref [] and unbound = ref [] in
          List.iteri
            (fun col t ->
              match t with
              | Ast.Int _ | Ast.Sym _ -> bound := (col, src_of_term ctx t) :: !bound
              | Ast.Var v -> (
                match List.assoc_opt v elim_pos with
                | Some p -> unbound := (col, p) :: !unbound
                | None -> bound := (col, Reg (reg_of ctx v)) :: !bound))
            a.args;
          let bound = List.rev !bound in
          let unbound =
            List.sort (fun (_, p1) (_, p2) -> compare p1 p2) (List.rev !unbound)
          in
          {
            ga_pred = a.Ast.pred;
            ga_cols = Array.of_list (List.map fst bound @ List.map fst unbound);
            ga_prefix = Array.of_list (List.map snd bound);
          })
        atoms
    in
    (* residual steps: prelude when readable from the scan alone,
       otherwise attached to the deepest level they mention *)
    let var_level = Hashtbl.create 8 in
    List.iter (fun (v, p) -> Hashtbl.add var_level v p) elim_pos;
    let level_of_vars vars =
      List.fold_left
        (fun m v -> max m (Option.value ~default:(-1) (Hashtbl.find_opt var_level v)))
        (-1) vars
    in
    let nlevels = List.length elim in
    let prelude = ref [] in
    let per_level = Array.make nlevels [] in
    let put l step = if l < 0 then prelude := step :: !prelude else per_level.(l) <- step :: per_level.(l) in
    List.iter
      (fun elem ->
        match elem with
        | Logical.L_join _ -> ()
        | Logical.L_filter (op, lhs, rhs) ->
          let l = level_of_vars (Ast.vars_of_expr lhs @ Ast.vars_of_expr rhs) in
          put l (Filter { op; lhs = code_of_expr ctx lhs; rhs = code_of_expr ctx rhs })
        | Logical.L_assign (x, e) ->
          let l = level_of_vars (Ast.vars_of_expr e) in
          let code = code_of_expr ctx e in
          let reg = reg_of ctx x in
          if l >= 0 then Hashtbl.replace var_level x l;
          put l (Compute { reg; code })
        | Logical.L_neg a ->
          let key, binds, checks = compile_match ctx a.Ast.args in
          if Array.length binds > 0 then
            fail "negated atom with unbound variables (%s)" (Ast.rule_to_string pl.rule);
          let l = level_of_vars (List.concat_map Ast.vars_of_term a.Ast.args) in
          put l
            (Lookup
               {
                 rel = R_base a.Ast.pred;
                 method_ = (if key <> [] then Index else Nested_loop);
                 key_cols = Array.of_list (List.map fst key);
                 key_src = Array.of_list (List.map snd key);
                 binds;
                 checks;
                 negated = true;
               }))
      pl.pipeline;
    let gj_levels =
      Array.of_list
        (List.mapi
           (fun li v ->
             let parts = ref [] in
             Array.iteri
               (fun ai a ->
                 let avars = atom_vars a in
                 if List.mem v avars then begin
                   let prefix_len = Array.length gj_atoms.(ai).ga_prefix in
                   let earlier =
                     List.length
                       (List.filter (fun (w, p) -> p <= li && List.mem w avars) elim_pos)
                   in
                   parts := (ai, prefix_len + earlier) :: !parts
                 end)
               atoms;
             {
               gv_reg = level_regs.(li);
               gv_atoms = Array.of_list (List.rev !parts);
               gv_steps = Array.of_list (List.rev per_level.(li));
             })
           elim)
    in
    Some
      {
        gj_atoms;
        gj_prelude = Array.of_list (List.rev !prelude);
        gj_levels;
        gj_elim = elim;
      }
  end

let compile_rule (info : Analysis.info) ctx (prep : prepared) ~scan_route_of ~gj_mode =
  let pl = prep.p_pipeline in
  Hashtbl.reset ctx.regs;
  ctx.next_reg <- 0;
  let scan =
    match pl.scan with
    | Logical.Scan_unit -> S_unit
    | Logical.Scan_base a ->
      let binds, checks = compile_scan_match ctx a.Ast.args in
      S_base { pred = a.Ast.pred; binds; checks }
    | Logical.Scan_delta { atom; _ } ->
      let binds, checks = compile_scan_match ctx atom.Ast.args in
      let route =
        match prep.p_scan_route with
        | Some r -> r
        | None -> scan_route_of atom.Ast.pred
      in
      S_delta { pred = atom.Ast.pred; route; binds; checks }
  in
  let gj =
    match gj_mode with
    | `Off -> None
    | `Auto when not (Logical.body_cyclic pl.rule) -> None
    | `Auto | `Force -> if gj_eligible pl then build_generic ctx pl else None
  in
  let prev_base_key : (string * src array) option ref = ref None in
  let steps =
    if gj <> None then []
    else List.map
      (fun elem ->
        match elem with
        | Logical.L_filter (op, lhs, rhs) ->
          Filter { op; lhs = code_of_expr ctx lhs; rhs = code_of_expr ctx rhs }
        | Logical.L_assign (x, e) ->
          let code = code_of_expr ctx e in
          Compute { reg = reg_of ctx x; code }
        | Logical.L_neg a ->
          let key, binds, checks = compile_match ctx a.Ast.args in
          if Array.length binds > 0 then
            fail "negated atom with unbound variables (%s)" (Ast.rule_to_string pl.rule);
          let key_cols = Array.of_list (List.map fst key) in
          let key_src = Array.of_list (List.map snd key) in
          Lookup
            {
              rel = R_base a.Ast.pred;
              method_ = (if Array.length key_cols > 0 then Index else Nested_loop);
              key_cols;
              key_src;
              binds;
              checks;
              negated = true;
            }
        | Logical.L_join { atom; recursive } ->
          if recursive then begin
            let value_pos = agg_value_pos info atom.Ast.pred in
            (* split bound positions into route key vs residual checks *)
            let key = ref [] and checks = ref [] and binds = ref [] in
            let fresh = Hashtbl.create 4 in
            List.iteri
              (fun col t ->
                let is_value = value_pos = Some col in
                match t with
                | Ast.Int _ | Ast.Sym _ -> checks := (col, src_of_term ctx t) :: !checks
                | Ast.Var v ->
                  if Hashtbl.mem fresh v then
                    checks := (col, Reg (reg_of ctx v)) :: !checks
                  else if is_bound ctx v then
                    if is_value then checks := (col, Reg (reg_of ctx v)) :: !checks
                    else key := (col, Reg (reg_of ctx v)) :: !key
                  else begin
                    Hashtbl.add fresh v ();
                    binds := (col, reg_of ctx v) :: !binds
                  end)
              atom.Ast.args;
            let key = List.rev !key in
            let route = Array.of_list (List.map fst key) in
            Lookup
              {
                rel = R_rec { pred = atom.Ast.pred; route };
                method_ = Index;
                key_cols = route;
                key_src = Array.of_list (List.map snd key);
                binds = Array.of_list (List.rev !binds);
                checks = Array.of_list (List.rev !checks);
                negated = false;
              }
          end
          else begin
            let key, binds, checks = compile_match ctx atom.Ast.args in
            let key_cols = Array.of_list (List.map fst key) in
            let key_src = Array.of_list (List.map snd key) in
            let method_ =
              if Array.length key_cols = 0 then Nested_loop
              else begin
                match !prev_base_key with
                | Some (_, prev_src) when prev_src = key_src -> Hash
                | _ -> Index
              end
            in
            prev_base_key := Some (atom.Ast.pred, key_src);
            Lookup
              {
                rel = R_base atom.Ast.pred;
                method_;
                key_cols;
                key_src;
                binds;
                checks;
                negated = false;
              }
          end)
      pl.pipeline
  in
  (* head projection *)
  let r = pl.rule in
  let agg = ref None in
  let args =
    Array.of_list
      (List.mapi
         (fun pos (arg : Ast.head_arg) ->
           match arg with
           | Ast.Plain t -> src_of_term ctx t
           | Ast.Agg (kind, terms) -> (
             match (kind, List.rev terms) with
             | (Ast.Min | Ast.Max), [ v ] ->
               agg := Some (pos, kind, [||]);
               src_of_term ctx v
             | (Ast.Min | Ast.Max), _ -> fail "min/max aggregate takes one term"
             | Ast.Count, contribs ->
               agg :=
                 Some
                   (pos, kind, Array.of_list (List.rev_map (src_of_term ctx) contribs));
               Const 0
             | Ast.Sum, v :: contribs ->
               agg :=
                 Some
                   (pos, kind, Array.of_list (List.rev_map (src_of_term ctx) contribs));
               src_of_term ctx v
             | Ast.Sum, [] -> fail "sum aggregate needs a value term"))
         r.head_args)
  in
  {
    source = r;
    logical = Logical.to_string pl;
    nregs = ctx.next_reg;
    scan;
    steps = Array.of_list steps;
    gj;
    head = { hpred = r.head_pred; args; agg = !agg };
  }

(* --- program compilation --- *)

let compile ?(params = []) ?(generic_join = `Auto) (info : Analysis.info) =
  let gj_mode = generic_join in
  let symbols = Dcd_util.Symbol.create () in
  let ctx = { symbols; cparams = params; regs = Hashtbl.create 16; next_reg = 0 } in
  try
    let strata =
      List.map
        (fun (stratum : Analysis.stratum) ->
          (* order every rule, one variant per recursive occurrence *)
          let prepare rule ~delta_occurrence =
            match Logical.order stratum rule ~delta_occurrence with
            | Error e -> fail "%s" e
            | Ok pl ->
              let scan_route, lookup_routes =
                if delta_occurrence = None then (None, [])
                else analyze_routes info pl
              in
              { p_pipeline = pl; p_scan_route = scan_route; p_lookup_routes = lookup_routes }
          in
          let init_prepared =
            List.map (fun r -> prepare r ~delta_occurrence:None) stratum.base_rules
          in
          let delta_prepared =
            List.concat_map
              (fun r ->
                let n = Logical.recursive_occurrences stratum r in
                List.init n (fun k -> prepare r ~delta_occurrence:(Some k)))
              stratum.recursive_rules
          in
          (* gather routes per stratum predicate *)
          let routes_tbl : (string, int array list) Hashtbl.t = Hashtbl.create 8 in
          let add_route pred route =
            let cur = Option.value ~default:[] (Hashtbl.find_opt routes_tbl pred) in
            if not (List.mem route cur) then Hashtbl.replace routes_tbl pred (route :: cur)
          in
          let primary_route pred =
            let arity = List.assoc pred info.arities in
            match agg_value_pos info pred with
            | Some 0 when arity = 1 -> [||]
            | Some 0 -> [| 1 |]
            | _ -> if arity = 0 then [||] else [| 0 |]
          in
          List.iter (fun pred -> add_route pred (primary_route pred)) stratum.preds;
          List.iter
            (fun prep ->
              (match (prep.p_scan_route, prep.p_pipeline.scan) with
              | Some route, Logical.Scan_delta { atom; _ } -> add_route atom.Ast.pred route
              | _ -> ());
              List.iter (fun (pred, route) -> add_route pred route) prep.p_lookup_routes)
            delta_prepared;
          let scan_route_of pred =
            (* deterministic: the primary route *)
            primary_route pred
          in
          let pred_plans =
            List.map
              (fun pred ->
                {
                  pred;
                  arity = List.assoc pred info.arities;
                  agg = List.assoc_opt pred info.aggregated;
                  routes = List.rev (Hashtbl.find routes_tbl pred);
                })
              stratum.preds
          in
          let init_rules =
            List.map (fun p -> compile_rule info ctx p ~scan_route_of ~gj_mode) init_prepared
          in
          let delta_rules =
            List.map (fun p -> compile_rule info ctx p ~scan_route_of ~gj_mode) delta_prepared
          in
          { stratum; pred_plans; init_rules; delta_rules })
        info.strata
    in
    Ok { info; symbols; params; strata }
  with Plan_error msg -> Error msg

(* --- auxiliary --- *)

let base_relations_needed t =
  let acc = ref [] in
  let note pred cols =
    if Array.length cols > 0 && not (List.mem (pred, cols) !acc) then
      acc := (pred, cols) :: !acc
  in
  let note_steps steps =
    Array.iter
      (fun step ->
        match step with
        | Lookup { rel = R_base pred; key_cols; _ } -> note pred key_cols
        | Lookup _ | Filter _ | Compute _ -> ())
      steps
  in
  List.iter
    (fun sp ->
      List.iter
        (fun cr ->
          note_steps cr.steps;
          match cr.gj with
          | Some g ->
            note_steps g.gj_prelude;
            Array.iter (fun lv -> note_steps lv.gv_steps) g.gj_levels
          | None -> ())
        (sp.init_rules @ sp.delta_rules))
    t.strata;
  !acc

let sorted_indexes_needed t =
  let acc = ref [] in
  List.iter
    (fun sp ->
      List.iter
        (fun cr ->
          match cr.gj with
          | Some g ->
            Array.iter
              (fun ga ->
                if not (List.mem (ga.ga_pred, ga.ga_cols) !acc) then
                  acc := (ga.ga_pred, ga.ga_cols) :: !acc)
              g.gj_atoms
          | None -> ())
        (sp.init_rules @ sp.delta_rules))
    t.strata;
  !acc

let method_str = function
  | Hash -> "hash"
  | Index -> "index"
  | Nested_loop -> "nested-loop"

let route_str route =
  "[" ^ String.concat "," (Array.to_list (Array.map string_of_int route)) ^ "]"

let explain t =
  let buf = Buffer.create 1024 in
  List.iteri
    (fun i sp ->
      Buffer.add_string buf
        (Printf.sprintf "stratum %d: {%s} %s\n" i
           (String.concat ", " sp.stratum.preds)
           (Analysis.recursion_kind_to_string sp.stratum.kind));
      List.iter
        (fun pp ->
          Buffer.add_string buf
            (Printf.sprintf "  pred %s/%d%s routes: %s\n" pp.pred pp.arity
               (match pp.agg with
               | Some (pos, k) ->
                 Printf.sprintf " agg %s@%d"
                   (match k with
                   | Ast.Min -> "min"
                   | Ast.Max -> "max"
                   | Ast.Count -> "count"
                   | Ast.Sum -> "sum")
                   pos
               | None -> "")
               (String.concat " " (List.map route_str pp.routes))))
        sp.pred_plans;
      let show kind cr =
        let scan_s =
          match cr.scan with
          | S_unit -> "unit"
          | S_base { pred; _ } -> pred
          | S_delta { pred; route; _ } -> Printf.sprintf "d.%s%s" pred (route_str route)
        in
        Buffer.add_string buf (Printf.sprintf "  %s: [scan %s] %s\n" kind scan_s cr.logical);
        (match cr.gj with
        | Some g ->
          Buffer.add_string buf
            (Printf.sprintf "      generic join: elim [%s]\n" (String.concat "," g.gj_elim));
          Array.iter
            (fun ga ->
              Buffer.add_string buf
                (Printf.sprintf "        trie %s cols=%s prefix=%d\n" ga.ga_pred
                   (route_str ga.ga_cols) (Array.length ga.ga_prefix)))
            g.gj_atoms
        | None -> ());
        Array.iter
          (fun step ->
            match step with
            | Lookup { rel; method_; key_cols; negated; _ } ->
              let rel_s =
                match rel with
                | R_base p -> p
                | R_rec { pred; route } -> Printf.sprintf "rec:%s%s" pred (route_str route)
              in
              Buffer.add_string buf
                (Printf.sprintf "      %s %s key=%s (%s join)\n"
                   (if negated then "antijoin" else "join")
                   rel_s (route_str key_cols) (method_str method_))
            | Filter _ -> Buffer.add_string buf "      filter\n"
            | Compute _ -> Buffer.add_string buf "      compute\n")
          cr.steps
      in
      List.iter (show "init ") sp.init_rules;
      List.iter (show "delta") sp.delta_rules)
    t.strata;
  Buffer.contents buf

let to_dot t =
  let buf = Buffer.create 2048 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let esc s = String.concat "\\\"" (String.split_on_char '"' s) in
  out "digraph physical_plan {\n  rankdir=BT;\n  node [shape=box, fontsize=10];\n";
  List.iteri
    (fun si (sp : stratum_plan) ->
      out "  subgraph cluster_%d {\n" si;
      out "    label=\"stratum %d: {%s} %s\";\n" si
        (esc (String.concat ", " sp.stratum.preds))
        (Dcd_datalog.Analysis.recursion_kind_to_string sp.stratum.kind);
      let recursive = sp.stratum.kind <> Dcd_datalog.Analysis.Nonrecursive in
      (* one Gather node per predicate of the stratum *)
      List.iter
        (fun (pp : pred_plan) ->
          out "    gather_%d_%s [label=\"Gather %s%s\\nroutes %s\", shape=ellipse];\n" si
            pp.pred pp.pred
            (match pp.agg with
            | Some (_, k) ->
              Printf.sprintf " (%s)"
                (match k with
                | Ast.Min -> "min"
                | Ast.Max -> "max"
                | Ast.Count -> "count"
                | Ast.Sum -> "sum")
            | None -> "")
            (esc
               (String.concat " "
                  (List.map
                     (fun r ->
                       "["
                       ^ String.concat "," (Array.to_list (Array.map string_of_int r))
                       ^ "]")
                     pp.routes))))
        sp.pred_plans;
      List.iteri
        (fun ri cr ->
          let id k = Printf.sprintf "n_%d_%d_%d" si ri k in
          let scan_label =
            match cr.scan with
            | S_unit -> "Unit"
            | S_base { pred; _ } -> Printf.sprintf "Scan %s" pred
            | S_delta { pred; route; _ } ->
              Printf.sprintf "Scan \xce\xb4%s [%s]" pred
                (String.concat "," (Array.to_list (Array.map string_of_int route)))
          in
          out "    %s [label=\"%s\"];\n" (id 0) (esc scan_label);
          Array.iteri
            (fun k step ->
              let label =
                match step with
                | Lookup { rel; method_; key_cols; negated; _ } ->
                  Printf.sprintf "%s %s [%s] (%s)"
                    (if negated then "AntiJoin" else "Join")
                    (match rel with
                    | R_base p -> p
                    | R_rec { pred; _ } -> "rec:" ^ pred)
                    (String.concat "," (Array.to_list (Array.map string_of_int key_cols)))
                    (method_str method_)
                | Filter _ -> "Filter"
                | Compute _ -> "Compute"
              in
              out "    %s [label=\"%s\"];\n" (id (k + 1)) (esc label);
              out "    %s -> %s;\n" (id k) (id (k + 1)))
            cr.steps;
          (match cr.gj with
          | Some g ->
            let k = Array.length cr.steps in
            let label =
              Printf.sprintf "GenericJoin [%s] {%s}"
                (String.concat "," g.gj_elim)
                (String.concat ","
                   (Array.to_list (Array.map (fun ga -> ga.ga_pred) g.gj_atoms)))
            in
            out "    %s [label=\"%s\"];\n" (id (k + 1)) (esc label);
            out "    %s -> %s;\n" (id k) (id (k + 1))
          | None -> ());
          let last =
            id (Array.length cr.steps + match cr.gj with Some _ -> 1 | None -> 0)
          in
          let dist = Printf.sprintf "dist_%d_%d" si ri in
          if recursive then begin
            out "    %s [label=\"Distribute %s\", shape=ellipse];\n" dist cr.head.hpred;
            out "    %s -> %s;\n" last dist;
            out "    %s -> gather_%d_%s [style=dashed, label=\"H\"];\n" dist si cr.head.hpred
          end
          else out "    %s -> gather_%d_%s;\n" last si cr.head.hpred)
        (sp.init_rules @ sp.delta_rules);
      out "  }\n")
    t.strata;
  out "}\n";
  Buffer.contents buf
