open Dcd_datalog

(** Physical plans (paper §5.2).

    A compiled rule is a register machine: the scan binds registers from
    each delta (or base) tuple, each step refines the binding, and the
    head projects registers into an output tuple handed to the
    Distribute operator.  The Distribute/Gather operators themselves
    live in the execution engine; the plan records everything they need:
    the partition routes of every recursive predicate and the aggregate
    specification of every head.

    Symbolic constants are resolved at compile time — either to a
    runtime parameter (e.g. [start] for SSSP) or to an interned symbol
    id — so the hot loop never touches strings. *)

type src =
  | Const of int
  | Reg of int

(** Paper §5.2.1's three join implementations.  [Hash] and [Index] both
    execute as index lookups (hash multimap for base relations, B⁺-tree
    for recursive ones); the label records which heuristic case fired,
    and [Nested_loop] scans the whole relation with residual checks. *)
type join_method =
  | Hash
  | Index
  | Nested_loop

type rel_ref =
  | R_base of string (** EDB or completed lower stratum: shared, read-only *)
  | R_rec of {
      pred : string;
      route : int array; (** which partitioned copy to consult *)
    }

type code =
  | C_const of int
  | C_reg of int
  | C_bin of Ast.binop * code * code
  | C_neg of code

type step =
  | Lookup of {
      rel : rel_ref;
      method_ : join_method;
      key_cols : int array; (** columns forming the lookup key *)
      key_src : src array; (** value feeding each key column *)
      binds : (int * int) array; (** (column, register) to bind on match *)
      checks : (int * src) array; (** residual equality predicates *)
      negated : bool; (** anti-join: succeed iff no match *)
    }
  | Filter of {
      op : Ast.cmp_op;
      lhs : code;
      rhs : code;
    }
  | Compute of {
      reg : int;
      code : code;
    }

type scan_spec =
  | S_base of {
      pred : string;
      binds : (int * int) array;
      checks : (int * src) array;
    }
  | S_delta of {
      pred : string;
      route : int array; (** the copy whose owned delta this variant scans *)
      binds : (int * int) array;
      checks : (int * src) array;
    }
  | S_unit

type head = {
  hpred : string;
  args : src array; (** full head tuple, including the aggregate position *)
  agg : (int * Ast.agg_kind * src array) option;
      (** (value position, kind, contributor sources) *)
}

(** {2 Generic (worst-case-optimal) join}

    Selected when the rule body is join-graph cyclic (see
    {!Logical.body_cyclic}) and every non-scan atom is a base or
    lower-stratum relation: each such atom becomes a trie iterator over
    a sorted index whose column order is the scan-bound prefix followed
    by the eliminated variables in elimination order, and the engine
    resolves one variable per level by leapfrog intersection.  Recursive
    non-scan atoms keep the binary pipeline — their stores are
    route-permuted per partition and mutate every iteration, so no
    shared trie in elimination order exists for them. *)

type gj_atom = {
  ga_pred : string; (** base / lower-stratum relation *)
  ga_cols : int array; (** trie column order (a full permutation) *)
  ga_prefix : src array; (** sources filling the leading bound columns *)
}

type gj_level = {
  gv_reg : int; (** register receiving this level's variable *)
  gv_atoms : (int * int) array;
      (** (atom index, probe depth): probe the atom's first [depth] trie
          columns; the candidate value lives at slot [depth - 1] *)
  gv_steps : step array; (** residual steps runnable once this binds *)
}

type gj = {
  gj_atoms : gj_atom array;
  gj_prelude : step array; (** runnable from the scan bindings alone *)
  gj_levels : gj_level array;
  gj_elim : string list; (** elimination order, for explain *)
}

type compiled_rule = {
  source : Ast.rule;
  logical : string; (** rendering of the ordered logical pipeline *)
  nregs : int;
  scan : scan_spec;
  steps : step array; (** binary pipeline; [[||]] when [gj] is chosen *)
  gj : gj option; (** the generic-join body, when selected *)
  head : head;
}

type pred_plan = {
  pred : string;
  arity : int;
  agg : (int * Ast.agg_kind) option;
  routes : int array list; (** partitioned copies to maintain; head tuples
                               are distributed under every route *)
}

type stratum_plan = {
  stratum : Analysis.stratum;
  pred_plans : pred_plan list;
  init_rules : compiled_rule list; (** base rules, evaluated once *)
  delta_rules : compiled_rule list; (** one per (rule, recursive occurrence) *)
}

type t = {
  info : Analysis.info;
  symbols : Dcd_util.Symbol.table;
  params : (string * int) list;
  strata : stratum_plan list;
}

val compile :
  ?params:(string * int) list ->
  ?generic_join:[ `Auto | `Off | `Force ] ->
  Analysis.info ->
  (t, string) result
(** Orders every rule body (via {!Logical.order}), allocates registers,
    selects join methods, and derives the partition routes of each
    recursive predicate.  Fails with a message when a body cannot be
    ordered or a recursive lookup's key cannot be colocated with the
    scanned delta (a documented engine limitation).

    [generic_join] controls the worst-case-optimal path: [`Auto]
    (default) selects it for join-graph-cyclic, eligible bodies; [`Off]
    disables it; [`Force] selects it for every eligible body regardless
    of cyclicity (benchmarking and differential testing — e.g. SG's
    chain-shaped recursive body is acyclic but still profits when the
    binary plan's intermediate explodes). *)

val eval_code : code -> int array -> int
(** Evaluates compiled arithmetic against a register file.  Division and
    modulo by zero raise [Division_by_zero]. *)

val eval_cmp : Ast.cmp_op -> int -> int -> bool

val base_relations_needed : t -> (string * int array) list
(** Distinct (predicate, key columns) pairs for which the engine should
    build shared hash indexes before execution. *)

val sorted_indexes_needed : t -> (string * int array) list
(** Distinct (predicate, trie column order) pairs for which the engine
    should build shared sorted (B⁺-tree) indexes before execution — one
    per generic-join atom. *)

val explain : t -> string
(** Human-readable plan: strata, routes, and each rule's pipeline with
    join methods. *)

val to_dot : t -> string
(** Graphviz rendering of the physical plan — the analog of the paper's
    Figures 4 and 5: one cluster per stratum, one operator chain per
    compiled rule (scan → joins/filters/computes → Distribute/Gather),
    dashed edges for the inter-worker coordination performed by the
    Distribute and Gather operators.  Pipe into [dot -Tsvg]. *)
