module D = Dcdatalog
module Clock = Dcd_util.Clock

exception Bad of string

let bad fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

(* --- request parsing --- *)

(* "pred(1,2,3)" or bare "pred"; integers only — the protocol speaks
   the engine's interned tuple space directly *)
let parse_atom s =
  let s = String.trim s in
  if s = "" then bad "empty atom";
  match String.index_opt s '(' with
  | None -> (s, None)
  | Some i ->
    if s.[String.length s - 1] <> ')' then bad "missing ')' in %s" s;
    let name = String.trim (String.sub s 0 i) in
    if name = "" then bad "missing predicate name in %s" s;
    let inside = String.sub s (i + 1) (String.length s - i - 2) in
    if String.trim inside = "" then (name, Some [||])
    else
      let fields = String.split_on_char ',' inside in
      let args =
        List.map
          (fun f ->
            match int_of_string_opt (String.trim f) with
            | Some v -> v
            | None -> bad "non-integer argument %s in %s" (String.trim f) s)
          fields
      in
      (name, Some (Array.of_list args))

let parse_update tok =
  if String.length tok < 2 then bad "malformed update %s" tok;
  let rest = String.sub tok 1 (String.length tok - 1) in
  let name, args = parse_atom rest in
  let tup =
    match args with
    | Some a -> a
    | None -> bad "update needs explicit arguments: %s" tok
  in
  match tok.[0] with
  | '+' -> D.Maintain.Insert (name, tup)
  | '-' -> D.Maintain.Delete (name, tup)
  | _ -> bad "update atoms start with + or -: %s" tok

let words s =
  String.split_on_char ' ' s |> List.filter (fun w -> String.trim w <> "")

let tuple_line name tup =
  Printf.sprintf "%s(%s)" name
    (String.concat "," (Array.to_list (Array.map string_of_int tup)))

let help_lines =
  [
    "version                     current snapshot version";
    "count <pred>                cardinality of a relation";
    "lookup <pred>(a,b,...)      point membership (full arity)";
    "scan <pred>                 all tuples, sorted";
    "scan <pred>(a,...)          tuples matching a column prefix";
    "update +p(...) -q(...) ...  apply one insert/delete batch";
    "predicates                  served relations with arity and kind";
    "stats                       cumulative run + maintenance statistics";
    "help                        this text";
    "quit                        close the connection";
    "";
    "replies: 'ok ...' or 'err <reason>'; multi-line replies state their";
    "line count (count=N / lines=N) so clients know how much to read.";
    "every data reply names the snapshot version it was computed from.";
  ]

(* --- request evaluation --- *)

(* One request line -> response lines.  Every data response is computed
   against a single published snapshot and says which one; [deadline]
   (absolute seconds) bounds scans and gates update admission. *)
let handle session ?deadline line =
  match
    match words line with
    | [] -> [ "ok" ]
    | [ "version" ] -> [ Printf.sprintf "ok version=%d" (D.Session.version session) ]
    | [ "count"; atom ] -> (
      match parse_atom atom with
      | name, None ->
        let ver, n = D.Session.count session name in
        [ Printf.sprintf "ok version=%d count=%d" ver n ]
      | _ -> bad "count takes a bare predicate name")
    | [ "lookup"; atom ] -> (
      match parse_atom atom with
      | name, Some tup ->
        let ver, present = D.Session.lookup session name tup in
        [ Printf.sprintf "ok version=%d present=%b" ver present ]
      | _, None -> bad "lookup needs explicit arguments, e.g. lookup tc(1,3)")
    | [ "scan"; atom ] ->
      let name, prefix = parse_atom atom in
      let prefix = Option.value ~default:[||] prefix in
      let ver, tuples = D.Session.scan session ?deadline ~prefix name in
      Printf.sprintf "ok version=%d count=%d" ver (List.length tuples)
      :: List.map (tuple_line name) tuples
    | "update" :: toks ->
      if toks = [] then bad "empty update batch";
      let batch = List.map parse_update toks in
      let report = D.Session.apply_batch session ?deadline batch in
      [
        Printf.sprintf "ok version=%d base=+%d/-%d derived=+%d/-%d overdeleted=%d rederived=%d"
          (D.Session.version session) report.D.Maintain.br_base_inserted
          report.D.Maintain.br_base_deleted report.D.Maintain.br_derived_inserted
          report.D.Maintain.br_derived_deleted report.D.Maintain.br_overdeleted
          report.D.Maintain.br_rederived;
      ]
    | [ "predicates" ] ->
      let preds = D.Session.predicates session in
      Printf.sprintf "ok lines=%d" (List.length preds)
      :: List.map
           (fun p ->
             Printf.sprintf "%s/%d %s" p (D.Session.arity session p)
               (if D.Session.is_base session p then "base" else "derived"))
           preds
    | [ "stats" ] ->
      let text = Format.asprintf "%a" D.Run_stats.pp (D.Session.stats session) in
      let lines =
        String.split_on_char '\n' text |> List.filter (fun l -> String.trim l <> "")
      in
      Printf.sprintf "ok lines=%d" (List.length lines) :: lines
    | [ "help" ] -> (Printf.sprintf "ok lines=%d" (List.length help_lines)) :: help_lines
    | cmd :: _ -> bad "unknown command %s (try: help)" cmd
  with
  | lines -> lines
  | exception Bad msg -> [ "err " ^ msg ]
  | exception Invalid_argument msg -> [ "err " ^ msg ]
  | exception D.Engine_error.Error e -> [ "err " ^ D.Engine_error.to_string e ]

(* --- REPL --- *)

let deadline_of request_timeout =
  Option.map (fun t -> Clock.now () +. t) request_timeout

let repl ?request_timeout ?(prompt = false) session ic oc =
  let quit = ref false in
  while not !quit do
    if prompt then begin
      output_string oc "> ";
      flush oc
    end;
    match input_line ic with
    | exception End_of_file -> quit := true
    | line ->
      if String.trim line = "quit" then begin
        output_string oc "ok bye\n";
        flush oc;
        quit := true
      end
      else begin
        let deadline = deadline_of request_timeout in
        List.iter
          (fun l ->
            output_string oc l;
            output_char oc '\n')
          (handle session ?deadline line);
        flush oc
      end
  done

(* --- Unix-socket server --- *)

type server = {
  srv_path : string;
  srv_sock : Unix.file_descr;
  srv_accept : Thread.t;
  srv_stop : bool Atomic.t;
  srv_clients : (Thread.t * Unix.file_descr) list ref;
  srv_mutex : Mutex.t;
}

let client_loop ?request_timeout session fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  (try repl ?request_timeout session ic oc with
  | End_of_file | Sys_error _ | Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let listen_unix ?request_timeout session ~path =
  (try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind sock (Unix.ADDR_UNIX path);
  Unix.listen sock 64;
  let stop = Atomic.make false in
  let clients = ref [] in
  let mutex = Mutex.create () in
  let accept_loop () =
    let live = ref true in
    while !live do
      match Unix.accept sock with
      | exception Unix.Unix_error _ -> live := false
      | fd, _ ->
        if Atomic.get stop then begin
          (try Unix.close fd with Unix.Unix_error _ -> ());
          live := false
        end
        else begin
          let t = Thread.create (fun fd -> client_loop ?request_timeout session fd) fd in
          Mutex.protect mutex (fun () -> clients := (t, fd) :: !clients)
        end
    done
  in
  {
    srv_path = path;
    srv_sock = sock;
    srv_accept = Thread.create accept_loop ();
    srv_stop = stop;
    srv_clients = clients;
    srv_mutex = mutex;
  }

let stop srv =
  if not (Atomic.exchange srv.srv_stop true) then begin
    (* wake the accept loop with a throwaway connection, then close *)
    (try
       let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
       (try Unix.connect fd (Unix.ADDR_UNIX srv.srv_path) with Unix.Unix_error _ -> ());
       Unix.close fd
     with Unix.Unix_error _ -> ());
    Thread.join srv.srv_accept;
    (try Unix.close srv.srv_sock with Unix.Unix_error _ -> ());
    (try Unix.unlink srv.srv_path with Unix.Unix_error _ | Sys_error _ -> ());
    let clients = Mutex.protect srv.srv_mutex (fun () -> !(srv.srv_clients)) in
    (* unblock clients parked in input_line, then reap their threads *)
    List.iter
      (fun (_, fd) -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
      clients;
    List.iter (fun (t, _) -> Thread.join t) clients
  end
