(** The serving front door: a line-oriented request protocol over a
    resident {!Dcdatalog.Session}, exposed as a stdin REPL and as a
    Unix-socket server admitting concurrent clients.

    {b Protocol.}  One request per line; replies start with [ok] or
    [err <reason>].  Multi-line replies announce their size
    ([count=N] / [lines=N]) so stream clients know how much to read,
    and every data reply carries the snapshot [version=N] it was
    computed from — two reads reporting the same version saw the very
    same fixpoint.  See [help] (or {!handle} ["help"]) for the command
    list.

    Reads run lock-free against the session's published snapshot, so
    any number of clients query while an [update] batch applies;
    updates serialize inside the session. *)

exception Bad of string
(** Request syntax error (caught by {!handle}; escapes only from the
    low-level parsers). *)

val parse_atom : string -> string * int array option
(** ["pred(1,2)"] → [("pred", Some [|1;2|])]; ["pred"] → [("pred", None)].
    @raise Bad on malformed syntax. *)

val handle : Dcdatalog.Session.t -> ?deadline:float -> string -> string list
(** Evaluates one request line to its response lines.  Never raises:
    syntax errors, unknown relations, deadline expiry and engine errors
    all come back as a single [err ...] line.  [deadline] (absolute
    {!Dcd_util.Clock.now} seconds) bounds scans and gates update
    admission. *)

val repl :
  ?request_timeout:float ->
  ?prompt:bool ->
  Dcdatalog.Session.t ->
  in_channel ->
  out_channel ->
  unit
(** Reads request lines until EOF or [quit], writing each response.
    [request_timeout] (relative seconds) arms a fresh deadline per
    request.  [prompt] prints ["> "] before each read (interactive
    use). *)

type server

val listen_unix : ?request_timeout:float -> Dcdatalog.Session.t -> path:string -> server
(** Binds a Unix-domain stream socket at [path] (unlinking any stale
    one), and serves each accepted connection a {!repl} on its own
    thread.  Returns immediately; run {!stop} to shut down.
    @raise Unix.Unix_error if the socket cannot be bound. *)

val stop : server -> unit
(** Stops accepting, disconnects the remaining clients, joins every
    thread, and removes the socket file.  Idempotent.  Does not close
    the session. *)
