module Vec = Dcd_util.Vec
module Bptree = Dcd_btree.Bptree

type kind =
  | Min
  | Max
  | Count
  | Sum

type backend =
  | Indexed
  | Scan

type entry = {
  gkey : Tuple.t;
  mutable value : int;
}

type store =
  | Tree of int Bptree.t
  | Flat of entry Vec.t

module Contrib_tbl = Hashtbl.Make (struct
  type t = Tuple.t

  let equal = Tuple.equal
  let hash = Tuple.hash
end)

type t = {
  kind : kind;
  group_arity : int;
  mutable store : store; (* reassigned only by checkpoint [restore] *)
  contribs : Tuple_set.t; (* (group ++ contributor) seen; Count only *)
  partials : int Contrib_tbl.t; (* (group ++ contributor) -> value; Sum only *)
}

let create ?(backend = Indexed) ~kind ~group_arity () =
  if group_arity < 0 then invalid_arg "Agg_table.create";
  let store =
    match backend with
    | Indexed -> Tree (Bptree.create ())
    | Scan -> Flat (Vec.create ())
  in
  { kind; group_arity; store; contribs = Tuple_set.create (); partials = Contrib_tbl.create 64 }

let kind t = t.kind

let group_arity t = t.group_arity

let length t =
  match t.store with
  | Tree tree -> Bptree.length tree
  | Flat v -> Vec.length v

let find t group =
  match t.store with
  | Tree tree -> Bptree.find_opt tree group
  | Flat v ->
    let found = ref None in
    Vec.iter (fun e -> if !found = None && Tuple.equal e.gkey group then found := Some e.value) v;
    !found

let better kind current candidate =
  match kind with
  | Min -> candidate < current
  | Max -> candidate > current
  | Count | Sum -> candidate <> 0 (* candidate is a non-zero delta to add *)

(* Normalizes a candidate: applies contribution dedup/replacement and
   converts Count/Sum candidates into additive deltas.  [None] =
   absorbed.

   Sum keeps the current partial value per (group, contributor) — the
   paper's first PageRank index (§6.2.1) — so a changed contribution
   adds only the difference to the aggregate.  Count keeps set
   semantics: each (group, contributor) is counted exactly once. *)
let normalize t ~group ~contributor v =
  match t.kind with
  | Min | Max ->
    if contributor <> None then invalid_arg "Agg_table.merge: contributor not allowed for min/max";
    Some v
  | Count ->
    let contributor =
      match contributor with
      | Some c -> c
      | None -> invalid_arg "Agg_table.merge: contributor required for count"
    in
    if Tuple_set.add t.contribs (Array.append group contributor) then Some 1 else None
  | Sum ->
    let contributor =
      match contributor with
      | Some c -> c
      | None -> invalid_arg "Agg_table.merge: contributor required for sum"
    in
    let key = Array.append group contributor in
    let old = match Contrib_tbl.find_opt t.partials key with Some x -> x | None -> 0 in
    if old = v && Contrib_tbl.mem t.partials key then None
    else begin
      Contrib_tbl.replace t.partials key v;
      let delta = v - old in
      if delta = 0 then None else Some delta
    end

let apply_tree t tree group v =
  let changed = ref None in
  Bptree.upsert tree group (fun current ->
      match current with
      | None ->
        changed := Some v;
        v
      | Some cur ->
        if better t.kind cur v then begin
          let v' = match t.kind with Min | Max -> v | Count | Sum -> cur + v in
          changed := Some v';
          v'
        end
        else cur);
  !changed

let apply_flat t flat group v =
  let entry = ref None in
  Vec.iter (fun e -> if !entry = None && Tuple.equal e.gkey group then entry := Some e) flat;
  match !entry with
  | None ->
    Vec.push flat { gkey = Array.copy group; value = v };
    Some v
  | Some e ->
    if better t.kind e.value v then begin
      (match t.kind with
      | Min | Max -> e.value <- v
      | Count | Sum -> e.value <- e.value + v);
      Some e.value
    end
    else None

let merge t ~group ?contributor v =
  match normalize t ~group ~contributor v with
  | None -> None
  | Some v -> (
    match t.store with
    | Tree tree -> apply_tree t tree group v
    | Flat flat -> apply_flat t flat group v)

let normalize_candidate t ~group ?contributor v = normalize t ~group ~contributor v

let combine kind a b =
  match kind with
  | Min -> min a b
  | Max -> max a b
  | Count | Sum -> a + b

let apply_sorted t ~n ~group ~value ~changed =
  match t.store with
  | Tree tree ->
    (* one co-sequential leaf walk for the whole run: the group keys are
       strictly increasing, so the B⁺-tree merge does one descent per
       leaf segment instead of one upsert per group *)
    Bptree.merge_sorted_slice tree ~n ~key:group ~merge:(fun i cur ->
        let v = value i in
        match cur with
        | None ->
          changed i v;
          Some v
        | Some cur ->
          if better t.kind cur v then begin
            let v' = match t.kind with Min | Max -> v | Count | Sum -> cur + v in
            changed i v';
            Some v'
          end
          else None)
  | Flat flat ->
    (* unoptimized backend: per-group linear passes, the ablation's cost
       model — the batch path gains nothing here by design *)
    for i = 0 to n - 1 do
      match apply_flat t flat (group i) (value i) with
      | Some v' -> changed i v'
      | None -> ()
    done

module Group_tbl = Hashtbl.Make (struct
  type t = Tuple.t

  let equal = Tuple.equal
  let hash = Tuple.hash
end)

let merge_batch t batch =
  (* Combine candidates of the same group inside the batch first. *)
  let combined : int Group_tbl.t = Group_tbl.create (Vec.length batch) in
  Vec.iter
    (fun (group, contributor, v) ->
      match normalize t ~group ~contributor v with
      | None -> ()
      | Some v -> (
        match Group_tbl.find_opt combined group with
        | None -> Group_tbl.add combined group v
        | Some cur -> (
          match t.kind with
          | Min -> if v < cur then Group_tbl.replace combined group v
          | Max -> if v > cur then Group_tbl.replace combined group v
          | Count | Sum -> Group_tbl.replace combined group (cur + v))))
    batch;
  let changed = Vec.create () in
  (match t.store with
  | Tree tree ->
    Group_tbl.iter
      (fun group v ->
        match apply_tree t tree group v with
        | Some v' -> Vec.push changed (group, v')
        | None -> ())
      combined
  | Flat flat ->
    (* The unoptimized path: one linear pass over the whole table per
       batch (paper §6.2.1: "a linear scan on the deduplicated recursive
       table ... is required"). *)
    Vec.iter
      (fun e ->
        match Group_tbl.find_opt combined e.gkey with
        | None -> ()
        | Some v ->
          Group_tbl.remove combined e.gkey;
          if better t.kind e.value v then begin
            (match t.kind with
            | Min | Max -> e.value <- v
            | Count | Sum -> e.value <- e.value + v);
            Vec.push changed (e.gkey, e.value)
          end)
      flat;
    Group_tbl.iter
      (fun group v ->
        Vec.push flat { gkey = Array.copy group; value = v };
        Vec.push changed (group, v))
      combined);
  changed

let iter t f =
  match t.store with
  | Tree tree -> Bptree.iter tree (fun k v -> f k v)
  | Flat flat -> Vec.iter (fun e -> f e.gkey e.value) flat

let prefix_matches prefix (k : Tuple.t) =
  let lp = Array.length prefix in
  Array.length k >= lp
  &&
  let rec loop i = i = lp || (k.(i) = prefix.(i) && loop (i + 1)) in
  loop 0

let iter_prefix t ~prefix f =
  match t.store with
  | Tree tree -> Bptree.iter_prefix tree ~prefix (fun k v -> f k v)
  | Flat flat -> Vec.iter (fun e -> if prefix_matches prefix e.gkey then f e.gkey e.value) flat

let to_vec t =
  let out = Vec.create ~capacity:(length t) () in
  iter t (fun k v -> Vec.push out (k, v));
  out

(* --- checkpoint snapshot / restore --- *)

(* A deep value snapshot: group entries plus the contributor-dedup state
   that makes Count/Sum re-merges idempotent.  Restoring contributor
   state is a correctness requirement, not an optimization — a recovered
   worker re-derives contributions it already folded in before the cut,
   and without the restored (group, contributor) sets those would
   double-count.

   Key arrays are shared between the snapshot and the live table: stored
   keys are immutable by convention once adopted, and merges mutate only
   values, so sharing is safe and keeps the snapshot O(groups) shallow
   words.  Aggregate snapshots are therefore O(state) — unlike the O(1)
   watermark a set relation gets from its append-only log. *)
type snapshot = {
  sn_backend : backend;
  sn_entries : (Tuple.t * int) array; (* ascending group order for [Indexed] *)
  sn_contribs : Tuple.t array;
  sn_partials : (Tuple.t * int) array;
}

let snapshot t =
  let entries = Array.make (length t) ([||], 0) in
  let i = ref 0 in
  iter t (fun k v ->
      entries.(!i) <- (k, v);
      incr i);
  let contribs = Vec.to_array (Tuple_set.to_vec t.contribs) in
  let partials = Array.make (Contrib_tbl.length t.partials) ([||], 0) in
  let j = ref 0 in
  Contrib_tbl.iter
    (fun k v ->
      partials.(!j) <- (k, v);
      incr j)
    t.partials;
  {
    sn_backend = (match t.store with Tree _ -> Indexed | Flat _ -> Scan);
    sn_entries = entries;
    sn_contribs = contribs;
    sn_partials = partials;
  }

(* Rebuilds fresh structures from the snapshot (the snapshot itself is
   never adopted, so it stays valid for a second-level retry). *)
let restore t sn =
  (match sn.sn_backend with
  | Indexed ->
    (* [iter] on a Tree is ascending, so the snapshot is sorted and
       distinct: a pure bulk load. *)
    t.store <- Tree (Bptree.of_sorted sn.sn_entries)
  | Scan ->
    let v = Vec.create ~capacity:(Array.length sn.sn_entries) () in
    Array.iter (fun (gkey, value) -> Vec.push v { gkey; value }) sn.sn_entries;
    t.store <- Flat v);
  Tuple_set.clear t.contribs;
  Array.iter (fun c -> ignore (Tuple_set.add t.contribs c)) sn.sn_contribs;
  Contrib_tbl.reset t.partials;
  Array.iter (fun (k, v) -> Contrib_tbl.replace t.partials k v) sn.sn_partials
