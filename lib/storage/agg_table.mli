(** Monotone aggregate relations (paper §6.2.1).

    An aggregate relation such as [cc2(Y, min⟨Z⟩)] stores, per group key
    [Y], the current best aggregate value.  Merging a candidate value is
    monotone: [min]/[max] only improve, [count]/[sum] only grow as new
    distinct contributions arrive (set semantics — a contribution is
    counted once, identified by its contributor key, which is how
    Datalog's [count⟨X⟩]/[sum⟨(Y,K)⟩] remain well-defined in recursion).

    Two backends implement the merge:
    - [Indexed] — the paper's optimized path: a B⁺-tree on the group key
      locates the current value in O(log n) and updates it in place.
    - [Scan] — the unoptimized baseline used in the Table 4 ablation:
      values live in an unsorted vector and merging a batch performs a
      linear pass over the whole table.

    The existence-check cache of §6.2.2 is layered on top by the engine
    (see {!Dcd_engine.Exist_cache}). *)

type kind =
  | Min
  | Max
  | Count
  | Sum

type backend =
  | Indexed
  | Scan

type t

val create : ?backend:backend -> kind:kind -> group_arity:int -> unit -> t

val kind : t -> kind

val group_arity : t -> int

val length : t -> int
(** Number of groups present. *)

val find : t -> Tuple.t -> int option
(** Current aggregate value for a group key, if any.  O(log n) for
    [Indexed], O(n) for [Scan]. *)

val merge : t -> group:Tuple.t -> ?contributor:Tuple.t -> int -> int option
(** [merge t ~group ?contributor v] folds candidate [v] into the group's
    aggregate.  For [Count], [contributor] identifies the contribution
    for set-semantics deduplication ([v] is ignored; each distinct
    contributor adds 1).  For [Sum], the table keeps the current partial
    value per (group, contributor) — the paper's first PageRank index —
    and a new value for an existing contributor adjusts the sum by the
    difference.  Returns [Some updated] when the stored aggregate
    changed (the value to emit into the delta), [None] when the
    candidate was absorbed.

    @raise Invalid_argument if [contributor] is missing for [Count]/[Sum]
    or supplied for [Min]/[Max]. *)

val normalize_candidate : t -> group:Tuple.t -> ?contributor:Tuple.t -> int -> int option
(** The contribution-dedup half of {!merge} alone: applies contributor
    set-semantics ([Count]) or partial-value replacement ([Sum]) and
    returns the additive/candidate value to fold into the group's
    aggregate, or [None] when the candidate is absorbed outright.
    [Min]/[Max] candidates pass through unchanged.  Mutates the
    contributor tables exactly like {!merge}; the caller owns applying
    the returned value (see {!apply_sorted}).

    @raise Invalid_argument on the same contributor-shape errors as
    {!merge}. *)

val combine : kind -> int -> int -> int
(** How two {e normalized} candidate values for the same group fold into
    one before hitting the store: min/max pick the better, count/sum
    add their deltas. *)

val apply_sorted :
  t -> n:int -> group:(int -> Tuple.t) -> value:(int -> int) -> changed:(int -> int -> unit) -> unit
(** [apply_sorted t ~n ~group ~value ~changed] folds a run of [n]
    pre-normalized, pre-combined candidates — [group i] strictly
    increasing, [value i] the combined candidate value — into the store.
    [changed i v'] fires for every group whose stored aggregate changed,
    with the {e updated} value.  For the [Indexed] backend this is one
    co-sequential B⁺-tree walk ({!Dcd_btree.Bptree.merge_sorted_slice},
    group keys adopted on insert: callers must pass fresh arrays and not
    mutate them after); the [Scan] backend falls back to per-group
    linear passes, preserving the ablation's cost model. *)

val merge_batch : t -> (Tuple.t * Tuple.t option * int) Dcd_util.Vec.t -> (Tuple.t * int) Dcd_util.Vec.t
(** Folds a batch of [(group, contributor, value)] candidates; returns
    the changed [(group, new_value)] pairs (each group at most once, with
    its final value).  For the [Scan] backend this is the linear-pass
    merge of the ablation. *)

val iter : t -> (Tuple.t -> int -> unit) -> unit
(** All [(group, value)] pairs. Ascending group order for [Indexed];
    unspecified order for [Scan]. *)

val iter_prefix : t -> prefix:Tuple.t -> (Tuple.t -> int -> unit) -> unit
(** All groups whose key starts with [prefix].  O(log n + matches) for
    [Indexed] (B⁺-tree range), O(n) for [Scan]. *)

val to_vec : t -> (Tuple.t * int) Dcd_util.Vec.t

(** {1 Checkpoint snapshot / restore} *)

type snapshot
(** A deep value snapshot of the table: group entries {e plus} the
    contributor-dedup state ([Count]'s contributor set, [Sum]'s partial
    values).  Restoring contributor state is a correctness requirement:
    a recovered worker re-derives contributions it had already folded in
    before the cut, and without the restored sets those would
    double-count.  Key arrays are shared with the live table (stored
    keys are immutable once adopted), so the snapshot costs O(groups +
    contributors) words — proportional to aggregate state, unlike the
    O(1) watermark of an append-only set log. *)

val snapshot : t -> snapshot

val restore : t -> snapshot -> unit
(** Rebuilds the table to exactly the snapshotted state.  Fresh
    structures are built each time — the snapshot is never adopted, so
    it remains valid for a second-level retry. *)
